package hw

import (
	"encoding/binary"
	"fmt"
	"sync"

	"github.com/tyche-sim/tyche/internal/phys"
)

// PhysMem is the machine's physical memory. All accesses are by physical
// address; the monitor reasons exclusively about physical names (§3.2).
//
// PhysMem performs no access control itself: cores and DMA engines check
// their filters before touching it. The monitor accesses it directly
// (the monitor is the most privileged software on the machine).
//
// Memory is shared by every core and DMA engine, so each operation
// holds an RWMutex — the simulator's stand-in for a coherent memory
// bus. Isolation between domains comes from the access filters, not
// from this lock; it only keeps Go-level access to the backing array
// defined when cores genuinely race.
type PhysMem struct {
	mu   sync.RWMutex
	data []byte
}

// NewPhysMem allocates size bytes of zeroed physical memory. size must be
// page-aligned and non-zero.
func NewPhysMem(size uint64) (*PhysMem, error) {
	if size == 0 || size%phys.PageSize != 0 {
		return nil, fmt.Errorf("hw: memory size %#x not page-aligned", size)
	}
	return &PhysMem{data: make([]byte, size)}, nil
}

// Size returns the total bytes of physical memory.
func (m *PhysMem) Size() uint64 { return uint64(len(m.data)) }

// Bounds returns the region covering all of physical memory.
func (m *PhysMem) Bounds() phys.Region {
	return phys.Region{Start: 0, End: phys.Addr(len(m.data))}
}

func (m *PhysMem) check(a phys.Addr, n uint64) error {
	if uint64(a) >= uint64(len(m.data)) || uint64(len(m.data))-uint64(a) < n {
		return fmt.Errorf("hw: physical access %v+%d out of bounds (mem %#x)", a, n, len(m.data))
	}
	return nil
}

// ReadAt copies memory starting at a into buf.
func (m *PhysMem) ReadAt(a phys.Addr, buf []byte) error {
	if err := m.check(a, uint64(len(buf))); err != nil {
		return err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	copy(buf, m.data[a:])
	return nil
}

// WriteAt copies buf into memory starting at a.
func (m *PhysMem) WriteAt(a phys.Addr, buf []byte) error {
	if err := m.check(a, uint64(len(buf))); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	copy(m.data[a:], buf)
	return nil
}

// Read64 loads a little-endian 64-bit word at a.
func (m *PhysMem) Read64(a phys.Addr) (uint64, error) {
	if err := m.check(a, 8); err != nil {
		return 0, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	return binary.LittleEndian.Uint64(m.data[a:]), nil
}

// Write64 stores a little-endian 64-bit word at a.
func (m *PhysMem) Write64(a phys.Addr, v uint64) error {
	if err := m.check(a, 8); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	binary.LittleEndian.PutUint64(m.data[a:], v)
	return nil
}

// ReadByte loads the byte at a.
func (m *PhysMem) ReadByteAt(a phys.Addr) (byte, error) {
	if err := m.check(a, 1); err != nil {
		return 0, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.data[a], nil
}

// WriteByte stores b at a.
func (m *PhysMem) WriteByteAt(a phys.Addr, b byte) error {
	if err := m.check(a, 1); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.data[a] = b
	return nil
}

// Zero clears the region r. It is used by the monitor's zeroing
// revocation policy; callers charge the cycle cost via the cost model.
func (m *PhysMem) Zero(r phys.Region) error {
	if err := m.check(r.Start, r.Size()); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	clear(m.data[r.Start:r.End])
	return nil
}

// View returns a read-only snapshot copy of region r, used for
// measurement (hashing) during attestation.
func (m *PhysMem) View(r phys.Region) ([]byte, error) {
	if err := m.check(r.Start, r.Size()); err != nil {
		return nil, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]byte, r.Size())
	copy(out, m.data[r.Start:r.End])
	return out, nil
}
