package hw

import (
	"bytes"
	"testing"

	"github.com/tyche-sim/tyche/internal/phys"
)

func testMachine(t testing.TB) *Machine {
	t.Helper()
	m, err := NewMachine(Config{MemBytes: 1 << 20, NumCores: 2, IOMMUAllowByDefault: true,
		Devices: []DeviceConfig{{Name: "gpu0", Class: DevAccelerator}}})
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	return m
}

func TestPhysMemReadWrite(t *testing.T) {
	m := testMachine(t)
	if err := m.Mem.Write64(0x100, 0xdeadbeefcafef00d); err != nil {
		t.Fatal(err)
	}
	v, err := m.Mem.Read64(0x100)
	if err != nil || v != 0xdeadbeefcafef00d {
		t.Fatalf("read64 = %#x, %v", v, err)
	}
	if err := m.Mem.Write64(phys.Addr(m.Mem.Size()-4), 1); err == nil {
		t.Fatal("expected out-of-bounds write to fail")
	}
	buf := []byte{1, 2, 3, 4}
	if err := m.Mem.WriteAt(0x200, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4)
	if err := m.Mem.ReadAt(0x200, got); err != nil || !bytes.Equal(got, buf) {
		t.Fatalf("readback = %v, %v", got, err)
	}
}

func TestPhysMemZeroAndView(t *testing.T) {
	m := testMachine(t)
	r := phys.MakeRegion(0x1000, phys.PageSize)
	if err := m.Mem.WriteAt(0x1800, []byte{0xff, 0xff}); err != nil {
		t.Fatal(err)
	}
	if err := m.Mem.Zero(r); err != nil {
		t.Fatal(err)
	}
	view, err := m.Mem.View(r)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range view {
		if b != 0 {
			t.Fatalf("byte %d not zeroed: %#x", i, b)
		}
	}
}

func TestEPTMapCheck(t *testing.T) {
	e := NewEPT()
	r := phys.MakeRegion(0x2000, 2*phys.PageSize)
	if err := e.Map(r, PermRW); err != nil {
		t.Fatal(err)
	}
	if !e.Check(0x2000, PermR) || !e.Check(0x3fff, PermW) {
		t.Fatal("mapped pages should allow rw")
	}
	if e.Check(0x2000, PermX) {
		t.Fatal("execute not granted")
	}
	if e.Check(0x4000, PermR) || e.Check(0x1fff, PermR) {
		t.Fatal("unmapped pages must deny")
	}
	gen := e.Generation()
	if err := e.Unmap(r); err != nil {
		t.Fatal(err)
	}
	if e.Generation() == gen {
		t.Fatal("generation must advance on unmap")
	}
	if e.Check(0x2000, PermR) {
		t.Fatal("unmapped page allowed")
	}
	if e.MappedPages() != 0 {
		t.Fatalf("mapped pages = %d", e.MappedPages())
	}
}

func TestEPTMappingsCoalesce(t *testing.T) {
	e := NewEPT()
	if err := e.Map(phys.MakeRegion(0x1000, phys.PageSize), PermR); err != nil {
		t.Fatal(err)
	}
	if err := e.Map(phys.MakeRegion(0x2000, phys.PageSize), PermR); err != nil {
		t.Fatal(err)
	}
	if err := e.Map(phys.MakeRegion(0x3000, phys.PageSize), PermRW); err != nil {
		t.Fatal(err)
	}
	maps := e.Mappings()
	if len(maps) != 2 {
		t.Fatalf("mappings = %v, want 2 runs", maps)
	}
	if maps[0].Region != (phys.Region{Start: 0x1000, End: 0x3000}) || maps[0].Perm != PermR {
		t.Fatalf("first run = %v", maps[0])
	}
}

func TestEPTRejectsUnaligned(t *testing.T) {
	e := NewEPT()
	if err := e.Map(phys.Region{Start: 0x100, End: 0x200}, PermR); err == nil {
		t.Fatal("expected unaligned map to fail")
	}
}

func TestPMPProgramAndPriority(t *testing.T) {
	p := NewPMP(4)
	// Entry 0 (highest priority) denies a window inside entry 1's grant.
	if err := p.Program(0, phys.MakeRegion(0x2000, phys.PageSize), PermNone); err != nil {
		t.Fatal(err)
	}
	if err := p.Program(1, phys.MakeRegion(0x0, 16*phys.PageSize), PermRWX); err != nil {
		t.Fatal(err)
	}
	if p.Check(0x2800, PermR) {
		t.Fatal("higher-priority deny entry must win")
	}
	if !p.Check(0x3000, PermR) {
		t.Fatal("lower entry should grant outside the deny window")
	}
	if p.FreeEntries() != 2 {
		t.Fatalf("free = %d", p.FreeEntries())
	}
}

func TestPMPExhaustion(t *testing.T) {
	p := NewPMP(2)
	if err := p.Program(0, phys.MakeRegion(0, phys.PageSize), PermR); err != nil {
		t.Fatal(err)
	}
	if err := p.Program(1, phys.MakeRegion(0x1000, phys.PageSize), PermR); err != nil {
		t.Fatal(err)
	}
	if err := p.Program(2, phys.MakeRegion(0x2000, phys.PageSize), PermR); err == nil {
		t.Fatal("expected out-of-range entry to fail")
	}
}

func TestPMPLocking(t *testing.T) {
	p := NewPMP(4)
	if err := p.Lock(0); err == nil {
		t.Fatal("locking unprogrammed entry must fail")
	}
	if err := p.Program(0, phys.MakeRegion(0, phys.PageSize), PermRWX); err != nil {
		t.Fatal(err)
	}
	if err := p.Lock(0); err != nil {
		t.Fatal(err)
	}
	if err := p.Program(0, phys.MakeRegion(0x1000, phys.PageSize), PermR); err == nil {
		t.Fatal("reprogramming locked entry must fail")
	}
	if err := p.ClearEntry(0); err == nil {
		t.Fatal("clearing locked entry must fail")
	}
	if n := p.ClearAll(); n != 0 {
		t.Fatalf("ClearAll removed %d locked entries", n)
	}
}

func TestPMPNAPOT(t *testing.T) {
	if !IsNAPOT(phys.MakeRegion(0x4000, 0x4000)) {
		t.Fatal("0x4000+0x4000 is NAPOT")
	}
	if IsNAPOT(phys.MakeRegion(0x1000, 0x3000)) {
		t.Fatal("size 0x3000 is not a power of two")
	}
	if IsNAPOT(phys.MakeRegion(0x2000, 0x4000)) {
		t.Fatal("0x2000 is not naturally aligned for 0x4000")
	}
	p := NewPMP(2)
	p.SetNAPOTOnly(true)
	if err := p.Program(0, phys.MakeRegion(0x1000, 0x3000), PermR); err == nil {
		t.Fatal("NAPOT-only unit must reject non-NAPOT region")
	}
	if err := p.Program(0, phys.MakeRegion(0x4000, 0x4000), PermR); err != nil {
		t.Fatal(err)
	}
}

func TestTLBStaleness(t *testing.T) {
	tlb := NewTLB(8)
	tlb.Insert(0, 5, PermRW, 1)
	// Non-strict (real hardware): stale generation still hits.
	if p, hit := tlb.Lookup(0, 5, 2); !hit || p != PermRW {
		t.Fatal("non-strict TLB should serve stale entry (the hazard)")
	}
	tlb.Strict = true
	if _, hit := tlb.Lookup(0, 5, 2); hit {
		t.Fatal("strict TLB must reject stale generation")
	}
	tlb.Insert(0, 6, PermR, 3)
	if p, hit := tlb.Lookup(0, 6, 3); !hit || p != PermR {
		t.Fatal("fresh entry should hit")
	}
	tlb.Flush()
	if _, hit := tlb.Lookup(0, 6, 3); hit {
		t.Fatal("flush must clear entries")
	}
}

func TestTLBEviction(t *testing.T) {
	tlb := NewTLB(2)
	tlb.Insert(0, 1, PermR, 0)
	tlb.Insert(0, 2, PermR, 0)
	tlb.Insert(0, 3, PermR, 0) // evicts page 1 (FIFO)
	if _, hit := tlb.Lookup(0, 1, 0); hit {
		t.Fatal("page 1 should have been evicted")
	}
	if _, hit := tlb.Lookup(0, 3, 0); !hit {
		t.Fatal("page 3 should be cached")
	}
	if tlb.Len() != 2 {
		t.Fatalf("len = %d", tlb.Len())
	}
}

func TestCachePrimeProbe(t *testing.T) {
	c := NewCache(16)
	// Prime: fill a set.
	if c.Touch(0x0, false) {
		t.Fatal("cold cache should miss")
	}
	if !c.Touch(0x0, false) {
		t.Fatal("second touch should hit")
	}
	if !c.Probe(0x0) {
		t.Fatal("probe should see resident line")
	}
	// Conflict eviction: same set index (16 lines * 64B = 1KiB stride).
	c.Touch(0x400, false)
	if c.Probe(0x0) {
		t.Fatal("conflicting line should have evicted the victim")
	}
	flushed := c.Flush()
	if flushed == 0 {
		t.Fatal("flush should report resident lines")
	}
	if c.Resident() != 0 {
		t.Fatal("flush must empty the cache")
	}
}

func TestInstrEncodeDecodeRoundTrip(t *testing.T) {
	all := []Instr{
		{Op: OpHlt},
		{Op: OpMovi, Rd: 3, Imm: 0xdeadbeef},
		{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpLd, Rd: 4, Rs1: 5, Imm: 0x40},
		{Op: OpSt, Rs1: 6, Rs2: 7, Imm: 0x80},
		{Op: OpJlt, Rs1: 8, Rs2: 9, Imm: 0x1000},
		{Op: OpVmcall},
		{Op: OpSyscall},
	}
	for _, in := range all {
		var buf [InstrSize]byte
		in.Encode(buf[:])
		out, err := Decode(buf[:])
		if err != nil {
			t.Fatalf("decode(%v): %v", in, err)
		}
		if out != in {
			t.Fatalf("roundtrip: got %v, want %v", out, in)
		}
	}
}

func TestDecodeIllegal(t *testing.T) {
	buf := []byte{0xff, 0, 0, 0, 0, 0, 0, 0}
	if _, err := Decode(buf); err == nil {
		t.Fatal("expected illegal opcode error")
	}
	buf = []byte{byte(OpAdd), 200, 0, 0, 0, 0, 0, 0}
	if _, err := Decode(buf); err == nil {
		t.Fatal("expected out-of-range register error")
	}
	if _, err := Decode([]byte{1, 2}); err == nil {
		t.Fatal("expected short-buffer error")
	}
}

// loadAndRun assembles prog at base, grants the context RWX over all of
// memory, and runs until trap.
func loadAndRun(t *testing.T, m *Machine, a *Asm, base phys.Addr, maxInstr int) (Trap, *Core) {
	t.Helper()
	code, err := a.Assemble(base)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	if err := m.Mem.WriteAt(base, code); err != nil {
		t.Fatalf("load: %v", err)
	}
	core := m.Cores[0]
	core.InstallContext(&Context{Owner: 1, Filter: AllowAll{}, Entry: base})
	core.PC = base
	_, trap := core.Run(maxInstr)
	return trap, core
}

func TestAsmSumLoop(t *testing.T) {
	m := testMachine(t)
	// Sum 0..9 into r1.
	a := NewAsm()
	a.Movi(1, 0) // acc
	a.Movi(2, 0) // i
	a.Movi(3, 10)
	a.Label("loop")
	a.Add(1, 1, 2)
	a.Addi(2, 2, 1)
	a.Jlt(2, 3, "loop")
	a.Hlt()
	trap, core := loadAndRun(t, m, a, 0x1000, 1000)
	if trap.Kind != TrapHalt {
		t.Fatalf("trap = %v, want halt", trap)
	}
	if core.Regs[1] != 45 {
		t.Fatalf("sum = %d, want 45", core.Regs[1])
	}
}

func TestAsmMemoryOps(t *testing.T) {
	m := testMachine(t)
	if err := m.Mem.Write64(0x8000, 21); err != nil {
		t.Fatal(err)
	}
	a := NewAsm()
	a.Movi(1, 0x8000)
	a.Ld(2, 1, 0)   // r2 = 21
	a.Add(3, 2, 2)  // r3 = 42
	a.St(1, 8, 3)   // mem[0x8008] = 42
	a.Ldb(4, 1, 8)  // r4 = low byte 42
	a.Stb(1, 16, 4) // mem[0x8010] byte = 42
	a.Hlt()
	trap, core := loadAndRun(t, m, a, 0x1000, 100)
	if trap.Kind != TrapHalt {
		t.Fatalf("trap = %v", trap)
	}
	if core.Regs[3] != 42 || core.Regs[4] != 42 {
		t.Fatalf("r3=%d r4=%d", core.Regs[3], core.Regs[4])
	}
	v, _ := m.Mem.Read64(0x8008)
	if v != 42 {
		t.Fatalf("mem[0x8008] = %d", v)
	}
	b, _ := m.Mem.ReadByteAt(0x8010)
	if b != 42 {
		t.Fatalf("mem[0x8010] = %d", b)
	}
}

func TestAsmUndefinedLabel(t *testing.T) {
	a := NewAsm()
	a.Jmp("nowhere")
	if _, err := a.Assemble(0); err == nil {
		t.Fatal("expected undefined-label error")
	}
	b := NewAsm()
	b.Label("x").Label("x")
	b.Hlt()
	if _, err := b.Assemble(0); err == nil {
		t.Fatal("expected duplicate-label error")
	}
}

func TestCoreFaultsOnDeniedAccess(t *testing.T) {
	m := testMachine(t)
	e := NewEPT()
	base := phys.Addr(0x1000)
	// Code page executable, data page 0x8000 NOT mapped.
	if err := e.Map(phys.MakeRegion(base, phys.PageSize), PermRX); err != nil {
		t.Fatal(err)
	}
	a := NewAsm()
	a.Movi(1, 0x8000)
	a.Ld(2, 1, 0)
	a.Hlt()
	code := a.MustAssemble(base)
	if err := m.Mem.WriteAt(base, code); err != nil {
		t.Fatal(err)
	}
	core := m.Cores[0]
	core.InstallContext(&Context{Owner: 1, Filter: e, Entry: base, UsesEPT: true})
	core.PC = base
	_, trap := core.Run(100)
	if trap.Kind != TrapFault || trap.Addr != 0x8000 || !trap.Want.Allows(PermR) {
		t.Fatalf("trap = %v, want read fault at 0x8000", trap)
	}
	if core.FaultCount() != 1 {
		t.Fatalf("faults = %d", core.FaultCount())
	}
}

func TestCoreFaultsOnExecFetch(t *testing.T) {
	m := testMachine(t)
	e := NewEPT()
	// Page mapped read-write but not executable.
	if err := e.Map(phys.MakeRegion(0x1000, phys.PageSize), PermRW); err != nil {
		t.Fatal(err)
	}
	core := m.Cores[0]
	core.InstallContext(&Context{Owner: 1, Filter: e, Entry: 0x1000})
	core.PC = 0x1000
	trap := core.Step()
	if trap.Kind != TrapFault || !trap.Want.Allows(PermX) {
		t.Fatalf("trap = %v, want exec fault", trap)
	}
}

func TestRingSemantics(t *testing.T) {
	m := testMachine(t)
	osf := NewEPT() // reuse EPT structure as a first-level filter
	// OS grants user code only page 0x2000; kernel ring bypasses.
	if err := osf.Map(phys.MakeRegion(0x2000, phys.PageSize), PermRWX); err != nil {
		t.Fatal(err)
	}
	core := m.Cores[0]
	core.InstallContext(&Context{Owner: 1, Filter: AllowAll{}, OSFilter: osf})

	a := NewAsm()
	a.Movi(1, 0x5000)
	a.Ld(2, 1, 0)
	a.Hlt()
	code := a.MustAssemble(0x2000)
	if err := m.Mem.WriteAt(0x2000, code); err != nil {
		t.Fatal(err)
	}

	// User ring: load from 0x5000 denied by the OS filter.
	core.PC = 0x2000
	core.Ring = RingUser
	_, trap := core.Run(10)
	if trap.Kind != TrapFault || trap.Addr != 0x5000 {
		t.Fatalf("user-ring trap = %v, want fault at 0x5000", trap)
	}

	// Kernel ring: same code succeeds — the commodity bypass.
	core.InstallContext(core.Context()) // flush TLB
	core.PC = 0x2000
	core.Ring = RingKernel
	_, trap = core.Run(10)
	if trap.Kind != TrapHalt {
		t.Fatalf("kernel-ring trap = %v, want halt (privileged bypass)", trap)
	}
}

func TestVMCallAndSyscallTrap(t *testing.T) {
	m := testMachine(t)
	a := NewAsm()
	a.Movi(0, 7) // call number
	a.Vmcall()
	a.Movi(0, 9)
	a.Syscall()
	a.Hlt()
	trap, core := loadAndRun(t, m, a, 0x1000, 100)
	if trap.Kind != TrapVMCall {
		t.Fatalf("first trap = %v, want vmcall", trap)
	}
	if core.Regs[0] != 7 {
		t.Fatalf("r0 = %d", core.Regs[0])
	}
	// Resume: PC already advanced past VMCALL.
	_, trap = core.Run(100)
	if trap.Kind != TrapSyscall {
		t.Fatalf("second trap = %v, want syscall", trap)
	}
	if core.Regs[0] != 9 {
		t.Fatalf("r0 = %d", core.Regs[0])
	}
	_, trap = core.Run(100)
	if trap.Kind != TrapHalt {
		t.Fatalf("third trap = %v, want halt", trap)
	}
}

func TestContextSaveRestore(t *testing.T) {
	m := testMachine(t)
	core := m.Cores[0]
	ctx := &Context{Owner: 1, Filter: AllowAll{}}
	core.InstallContext(ctx)
	core.Regs[5] = 1234
	core.PC = 0x4000
	core.Ring = RingUser
	core.SaveInto(ctx)
	core.Regs[5] = 0
	core.PC = 0
	core.Ring = RingKernel
	core.RestoreFrom(ctx)
	if core.Regs[5] != 1234 || core.PC != 0x4000 || core.Ring != RingUser {
		t.Fatalf("restore mismatch: r5=%d pc=%v ring=%v", core.Regs[5], core.PC, core.Ring)
	}
}

func TestDeviceDMAWithIOMMU(t *testing.T) {
	m := testMachine(t)
	dev := m.DeviceByName("gpu0")
	if dev == nil {
		t.Fatal("gpu0 missing")
	}
	// Commodity default: DMA anywhere succeeds.
	if err := dev.DMAWrite(0x3000, []byte{1, 2, 3}); err != nil {
		t.Fatalf("permissive DMA failed: %v", err)
	}
	// Monitor takes over: deny by default, attach a filter.
	m.IOMMU.DefaultAllow = false
	if err := dev.DMAWrite(0x3000, []byte{1}); err == nil {
		t.Fatal("expected DMA denial with deny-by-default and no context")
	}
	f := NewEPT()
	if err := f.Map(phys.MakeRegion(0x4000, phys.PageSize), PermRW); err != nil {
		t.Fatal(err)
	}
	m.IOMMU.Attach(dev.ID, f)
	if err := dev.DMAWrite(0x4000, []byte{9}); err != nil {
		t.Fatalf("authorized DMA failed: %v", err)
	}
	if err := dev.DMAWrite(0x5000, []byte{9}); err == nil {
		t.Fatal("expected DMA outside filter to fail")
	}
	var dmaErr *DMAFaultError
	err := dev.DMACopy(0x4000, 0x5000, 8)
	if err == nil {
		t.Fatal("expected copy into unauthorized page to fail")
	}
	if !errorsAs(err, &dmaErr) {
		t.Fatalf("error type = %T", err)
	}
	// Cross-page check: region straddling an authorized and an
	// unauthorized page must be denied.
	if err := dev.DMAWrite(0x4ffc, []byte{1, 2, 3, 4, 5, 6, 7, 8}); err == nil {
		t.Fatal("expected straddling DMA to fail")
	}
}

// errorsAs avoids importing errors for one call in this test file.
func errorsAs(err error, target **DMAFaultError) bool {
	e, ok := err.(*DMAFaultError)
	if ok {
		*target = e
	}
	return ok
}

func TestClockAdvances(t *testing.T) {
	m := testMachine(t)
	a := NewAsm()
	for i := 0; i < 10; i++ {
		a.Nop()
	}
	a.Hlt()
	before := m.Clock.Cycles()
	trap, _ := loadAndRun(t, m, a, 0x1000, 100)
	if trap.Kind != TrapHalt {
		t.Fatalf("trap = %v", trap)
	}
	if m.Clock.Cycles() <= before {
		t.Fatal("clock did not advance")
	}
}

func TestMachineConfigValidation(t *testing.T) {
	if _, err := NewMachine(Config{MemBytes: 1 << 20, NumCores: 0}); err == nil {
		t.Fatal("expected zero-core config to fail")
	}
	if _, err := NewMachine(Config{MemBytes: 100, NumCores: 1}); err == nil {
		t.Fatal("expected unaligned memory to fail")
	}
}

func TestMachineLookups(t *testing.T) {
	m := testMachine(t)
	if m.Core(0) == nil || m.Core(99) != nil || m.Core(-1) != nil {
		t.Fatal("core lookup wrong")
	}
	if len(m.CoreIDs()) != 2 || len(m.DeviceIDs()) != 1 {
		t.Fatal("id enumeration wrong")
	}
	if m.DeviceByName("nope") != nil {
		t.Fatal("unknown device should be nil")
	}
}
