package hw

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"github.com/tyche-sim/tyche/internal/phys"
)

// DefaultPMPEntries is the number of PMP entries per core on typical
// RISC-V silicon (the privileged spec allows 0, 16, or 64; 16 is common,
// and machine-mode firmware reserves some for itself — we model 16 with
// the monitor free to reserve entries).
const DefaultPMPEntries = 16

// PMPEntry is one RISC-V physical memory protection entry: an address
// range with permissions. The hardware matches entries in ascending
// priority order (lowest index wins), which the Check method reproduces.
type PMPEntry struct {
	Region phys.Region
	Perm   Perm
	// Locked entries cannot be reprogrammed until reset; the monitor
	// locks the entries protecting its own memory (machine-mode
	// self-protection, as Keystone does).
	Locked bool
	used   bool
}

// Used reports whether the entry holds an active mapping.
func (e PMPEntry) Used() bool { return e.used }

// PMP models a per-core PMP register file with a fixed number of
// entries. The fixed entry budget is the central constraint the paper
// calls out for the RISC-V backend: "PMP only supports a fixed number of
// segments, which requires a careful memory layout of trust domains and
// validation by the monitor" (§4).
// The register file is behind an RWMutex because the PMP backend
// reprograms *other* cores' units when a domain's footprint changes
// while those cores may be executing guest code against them.
type PMP struct {
	mu      sync.RWMutex
	entries []PMPEntry
	gen     atomic.Uint64
	// napotOnly restricts ranges to naturally-aligned power-of-two
	// regions (NAPOT encoding), the stricter hardware mode. When false,
	// TOR (top-of-range) encoding permits arbitrary page-aligned ranges.
	napotOnly bool
}

// NewPMP returns a PMP unit with n entries (n must be positive) using
// TOR encoding.
func NewPMP(n int) *PMP {
	if n <= 0 {
		panic("hw: PMP entry count must be positive")
	}
	return &PMP{entries: make([]PMPEntry, n)}
}

// SetNAPOTOnly switches the unit to NAPOT-only encoding, where every
// programmed region must be a naturally aligned power-of-two size.
func (p *PMP) SetNAPOTOnly(v bool) { p.napotOnly = v }

// NAPOTOnly reports whether the unit accepts only NAPOT regions.
func (p *PMP) NAPOTOnly() bool { return p.napotOnly }

// NumEntries returns the total entry budget.
func (p *PMP) NumEntries() int { return len(p.entries) }

// FreeEntries returns how many entries are unprogrammed.
func (p *PMP) FreeEntries() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	free := 0
	for _, e := range p.entries {
		if !e.used {
			free++
		}
	}
	return free
}

// IsNAPOT reports whether r is a naturally aligned power-of-two-sized
// region, i.e. encodable in a single NAPOT PMP entry.
func IsNAPOT(r phys.Region) bool {
	size := r.Size()
	if size == 0 || bits.OnesCount64(size) != 1 {
		return false
	}
	return uint64(r.Start)%size == 0
}

// Program writes entry i. Fails if i is out of range, the entry is
// locked, the region is invalid, or NAPOT-only mode rejects the shape.
func (p *PMP) Program(i int, r phys.Region, perm Perm) error {
	if i < 0 || i >= len(p.entries) {
		return fmt.Errorf("hw: pmp entry %d out of range (have %d)", i, len(p.entries))
	}
	if err := r.Validate(); err != nil {
		return fmt.Errorf("hw: pmp program: %w", err)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.entries[i].Locked {
		return fmt.Errorf("hw: pmp entry %d is locked", i)
	}
	if p.napotOnly && !IsNAPOT(r) {
		return fmt.Errorf("hw: pmp entry %d: region %v not NAPOT-encodable", i, r)
	}
	p.entries[i] = PMPEntry{Region: r, Perm: perm, used: true}
	p.gen.Add(1)
	return nil
}

// ClearEntry deprograms entry i unless it is locked.
func (p *PMP) ClearEntry(i int) error {
	if i < 0 || i >= len(p.entries) {
		return fmt.Errorf("hw: pmp entry %d out of range", i)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.entries[i].Locked {
		return fmt.Errorf("hw: pmp entry %d is locked", i)
	}
	p.entries[i] = PMPEntry{}
	p.gen.Add(1)
	return nil
}

// Lock marks entry i as locked; it must already be programmed.
func (p *PMP) Lock(i int) error {
	if i < 0 || i >= len(p.entries) {
		return fmt.Errorf("hw: pmp entry %d out of range", i)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.entries[i].used {
		return fmt.Errorf("hw: cannot lock unprogrammed pmp entry %d", i)
	}
	p.entries[i].Locked = true
	p.gen.Add(1)
	return nil
}

// ClearAll deprograms every unlocked entry. Returns the number of
// entries cleared (callers charge PMPWrite cost per entry).
func (p *PMP) ClearAll() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for i := range p.entries {
		if p.entries[i].used && !p.entries[i].Locked {
			p.entries[i] = PMPEntry{}
			n++
		}
	}
	if n > 0 {
		p.gen.Add(1)
	}
	return n
}

// Check implements AccessFilter: the lowest-indexed matching entry
// decides; no match denies (machine-mode default for non-M software).
func (p *PMP) Check(a phys.Addr, want Perm) bool {
	return p.Lookup(a).Allows(want)
}

// Lookup implements AccessFilter.
func (p *PMP) Lookup(a phys.Addr) Perm {
	p.mu.RLock()
	defer p.mu.RUnlock()
	for _, e := range p.entries {
		if e.used && e.Region.Contains(a) {
			return e.Perm
		}
	}
	return PermNone
}

// Generation implements AccessFilter.
func (p *PMP) Generation() uint64 { return p.gen.Load() }

// Entries returns a copy of the register file for inspection.
func (p *PMP) Entries() []PMPEntry {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]PMPEntry, len(p.entries))
	copy(out, p.entries)
	return out
}

// --- pmpaddr register encodings ---------------------------------------
//
// Real RISC-V PMP entries are programmed through pmpaddr CSRs holding
// physical address bits [55:2]. Two range encodings matter here:
//
//   NAPOT: a naturally aligned power-of-two region of size 2^(z+3)
//   bytes is encoded in one register as (base>>2) | (2^z - 1) — the
//   size is carried by the count of trailing one bits. Minimum
//   encodable size is 8 bytes (z = 0).
//
//   TOR (top of range): entry i covers [pmpaddr[i-1]<<2, pmpaddr[i]<<2),
//   so an arbitrary 4-byte-aligned range takes a register pair.
//
// The simulator stores regions directly, but layout planning and the
// C5 entry-budget experiment reason about what silicon can express, so
// the codecs are exact.

// EncodeNAPOT encodes r as a single pmpaddr register value. r must be
// naturally aligned, power-of-two sized, and at least 8 bytes.
func EncodeNAPOT(r phys.Region) (uint64, error) {
	if !IsNAPOT(r) {
		return 0, fmt.Errorf("hw: region %v not NAPOT-encodable", r)
	}
	size := r.Size()
	if size < 8 {
		return 0, fmt.Errorf("hw: region %v below the 8-byte NAPOT minimum", r)
	}
	return uint64(r.Start)>>2 | (size>>3 - 1), nil
}

// DecodeNAPOT inverts EncodeNAPOT. An all-ones value (the whole
// address space, size 2^66 on RV64) is rejected: it is not
// representable as a Region.
func DecodeNAPOT(v uint64) (phys.Region, error) {
	z := bits.TrailingZeros64(^v) // count of trailing one bits
	if z >= 61 {
		return phys.Region{}, fmt.Errorf("hw: pmpaddr %#x: NAPOT size overflows the address space", v)
	}
	size := uint64(1) << (z + 3)
	base := (v &^ (uint64(1)<<z - 1)) << 2
	return phys.MakeRegion(phys.Addr(base), size), nil
}

// EncodeTOR encodes r as a (pmpaddr[i-1], pmpaddr[i]) register pair.
// Both bounds must be 4-byte aligned; any such non-empty range is
// encodable.
func EncodeTOR(r phys.Region) (lo, hi uint64, err error) {
	if r.Empty() {
		return 0, 0, fmt.Errorf("hw: tor encode: empty region %v", r)
	}
	if r.Start%4 != 0 || r.End%4 != 0 {
		return 0, 0, fmt.Errorf("hw: region %v not 4-byte aligned", r)
	}
	return uint64(r.Start) >> 2, uint64(r.End) >> 2, nil
}

// DecodeTOR inverts EncodeTOR. An empty range (hi <= lo) is an error:
// hardware treats such an entry as matching nothing.
func DecodeTOR(lo, hi uint64) (phys.Region, error) {
	if hi <= lo {
		return phys.Region{}, fmt.Errorf("hw: tor pair (%#x, %#x) is an empty range", lo, hi)
	}
	return phys.Region{Start: phys.Addr(lo << 2), End: phys.Addr(hi << 2)}, nil
}
