package hw

import (
	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/trace"
)

// Event tracing hookup. The machine owns the tracer the same way it
// owns the fault injector: an atomic pointer installed at run time, nil
// by default. Emit sites throughout hw, core, and the backends call
// Machine.Trace, which is a constant-false branch under the notrace
// build tag and a single atomic load + nil check when tracing is
// compiled in but disabled — the C17 experiment bounds that cost.

// SetTracer installs (or, with nil, removes) the machine's event
// tracer. Installing emits the KBoot event that opens the trace and
// tells checkers the core count.
func (m *Machine) SetTracer(t *trace.Tracer) {
	if t == nil {
		m.tracer.Store(nil)
		return
	}
	m.tracer.Store(t)
	m.Trace(trace.GlobalCore, trace.KBoot, 0, 0, 0, 0, uint64(len(m.Cores)))
}

// Tracer returns the installed tracer, or nil.
func (m *Machine) Tracer() *trace.Tracer {
	if !trace.Compiled {
		return nil
	}
	return m.tracer.Load()
}

// NewTracer builds a tracer sized for this machine whose timestamps
// read the machine's aggregate cycle clock. It is not installed;
// callers pass it to SetTracer (usually after attaching sinks).
func (m *Machine) NewTracer(perRing int) *trace.Tracer {
	return trace.New(len(m.Cores), perRing, m.Clock.Cycles)
}

// Trace emits one event if a tracer is installed. Compiles to nothing
// under the notrace build tag.
func (m *Machine) Trace(core int32, k trace.Kind, domain, aux, node, addr, size uint64) {
	if !trace.Compiled {
		return
	}
	if t := m.tracer.Load(); t != nil {
		t.Emit(core, k, domain, aux, node, addr, size)
	}
}

// ShootdownRegion invalidates a physical region from every core's TLB —
// the cross-core shootdown a revocation or a scrub triggers on real
// hardware via IPIs. Each core's flush costs CostModel.TLBFlush cycles
// and acknowledges with one trace event; the enclosing monitor
// operation must not return before every core has acked (the trace
// checker enforces this).
func (m *Machine) ShootdownRegion(r phys.Region) {
	m.Trace(trace.GlobalCore, trace.KShootdown, 0, 0, 0, uint64(r.Start), r.Size())
	for i, c := range m.Cores {
		if shootdownSkipLast && i == len(m.Cores)-1 {
			// Seeded mutation (tracebug build tag): the last core keeps
			// its stale translations and never acks.
			continue
		}
		c.tlb.FlushRegion(r)
		m.Clock.Advance(m.Cost.TLBFlush)
		m.Trace(trace.GlobalCore, trace.KShootdownAck, 0, uint64(i), 0, uint64(r.Start), r.Size())
	}
}

// ShootdownAll flushes every core's entire TLB (the shootdown for
// non-memory resources and address-space-wide invalidations).
func (m *Machine) ShootdownAll() {
	m.Trace(trace.GlobalCore, trace.KShootdown, 0, 0, 0, 0, 0)
	for i, c := range m.Cores {
		if shootdownSkipLast && i == len(m.Cores)-1 {
			continue
		}
		c.tlb.Flush()
		m.Clock.Advance(m.Cost.TLBFlush)
		m.Trace(trace.GlobalCore, trace.KShootdownAck, 0, uint64(i), 0, 0, 0)
	}
}
