package hw

import (
	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/trace"
)

// Event tracing hookup. The machine owns the tracer the same way it
// owns the fault injector: an atomic pointer installed at run time, nil
// by default. Emit sites throughout hw, core, and the backends call
// Machine.Trace, which is a constant-false branch under the notrace
// build tag and a single atomic load + nil check when tracing is
// compiled in but disabled — the C17 experiment bounds that cost.

// SetTracer installs (or, with nil, removes) the machine's event
// tracer. Installing emits the KBoot event that opens the trace and
// tells checkers the core count.
func (m *Machine) SetTracer(t *trace.Tracer) {
	if t == nil {
		m.tracer.Store(nil)
		return
	}
	m.tracer.Store(t)
	m.Trace(trace.GlobalCore, trace.KBoot, 0, 0, 0, 0, uint64(len(m.Cores)))
}

// Tracer returns the installed tracer, or nil.
func (m *Machine) Tracer() *trace.Tracer {
	if !trace.Compiled {
		return nil
	}
	return m.tracer.Load()
}

// NewTracer builds a tracer sized for this machine whose timestamps
// read the machine's aggregate cycle clock. It is not installed;
// callers pass it to SetTracer (usually after attaching sinks).
func (m *Machine) NewTracer(perRing int) *trace.Tracer {
	return trace.New(len(m.Cores), perRing, m.Clock.Cycles)
}

// Trace emits one event if a tracer is installed. Compiles to nothing
// under the notrace build tag.
func (m *Machine) Trace(core int32, k trace.Kind, domain, aux, node, addr, size uint64) {
	if !trace.Compiled {
		return
	}
	if t := m.tracer.Load(); t != nil {
		t.Emit(core, k, domain, aux, node, addr, size)
	}
}

// shootdownBatch accumulates the shootdowns requested while a batch is
// armed, so one cross-core round can retire them together.
type shootdownBatch struct {
	regions []phys.Region
	full    bool
	ops     int // logical shootdown requests absorbed
}

// ShootdownRegion invalidates a physical region from every core's TLB —
// the cross-core shootdown a revocation or a scrub triggers on real
// hardware via IPIs. Each core's flush costs CostModel.TLBFlush cycles
// and acknowledges with one trace event; the enclosing monitor
// operation must not return before every core has acked (the trace
// checker enforces this). While a shootdown batch is armed
// (BeginShootdownBatch) the request is only recorded; the coalesced
// round runs at EndShootdownBatch.
func (m *Machine) ShootdownRegion(r phys.Region) {
	if b := m.sdBatch; b != nil {
		b.regions = append(b.regions, r)
		b.ops++
		return
	}
	m.Trace(trace.GlobalCore, trace.KShootdown, 0, 0, 0, uint64(r.Start), r.Size())
	for i, c := range m.Cores {
		if shootdownSkipLast && i == len(m.Cores)-1 {
			// Seeded mutation (tracebug build tag): the last core keeps
			// its stale translations and never acks.
			continue
		}
		c.tlb.FlushRegion(r)
		m.Clock.Advance(m.Cost.TLBFlush)
		if ackDropOne && i == 0 && m.ackSwallowed.CompareAndSwap(false, true) {
			// Seeded mutation (ackbug build tag): the flush ran but the
			// acknowledgement is lost — the round completes short.
			continue
		}
		m.Trace(trace.GlobalCore, trace.KShootdownAck, 0, uint64(i), 0, uint64(r.Start), r.Size())
	}
}

// ShootdownAll flushes every core's entire TLB (the shootdown for
// non-memory resources and address-space-wide invalidations).
func (m *Machine) ShootdownAll() {
	if b := m.sdBatch; b != nil {
		b.full = true
		b.ops++
		return
	}
	m.Trace(trace.GlobalCore, trace.KShootdown, 0, 0, 0, 0, 0)
	for i, c := range m.Cores {
		if shootdownSkipLast && i == len(m.Cores)-1 {
			continue
		}
		c.tlb.Flush()
		m.Clock.Advance(m.Cost.TLBFlush)
		if ackDropOne && i == 0 && m.ackSwallowed.CompareAndSwap(false, true) {
			continue // Seeded mutation (ackbug): ack lost, flush done.
		}
		m.Trace(trace.GlobalCore, trace.KShootdownAck, 0, uint64(i), 0, 0, 0)
	}
}

// BeginShootdownBatch arms shootdown coalescing: until the matching
// EndShootdownBatch, ShootdownRegion/ShootdownAll only record what must
// be invalidated. The caller must hold whatever lock serialises all
// shootdown call sites (the monitor's exclusive lock); batches do not
// nest.
func (m *Machine) BeginShootdownBatch() {
	b := &m.sdBatchCache
	b.regions = b.regions[:0]
	b.full = false
	b.ops = 0
	m.sdBatch = b
}

// EndShootdownBatch disarms coalescing and, if anything was recorded,
// performs ONE cross-core round: a single KShootdown, each core
// invalidating every accumulated region (or its whole TLB if any full
// flush was requested) for a single per-core IPI+flush charge and one
// ack — the io_uring-style amortisation of revocation cost. A batch
// that recorded exactly one region-shootdown is indistinguishable in
// events and cycles from the unbatched ShootdownRegion, which is what
// keeps batch-of-1 latency identical to the synchronous path. Returns
// the number of rounds performed (0 or 1) and the number of logical
// shootdown requests coalesced into it.
func (m *Machine) EndShootdownBatch() (rounds, coalesced int) {
	b := m.sdBatch
	m.sdBatch = nil
	if b == nil || b.ops == 0 {
		return 0, 0
	}
	regions := phys.NormalizeRegions(b.regions)
	var addr, size uint64
	if !b.full && len(regions) == 1 {
		addr, size = uint64(regions[0].Start), regions[0].Size()
	}
	m.Trace(trace.GlobalCore, trace.KShootdown, 0, 0, 0, addr, size)
	for i, c := range m.Cores {
		if shootdownSkipLast && i == len(m.Cores)-1 {
			continue
		}
		if b.full {
			c.tlb.Flush()
		} else {
			for _, r := range regions {
				c.tlb.FlushRegion(r)
			}
		}
		m.Clock.Advance(m.Cost.TLBFlush)
		if ackDropOne && i == 0 && m.ackSwallowed.CompareAndSwap(false, true) {
			continue // Seeded mutation (ackbug): ack lost, flush done.
		}
		m.Trace(trace.GlobalCore, trace.KShootdownAck, 0, uint64(i), 0, addr, size)
	}
	return 1, b.ops
}
