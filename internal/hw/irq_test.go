package hw

import "testing"

func TestTimerPreemption(t *testing.T) {
	m := testMachine(t)
	a := NewAsm()
	a.Label("spin")
	a.Jmp("spin")
	code := a.MustAssemble(0x1000)
	if err := m.Mem.WriteAt(0x1000, code); err != nil {
		t.Fatal(err)
	}
	core := m.Cores[0]
	core.InstallContext(&Context{Owner: 1, Filter: AllowAll{}})
	core.PC = 0x1000
	core.ArmTimer(10)
	if !core.TimerArmed() {
		t.Fatal("timer not armed")
	}
	n, trap := core.Run(1000)
	if trap.Kind != TrapTimer {
		t.Fatalf("trap = %v, want timer", trap)
	}
	if n != 10 {
		t.Fatalf("preempted after %d instructions, want 10", n)
	}
	if core.TimerArmed() {
		t.Fatal("one-shot timer still armed after firing")
	}
	// Disarmed: the spinner runs to the budget.
	core.ArmTimer(0)
	n, trap = core.Run(100)
	if trap.Kind != TrapNone || n != 100 {
		t.Fatalf("disarmed run: n=%d trap=%v", n, trap)
	}
	// Rearming works.
	core.ArmTimer(5)
	_, trap = core.Run(100)
	if trap.Kind != TrapTimer {
		t.Fatalf("rearmed trap = %v", trap)
	}
}

func TestIRQQueueFIFO(t *testing.T) {
	m := testMachine(t)
	if m.PendingIRQs() != 0 {
		t.Fatal("interrupts pending at reset")
	}
	m.RaiseIRQ(0, 7)
	m.Device(0).RaiseIRQ(9)
	if m.PendingIRQs() != 2 {
		t.Fatalf("pending = %d", m.PendingIRQs())
	}
	irq, ok := m.TakeIRQ()
	if !ok || irq.Device != 0 || irq.Vector != 7 {
		t.Fatalf("first irq = %+v", irq)
	}
	irq, ok = m.TakeIRQ()
	if !ok || irq.Vector != 9 {
		t.Fatalf("second irq = %+v", irq)
	}
	if _, ok := m.TakeIRQ(); ok {
		t.Fatal("queue should be empty")
	}
}
