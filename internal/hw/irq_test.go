package hw

import "testing"

func TestTimerPreemption(t *testing.T) {
	m := testMachine(t)
	a := NewAsm()
	a.Label("spin")
	a.Jmp("spin")
	code := a.MustAssemble(0x1000)
	if err := m.Mem.WriteAt(0x1000, code); err != nil {
		t.Fatal(err)
	}
	core := m.Cores[0]
	core.InstallContext(&Context{Owner: 1, Filter: AllowAll{}})
	core.PC = 0x1000
	core.ArmTimer(10)
	if !core.TimerArmed() {
		t.Fatal("timer not armed")
	}
	n, trap := core.Run(1000)
	if trap.Kind != TrapTimer {
		t.Fatalf("trap = %v, want timer", trap)
	}
	if n != 10 {
		t.Fatalf("preempted after %d instructions, want 10", n)
	}
	if core.TimerArmed() {
		t.Fatal("one-shot timer still armed after firing")
	}
	// Disarmed: the spinner runs to the budget.
	core.ArmTimer(0)
	n, trap = core.Run(100)
	if trap.Kind != TrapNone || n != 100 {
		t.Fatalf("disarmed run: n=%d trap=%v", n, trap)
	}
	// Rearming works.
	core.ArmTimer(5)
	_, trap = core.Run(100)
	if trap.Kind != TrapTimer {
		t.Fatalf("rearmed trap = %v", trap)
	}
}

// Timer edge cases the scheduler's dispatch path leans on: disarming
// must never fire, and a re-arm issued inside a trap handler (between
// Run calls) governs the *next* retired instruction — the trapping
// VMCALL itself retires before the timer ticks, so the old remaining
// count is simply discarded.
func TestTimerEdgeCases(t *testing.T) {
	spin := func(m *Machine) *Core {
		a := NewAsm()
		a.Label("spin")
		a.Jmp("spin")
		if err := m.Mem.WriteAt(0x1000, a.MustAssemble(0x1000)); err != nil {
			t.Fatal(err)
		}
		core := m.Cores[0]
		core.InstallContext(&Context{Owner: 1, Filter: AllowAll{}})
		core.PC = 0x1000
		return core
	}

	disarms := []struct {
		name  string
		first int // armed value before the disarm (0 = never armed)
		arg   int // the ArmTimer argument under test
	}{
		{"zero on idle timer", 0, 0},
		{"zero disarms a pending timer", 10, 0},
		{"negative disarms a pending timer", 10, -3},
	}
	for _, tc := range disarms {
		t.Run(tc.name, func(t *testing.T) {
			core := spin(testMachine(t))
			if tc.first > 0 {
				core.ArmTimer(tc.first)
			}
			core.ArmTimer(tc.arg)
			if core.TimerArmed() {
				t.Fatalf("ArmTimer(%d) left the timer armed", tc.arg)
			}
			// Nothing may fire — not immediately, not after the old
			// remaining count would have elapsed.
			if n, trap := core.Run(100); trap.Kind != TrapNone || n != 100 {
				t.Fatalf("disarmed run: n=%d trap=%v", n, trap)
			}
		})
	}

	t.Run("one-instruction quantum", func(t *testing.T) {
		core := spin(testMachine(t))
		core.ArmTimer(1)
		if n, trap := core.Run(100); trap.Kind != TrapTimer || n != 1 {
			t.Fatalf("n=%d trap=%v, want timer after exactly 1", n, trap)
		}
	})

	t.Run("rearm inside a trap handler", func(t *testing.T) {
		m := testMachine(t)
		a := NewAsm()
		a.Movi(1, 1)
		a.Vmcall()
		a.Label("spin")
		a.Jmp("spin")
		if err := m.Mem.WriteAt(0x2000, a.MustAssemble(0x2000)); err != nil {
			t.Fatal(err)
		}
		core := m.Cores[0]
		core.InstallContext(&Context{Owner: 1, Filter: AllowAll{}})
		core.PC = 0x2000
		core.ArmTimer(50)
		n, trap := core.Run(100)
		if trap.Kind != TrapVMCall || n != 2 {
			t.Fatalf("n=%d trap=%v, want vmcall after 2", n, trap)
		}
		// The VMCALL retired without ticking the timer down to a fire;
		// the handler now re-arms with a shorter slice. The old 48
		// remaining instructions must be forgotten.
		core.ArmTimer(3)
		n, trap = core.Run(100)
		if trap.Kind != TrapTimer || n != 3 {
			t.Fatalf("after rearm: n=%d trap=%v, want timer after exactly 3", n, trap)
		}
	})

	t.Run("armed timer survives a vmcall exit", func(t *testing.T) {
		m := testMachine(t)
		a := NewAsm()
		a.Vmcall()
		a.Label("spin")
		a.Jmp("spin")
		if err := m.Mem.WriteAt(0x2000, a.MustAssemble(0x2000)); err != nil {
			t.Fatal(err)
		}
		core := m.Cores[0]
		core.InstallContext(&Context{Owner: 1, Filter: AllowAll{}})
		core.PC = 0x2000
		core.ArmTimer(1)
		if _, trap := core.Run(100); trap.Kind != TrapVMCall {
			t.Fatalf("trap = %v, want vmcall", trap)
		}
		if !core.TimerArmed() {
			t.Fatal("vmcall must not consume the pending timer tick")
		}
		// Left armed, the single remaining tick fires on the next
		// retired instruction.
		if n, trap := core.Run(100); trap.Kind != TrapTimer || n != 1 {
			t.Fatalf("n=%d trap=%v, want timer after 1", n, trap)
		}
	})
}

func TestIRQQueueFIFO(t *testing.T) {
	m := testMachine(t)
	if m.PendingIRQs() != 0 {
		t.Fatal("interrupts pending at reset")
	}
	m.RaiseIRQ(0, 7)
	m.Device(0).RaiseIRQ(9)
	if m.PendingIRQs() != 2 {
		t.Fatalf("pending = %d", m.PendingIRQs())
	}
	irq, ok := m.TakeIRQ()
	if !ok || irq.Device != 0 || irq.Vector != 7 {
		t.Fatalf("first irq = %+v", irq)
	}
	irq, ok = m.TakeIRQ()
	if !ok || irq.Vector != 9 {
		t.Fatalf("second irq = %+v", irq)
	}
	if _, ok := m.TakeIRQ(); ok {
		t.Fatal("queue should be empty")
	}
}
