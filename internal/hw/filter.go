package hw

import (
	"strings"

	"github.com/tyche-sim/tyche/internal/phys"
)

// Perm is a hardware access-permission bitmask (read/write/execute).
type Perm uint8

// Permission bits.
const (
	PermR Perm = 1 << iota // read
	PermW                  // write
	PermX                  // execute (instruction fetch)

	PermNone Perm = 0
	PermRW        = PermR | PermW
	PermRX        = PermR | PermX
	PermRWX       = PermR | PermW | PermX
)

// Allows reports whether p includes every bit of want.
func (p Perm) Allows(want Perm) bool { return p&want == want }

func (p Perm) String() string {
	if p == 0 {
		return "---"
	}
	var b strings.Builder
	for _, f := range [...]struct {
		bit Perm
		ch  byte
	}{{PermR, 'r'}, {PermW, 'w'}, {PermX, 'x'}} {
		if p&f.bit != 0 {
			b.WriteByte(f.ch)
		} else {
			b.WriteByte('-')
		}
	}
	return b.String()
}

// AccessFilter is a hardware memory access-control structure: the
// monitor-managed second level (EPT on x86_64, the PMP register file on
// RISC-V) or the OS-managed first level. Translation is identity — the
// monitor manages physical names — so a filter only answers "may this
// access proceed?".
//
// Generation increments on every permission change; TLBs use it to detect
// staleness (a TLB caching decisions from an old generation is exactly
// the stale-mapping hazard the monitor's flush-on-revoke policy closes).
type AccessFilter interface {
	// Check reports whether an access of kind want at address a is
	// permitted.
	Check(a phys.Addr, want Perm) bool
	// Lookup returns the full permission set applying at a.
	Lookup(a phys.Addr) Perm
	// Generation returns a counter incremented on every mutation.
	Generation() uint64
}

// AllowAll is an AccessFilter granting unrestricted access. It models a
// machine (or privilege level) with no isolation hardware engaged — e.g.
// the commodity baseline where ring 0 bypasses user protections.
type AllowAll struct{}

// Check always reports true.
func (AllowAll) Check(phys.Addr, Perm) bool { return true }

// Lookup always returns PermRWX.
func (AllowAll) Lookup(phys.Addr) Perm { return PermRWX }

// Generation always returns 0; AllowAll never changes.
func (AllowAll) Generation() uint64 { return 0 }

// DenyAll is an AccessFilter rejecting every access, the safe default for
// a freshly created, not-yet-configured domain context.
type DenyAll struct{}

// Check always reports false.
func (DenyAll) Check(phys.Addr, Perm) bool { return false }

// Lookup always returns PermNone.
func (DenyAll) Lookup(phys.Addr) Perm { return PermNone }

// Generation always returns 0; DenyAll never changes.
func (DenyAll) Generation() uint64 { return 0 }
