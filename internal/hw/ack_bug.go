//go:build !ackbug

package hw

// AckBugArmed reports whether this binary carries the seeded
// lost-acknowledgement bug (the ackbug build tag): exactly one
// cross-core TLB shootdown drops core 0's acknowledgement — the flush
// itself still runs, so only the completion protocol is broken. The
// mutation test proves both the serial and sharded trace checkers
// flag the operation completing with a missing ack (shootdown-
// acknowledgement property), distinguishing a reporting bug from
// tracebug's genuinely-stale-TLB bug.
const AckBugArmed = false

// ackDropOne makes the next shootdown round swallow core 0's ack.
// Constant-false in normal builds so the branch folds away.
const ackDropOne = false
