package hw

import (
	"sync"

	"github.com/tyche-sim/tyche/internal/phys"
)

// CacheLineSize is the modelled cache line size in bytes.
const CacheLineSize = 64

// DefaultCacheLines is the modelled per-core data cache capacity in
// lines (512 lines x 64 B = 32 KiB, an L1d).
const DefaultCacheLines = 512

// Cache models per-core data-cache micro-architectural state at the
// granularity the side-channel experiments need: which line-sized tags
// are resident. A prime+probe attacker distinguishes hits from misses
// after a victim ran; the monitor's flush-on-transition revocation
// policy (§4.1: "revocation policies that flush micro-architectural
// state (caches) during a transition") erases that signal.
//
// The model is direct-mapped by line index with tags, which is enough to
// produce real conflict-eviction behaviour for prime+probe.
//
// The cache belongs to one core, but the monitor's flush-on-transition
// cleanups flush other cores' caches (the simulated IPI), so operations
// take a mutex. It is uncontended on the hot path.
type Cache struct {
	mu    sync.Mutex
	lines []uint64 // resident line tag per set, 0 = empty (tag is addr/64+1)
	dirty []bool

	hits, misses, flushedLines uint64
}

// NewCache returns a cache with n line slots.
func NewCache(n int) *Cache {
	if n <= 0 {
		n = DefaultCacheLines
	}
	return &Cache{lines: make([]uint64, n), dirty: make([]bool, n)}
}

func (c *Cache) slot(a phys.Addr) (idx int, tag uint64) {
	line := uint64(a) / CacheLineSize
	return int(line % uint64(len(c.lines))), line + 1
}

// Touch records an access to a, returning true on hit. Write accesses
// mark the line dirty.
func (c *Cache) Touch(a phys.Addr, write bool) bool {
	idx, tag := c.slot(a)
	c.mu.Lock()
	defer c.mu.Unlock()
	hit := c.lines[idx] == tag
	if hit {
		c.hits++
	} else {
		c.misses++
		c.lines[idx] = tag
		c.dirty[idx] = false
	}
	if write {
		c.dirty[idx] = true
	}
	return hit
}

// Probe reports whether a is resident without refilling on miss: the
// attacker's measurement primitive.
func (c *Cache) Probe(a phys.Addr) bool {
	idx, tag := c.slot(a)
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lines[idx] == tag
}

// Resident returns the number of occupied line slots.
func (c *Cache) Resident() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, t := range c.lines {
		if t != 0 {
			n++
		}
	}
	return n
}

// Flush invalidates the whole cache and returns the number of lines that
// were resident (callers charge CacheFlushLine per line).
func (c *Cache) Flush() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n uint64
	for i := range c.lines {
		if c.lines[i] != 0 {
			n++
			c.lines[i] = 0
			c.dirty[i] = false
		}
	}
	c.flushedLines += n
	return n
}

// Stats returns hit/miss/flushed-line counters.
func (c *Cache) Stats() (hits, misses, flushed uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.flushedLines
}
