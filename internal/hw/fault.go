package hw

import "github.com/tyche-sim/tyche/internal/phys"

// Fault injection hooks. The simulated hardware consults an optional
// FaultInjector at the points where real silicon fails: memory accesses
// (machine checks, hard core stalls), the interrupt controller (lost
// and spurious lines), and — via internal/tpm's quote hook — the root
// of trust. The injector lives in internal/fault; hw only defines the
// interface so the dependency points outward.
//
// Determinism contract: hardware calls the injector at architecturally
// ordered points. Per-core events (OnAccess) are ordered by that core's
// own instruction stream, so a countdown over them replays exactly even
// under SMP. Machine-wide events (IRQ raise/take) are ordered by the
// interrupt controller's lock; they are deterministic on a single
// runner and aggregate-deterministic under concurrent cores.

// FaultAction is the outcome of consulting the injector for one access.
type FaultAction int

// Fault actions.
const (
	// FaultNone lets the access proceed normally.
	FaultNone FaultAction = iota
	// FaultAbort aborts the access with a machine check (TrapMachineCheck);
	// the core survives and can be rescheduled.
	FaultAbort
	// FaultStall poisons the core: this access and every subsequent step
	// raise TrapMachineCheck until ClearStall — a hard core crash.
	FaultStall
)

func (a FaultAction) String() string {
	switch a {
	case FaultNone:
		return "none"
	case FaultAbort:
		return "abort"
	case FaultStall:
		return "stall"
	}
	return "action(?)"
}

// FaultInjector is the hardware-facing fault hook. Implementations must
// be safe for concurrent use: every core consults OnAccess, and devices
// raise IRQs from arbitrary goroutines.
type FaultInjector interface {
	// OnAccess is consulted before each guest memory access (including
	// instruction fetch) on core. It returns the action to take.
	OnAccess(core phys.CoreID, a phys.Addr, want Perm) FaultAction
	// OnRaiseIRQ is consulted when dev raises vector; returning true
	// drops the interrupt (a lost line).
	OnRaiseIRQ(dev phys.DeviceID, vector uint32) bool
	// TakeSpuriousIRQ is consulted on each controller poll; it may
	// return a phantom interrupt to deliver ahead of the real queue.
	TakeSpuriousIRQ() (IRQ, bool)
}

// SetFaultInjector installs (or, with nil, removes) the machine's fault
// injector. Install before running cores; swapping mid-run is safe but
// the handoff point is scheduler-dependent.
func (m *Machine) SetFaultInjector(f FaultInjector) {
	if f == nil {
		m.fault.Store(nil)
		return
	}
	m.fault.Store(&f)
}

// FaultInjector returns the installed injector, or nil.
func (m *Machine) FaultInjector() FaultInjector {
	if p := m.fault.Load(); p != nil {
		return *p
	}
	return nil
}
