package hw

import (
	"testing"

	"github.com/tyche-sim/tyche/internal/phys"
)

// TestMRUSetHitMissAccounting pins the exact hit/miss behaviour of the
// 4-way front-side translation cache: round-robin replacement, capacity
// MRUWays pages, and implicit invalidation on TLB flush and filter
// generation change. The counts are exact — a change to associativity,
// replacement policy, or validation must update this test deliberately.
func TestMRUSetHitMissAccounting(t *testing.T) {
	m := testMachine(t)
	c := m.Cores[0]
	ept := NewEPT()
	if err := ept.Map(phys.MakeRegion(0, 16*phys.PageSize), PermRW); err != nil {
		t.Fatal(err)
	}
	ctx := &Context{Owner: 1, Filter: ept, UsesEPT: true, ASID: 1}
	c.InstallContext(ctx)

	touch := func(page uint64) {
		t.Helper()
		if tr := c.access(phys.Addr(page*phys.PageSize), PermR, 8); tr != nil {
			t.Fatalf("access to page %d trapped: %v", page, tr)
		}
	}
	assertCounts := func(wantHits, wantMisses uint64) {
		t.Helper()
		hits, misses := c.MRUStats()
		if hits != wantHits || misses != wantMisses {
			t.Fatalf("mru stats = %d hits / %d misses, want %d / %d",
				hits, misses, wantHits, wantMisses)
		}
	}

	// Cold: four distinct pages fill the four ways.
	for p := uint64(0); p < 4; p++ {
		touch(p)
	}
	assertCounts(0, 4)

	// All four resident: pure hits.
	for p := uint64(0); p < 4; p++ {
		touch(p)
	}
	assertCounts(4, 4)

	// Fifth page evicts the round-robin victim (page 0).
	touch(4)
	assertCounts(4, 5)
	// Page 0 misses (evicted) and re-inserts over page 1.
	touch(0)
	assertCounts(4, 6)
	// Pages 2 and 3 survived both replacements.
	touch(2)
	touch(3)
	assertCounts(6, 6)

	// A TLB flush (shootdown) invalidates every way via the flush epoch.
	c.TLBUnit().Flush()
	touch(2)
	assertCounts(6, 7)
	touch(2)
	assertCounts(7, 7)

	// A filter generation bump (permission change) invalidates too.
	if err := ept.Map(phys.MakeRegion(0, 16*phys.PageSize), PermRW); err != nil {
		t.Fatal(err)
	}
	touch(2)
	assertCounts(7, 8)

	// InstallContext drops all ways.
	c.InstallContext(ctx)
	touch(2)
	touch(3)
	assertCounts(7, 10)
}
