package hw

import (
	"testing"

	"github.com/tyche-sim/tyche/internal/phys"
)

// Micro-benchmarks for the hot translation path: clock-hand TLB
// eviction (formerly a slice-shifting FIFO) and the core's 1-entry MRU
// cache in front of it.

// BenchmarkTLBInsertEvict hammers Insert with a working set four times
// the TLB capacity, so every fill evicts. The old FIFO shifted the
// whole queue on each of these; the clock hand just sweeps.
func BenchmarkTLBInsertEvict(b *testing.B) {
	tlb := NewTLB(DefaultTLBEntries)
	set := uint64(4 * DefaultTLBEntries)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tlb.Insert(1, uint64(i)%set, PermRW, 1)
	}
}

// BenchmarkTLBLookupHit measures the steady-state hit path.
func BenchmarkTLBLookupHit(b *testing.B) {
	tlb := NewTLB(DefaultTLBEntries)
	for pg := uint64(0); pg < DefaultTLBEntries; pg++ {
		tlb.Insert(1, pg, PermRW, 1)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, hit := tlb.Lookup(1, uint64(i)%DefaultTLBEntries, 1); !hit {
			b.Fatal("expected hit")
		}
	}
}

// BenchmarkCoreAccessMRU runs a tight load loop against one page, the
// case the core's 1-entry MRU translation cache is built for: after the
// first fill every access short-circuits before the TLB's mutex.
func BenchmarkCoreAccessMRU(b *testing.B) {
	m, err := NewMachine(Config{MemBytes: 1 << 20, NumCores: 1})
	if err != nil {
		b.Fatal(err)
	}
	base := phys.Addr(0x1000)
	a := NewAsm()
	a.Movi(1, 0x8000)
	a.Label("loop")
	a.Ld(2, 1, 0)
	a.Jmp("loop")
	code := a.MustAssemble(base)
	if err := m.Mem.WriteAt(base, code); err != nil {
		b.Fatal(err)
	}
	core := m.Cores[0]
	core.InstallContext(&Context{Owner: 1, Filter: AllowAll{}, Entry: base})
	core.PC = base
	b.ReportAllocs()
	b.ResetTimer()
	if n, trap := core.Run(b.N); n != b.N || trap.Kind != TrapNone {
		b.Fatalf("ran %d/%d, trap %v", n, b.N, trap)
	}
}

// TestMachineRunAll exercises the SMP engine: every core executes its
// own sum loop concurrently, and per-core results, registers, and the
// aggregated machine clock must all come out right.
func TestMachineRunAll(t *testing.T) {
	m, err := NewMachine(Config{MemBytes: 1 << 20, NumCores: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range m.Cores {
		base := phys.Addr(0x1000 + uint64(i)*phys.PageSize)
		n := uint64(10 * (i + 1)) // core i sums 0..10(i+1)-1
		a := NewAsm()
		a.Movi(1, 0)
		a.Movi(2, 0)
		a.Movi(3, uint32(n))
		a.Label("loop")
		a.Add(1, 1, 2)
		a.Addi(2, 2, 1)
		a.Jlt(2, 3, "loop")
		a.Hlt()
		code := a.MustAssemble(base)
		if err := m.Mem.WriteAt(base, code); err != nil {
			t.Fatal(err)
		}
		c.InstallContext(&Context{Owner: uint64(i + 1), Filter: AllowAll{}, Entry: base})
		c.PC = base
	}
	runs := m.RunAll(10000)
	if len(runs) != 4 {
		t.Fatalf("got %d core runs, want 4", len(runs))
	}
	for i, r := range runs {
		if r.Core != phys.CoreID(i) {
			t.Fatalf("run %d is core %v, want ID order", i, r.Core)
		}
		if r.Trap.Kind != TrapHalt {
			t.Fatalf("core %d trap = %v, want halt", i, r.Trap)
		}
		n := uint64(10 * (i + 1))
		want := n * (n - 1) / 2
		if got := m.Cores[i].Regs[1]; got != want {
			t.Fatalf("core %d sum = %d, want %d", i, got, want)
		}
	}
	// The machine clock aggregates per-core shards; it must reflect all
	// four cores' work and reset back to zero everywhere.
	var perCore uint64
	for _, c := range m.Cores {
		perCore += c.Cycles()
	}
	if total := m.Clock.Cycles(); total == 0 || total < perCore {
		t.Fatalf("clock total = %d, per-core sum = %d", total, perCore)
	}
	m.Clock.Reset()
	if m.Clock.Cycles() != 0 {
		t.Fatalf("clock after reset = %d", m.Clock.Cycles())
	}
	for i, c := range m.Cores {
		if c.Cycles() != 0 {
			t.Fatalf("core %d shard after reset = %d", i, c.Cycles())
		}
	}
}

// TestMachineRunAllSkipsIdleCores checks that cores without an
// installed context are left out of the result set.
func TestMachineRunAllSkipsIdleCores(t *testing.T) {
	m, err := NewMachine(Config{MemBytes: 1 << 20, NumCores: 2})
	if err != nil {
		t.Fatal(err)
	}
	base := phys.Addr(0x1000)
	a := NewAsm()
	a.Hlt()
	code := a.MustAssemble(base)
	if err := m.Mem.WriteAt(base, code); err != nil {
		t.Fatal(err)
	}
	m.Cores[1].InstallContext(&Context{Owner: 1, Filter: AllowAll{}, Entry: base})
	m.Cores[1].PC = base
	runs := m.RunAll(10)
	if len(runs) != 1 || runs[0].Core != 1 || runs[0].Trap.Kind != TrapHalt {
		t.Fatalf("runs = %+v, want core 1 halting alone", runs)
	}
}

// TestTLBClockHandSecondChance pins down the second-chance property the
// plain eviction test cannot see: a referenced entry survives one sweep
// of the hand, an unreferenced one does not.
func TestTLBClockHandSecondChance(t *testing.T) {
	tlb := NewTLB(2)
	tlb.Insert(0, 1, PermR, 0)
	tlb.Insert(0, 2, PermR, 0)
	// Reference page 2 only; page 1's ref bit decays after the hand
	// passes both once.
	if _, hit := tlb.Lookup(0, 2, 0); !hit {
		t.Fatal("page 2 should hit")
	}
	tlb.Insert(0, 3, PermR, 0) // hand clears refs, evicts first unreferenced
	if _, hit := tlb.Lookup(0, 1, 0); hit {
		t.Fatal("unreferenced page 1 should be the victim")
	}
	if _, hit := tlb.Lookup(0, 2, 0); !hit {
		t.Fatal("referenced page 2 should survive the sweep")
	}
	if _, hit := tlb.Lookup(0, 3, 0); !hit {
		t.Fatal("page 3 was just inserted")
	}
}

// TestCoreMRUCoherence: the 1-entry MRU cache must not outlive a TLB
// flush (shootdown) — after a flush the next access walks again.
func TestCoreMRUCoherence(t *testing.T) {
	m, err := NewMachine(Config{MemBytes: 1 << 20, NumCores: 1})
	if err != nil {
		t.Fatal(err)
	}
	e := NewEPT()
	if err := e.Map(phys.MakeRegion(0x1000, phys.PageSize), PermRX); err != nil {
		t.Fatal(err)
	}
	data := phys.MakeRegion(0x8000, phys.PageSize)
	if err := e.Map(data, PermRW); err != nil {
		t.Fatal(err)
	}
	base := phys.Addr(0x1000)
	a := NewAsm()
	a.Movi(1, 0x8000)
	a.Ld(2, 1, 0)
	a.Ld(2, 1, 8) // same page: served by the MRU entry
	a.Hlt()
	code := a.MustAssemble(base)
	if err := m.Mem.WriteAt(base, code); err != nil {
		t.Fatal(err)
	}
	core := m.Cores[0]
	core.InstallContext(&Context{Owner: 1, Filter: e, Entry: base, UsesEPT: true})
	core.PC = base
	if _, trap := core.Run(100); trap.Kind != TrapHalt {
		t.Fatalf("first run trap = %v", trap)
	}
	// Revoke the data page with a proper shootdown. The MRU entry keys
	// on the flush count, so it must miss and the walk must fault.
	if err := e.Unmap(data); err != nil {
		t.Fatal(err)
	}
	core.TLBUnit().Flush()
	core.ClearHalt()
	core.PC = base
	_, trap := core.Run(100)
	if trap.Kind != TrapFault || trap.Addr != 0x8000 {
		t.Fatalf("post-shootdown trap = %v, want fault at 0x8000", trap)
	}
}
