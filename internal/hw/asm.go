package hw

import (
	"fmt"

	"github.com/tyche-sim/tyche/internal/phys"
)

// Asm builds programs for the simulated ISA with label-based control
// flow. Jump targets are absolute physical addresses resolved at
// Assemble time against the program's load address, so the same source
// can be placed anywhere in physical memory (the address-reuse property
// Tyche-enclaves rely on, §4.2).
type Asm struct {
	instrs []Instr
	labels map[string]int // label -> instruction index
	fixups map[int]string // instruction index -> label for Imm
	errs   []error
}

// NewAsm returns an empty program builder.
func NewAsm() *Asm {
	return &Asm{labels: make(map[string]int), fixups: make(map[int]string)}
}

func (a *Asm) emit(i Instr) *Asm {
	a.instrs = append(a.instrs, i)
	return a
}

// Label defines name at the current position. Redefinition is an error
// reported by Assemble.
func (a *Asm) Label(name string) *Asm {
	if _, dup := a.labels[name]; dup {
		a.errs = append(a.errs, fmt.Errorf("hw: duplicate label %q", name))
		return a
	}
	a.labels[name] = len(a.instrs)
	return a
}

// Hlt emits a halt.
func (a *Asm) Hlt() *Asm { return a.emit(Instr{Op: OpHlt}) }

// Nop emits a no-op.
func (a *Asm) Nop() *Asm { return a.emit(Instr{Op: OpNop}) }

// Movi emits rd = imm.
func (a *Asm) Movi(rd int, imm uint32) *Asm {
	return a.emit(Instr{Op: OpMovi, Rd: uint8(rd), Imm: imm})
}

// Mov emits rd = rs1.
func (a *Asm) Mov(rd, rs1 int) *Asm {
	return a.emit(Instr{Op: OpMov, Rd: uint8(rd), Rs1: uint8(rs1)})
}

// Add emits rd = rs1 + rs2.
func (a *Asm) Add(rd, rs1, rs2 int) *Asm {
	return a.emit(Instr{Op: OpAdd, Rd: uint8(rd), Rs1: uint8(rs1), Rs2: uint8(rs2)})
}

// Sub emits rd = rs1 - rs2.
func (a *Asm) Sub(rd, rs1, rs2 int) *Asm {
	return a.emit(Instr{Op: OpSub, Rd: uint8(rd), Rs1: uint8(rs1), Rs2: uint8(rs2)})
}

// Mul emits rd = rs1 * rs2.
func (a *Asm) Mul(rd, rs1, rs2 int) *Asm {
	return a.emit(Instr{Op: OpMul, Rd: uint8(rd), Rs1: uint8(rs1), Rs2: uint8(rs2)})
}

// And emits rd = rs1 & rs2.
func (a *Asm) And(rd, rs1, rs2 int) *Asm {
	return a.emit(Instr{Op: OpAnd, Rd: uint8(rd), Rs1: uint8(rs1), Rs2: uint8(rs2)})
}

// Or emits rd = rs1 | rs2.
func (a *Asm) Or(rd, rs1, rs2 int) *Asm {
	return a.emit(Instr{Op: OpOr, Rd: uint8(rd), Rs1: uint8(rs1), Rs2: uint8(rs2)})
}

// Xor emits rd = rs1 ^ rs2.
func (a *Asm) Xor(rd, rs1, rs2 int) *Asm {
	return a.emit(Instr{Op: OpXor, Rd: uint8(rd), Rs1: uint8(rs1), Rs2: uint8(rs2)})
}

// Shl emits rd = rs1 << rs2.
func (a *Asm) Shl(rd, rs1, rs2 int) *Asm {
	return a.emit(Instr{Op: OpShl, Rd: uint8(rd), Rs1: uint8(rs1), Rs2: uint8(rs2)})
}

// Shr emits rd = rs1 >> rs2.
func (a *Asm) Shr(rd, rs1, rs2 int) *Asm {
	return a.emit(Instr{Op: OpShr, Rd: uint8(rd), Rs1: uint8(rs1), Rs2: uint8(rs2)})
}

// Addi emits rd = rs1 + imm.
func (a *Asm) Addi(rd, rs1 int, imm uint32) *Asm {
	return a.emit(Instr{Op: OpAddi, Rd: uint8(rd), Rs1: uint8(rs1), Imm: imm})
}

// Ld emits rd = mem64[rs1+imm].
func (a *Asm) Ld(rd, rs1 int, imm uint32) *Asm {
	return a.emit(Instr{Op: OpLd, Rd: uint8(rd), Rs1: uint8(rs1), Imm: imm})
}

// St emits mem64[rs1+imm] = rs2.
func (a *Asm) St(rs1 int, imm uint32, rs2 int) *Asm {
	return a.emit(Instr{Op: OpSt, Rs1: uint8(rs1), Rs2: uint8(rs2), Imm: imm})
}

// Ldb emits rd = mem8[rs1+imm].
func (a *Asm) Ldb(rd, rs1 int, imm uint32) *Asm {
	return a.emit(Instr{Op: OpLdb, Rd: uint8(rd), Rs1: uint8(rs1), Imm: imm})
}

// Stb emits mem8[rs1+imm] = rs2.
func (a *Asm) Stb(rs1 int, imm uint32, rs2 int) *Asm {
	return a.emit(Instr{Op: OpStb, Rs1: uint8(rs1), Rs2: uint8(rs2), Imm: imm})
}

// Jmp emits an unconditional jump to label.
func (a *Asm) Jmp(label string) *Asm {
	a.fixups[len(a.instrs)] = label
	return a.emit(Instr{Op: OpJmp})
}

// Jz emits a jump to label when rs1 == 0.
func (a *Asm) Jz(rs1 int, label string) *Asm {
	a.fixups[len(a.instrs)] = label
	return a.emit(Instr{Op: OpJz, Rs1: uint8(rs1)})
}

// Jnz emits a jump to label when rs1 != 0.
func (a *Asm) Jnz(rs1 int, label string) *Asm {
	a.fixups[len(a.instrs)] = label
	return a.emit(Instr{Op: OpJnz, Rs1: uint8(rs1)})
}

// Jlt emits a jump to label when rs1 < rs2 (unsigned).
func (a *Asm) Jlt(rs1, rs2 int, label string) *Asm {
	a.fixups[len(a.instrs)] = label
	return a.emit(Instr{Op: OpJlt, Rs1: uint8(rs1), Rs2: uint8(rs2)})
}

// Vmcall emits a trap to the isolation monitor.
func (a *Asm) Vmcall() *Asm { return a.emit(Instr{Op: OpVmcall}) }

// Syscall emits a trap to the domain's kernel.
func (a *Asm) Syscall() *Asm { return a.emit(Instr{Op: OpSyscall}) }

// Vmfunc emits a fast view switch to the pre-registered context
// selected by r14 (a guest instruction — no monitor exit). The next
// instruction must be executable in the target view: callers place
// VMFUNC on a trampoline page mapped in both domains.
func (a *Asm) Vmfunc() *Asm { return a.emit(Instr{Op: OpVmfunc}) }

// Len returns the size in bytes of the program assembled so far.
func (a *Asm) Len() int { return len(a.instrs) * InstrSize }

// Assemble resolves labels against load address base and returns the
// encoded program bytes.
func (a *Asm) Assemble(base phys.Addr) ([]byte, error) {
	if len(a.errs) > 0 {
		return nil, a.errs[0]
	}
	out := make([]byte, 0, len(a.instrs)*InstrSize)
	for idx, ins := range a.instrs {
		if label, ok := a.fixups[idx]; ok {
			tgt, ok := a.labels[label]
			if !ok {
				return nil, fmt.Errorf("hw: undefined label %q", label)
			}
			addr := uint64(base) + uint64(tgt)*InstrSize
			if addr > 0xffffffff {
				return nil, fmt.Errorf("hw: label %q resolves to %#x, beyond imm32", label, addr)
			}
			ins.Imm = uint32(addr)
		}
		out = ins.EncodeTo(out)
	}
	return out, nil
}

// MustAssemble is Assemble, panicking on error; for tests and examples
// with hand-written, known-good programs.
func (a *Asm) MustAssemble(base phys.Addr) []byte {
	b, err := a.Assemble(base)
	if err != nil {
		panic(err)
	}
	return b
}
