package hw

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/trace"
)

// Ring is a privilege ring inside a trust domain. The monitor is outside
// this hierarchy (it runs in root/machine mode, reached only by traps):
// rings order software *within* a domain, which is precisely the
// hierarchy the paper decouples isolation from (§2).
type Ring uint8

// Ring levels. Only the two architecturally interesting levels are
// modelled.
const (
	RingKernel Ring = 0 // the domain's privileged code (OS / guest kernel)
	RingUser   Ring = 3 // the domain's unprivileged code
)

func (r Ring) String() string {
	if r == RingKernel {
		return "ring0"
	}
	return "ring3"
}

// TrapKind classifies why a core stopped executing.
type TrapKind int

// Trap kinds.
const (
	TrapNone         TrapKind = iota // instruction budget exhausted, no event
	TrapHalt                         // explicit HLT
	TrapVMCall                       // trap to the isolation monitor
	TrapSyscall                      // trap to the domain's kernel
	TrapFault                        // memory access denied (or bus error)
	TrapIllegal                      // undecodable instruction
	TrapTimer                        // the core's one-shot timer expired
	TrapMachineCheck                 // hardware fault (injected machine check or core stall)
)

var trapNames = [...]string{
	TrapNone: "none", TrapHalt: "halt", TrapVMCall: "vmcall",
	TrapSyscall: "syscall", TrapFault: "fault", TrapIllegal: "illegal",
	TrapTimer: "timer", TrapMachineCheck: "machine-check",
}

func (k TrapKind) String() string {
	if int(k) < len(trapNames) {
		return trapNames[k]
	}
	return fmt.Sprintf("trap(%d)", int(k))
}

// Trap describes a core's exit from guest execution.
type Trap struct {
	Kind TrapKind
	// Addr is the faulting address for TrapFault.
	Addr phys.Addr
	// Want is the denied permission for TrapFault.
	Want Perm
	// PC is the program counter at the trapping instruction.
	PC phys.Addr
	// Info carries human-readable detail.
	Info string
}

func (t Trap) String() string {
	switch t.Kind {
	case TrapFault:
		return fmt.Sprintf("fault(%v %v at pc=%v)", t.Addr, t.Want, t.PC)
	case TrapIllegal:
		return fmt.Sprintf("illegal(pc=%v: %s)", t.PC, t.Info)
	case TrapMachineCheck:
		return fmt.Sprintf("machine-check(pc=%v: %s)", t.PC, t.Info)
	default:
		return t.Kind.String()
	}
}

// Context is the execution context of a trust domain on a core — the
// analogue of a VMCS (x86_64) or the machine-mode-saved hart state
// (RISC-V). The monitor creates contexts and installs filters; the
// domain's own kernel may install an OSFilter for its internal rings.
type Context struct {
	// Owner is the owning trust domain's ID (opaque to hardware).
	Owner uint64
	// Filter is the monitor-managed access filter (EPT or PMP view).
	// Enforced on every access, every ring.
	Filter AccessFilter
	// OSFilter is the domain-kernel-managed first-level filter. It is
	// bypassed in RingKernel — the commodity "privileged code can bypass
	// process isolation" behaviour (§2.2) — and enforced in RingUser.
	// Nil means no first-level restriction.
	OSFilter AccessFilter
	// Entry is the domain's fixed entry point (§3.1: "domains have a
	// fixed entry point").
	Entry phys.Addr
	// UsesEPT charges the two-dimensional walk cost on TLB misses.
	UsesEPT bool
	// ASID tags this context's TLB entries. Distinct contexts with
	// distinct ASIDs can coexist in a tagged TLB, which is what lets
	// VMFUNC-style fast switches skip the flush.
	ASID uint64

	// Saved register state for monitor-mediated transitions.
	SavedRegs [NumRegs]uint64
	SavedPC   phys.Addr
	SavedRing Ring
}

// Core is one simulated CPU core. Architectural state (Regs, PC, Ring,
// the MRU translation cache, the timer) belongs to the goroutine
// driving the core and is deliberately lock-free; state that other
// cores or the monitor touch while this core runs (installed context,
// halt latch, VMFUNC list, TLB, cache, instruction counters) is atomic
// or internally locked.
type Core struct {
	id   phys.CoreID
	mach *Machine

	// Regs is the architectural register file r0..r15.
	Regs [NumRegs]uint64
	// PC is the program counter (a physical address).
	PC phys.Addr
	// Ring is the current privilege ring inside the running domain.
	Ring Ring

	// PMPUnit is the core's PMP register file (used by the RISC-V
	// backend; idle under the VT-x backend).
	PMPUnit *PMP

	ctx     atomic.Pointer[Context]
	tlb     *TLB
	cache   *Cache
	halted  atomic.Bool
	stalled atomic.Bool

	// clk is this core's clock shard: guest execution charges it
	// lock-free, and the machine clock aggregates shards on read.
	clk Clock

	// mru is a small fully-associative translation cache in front of the
	// TLB: code alternating between a handful of pages (instruction
	// fetch + a data page or two) skips the TLB map lookup entirely.
	// Each way validates the filter generation and the TLB flush count,
	// so a permission change or shootdown invalidates it implicitly.
	// Only the driving goroutine touches it (hits/misses included).
	mru mruSet

	// vmfunc is the core's pre-registered fast-switch list (the VMFUNC
	// EPTP list): guest code may switch only to contexts the monitor
	// installed here. The backend edits it cross-core on domain removal.
	vmfuncMu sync.Mutex
	vmfunc   map[uint64]*Context

	timer      int
	timerArmed bool

	instrs atomic.Uint64
	faults atomic.Uint64
}

// MRUWays is the associativity of the per-core front-side translation
// cache (mruSet).
const MRUWays = 4

// mruEntry is one way of the front-side translation cache.
type mruEntry struct {
	ok    bool
	asid  uint64
	page  uint64
	gen   uint64
	flush uint64
	perm  Perm
}

// mruSet is the core's MRUWays-way translation cache. Replacement is
// round-robin: the cost model charges identically for every way, so a
// cheaper policy with the same hit set beats LRU bookkeeping here.
type mruSet struct {
	ways [MRUWays]mruEntry
	next int
	// hits and misses tally front-side lookups (a miss that then hits
	// the TLB still counts as an mru miss). Plain fields: only the
	// goroutine driving the core writes them; read them quiescent.
	hits, misses uint64
}

// lookup scans the ways for a valid translation of (asid, page) under
// the current generation and flush epoch.
func (s *mruSet) lookup(asid, page, gen, flush uint64) (Perm, bool) {
	for i := range s.ways {
		e := &s.ways[i]
		if e.ok && e.asid == asid && e.page == page && e.gen == gen && e.flush == flush {
			s.hits++
			return e.perm, true
		}
	}
	s.misses++
	return PermNone, false
}

// insert fills the next way round-robin.
func (s *mruSet) insert(asid, page, gen, flush uint64, perm Perm) {
	s.ways[s.next] = mruEntry{ok: true, asid: asid, page: page, gen: gen, flush: flush, perm: perm}
	s.next = (s.next + 1) % MRUWays
}

// invalidate drops every way.
func (s *mruSet) invalidate() {
	for i := range s.ways {
		s.ways[i].ok = false
	}
}

// MRUStats returns the front-side translation cache's hit and miss
// counts. Read it only while the core is quiescent (the counters belong
// to the driving goroutine).
func (c *Core) MRUStats() (hits, misses uint64) {
	return c.mru.hits, c.mru.misses
}

// ID returns the core's identifier.
func (c *Core) ID() phys.CoreID { return c.id }

// Context returns the installed execution context (nil if none).
func (c *Core) Context() *Context { return c.ctx.Load() }

// TLBUnit exposes the core's TLB (for monitor flush operations and
// tests).
func (c *Core) TLBUnit() *TLB { return c.tlb }

// CacheUnit exposes the core's data cache.
func (c *Core) CacheUnit() *Cache { return c.cache }

// InstrCount returns the number of retired instructions.
func (c *Core) InstrCount() uint64 { return c.instrs.Load() }

// FaultCount returns the number of access faults taken.
func (c *Core) FaultCount() uint64 { return c.faults.Load() }

// Halted reports whether the core executed HLT and was not resumed.
func (c *Core) Halted() bool { return c.halted.Load() }

// Stalled reports whether the core took an injected hard stall. A
// stalled core raises TrapMachineCheck on every step until ClearStall.
func (c *Core) Stalled() bool { return c.stalled.Load() }

// ClearStall un-poisons a stalled core — the model of a firmware-level
// core reset. The monitor only does this once the crashed domain's
// state is fully contained.
func (c *Core) ClearStall() { c.stalled.Store(false) }

// Cycles returns the cycles this core's guest execution has consumed.
// The machine clock already includes them in its total.
func (c *Core) Cycles() uint64 { return c.clk.Cycles() }

// InstallContext binds ctx to the core, flushing the TLB (a full
// context switch on untagged hardware invalidates cached translations).
func (c *Core) InstallContext(ctx *Context) {
	c.ctx.Store(ctx)
	c.tlb.Flush()
	c.mru.invalidate()
	c.halted.Store(false)
}

// ClearHalt resumes a halted core: the privileged software that just
// reprogrammed the core's state (a kernel scheduling a process, the
// monitor re-entering a domain) clears the halt latch.
func (c *Core) ClearHalt() { c.halted.Store(false) }

// SetVMFuncEntry installs ctx at index idx of the core's VMFUNC list.
// Only the monitor's backend calls this; guest code can then switch to
// the view without an exit.
func (c *Core) SetVMFuncEntry(idx uint64, ctx *Context) {
	c.vmfuncMu.Lock()
	defer c.vmfuncMu.Unlock()
	if c.vmfunc == nil {
		c.vmfunc = make(map[uint64]*Context)
	}
	c.vmfunc[idx] = ctx
}

// ClearVMFuncEntry removes index idx from the VMFUNC list.
func (c *Core) ClearVMFuncEntry(idx uint64) {
	c.vmfuncMu.Lock()
	defer c.vmfuncMu.Unlock()
	delete(c.vmfunc, idx)
}

// vmfuncEntry looks up index idx of the VMFUNC list.
func (c *Core) vmfuncEntry(idx uint64) (*Context, bool) {
	c.vmfuncMu.Lock()
	defer c.vmfuncMu.Unlock()
	ctx, ok := c.vmfunc[idx]
	return ctx, ok
}

// SwitchContextTagged binds ctx to the core without flushing the TLB,
// relying on ASID tagging for correctness — the VMFUNC fast path.
func (c *Core) SwitchContextTagged(ctx *Context) {
	c.ctx.Store(ctx)
	c.halted.Store(false)
}

// SaveInto snapshots the core's register state into ctx.
func (c *Core) SaveInto(ctx *Context) {
	ctx.SavedRegs = c.Regs
	ctx.SavedPC = c.PC
	ctx.SavedRing = c.Ring
}

// RestoreFrom loads the core's register state from ctx.
func (c *Core) RestoreFrom(ctx *Context) {
	c.Regs = ctx.SavedRegs
	c.PC = ctx.SavedPC
	c.Ring = ctx.SavedRing
	c.halted.Store(false)
}

// access checks and charges one guest memory access of size bytes at a.
// It returns a non-nil trap on denial.
func (c *Core) access(a phys.Addr, want Perm, size uint64) *Trap {
	ctx := c.ctx.Load()
	if ctx == nil {
		return &Trap{Kind: TrapFault, Addr: a, Want: want, PC: c.PC, Info: "no context installed"}
	}
	if fi := c.mach.FaultInjector(); fi != nil {
		switch fi.OnAccess(c.id, a, want) {
		case FaultAbort:
			c.faults.Add(1)
			return &Trap{Kind: TrapMachineCheck, Addr: a, Want: want, PC: c.PC, Info: "injected machine check"}
		case FaultStall:
			c.faults.Add(1)
			c.stalled.Store(true)
			return &Trap{Kind: TrapMachineCheck, Addr: a, Want: want, PC: c.PC, Info: "core stalled"}
		}
	}
	cost := &c.mach.Cost
	clk := &c.clk
	// Bus bounds.
	if uint64(a) >= c.mach.Mem.Size() || c.mach.Mem.Size()-uint64(a) < size {
		return &Trap{Kind: TrapFault, Addr: a, Want: want, PC: c.PC, Info: "bus error"}
	}
	// Accesses are register-width at most and assumed not to straddle
	// pages (the assembler and loaders keep data naturally aligned).
	pg := a.Page()
	gen := ctx.Filter.Generation()
	var perm Perm
	if p, ok := c.mru.lookup(ctx.ASID, pg, gen, c.tlb.FlushCount()); ok {
		perm = p
		c.tlb.RecordHit()
		clk.Advance(cost.TLBHit)
	} else {
		var hit bool
		perm, hit = c.tlb.Lookup(ctx.ASID, pg, gen)
		if hit {
			clk.Advance(cost.TLBHit)
		} else {
			walk := cost.PageWalk
			if ctx.UsesEPT {
				walk += cost.EPTWalk
			}
			clk.Advance(walk)
			perm = ctx.Filter.Lookup(a)
			c.tlb.Insert(ctx.ASID, pg, perm, gen)
		}
		c.mru.insert(ctx.ASID, pg, gen, c.tlb.FlushCount(), perm)
	}
	if !perm.Allows(want) {
		c.faults.Add(1)
		return &Trap{Kind: TrapFault, Addr: a, Want: want, PC: c.PC}
	}
	// First-level (OS) filter: enforced for user ring only; ring 0 in a
	// commodity domain bypasses it — that is the monopoly the monitor's
	// second-level filter above does NOT bypass.
	if c.Ring != RingKernel && ctx.OSFilter != nil && !ctx.OSFilter.Check(a, want) {
		c.faults.Add(1)
		return &Trap{Kind: TrapFault, Addr: a, Want: want, PC: c.PC, Info: "first-level (OS) denial"}
	}
	if c.cache.Touch(a, want.Allows(PermW)) {
		clk.Advance(cost.MemHit)
	} else {
		clk.Advance(cost.MemMiss)
	}
	return nil
}

// Step executes a single instruction. It returns a trap describing any
// exit event; Trap.Kind==TrapNone means the instruction retired and
// execution may continue.
func (c *Core) Step() Trap {
	if c.stalled.Load() {
		return Trap{Kind: TrapMachineCheck, PC: c.PC, Info: "core stalled"}
	}
	if c.halted.Load() {
		return Trap{Kind: TrapHalt, PC: c.PC}
	}
	if t := c.access(c.PC, PermX, InstrSize); t != nil {
		return *t
	}
	var raw [InstrSize]byte
	if err := c.mach.Mem.ReadAt(c.PC, raw[:]); err != nil {
		return Trap{Kind: TrapFault, Addr: c.PC, Want: PermX, PC: c.PC, Info: err.Error()}
	}
	ins, err := Decode(raw[:])
	if err != nil {
		return Trap{Kind: TrapIllegal, PC: c.PC, Info: err.Error()}
	}
	cost := &c.mach.Cost
	clk := &c.clk
	next := c.PC + InstrSize
	r := &c.Regs
	switch ins.Op {
	case OpHlt:
		c.halted.Store(true)
		c.instrs.Add(1)
		return Trap{Kind: TrapHalt, PC: c.PC}
	case OpNop:
		clk.Advance(cost.ALUOp)
	case OpMovi:
		r[ins.Rd] = uint64(ins.Imm)
		clk.Advance(cost.ALUOp)
	case OpMov:
		r[ins.Rd] = r[ins.Rs1]
		clk.Advance(cost.ALUOp)
	case OpAdd:
		r[ins.Rd] = r[ins.Rs1] + r[ins.Rs2]
		clk.Advance(cost.ALUOp)
	case OpSub:
		r[ins.Rd] = r[ins.Rs1] - r[ins.Rs2]
		clk.Advance(cost.ALUOp)
	case OpMul:
		r[ins.Rd] = r[ins.Rs1] * r[ins.Rs2]
		clk.Advance(cost.ALUOp * 3)
	case OpAnd:
		r[ins.Rd] = r[ins.Rs1] & r[ins.Rs2]
		clk.Advance(cost.ALUOp)
	case OpOr:
		r[ins.Rd] = r[ins.Rs1] | r[ins.Rs2]
		clk.Advance(cost.ALUOp)
	case OpXor:
		r[ins.Rd] = r[ins.Rs1] ^ r[ins.Rs2]
		clk.Advance(cost.ALUOp)
	case OpShl:
		r[ins.Rd] = r[ins.Rs1] << (r[ins.Rs2] & 63)
		clk.Advance(cost.ALUOp)
	case OpShr:
		r[ins.Rd] = r[ins.Rs1] >> (r[ins.Rs2] & 63)
		clk.Advance(cost.ALUOp)
	case OpAddi:
		r[ins.Rd] = r[ins.Rs1] + uint64(ins.Imm)
		clk.Advance(cost.ALUOp)
	case OpLd:
		a := phys.Addr(r[ins.Rs1] + uint64(ins.Imm))
		if t := c.access(a, PermR, 8); t != nil {
			return *t
		}
		v, err := c.mach.Mem.Read64(a)
		if err != nil {
			return Trap{Kind: TrapFault, Addr: a, Want: PermR, PC: c.PC, Info: err.Error()}
		}
		r[ins.Rd] = v
	case OpSt:
		a := phys.Addr(r[ins.Rs1] + uint64(ins.Imm))
		if t := c.access(a, PermW, 8); t != nil {
			return *t
		}
		if err := c.mach.Mem.Write64(a, r[ins.Rs2]); err != nil {
			return Trap{Kind: TrapFault, Addr: a, Want: PermW, PC: c.PC, Info: err.Error()}
		}
	case OpLdb:
		a := phys.Addr(r[ins.Rs1] + uint64(ins.Imm))
		if t := c.access(a, PermR, 1); t != nil {
			return *t
		}
		b, err := c.mach.Mem.ReadByteAt(a)
		if err != nil {
			return Trap{Kind: TrapFault, Addr: a, Want: PermR, PC: c.PC, Info: err.Error()}
		}
		r[ins.Rd] = uint64(b)
	case OpStb:
		a := phys.Addr(r[ins.Rs1] + uint64(ins.Imm))
		if t := c.access(a, PermW, 1); t != nil {
			return *t
		}
		if err := c.mach.Mem.WriteByteAt(a, byte(r[ins.Rs2])); err != nil {
			return Trap{Kind: TrapFault, Addr: a, Want: PermW, PC: c.PC, Info: err.Error()}
		}
	case OpJmp:
		next = phys.Addr(ins.Imm)
		clk.Advance(cost.ALUOp)
	case OpJz:
		if r[ins.Rs1] == 0 {
			next = phys.Addr(ins.Imm)
		}
		clk.Advance(cost.ALUOp)
	case OpJnz:
		if r[ins.Rs1] != 0 {
			next = phys.Addr(ins.Imm)
		}
		clk.Advance(cost.ALUOp)
	case OpJlt:
		if r[ins.Rs1] < r[ins.Rs2] {
			next = phys.Addr(ins.Imm)
		}
		clk.Advance(cost.ALUOp)
	case OpVmfunc:
		// The guest-level fast switch: no exit, tagged TLB survives.
		// An index outside the monitor-installed list vm-exits on real
		// hardware; we model it as a fault the run loop reports.
		target, ok := c.vmfuncEntry(r[14])
		if !ok {
			c.faults.Add(1)
			return Trap{Kind: TrapFault, Addr: c.PC, Want: PermX, PC: c.PC,
				Info: fmt.Sprintf("vmfunc: index %d not registered", r[14])}
		}
		clk.Advance(cost.VMFunc)
		c.SwitchContextTagged(target)
	case OpVmcall:
		c.instrs.Add(1)
		c.PC = next // resume after the call
		return Trap{Kind: TrapVMCall, PC: c.PC - InstrSize}
	case OpSyscall:
		c.instrs.Add(1)
		c.PC = next
		return Trap{Kind: TrapSyscall, PC: c.PC - InstrSize}
	default:
		return Trap{Kind: TrapIllegal, PC: c.PC, Info: ins.Op.String()}
	}
	c.instrs.Add(1)
	c.PC = next
	if c.tickTimer() {
		return Trap{Kind: TrapTimer, PC: c.PC}
	}
	return Trap{Kind: TrapNone}
}

// Run executes up to maxInstrs instructions, stopping at the first trap.
// It returns the number of retired instructions (the instruction that
// raised a retiring trap — VMCALL, SYSCALL, HLT, timer — counts;
// faulting instructions do not retire) and the trap (TrapNone when the
// budget ran out).
func (c *Core) Run(maxInstrs int) (int, Trap) {
	start := c.instrs.Load()
	for int(c.instrs.Load()-start) < maxInstrs {
		t := c.Step()
		if t.Kind != TrapNone {
			c.traceTrap(t)
			return int(c.instrs.Load() - start), t
		}
	}
	return int(c.instrs.Load() - start), Trap{Kind: TrapNone, PC: c.PC}
}

// traceTrap emits the guest-exit event for a trap ending a Run. Budget
// exhaustion (TrapNone) is not a trap and is not traced.
func (c *Core) traceTrap(t Trap) {
	if !trace.Compiled {
		return
	}
	tr := c.mach.tracer.Load()
	if tr == nil {
		return
	}
	var owner uint64
	if ctx := c.ctx.Load(); ctx != nil {
		owner = uint64(ctx.Owner)
	}
	tr.Emit(int32(c.id), trace.KTrap, owner, uint64(t.Kind), uint64(t.PC), uint64(t.Addr), 0)
}
