package hw

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/trace"
)

// Config describes the machine to build.
type Config struct {
	// MemBytes is the physical memory size (page-aligned, required).
	MemBytes uint64
	// NumCores is the CPU core count (required, >=1).
	NumCores int
	// PMPEntries is the per-core PMP register count (0 selects
	// DefaultPMPEntries).
	PMPEntries int
	// TLBEntries is the per-core TLB capacity (0 selects the default).
	TLBEntries int
	// CacheLines is the per-core data-cache capacity (0 = default).
	CacheLines int
	// IOMMUAllowByDefault boots the IOMMU into the permissive commodity
	// default; the monitor flips it off when it takes ownership.
	IOMMUAllowByDefault bool
	// Devices lists the PCI devices present at boot.
	Devices []DeviceConfig
	// Cost overrides the default cycle cost model when non-nil.
	Cost *CostModel
	// MemoryEncryption fits the machine with an MKTME engine (the §4.2
	// physical-attack-resistance extension).
	MemoryEncryption bool
}

// DeviceConfig describes one device to instantiate.
type DeviceConfig struct {
	Name  string
	Class DeviceClass
}

// DefaultConfig returns a small but representative machine: 16 MiB of
// memory, 4 cores, an accelerator and a NIC.
func DefaultConfig() Config {
	return Config{
		MemBytes:            16 << 20,
		NumCores:            4,
		IOMMUAllowByDefault: true,
		Devices: []DeviceConfig{
			{Name: "gpu0", Class: DevAccelerator},
			{Name: "nic0", Class: DevNIC},
		},
	}
}

// Machine is the simulated commodity machine: memory, cores, devices,
// IOMMU, and the shared cycle clock.
type Machine struct {
	Mem     *PhysMem
	Cores   []*Core
	Devices map[phys.DeviceID]*Device
	IOMMU   *IOMMU
	Clock   *Clock
	Cost    CostModel
	// Crypto is the MKTME engine (nil on machines without memory
	// encryption).
	Crypto *MKTME

	// irqs is the interrupt controller's pending queue; devices raise
	// from any goroutine, so it is lock-protected.
	irqMu sync.Mutex
	irqs  []IRQ

	// fault is the optional fault injector (see fault.go); read on every
	// guest access, so it is an atomic pointer rather than a locked field.
	fault atomic.Pointer[FaultInjector]

	// tracer is the optional event trace (see trace.go in this package
	// and internal/trace); checked on every emit site, so it is an
	// atomic pointer like the fault injector.
	tracer atomic.Pointer[trace.Tracer]

	// sdBatch, when non-nil, diverts shootdowns into a coalescing
	// accumulator instead of running them immediately (see
	// BeginShootdownBatch). Armed and drained only by the monitor while
	// it holds its exclusive lock, which is also the only state every
	// shootdown call site runs under — so a plain field suffices.
	sdBatch *shootdownBatch

	// sdBatchCache is the accumulator sdBatch arms — cached on the
	// machine (its region slice reused across batches) so arming is
	// allocation-free: the per-ring drain hot path pins 0 allocs/op.
	sdBatchCache shootdownBatch

	// ackSwallowed latches the seeded ackbug mutation (ack_bug.go) so
	// exactly one shootdown round per machine loses core 0's ack. Dead
	// weight in normal builds (ackDropOne is constant false).
	ackSwallowed atomic.Bool
}

// NewMachine builds a machine from cfg.
func NewMachine(cfg Config) (*Machine, error) {
	if cfg.NumCores < 1 {
		return nil, fmt.Errorf("hw: machine needs at least one core, got %d", cfg.NumCores)
	}
	mem, err := NewPhysMem(cfg.MemBytes)
	if err != nil {
		return nil, err
	}
	m := &Machine{
		Mem:     mem,
		Devices: make(map[phys.DeviceID]*Device),
		IOMMU:   NewIOMMU(cfg.IOMMUAllowByDefault),
		Clock:   &Clock{},
		Cost:    DefaultCostModel(),
	}
	if cfg.Cost != nil {
		m.Cost = *cfg.Cost
	}
	if cfg.MemoryEncryption {
		m.Crypto = NewMKTME(nil)
	}
	pmpN := cfg.PMPEntries
	if pmpN == 0 {
		pmpN = DefaultPMPEntries
	}
	for i := 0; i < cfg.NumCores; i++ {
		c := &Core{
			id:      phys.CoreID(i),
			mach:    m,
			PMPUnit: NewPMP(pmpN),
			tlb:     NewTLB(cfg.TLBEntries),
			cache:   NewCache(cfg.CacheLines),
		}
		// Guest execution charges the core's own clock shard; the
		// machine clock aggregates shards so totals stay global.
		m.Clock.AddShard(&c.clk)
		m.Cores = append(m.Cores, c)
	}
	for i, dc := range cfg.Devices {
		id := phys.DeviceID(i)
		m.Devices[id] = &Device{ID: id, Name: dc.Name, Class: dc.Class, mach: m}
	}
	return m, nil
}

// Core returns the core with the given ID, or nil.
func (m *Machine) Core(id phys.CoreID) *Core {
	if int(id) < 0 || int(id) >= len(m.Cores) {
		return nil
	}
	return m.Cores[id]
}

// Device returns the device with the given ID, or nil.
func (m *Machine) Device(id phys.DeviceID) *Device { return m.Devices[id] }

// DeviceByName returns the first device with the given name, or nil.
func (m *Machine) DeviceByName(name string) *Device {
	for _, d := range m.Devices {
		if d.Name == name {
			return d
		}
	}
	return nil
}

// DeviceIDs returns all device IDs in ascending order.
func (m *Machine) DeviceIDs() []phys.DeviceID {
	ids := make([]phys.DeviceID, 0, len(m.Devices))
	for i := 0; i < len(m.Devices); i++ {
		if _, ok := m.Devices[phys.DeviceID(i)]; ok {
			ids = append(ids, phys.DeviceID(i))
		}
	}
	return ids
}

// CoreIDs returns all core IDs in ascending order.
func (m *Machine) CoreIDs() []phys.CoreID {
	ids := make([]phys.CoreID, len(m.Cores))
	for i := range m.Cores {
		ids[i] = phys.CoreID(i)
	}
	return ids
}

// CoreRun reports one core's outcome from Machine.RunAll.
type CoreRun struct {
	Core phys.CoreID
	// Steps is the number of instructions the core retired.
	Steps int
	// Trap is why the core stopped (TrapNone when the budget ran out).
	Trap Trap
}

// RunAll runs every core that has an installed context concurrently,
// one goroutine per core, each for up to maxInstrs instructions or
// until its first trap. It returns per-core results in core-ID order.
// This is raw SMP guest execution — traps are reported, not handled;
// the monitor's RunCores drives trap dispatch on top of it.
func (m *Machine) RunAll(maxInstrs int) []CoreRun {
	var wg sync.WaitGroup
	var mu sync.Mutex
	var out []CoreRun
	for _, c := range m.Cores {
		if c.Context() == nil {
			continue
		}
		wg.Add(1)
		go func(c *Core) {
			defer wg.Done()
			steps, trap := c.Run(maxInstrs)
			mu.Lock()
			out = append(out, CoreRun{Core: c.ID(), Steps: steps, Trap: trap})
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	sort.Slice(out, func(i, j int) bool { return out[i].Core < out[j].Core })
	return out
}
