//go:build ackbug

package hw

// Seeded mutation build: the first cross-core TLB shootdown performed
// by this machine drops core 0's acknowledgement while still running
// the flush — the shootdown protocol loses a completion it was owed.
// This exists to prove the trace checkers' shootdown-acknowledgement
// property is not vacuous — see TestAckMutationOracle. Never ship
// with this tag.

// AckBugArmed reports whether the seeded lost-ack mutation is
// compiled in.
const AckBugArmed = true

const ackDropOne = true
