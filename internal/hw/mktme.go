package hw

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"io"

	"github.com/tyche-sim/tyche/internal/phys"
)

// MKTME models multi-key total memory encryption — the §4.2 extension
// "building physical attack resistance with multi-key memory encryption
// technologies [MKTME, SEV]". The memory controller encrypts each cache
// line with the key selected by the accessing page's KeyID, so software
// (and the monitor) see plaintext through normal accesses while a
// physical attacker — cold boot, bus interposer, a DMA path below the
// IOMMU — sees only ciphertext, different per key domain.
//
// Modelling note: PhysMem keeps the logical (plaintext) contents and
// the engine derives the DRAM image on demand (RawView). This is
// observationally equivalent for the attacker experiments — accessors
// get plaintext, physical dumps get ciphertext — without routing every
// simulator access through AES. The keystream is AES-128 in counter
// mode with the block's physical address as the deterministic tweak
// (an XTS-like construction; like real MKTME, rewriting the same
// plaintext to the same line yields the same ciphertext).
type MKTME struct {
	keys    map[KeyID]cipher.Block
	pageKey map[uint64]KeyID
	nextKey KeyID
	rng     io.Reader
}

// KeyID selects a memory encryption key. KeyPlaintext (0) disables
// encryption for the page — the commodity default.
type KeyID uint16

// KeyPlaintext is the no-encryption key ID.
const KeyPlaintext KeyID = 0

// NewMKTME returns an engine with no keys programmed (rng nil selects
// crypto/rand).
func NewMKTME(rng io.Reader) *MKTME {
	if rng == nil {
		rng = rand.Reader
	}
	return &MKTME{
		keys:    make(map[KeyID]cipher.Block),
		pageKey: make(map[uint64]KeyID),
		nextKey: 1,
		rng:     rng,
	}
}

// AllocKey programs a fresh random key and returns its ID.
func (m *MKTME) AllocKey() (KeyID, error) {
	var key [16]byte
	if _, err := io.ReadFull(m.rng, key[:]); err != nil {
		return 0, fmt.Errorf("hw: mktme key generation: %w", err)
	}
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return 0, err
	}
	id := m.nextKey
	m.nextKey++
	m.keys[id] = block
	return id, nil
}

// FreeKey discards a key: ciphertext under it becomes undecryptable
// (crypto-erase). Pages still tagged with it fall back to plaintext
// semantics only after retagging; RawView of such pages returns
// unrecoverable bytes.
func (m *MKTME) FreeKey(id KeyID) {
	delete(m.keys, id)
}

// SetRegionKey tags every page of r with the key.
func (m *MKTME) SetRegionKey(r phys.Region, id KeyID) error {
	if err := r.Validate(); err != nil {
		return err
	}
	if id != KeyPlaintext {
		if _, ok := m.keys[id]; !ok {
			return fmt.Errorf("hw: mktme key %d not programmed", id)
		}
	}
	for pg := r.Start.Page(); pg < r.End.Page(); pg++ {
		if id == KeyPlaintext {
			delete(m.pageKey, pg)
		} else {
			m.pageKey[pg] = id
		}
	}
	return nil
}

// KeyOf returns the key tagging the page containing a.
func (m *MKTME) KeyOf(a phys.Addr) KeyID { return m.pageKey[a.Page()] }

// EncryptedPages returns how many pages carry a non-plaintext key.
func (m *MKTME) EncryptedPages() int { return len(m.pageKey) }

// keystream fills out with the AES-CTR keystream for the 16-byte block
// at addr (block-aligned).
func (m *MKTME) keystream(block cipher.Block, addr uint64, out *[16]byte) {
	var tweak [16]byte
	binary.LittleEndian.PutUint64(tweak[:8], addr)
	block.Encrypt(out[:], tweak[:])
}

// RawView returns the DRAM image of region r as a physical attacker
// would capture it: plaintext pages verbatim, keyed pages encrypted
// under their key (or unrecoverable randomness-like bytes if the key
// was crypto-erased — modelled as encryption under a dead-key marker).
func (m *MKTME) RawView(mem *PhysMem, r phys.Region) ([]byte, error) {
	plain, err := mem.View(r)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(plain))
	copy(out, plain)
	for off := 0; off < len(out); off += 16 {
		addr := uint64(r.Start) + uint64(off)
		id := m.pageKey[phys.Addr(addr).Page()]
		if id == KeyPlaintext {
			continue
		}
		block, ok := m.keys[id]
		if !ok {
			// Crypto-erased: derive an unrecoverable pattern from the
			// address so dumps are deterministic but meaningless.
			for i := 0; i < 16 && off+i < len(out); i++ {
				out[off+i] = byte(addr>>uint(i%8)) ^ 0xa5
			}
			continue
		}
		var ks [16]byte
		m.keystream(block, addr, &ks)
		for i := 0; i < 16 && off+i < len(out); i++ {
			out[off+i] ^= ks[i]
		}
	}
	return out, nil
}
