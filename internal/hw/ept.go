package hw

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/tyche-sim/tyche/internal/phys"
)

// EPT models a second-level (nested) page table: the per-domain
// access-control structure a VT-x backend programs. It maps physical
// pages to permissions at page granularity. Because the monitor manages
// physical names, the translation is identity and the EPT is purely an
// access filter (§3.3: "memory virtualization provides a second level of
// page tables to enforce memory access control at page granularity").
//
// Cores walk the EPT while the monitor rebuilds it on another core, so
// the page map is behind an RWMutex and the generation is atomic: a
// reader never observes a torn update, and a generation bump publishes
// each rebuild to the TLB/MRU coherence checks.
type EPT struct {
	mu    sync.RWMutex
	pages map[uint64]Perm
	gen   atomic.Uint64
}

// NewEPT returns an empty EPT denying all access.
func NewEPT() *EPT {
	return &EPT{pages: make(map[uint64]Perm)}
}

// Check implements AccessFilter.
func (e *EPT) Check(a phys.Addr, want Perm) bool {
	return e.Lookup(a).Allows(want)
}

// Lookup implements AccessFilter.
func (e *EPT) Lookup(a phys.Addr) Perm {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.pages[a.Page()]
}

// Generation implements AccessFilter.
func (e *EPT) Generation() uint64 { return e.gen.Load() }

// Map sets the permission for every page of region r, replacing any
// previous permission. r must be page-aligned.
func (e *EPT) Map(r phys.Region, p Perm) error {
	if err := r.Validate(); err != nil {
		return fmt.Errorf("hw: ept map: %w", err)
	}
	e.mu.Lock()
	for pg := r.Start.Page(); pg < r.End.Page(); pg++ {
		if p == PermNone {
			delete(e.pages, pg)
		} else {
			e.pages[pg] = p
		}
	}
	e.mu.Unlock()
	e.gen.Add(1)
	return nil
}

// Unmap removes all permissions for region r.
func (e *EPT) Unmap(r phys.Region) error { return e.Map(r, PermNone) }

// Clear removes every mapping.
func (e *EPT) Clear() {
	e.mu.Lock()
	e.pages = make(map[uint64]Perm)
	e.mu.Unlock()
	e.gen.Add(1)
}

// MappedPages returns the number of pages with any permission.
func (e *EPT) MappedPages() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.pages)
}

// Mappings returns the EPT contents as maximal runs of identically
// permissioned pages, in address order. Used for attestation enumeration
// and debugging dumps.
func (e *EPT) Mappings() []EPTMapping {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if len(e.pages) == 0 {
		return nil
	}
	pgs := make([]uint64, 0, len(e.pages))
	for pg := range e.pages {
		pgs = append(pgs, pg)
	}
	sort.Slice(pgs, func(i, j int) bool { return pgs[i] < pgs[j] })
	var out []EPTMapping
	for _, pg := range pgs {
		p := e.pages[pg]
		start := phys.Addr(pg << phys.PageShift)
		if n := len(out); n > 0 && out[n-1].Region.End == start && out[n-1].Perm == p {
			out[n-1].Region.End += phys.PageSize
			continue
		}
		out = append(out, EPTMapping{
			Region: phys.Region{Start: start, End: start + phys.PageSize},
			Perm:   p,
		})
	}
	return out
}

// EPTMapping is one contiguous run of identically permissioned pages.
type EPTMapping struct {
	Region phys.Region
	Perm   Perm
}

func (m EPTMapping) String() string { return fmt.Sprintf("%v %v", m.Region, m.Perm) }
