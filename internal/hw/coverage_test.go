package hw

import (
	"testing"

	"github.com/tyche-sim/tyche/internal/phys"
)

// TestALUOperations executes every arithmetic/logic instruction and
// checks its architectural result.
func TestALUOperations(t *testing.T) {
	m := testMachine(t)
	a := NewAsm()
	a.Movi(1, 12)
	a.Movi(2, 5)
	a.Sub(3, 1, 2) // 7
	a.Mul(4, 1, 2) // 60
	a.And(5, 1, 2) // 4
	a.Or(6, 1, 2)  // 13
	a.Xor(7, 1, 2) // 9
	a.Movi(8, 2)
	a.Shl(9, 1, 8)  // 48
	a.Shr(10, 1, 8) // 3
	a.Mov(11, 9)    // 48
	a.Nop()
	a.Hlt()
	trap, core := loadAndRun(t, m, a, 0x1000, 100)
	if trap.Kind != TrapHalt {
		t.Fatalf("trap = %v", trap)
	}
	want := map[int]uint64{3: 7, 4: 60, 5: 4, 6: 13, 7: 9, 9: 48, 10: 3, 11: 48}
	for r, v := range want {
		if core.Regs[r] != v {
			t.Errorf("r%d = %d, want %d", r, core.Regs[r], v)
		}
	}
	if core.InstrCount() == 0 {
		t.Fatal("no instructions retired")
	}
}

func TestJumpVariants(t *testing.T) {
	m := testMachine(t)
	a := NewAsm()
	a.Movi(1, 0)
	a.Jz(1, "taken") // r1==0: jump
	a.Movi(2, 99)    // skipped
	a.Label("taken")
	a.Movi(3, 1)
	a.Jnz(3, "taken2") // r3!=0: jump
	a.Movi(2, 98)      // skipped
	a.Label("taken2")
	a.Movi(4, 5)
	a.Movi(5, 9)
	a.Jlt(5, 4, "bad") // 9 < 5 false: fall through
	a.Movi(6, 42)
	a.Hlt()
	a.Label("bad")
	a.Movi(6, 7)
	a.Hlt()
	trap, core := loadAndRun(t, m, a, 0x1000, 100)
	if trap.Kind != TrapHalt {
		t.Fatalf("trap = %v", trap)
	}
	if core.Regs[2] != 0 || core.Regs[6] != 42 {
		t.Fatalf("r2=%d r6=%d", core.Regs[2], core.Regs[6])
	}
}

func TestDeviceDMACopyAndStats(t *testing.T) {
	m := testMachine(t)
	dev := m.Device(0)
	if err := m.Mem.WriteAt(0x3000, []byte("payload!")); err != nil {
		t.Fatal(err)
	}
	if err := dev.DMACopy(0x3000, 0x5000, 8); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8)
	if err := m.Mem.ReadAt(0x5000, got); err != nil || string(got) != "payload!" {
		t.Fatalf("copy result %q %v", got, err)
	}
	if dev.DMACount() != 1 {
		t.Fatalf("dma count = %d", dev.DMACount())
	}
	// Empty copy is a no-op.
	if err := dev.DMACopy(0x3000, 0x5000, 0); err != nil {
		t.Fatal(err)
	}
	// Read path.
	buf := make([]byte, 8)
	if err := dev.DMARead(0x3000, buf); err != nil || string(buf) != "payload!" {
		t.Fatalf("dma read %q %v", buf, err)
	}
	checks, denials := m.IOMMU.Stats()
	if checks == 0 {
		t.Fatal("no IOMMU checks recorded")
	}
	_ = denials
	if dev.String() == "" || dev.Class.String() != "accelerator" {
		t.Fatalf("device string: %v / %v", dev, dev.Class)
	}
	if DevGeneric.String() != "generic" || DeviceClass(99).String() == "" {
		t.Fatal("class names")
	}
}

func TestTLBFlushRegion(t *testing.T) {
	tlb := NewTLB(16)
	tlb.Insert(1, 5, PermRW, 0)
	tlb.Insert(1, 6, PermRW, 0)
	tlb.Insert(2, 5, PermR, 0)
	tlb.FlushRegion(phys.MakeRegion(5*phys.PageSize, phys.PageSize))
	// Page 5 gone in every address space; page 6 survives.
	if _, hit := tlb.Lookup(1, 5, 0); hit {
		t.Fatal("page 5 asid 1 survived")
	}
	if _, hit := tlb.Lookup(2, 5, 0); hit {
		t.Fatal("page 5 asid 2 survived")
	}
	if _, hit := tlb.Lookup(1, 6, 0); !hit {
		t.Fatal("page 6 flushed")
	}
	hits, misses, flushes := tlb.Stats()
	if hits == 0 || misses == 0 || flushes == 0 {
		t.Fatalf("stats: %d %d %d", hits, misses, flushes)
	}
}

func TestEPTEmptyAndPMPEntries(t *testing.T) {
	e := NewEPT()
	if e.Mappings() != nil {
		t.Fatal("empty EPT has mappings")
	}
	p := NewPMP(4)
	if err := p.Program(1, phys.MakeRegion(0, phys.PageSize), PermR); err != nil {
		t.Fatal(err)
	}
	entries := p.Entries()
	if len(entries) != 4 || !entries[1].Used() || entries[0].Used() {
		t.Fatalf("entries = %+v", entries)
	}
	if p.NAPOTOnly() {
		t.Fatal("default should be TOR")
	}
	if err := p.ClearEntry(9); err == nil {
		t.Fatal("out of range clear accepted")
	}
	if err := p.Lock(9); err == nil {
		t.Fatal("out of range lock accepted")
	}
}

func TestPermAndTrapStrings(t *testing.T) {
	if PermRWX.String() != "rwx" || PermNone.String() != "---" || PermR.String() != "r--" {
		t.Fatal("perm strings")
	}
	if TrapFault.String() != "fault" || TrapKind(99).String() == "" {
		t.Fatal("trap strings")
	}
	tr := Trap{Kind: TrapFault, Addr: 0x1000, Want: PermW, PC: 0x2000}
	if tr.String() == "" {
		t.Fatal("trap format")
	}
	ill := Trap{Kind: TrapIllegal, PC: 1, Info: "x"}
	if ill.String() == "" {
		t.Fatal("illegal format")
	}
	if RingKernel.String() != "ring0" || RingUser.String() != "ring3" {
		t.Fatal("ring strings")
	}
}

func TestInstrStrings(t *testing.T) {
	cases := []Instr{
		{Op: OpMovi, Rd: 1, Imm: 5},
		{Op: OpMov, Rd: 1, Rs1: 2},
		{Op: OpAddi, Rd: 1, Rs1: 2, Imm: 3},
		{Op: OpLd, Rd: 1, Rs1: 2, Imm: 8},
		{Op: OpSt, Rs1: 1, Rs2: 2, Imm: 8},
		{Op: OpJmp, Imm: 16},
		{Op: OpJz, Rs1: 1, Imm: 16},
		{Op: OpJlt, Rs1: 1, Rs2: 2, Imm: 16},
		{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpVmfunc},
	}
	for _, c := range cases {
		if c.String() == "" {
			t.Fatalf("empty String for %v", c.Op)
		}
	}
	if Opcode(200).String() == "" {
		t.Fatal("unknown opcode string")
	}
}

func TestCacheStatsAndMKTMEBounds(t *testing.T) {
	c := NewCache(0) // default size
	c.Touch(0, true)
	h, ms, fl := c.Stats()
	if h != 0 || ms != 1 || fl != 0 {
		t.Fatalf("stats: %d %d %d", h, ms, fl)
	}
	mem, _ := NewPhysMem(1 << 16)
	e := NewMKTME(nil)
	if _, err := e.RawView(mem, phys.MakeRegion(phys.Addr(1<<20), phys.PageSize)); err == nil {
		t.Fatal("out-of-bounds raw view accepted")
	}
}

func TestAsmLenAndMustAssemblePanics(t *testing.T) {
	a := NewAsm()
	a.Nop().Nop()
	if a.Len() != 2*InstrSize {
		t.Fatalf("len = %d", a.Len())
	}
	bad := NewAsm()
	bad.Jmp("nowhere")
	defer func() {
		if recover() == nil {
			t.Fatal("MustAssemble did not panic on undefined label")
		}
	}()
	bad.MustAssemble(0)
}
