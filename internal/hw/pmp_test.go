package hw

import (
	"strings"
	"testing"

	"github.com/tyche-sim/tyche/internal/phys"
)

// NAPOT round-trip and rejection cases over the interesting boundary
// shapes: minimum (8-byte) and huge regions, misaligned bases,
// non-power-of-two sizes.
func TestNAPOTEncodeDecode(t *testing.T) {
	roundTrip := []struct {
		name  string
		r     phys.Region
		wantV uint64
	}{
		{"min-8-bytes", phys.MakeRegion(0, 8), 0x0},
		{"min-8-at-offset", phys.MakeRegion(8, 8), 0x2},
		{"one-page-at-zero", phys.MakeRegion(0, 4096), 0x1FF},
		{"one-page", phys.MakeRegion(0x4000, 4096), 0x11FF},
		{"two-pages", phys.MakeRegion(0x8000, 8192), 0x23FF},
		{"1MiB", phys.MakeRegion(1<<20, 1<<20), 1<<18 | (1<<17 - 1)},
		{"4GiB", phys.MakeRegion(1<<32, 1<<32), 1<<30 | (1<<29 - 1)},
		{"1TiB-high", phys.MakeRegion(1<<40, 1<<40), 1<<38 | (1<<37 - 1)},
	}
	for _, tc := range roundTrip {
		t.Run(tc.name, func(t *testing.T) {
			v, err := EncodeNAPOT(tc.r)
			if err != nil {
				t.Fatalf("encode %v: %v", tc.r, err)
			}
			if v != tc.wantV {
				t.Fatalf("encode %v = %#x, want %#x", tc.r, v, tc.wantV)
			}
			back, err := DecodeNAPOT(v)
			if err != nil {
				t.Fatalf("decode %#x: %v", v, err)
			}
			if back != tc.r {
				t.Fatalf("round trip %v -> %#x -> %v", tc.r, v, back)
			}
		})
	}

	rejects := []struct {
		name string
		r    phys.Region
		want string
	}{
		{"empty", phys.Region{}, "not NAPOT"},
		{"four-bytes", phys.MakeRegion(0, 4), "minimum"}, // below the 8-byte NAPOT floor
		{"non-pow2-size", phys.MakeRegion(0, 3*4096), "not NAPOT"},
		{"misaligned-base", phys.MakeRegion(0x1000, 0x2000), "not NAPOT"},
		{"page-at-half-page", phys.MakeRegion(2048, 4096), "not NAPOT"},
	}
	for _, tc := range rejects {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := EncodeNAPOT(tc.r); err == nil {
				t.Fatalf("encode %v succeeded, want error", tc.r)
			} else if !strings.Contains(err.Error(), tc.want) && !strings.Contains(err.Error(), "minimum") {
				t.Fatalf("encode %v: unexpected error %v", tc.r, err)
			}
		})
	}

	// Decoding all-ones (the unbounded whole-address-space encoding)
	// must fail rather than fabricate a wrapped region.
	if r, err := DecodeNAPOT(^uint64(0)); err == nil {
		t.Fatalf("decode all-ones = %v, want error", r)
	}
}

// TOR pairs express arbitrary 4-byte-aligned ranges; empty and
// misaligned ranges are rejected.
func TestTOREncodeDecode(t *testing.T) {
	roundTrip := []struct {
		name   string
		r      phys.Region
		lo, hi uint64
	}{
		{"one-word", phys.MakeRegion(0, 4), 0, 1},
		{"one-page", phys.MakeRegion(0x4000, 4096), 0x1000, 0x1400},
		{"odd-pages", phys.MakeRegion(0x1000, 3*4096), 0x400, 0x1000},
		{"unaligned-to-pow2", phys.MakeRegion(2048, 4096), 512, 1536},
		{"high", phys.MakeRegion(1<<40, 1<<20), 1 << 38, 1<<38 + 1<<18},
	}
	for _, tc := range roundTrip {
		t.Run(tc.name, func(t *testing.T) {
			lo, hi, err := EncodeTOR(tc.r)
			if err != nil {
				t.Fatalf("encode %v: %v", tc.r, err)
			}
			if lo != tc.lo || hi != tc.hi {
				t.Fatalf("encode %v = (%#x, %#x), want (%#x, %#x)", tc.r, lo, hi, tc.lo, tc.hi)
			}
			back, err := DecodeTOR(lo, hi)
			if err != nil {
				t.Fatalf("decode (%#x, %#x): %v", lo, hi, err)
			}
			if back != tc.r {
				t.Fatalf("round trip %v -> %v", tc.r, back)
			}
		})
	}
	if _, _, err := EncodeTOR(phys.Region{}); err == nil {
		t.Fatal("encoding the empty region succeeded")
	}
	if _, _, err := EncodeTOR(phys.MakeRegion(2, 8)); err == nil {
		t.Fatal("encoding a sub-word-aligned region succeeded")
	}
	if _, err := DecodeTOR(8, 8); err == nil {
		t.Fatal("decoding an empty TOR pair succeeded")
	}
	if _, err := DecodeTOR(16, 8); err == nil {
		t.Fatal("decoding an inverted TOR pair succeeded")
	}
}

// Register-file behaviour around the shapes the backends rely on:
// lowest-index-wins priority for overlapping entries, NAPOT-only mode
// rejections, locked-entry protection through ClearAll.
func TestPMPRegisterFileEdgeCases(t *testing.T) {
	t.Run("overlap-lowest-index-wins", func(t *testing.T) {
		p := NewPMP(4)
		// Entry 1 denies a page; entry 2 allows a superset. The deny
		// must win for the overlapped page, the allow elsewhere.
		if err := p.Program(1, phys.MakeRegion(0x2000, 0x1000), PermNone); err != nil {
			t.Fatal(err)
		}
		if err := p.Program(2, phys.MakeRegion(0x0, 0x8000), PermR|PermW); err != nil {
			t.Fatal(err)
		}
		if p.Check(0x2800, PermR) {
			t.Fatal("deny entry 1 did not shadow allow entry 2")
		}
		if !p.Check(0x3000, PermR) {
			t.Fatal("allow entry 2 not effective outside the shadow")
		}
		// Reversed priority: allow first, deny second — allow wins.
		q := NewPMP(4)
		if err := q.Program(0, phys.MakeRegion(0x2000, 0x1000), PermR); err != nil {
			t.Fatal(err)
		}
		if err := q.Program(1, phys.MakeRegion(0x2000, 0x1000), PermNone); err != nil {
			t.Fatal(err)
		}
		if !q.Check(0x2000, PermR) {
			t.Fatal("lower-index allow lost to higher-index deny")
		}
	})

	t.Run("no-match-denies", func(t *testing.T) {
		p := NewPMP(2)
		if p.Check(0x1000, PermR) {
			t.Fatal("unprogrammed PMP allowed an access")
		}
		if got := p.Lookup(0x1000); got != PermNone {
			t.Fatalf("Lookup on empty file = %v", got)
		}
	})

	t.Run("napot-only-rejects-tor-shapes", func(t *testing.T) {
		p := NewPMP(4)
		p.SetNAPOTOnly(true)
		bad := []phys.Region{
			phys.MakeRegion(0x1000, 0x2000), // misaligned base
			phys.MakeRegion(0x0, 3*0x1000),  // non-pow2 size
			phys.MakeRegion(2048, 4096),     // sub-size alignment
		}
		for _, r := range bad {
			if err := p.Program(0, r, PermR); err == nil {
				t.Fatalf("NAPOT-only accepted %v", r)
			}
		}
		if err := p.Program(0, phys.MakeRegion(0x4000, 0x1000), PermR); err != nil {
			t.Fatalf("NAPOT-only rejected a NAPOT region: %v", err)
		}
	})

	t.Run("bounds-and-locks", func(t *testing.T) {
		p := NewPMP(2)
		if err := p.Program(2, phys.MakeRegion(0, 0x1000), PermR); err == nil {
			t.Fatal("out-of-range program succeeded")
		}
		if err := p.Program(-1, phys.MakeRegion(0, 0x1000), PermR); err == nil {
			t.Fatal("negative-index program succeeded")
		}
		if err := p.Lock(0); err == nil {
			t.Fatal("locked an unprogrammed entry")
		}
		if err := p.Program(0, phys.MakeRegion(0, 0x1000), PermNone); err != nil {
			t.Fatal(err)
		}
		if err := p.Lock(0); err != nil {
			t.Fatal(err)
		}
		if err := p.Program(0, phys.MakeRegion(0, 0x1000), PermR); err == nil {
			t.Fatal("reprogrammed a locked entry")
		}
		if err := p.ClearEntry(0); err == nil {
			t.Fatal("cleared a locked entry")
		}
		if err := p.Program(1, phys.MakeRegion(0x1000, 0x1000), PermR); err != nil {
			t.Fatal(err)
		}
		if n := p.ClearAll(); n != 1 {
			t.Fatalf("ClearAll cleared %d entries, want 1 (locked survives)", n)
		}
		if p.Check(0, PermNone) != false && p.Lookup(0) != PermNone {
			t.Fatal("locked deny entry vanished")
		}
		if free := p.FreeEntries(); free != 1 {
			t.Fatalf("FreeEntries = %d, want 1", free)
		}
	})

	t.Run("generation-advances", func(t *testing.T) {
		p := NewPMP(2)
		g0 := p.Generation()
		if err := p.Program(0, phys.MakeRegion(0, 0x1000), PermR); err != nil {
			t.Fatal(err)
		}
		if p.Generation() <= g0 {
			t.Fatal("generation did not advance on program")
		}
		g1 := p.Generation()
		if err := p.ClearEntry(0); err != nil {
			t.Fatal(err)
		}
		if p.Generation() <= g1 {
			t.Fatal("generation did not advance on clear")
		}
	})
}
