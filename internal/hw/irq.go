package hw

import (
	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/trace"
)

// Interrupts and timers (§4.1's exploration: "extend capabilities to
// provide scheduling guarantees, cross-domain interrupt routing").
//
// Devices raise interrupt lines on the machine's interrupt controller;
// the isolation monitor drains and routes them to the domain holding
// the device capability (core/irq.go). Each core also has a one-shot
// timer counting retired instructions — the architectural preemption
// mechanism kernels build time slicing on.

// IRQ is one pending device interrupt.
type IRQ struct {
	Device phys.DeviceID
	// Vector distinguishes interrupt causes within one device.
	Vector uint32
}

// RaiseIRQ posts an interrupt from a device to the controller. An
// installed fault injector may eat the line (a lost interrupt).
func (m *Machine) RaiseIRQ(dev phys.DeviceID, vector uint32) {
	if fi := m.FaultInjector(); fi != nil && fi.OnRaiseIRQ(dev, vector) {
		m.Trace(trace.GlobalCore, trace.KIRQLost, 0, uint64(dev), uint64(vector), 0, 0)
		return
	}
	m.Trace(trace.GlobalCore, trace.KIRQRaise, 0, uint64(dev), uint64(vector), 0, 0)
	m.irqMu.Lock()
	defer m.irqMu.Unlock()
	m.irqs = append(m.irqs, IRQ{Device: dev, Vector: vector})
}

// TakeIRQ pops the oldest pending interrupt. An installed fault
// injector may deliver a spurious interrupt ahead of the real queue.
func (m *Machine) TakeIRQ() (IRQ, bool) {
	if fi := m.FaultInjector(); fi != nil {
		if irq, ok := fi.TakeSpuriousIRQ(); ok {
			m.Trace(trace.GlobalCore, trace.KIRQSpurious, 0, uint64(irq.Device), uint64(irq.Vector), 0, 0)
			return irq, true
		}
	}
	m.irqMu.Lock()
	defer m.irqMu.Unlock()
	if len(m.irqs) == 0 {
		return IRQ{}, false
	}
	irq := m.irqs[0]
	m.irqs = m.irqs[1:]
	return irq, true
}

// PendingIRQs returns the number of undelivered interrupts.
func (m *Machine) PendingIRQs() int {
	m.irqMu.Lock()
	defer m.irqMu.Unlock()
	return len(m.irqs)
}

// RaiseIRQ lets a device signal completion to its driver.
func (d *Device) RaiseIRQ(vector uint32) { d.mach.RaiseIRQ(d.ID, vector) }

// ArmTimer arms the core's one-shot timer to fire after n retired
// instructions (n <= 0 disarms).
func (c *Core) ArmTimer(n int) {
	if n <= 0 {
		c.timer = 0
		c.timerArmed = false
		return
	}
	c.timer = n
	c.timerArmed = true
}

// TimerArmed reports whether the timer is running.
func (c *Core) TimerArmed() bool { return c.timerArmed }

// tickTimer advances the timer by one instruction and reports expiry.
func (c *Core) tickTimer() bool {
	if !c.timerArmed {
		return false
	}
	c.timer--
	if c.timer <= 0 {
		c.timerArmed = false
		return true
	}
	return false
}
