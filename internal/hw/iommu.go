package hw

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/tyche-sim/tyche/internal/phys"
)

// IOMMU mediates device DMA. Each device may be attached to an access
// filter (its "context entry"); devices without a context fall back to
// the DefaultAllow policy.
//
// Commodity machines ship with the permissive default (any device can
// DMA anywhere — the classic DMA attack); the isolation monitor boots
// the IOMMU into deny-by-default and attaches per-device filters derived
// from device capabilities (§3.3: "devices can be partitioned using
// SR-IOV and isolated using I/O-MMUs").
// Context entries are behind an RWMutex (DMA checks race with the
// monitor attaching filters) and the counters are atomic.
type IOMMU struct {
	mu  sync.RWMutex
	ctx map[phys.DeviceID]AccessFilter
	// DefaultAllow admits DMA from devices with no context entry. The
	// monitor flips it once at boot, before cores run.
	DefaultAllow bool

	checks, denials atomic.Uint64
}

// NewIOMMU returns an IOMMU with no context entries. allowByDefault
// selects the commodity (true) or monitor (false) default policy.
func NewIOMMU(allowByDefault bool) *IOMMU {
	return &IOMMU{ctx: make(map[phys.DeviceID]AccessFilter), DefaultAllow: allowByDefault}
}

// Attach installs f as the context entry for dev.
func (iu *IOMMU) Attach(dev phys.DeviceID, f AccessFilter) {
	iu.mu.Lock()
	defer iu.mu.Unlock()
	iu.ctx[dev] = f
}

// Detach removes dev's context entry.
func (iu *IOMMU) Detach(dev phys.DeviceID) {
	iu.mu.Lock()
	defer iu.mu.Unlock()
	delete(iu.ctx, dev)
}

// ContextOf returns dev's filter, or nil if none installed.
func (iu *IOMMU) ContextOf(dev phys.DeviceID) AccessFilter {
	iu.mu.RLock()
	defer iu.mu.RUnlock()
	return iu.ctx[dev]
}

// Check reports whether device dev may access address a with permission
// want.
func (iu *IOMMU) Check(dev phys.DeviceID, a phys.Addr, want Perm) bool {
	iu.checks.Add(1)
	iu.mu.RLock()
	f, ok := iu.ctx[dev]
	allow := iu.DefaultAllow
	iu.mu.RUnlock()
	if !ok {
		if allow {
			return true
		}
		iu.denials.Add(1)
		return false
	}
	if !f.Check(a, want) {
		iu.denials.Add(1)
		return false
	}
	return true
}

// Stats returns check/denial counters.
func (iu *IOMMU) Stats() (checks, denials uint64) {
	return iu.checks.Load(), iu.denials.Load()
}

// DMAFaultError reports a DMA access denied by the IOMMU.
type DMAFaultError struct {
	Device phys.DeviceID
	Addr   phys.Addr
	Want   Perm
}

func (e *DMAFaultError) Error() string {
	return fmt.Sprintf("hw: iommu denied %v %v access at %v", e.Device, e.Want, e.Addr)
}
