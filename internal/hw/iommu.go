package hw

import (
	"fmt"

	"github.com/tyche-sim/tyche/internal/phys"
)

// IOMMU mediates device DMA. Each device may be attached to an access
// filter (its "context entry"); devices without a context fall back to
// the DefaultAllow policy.
//
// Commodity machines ship with the permissive default (any device can
// DMA anywhere — the classic DMA attack); the isolation monitor boots
// the IOMMU into deny-by-default and attaches per-device filters derived
// from device capabilities (§3.3: "devices can be partitioned using
// SR-IOV and isolated using I/O-MMUs").
type IOMMU struct {
	ctx map[phys.DeviceID]AccessFilter
	// DefaultAllow admits DMA from devices with no context entry.
	DefaultAllow bool

	checks, denials uint64
}

// NewIOMMU returns an IOMMU with no context entries. allowByDefault
// selects the commodity (true) or monitor (false) default policy.
func NewIOMMU(allowByDefault bool) *IOMMU {
	return &IOMMU{ctx: make(map[phys.DeviceID]AccessFilter), DefaultAllow: allowByDefault}
}

// Attach installs f as the context entry for dev.
func (iu *IOMMU) Attach(dev phys.DeviceID, f AccessFilter) {
	iu.ctx[dev] = f
}

// Detach removes dev's context entry.
func (iu *IOMMU) Detach(dev phys.DeviceID) {
	delete(iu.ctx, dev)
}

// ContextOf returns dev's filter, or nil if none installed.
func (iu *IOMMU) ContextOf(dev phys.DeviceID) AccessFilter { return iu.ctx[dev] }

// Check reports whether device dev may access address a with permission
// want.
func (iu *IOMMU) Check(dev phys.DeviceID, a phys.Addr, want Perm) bool {
	iu.checks++
	f, ok := iu.ctx[dev]
	if !ok {
		if iu.DefaultAllow {
			return true
		}
		iu.denials++
		return false
	}
	if !f.Check(a, want) {
		iu.denials++
		return false
	}
	return true
}

// Stats returns check/denial counters.
func (iu *IOMMU) Stats() (checks, denials uint64) { return iu.checks, iu.denials }

// DMAFaultError reports a DMA access denied by the IOMMU.
type DMAFaultError struct {
	Device phys.DeviceID
	Addr   phys.Addr
	Want   Perm
}

func (e *DMAFaultError) Error() string {
	return fmt.Sprintf("hw: iommu denied %v %v access at %v", e.Device, e.Want, e.Addr)
}
