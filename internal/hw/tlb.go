package hw

import (
	"sync"
	"sync/atomic"

	"github.com/tyche-sim/tyche/internal/phys"
)

// DefaultTLBEntries is the modelled TLB capacity per core.
const DefaultTLBEntries = 64

// TLB caches per-page access-control decisions, tagged by ASID (address
// space / EPT-pointer tag) and the generation of the filter that
// produced them. Tagging is what makes VMFUNC-style fast filter switches
// cheap: entries of different contexts coexist, so switching requires no
// flush.
//
// A permission change bumps the filter generation. In Strict mode the
// TLB validates generations on every hit (idealised coherent hardware);
// the default non-strict mode honours stale entries — real-TLB
// behaviour, which turns a revocation without a TLB shootdown into a
// modelled vulnerability the failure-injection tests exercise. The
// monitor's flush-on-revoke cleanup is what closes the window.
//
// Storage is a fixed slot array with clock-hand (second-chance)
// eviction: a lookup sets the slot's reference bit, and the hand sweeps
// past referenced slots once before reclaiming them. This replaces the
// earlier slice-based FIFO, whose eviction shifted a queue on every
// fill (see BenchmarkTLBInsertEvict).
//
// The TLB belongs to one core but is mutated cross-core by the
// monitor's cleanup shootdowns (backend.RunCleanups flushes every
// core's TLB), so all operations take an internal mutex; statistics
// counters are atomic so they can be read while the core runs.
type TLB struct {
	// Strict, when true, validates generation on every hit. Toggled
	// only while the core is quiescent.
	Strict bool

	mu      sync.Mutex
	entries map[tlbKey]int // key -> slot index
	slots   []tlbSlot
	hand    int
	used    int

	hits, misses, flushes atomic.Uint64
}

type tlbKey struct {
	asid uint64
	page uint64
}

type tlbSlot struct {
	key  tlbKey
	perm Perm
	gen  uint64
	used bool
	ref  bool
}

// NewTLB returns a TLB holding capacity entries.
func NewTLB(capacity int) *TLB {
	if capacity <= 0 {
		capacity = DefaultTLBEntries
	}
	return &TLB{
		entries: make(map[tlbKey]int, capacity),
		slots:   make([]tlbSlot, capacity),
	}
}

// Lookup consults the TLB for page pg of address space asid against
// filter generation gen. It returns the cached permission and whether it
// was a hit. In non-strict mode a stale entry is still returned as a hit.
func (t *TLB) Lookup(asid, pg uint64, gen uint64) (Perm, bool) {
	k := tlbKey{asid, pg}
	t.mu.Lock()
	i, ok := t.entries[k]
	if !ok {
		t.mu.Unlock()
		t.misses.Add(1)
		return 0, false
	}
	s := &t.slots[i]
	if t.Strict && s.gen != gen {
		delete(t.entries, k)
		s.used = false
		s.ref = false
		t.used--
		t.mu.Unlock()
		t.misses.Add(1)
		return 0, false
	}
	s.ref = true
	perm := s.perm
	t.mu.Unlock()
	t.hits.Add(1)
	return perm, true
}

// RecordHit counts a translation served by a faster structure in front
// of the TLB (the core's 1-entry MRU cache) so hit-rate statistics keep
// describing the whole translation path.
func (t *TLB) RecordHit() { t.hits.Add(1) }

// FlushCount returns the number of flush operations so far. The core's
// MRU translation cache keys on it to stay coherent with shootdowns.
func (t *TLB) FlushCount() uint64 { return t.flushes.Load() }

// Insert caches the decision for page pg of asid, evicting with the
// clock hand if full.
func (t *TLB) Insert(asid, pg uint64, perm Perm, gen uint64) {
	k := tlbKey{asid, pg}
	t.mu.Lock()
	defer t.mu.Unlock()
	if i, ok := t.entries[k]; ok {
		t.slots[i] = tlbSlot{key: k, perm: perm, gen: gen, used: true, ref: true}
		return
	}
	i := t.reclaim()
	t.slots[i] = tlbSlot{key: k, perm: perm, gen: gen, used: true, ref: true}
	t.entries[k] = i
	t.used++
}

// reclaim returns a free slot index, evicting via the clock hand when
// the array is full: referenced slots get a second chance (ref cleared,
// hand moves on), unreferenced ones are reclaimed.
func (t *TLB) reclaim() int {
	for {
		s := &t.slots[t.hand]
		i := t.hand
		t.hand = (t.hand + 1) % len(t.slots)
		if !s.used {
			return i
		}
		if s.ref {
			s.ref = false
			continue
		}
		delete(t.entries, s.key)
		s.used = false
		t.used--
		return i
	}
}

// Flush invalidates every entry on the core.
func (t *TLB) Flush() {
	t.mu.Lock()
	clear(t.entries)
	for i := range t.slots {
		t.slots[i] = tlbSlot{}
	}
	t.hand = 0
	t.used = 0
	t.mu.Unlock()
	t.flushes.Add(1)
}

// FlushRegion invalidates entries covering r in every address space —
// the shootdown a revocation triggers.
func (t *TLB) FlushRegion(r phys.Region) {
	t.mu.Lock()
	for k, i := range t.entries {
		if k.page >= r.Start.Page() && k.page < r.End.Page() {
			delete(t.entries, k)
			t.slots[i] = tlbSlot{}
			t.used--
		}
	}
	t.mu.Unlock()
	t.flushes.Add(1)
}

// Stats returns hit/miss/flush counters.
func (t *TLB) Stats() (hits, misses, flushes uint64) {
	return t.hits.Load(), t.misses.Load(), t.flushes.Load()
}

// Len returns the number of cached entries.
func (t *TLB) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.entries)
}
