package hw

import "github.com/tyche-sim/tyche/internal/phys"

// DefaultTLBEntries is the modelled TLB capacity per core.
const DefaultTLBEntries = 64

// TLB caches per-page access-control decisions, tagged by ASID (address
// space / EPT-pointer tag) and the generation of the filter that
// produced them. Tagging is what makes VMFUNC-style fast filter switches
// cheap: entries of different contexts coexist, so switching requires no
// flush.
//
// A permission change bumps the filter generation. In Strict mode the
// TLB validates generations on every hit (idealised coherent hardware);
// the default non-strict mode honours stale entries — real-TLB
// behaviour, which turns a revocation without a TLB shootdown into a
// modelled vulnerability the failure-injection tests exercise. The
// monitor's flush-on-revoke cleanup is what closes the window.
type TLB struct {
	entries map[tlbKey]tlbEntry
	cap     int
	fifo    []tlbKey
	// Strict, when true, validates generation on every hit.
	Strict bool

	hits, misses, flushes uint64
}

type tlbKey struct {
	asid uint64
	page uint64
}

type tlbEntry struct {
	perm Perm
	gen  uint64
}

// NewTLB returns a TLB holding capacity entries.
func NewTLB(capacity int) *TLB {
	if capacity <= 0 {
		capacity = DefaultTLBEntries
	}
	return &TLB{entries: make(map[tlbKey]tlbEntry, capacity), cap: capacity}
}

// Lookup consults the TLB for page pg of address space asid against
// filter generation gen. It returns the cached permission and whether it
// was a hit. In non-strict mode a stale entry is still returned as a hit.
func (t *TLB) Lookup(asid, pg uint64, gen uint64) (Perm, bool) {
	k := tlbKey{asid, pg}
	e, ok := t.entries[k]
	if !ok {
		t.misses++
		return 0, false
	}
	if t.Strict && e.gen != gen {
		t.misses++
		delete(t.entries, k)
		return 0, false
	}
	t.hits++
	return e.perm, true
}

// Insert caches the decision for page pg of asid, evicting FIFO if full.
func (t *TLB) Insert(asid, pg uint64, perm Perm, gen uint64) {
	k := tlbKey{asid, pg}
	if _, ok := t.entries[k]; !ok {
		if len(t.entries) >= t.cap && len(t.fifo) > 0 {
			victim := t.fifo[0]
			t.fifo = t.fifo[1:]
			delete(t.entries, victim)
		}
		t.fifo = append(t.fifo, k)
	}
	t.entries[k] = tlbEntry{perm: perm, gen: gen}
}

// Flush invalidates every entry on the core.
func (t *TLB) Flush() {
	t.entries = make(map[tlbKey]tlbEntry, t.cap)
	t.fifo = t.fifo[:0]
	t.flushes++
}

// FlushRegion invalidates entries covering r in every address space —
// the shootdown a revocation triggers.
func (t *TLB) FlushRegion(r phys.Region) {
	for k := range t.entries {
		if k.page >= r.Start.Page() && k.page < r.End.Page() {
			delete(t.entries, k)
		}
	}
	// The FIFO compacts lazily: stale slots simply miss on eviction.
	t.flushes++
}

// Stats returns hit/miss/flush counters.
func (t *TLB) Stats() (hits, misses, flushes uint64) {
	return t.hits, t.misses, t.flushes
}

// Len returns the number of cached entries.
func (t *TLB) Len() int { return len(t.entries) }
