package hw

import (
	"encoding/binary"
	"fmt"
)

// The simulated cores execute a small deterministic RISC-style ISA.
// Domain code (workloads, enclave bodies, drivers) is compiled to it by
// the assembler in asm.go; kernels — the isolation monitor and the mini
// OS — are host Go code reached through traps, mirroring the real system
// where the monitor is reached via VMCall/ecall (§3.3).
//
// Encoding: fixed 8-byte words, little-endian:
//
//	byte 0   opcode
//	byte 1   rd
//	byte 2   rs1
//	byte 3   rs2
//	byte 4-7 imm32
//
// Code is ordinary bytes in physical memory, so it is subject to access
// control (execute permission) and measurable for attestation.

// InstrSize is the size of one encoded instruction in bytes.
const InstrSize = 8

// NumRegs is the number of general-purpose registers (r0..r15).
const NumRegs = 16

// Opcode identifies an instruction.
type Opcode uint8

// Instruction opcodes.
const (
	OpHlt     Opcode = iota // halt the core
	OpNop                   // no operation
	OpMovi                  // rd = imm
	OpMov                   // rd = rs1
	OpAdd                   // rd = rs1 + rs2
	OpSub                   // rd = rs1 - rs2
	OpMul                   // rd = rs1 * rs2
	OpAnd                   // rd = rs1 & rs2
	OpOr                    // rd = rs1 | rs2
	OpXor                   // rd = rs1 ^ rs2
	OpShl                   // rd = rs1 << (rs2 & 63)
	OpShr                   // rd = rs1 >> (rs2 & 63)
	OpAddi                  // rd = rs1 + imm
	OpLd                    // rd = mem64[rs1 + imm]
	OpSt                    // mem64[rs1 + imm] = rs2
	OpLdb                   // rd = mem8[rs1 + imm]
	OpStb                   // mem8[rs1 + imm] = rs2 & 0xff
	OpJmp                   // pc = imm
	OpJz                    // if rs1 == 0 { pc = imm }
	OpJnz                   // if rs1 != 0 { pc = imm }
	OpJlt                   // if rs1 < rs2 { pc = imm } (unsigned)
	OpVmcall                // trap to the isolation monitor (r0 = call number)
	OpSyscall               // trap to the domain's kernel (r0 = syscall number)
	OpVmfunc                // fast view switch: r14 selects a pre-registered context

	opMax // sentinel
)

var opNames = [...]string{
	OpHlt: "hlt", OpNop: "nop", OpMovi: "movi", OpMov: "mov",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpAnd: "and", OpOr: "or",
	OpXor: "xor", OpShl: "shl", OpShr: "shr", OpAddi: "addi",
	OpLd: "ld", OpSt: "st", OpLdb: "ldb", OpStb: "stb",
	OpJmp: "jmp", OpJz: "jz", OpJnz: "jnz", OpJlt: "jlt",
	OpVmcall: "vmcall", OpSyscall: "syscall", OpVmfunc: "vmfunc",
}

func (o Opcode) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Instr is one decoded instruction.
type Instr struct {
	Op           Opcode
	Rd, Rs1, Rs2 uint8
	Imm          uint32
}

// Valid reports whether the instruction decodes to a defined operation
// with in-range register operands.
func (i Instr) Valid() bool {
	return i.Op < opMax && i.Rd < NumRegs && i.Rs1 < NumRegs && i.Rs2 < NumRegs
}

// Encode writes the 8-byte encoding of i into buf.
func (i Instr) Encode(buf []byte) {
	_ = buf[7]
	buf[0] = uint8(i.Op)
	buf[1] = i.Rd
	buf[2] = i.Rs1
	buf[3] = i.Rs2
	binary.LittleEndian.PutUint32(buf[4:], i.Imm)
}

// EncodeTo appends the encoding of i to dst.
func (i Instr) EncodeTo(dst []byte) []byte {
	var b [InstrSize]byte
	i.Encode(b[:])
	return append(dst, b[:]...)
}

// Decode parses the 8-byte word in buf.
func Decode(buf []byte) (Instr, error) {
	if len(buf) < InstrSize {
		return Instr{}, fmt.Errorf("hw: short instruction fetch (%d bytes)", len(buf))
	}
	i := Instr{
		Op:  Opcode(buf[0]),
		Rd:  buf[1],
		Rs1: buf[2],
		Rs2: buf[3],
		Imm: binary.LittleEndian.Uint32(buf[4:]),
	}
	if !i.Valid() {
		return i, fmt.Errorf("hw: illegal instruction %#x (op=%d rd=%d rs1=%d rs2=%d)",
			buf[:InstrSize], buf[0], buf[1], buf[2], buf[3])
	}
	return i, nil
}

func (i Instr) String() string {
	switch i.Op {
	case OpHlt, OpNop, OpVmcall, OpSyscall, OpVmfunc:
		return i.Op.String()
	case OpMovi:
		return fmt.Sprintf("movi r%d, %#x", i.Rd, i.Imm)
	case OpMov:
		return fmt.Sprintf("mov r%d, r%d", i.Rd, i.Rs1)
	case OpAddi:
		return fmt.Sprintf("addi r%d, r%d, %#x", i.Rd, i.Rs1, i.Imm)
	case OpLd, OpLdb:
		return fmt.Sprintf("%s r%d, [r%d+%#x]", i.Op, i.Rd, i.Rs1, i.Imm)
	case OpSt, OpStb:
		return fmt.Sprintf("%s [r%d+%#x], r%d", i.Op, i.Rs1, i.Imm, i.Rs2)
	case OpJmp:
		return fmt.Sprintf("jmp %#x", i.Imm)
	case OpJz, OpJnz:
		return fmt.Sprintf("%s r%d, %#x", i.Op, i.Rs1, i.Imm)
	case OpJlt:
		return fmt.Sprintf("jlt r%d, r%d, %#x", i.Rs1, i.Rs2, i.Imm)
	default:
		return fmt.Sprintf("%s r%d, r%d, r%d", i.Op, i.Rd, i.Rs1, i.Rs2)
	}
}
