//go:build !tracebug

package hw

// ShootdownBugArmed reports whether the seeded shootdown mutation is
// compiled in (the tracebug build tag). The mutation test uses it to
// decide whether the trace checker must flag the run.
const ShootdownBugArmed = false

// shootdownSkipLast makes ShootdownRegion/ShootdownAll skip the last
// core's flush and ack — a real stale-TLB bug the trace checker must
// catch. Constant-false in normal builds so the branch folds away.
const shootdownSkipLast = false
