package hw

import (
	"fmt"

	"github.com/tyche-sim/tyche/internal/phys"
)

// DeviceClass is a coarse PCI device category; the bench workloads use
// it to pick devices with appropriate semantics.
type DeviceClass int

// Device classes.
const (
	DevGeneric     DeviceClass = iota
	DevAccelerator             // GPU-like compute engine (Figure 2's GPU)
	DevNIC                     // network interface
	DevStorage                 // block device
)

var devClassNames = [...]string{"generic", "accelerator", "nic", "storage"}

func (c DeviceClass) String() string {
	if int(c) < len(devClassNames) {
		return devClassNames[c]
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// Device is a simulated DMA-capable PCI device (or SR-IOV virtual
// function). Devices are driven by host-side driver code (oskit drivers
// or domain libraries); every DMA traverses the machine's IOMMU, so a
// device attached to a trust domain is confined exactly like a core
// running that domain — the paper's "I/O domains running on devices with
// restricted access to main memory" (§3.1).
type Device struct {
	ID    phys.DeviceID
	Name  string
	Class DeviceClass

	mach *Machine
	dmas uint64
}

// DMACount returns the number of DMA operations issued.
func (d *Device) DMACount() uint64 { return d.dmas }

// checkRange verifies every page of [a, a+n) against the IOMMU and
// charges per-page IOMMU lookup costs.
func (d *Device) checkRange(a phys.Addr, n uint64, want Perm) error {
	if n == 0 {
		return nil
	}
	first := a.Page()
	last := (a + phys.Addr(n) - 1).Page()
	for pg := first; pg <= last; pg++ {
		d.mach.Clock.Advance(d.mach.Cost.IOMMUCheck)
		if !d.mach.IOMMU.Check(d.ID, phys.Addr(pg<<phys.PageShift), want) {
			return &DMAFaultError{Device: d.ID, Addr: phys.Addr(pg << phys.PageShift), Want: want}
		}
	}
	return nil
}

// DMARead copies n bytes from physical memory at src into buf (device-
// internal buffer, host visible to the caller driving the device).
func (d *Device) DMARead(src phys.Addr, buf []byte) error {
	d.dmas++
	if err := d.checkRange(src, uint64(len(buf)), PermR); err != nil {
		return err
	}
	d.chargeCopy(uint64(len(buf)))
	return d.mach.Mem.ReadAt(src, buf)
}

// DMAWrite copies buf into physical memory at dst.
func (d *Device) DMAWrite(dst phys.Addr, buf []byte) error {
	d.dmas++
	if err := d.checkRange(dst, uint64(len(buf)), PermW); err != nil {
		return err
	}
	d.chargeCopy(uint64(len(buf)))
	return d.mach.Mem.WriteAt(dst, buf)
}

// DMACopy moves n bytes from src to dst memory-to-memory.
func (d *Device) DMACopy(src, dst phys.Addr, n uint64) error {
	d.dmas++
	if err := d.checkRange(src, n, PermR); err != nil {
		return err
	}
	if err := d.checkRange(dst, n, PermW); err != nil {
		return err
	}
	buf := make([]byte, n)
	if err := d.mach.Mem.ReadAt(src, buf); err != nil {
		return err
	}
	d.chargeCopy(n)
	return d.mach.Mem.WriteAt(dst, buf)
}

func (d *Device) chargeCopy(n uint64) {
	lines := (n + CacheLineSize - 1) / CacheLineSize
	d.mach.Clock.Advance(lines * d.mach.Cost.ZeroLine)
}

func (d *Device) String() string {
	return fmt.Sprintf("%v(%s,%v)", d.ID, d.Name, d.Class)
}
