//go:build tracebug

package hw

// Seeded mutation build: TLB shootdowns silently skip the last core,
// leaving it with stale translations and one missing acknowledgement.
// This exists to prove the trace invariant checker is not vacuous — see
// TestShootdownMutationOracle. Never ship with this tag.

// ShootdownBugArmed reports whether the seeded shootdown mutation is
// compiled in.
const ShootdownBugArmed = true

const shootdownSkipLast = true
