package hw

import (
	"bytes"
	"testing"

	"github.com/tyche-sim/tyche/internal/phys"
)

func TestMKTMEKeyLifecycle(t *testing.T) {
	e := NewMKTME(nil)
	k1, err := e.AllocKey()
	if err != nil {
		t.Fatal(err)
	}
	k2, err := e.AllocKey()
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k2 || k1 == KeyPlaintext {
		t.Fatalf("key ids: %d, %d", k1, k2)
	}
	r := phys.MakeRegion(0x4000, phys.PageSize)
	if err := e.SetRegionKey(r, k1); err != nil {
		t.Fatal(err)
	}
	if e.KeyOf(0x4800) != k1 || e.KeyOf(0x5000) != KeyPlaintext {
		t.Fatal("page tagging wrong")
	}
	if e.EncryptedPages() != 1 {
		t.Fatalf("encrypted pages = %d", e.EncryptedPages())
	}
	// Unprogrammed keys are rejected; plaintext retag clears.
	if err := e.SetRegionKey(r, 999); err == nil {
		t.Fatal("unprogrammed key accepted")
	}
	if err := e.SetRegionKey(r, KeyPlaintext); err != nil {
		t.Fatal(err)
	}
	if e.EncryptedPages() != 0 {
		t.Fatal("retag to plaintext did not clear")
	}
	if err := e.SetRegionKey(phys.Region{Start: 1, End: 2}, k1); err == nil {
		t.Fatal("unaligned region accepted")
	}
}

func TestMKTMERawViewCiphertext(t *testing.T) {
	mem, err := NewPhysMem(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	e := NewMKTME(nil)
	secret := []byte("top-secret-payload-0123456789abc")
	if err := mem.WriteAt(0x1000, secret); err != nil {
		t.Fatal(err)
	}
	r := phys.MakeRegion(0x1000, phys.PageSize)

	// Untagged: the physical dump contains the plaintext.
	raw, err := e.RawView(mem, r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, secret) {
		t.Fatal("plaintext page should dump verbatim")
	}

	k, err := e.AllocKey()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SetRegionKey(r, k); err != nil {
		t.Fatal(err)
	}
	enc, err := e.RawView(mem, r)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(enc, secret) {
		t.Fatal("keyed page dumped plaintext")
	}
	// Deterministic (same key, same address, same plaintext).
	enc2, _ := e.RawView(mem, r)
	if !bytes.Equal(enc, enc2) {
		t.Fatal("DRAM image must be deterministic")
	}
	// A different key yields a different image for the same content.
	k2, _ := e.AllocKey()
	if err := e.SetRegionKey(r, k2); err != nil {
		t.Fatal(err)
	}
	enc3, _ := e.RawView(mem, r)
	if bytes.Equal(enc[:64], enc3[:64]) {
		t.Fatal("different keys produced identical ciphertext")
	}
	// Software accessors still see plaintext (engine is below them).
	view, _ := mem.View(r)
	if !bytes.Contains(view, secret) {
		t.Fatal("accessor path must stay plaintext")
	}
	// Crypto-erase: the image becomes unrecoverable and != plaintext.
	e.FreeKey(k2)
	erased, _ := e.RawView(mem, r)
	if bytes.Contains(erased, secret) {
		t.Fatal("crypto-erased page leaked plaintext")
	}
	if bytes.Equal(erased, enc3) {
		t.Fatal("erased image should not equal the old ciphertext")
	}
}

func TestMachineWithEncryption(t *testing.T) {
	m, err := NewMachine(Config{MemBytes: 1 << 20, NumCores: 1, MemoryEncryption: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.Crypto == nil {
		t.Fatal("engine missing")
	}
	m2, err := NewMachine(Config{MemBytes: 1 << 20, NumCores: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Crypto != nil {
		t.Fatal("engine present without opt-in")
	}
}
