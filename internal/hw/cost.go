// Package hw simulates the commodity hardware substrate the Tyche
// isolation monitor runs on: physical memory, CPU cores with privilege
// rings and a small deterministic ISA, two layers of memory access
// control (an OS-managed first level and a monitor-managed second level,
// standing in for page tables + EPT on x86_64 or PMP on RISC-V), TLBs,
// data caches with observable micro-architectural state, DMA-capable PCI
// devices behind an IOMMU, and a cycle-accurate cost model.
//
// The paper's monitor runs bare metal (§3.3, §4); a garbage-collected Go
// runtime cannot. This package is the substitution: it enforces the same
// access-control semantics on every memory, device, and control-transfer
// operation and charges architecturally plausible cycle costs, so that
// the monitor's enforcement behaviour and the relative performance shape
// of its mechanisms (VMFUNC vs VM-exit vs context switch, PMP slot
// pressure, cache-flush revocation policies) are preserved.
package hw

import "sync/atomic"

// CostModel holds the cycle costs charged for simulated hardware events.
// The defaults are drawn from published measurements on contemporary
// x86_64 parts (VM exits ~1000-1500 cycles, VMFUNC EPT switch ~100-150
// cycles [Hodor, ATC'19], syscall ~150 cycles, context switch measured in
// the low thousands) and are deliberately configurable: the experiments
// report *shapes* (ratios, crossovers), not absolute silicon numbers.
type CostModel struct {
	// ALUOp is the cost of a register-register arithmetic instruction.
	ALUOp uint64
	// MemHit is an L1-hit load or store.
	MemHit uint64
	// MemMiss is a load or store that misses the data cache.
	MemMiss uint64
	// TLBHit is the added cost of a translation that hits the TLB.
	TLBHit uint64
	// PageWalk is a first-level page-table walk on TLB miss.
	PageWalk uint64
	// EPTWalk is the added cost of the second-dimension walk when a
	// monitor-level filter (EPT) is active.
	EPTWalk uint64
	// VMExit is a trap from a domain into the monitor (VMCall, fault).
	VMExit uint64
	// VMEntry is the resume from monitor back into a domain.
	VMEntry uint64
	// VMFunc is a hardware-accelerated EPT-list switch that changes the
	// active second-level filter without exiting to the monitor.
	VMFunc uint64
	// Syscall is a ring-3 to ring-0 transition inside one domain.
	Syscall uint64
	// Sysret is the return from ring 0 to ring 3.
	Sysret uint64
	// MTrap is a trap into RISC-V machine mode (ecall + save).
	MTrap uint64
	// MRet is the return from machine mode.
	MRet uint64
	// PMPWrite is reprogramming a single PMP entry.
	PMPWrite uint64
	// EPTUpdatePage is updating one page's second-level mapping.
	EPTUpdatePage uint64
	// TLBFlush is a full TLB invalidation on one core.
	TLBFlush uint64
	// CacheFlushLine is flushing one dirty cache line (clflush-like).
	CacheFlushLine uint64
	// ZeroLine is zeroing one 64-byte line of memory (non-temporal store).
	ZeroLine uint64
	// IOMMUCheck is the IOMMU lookup charged per DMA page.
	IOMMUCheck uint64
	// SchedPick is the OS scheduler choosing the next runnable process.
	SchedPick uint64
	// CtxSave is saving/restoring one register file (process switch half).
	CtxSave uint64
}

// DefaultCostModel returns the calibrated default costs.
func DefaultCostModel() CostModel {
	return CostModel{
		ALUOp:          1,
		MemHit:         4,
		MemMiss:        42,
		TLBHit:         0,
		PageWalk:       24,
		EPTWalk:        36,
		VMExit:         1100,
		VMEntry:        800,
		VMFunc:         134,
		Syscall:        150,
		Sysret:         110,
		MTrap:          360,
		MRet:           220,
		PMPWrite:       18,
		EPTUpdatePage:  7,
		TLBFlush:       200,
		CacheFlushLine: 2,
		ZeroLine:       3,
		IOMMUCheck:     12,
		SchedPick:      400,
		CtxSave:        180,
	}
}

// Clock is a cycle counter. The machine's global clock aggregates one
// shard per core so that concurrently running cores never contend on a
// single counter: each core advances only its own shard, the monitor
// and devices advance the global counter, and Cycles sums them all.
// Counters are atomic so aggregate reads are safe while cores run.
type Clock struct {
	cycles atomic.Uint64
	// shards are per-core clocks registered at machine construction;
	// the slice is immutable afterwards, so reads need no lock.
	shards []*Clock
}

// Advance adds n cycles to the clock.
func (c *Clock) Advance(n uint64) { c.cycles.Add(n) }

// Cycles returns the cycles elapsed since machine construction or the
// last Reset, summed across the clock and its shards.
func (c *Clock) Cycles() uint64 {
	total := c.cycles.Load()
	for _, s := range c.shards {
		total += s.cycles.Load()
	}
	return total
}

// Reset zeroes the clock and all its shards.
func (c *Clock) Reset() {
	c.cycles.Store(0)
	for _, s := range c.shards {
		s.cycles.Store(0)
	}
}

// AddShard registers s so its cycles count toward c's total. Only the
// machine constructor calls this; shards must not be added while cores
// run.
func (c *Clock) AddShard(s *Clock) { c.shards = append(c.shards, s) }
