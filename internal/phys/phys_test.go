package phys

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRegionBasics(t *testing.T) {
	r := MakeRegion(0x1000, 0x2000)
	if r.Size() != 0x2000 {
		t.Fatalf("size = %#x, want 0x2000", r.Size())
	}
	if r.Pages() != 2 {
		t.Fatalf("pages = %d, want 2", r.Pages())
	}
	if !r.Contains(0x1000) || !r.Contains(0x2fff) {
		t.Fatal("expected boundary addresses contained")
	}
	if r.Contains(0x3000) || r.Contains(0xfff) {
		t.Fatal("expected exterior addresses not contained")
	}
	if err := r.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
}

func TestRegionValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		r    Region
	}{
		{"empty", Region{}},
		{"inverted", Region{Start: 0x2000, End: 0x1000}},
		{"unaligned start", Region{Start: 0x1001, End: 0x3000}},
		{"unaligned end", Region{Start: 0x1000, End: 0x2fff}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.r.Validate(); err == nil {
				t.Fatalf("Validate(%v) = nil, want error", tc.r)
			}
		})
	}
}

func TestRegionOverlapIntersect(t *testing.T) {
	a := MakeRegion(0x1000, 0x3000)
	b := MakeRegion(0x3000, 0x3000)
	if got := a.Intersect(b); got.Size() != 0x1000 || got.Start != 0x3000 {
		t.Fatalf("intersect = %v", got)
	}
	if !a.Overlaps(b) {
		t.Fatal("expected overlap")
	}
	c := MakeRegion(0x4000, 0x1000)
	if a.Overlaps(c) {
		t.Fatal("adjacent regions must not overlap")
	}
	if got := a.Intersect(c); !got.Empty() {
		t.Fatalf("intersect of disjoint = %v, want empty", got)
	}
}

func TestRegionSubtract(t *testing.T) {
	r := MakeRegion(0x1000, 0x4000) // [0x1000,0x5000)
	tests := []struct {
		name string
		cut  Region
		want []Region
	}{
		{"middle", MakeRegion(0x2000, 0x1000), []Region{{0x1000, 0x2000}, {0x3000, 0x5000}}},
		{"prefix", MakeRegion(0x1000, 0x1000), []Region{{0x2000, 0x5000}}},
		{"suffix", MakeRegion(0x4000, 0x1000), []Region{{0x1000, 0x4000}}},
		{"all", r, nil},
		{"disjoint", MakeRegion(0x8000, 0x1000), []Region{r}},
		{"superset", MakeRegion(0, 0x10000), nil},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := r.Subtract(tc.cut)
			if len(got) != len(tc.want) {
				t.Fatalf("got %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("got %v, want %v", got, tc.want)
				}
			}
		})
	}
}

func TestNormalizeRegions(t *testing.T) {
	in := []Region{
		MakeRegion(0x3000, 0x1000),
		MakeRegion(0x1000, 0x1000),
		MakeRegion(0x2000, 0x1000), // adjacent to both: all merge
		{},                         // empty dropped
		MakeRegion(0x8000, 0x2000),
		MakeRegion(0x9000, 0x2000), // overlaps previous
	}
	got := NormalizeRegions(in)
	want := []Region{{0x1000, 0x4000}, {0x8000, 0xb000}}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if CoverageSize(in) != 0x3000+0x3000 {
		t.Fatalf("coverage = %#x", CoverageSize(in))
	}
}

// Property: subtracting a region and re-adding the intersection restores
// exactly the original coverage.
func TestSubtractIntersectPartition(t *testing.T) {
	f := func(s1, n1, s2, n2 uint16) bool {
		r := MakeRegion(Addr(s1)*PageSize, (uint64(n1)%64+1)*PageSize)
		cut := MakeRegion(Addr(s2)*PageSize, (uint64(n2)%64+1)*PageSize)
		parts := r.Subtract(cut)
		inter := r.Intersect(cut)
		all := append([]Region{}, parts...)
		if !inter.Empty() {
			all = append(all, inter)
		}
		return CoverageSize(all) == r.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: NormalizeRegions is idempotent and preserves coverage.
func TestNormalizeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		var regs []Region
		for i := 0; i < rng.Intn(20); i++ {
			start := Addr(rng.Intn(256)) * PageSize
			regs = append(regs, MakeRegion(start, uint64(rng.Intn(16)+1)*PageSize))
		}
		n1 := NormalizeRegions(regs)
		n2 := NormalizeRegions(n1)
		if len(n1) != len(n2) {
			t.Fatalf("not idempotent: %v vs %v", n1, n2)
		}
		for i := range n1 {
			if n1[i] != n2[i] {
				t.Fatalf("not idempotent: %v vs %v", n1, n2)
			}
		}
		if CoverageSize(regs) != CoverageSize(n1) {
			t.Fatalf("coverage changed: %d vs %d", CoverageSize(regs), CoverageSize(n1))
		}
		// Normalized regions are disjoint and sorted with gaps.
		for i := 1; i < len(n1); i++ {
			if n1[i].Start <= n1[i-1].End {
				t.Fatalf("not disjoint/sorted: %v", n1)
			}
		}
	}
}

func TestPageHelpers(t *testing.T) {
	a := Addr(0x1234)
	if a.PageAlign() != 0x1000 {
		t.Fatalf("align = %v", a.PageAlign())
	}
	if a.PageAligned() {
		t.Fatal("0x1234 should not be aligned")
	}
	if Addr(0x2000).Page() != 2 {
		t.Fatal("page number wrong")
	}
}
