// Package phys defines the physical name spaces the isolation monitor
// operates on: physical memory addresses and regions, CPU core
// identifiers, and PCI device identifiers.
//
// The paper's monitor deliberately manages physical names rather than
// virtual ones: "policies operate on physical name spaces (e.g., memory,
// CPU cores), which (1) permit reasoning about sharing and exclusive
// ownership without having to consider aliasing" (§3.2). Keeping these
// types in a leaf package lets the platform-independent capability model
// and the simulated hardware share one vocabulary without depending on
// each other.
package phys

import (
	"fmt"
	"sort"
)

// PageSize is the granularity of memory access control, matching the 4KiB
// page granularity of second-level page tables (EPT) on x86_64 and the
// minimum practical PMP granularity on RISC-V.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// Addr is a physical memory address.
type Addr uint64

// PageAlign rounds a down to the containing page boundary.
func (a Addr) PageAlign() Addr { return a &^ (PageSize - 1) }

// PageAligned reports whether a lies on a page boundary.
func (a Addr) PageAligned() bool { return a&(PageSize-1) == 0 }

// Page returns the page frame number containing a.
func (a Addr) Page() uint64 { return uint64(a) >> PageShift }

func (a Addr) String() string { return fmt.Sprintf("%#x", uint64(a)) }

// CoreID identifies a CPU core. Cores are physical resources: a trust
// domain may only execute on cores present in its resource configuration.
type CoreID int

func (c CoreID) String() string { return fmt.Sprintf("core%d", int(c)) }

// DeviceID identifies a PCI device (including SR-IOV virtual functions).
type DeviceID int

func (d DeviceID) String() string { return fmt.Sprintf("dev%d", int(d)) }

// Region is a half-open physical memory interval [Start, End).
//
// The zero Region is empty. Regions used for access control must be
// page-aligned; Validate enforces this.
type Region struct {
	Start Addr
	End   Addr
}

// MakeRegion builds the region [start, start+size).
func MakeRegion(start Addr, size uint64) Region {
	return Region{Start: start, End: start + Addr(size)}
}

// Size returns the number of bytes covered by r.
func (r Region) Size() uint64 {
	if r.End <= r.Start {
		return 0
	}
	return uint64(r.End - r.Start)
}

// Pages returns the number of pages covered by r, assuming alignment.
func (r Region) Pages() uint64 { return r.Size() / PageSize }

// Empty reports whether r covers no bytes.
func (r Region) Empty() bool { return r.End <= r.Start }

// Contains reports whether a lies inside r.
func (r Region) Contains(a Addr) bool { return a >= r.Start && a < r.End }

// ContainsRegion reports whether o is fully inside r. Empty o is contained
// in any region.
func (r Region) ContainsRegion(o Region) bool {
	if o.Empty() {
		return true
	}
	return o.Start >= r.Start && o.End <= r.End
}

// Overlaps reports whether r and o share at least one byte.
func (r Region) Overlaps(o Region) bool {
	return !r.Empty() && !o.Empty() && r.Start < o.End && o.Start < r.End
}

// Intersect returns the overlapping part of r and o (possibly empty).
func (r Region) Intersect(o Region) Region {
	s, e := r.Start, r.End
	if o.Start > s {
		s = o.Start
	}
	if o.End < e {
		e = o.End
	}
	if e < s {
		e = s
	}
	return Region{Start: s, End: e}
}

// Validate checks that r is non-empty and page-aligned at both ends.
func (r Region) Validate() error {
	if r.Empty() {
		return fmt.Errorf("phys: empty region %v", r)
	}
	if !r.Start.PageAligned() || !r.End.PageAligned() {
		return fmt.Errorf("phys: region %v not page-aligned", r)
	}
	return nil
}

func (r Region) String() string {
	return fmt.Sprintf("[%#x,%#x)", uint64(r.Start), uint64(r.End))
}

// Subtract returns the parts of r not covered by o, in address order.
// The result has zero, one, or two regions.
func (r Region) Subtract(o Region) []Region {
	if !r.Overlaps(o) {
		if r.Empty() {
			return nil
		}
		return []Region{r}
	}
	var out []Region
	if o.Start > r.Start {
		out = append(out, Region{Start: r.Start, End: o.Start})
	}
	if o.End < r.End {
		out = append(out, Region{Start: o.End, End: r.End})
	}
	return out
}

// NormalizeRegions sorts regions by start address and merges adjacent or
// overlapping ones, dropping empties. It does not mutate its argument.
func NormalizeRegions(regs []Region) []Region {
	cp := make([]Region, 0, len(regs))
	for _, r := range regs {
		if !r.Empty() {
			cp = append(cp, r)
		}
	}
	sort.Slice(cp, func(i, j int) bool { return cp[i].Start < cp[j].Start })
	var out []Region
	for _, r := range cp {
		if n := len(out); n > 0 && r.Start <= out[n-1].End {
			if r.End > out[n-1].End {
				out[n-1].End = r.End
			}
			continue
		}
		out = append(out, r)
	}
	return out
}

// CoverageSize returns the total bytes covered by the normalized union of
// regs.
func CoverageSize(regs []Region) uint64 {
	var total uint64
	for _, r := range NormalizeRegions(regs) {
		total += r.Size()
	}
	return total
}
