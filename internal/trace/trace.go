// Package trace is the monitor's cycle-stamped event trace. Every
// security-relevant state change in the simulated platform is mediated
// by the isolation monitor, so the full history of a run — VMCalls,
// transitions, capability mutations, traps, shootdowns, revocations,
// filter edits — is observable at one choke point. This package records
// that history: each emit point appends one fixed-shape Event to a
// per-core lock-free ring buffer, stamped with the sharded cycle clock
// and a global sequence number.
//
// "Runtime Verification for Trustworthy Computing" (PAPERS.md) argues
// that a minimal monitor's real value is that its state machine can be
// *checked*: temporal safety properties over the event stream, at run
// time. The sibling package trace/check implements exactly that — an
// online invariant checker that attaches to a Tracer as a Sink and
// validates the stream as it is produced, or replays a dumped trace.
//
// Cost model. Tracing is off by default: the machine holds an atomic
// tracer pointer and every emit site is a nil-check branch, so the
// disabled path costs one atomic load (the C17 experiment measures it
// at noise level on the C15 contention workload). The `notrace` build
// tag additionally compiles every emit site out entirely (Compiled
// becomes a false constant and the branches are dead-code eliminated).
// Enabled, an emit is an allocation plus an atomic slot store — no
// locks unless a Sink is attached, in which case emission serialises on
// the sink mutex so checkers observe one linearisation of the run.
package trace

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// GlobalCore is the Core value for events emitted from monitor or
// machine context rather than a specific core's instruction stream.
const GlobalCore int32 = -1

// Kind classifies one traced event. The Domain/Aux/Node/Addr/Size
// payload fields are kind-specific; the schema below is authoritative
// (docs/ARCHITECTURE.md carries the prose version).
type Kind uint8

// Event kinds and their payload schema.
const (
	// KBoot opens every trace: Size = machine core count.
	KBoot Kind = iota
	// KTrap is a core leaving guest execution: Domain = running owner,
	// Aux = hw.TrapKind, Addr = faulting address, Node = trapping PC.
	KTrap
	// KIRQRaise is a device interrupt reaching the controller:
	// Aux = device, Node = vector.
	KIRQRaise
	// KIRQLost is a raised line eaten by the fault injector.
	KIRQLost
	// KIRQSpurious is a phantom interrupt delivered by the injector.
	KIRQSpurious
	// KIRQRoute is the monitor delivering an interrupt to the domain
	// holding the device capability: Domain = receiver, Aux = device,
	// Node = vector.
	KIRQRoute
	// KIRQDrop is an interrupt with no capable receiver.
	KIRQDrop
	// KVMCall is one guest hypercall trap being serviced:
	// Domain = caller, Aux = call number.
	KVMCall
	// KTransition is a mediated domain switch: Domain = target,
	// Aux = source (0 when none), Size = TransLaunch..TransFast.
	KTransition
	// KOpBegin/KOpEnd bracket one monitor operation that may shoot down
	// TLBs (delegation, revocation, destruction): Domain = caller or
	// victim, Aux = OpShare..OpKill. Ops never interleave — the monitor
	// lock serialises them — but they may nest (a kill revokes).
	KOpBegin
	KOpEnd
	// KShare/KGrant are successful delegations: Domain = caller,
	// Aux = destination, Node = new capability node, Addr/Size = region.
	KShare
	KGrant
	// KRevoke is a successful revocation: Domain = caller, Node = the
	// revoked node (0 with Aux=1 for a whole-owner revocation during
	// domain destruction).
	KRevoke
	// KSeal is a domain sealing: Domain = sealed domain.
	KSeal
	// KCreate is domain creation: Domain = new ID, Aux = creator.
	KCreate
	// KShootdown is a cross-core TLB shootdown starting:
	// Addr/Size = region (0/0 = full flush).
	KShootdown
	// KShootdownAck is one core completing its flush: Aux = core.
	KShootdownAck
	// KForceKill is a destruction with monitor authority:
	// Domain = victim.
	KForceKill
	// KContain is the machine-check containment path running:
	// Core = faulting core, Domain = victim.
	KContain
	// KScrubPlan declares one exclusively-held region that must be
	// scrubbed before the kill completes: Domain = victim, Addr/Size.
	KScrubPlan
	// KScrub is a region zeroed and shot down: Domain = victim,
	// Addr/Size.
	KScrub
	// KKill closes a domain destruction — the domain is dead, its state
	// removed: Domain = victim.
	KKill
	// KEPTMap is the vtx backend programming one EPT segment:
	// Domain = owner, Addr/Size = region, Node = permission bits.
	KEPTMap
	// KEPTClear is the vtx backend emptying a domain's EPT.
	KEPTClear
	// KPMPWrite is the pmp backend programming one PMP entry:
	// Core = target core, Domain = owner, Addr/Size, Node = perm bits.
	KPMPWrite
	// KAttest is an attestation report being produced: Domain = subject.
	KAttest
	// KBatchBegin opens one ring drain: Domain = ring owner,
	// Aux = descriptors pending, Node = frame token. The logical ops the
	// batch executes emit their ordinary events inside the frame, so the
	// checker still sees every op; deferred shootdowns coalesce into at
	// most one KShootdown round before the frame closes.
	KBatchBegin
	// KBatchEnd closes the drain: Domain = ring owner, Aux = descriptors
	// executed, Node = the matching begin token.
	KBatchEnd
	// KDrainBegin opens one parallel drain round: rings partitioned
	// across worker cores drain concurrently inside the frame (each
	// still bracketed by its own KBatchBegin/KBatchEnd), and the round's
	// deferred revocation shootdowns coalesce into at most one
	// cross-ring KShootdown before the frame closes. Domain = 0
	// (monitor context), Aux = rings in the round, Node = frame token.
	KDrainBegin
	// KDrainEnd closes the parallel round: Aux = descriptors executed
	// across all rings, Node = the matching begin token.
	KDrainEnd

	numKinds
)

var kindNames = [...]string{
	KBoot: "boot", KTrap: "trap", KIRQRaise: "irq-raise",
	KIRQLost: "irq-lost", KIRQSpurious: "irq-spurious",
	KIRQRoute: "irq-route", KIRQDrop: "irq-drop", KVMCall: "vmcall",
	KTransition: "transition", KOpBegin: "op-begin", KOpEnd: "op-end",
	KShare: "share", KGrant: "grant", KRevoke: "revoke", KSeal: "seal",
	KCreate: "create", KShootdown: "shootdown",
	KShootdownAck: "shootdown-ack", KForceKill: "force-kill",
	KContain: "contain", KScrubPlan: "scrub-plan", KScrub: "scrub",
	KKill: "kill", KEPTMap: "ept-map", KEPTClear: "ept-clear",
	KPMPWrite: "pmp-write", KAttest: "attest",
	KBatchBegin: "batch-begin", KBatchEnd: "batch-end",
	KDrainBegin: "drain-begin", KDrainEnd: "drain-end",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Transition kinds (KTransition.Size). TransDispatch is the
// scheduler's resume path: a monitor-mediated transition that
// restores a preempted vCPU's saved state instead of entering at the
// fixed entry point. The checker counts it as an ordinary mediated
// transition, and the dead-domain-silence property over KTransition
// is what proves a killed domain is never dispatched again.
const (
	TransLaunch uint64 = iota
	TransCall
	TransReturn
	TransFast
	TransDispatch
)

// Operation codes (KOpBegin/KOpEnd.Aux).
const (
	OpShare uint64 = iota
	OpGrant
	OpRevoke
	OpKill
)

// Event is one traced platform event. All payload fields are scalars so
// emission never chases pointers; their meaning is per-Kind (see the
// Kind constants).
type Event struct {
	// Seq is the global emission sequence number (1-based).
	Seq uint64
	// Cycle is the sharded cycle clock's aggregate at emission.
	Cycle uint64
	// Core is the emitting core, or GlobalCore for monitor context.
	Core int32
	// Kind classifies the event.
	Kind Kind

	Domain uint64
	Aux    uint64
	Node   uint64
	Addr   uint64
	Size   uint64
}

func (e Event) String() string {
	return fmt.Sprintf("#%d @%d c%d %s dom=%d aux=%d node=%d addr=%#x size=%d",
		e.Seq, e.Cycle, e.Core, e.Kind, e.Domain, e.Aux, e.Node, e.Addr, e.Size)
}

// Sink receives every event at emission time, serialised under the
// tracer's sink mutex — one linearisation of the run, suitable for
// online checking. Sinks must not call back into the Tracer.
type Sink interface {
	Event(Event)
}

// ShardSink receives events per ring, WITHOUT the tracer-wide sink
// mutex: shard is the ring index the event landed in (0 = global
// context, c+1 = core c). Calls for different shards run concurrently;
// calls for the same shard may too (the global ring takes emissions
// from every core), so implementations synchronise per shard — which
// is exactly what keeps the hot emit path unserialised. A ShardSink
// may read Tracer.Len but must not otherwise call back into the
// Tracer.
type ShardSink interface {
	ShardEvent(shard int, ev Event)
}

// shardHolder boxes the interface so it can live in an atomic.Pointer.
type shardHolder struct{ s ShardSink }

// ring is one bounded event buffer. Appends reserve a slot with an
// atomic fetch-add and publish the event with an atomic pointer store,
// so concurrent emitters never lock; the oldest events are overwritten
// once the ring wraps.
type ring struct {
	slots []atomic.Pointer[Event]
	pos   atomic.Uint64
	// tick counts sample-eligible emission attempts on this ring; the
	// 1-in-N sampler keys off it so sampling is deterministic per ring,
	// independent of cross-ring interleaving.
	tick atomic.Uint64
}

func (r *ring) append(ev *Event) {
	i := r.pos.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(ev)
}

// DefaultRingEntries is the per-ring capacity when New is given 0.
const DefaultRingEntries = 4096

// Tracer records events into one ring per core plus one for global
// (monitor/device) context. It is safe for concurrent use by every
// core, the monitor, and devices.
type Tracer struct {
	cycles func() uint64
	rings  []*ring // rings[0] = global, rings[c+1] = core c

	seq atomic.Uint64

	// sampleN, when > 1, keeps only every Nth sample-eligible event
	// per ring (see Sampleable); sampledOut counts the drops. Safety-
	// critical kinds are never sampled, so the checker's invariants
	// stay sound — only the high-rate tallies become estimates.
	sampleN    atomic.Int64
	sampledOut atomic.Uint64

	// sharded is the per-ring sink (at most one), delivered to without
	// the sink mutex when no serial sinks are attached.
	sharded atomic.Pointer[shardHolder]

	hasSinks atomic.Bool
	mu       sync.Mutex
	sinks    []Sink
}

// New returns a tracer for a machine with the given core count.
// perRing is each ring's capacity (DefaultRingEntries when 0); cycles
// supplies timestamps (the machine clock's aggregate read) and may be
// nil for untimed traces.
func New(cores, perRing int, cycles func() uint64) *Tracer {
	if perRing <= 0 {
		perRing = DefaultRingEntries
	}
	t := &Tracer{cycles: cycles}
	for i := 0; i < cores+1; i++ {
		r := &ring{slots: make([]atomic.Pointer[Event], perRing)}
		t.rings = append(t.rings, r)
	}
	return t
}

// Attach registers a sink. From now on emission serialises on the sink
// mutex so the sink observes a single total order.
func (t *Tracer) Attach(s Sink) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sinks = append(t.sinks, s)
	t.hasSinks.Store(true)
}

// AttachSharded registers the per-ring sink (replacing any previous
// one). Unlike Attach, this does NOT put emission under the sink
// mutex: each event is handed to the ShardSink right after its ring
// store, concurrently across rings. When serial sinks are also
// attached, delivery happens inside the sink mutex after them, so
// both views agree on Seq order.
func (t *Tracer) AttachSharded(s ShardSink) {
	if s == nil {
		t.sharded.Store(nil)
		return
	}
	t.sharded.Store(&shardHolder{s: s})
}

// Rings returns the ring count (1 global + one per core) — the shard
// space a ShardSink must cover.
func (t *Tracer) Rings() int { return len(t.rings) }

// SetSampling sets 1-in-N sampling of the sample-eligible event kinds
// (Sampleable): per ring, only every Nth such emission is recorded;
// the rest are dropped before allocation or sequence assignment.
// n <= 1 disables sampling. Never-sampled kinds (ops, capability
// mutations, shootdowns, scrubs, kills, batches) stay exact, so every
// checker safety property remains sound under sampling; only the
// high-rate tallies (VMCalls, Transitions, IRQ counts) become
// estimates and stop reconciling exactly against Monitor.Stats().
func (t *Tracer) SetSampling(n int) { t.sampleN.Store(int64(n)) }

// SampleN returns the sampling divisor (<= 1 when sampling is off).
func (t *Tracer) SampleN() int { return int(t.sampleN.Load()) }

// SampledOut returns how many events sampling has dropped.
func (t *Tracer) SampledOut() uint64 { return t.sampledOut.Load() }

// Sampleable reports whether 1-in-N sampling may drop events of kind
// k. Only the high-rate per-core kinds with no structural role in the
// checker's temporal properties qualify; everything on a kill, scrub,
// shootdown, capability or batch path is exact by construction.
func Sampleable(k Kind) bool {
	switch k {
	case KVMCall, KTransition, KTrap, KIRQRaise, KIRQLost, KIRQSpurious,
		KIRQRoute, KIRQDrop:
		return true
	}
	return false
}

// Emit records one event. core is the emitting core or GlobalCore.
func (t *Tracer) Emit(core int32, k Kind, domain, aux, node, addr, size uint64) {
	ri := 0
	if n := int(core) + 1; n >= 1 && n < len(t.rings) {
		ri = n
	}
	if n := t.sampleN.Load(); n > 1 && Sampleable(k) {
		if t.rings[ri].tick.Add(1)%uint64(n) != 0 {
			t.sampledOut.Add(1)
			return
		}
	}
	ev := &Event{
		Core: core, Kind: k,
		Domain: domain, Aux: aux, Node: node, Addr: addr, Size: size,
	}
	if t.cycles != nil {
		ev.Cycle = t.cycles()
	}
	sh := t.sharded.Load()
	if t.hasSinks.Load() {
		// Sink mode: sequence assignment, ring store, and delivery all
		// happen under one mutex so every sink sees emission order and
		// Seq agree exactly.
		t.mu.Lock()
		ev.Seq = t.seq.Add(1)
		t.rings[ri].append(ev)
		for _, s := range t.sinks {
			s.Event(*ev)
		}
		if sh != nil {
			sh.s.ShardEvent(ri, *ev)
		}
		t.mu.Unlock()
		return
	}
	ev.Seq = t.seq.Add(1)
	t.rings[ri].append(ev)
	if sh != nil {
		sh.s.ShardEvent(ri, *ev)
	}
}

// Len returns the number of events emitted so far (including any the
// rings have since overwritten).
func (t *Tracer) Len() uint64 { return t.seq.Load() }

// Dropped returns how many events have been overwritten by ring wrap.
func (t *Tracer) Dropped() uint64 {
	var dropped uint64
	for _, r := range t.rings {
		if pos, n := r.pos.Load(), uint64(len(r.slots)); pos > n {
			dropped += pos - n
		}
	}
	return dropped
}

// Events snapshots every buffered event across all rings, sorted by
// sequence number. Concurrent emission may overwrite slots mid-read;
// the snapshot is whatever the rings held, each event internally
// consistent (events are published whole via pointer stores).
func (t *Tracer) Events() []Event {
	var out []Event
	for _, r := range t.rings {
		for i := range r.slots {
			if ev := r.slots[i].Load(); ev != nil {
				out = append(out, *ev)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}
