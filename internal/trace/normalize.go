package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Normalize renders events as a canonical text form suitable for
// golden-trace comparison across runs, schedulers, and machine shapes:
// events are ordered by sequence number, cycle stamps and sequence
// numbers are dropped (they vary with core count and interleaving),
// the boot core count is elided, each shootdown's per-core acks
// fold into a single "acks=all" (or "acks=<n>/<cores>") suffix, and
// capability-node IDs (whose absolute values depend on how many core
// nodes boot allocated) are renumbered by first appearance — so the
// same logical run normalises identically on 2 or 8 cores. cores is
// the machine core count the trace was taken on.
func Normalize(events []Event, cores int) string {
	evs := append([]Event(nil), events...)
	sort.Slice(evs, func(i, j int) bool { return evs[i].Seq < evs[j].Seq })

	// Dense renumbering of capability-node IDs. Only kinds whose Node
	// field holds a node ID participate; for the others Node carries a
	// PC or permission bits that must stay literal.
	nodeAlias := make(map[uint64]int)
	canonNode := func(n uint64) string {
		if n == 0 {
			return "0"
		}
		a, ok := nodeAlias[n]
		if !ok {
			a = len(nodeAlias)
			nodeAlias[n] = a
		}
		return fmt.Sprintf("#%d", a)
	}
	// Operation-frame tokens (KOpBegin/KOpEnd Node field) are a separate
	// namespace from capability-node IDs; alias them independently.
	tokAlias := make(map[uint64]int)
	canonTok := func(n uint64) string {
		if n == 0 {
			return "0"
		}
		a, ok := tokAlias[n]
		if !ok {
			a = len(tokAlias)
			tokAlias[n] = a
		}
		return fmt.Sprintf("t%d", a)
	}

	var b strings.Builder
	pendingAcks := -1 // acks seen for the last shootdown, -1 = none open
	var pending Event
	flush := func() {
		if pendingAcks < 0 {
			return
		}
		suffix := fmt.Sprintf("acks=%d/%d", pendingAcks, cores)
		if pendingAcks == cores {
			suffix = "acks=all"
		}
		fmt.Fprintf(&b, "%s addr=%#x size=%d %s\n",
			pending.Kind, pending.Addr, pending.Size, suffix)
		pendingAcks = -1
	}
	for _, ev := range evs {
		switch ev.Kind {
		case KShootdown:
			flush()
			pending, pendingAcks = ev, 0
			continue
		case KShootdownAck:
			if pendingAcks >= 0 {
				pendingAcks++
				continue
			}
			// Ack with no open shootdown: keep it visible — the checker
			// would flag it, and golden traces should too.
		case KBoot:
			flush()
			b.WriteString("boot\n")
			continue
		}
		flush()
		node := fmt.Sprint(ev.Node)
		switch ev.Kind {
		case KShare, KGrant, KRevoke:
			node = canonNode(ev.Node)
		case KOpBegin, KOpEnd:
			// Node carries the operation-frame token, minted from a
			// global counter — renumber by first appearance so traces
			// compare across runs (token 0, the legacy untokened form,
			// stays literal).
			node = canonTok(ev.Node)
		}
		fmt.Fprintf(&b, "%s core=%d dom=%d aux=%d node=%s addr=%#x size=%d\n",
			ev.Kind, ev.Core, ev.Domain, ev.Aux, node, ev.Addr, ev.Size)
	}
	flush()
	return b.String()
}
