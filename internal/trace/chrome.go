package trace

import (
	"encoding/json"
	"io"
)

// chromeEvent is one entry in the Chrome trace-event JSON array
// (the format chrome://tracing and Perfetto load directly).
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    uint64         `json:"ts"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTID maps an event's core to a Chrome thread id: tid 0 is the
// monitor/global track, tid c+1 is core c.
func chromeTID(core int32) int {
	if core < 0 {
		return 0
	}
	return int(core) + 1
}

// WriteChromeTrace serialises events (as returned by Tracer.Events) in
// Chrome trace-event format. Timestamps are simulated cycles presented
// as microseconds; KOpBegin/KOpEnd become duration ("B"/"E") slices and
// everything else an instant event on its core's track.
func WriteChromeTrace(w io.Writer, events []Event) error {
	out := make([]chromeEvent, 0, len(events)+8)
	named := map[int]bool{}
	for _, ev := range events {
		tid := chromeTID(ev.Core)
		if !named[tid] {
			named[tid] = true
			name := "monitor"
			if tid > 0 {
				name = "core " + itoa(tid-1)
			}
			out = append(out, chromeEvent{
				Name: "thread_name", Phase: "M", PID: 1, TID: tid,
				Args: map[string]any{"name": name},
			})
		}
		ce := chromeEvent{
			Name: ev.Kind.String(), TS: ev.Cycle, PID: 1, TID: tid,
			Args: map[string]any{
				"seq": ev.Seq, "domain": ev.Domain, "aux": ev.Aux,
				"node": ev.Node, "addr": ev.Addr, "size": ev.Size,
			},
		}
		switch ev.Kind {
		case KOpBegin:
			ce.Phase = "B"
			ce.Name = opName(ev.Aux)
		case KOpEnd:
			ce.Phase = "E"
			ce.Name = opName(ev.Aux)
		default:
			ce.Phase = "i"
			ce.Scope = "t"
		}
		out = append(out, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

func opName(op uint64) string {
	switch op {
	case OpShare:
		return "op:share"
	case OpGrant:
		return "op:grant"
	case OpRevoke:
		return "op:revoke"
	case OpKill:
		return "op:kill"
	}
	return "op:?"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
