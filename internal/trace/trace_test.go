package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestEmitRecordsAndOrders(t *testing.T) {
	var cyc uint64
	tr := New(2, 16, func() uint64 { cyc += 10; return cyc })
	tr.Emit(GlobalCore, KBoot, 0, 0, 0, 0, 2)
	tr.Emit(0, KTrap, 1, 2, 3, 4, 0)
	tr.Emit(1, KVMCall, 2, 7, 0, 0, 0)
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}
	if evs[0].Kind != KBoot || evs[1].Kind != KTrap || evs[2].Kind != KVMCall {
		t.Fatalf("wrong order: %v", evs)
	}
	if evs[0].Cycle == 0 || evs[1].Cycle <= evs[0].Cycle {
		t.Fatalf("cycle stamps not monotone: %v", evs)
	}
	if tr.Len() != 3 || tr.Dropped() != 0 {
		t.Fatalf("len=%d dropped=%d", tr.Len(), tr.Dropped())
	}
}

func TestRingWrapDropsOldest(t *testing.T) {
	tr := New(1, 4, nil)
	for i := 0; i < 10; i++ {
		tr.Emit(0, KVMCall, uint64(i), 0, 0, 0, 0)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(evs))
	}
	// The survivors are the newest four, still in seq order.
	for i, ev := range evs {
		if want := uint64(6 + i); ev.Domain != want {
			t.Fatalf("slot %d holds domain %d, want %d", i, ev.Domain, want)
		}
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped=%d, want 6", tr.Dropped())
	}
}

// TestConcurrentEmitIsRaceFree hammers the lock-free append path from
// many goroutines; the -race runs of CI are the real assertion.
func TestConcurrentEmitIsRaceFree(t *testing.T) {
	const goroutines, per = 8, 2000
	tr := New(goroutines, 64, nil)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.Emit(int32(g), KTrap, uint64(g), uint64(i), 0, 0, 0)
			}
		}(g)
	}
	// A concurrent reader snapshotting mid-emission.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			for _, ev := range tr.Events() {
				if ev.Kind != KTrap {
					t.Errorf("torn event: %v", ev)
					return
				}
			}
		}
	}()
	wg.Wait()
	<-done
	if got := tr.Len(); got != goroutines*per {
		t.Fatalf("emitted %d, want %d", got, goroutines*per)
	}
}

type collectSink struct {
	mu  sync.Mutex
	evs []Event
}

func (s *collectSink) Event(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.evs = append(s.evs, ev)
}

func TestSinkSeesTotalOrder(t *testing.T) {
	tr := New(4, 0, nil)
	sink := &collectSink{}
	tr.Attach(sink)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Emit(int32(g), KVMCall, uint64(g), 0, 0, 0, 0)
			}
		}(g)
	}
	wg.Wait()
	if len(sink.evs) != 2000 {
		t.Fatalf("sink saw %d events, want 2000", len(sink.evs))
	}
	// Delivery order and sequence numbers must agree exactly.
	for i, ev := range sink.evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("delivery %d carries seq %d", i, ev.Seq)
		}
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := New(2, 0, nil)
	tr.Emit(GlobalCore, KBoot, 0, 0, 0, 0, 2)
	tr.Emit(GlobalCore, KOpBegin, 3, OpRevoke, 0, 0, 0)
	tr.Emit(GlobalCore, KShootdown, 0, 0, 0, 0x1000, 4096)
	tr.Emit(GlobalCore, KOpEnd, 3, OpRevoke, 0, 0, 0)
	tr.Emit(1, KTrap, 3, 2, 0, 0, 0)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Events()); err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	var phases []string
	for _, e := range out {
		phases = append(phases, fmt.Sprint(e["ph"]))
	}
	joined := strings.Join(phases, "")
	if !strings.Contains(joined, "B") || !strings.Contains(joined, "E") {
		t.Fatalf("missing op duration slices in %v", phases)
	}
}

func TestNormalizeFoldsAcks(t *testing.T) {
	mk := func(cores int) []Event {
		tr := New(cores, 0, nil)
		tr.Emit(GlobalCore, KBoot, 0, 0, 0, 0, uint64(cores))
		tr.Emit(GlobalCore, KOpBegin, 1, OpRevoke, 0, 0, 0)
		tr.Emit(GlobalCore, KShootdown, 0, 0, 0, 0x2000, 4096)
		for c := 0; c < cores; c++ {
			tr.Emit(GlobalCore, KShootdownAck, 0, uint64(c), 0, 0x2000, 4096)
		}
		tr.Emit(GlobalCore, KOpEnd, 1, OpRevoke, 0, 0, 0)
		return tr.Events()
	}
	a := Normalize(mk(2), 2)
	b := Normalize(mk(8), 8)
	if a != b {
		t.Fatalf("normalized traces differ across core counts:\n--- 2 cores\n%s--- 8 cores\n%s", a, b)
	}
	if !strings.Contains(a, "acks=all") {
		t.Fatalf("expected folded acks, got:\n%s", a)
	}
	// A partial acknowledgement must stay visible.
	tr := New(2, 0, nil)
	tr.Emit(GlobalCore, KShootdown, 0, 0, 0, 0x2000, 4096)
	tr.Emit(GlobalCore, KShootdownAck, 0, 0, 0, 0x2000, 4096)
	if n := Normalize(tr.Events(), 2); !strings.Contains(n, "acks=1/2") {
		t.Fatalf("partial acks not visible:\n%s", n)
	}
}

func TestNormalizeCanonicalisesNodeIDs(t *testing.T) {
	// Absolute node IDs depend on how many core nodes boot allocated;
	// the same logical run on a bigger machine shifts them all.
	mk := func(base uint64) []Event {
		tr := New(1, 0, nil)
		tr.Emit(GlobalCore, KShare, 1, 2, base, 0x1000, 4096)
		tr.Emit(GlobalCore, KGrant, 1, 3, base+5, 0x2000, 4096)
		tr.Emit(GlobalCore, KRevoke, 1, 0, base, 0, 0)
		return tr.Events()
	}
	a, b := Normalize(mk(10), 1), Normalize(mk(42), 1)
	if a != b {
		t.Fatalf("node IDs not canonicalised:\n--- base 10\n%s--- base 42\n%s", a, b)
	}
	if !strings.Contains(a, "node=#0") || !strings.Contains(a, "node=#1") {
		t.Fatalf("expected dense #k aliases, got:\n%s", a)
	}
	// A trap's Node field is a PC, not a node ID — it must stay literal.
	tr := New(1, 0, nil)
	tr.Emit(0, KTrap, 1, 2, 0x4000, 0, 0)
	if n := Normalize(tr.Events(), 1); !strings.Contains(n, "node=16384") {
		t.Fatalf("trap PC was rewritten:\n%s", n)
	}
}
