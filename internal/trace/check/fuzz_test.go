package check

import (
	"testing"

	"github.com/tyche-sim/tyche/internal/trace"
)

// fuzzRecordSize is the fixed-width wire format FuzzTraceReplay decodes:
// one event per 8 bytes — kind, core, domain, aux, node, addr-page,
// size-pages, seq-jitter.
const fuzzRecordSize = 8

// decodeFuzzEvents turns raw fuzz input into an adversarial event
// stream: arbitrary kinds on arbitrary cores, acks for shootdowns that
// were never opened, unbalanced op/batch brackets, scrub plans with no
// scrubs, transitions by killed domains — whatever the bytes say. Seqs
// are unique but may be locally swapped (byte 7) so replays also see
// out-of-order assignment.
func decodeFuzzEvents(data []byte) []trace.Event {
	kinds := uint64(trace.KBatchEnd) + 1
	n := len(data) / fuzzRecordSize
	if n > 4096 {
		n = 4096
	}
	evs := make([]trace.Event, 0, n)
	for i := 0; i < n; i++ {
		b := data[i*fuzzRecordSize : (i+1)*fuzzRecordSize]
		evs = append(evs, trace.Event{
			Seq:    uint64(i + 1),
			Core:   int32(b[1]%6) - 1, // -1 (global) .. 4
			Kind:   trace.Kind(uint64(b[0]) % kinds),
			Domain: uint64(b[2] % 8),
			Aux:    uint64(b[3] % 8),
			Node:   uint64(b[4] % 8),
			Addr:   uint64(b[5]) << 12,
			Size:   uint64(b[6]%5) << 12,
		})
		// Swap adjacent seqs so the stream is delivered out of order.
		if b[7]&1 == 1 && i > 0 {
			j := len(evs) - 1
			evs[j].Seq, evs[j-1].Seq = evs[j-1].Seq, evs[j].Seq
		}
	}
	return evs
}

// fuzzSeed assembles one record.
func fuzzSeed(recs ...[fuzzRecordSize]byte) []byte {
	var out []byte
	for _, r := range recs {
		out = append(out, r[:]...)
	}
	return out
}

// FuzzTraceReplay feeds adversarial streams through BOTH checkers:
// neither may panic, each must be deterministic across two runs of the
// same input, and the two must agree on verdict, violation multiset,
// and counts — the fuzz-driven form of the differential suite.
func FuzzTraceReplay(f *testing.F) {
	kb := byte(trace.KBoot)
	// Clean op-bracketed revoke with a full shootdown round (2 cores).
	f.Add(fuzzSeed(
		[8]byte{kb, 0, 0, 0, 0, 0, 2, 0},
		[8]byte{byte(trace.KOpBegin), 0, 1, byte(trace.OpRevoke), 1, 0, 0, 0},
		[8]byte{byte(trace.KShootdown), 0, 0, 0, 0, 1, 1, 0},
		[8]byte{byte(trace.KShootdownAck), 0, 0, 0, 0, 1, 1, 0},
		[8]byte{byte(trace.KShootdownAck), 0, 0, 1, 0, 1, 1, 0},
		[8]byte{byte(trace.KOpEnd), 0, 1, byte(trace.OpRevoke), 1, 0, 0, 0},
	))
	// Ack for a shootdown that was never opened.
	f.Add(fuzzSeed(
		[8]byte{kb, 0, 0, 0, 0, 0, 2, 0},
		[8]byte{byte(trace.KShootdownAck), 0, 0, 0, 0, 1, 1, 0},
	))
	// Kill with a scrub plan and no scrub, then a dead transition.
	f.Add(fuzzSeed(
		[8]byte{kb, 0, 0, 0, 0, 0, 1, 0},
		[8]byte{byte(trace.KOpBegin), 0, 5, byte(trace.OpKill), 2, 0, 0, 0},
		[8]byte{byte(trace.KScrubPlan), 0, 5, 0, 0, 4, 2, 0},
		[8]byte{byte(trace.KKill), 0, 5, 0, 0, 0, 0, 0},
		[8]byte{byte(trace.KOpEnd), 0, 5, byte(trace.OpKill), 2, 0, 0, 0},
		[8]byte{byte(trace.KTransition), 1, 5, 0, 0, 0, 0, 0},
	))
	// Truncated batch: a batch bracket that never closes, out of order.
	f.Add(fuzzSeed(
		[8]byte{kb, 0, 0, 0, 0, 0, 2, 0},
		[8]byte{byte(trace.KBatchBegin), 0, 1, 0, 3, 0, 0, 1},
		[8]byte{byte(trace.KShootdown), 0, 0, 0, 0, 2, 1, 1},
	))

	f.Fuzz(func(t *testing.T, data []byte) {
		evs := decodeFuzzEvents(data)

		serial1, serial2 := Replay(evs), Replay(evs)
		sh1, sh2 := ReplaySharded(evs), ReplaySharded(evs)
		serialErr, shErr := serial1.Err(), sh1.Err()

		// Determinism: the same input replays to the same verdict.
		if (serial2.Err() == nil) != (serialErr == nil) {
			t.Fatal("serial replay nondeterministic")
		}
		if (sh2.Err() == nil) != (shErr == nil) {
			t.Fatal("sharded replay nondeterministic")
		}
		m1, m2 := msgsOf(serial1.Violations()), msgsOf(serial2.Violations())
		s1, s2 := msgsOf(sh1.Violations()), msgsOf(sh2.Violations())
		if len(m1) != len(m2) || len(s1) != len(s2) {
			t.Fatalf("nondeterministic violation counts: serial %d/%d, sharded %d/%d",
				len(m1), len(m2), len(s1), len(s2))
		}

		// Differential: sharded and serial agree byte for byte.
		if (serialErr == nil) != (shErr == nil) {
			t.Fatalf("checkers disagree on verdict:\n  serial:  %v\n  sharded: %v", serialErr, shErr)
		}
		if len(m1) != len(s1) {
			t.Fatalf("violation multisets differ:\n  serial:  %q\n  sharded: %q", m1, s1)
		}
		for i := range m1 {
			if m1[i] != s1[i] {
				t.Fatalf("violation %d differs:\n  serial:  %s\n  sharded: %s", i, m1[i], s1[i])
			}
		}
		if serial1.Counts() != sh1.Counts() {
			t.Fatalf("counts differ:\n  serial:  %+v\n  sharded: %+v", serial1.Counts(), sh1.Counts())
		}
	})
}
