package check

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"github.com/tyche-sim/tyche/internal/trace"
)

// Trace digests: the fleet-facing output of the sharded checker. Each
// stable merge becomes one Digest — shard counts, the interval's
// violation verdicts, and the exact (never-sampled) structural events
// as an audit stream — hash-chained to its predecessor and shipped
// over an attested channel (internal/dist) to a RemoteVerifier. The
// verifier re-derives the chain, replays the audit stream through its
// own serial engine, and flags both reported violations and
// divergence: a node whose checker says "clean" while the replay finds
// a violation is lying or broken, and either way untrusted.

// MaxAuditEvents bounds one digest's audit stream. Intervals that
// resolve more structural events than this report the overflow in
// AuditDropped — the verifier then skips divergence replay for the
// chain (reported verdicts still count) instead of silently judging a
// truncated stream.
const MaxAuditEvents = 4096

// Digest is one interval's attestable summary of a node's trace.
type Digest struct {
	// Node names the emitting machine in the fleet.
	Node string `json:"node"`
	// Interval is this digest's position in the node's chain (0-based).
	Interval uint64 `json:"interval"`
	// Seen is the node's cumulative delivered-event count.
	Seen uint64 `json:"seen"`
	// SampleN / SampledOut describe the sampling regime (exact = 0/1).
	SampleN    int    `json:"sample_n,omitempty"`
	SampledOut uint64 `json:"sampled_out,omitempty"`
	// Counts is the node's cumulative event-derived tally.
	Counts Counts `json:"counts"`
	// Shards is the per-shard local bookkeeping snapshot.
	Shards []ShardStat `json:"shards,omitempty"`
	// Violations are the interval's new violation messages.
	Violations []string `json:"violations,omitempty"`
	// Audit is the interval's structural event stream (seq order).
	Audit []trace.Event `json:"audit,omitempty"`
	// AuditDropped counts audit events elided past MaxAuditEvents.
	AuditDropped uint64 `json:"audit_dropped,omitempty"`
	// PrevHash chains to the previous digest ("" for interval 0);
	// Hash is this digest's own hash (computed with Hash empty).
	PrevHash string `json:"prev_hash"`
	Hash     string `json:"hash"`
}

// digestHash computes the canonical hash: SHA-256 over the JSON
// encoding with the Hash field cleared.
func digestHash(d Digest) (string, error) {
	d.Hash = ""
	b, err := json.Marshal(d)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// DigestBuilder turns a node's merge reports into its hash chain.
type DigestBuilder struct {
	node     string
	sampleN  int
	interval uint64
	prevHash string
}

// NewDigestBuilder starts a chain for the named node. sampleN records
// the sampling regime the node runs under (<=1 = exact).
func NewDigestBuilder(node string, sampleN int) *DigestBuilder {
	return &DigestBuilder{node: node, sampleN: sampleN}
}

// Build produces the next digest in the chain from one stable merge.
// counts and sampledOut are the node's cumulative views at the merge
// point. Returns the digest and its wire encoding.
func (b *DigestBuilder) Build(rep MergeReport, counts Counts, shards []ShardStat, sampledOut uint64) (*Digest, []byte, error) {
	d := &Digest{
		Node:     b.node,
		Interval: b.interval,
		Seen:     rep.Seen,
		Counts:   counts,
		Shards:   shards,
		PrevHash: b.prevHash,
	}
	if b.sampleN > 1 {
		d.SampleN = b.sampleN
		d.SampledOut = sampledOut
	}
	for _, v := range rep.NewViolations {
		d.Violations = append(d.Violations, v.Msg)
	}
	audit := rep.Events
	if len(audit) > MaxAuditEvents {
		d.AuditDropped = uint64(len(audit) - MaxAuditEvents)
		audit = audit[:MaxAuditEvents]
	}
	d.Audit = append([]trace.Event(nil), audit...)
	h, err := digestHash(*d)
	if err != nil {
		return nil, nil, err
	}
	d.Hash = h
	raw, err := json.Marshal(d)
	if err != nil {
		return nil, nil, err
	}
	b.interval++
	b.prevHash = h
	return d, raw, nil
}

// RemoteVerifier consumes a node's digest chain on another machine:
// it checks chain integrity (hashes, links, interval continuity),
// records the node's own verdicts, and independently replays the audit
// stream through a serial engine to catch divergence. Not safe for
// concurrent use; one verifier per watched node.
type RemoteVerifier struct {
	node      string
	prevHash  string
	next      uint64
	eng       *engine
	replayed  int // engine violations already compared
	reported  map[string]int
	flags     []string
	truncated bool
	digests   uint64
}

// NewRemoteVerifier watches the named node's chain from interval 0.
func NewRemoteVerifier(node string) *RemoteVerifier {
	return &RemoteVerifier{node: node, eng: newEngine(), reported: make(map[string]int)}
}

func (v *RemoteVerifier) flag(format string, args ...any) {
	v.flags = append(v.flags, fmt.Sprintf(format, args...))
}

// Consume verifies one received digest (its wire encoding, exactly as
// the node shipped it). A returned error means the chain itself is
// unusable — undecodable, mis-hashed, or discontinuous; verdict flags
// accumulate in Flags either way.
func (v *RemoteVerifier) Consume(raw []byte) error {
	var d Digest
	if err := json.Unmarshal(raw, &d); err != nil {
		v.flag("node %s: undecodable digest: %v", v.node, err)
		return fmt.Errorf("check: undecodable digest from %s: %w", v.node, err)
	}
	h, err := digestHash(d)
	if err != nil {
		return err
	}
	if h != d.Hash {
		v.flag("node %s: digest %d hash mismatch (tampered or corrupt)", v.node, d.Interval)
		return fmt.Errorf("check: digest %d from %s fails its hash", d.Interval, v.node)
	}
	if d.Interval != v.next || d.PrevHash != v.prevHash {
		v.flag("node %s: digest chain broken at interval %d (want %d, prev %.8s vs %.8s)",
			v.node, d.Interval, v.next, d.PrevHash, v.prevHash)
		return fmt.Errorf("check: digest chain from %s broken at interval %d", v.node, d.Interval)
	}
	v.prevHash = d.Hash
	v.next++
	v.digests++
	if d.AuditDropped > 0 {
		v.truncated = true
		v.flag("node %s: digest %d truncated %d audit events (divergence replay disabled)",
			v.node, d.Interval, d.AuditDropped)
	}
	for _, msg := range d.Violations {
		v.reported[msg]++
		v.flag("node %s reported violation: %s", v.node, msg)
	}
	for _, ev := range d.Audit {
		v.eng.step(ev)
	}
	v.compare()
	return nil
}

// compare flags engine violations the node never reported — the
// divergence signal. Skipped once the audit stream is truncated.
func (v *RemoteVerifier) compare() {
	if v.truncated {
		v.replayed = len(v.eng.violations)
		return
	}
	for _, viol := range v.eng.violations[v.replayed:] {
		if v.reported[viol.Msg] > 0 {
			v.reported[viol.Msg]--
			continue
		}
		v.flag("node %s diverges: replay found unreported violation: %s", v.node, viol)
	}
	v.replayed = len(v.eng.violations)
}

// Finalize ends the replay (end-of-trace validation over the audit
// stream) and returns the accumulated flags. An empty result means the
// node's chain was continuous, every digest authentic, and the replay
// agreed with every verdict.
func (v *RemoteVerifier) Finalize() []string {
	v.eng.end()
	v.compare()
	return v.Flags()
}

// Flags returns the verdicts accumulated so far.
func (v *RemoteVerifier) Flags() []string {
	return append([]string(nil), v.flags...)
}

// Digests returns how many chain-valid digests were consumed.
func (v *RemoteVerifier) Digests() uint64 { return v.digests }
