package check

import (
	"strings"
	"testing"

	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/trace"
)

// feeder builds synthetic event streams without a machine.
type feeder struct {
	seq uint64
	c   *Checker
}

func newFeeder(cores int) *feeder {
	f := &feeder{c: New()}
	f.emit(trace.KBoot, 0, 0, 0, 0, uint64(cores))
	return f
}

func (f *feeder) emit(k trace.Kind, dom, aux, node, addr, size uint64) {
	f.seq++
	f.c.Event(trace.Event{
		Seq: f.seq, Core: trace.GlobalCore, Kind: k,
		Domain: dom, Aux: aux, Node: node, Addr: addr, Size: size,
	})
}

func wantClean(t *testing.T, f *feeder) {
	t.Helper()
	if err := f.c.Err(); err != nil {
		t.Fatalf("clean stream flagged: %v", err)
	}
}

func wantViolation(t *testing.T, f *feeder, substr string) {
	t.Helper()
	err := f.c.Err()
	if err == nil {
		t.Fatalf("stream accepted; want violation containing %q", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("violation %q does not mention %q", err, substr)
	}
}

func TestCleanRevokeStream(t *testing.T) {
	f := newFeeder(2)
	f.emit(trace.KOpBegin, 1, trace.OpRevoke, 0, 0, 0)
	f.emit(trace.KRevoke, 1, 0, 7, 0, 0)
	f.emit(trace.KShootdown, 0, 0, 0, 0x1000, 4096)
	f.emit(trace.KShootdownAck, 0, 0, 0, 0x1000, 4096)
	f.emit(trace.KShootdownAck, 0, 1, 0, 0x1000, 4096)
	f.emit(trace.KOpEnd, 1, trace.OpRevoke, 0, 0, 0)
	wantClean(t, f)
	if c := f.c.Counts(); c.Revocations != 1 || c.CapOps != 1 || c.Shootdowns != 1 {
		t.Fatalf("counts: %+v", c)
	}
}

func TestMissingShootdownAckFlagged(t *testing.T) {
	f := newFeeder(2)
	f.emit(trace.KOpBegin, 1, trace.OpRevoke, 0, 0, 0)
	f.emit(trace.KShootdown, 0, 0, 0, 0x1000, 4096)
	f.emit(trace.KShootdownAck, 0, 0, 0, 0x1000, 4096)
	// Core 1 never acks.
	f.emit(trace.KOpEnd, 1, trace.OpRevoke, 0, 0, 0)
	wantViolation(t, f, "acked by 1/2 cores")
}

func TestAckWithoutShootdownFlagged(t *testing.T) {
	f := newFeeder(2)
	f.emit(trace.KShootdownAck, 0, 0, 0, 0, 0)
	wantViolation(t, f, "no shootdown in flight")
}

func TestUnscrubbedKillFlagged(t *testing.T) {
	f := newFeeder(2)
	f.emit(trace.KForceKill, 5, 0, 0, 0, 0)
	f.emit(trace.KOpBegin, 5, trace.OpKill, 0, 0, 0)
	f.emit(trace.KScrubPlan, 5, 0, 0, 0x4000, 2*phys.PageSize)
	f.emit(trace.KRevoke, 5, 1, 0, 0, 0)
	// The planned region is never scrubbed.
	f.emit(trace.KKill, 5, 0, 0, 0, 0)
	f.emit(trace.KOpEnd, 5, trace.OpKill, 0, 0, 0)
	wantViolation(t, f, "unscrubbed exclusive region")
}

func TestScrubbedKillClean(t *testing.T) {
	f := newFeeder(1)
	f.emit(trace.KForceKill, 5, 0, 0, 0, 0)
	f.emit(trace.KOpBegin, 5, trace.OpKill, 0, 0, 0)
	f.emit(trace.KScrubPlan, 5, 0, 0, 0x4000, 2*phys.PageSize)
	f.emit(trace.KRevoke, 5, 1, 0, 0, 0)
	f.emit(trace.KShootdown, 0, 0, 0, 0x4000, 2*phys.PageSize)
	f.emit(trace.KShootdownAck, 0, 0, 0, 0x4000, 2*phys.PageSize)
	f.emit(trace.KScrub, 5, 0, 0, 0x4000, 2*phys.PageSize)
	f.emit(trace.KKill, 5, 0, 0, 0, 0)
	f.emit(trace.KOpEnd, 5, trace.OpKill, 0, 0, 0)
	wantClean(t, f)
	if c := f.c.Counts(); c.ForcedKills != 1 || c.PagesScrubbed != 2 {
		t.Fatalf("counts: %+v", c)
	}
}

func TestDeadDomainSilence(t *testing.T) {
	f := newFeeder(1)
	f.emit(trace.KKill, 5, 0, 0, 0, 0)
	f.emit(trace.KShare, 5, 1, 9, 0x1000, 4096)
	wantViolation(t, f, "dead domain 5")
}

func TestDeadDomainFilterProgramming(t *testing.T) {
	f := newFeeder(1)
	f.emit(trace.KKill, 5, 0, 0, 0, 0)
	f.emit(trace.KEPTMap, 5, 0, 7, 0x1000, 4096)
	wantViolation(t, f, "dead domain 5")
}

func TestUnbalancedOpFlagged(t *testing.T) {
	f := newFeeder(1)
	f.emit(trace.KOpBegin, 1, trace.OpShare, 0, 0, 0)
	wantViolation(t, f, "still open")
}

func TestOrphanShootdownNeedsFullAcks(t *testing.T) {
	f := newFeeder(2)
	f.emit(trace.KShootdown, 0, 0, 0, 0x1000, 4096)
	f.emit(trace.KShootdownAck, 0, 0, 0, 0x1000, 4096)
	wantViolation(t, f, "outside any operation")
}

func TestReplayMatchesOnline(t *testing.T) {
	tr := trace.New(2, 0, nil)
	online := New()
	tr.Attach(online)
	tr.Emit(trace.GlobalCore, trace.KBoot, 0, 0, 0, 0, 2)
	tr.Emit(trace.GlobalCore, trace.KOpBegin, 1, trace.OpRevoke, 0, 0, 0)
	tr.Emit(trace.GlobalCore, trace.KShootdown, 0, 0, 0, 0x1000, 4096)
	tr.Emit(trace.GlobalCore, trace.KShootdownAck, 0, 0, 0, 0x1000, 4096)
	tr.Emit(trace.GlobalCore, trace.KOpEnd, 1, trace.OpRevoke, 0, 0, 0)
	replayed := Replay(tr.Events())
	onErr, repErr := online.Err(), replayed.Err()
	if (onErr == nil) != (repErr == nil) {
		t.Fatalf("online=%v replay=%v", onErr, repErr)
	}
	if onErr == nil {
		t.Fatal("stream with a half-acked shootdown accepted")
	}
	if online.Counts() != replayed.Counts() {
		t.Fatalf("counts diverge: online %+v, replay %+v", online.Counts(), replayed.Counts())
	}
}
