package check

import (
	"sort"
	"testing"

	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/trace"
)

// sfeeder builds synthetic event streams for the sharded checker and a
// serial reference simultaneously, assigning sequence numbers the way
// the tracer would.
type sfeeder struct {
	seq    uint64
	serial *Checker
	sh     *Sharded
}

func newSFeeder(cores int) *sfeeder {
	f := &sfeeder{serial: New(), sh: NewShardedN(cores + 1)}
	f.emitOn(-1, trace.KBoot, 0, 0, 0, 0, uint64(cores))
	return f
}

// emitOn delivers one event on the given core (-1 = global) to both
// checkers. Ring index mapping matches the tracer's: global ring 0,
// core c ring c+1.
func (f *sfeeder) emitOn(core int32, k trace.Kind, dom, aux, node, addr, size uint64) {
	f.seq++
	ev := trace.Event{
		Seq: f.seq, Core: core, Kind: k,
		Domain: dom, Aux: aux, Node: node, Addr: addr, Size: size,
	}
	f.serial.Event(ev)
	f.sh.ShardEvent(int(core)+1, ev)
}

// agree asserts both checkers reach the same verdict with the same
// violation-message multiset and identical counts.
func (f *sfeeder) agree(t *testing.T) error {
	t.Helper()
	serialErr, shErr := f.serial.Err(), f.sh.Err()
	if (serialErr == nil) != (shErr == nil) {
		t.Fatalf("verdicts differ:\n  serial:  %v\n  sharded: %v", serialErr, shErr)
	}
	a := msgsOf(f.serial.Violations())
	b := msgsOf(f.sh.Violations())
	if len(a) != len(b) {
		t.Fatalf("violation counts differ: serial %q, sharded %q", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("violation %d differs:\n  serial:  %s\n  sharded: %s", i, a[i], b[i])
		}
	}
	if ca, cb := f.serial.Counts(), f.sh.Counts(); ca != cb {
		t.Fatalf("counts differ:\n  serial:  %+v\n  sharded: %+v", ca, cb)
	}
	return serialErr
}

func msgsOf(vs []Violation) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.Msg
	}
	sort.Strings(out)
	return out
}

// TestShardedCleanStreamAgrees: a clean multi-core stream mixing local
// (transitions, vmcalls, IRQs) and structural (op-bracketed revoke with
// a fully-acked shootdown) kinds is accepted by both checkers with
// identical counts.
func TestShardedCleanStreamAgrees(t *testing.T) {
	f := newSFeeder(2)
	f.emitOn(0, trace.KTransition, 1, 0, 0, 0, trace.TransFast)
	f.emitOn(1, trace.KVMCall, 1, 0, 0, 0, 0)
	f.emitOn(1, trace.KIRQRoute, 1, 3, 0, 0, 0)
	f.emitOn(-1, trace.KOpBegin, 1, trace.OpRevoke, 1, 0, 0)
	f.emitOn(-1, trace.KRevoke, 1, 0, 7, 0, 0)
	f.emitOn(-1, trace.KShootdown, 0, 0, 0, 0x1000, 4096)
	f.emitOn(-1, trace.KShootdownAck, 0, 0, 0, 0x1000, 4096)
	f.emitOn(-1, trace.KShootdownAck, 0, 1, 0, 0x1000, 4096)
	f.emitOn(-1, trace.KOpEnd, 1, trace.OpRevoke, 1, 0, 0)
	f.emitOn(0, trace.KTransition, 1, 0, 0, 0, trace.TransLaunch)
	if err := f.agree(t); err != nil {
		t.Fatalf("clean stream flagged: %v", err)
	}
	c := f.sh.Counts()
	if c.FastSwitches != 1 || c.Transitions != 1 || c.VMCalls != 1 || c.IRQsRouted != 1 || c.Revocations != 1 {
		t.Fatalf("sharded counts: %+v", c)
	}
}

// TestShardedMissingAckAgrees: the half-acked-shootdown violation is
// structural — resolved at the merge — and must match the serial
// checker's message byte for byte.
func TestShardedMissingAckAgrees(t *testing.T) {
	f := newSFeeder(2)
	f.emitOn(-1, trace.KOpBegin, 1, trace.OpRevoke, 1, 0, 0)
	f.emitOn(-1, trace.KShootdown, 0, 0, 0, 0x1000, 4096)
	f.emitOn(-1, trace.KShootdownAck, 0, 0, 0, 0x1000, 4096)
	f.emitOn(-1, trace.KOpEnd, 1, trace.OpRevoke, 1, 0, 0)
	if err := f.agree(t); err == nil {
		t.Fatal("half-acked shootdown accepted by both checkers")
	}
}

// TestShardedUnscrubbedKillAgrees: scrub-before-kill is a structural
// property; both checkers must reject the same way.
func TestShardedUnscrubbedKillAgrees(t *testing.T) {
	f := newSFeeder(1)
	f.emitOn(-1, trace.KForceKill, 5, 0, 0, 0, 0)
	f.emitOn(-1, trace.KOpBegin, 5, trace.OpKill, 1, 0, 0)
	f.emitOn(-1, trace.KScrubPlan, 5, 0, 0, 0x4000, 2*phys.PageSize)
	f.emitOn(-1, trace.KRevoke, 5, 1, 0, 0, 0)
	f.emitOn(-1, trace.KKill, 5, 0, 0, 0, 0)
	f.emitOn(-1, trace.KOpEnd, 5, trace.OpKill, 1, 0, 0)
	if err := f.agree(t); err == nil {
		t.Fatal("unscrubbed kill accepted by both checkers")
	}
}

// TestShardedEagerDeadTransition: a transition by a killed domain is a
// LOCAL kind — the shard must flag it eagerly, before any merge runs,
// off the published kill map; and End() must not double-report it.
func TestShardedEagerDeadTransition(t *testing.T) {
	sh := NewShardedN(3)
	sh.ShardEvent(0, trace.Event{Seq: 1, Core: -1, Kind: trace.KBoot, Size: 2})
	sh.ShardEvent(0, trace.Event{Seq: 2, Core: -1, Kind: trace.KKill, Domain: 7})
	// The dead domain "runs" on core 1 after its kill — no merge yet.
	sh.ShardEvent(2, trace.Event{Seq: 3, Core: 1, Kind: trace.KTransition, Domain: 7})
	if got := len(sh.Violations()); got != 1 {
		t.Fatalf("eager dead-transition check found %d violations before merge, want 1", got)
	}
	if err := sh.Err(); err == nil {
		t.Fatal("dead transition accepted")
	}
	if got := len(sh.Violations()); got != 1 {
		t.Fatalf("End() double-reported: %d violations, want 1", got)
	}
	serial := Replay([]trace.Event{
		{Seq: 1, Core: -1, Kind: trace.KBoot, Size: 2},
		{Seq: 2, Core: -1, Kind: trace.KKill, Domain: 7},
		{Seq: 3, Core: 1, Kind: trace.KTransition, Domain: 7},
	})
	if serial.Err() == nil {
		t.Fatal("serial reference accepted the dead transition")
	}
	if a, b := msgsOf(serial.Violations()), msgsOf(sh.Violations()); a[0] != b[0] {
		t.Fatalf("messages differ: serial %q, sharded %q", a[0], b[0])
	}
}

// TestShardedStabilityGateDefers: a merge attempted while assigned
// events have not all been delivered must defer (carry its buffers),
// and resolve once delivery catches up. Simulated by emitting into a
// tracer before the sharded sink is attached: Len() counts the events,
// the shards never saw them.
func TestShardedStabilityGateDefers(t *testing.T) {
	tr := trace.New(2, 0, nil)
	tr.Emit(trace.GlobalCore, trace.KBoot, 0, 0, 0, 0, 2)
	tr.Emit(trace.GlobalCore, trace.KOpBegin, 1, trace.OpShare, 1, 0, 0)
	tr.Emit(trace.GlobalCore, trace.KShare, 1, 0, 7, 0x1000, 4096)
	tr.Emit(trace.GlobalCore, trace.KOpEnd, 1, trace.OpShare, 1, 0, 0)

	sh := NewSharded(tr)
	rep := sh.Merge()
	if rep.Merged {
		t.Fatal("merge resolved with undelivered events outstanding")
	}
	if sh.Deferred() != 1 || sh.Merges() != 0 {
		t.Fatalf("deferred=%d merges=%d after gated merge", sh.Deferred(), sh.Merges())
	}
	// Deliver what the tracer assigned; the gate now passes.
	for _, ev := range tr.Events() {
		sh.ShardEvent(0, ev)
	}
	rep = sh.Merge()
	if !rep.Merged || len(rep.Events) != 4 {
		t.Fatalf("catch-up merge = %+v, want 4 resolved events", rep)
	}
	if sh.Merges() != 1 {
		t.Fatalf("merges = %d, want 1", sh.Merges())
	}
	if err := sh.Err(); err != nil {
		t.Fatalf("clean stream flagged: %v", err)
	}
}

// TestShardedViaTracerSinkMode: the end-to-end sink wiring — tracer
// with both a serial sink and a sharded sink attached — produces
// agreeing verdicts on a violating stream, and incremental merges
// resolve events as they go.
func TestShardedViaTracerSinkMode(t *testing.T) {
	tr := trace.New(2, 0, nil)
	serial := New()
	tr.Attach(serial)
	sh := NewSharded(tr)
	tr.AttachSharded(sh)

	tr.Emit(trace.GlobalCore, trace.KBoot, 0, 0, 0, 0, 2)
	tr.Emit(0, trace.KTransition, 1, 0, 0, 0, trace.TransLaunch)
	tr.Emit(trace.GlobalCore, trace.KOpBegin, 1, trace.OpRevoke, 1, 0, 0)
	if rep := sh.Merge(); !rep.Merged {
		t.Fatal("quiescent merge deferred with no emission in flight")
	}
	tr.Emit(trace.GlobalCore, trace.KShootdown, 0, 0, 0, 0x1000, 4096)
	tr.Emit(trace.GlobalCore, trace.KShootdownAck, 0, 0, 0, 0x1000, 4096)
	tr.Emit(trace.GlobalCore, trace.KOpEnd, 1, trace.OpRevoke, 1, 0, 0)

	serialErr, shErr := serial.Err(), sh.Err()
	if serialErr == nil || shErr == nil {
		t.Fatalf("half-acked shootdown accepted: serial=%v sharded=%v", serialErr, shErr)
	}
	if a, b := msgsOf(serial.Violations()), msgsOf(sh.Violations()); len(a) != len(b) || a[0] != b[0] {
		t.Fatalf("messages differ: serial %q, sharded %q", a, b)
	}
	if serial.Counts() != sh.Counts() {
		t.Fatalf("counts differ: serial %+v, sharded %+v", serial.Counts(), sh.Counts())
	}
}

// TestReplayShardedMatchesReplay: the replay entry points over a
// synthetic mixed stream agree on verdict, messages, and counts.
func TestReplayShardedMatchesReplay(t *testing.T) {
	var evs []trace.Event
	seq := uint64(0)
	add := func(core int32, k trace.Kind, dom, aux, node, addr, size uint64) {
		seq++
		evs = append(evs, trace.Event{Seq: seq, Core: core, Kind: k,
			Domain: dom, Aux: aux, Node: node, Addr: addr, Size: size})
	}
	add(-1, trace.KBoot, 0, 0, 0, 0, 2)
	for i := 0; i < 600; i++ { // cross the replayMergeEvery boundary
		add(int32(i%2), trace.KTransition, 1, 0, 0, 0, trace.TransFast)
	}
	add(-1, trace.KOpBegin, 1, trace.OpRevoke, 1, 0, 0)
	add(-1, trace.KShootdown, 0, 0, 0, 0x1000, 4096)
	add(-1, trace.KShootdownAck, 0, 0, 0, 0x1000, 4096)
	add(-1, trace.KOpEnd, 1, trace.OpRevoke, 1, 0, 0) // missing one ack
	add(-1, trace.KKill, 1, 0, 0, 0, 0)
	add(0, trace.KTransition, 1, 0, 0, 0, trace.TransFast) // dead transition

	serial := Replay(evs)
	sh := ReplaySharded(evs)
	serialErr, shErr := serial.Err(), sh.Err()
	if serialErr == nil || shErr == nil {
		t.Fatalf("violating stream accepted: serial=%v sharded=%v", serialErr, shErr)
	}
	a, b := msgsOf(serial.Violations()), msgsOf(sh.Violations())
	if len(a) != len(b) {
		t.Fatalf("violation multisets differ:\n  serial:  %q\n  sharded: %q", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("violation %d differs: serial %q, sharded %q", i, a[i], b[i])
		}
	}
	if serial.Counts() != sh.Counts() {
		t.Fatalf("counts differ: serial %+v, sharded %+v", serial.Counts(), sh.Counts())
	}
	if sh.Merges() < 2 {
		t.Fatalf("replay ran %d merges; want incremental merging", sh.Merges())
	}
}

// TestShardEventLocalPathAllocFree pins the hot shard-local path at
// zero allocations — the property the BenchmarkShardedEvent CI gate
// enforces at scale.
func TestShardEventLocalPathAllocFree(t *testing.T) {
	sh := NewShardedN(3)
	sh.ShardEvent(0, trace.Event{Seq: 1, Core: -1, Kind: trace.KBoot, Size: 2})
	seq := uint64(1)
	ev := trace.Event{Core: 0, Kind: trace.KTransition, Domain: 1, Size: trace.TransFast}
	// Warm the lastUse map so steady state is key overwrite, not growth.
	seq++
	ev.Seq = seq
	sh.ShardEvent(1, ev)
	allocs := testing.AllocsPerRun(1000, func() {
		seq++
		ev.Seq = seq
		sh.ShardEvent(1, ev)
	})
	if allocs != 0 {
		t.Fatalf("shard-local KTransition path allocates %.1f/op, want 0", allocs)
	}
	vm := trace.Event{Core: 1, Kind: trace.KVMCall, Domain: 1}
	allocs = testing.AllocsPerRun(1000, func() {
		seq++
		vm.Seq = seq
		sh.ShardEvent(2, vm)
	})
	if allocs != 0 {
		t.Fatalf("shard-local KVMCall path allocates %.1f/op, want 0", allocs)
	}
}

// BenchmarkShardedEvent measures the sharded checker's hot delivery
// path for the sample-eligible kinds. CI parses the report and fails
// if allocs/op is nonzero.
func BenchmarkShardedEvent(b *testing.B) {
	sh := NewShardedN(3)
	sh.ShardEvent(0, trace.Event{Seq: 1, Core: -1, Kind: trace.KBoot, Size: 2})
	ev := trace.Event{Core: 0, Kind: trace.KTransition, Domain: 1, Size: trace.TransFast}
	seq := uint64(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq++
		ev.Seq = seq
		sh.ShardEvent(1, ev)
	}
}

// BenchmarkSerialCheckerEvent is the reference point: the serial
// checker's mutex-serialised Event on the same kind.
func BenchmarkSerialCheckerEvent(b *testing.B) {
	c := New()
	c.Event(trace.Event{Seq: 1, Core: -1, Kind: trace.KBoot, Size: 2})
	ev := trace.Event{Core: 0, Kind: trace.KTransition, Domain: 1, Size: trace.TransFast}
	seq := uint64(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq++
		ev.Seq = seq
		c.Event(ev)
	}
}
