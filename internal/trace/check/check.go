// Package check is an online invariant checker over the monitor's
// event trace. It attaches to a trace.Tracer as a Sink — validating
// the stream as it is produced, inline in any test or benchmark — or
// replays a previously captured trace. The serial Checker in this file
// is the reference implementation; Sharded (sharded.go) is the
// production-rate online form, which evaluates the same properties via
// per-ring shard checkers merged at quiescent points and is
// differentially tested against Replay.
//
// The temporal safety properties it enforces:
//
//  1. Dead-domain silence: once a domain's destruction completes
//     (KKill), the monitor never again performs a successful mediated
//     operation by or for that domain — no transitions into it, no
//     delegations from it, no capability mutations, and no enforcement
//     filter (EPT/PMP) programmed for it.
//  2. Shootdown acknowledgement: every TLB shootdown started inside a
//     monitor operation is acknowledged by all cores before the
//     operation completes (KOpEnd) — a revocation or kill must not
//     return while any core can still hit stale translations.
//  3. Scrub before kill completes: every exclusively-held region a
//     kill plans to reclaim (KScrubPlan) is zeroed and shot down
//     (KScrub) before the destruction closes (KKill) — memory is never
//     reusable before it is scrubbed.
//  4. Structural sanity: operations balance (KOpEnd matches KOpBegin),
//     and acknowledgements only occur for an open shootdown.
//  5. Batch coalescing: a ring drain (KBatchBegin..KBatchEnd) performs
//     at most one cross-core shootdown round of its own, no matter how
//     many revocations the batch executed, and that round — like any
//     op's — is fully acknowledged before the batch closes. Batches
//     are also subject to dead-domain silence: a drain never runs for
//     a killed ring owner.
//  6. Cross-ring coalescing: a parallel drain round
//     (KDrainBegin..KDrainEnd) performs at most one cross-ring
//     shootdown round for all the revocations its partitioned ring
//     drains deferred, fully acknowledged before the round closes.
//
// Shootdown rounds are attributed to the innermost open frame that can
// legitimately own one — a revoke/kill operation, a ring-drain batch,
// or a parallel drain round. Delegation frames never start rounds, so
// a share/grant frame concurrently open on another core must not adopt
// (and then fail) a round a destructive operation started.
//
// Alongside the properties the checker tallies event-derived counters
// (Counts) that tests compare against Monitor.Stats(): the two are
// produced by independent code paths at the same commit points, so a
// mismatch means an emit point or a stats update drifted.
package check

import (
	"fmt"
	"sort"
	"sync"

	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/trace"
)

// Violation is one invariant failure, anchored to the offending event.
type Violation struct {
	Event trace.Event
	Msg   string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s (at %s)", v.Msg, v.Event)
}

// Counts are monitor statistics derived purely from the event stream.
// With a tracer installed at boot they must equal the corresponding
// Monitor.Stats() fields (unless sampling is on, in which case the
// sample-eligible tallies are lower bounds).
type Counts struct {
	VMCalls       uint64
	Transitions   uint64 // launch/call/return (not fast switches)
	FastSwitches  uint64
	CapOps        uint64 // share + grant + revoke + seal
	Revocations   uint64
	ForcedKills   uint64
	MachineChecks uint64
	CoresParked   uint64
	PagesScrubbed uint64
	Shootdowns    uint64
	IRQsRouted    uint64
	IRQsDropped   uint64
	Attests       uint64
	Batches       uint64 // ring drains (KBatchBegin)
	BatchedOps    uint64 // descriptors executed inside drains (KBatchEnd.Aux)
	Drains        uint64 // parallel drain rounds (KDrainBegin)
}

// add accumulates o into c (used when merging shard-local tallies).
func (c *Counts) add(o Counts) {
	c.VMCalls += o.VMCalls
	c.Transitions += o.Transitions
	c.FastSwitches += o.FastSwitches
	c.CapOps += o.CapOps
	c.Revocations += o.Revocations
	c.ForcedKills += o.ForcedKills
	c.MachineChecks += o.MachineChecks
	c.CoresParked += o.CoresParked
	c.PagesScrubbed += o.PagesScrubbed
	c.Shootdowns += o.Shootdowns
	c.IRQsRouted += o.IRQsRouted
	c.IRQsDropped += o.IRQsDropped
	c.Attests += o.Attests
	c.Batches += o.Batches
	c.BatchedOps += o.BatchedOps
	c.Drains += o.Drains
}

// shootdown is one in-flight cross-core TLB shootdown.
type shootdown struct {
	ev   trace.Event
	acks map[uint64]bool
}

// frame is one open monitor operation (KOpBegin..KOpEnd), ring drain
// (KBatchBegin..KBatchEnd), or parallel drain round
// (KDrainBegin..KDrainEnd).
type frame struct {
	ev        trace.Event
	batch     bool
	drain     bool
	shootdown []*shootdown
}

// region is a planned scrub target.
type region struct{ addr, size uint64 }

// engine is the property state machine itself, with no locking: one
// instance per linearised event stream. The serial Checker wraps it in
// a mutex; the Sharded checker feeds it the seq-ordered merge stream.
// Keeping a single engine is what makes the two checkers agree on
// violation messages byte for byte.
type engine struct {
	cores      int
	dead       map[uint64]bool
	frames     []*frame
	last       *shootdown // most recent shootdown awaiting acks
	orphans    []*shootdown
	scrubPlans map[uint64][]region
	counts     Counts
	violations []Violation
	seen       uint64
}

func newEngine() *engine {
	return &engine{
		dead:       make(map[uint64]bool),
		scrubPlans: make(map[uint64][]region),
	}
}

// deadUseMsg formats the dead-domain-silence violation. Both the
// serial engine and the sharded checker's eager shard-local path go
// through this one formatter, so their messages agree byte for byte.
func deadUseMsg(ev trace.Event) string {
	return fmt.Sprintf("dead domain %d used in successful %s", ev.Domain, ev.Kind)
}

func (c *engine) violate(ev trace.Event, format string, args ...any) {
	c.violations = append(c.violations, Violation{
		Event: ev,
		Msg:   fmt.Sprintf(format, args...),
	})
}

// step consumes one event of the linearised stream.
func (c *engine) step(ev trace.Event) {
	c.seen++

	// Property 1: dead-domain silence. Only kinds emitted on a
	// *successful* monitor-mediated operation participate — raw
	// hardware events (traps, IRQ raises) and VMCall entries can race
	// with a kill on another core and prove nothing by themselves.
	switch ev.Kind {
	case trace.KTransition, trace.KShare, trace.KGrant, trace.KRevoke,
		trace.KSeal, trace.KEPTMap, trace.KPMPWrite, trace.KAttest,
		trace.KBatchBegin, trace.KBatchEnd:
		if c.dead[ev.Domain] {
			c.violate(ev, "%s", deadUseMsg(ev))
		}
	case trace.KCreate:
		if c.dead[ev.Aux] {
			c.violate(ev, "dead domain %d created domain %d", ev.Aux, ev.Domain)
		}
	}

	switch ev.Kind {
	case trace.KBoot:
		c.cores = int(ev.Size)

	case trace.KOpBegin:
		c.frames = append(c.frames, &frame{ev: ev})

	case trace.KBatchBegin:
		c.counts.Batches++
		c.frames = append(c.frames, &frame{ev: ev, batch: true})

	case trace.KDrainBegin:
		c.counts.Drains++
		c.frames = append(c.frames, &frame{ev: ev, drain: true})

	case trace.KDrainEnd:
		idx := -1
		for i := len(c.frames) - 1; i >= 0; i-- {
			if c.frames[i].drain && c.frames[i].ev.Node == ev.Node {
				idx = i
				break
			}
		}
		if idx < 0 {
			c.violate(ev, "drain round end token %d matches no open drain round", ev.Node)
			break
		}
		f := c.frames[idx]
		c.frames = append(c.frames[:idx], c.frames[idx+1:]...)
		// Property 6: one coalesced cross-ring shootdown round per
		// parallel drain round, no matter how many rings deferred
		// revocation shootdowns into it.
		if len(f.shootdown) > 1 {
			c.violate(ev, "drain round performed %d shootdown rounds (cross-ring coalescing requires at most 1)",
				len(f.shootdown))
		}
		for _, sd := range f.shootdown {
			if len(sd.acks) != c.cores {
				c.violate(ev, "drain shootdown [%#x,+%d) acked by %d/%d cores when round completed",
					sd.ev.Addr, sd.ev.Size, len(sd.acks), c.cores)
			}
			if c.last == sd {
				c.last = nil
			}
		}

	case trace.KBatchEnd:
		c.counts.BatchedOps += ev.Aux
		idx := -1
		for i := len(c.frames) - 1; i >= 0; i-- {
			if c.frames[i].batch && c.frames[i].ev.Node == ev.Node {
				idx = i
				break
			}
		}
		if idx < 0 {
			c.violate(ev, "batch end token %d matches no open batch", ev.Node)
			break
		}
		f := c.frames[idx]
		c.frames = append(c.frames[:idx], c.frames[idx+1:]...)
		// Property 5: one coalesced shootdown round per drained batch.
		if len(f.shootdown) > 1 {
			c.violate(ev, "batch performed %d shootdown rounds (coalescing requires at most 1)",
				len(f.shootdown))
		}
		for _, sd := range f.shootdown {
			if len(sd.acks) != c.cores {
				c.violate(ev, "batch shootdown [%#x,+%d) acked by %d/%d cores when batch completed",
					sd.ev.Addr, sd.ev.Size, len(sd.acks), c.cores)
			}
			if c.last == sd {
				c.last = nil
			}
		}

	case trace.KOpEnd:
		if len(c.frames) == 0 {
			c.violate(ev, "operation end with no open operation")
			break
		}
		// Frames carry a token in Node so concurrent operations (the
		// fine-grained monitor runs delegations in parallel) match their
		// own begin exactly. Token 0 is the legacy form: strict LIFO.
		idx := len(c.frames) - 1
		if ev.Node != 0 {
			idx = -1
			for i := len(c.frames) - 1; i >= 0; i-- {
				if c.frames[i].ev.Node == ev.Node {
					idx = i
					break
				}
			}
			if idx < 0 {
				c.violate(ev, "operation end token %d matches no open operation", ev.Node)
				break
			}
		}
		f := c.frames[idx]
		c.frames = append(c.frames[:idx], c.frames[idx+1:]...)
		if f.ev.Aux != ev.Aux {
			c.violate(ev, "operation end %d does not match open operation %d", ev.Aux, f.ev.Aux)
		}
		// Property 2: every shootdown this operation started must have
		// been acknowledged by all cores before the operation returns.
		for _, sd := range f.shootdown {
			if len(sd.acks) != c.cores {
				c.violate(ev, "shootdown [%#x,+%d) acked by %d/%d cores when operation completed",
					sd.ev.Addr, sd.ev.Size, len(sd.acks), c.cores)
			}
			if c.last == sd {
				c.last = nil
			}
		}

	case trace.KShootdown:
		c.counts.Shootdowns++
		sd := &shootdown{ev: ev, acks: make(map[uint64]bool)}
		c.last = sd
		if f := c.roundOwner(); f != nil {
			f.shootdown = append(f.shootdown, sd)
		} else {
			// Shootdown outside any round-owning frame: nothing closes
			// it, so require full acknowledgement by End().
			c.violateLater(sd)
		}

	case trace.KShootdownAck:
		if c.last == nil {
			c.violate(ev, "shootdown ack from core %d with no shootdown in flight", ev.Aux)
			break
		}
		if c.last.acks[ev.Aux] {
			c.violate(ev, "core %d acknowledged the same shootdown twice", ev.Aux)
		}
		c.last.acks[ev.Aux] = true

	case trace.KScrubPlan:
		c.scrubPlans[ev.Domain] = append(c.scrubPlans[ev.Domain],
			region{addr: ev.Addr, size: ev.Size})

	case trace.KScrub:
		c.counts.PagesScrubbed += ev.Size / phys.PageSize
		plan := c.scrubPlans[ev.Domain]
		found := false
		for i, r := range plan {
			if r.addr == ev.Addr && r.size == ev.Size {
				c.scrubPlans[ev.Domain] = append(plan[:i], plan[i+1:]...)
				found = true
				break
			}
		}
		if !found {
			c.violate(ev, "scrub of [%#x,+%d) not in domain %d's scrub plan", ev.Addr, ev.Size, ev.Domain)
		}

	case trace.KKill:
		// Property 3: nothing the kill planned to reclaim may remain
		// unscrubbed when the destruction completes.
		for _, r := range c.scrubPlans[ev.Domain] {
			c.violate(ev, "domain %d killed with unscrubbed exclusive region [%#x,+%d)",
				ev.Domain, r.addr, r.size)
		}
		delete(c.scrubPlans, ev.Domain)
		c.dead[ev.Domain] = true

	case trace.KVMCall:
		c.counts.VMCalls++
	case trace.KTransition:
		if ev.Size == trace.TransFast {
			c.counts.FastSwitches++
		} else {
			c.counts.Transitions++
		}
	case trace.KShare, trace.KGrant, trace.KSeal:
		c.counts.CapOps++
	case trace.KRevoke:
		// Aux=1 marks the implicit owner-revoke inside domain
		// destruction: a revocation, but not an API capability op.
		if ev.Aux == 0 {
			c.counts.CapOps++
		}
		c.counts.Revocations++
	case trace.KForceKill:
		c.counts.ForcedKills++
	case trace.KContain:
		c.counts.MachineChecks++
		c.counts.CoresParked++
	case trace.KIRQRoute:
		c.counts.IRQsRouted++
	case trace.KIRQDrop:
		c.counts.IRQsDropped++
	case trace.KAttest:
		c.counts.Attests++
	}
}

// roundOwner returns the innermost open frame that can own a shootdown
// round: a ring-drain batch, a parallel drain round, or a destructive
// (revoke/kill) operation. Delegation frames never start rounds —
// under the fine-grained monitor they run concurrently with the
// destructive family, so attributing a round to whichever frame opened
// last would blame an innocent share/grant for an ack protocol it does
// not take part in.
func (c *engine) roundOwner() *frame {
	for i := len(c.frames) - 1; i >= 0; i-- {
		f := c.frames[i]
		if f.batch || f.drain {
			return f
		}
		if f.ev.Kind == trace.KOpBegin &&
			(f.ev.Aux == trace.OpRevoke || f.ev.Aux == trace.OpKill) {
			return f
		}
	}
	return nil
}

// orphan shootdowns (started outside any operation) are validated at
// end(); violateLater records them.
func (c *engine) violateLater(sd *shootdown) {
	c.orphans = append(c.orphans, sd)
}

// end closes the check: open operations and unacknowledged orphan
// shootdowns become violations.
func (c *engine) end() {
	for _, f := range c.frames {
		c.violate(f.ev, "operation %d still open at end of trace", f.ev.Aux)
	}
	c.frames = nil
	for _, sd := range c.orphans {
		if len(sd.acks) != c.cores {
			c.violate(sd.ev, "shootdown outside any operation acked by %d/%d cores",
				len(sd.acks), c.cores)
		}
	}
	c.orphans = nil
}

// violationsErr formats a violation list the way Err reports it.
func violationsErr(vs []Violation) error {
	if len(vs) == 0 {
		return nil
	}
	msg := fmt.Sprintf("%d trace invariant violation(s):", len(vs))
	for i, v := range vs {
		if i == 8 {
			msg += fmt.Sprintf("\n  ... and %d more", len(vs)-i)
			break
		}
		msg += "\n  " + v.String()
	}
	return fmt.Errorf("%s", msg)
}

// Checker validates the event stream online. It implements trace.Sink;
// all methods are safe for concurrent use. This is the serial
// reference checker: one mutex, one linearised stream.
type Checker struct {
	mu sync.Mutex
	e  *engine
}

// New returns an empty checker. The machine core count is learned from
// the KBoot event the machine emits when a tracer is installed.
func New() *Checker {
	return &Checker{e: newEngine()}
}

// Replay runs a captured trace (any order; sorted by Seq first) through
// a fresh checker and returns it. The sort is stable so synthetic
// traces with duplicate sequence numbers replay deterministically.
func Replay(events []trace.Event) *Checker {
	evs := append([]trace.Event(nil), events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Seq < evs[j].Seq })
	c := New()
	for _, ev := range evs {
		c.Event(ev)
	}
	return c
}

// Event consumes one trace event (trace.Sink).
func (c *Checker) Event(ev trace.Event) {
	c.mu.Lock()
	c.e.step(ev)
	c.mu.Unlock()
}

// End closes the check: open operations and unacknowledged orphan
// shootdowns become violations. Call once the run is quiescent (tests
// call it via Err).
func (c *Checker) End() {
	c.mu.Lock()
	c.e.end()
	c.mu.Unlock()
}

// Violations returns every failure recorded so far.
func (c *Checker) Violations() []Violation {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Violation(nil), c.e.violations...)
}

// Err finalises the check (End) and returns an error describing the
// violations, or nil if the trace is clean.
func (c *Checker) Err() error {
	c.End()
	return violationsErr(c.Violations())
}

// Counts returns the event-derived statistics tally.
func (c *Checker) Counts() Counts {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.e.counts
}

// Seen returns how many events the checker has consumed.
func (c *Checker) Seen() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.e.seen
}
