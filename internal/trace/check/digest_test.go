package check

import (
	"strings"
	"testing"

	"github.com/tyche-sim/tyche/internal/trace"
)

// buildCleanIntervals produces a two-interval clean digest chain the
// way a node would: a sharded checker consumes events, each stable
// merge becomes one digest.
func buildCleanIntervals(t *testing.T) [][]byte {
	t.Helper()
	sh := NewShardedN(2)
	db := NewDigestBuilder("node-a", 0)
	var wires [][]byte
	seq := uint64(0)
	emit := func(k trace.Kind, dom, aux, node, addr, size uint64) {
		seq++
		sh.ShardEvent(0, trace.Event{Seq: seq, Core: -1, Kind: k,
			Domain: dom, Aux: aux, Node: node, Addr: addr, Size: size})
	}
	ship := func() {
		rep := sh.Merge()
		if !rep.Merged {
			t.Fatal("merge deferred in synchronous test")
		}
		_, raw, err := db.Build(rep, sh.Counts(), sh.ShardStats(), 0)
		if err != nil {
			t.Fatal(err)
		}
		wires = append(wires, raw)
	}
	emit(trace.KBoot, 0, 0, 0, 0, 2)
	emit(trace.KOpBegin, 1, trace.OpShare, 1, 0, 0)
	emit(trace.KShare, 1, 0, 7, 0x1000, 4096)
	emit(trace.KOpEnd, 1, trace.OpShare, 1, 0, 0)
	ship()
	emit(trace.KOpBegin, 1, trace.OpRevoke, 2, 0, 0)
	emit(trace.KRevoke, 1, 0, 7, 0, 0)
	emit(trace.KShootdown, 0, 0, 0, 0x1000, 4096)
	emit(trace.KShootdownAck, 0, 0, 0, 0x1000, 4096)
	emit(trace.KShootdownAck, 0, 1, 0, 0x1000, 4096)
	emit(trace.KOpEnd, 1, trace.OpRevoke, 2, 0, 0)
	ship()
	return wires
}

// TestDigestChainCleanVerifies: an authentic, continuous chain from a
// clean run raises no flags.
func TestDigestChainCleanVerifies(t *testing.T) {
	wires := buildCleanIntervals(t)
	rv := NewRemoteVerifier("node-a")
	for _, raw := range wires {
		if err := rv.Consume(raw); err != nil {
			t.Fatalf("clean digest rejected: %v", err)
		}
	}
	if flags := rv.Finalize(); len(flags) != 0 {
		t.Fatalf("clean chain flagged: %q", flags)
	}
	if rv.Digests() != 2 {
		t.Fatalf("digests = %d, want 2", rv.Digests())
	}
}

// TestDigestTamperDetected: any byte flip in the wire encoding fails
// the digest's own hash.
func TestDigestTamperDetected(t *testing.T) {
	wires := buildCleanIntervals(t)
	tampered := append([]byte(nil), wires[0]...)
	// Flip a byte inside the JSON payload (past the opening brace).
	i := strings.Index(string(tampered), `"seen"`)
	if i < 0 {
		t.Fatal("no seen field in wire encoding")
	}
	tampered[i+1] ^= 0x01
	rv := NewRemoteVerifier("node-a")
	if err := rv.Consume(tampered); err == nil {
		t.Fatal("tampered digest accepted")
	}
	if flags := rv.Flags(); len(flags) == 0 {
		t.Fatal("tampering raised no flag")
	}
}

// TestDigestChainGapDetected: dropping an interval breaks the chain
// even though the later digest is authentic in isolation.
func TestDigestChainGapDetected(t *testing.T) {
	wires := buildCleanIntervals(t)
	rv := NewRemoteVerifier("node-a")
	if err := rv.Consume(wires[1]); err == nil {
		t.Fatal("chain gap accepted")
	}
	if flags := rv.Flags(); len(flags) == 0 || !strings.Contains(flags[0], "chain broken") {
		t.Fatalf("gap flags = %q", flags)
	}
}

// TestRemoteVerifierFlagsReportedViolation: a node that honestly
// reports a violation gets it surfaced as a flag, with no divergence
// flag (replay agrees).
func TestRemoteVerifierFlagsReportedViolation(t *testing.T) {
	sh := NewShardedN(2)
	db := NewDigestBuilder("node-b", 0)
	seq := uint64(0)
	emit := func(k trace.Kind, dom, aux, node, addr, size uint64) {
		seq++
		sh.ShardEvent(0, trace.Event{Seq: seq, Core: -1, Kind: k,
			Domain: dom, Aux: aux, Node: node, Addr: addr, Size: size})
	}
	emit(trace.KBoot, 0, 0, 0, 0, 2)
	emit(trace.KKill, 5, 0, 0, 0, 0)
	emit(trace.KShare, 5, 0, 7, 0x1000, 4096) // dead-domain use
	rep := sh.Merge()
	if len(rep.NewViolations) == 0 {
		t.Fatal("merge missed the dead-domain share")
	}
	_, raw, err := db.Build(rep, sh.Counts(), sh.ShardStats(), 0)
	if err != nil {
		t.Fatal(err)
	}
	rv := NewRemoteVerifier("node-b")
	if err := rv.Consume(raw); err != nil {
		t.Fatal(err)
	}
	flags := rv.Finalize()
	if len(flags) != 1 || !strings.Contains(flags[0], "reported violation") {
		t.Fatalf("flags = %q, want exactly the reported violation", flags)
	}
}

// TestRemoteVerifierFlagsDivergence: a digest whose audit stream
// contains a violation the node did NOT report (a lying or broken
// checker) must be flagged as divergence by the verifier's replay.
func TestRemoteVerifierFlagsDivergence(t *testing.T) {
	db := NewDigestBuilder("node-c", 0)
	// Hand-craft the lying merge report: the audit stream shows a share
	// by a killed domain, but NewViolations claims the interval was
	// clean.
	rep := MergeReport{
		Merged: true,
		Seen:   3,
		Events: []trace.Event{
			{Seq: 1, Core: -1, Kind: trace.KBoot, Size: 2},
			{Seq: 2, Core: -1, Kind: trace.KKill, Domain: 5},
			{Seq: 3, Core: -1, Kind: trace.KShare, Domain: 5, Node: 7, Addr: 0x1000, Size: 4096},
		},
	}
	_, raw, err := db.Build(rep, Counts{}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	rv := NewRemoteVerifier("node-c")
	if err := rv.Consume(raw); err != nil {
		t.Fatal(err)
	}
	flags := rv.Finalize()
	if len(flags) == 0 {
		t.Fatal("divergence not flagged")
	}
	found := false
	for _, f := range flags {
		if strings.Contains(f, "diverges") && strings.Contains(f, "dead domain 5") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no divergence flag naming the violation: %q", flags)
	}
}

// TestDigestAuditTruncationDisablesReplay: past MaxAuditEvents the
// digest reports the overflow and the verifier stops judging
// divergence (but keeps chain and verdict checking).
func TestDigestAuditTruncationDisablesReplay(t *testing.T) {
	db := NewDigestBuilder("node-d", 0)
	evs := make([]trace.Event, MaxAuditEvents+10)
	for i := range evs {
		evs[i] = trace.Event{Seq: uint64(i + 1), Core: -1, Kind: trace.KShare, Domain: 1, Node: 7}
	}
	d, raw, err := db.Build(MergeReport{Merged: true, Seen: uint64(len(evs)), Events: evs}, Counts{}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.AuditDropped != 10 || len(d.Audit) != MaxAuditEvents {
		t.Fatalf("audit cap: dropped=%d len=%d", d.AuditDropped, len(d.Audit))
	}
	rv := NewRemoteVerifier("node-d")
	if err := rv.Consume(raw); err != nil {
		t.Fatal(err)
	}
	flags := rv.Finalize()
	foundTrunc := false
	for _, f := range flags {
		if strings.Contains(f, "truncated") {
			foundTrunc = true
		}
		if strings.Contains(f, "diverges") {
			t.Fatalf("divergence judged on a truncated stream: %q", f)
		}
	}
	if !foundTrunc {
		t.Fatalf("truncation not flagged: %q", flags)
	}
}
