package check

import (
	"sort"
	"sync"
	"sync/atomic"

	"github.com/tyche-sim/tyche/internal/trace"
)

// Sharded is the production-rate form of the invariant checker: a
// trace.ShardSink whose per-ring shard checkers evaluate everything
// they can locally — event tallies, the high-rate dead-domain check
// over transitions, op-balance bookkeeping — and buffer the low-rate
// structural events (ops, capability mutations, shootdowns and their
// acks, scrubs, kills, batch brackets) for a merge step. The merge,
// run at the monitor's quiescent points (scheduler round barriers,
// ring-drain doorbells, run completion), feeds the buffered events in
// global sequence order through the same engine the serial Checker
// uses, so the two reject identical traces with identical messages —
// the differential and mutation suites pin exactly that.
//
// The hot emit path never serialises: a shard consumes its own ring's
// events under its own mutex (per-core rings have a single emitter;
// only the global ring sees concurrent delivery), and the sample-
// eligible kinds are handled entirely locally with zero allocations.
//
// Merge soundness: the merge may only resolve structural properties
// once every assigned sequence number has been delivered to a shard —
// otherwise an in-flight ack could be mistaken for a missing one. The
// gate is a counting argument: read S = Σ shard.seen (under the shard
// locks), then L = Tracer.Len(). Delivered events are a subset of
// assigned ones and both counters are monotone, so S == L proves every
// assigned event is buffered; the merge then processes a seq-complete
// prefix, and later merges see strictly larger sequence numbers. When
// S != L the merge defers — buffered events simply wait for the next
// quiescent point.
type Sharded struct {
	tr *trace.Tracer // nil for replay: every merge is stable

	growMu sync.Mutex
	shards atomic.Pointer[[]*shard]

	// deadSeq maps domain -> Seq of its KKill, published copy-on-write
	// the moment the kill is *delivered* (before any merge), so shard-
	// local transition checks catch dead-domain use eagerly.
	deadMu  sync.Mutex
	deadSeq atomic.Pointer[map[uint64]uint64]

	// mergeMu serialises merges and owns everything below.
	mergeMu  sync.Mutex
	eng      *engine
	pending  []trace.Event
	ended    bool
	merges   uint64
	deferred uint64
}

// shardUse is a domain's most recent locally-evaluated successful use.
type shardUse struct {
	ev      trace.Event
	flagged bool
}

// shard is one ring's checker state. Its mutex is private to the ring:
// shards never contend with each other or with the merge outside the
// brief buffer handoff.
type shard struct {
	mu       sync.Mutex
	seen     uint64
	counts   Counts
	opBegins uint64 // local op-balance bookkeeping (digest signal)
	opEnds   uint64
	buf      []trace.Event
	lastUse  map[uint64]shardUse
	viols    []Violation
}

// NewSharded returns a sharded checker for the tracer's rings. Attach
// it with tr.AttachSharded BEFORE the tracer is installed on the
// machine so the shard space observes the trace from KBoot.
func NewSharded(tr *trace.Tracer) *Sharded {
	n := 1
	if tr != nil {
		n = tr.Rings()
	}
	s := &Sharded{tr: tr, eng: newEngine()}
	s.initShards(n)
	return s
}

// NewShardedN returns a sharded checker over a fixed shard count with
// no tracer attached (for replays and fuzzing): every merge is stable
// by construction because the caller feeds events synchronously.
func NewShardedN(rings int) *Sharded {
	if rings < 1 {
		rings = 1
	}
	s := &Sharded{eng: newEngine()}
	s.initShards(rings)
	return s
}

func (s *Sharded) initShards(n int) {
	sl := make([]*shard, n)
	for i := range sl {
		sl[i] = &shard{lastUse: make(map[uint64]shardUse)}
	}
	s.shards.Store(&sl)
}

func (s *Sharded) shard(i int) *shard {
	if i < 0 {
		i = 0
	}
	sl := *s.shards.Load()
	if i < len(sl) {
		return sl[i]
	}
	s.growMu.Lock()
	defer s.growMu.Unlock()
	sl = *s.shards.Load()
	if i < len(sl) {
		return sl[i]
	}
	grown := make([]*shard, i+1)
	copy(grown, sl)
	for j := len(sl); j <= i; j++ {
		grown[j] = &shard{lastUse: make(map[uint64]shardUse)}
	}
	s.shards.Store(&grown)
	return grown[i]
}

// publishDead records a kill's sequence number for the eager shard-
// local dead checks. Kills are rare; copy-on-write keeps the read side
// a single atomic load.
func (s *Sharded) publishDead(domain, seq uint64) {
	s.deadMu.Lock()
	defer s.deadMu.Unlock()
	old := s.deadSeq.Load()
	var m map[uint64]uint64
	if old == nil {
		m = make(map[uint64]uint64, 1)
	} else {
		m = make(map[uint64]uint64, len(*old)+1)
		for k, v := range *old {
			m[k] = v
		}
	}
	if _, ok := m[domain]; !ok {
		m[domain] = seq
	}
	s.deadSeq.Store(&m)
}

// ShardEvent consumes one event from ring `shard` (trace.ShardSink).
// The sample-eligible kinds are fully evaluated here — allocation-free
// — and never reach the merge; everything else is buffered for
// seq-ordered structural resolution.
func (s *Sharded) ShardEvent(si int, ev trace.Event) {
	sh := s.shard(si)
	sh.mu.Lock()
	sh.seen++
	switch ev.Kind {
	case trace.KVMCall:
		sh.counts.VMCalls++
	case trace.KTransition:
		if ev.Size == trace.TransFast {
			sh.counts.FastSwitches++
		} else {
			sh.counts.Transitions++
		}
		// Eager dead-domain silence over the one high-rate kind the
		// property covers. The published kill map can lag delivery by a
		// racing in-flight emission, so End() reconciles each domain's
		// last use against the kill sequence as the completeness
		// backstop; `flagged` keeps the two layers from double-reporting
		// the same event.
		use := shardUse{ev: ev}
		if dm := s.deadSeq.Load(); dm != nil {
			if ks, ok := (*dm)[ev.Domain]; ok && ks < ev.Seq {
				sh.viols = append(sh.viols, Violation{
					Event: ev,
					Msg:   deadUseMsg(ev),
				})
				use.flagged = true
			}
		}
		sh.lastUse[ev.Domain] = use
	case trace.KIRQRoute:
		sh.counts.IRQsRouted++
	case trace.KIRQDrop:
		sh.counts.IRQsDropped++
	case trace.KTrap, trace.KIRQRaise, trace.KIRQLost, trace.KIRQSpurious:
		// Local, tally-free kinds: consumed and done.
	default:
		// Structural: op frames, capability mutations, shootdown
		// rounds, scrubs, kills, batches, filter writes — buffered for
		// the seq-ordered merge.
		switch ev.Kind {
		case trace.KOpBegin, trace.KBatchBegin:
			sh.opBegins++
		case trace.KOpEnd, trace.KBatchEnd:
			sh.opEnds++
		case trace.KKill:
			s.publishDead(ev.Domain, ev.Seq)
		}
		sh.buf = append(sh.buf, ev)
	}
	sh.mu.Unlock()
}


// MergeReport describes one merge attempt.
type MergeReport struct {
	// Merged is true when the structural resolution ran (the stability
	// gate passed); false means the buffered events were carried to the
	// next quiescent point.
	Merged bool
	// Pending is how many structural events are carried when deferred.
	Pending int
	// Events are the structural events resolved by this merge, in
	// sequence order — the digest's audit stream.
	Events []trace.Event
	// NewViolations are the violations this merge's resolution added.
	NewViolations []Violation
	// Seen is the total delivered event count at the merge point.
	Seen uint64
}

// Merge drains every shard's structural buffer and, if the stability
// gate passes (see the type comment), resolves the buffered events
// through the engine in sequence order. Safe to call from any
// goroutine; the monitor calls it at quiescent points via its
// checkpoint hook.
func (s *Sharded) Merge() MergeReport {
	s.mergeMu.Lock()
	defer s.mergeMu.Unlock()
	if s.ended {
		return MergeReport{}
	}
	return s.mergeLocked(false)
}

func (s *Sharded) mergeLocked(force bool) MergeReport {
	var delivered uint64
	for _, sh := range *s.shards.Load() {
		sh.mu.Lock()
		s.pending = append(s.pending, sh.buf...)
		sh.buf = sh.buf[:0]
		delivered += sh.seen
		sh.mu.Unlock()
	}
	// Stability gate: S (read first) == L proves full delivery.
	if !force && s.tr != nil && delivered != s.tr.Len() {
		s.deferred++
		return MergeReport{Pending: len(s.pending), Seen: delivered}
	}
	sort.SliceStable(s.pending, func(i, j int) bool {
		return s.pending[i].Seq < s.pending[j].Seq
	})
	vBefore := len(s.eng.violations)
	for _, ev := range s.pending {
		s.eng.step(ev)
	}
	rep := MergeReport{
		Merged: true,
		Events: append([]trace.Event(nil), s.pending...),
		Seen:   delivered,
	}
	if n := len(s.eng.violations); n > vBefore {
		rep.NewViolations = append([]Violation(nil), s.eng.violations[vBefore:]...)
	}
	s.pending = s.pending[:0]
	s.merges++
	return rep
}

// End closes the check: a final (unconditional) merge, the lastUse-vs-
// kill reconciliation, and the engine's end-of-trace validation. The
// caller guarantees quiescence — no emissions may be in flight.
// Idempotent.
func (s *Sharded) End() {
	s.mergeMu.Lock()
	defer s.mergeMu.Unlock()
	if s.ended {
		return
	}
	s.ended = true
	s.mergeLocked(true)
	if dm := s.deadSeq.Load(); dm != nil {
		for _, sh := range *s.shards.Load() {
			sh.mu.Lock()
			doms := make([]uint64, 0, len(sh.lastUse))
			for dom := range sh.lastUse {
				doms = append(doms, dom)
			}
			sort.Slice(doms, func(i, j int) bool { return doms[i] < doms[j] })
			for _, dom := range doms {
				use := sh.lastUse[dom]
				if ks, ok := (*dm)[dom]; ok && ks < use.ev.Seq && !use.flagged {
					sh.viols = append(sh.viols, Violation{
						Event: use.ev,
						Msg:   deadUseMsg(use.ev),
					})
				}
			}
			sh.mu.Unlock()
		}
	}
	s.eng.end()
}

// Merges returns how many stable merges have resolved structural
// events; Deferred returns how many merge attempts hit the stability
// gate and carried their buffers instead.
func (s *Sharded) Merges() uint64 {
	s.mergeMu.Lock()
	defer s.mergeMu.Unlock()
	return s.merges
}

func (s *Sharded) Deferred() uint64 {
	s.mergeMu.Lock()
	defer s.mergeMu.Unlock()
	return s.deferred
}

// Violations returns every failure recorded so far: the merge engine's
// in resolution order, then the shard-local eager detections in shard
// order — deterministic for a deterministic delivery order.
func (s *Sharded) Violations() []Violation {
	s.mergeMu.Lock()
	defer s.mergeMu.Unlock()
	out := append([]Violation(nil), s.eng.violations...)
	for _, sh := range *s.shards.Load() {
		sh.mu.Lock()
		out = append(out, sh.viols...)
		sh.mu.Unlock()
	}
	return out
}

// Err finalises the check (End) and returns an error describing the
// violations, or nil if the trace is clean.
func (s *Sharded) Err() error {
	s.End()
	return violationsErr(s.Violations())
}

// Counts returns the event-derived statistics tally: the merge
// engine's structural counts plus every shard's local tallies. Counts
// from unmerged buffered events are not yet included; call after a
// merge (or End) for a complete view.
func (s *Sharded) Counts() Counts {
	s.mergeMu.Lock()
	defer s.mergeMu.Unlock()
	c := s.eng.counts
	for _, sh := range *s.shards.Load() {
		sh.mu.Lock()
		c.add(sh.counts)
		sh.mu.Unlock()
	}
	return c
}

// Seen returns how many events the shards have consumed (delivered
// events, whether or not yet merged).
func (s *Sharded) Seen() uint64 {
	var n uint64
	for _, sh := range *s.shards.Load() {
		sh.mu.Lock()
		n += sh.seen
		sh.mu.Unlock()
	}
	return n
}

// ShardStat is one shard's local bookkeeping snapshot.
type ShardStat struct {
	Seen     uint64
	OpBegins uint64
	OpEnds   uint64
}

// ShardStats snapshots per-shard local bookkeeping (digest material).
func (s *Sharded) ShardStats() []ShardStat {
	sl := *s.shards.Load()
	out := make([]ShardStat, len(sl))
	for i, sh := range sl {
		sh.mu.Lock()
		out[i] = ShardStat{Seen: sh.seen, OpBegins: sh.opBegins, OpEnds: sh.opEnds}
		sh.mu.Unlock()
	}
	return out
}

// replayMergeEvery is how often ReplaySharded interposes a merge, so
// replays exercise the incremental path rather than one giant batch.
const replayMergeEvery = 256

// ReplaySharded runs a captured trace through a fresh sharded checker:
// events are sorted by sequence number, delivered to the shard their
// ring index dictates, and merged incrementally. The differential
// suite compares its verdicts against the serial Replay's.
func ReplaySharded(events []trace.Event) *Sharded {
	evs := append([]trace.Event(nil), events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Seq < evs[j].Seq })
	rings := 1
	for _, ev := range evs {
		if n := int(ev.Core) + 2; n > rings {
			rings = n
		}
	}
	s := NewShardedN(rings)
	for i, ev := range evs {
		ri := 0
		if n := int(ev.Core) + 1; n >= 1 && n < rings {
			ri = n
		}
		s.ShardEvent(ri, ev)
		if (i+1)%replayMergeEvery == 0 {
			s.Merge()
		}
	}
	s.Merge()
	return s
}
