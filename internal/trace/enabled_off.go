//go:build notrace

package trace

// Compiled is false under the notrace build tag: emit sites guarded by
// `if trace.Compiled` are dead-code eliminated and tracing cannot be
// enabled at runtime.
const Compiled = false
