//go:build !notrace

package trace

// Compiled reports whether trace support is built into this binary.
// Every emit site is guarded by `if trace.Compiled { ... }`; building
// with `-tags notrace` turns the guard into a false constant and the
// compiler eliminates the emit code entirely.
const Compiled = true
