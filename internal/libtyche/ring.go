package libtyche

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/tyche-sim/tyche/internal/core"
	"github.com/tyche-sim/tyche/internal/phys"
)

// Guest-side half of the batched ABI (core/ring.go): a Ring wraps a
// submission/completion ring living in the domain's own memory. The
// library enqueues descriptors with capability-checked stores — the
// same plain writes interpreted guest code would issue — and rings the
// doorbell once per batch. Go-level embedders use this to drive the
// batched path without assembling guest programs; the C20 experiment's
// assembly guests write the same layout by hand.

// ErrRingFull reports a submission ring with no free slot. The caller
// falls back to the synchronous trap path (or flushes first): full is
// backpressure, not failure.
var ErrRingFull = errors.New("libtyche: submission ring full")

// Completion is one completion-queue entry: the status and r1 result
// the verb would have returned synchronously.
type Completion struct {
	Status uint64
	Result uint64
}

// Ring is a client's handle on its domain's submission ring.
type Ring struct {
	cl      *Client
	base    phys.Addr
	entries uint64
	// tail/cqHead are the library's local cursors: tail mirrors what the
	// guest last published in the sqTail word; cqHead tracks how far
	// Reap has consumed completions.
	tail   uint64
	cqHead uint64
}

// NewRing allocates ring memory from the client's heap, registers it
// with the monitor, and returns the handle. Capacity must be in
// [1, core.MaxRingEntries].
func (c *Client) NewRing(entries uint64) (*Ring, error) {
	size := core.RingBytes(entries)
	pages := (size + phys.PageSize - 1) / phys.PageSize
	region, err := c.Alloc(pages)
	if err != nil {
		return nil, err
	}
	return c.RingAt(region.Start, entries)
}

// RingAt registers a ring at a caller-chosen base address (the memory
// must already be the domain's, read+write).
func (c *Client) RingAt(base phys.Addr, entries uint64) (*Ring, error) {
	if err := c.mon.RingSetup(c.self, base, entries); err != nil {
		return nil, err
	}
	return &Ring{cl: c, base: base, entries: entries}, nil
}

// Base returns the ring's base address (guest programs need it to
// address the same ring from assembly).
func (r *Ring) Base() phys.Addr { return r.base }

// Entries returns the ring's capacity.
func (r *Ring) Entries() uint64 { return r.entries }

// Enqueue publishes one descriptor (verb + up to five args, the r1..r5
// of the synchronous ABI) without trapping. It returns ErrRingFull when
// the ring has no free slot — the monitor's consume index, mirrored in
// the sqHead word, bounds how far the tail may run ahead.
func (r *Ring) Enqueue(verb uint64, args ...uint64) error {
	if len(args) > 5 {
		return fmt.Errorf("libtyche: descriptor takes at most 5 args, got %d", len(args))
	}
	head, err := r.word(core.RingOffSQHead)
	if err != nil {
		return err
	}
	if r.tail-head >= r.entries {
		return ErrRingFull
	}
	var desc [core.RingDescBytes]byte
	binary.LittleEndian.PutUint64(desc[0:], verb)
	for i, a := range args {
		binary.LittleEndian.PutUint64(desc[8*(i+1):], a)
	}
	off := core.RingSQOff(r.entries, r.tail)
	if err := r.cl.Write(r.base+phys.Addr(off), desc[:]); err != nil {
		return err
	}
	r.tail++
	var w [8]byte
	binary.LittleEndian.PutUint64(w[:], r.tail)
	return r.cl.Write(r.base+core.RingOffSQTail, w[:])
}

// Flush rings the doorbell: the monitor drains the ring as one batch.
// It returns the number of descriptors executed.
func (r *Ring) Flush() (uint64, error) {
	return r.cl.mon.RingFlush(r.cl.self)
}

// Reap collects the completions posted since the last Reap, in
// submission order.
func (r *Ring) Reap() ([]Completion, error) {
	cqTail, err := r.word(core.RingOffCQTail)
	if err != nil {
		return nil, err
	}
	var out []Completion
	for ; r.cqHead != cqTail; r.cqHead++ {
		off := core.RingCQOff(r.entries, r.cqHead)
		b, err := r.cl.Read(r.base+phys.Addr(off), core.RingCQBytes)
		if err != nil {
			return nil, err
		}
		out = append(out, Completion{
			Status: binary.LittleEndian.Uint64(b[0:8]),
			Result: binary.LittleEndian.Uint64(b[8:16]),
		})
	}
	return out, nil
}

// word reads one 64-bit header word (capability-checked like any other
// guest access).
func (r *Ring) word(off uint64) (uint64, error) {
	b, err := r.cl.Read(r.base+phys.Addr(off), 8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}
