package libtyche

import (
	"fmt"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/core"
	"github.com/tyche-sim/tyche/internal/image"
	"github.com/tyche-sim/tyche/internal/phys"
)

// The constructors below are the paper's point: sandboxes, enclaves,
// kernel compartments, and confidential VMs are not monitor features.
// Each is a policy over the same create/share/grant/seal API (§4.2),
// which is why they compose and nest freely.

// NewSandbox loads img as a sandbox: the parent retains full visibility
// into the child (all segments shared, refcount 2) while the child is
// confined to its own segments. This is user/kernel compartmentalization
// — protection *of* the parent *from* the child, without secrecy.
func (c *Client) NewSandbox(img *image.Image, opts LoadOptions) (*Domain, error) {
	sand := *img
	sand.Segments = append([]image.Segment(nil), img.Segments...)
	for i := range sand.Segments {
		sand.Segments[i].Confidential = false
		sand.Segments[i].Measured = false
	}
	opts.Seal = false
	return c.Load(&sand, opts)
}

// NewEnclave loads img as an enclave: confidential segments are granted
// exclusively (refcount 1, obliterated on revocation), measured
// segments define its identity, and the domain is sealed immediately.
// Shared segments in the manifest remain the enclave's only explicit
// communication surface — the design §4.2 contrasts with SGX's implicit
// access to all process memory.
func (c *Client) NewEnclave(img *image.Image, opts LoadOptions) (*Domain, error) {
	if opts.Cleanup == cap.CleanNone {
		opts.Cleanup = cap.CleanObfuscate
	}
	opts.Seal = true
	return c.Load(img, opts)
}

// NewKernelCompartment loads img as a driver/service compartment: its
// memory is granted exclusively (the parent kernel cannot be corrupted
// by it, and it cannot see the kernel), and the named devices are
// granted with DMA rights, making it an I/O domain whose device cannot
// DMA outside the compartment. Unsealed: the parent kernel keeps
// managing it.
func (c *Client) NewKernelCompartment(img *image.Image, devices []phys.DeviceID, opts LoadOptions) (*Domain, error) {
	opts.Devices = append(append([]phys.DeviceID(nil), opts.Devices...), devices...)
	opts.Seal = false
	return c.Load(img, opts)
}

// NewConfidentialVM loads img as a confidential virtual machine: a
// full-stack domain with exclusively granted memory AND exclusively
// granted cores (no core-level co-residency: the cache/TLB flush
// revocation policy plus exclusive cores is the §4.1 side-channel
// stance), sealed so the platform owner can attest it.
func (c *Client) NewConfidentialVM(img *image.Image, cores []phys.CoreID, opts LoadOptions) (*Domain, error) {
	if len(cores) == 0 {
		return nil, fmt.Errorf("libtyche: a confidential VM needs at least one exclusive core")
	}
	opts.Cores = cores
	opts.ExclusiveCores = true
	if opts.Cleanup == cap.CleanNone {
		opts.Cleanup = cap.CleanObfuscate
	}
	opts.Seal = true
	return c.Load(img, opts)
}

// Channel is an attested shared-memory communication region between the
// owning client's domain and a peer (Figure 2's "attestable shared
// memory"): the peer sees it at refcount 2, and both sides can confirm
// via attestation that *only* the two of them map it.
type Channel struct {
	c        *Client
	peer     core.DomainID
	region   phys.Region
	peerNode cap.NodeID
}

// OpenChannel allocates pages from the client's heap and shares them
// read-write with peer.
func (c *Client) OpenChannel(peer core.DomainID, pages uint64, cleanup cap.Cleanup) (*Channel, error) {
	if c.heap == nil {
		return nil, ErrNoHeap
	}
	r, err := c.heap.Alloc(pages)
	if err != nil {
		return nil, err
	}
	node, err := c.mon.Share(c.self, c.heapNode, peer, cap.MemResource(r), cap.MemRW, cleanup)
	if err != nil {
		c.heap.Free(r)
		return nil, err
	}
	return &Channel{c: c, peer: peer, region: r, peerNode: node}, nil
}

// Region returns the channel's physical region.
func (ch *Channel) Region() phys.Region { return ch.region }

// Peer returns the domain on the other end.
func (ch *Channel) Peer() core.DomainID { return ch.peer }

// RefCount returns the channel region's live reference count; 2 means
// "exactly us and the peer".
func (ch *Channel) RefCount() int {
	max := 0
	for _, rc := range ch.c.mon.RefCounts() {
		if rc.Region.Overlaps(ch.region) && rc.Count > max {
			max = rc.Count
		}
	}
	return max
}

// Write stores into the channel as the owning domain.
func (ch *Channel) Write(off uint64, data []byte) error {
	return ch.c.mon.CopyInto(ch.c.self, ch.region.Start+phys.Addr(off), data)
}

// Read loads from the channel as the owning domain.
func (ch *Channel) Read(off, n uint64) ([]byte, error) {
	return ch.c.mon.CopyFrom(ch.c.self, ch.region.Start+phys.Addr(off), n)
}

// WriteAs stores into the channel as dom; the capability system decides
// whether dom may (only the two endpoints can).
func (ch *Channel) WriteAs(dom core.DomainID, off uint64, data []byte) error {
	return ch.c.mon.CopyInto(dom, ch.region.Start+phys.Addr(off), data)
}

// ReadAs loads from the channel as dom.
func (ch *Channel) ReadAs(dom core.DomainID, off, n uint64) ([]byte, error) {
	return ch.c.mon.CopyFrom(dom, ch.region.Start+phys.Addr(off), n)
}

// Close revokes the peer's mapping (running its cleanup policy) and
// returns the region to the owner's heap.
func (ch *Channel) Close() error {
	if err := ch.c.mon.Revoke(ch.c.self, ch.peerNode); err != nil {
		return err
	}
	return ch.c.heap.Free(ch.region)
}
