package libtyche

import (
	"errors"
	"fmt"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/core"
	"github.com/tyche-sim/tyche/internal/phys"
)

// Client is a domain's handle on libtyche: it issues monitor API calls
// as that domain and allocates from a memory pool the domain owns. Any
// domain can hold a Client — including one created by another Client's
// Load — which is what makes nesting work: an enclave maps libtyche and
// spawns nested enclaves from its own memory (§4.2).
type Client struct {
	mon  *core.Monitor
	self core.DomainID

	heapNode cap.NodeID
	heap     *Allocator
}

// ErrNoHeap reports an operation needing allocation before SetHeap.
var ErrNoHeap = errors.New("libtyche: client has no heap configured")

// New returns a Client acting as domain self.
func New(mon *core.Monitor, self core.DomainID) *Client {
	return &Client{mon: mon, self: self}
}

// Monitor returns the underlying monitor.
func (c *Client) Monitor() *core.Monitor { return c.mon }

// Self returns the domain this client acts as.
func (c *Client) Self() core.DomainID { return c.self }

// SetHeap designates the memory capability and sub-region the client
// allocates domain memory from. The region must lie within the node's
// effective memory and the node must be delegable.
func (c *Client) SetHeap(node cap.NodeID, pool phys.Region) error {
	found := false
	for _, n := range c.mon.OwnerNodes(c.self) {
		if n.ID != node {
			continue
		}
		found = true
		if n.Resource.Kind != cap.ResMemory {
			return fmt.Errorf("libtyche: heap node %d is not memory", node)
		}
		if !n.Resource.Mem.ContainsRegion(pool) {
			return fmt.Errorf("libtyche: pool %v outside capability %v", pool, n.Resource.Mem)
		}
		if !n.Rights.Has(cap.RightShare | cap.RightGrant) {
			return fmt.Errorf("libtyche: heap capability lacks delegation rights (%v)", n.Rights)
		}
	}
	if !found {
		return fmt.Errorf("libtyche: domain %d does not own capability %d", c.self, node)
	}
	a, err := NewAllocator(pool)
	if err != nil {
		return err
	}
	c.heapNode = node
	c.heap = a
	return nil
}

// AutoHeap configures the heap from the domain's largest delegable
// memory capability, reserving the first reservePages pages (e.g. for
// the domain's own code/data already placed there).
func (c *Client) AutoHeap(reservePages uint64) error {
	var best cap.Info
	for _, n := range c.mon.OwnerNodes(c.self) {
		if n.Resource.Kind != cap.ResMemory || !n.Rights.Has(cap.RightShare|cap.RightGrant) {
			continue
		}
		if n.Resource.Mem.Size() > best.Resource.Mem.Size() {
			best = n
		}
	}
	if best.Resource.Mem.Empty() {
		return fmt.Errorf("libtyche: domain %d has no delegable memory", c.self)
	}
	pool := best.Resource.Mem
	pool.Start += phys.Addr(reservePages * phys.PageSize)
	if pool.Empty() {
		return fmt.Errorf("libtyche: reservation %d pages consumes the whole pool", reservePages)
	}
	return c.SetHeap(best.ID, pool)
}

// Heap returns the client's allocator (nil before SetHeap).
func (c *Client) Heap() *Allocator { return c.heap }

// HeapNode returns the capability node backing the heap (zero before
// SetHeap) — the node further delegations of heap memory derive from.
func (c *Client) HeapNode() cap.NodeID { return c.heapNode }

// Alloc carves a fresh region from the heap.
func (c *Client) Alloc(pages uint64) (phys.Region, error) {
	if c.heap == nil {
		return phys.Region{}, ErrNoHeap
	}
	return c.heap.Alloc(pages)
}

// Write stores data into the client's own memory (capability-checked).
func (c *Client) Write(a phys.Addr, data []byte) error {
	return c.mon.CopyInto(c.self, a, data)
}

// Read loads from the client's own memory (capability-checked).
func (c *Client) Read(a phys.Addr, n uint64) ([]byte, error) {
	return c.mon.CopyFrom(c.self, a, n)
}

// Attest produces the client's own signed report.
func (c *Client) Attest(nonce []byte) (*core.Report, error) {
	return c.mon.Attest(c.self, nonce)
}

// coreNode finds the client's capability for a core.
func (c *Client) coreNode(id phys.CoreID) (cap.NodeID, error) {
	for _, n := range c.mon.OwnerNodes(c.self) {
		if n.Resource.Kind == cap.ResCore && n.Resource.Core == id {
			return n.ID, nil
		}
	}
	return 0, fmt.Errorf("libtyche: domain %d holds no capability for %v", c.self, id)
}

// deviceNode finds the client's capability for a device.
func (c *Client) deviceNode(id phys.DeviceID) (cap.NodeID, error) {
	for _, n := range c.mon.OwnerNodes(c.self) {
		if n.Resource.Kind == cap.ResDevice && n.Resource.Device == id {
			return n.ID, nil
		}
	}
	return 0, fmt.Errorf("libtyche: domain %d holds no capability for %v", c.self, id)
}
