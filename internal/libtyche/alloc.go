// Package libtyche implements higher-level isolation abstractions on
// top of the monitor's domain API, mirroring the paper's libtyche
// (§4.2): loading manifest-described images as domains, and building
// sandboxes, enclaves, kernel compartments, and confidential VMs —
// all as library code running *within* trust domains, not monitor
// features ("higher-level abstractions ... are implemented on top of
// the monitor's isolation API by libraries running within the trust
// domains").
package libtyche

import (
	"fmt"
	"sort"

	"github.com/tyche-sim/tyche/internal/phys"
)

// Allocator hands out page-aligned physical regions from a pool the
// owning domain controls. Resource *allocation* is deliberately not the
// monitor's job (§3.5) — management code like this allocator picks the
// regions; the monitor only validates the resulting share/grant.
type Allocator struct {
	pool phys.Region
	free []phys.Region
}

// NewAllocator returns an allocator over pool (page-aligned).
func NewAllocator(pool phys.Region) (*Allocator, error) {
	if err := pool.Validate(); err != nil {
		return nil, fmt.Errorf("libtyche: allocator pool: %w", err)
	}
	return &Allocator{pool: pool, free: []phys.Region{pool}}, nil
}

// Pool returns the full region the allocator manages.
func (a *Allocator) Pool() phys.Region { return a.pool }

// FreeBytes returns the unallocated byte count.
func (a *Allocator) FreeBytes() uint64 { return phys.CoverageSize(a.free) }

// Alloc returns a region of the given page count (first fit).
func (a *Allocator) Alloc(pages uint64) (phys.Region, error) {
	if pages == 0 {
		return phys.Region{}, fmt.Errorf("libtyche: zero-page allocation")
	}
	want := pages * phys.PageSize
	for i, f := range a.free {
		if f.Size() < want {
			continue
		}
		got := phys.MakeRegion(f.Start, want)
		rest := phys.Region{Start: got.End, End: f.End}
		if rest.Empty() {
			a.free = append(a.free[:i], a.free[i+1:]...)
		} else {
			a.free[i] = rest
		}
		return got, nil
	}
	return phys.Region{}, fmt.Errorf("libtyche: out of memory: need %d pages, free %d bytes fragmented over %d extents",
		pages, a.FreeBytes(), len(a.free))
}

// Peek returns the region the next Alloc of the given page count would
// return, without allocating. Loaders use it to assemble
// position-dependent code against its final physical address before
// committing the allocation.
func (a *Allocator) Peek(pages uint64) (phys.Region, error) {
	if pages == 0 {
		return phys.Region{}, fmt.Errorf("libtyche: zero-page allocation")
	}
	want := pages * phys.PageSize
	for _, f := range a.free {
		if f.Size() >= want {
			return phys.MakeRegion(f.Start, want), nil
		}
	}
	return phys.Region{}, fmt.Errorf("libtyche: out of memory: need %d pages", pages)
}

// Free returns a region to the pool, coalescing neighbours.
func (a *Allocator) Free(r phys.Region) error {
	if err := r.Validate(); err != nil {
		return err
	}
	if !a.pool.ContainsRegion(r) {
		return fmt.Errorf("libtyche: freeing %v outside pool %v", r, a.pool)
	}
	for _, f := range a.free {
		if f.Overlaps(r) {
			return fmt.Errorf("libtyche: double free of %v (overlaps free %v)", r, f)
		}
	}
	a.free = append(a.free, r)
	a.free = phys.NormalizeRegions(a.free)
	return nil
}

// Extents returns the free list (sorted, for diagnostics).
func (a *Allocator) Extents() []phys.Region {
	out := make([]phys.Region, len(a.free))
	copy(out, a.free)
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}
