package libtyche

import (
	"fmt"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/core"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/image"
	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/tpm"
)

// LoadOptions tunes Load.
type LoadOptions struct {
	// Name overrides the image name for the domain.
	Name string
	// Cores the new domain may run on. Shared by default; granted
	// exclusively when ExclusiveCores is set (side-channel mitigation:
	// "ensuring exclusive access to a CPU core", §4.1).
	Cores          []phys.CoreID
	ExclusiveCores bool
	// Devices granted to the domain with DMA rights (I/O domains).
	Devices []phys.DeviceID
	// Seal the domain after loading.
	Seal bool
	// Cleanup applied to confidential grants (CleanObfuscate default).
	Cleanup cap.Cleanup
	// FastPathCore, when >= 0, registers a VMFUNC fast path between the
	// creator and the new domain on that core. Set to -1 to disable.
	FastPathCore phys.CoreID
}

// DefaultLoadOptions returns the options Load assumes for zero values.
func DefaultLoadOptions() LoadOptions {
	return LoadOptions{Cleanup: cap.CleanObfuscate, FastPathCore: -1}
}

// Domain is a handle on a domain this client created by loading an
// image.
type Domain struct {
	c  *Client
	id core.DomainID

	base       phys.Addr
	placements []image.Placement
	entry      phys.Addr
	// memNodes maps segment name to the capability node the new domain
	// received for it.
	memNodes map[string]cap.NodeID
	// parentShares maps shared segment names to the *creator-side*
	// region (same region; creator retains access for communication).
	measurement tpm.Digest
	sealed      bool
}

// ID returns the domain's identity.
func (d *Domain) ID() core.DomainID { return d.id }

// Entry returns the domain's entry point.
func (d *Domain) Entry() phys.Addr { return d.entry }

// Base returns the load address.
func (d *Domain) Base() phys.Addr { return d.base }

// Sealed reports whether the domain was sealed.
func (d *Domain) Sealed() bool { return d.sealed }

// Measurement returns the seal-time measurement (zero until sealed).
func (d *Domain) Measurement() tpm.Digest { return d.measurement }

// SegmentRegion returns the physical region a named segment was loaded
// at.
func (d *Domain) SegmentRegion(name string) (phys.Region, bool) {
	for _, p := range d.placements {
		if p.Segment.Name == name {
			return p.Region, true
		}
	}
	return phys.Region{}, false
}

// SegmentNode returns the capability node the domain holds for a
// segment.
func (d *Domain) SegmentNode(name string) (cap.NodeID, bool) {
	n, ok := d.memNodes[name]
	return n, ok
}

// Client returns a libtyche client acting as this domain — the hook for
// nesting: the domain can load its own children from its own memory.
func (d *Domain) Client() *Client {
	return New(d.c.mon, d.id)
}

// Attest returns the domain's signed report.
func (d *Domain) Attest(nonce []byte) (*core.Report, error) {
	return d.c.mon.Attest(d.id, nonce)
}

// Seal seals the domain now (for callers that loaded with Seal=false
// and then added shared state).
func (d *Domain) Seal() (tpm.Digest, error) {
	meas, err := d.c.mon.Seal(d.c.self, d.id)
	if err != nil {
		return tpm.Digest{}, err
	}
	d.measurement = meas
	d.sealed = true
	return meas, nil
}

// Kill destroys the domain; its memory is cleaned per segment policy
// and returns to the creator's heap.
func (d *Domain) Kill() error {
	if err := d.c.mon.KillDomain(d.c.self, d.id); err != nil {
		return err
	}
	footprint := phys.Region{Start: d.base, End: d.placements[len(d.placements)-1].Region.End}
	return d.c.heap.Free(footprint)
}

// Launch starts the domain on a core.
func (d *Domain) Launch(c phys.CoreID) error { return d.c.mon.Launch(d.id, c) }

// Invoke performs a mediated call into the domain from the creator's
// current context on the core and runs until it returns or halts,
// returning the callee's r1 result. The creator must already be running
// on the core (Call semantics, §3.1).
func (d *Domain) Invoke(c phys.CoreID, budget int, args ...uint64) (uint64, error) {
	mon := d.c.mon
	mach := mon.Machine()
	cpu := mach.Core(c)
	if cpu == nil {
		return 0, fmt.Errorf("libtyche: no core %v", c)
	}
	if len(args) > 4 {
		return 0, fmt.Errorf("libtyche: at most 4 arguments (r2..r5), got %d", len(args))
	}
	// Arguments travel in r2..r5 (r0/r1 are the ABI call registers).
	for i, a := range args {
		cpu.Regs[2+i] = a
	}
	if err := mon.Call(c, d.id); err != nil {
		return 0, err
	}
	res, err := mon.RunCore(c, budget)
	if err != nil {
		return 0, err
	}
	if res.Trap.Kind == hw.TrapFault || res.Trap.Kind == hw.TrapIllegal {
		return 0, fmt.Errorf("libtyche: domain %d trapped: %v", res.Domain, res.Trap)
	}
	return cpu.Regs[1], nil
}

// Load builds a trust domain from an image: allocates memory from the
// client's heap, writes segment contents, delegates each segment per
// its manifest policy (confidential → grant, shared → share), wires
// cores/devices, sets the entry point, measures, and optionally seals.
func (c *Client) Load(img *image.Image, opts LoadOptions) (*Domain, error) {
	if c.heap == nil {
		return nil, ErrNoHeap
	}
	if opts.Cleanup == cap.CleanNone {
		opts.Cleanup = cap.CleanObfuscate
	}
	if err := img.Validate(); err != nil {
		return nil, err
	}
	block, err := c.heap.Alloc(img.TotalPages())
	if err != nil {
		return nil, err
	}
	placements, err := img.Layout(block.Start)
	if err != nil {
		c.heap.Free(block)
		return nil, err
	}
	name := opts.Name
	if name == "" {
		name = img.Name
	}
	id, err := c.mon.CreateDomain(c.self, name)
	if err != nil {
		c.heap.Free(block)
		return nil, err
	}
	d := &Domain{
		c: c, id: id, base: block.Start, placements: placements,
		memNodes: make(map[string]cap.NodeID),
	}
	fail := func(err error) (*Domain, error) {
		// Best-effort teardown; the domain may hold grants already.
		_ = c.mon.KillDomain(c.self, id)
		_ = c.heap.Free(block)
		return nil, err
	}

	// Write contents while the creator still has access.
	for _, p := range placements {
		if len(p.Segment.Data) > 0 {
			if err := c.Write(p.Region.Start, p.Segment.Data); err != nil {
				return fail(fmt.Errorf("libtyche: writing %q: %w", p.Segment.Name, err))
			}
		}
	}
	// Delegate segments.
	entryRing := hw.RingKernel
	var userFilter *hw.EPT
	for _, p := range placements {
		res := cap.MemResource(p.Region)
		rights := p.Segment.Rights
		var node cap.NodeID
		if p.Segment.Confidential {
			// A domain may always subdivide what it exclusively owns —
			// that is what lets enclaves map libtyche and spawn nested
			// enclaves from their own memory (§4.2). Sharing onward is
			// visible to verifiers through reference counts.
			rights |= cap.RightShare | cap.RightGrant
			node, err = c.mon.Grant(c.self, c.heapNode, id, res, rights, opts.Cleanup)
		} else {
			node, err = c.mon.Share(c.self, c.heapNode, id, res, rights, cap.CleanZero)
		}
		if err != nil {
			return fail(fmt.Errorf("libtyche: delegating %q: %w", p.Segment.Name, err))
		}
		d.memNodes[p.Segment.Name] = node
		if p.Segment.Ring == hw.RingUser {
			if userFilter == nil {
				userFilter = hw.NewEPT()
			}
			// Ring-3 code sees only user segments through the domain's
			// first-level filter.
			if err := userFilter.Map(p.Region, segPerm(p.Segment)); err != nil {
				return fail(err)
			}
			if p.Segment.Name == img.EntrySegment {
				entryRing = hw.RingUser
			}
		}
	}
	// Cores.
	for _, coreID := range opts.Cores {
		cn, err := c.coreNode(coreID)
		if err != nil {
			return fail(err)
		}
		// Cores carry delegation rights onward so nested children can be
		// scheduled; core sharing is visible through CoreRefCount.
		if opts.ExclusiveCores {
			_, err = c.mon.Grant(c.self, cn, id, cap.CoreResource(coreID), cap.CoreFull, cap.CleanFlushCache|cap.CleanFlushTLB)
		} else {
			_, err = c.mon.Share(c.self, cn, id, cap.CoreResource(coreID), cap.RightRun|cap.RightShare, cap.CleanFlushCache)
		}
		if err != nil {
			return fail(err)
		}
	}
	// Devices (I/O domains get DMA).
	for _, devID := range opts.Devices {
		dn, err := c.deviceNode(devID)
		if err != nil {
			return fail(err)
		}
		// Full rights: granted devices can be delegated onward (e.g. a
		// VM re-granting its GPU to a nested I/O domain).
		if _, err := c.mon.Grant(c.self, dn, id, cap.DeviceResource(devID), cap.DeviceFull, cap.CleanNone); err != nil {
			return fail(err)
		}
	}
	// Entry, ring, measurement.
	entry, err := img.Entry(block.Start)
	if err != nil {
		return fail(err)
	}
	if err := c.mon.SetEntry(c.self, id, entry); err != nil {
		return fail(err)
	}
	if entryRing != hw.RingKernel {
		if err := c.mon.SetEntryRing(c.self, id, entryRing); err != nil {
			return fail(err)
		}
	}
	d.entry = entry
	if userFilter != nil {
		for _, coreID := range opts.Cores {
			ctx, err := c.mon.DomainContext(c.self, id, coreID)
			if err != nil {
				return fail(err)
			}
			ctx.OSFilter = userFilter
		}
	}
	for _, p := range placements {
		if !p.Segment.Measured {
			continue
		}
		if err := c.mon.AddMeasuredRegion(c.self, id, p.Region); err != nil {
			return fail(err)
		}
	}
	if opts.FastPathCore >= 0 {
		if err := c.mon.RegisterFastPath(c.self, c.self, id, opts.FastPathCore); err != nil {
			return fail(err)
		}
	}
	if opts.Seal {
		if _, err := d.Seal(); err != nil {
			return fail(err)
		}
	}
	return d, nil
}

func segPerm(s *image.Segment) hw.Perm {
	var p hw.Perm
	if s.Rights.Has(cap.RightRead) {
		p |= hw.PermR
	}
	if s.Rights.Has(cap.RightWrite) {
		p |= hw.PermW
	}
	if s.Rights.Has(cap.RightExec) {
		p |= hw.PermX
	}
	return p
}
