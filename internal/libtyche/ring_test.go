package libtyche

import (
	"errors"
	"testing"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/core"
)

// TestRingEnqueueFlushReap: the happy path — enqueue a mixed batch, one
// flush, completions come back in submission order.
func TestRingEnqueueFlushReap(t *testing.T) {
	c := world(t, core.BackendVTX)
	r, err := c.NewRing(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Enqueue(core.CallSelfID); err != nil {
		t.Fatal(err)
	}
	if err := r.Enqueue(core.CallLog, 0xabc); err != nil {
		t.Fatal(err)
	}
	if err := r.Enqueue(core.CallEnumerateLen); err != nil {
		t.Fatal(err)
	}
	n, err := r.Flush()
	if err != nil || n != 3 {
		t.Fatalf("Flush = %d, %v", n, err)
	}
	cs, err := r.Reap()
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 3 {
		t.Fatalf("reaped %d completions, want 3", len(cs))
	}
	if cs[0].Status != core.StatusOK || cs[0].Result != uint64(core.InitialDomain) {
		t.Fatalf("selfid completion = %+v", cs[0])
	}
	if cs[1].Status != core.StatusOK || cs[2].Status != core.StatusOK {
		t.Fatalf("completions = %+v", cs)
	}
	if cs[2].Result == 0 {
		t.Fatal("enumerate returned no resources")
	}
	// Reap is a cursor, not a snapshot: nothing left to reap.
	if again, _ := r.Reap(); len(again) != 0 {
		t.Fatalf("second reap returned %d completions", len(again))
	}
}

// TestRingBackpressureFallsBackToSync is the contract the guest relies
// on: a full ring reports ErrRingFull and the very same operation still
// works down the synchronous path; after a flush the ring takes
// submissions again.
func TestRingBackpressureFallsBackToSync(t *testing.T) {
	c := world(t, core.BackendVTX)
	const entries = 4
	r, err := c.NewRing(entries)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < entries; i++ {
		if err := r.Enqueue(core.CallLog, i); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
	}
	err = r.Enqueue(core.CallLog, 99)
	if !errors.Is(err, ErrRingFull) {
		t.Fatalf("overflow enqueue err = %v, want ErrRingFull", err)
	}
	// Fall back to the synchronous path for the overflow operation: the
	// trap-per-op route is always available.
	if _, err := c.mon.Attest(c.self, []byte("sync-fallback")); err != nil {
		t.Fatalf("sync fallback: %v", err)
	}
	n, err := r.Flush()
	if err != nil || n != entries {
		t.Fatalf("Flush = %d, %v", n, err)
	}
	// Backpressure released: the rejected operation now fits.
	if err := r.Enqueue(core.CallLog, 99); err != nil {
		t.Fatalf("post-flush enqueue: %v", err)
	}
	if n, err := r.Flush(); err != nil || n != 1 {
		t.Fatalf("second Flush = %d, %v", n, err)
	}
	d, err := c.mon.Domain(core.InitialDomain)
	if err != nil {
		t.Fatal(err)
	}
	log := d.Log()
	if len(log) != entries+1 || log[entries] != 99 {
		t.Fatalf("log = %v, want %d entries ending in 99", log, entries+1)
	}
}

// TestRingBatchedShareGrant: delegations issued through the ring carry
// the same capability semantics as the synchronous API.
func TestRingBatchedShareGrant(t *testing.T) {
	c := world(t, core.BackendVTX)
	worker, err := c.mon.CreateDomain(core.InitialDomain, "worker")
	if err != nil {
		t.Fatal(err)
	}
	region, err := c.Alloc(2)
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.NewRing(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Enqueue(core.CallShare, uint64(c.heapNode), uint64(worker),
		uint64(region.Start), region.Size(), uint64(cap.MemRW)); err != nil {
		t.Fatal(err)
	}
	if n, err := r.Flush(); err != nil || n != 1 {
		t.Fatalf("Flush = %d, %v", n, err)
	}
	cs, err := r.Reap()
	if err != nil || len(cs) != 1 {
		t.Fatalf("Reap = %v, %v", cs, err)
	}
	if cs[0].Status != core.StatusOK || cs[0].Result == 0 {
		t.Fatalf("share completion = %+v", cs[0])
	}
	if !c.mon.CheckAccess(worker, region.Start, cap.RightRead) {
		t.Fatal("batched share did not reach the worker")
	}
	// The returned node is live capability state: revoking it synchronously
	// takes the access away again.
	if err := c.mon.Revoke(core.InitialDomain, cap.NodeID(cs[0].Result)); err != nil {
		t.Fatal(err)
	}
	if c.mon.CheckAccess(worker, region.Start, cap.RightRead) {
		t.Fatal("revoke of ring-minted node did not stick")
	}
}
