package libtyche

import (
	"bytes"
	"errors"
	"testing"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/core"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/image"
	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/tpm"
)

const pg = phys.PageSize

// world boots a monitor and returns a dom0 client with a running idle
// dom0 on core 0 and a heap over everything above page 16.
func world(t testing.TB, kind core.BackendKind) *Client {
	t.Helper()
	mach, err := hw.NewMachine(hw.Config{
		MemBytes: 16 << 20, NumCores: 4, PMPEntries: 16,
		IOMMUAllowByDefault: true,
		Devices:             []hw.DeviceConfig{{Name: "gpu0", Class: hw.DevAccelerator}, {Name: "nic0", Class: hw.DevNIC}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rot, err := tpm.New(nil)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := core.Boot(core.BootConfig{Machine: mach, TPM: rot, Backend: kind})
	if err != nil {
		t.Fatal(err)
	}
	c := New(mon, core.InitialDomain)
	if err := c.AutoHeap(16); err != nil {
		t.Fatal(err)
	}
	// dom0 idle loop at page 4.
	idle := hw.NewAsm()
	idle.Hlt()
	code := idle.MustAssemble(4 * pg)
	if err := c.Write(4*pg, code); err != nil {
		t.Fatal(err)
	}
	if err := mon.SetEntry(core.InitialDomain, core.InitialDomain, 4*pg); err != nil {
		t.Fatal(err)
	}
	if err := mon.Launch(core.InitialDomain, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := mon.RunCore(0, 10); err != nil {
		t.Fatal(err)
	}
	return c
}

// addTwo builds an image whose domain returns arg(r2) + 2.
func addTwo(name string) *image.Image {
	a := hw.NewAsm()
	a.Movi(3, 2)
	a.Add(1, 2, 3)
	a.Movi(0, uint32(core.CallReturn))
	a.Vmcall()
	a.Hlt()
	return image.NewProgram(name, a.MustAssemble(0))
}

func TestAllocator(t *testing.T) {
	a, err := NewAllocator(phys.MakeRegion(0x10000, 16*pg))
	if err != nil {
		t.Fatal(err)
	}
	r1, err := a.Alloc(4)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.Alloc(4)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Overlaps(r2) {
		t.Fatal("allocations overlap")
	}
	if a.FreeBytes() != 8*pg {
		t.Fatalf("free = %#x", a.FreeBytes())
	}
	if _, err := a.Alloc(9); err == nil {
		t.Fatal("over-allocation succeeded")
	}
	if err := a.Free(r1); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(r1); err == nil {
		t.Fatal("double free accepted")
	}
	if err := a.Free(phys.MakeRegion(0, pg)); err == nil {
		t.Fatal("freeing foreign region accepted")
	}
	// Coalescing: free r2, then a 12-page allocation must fit again.
	if err := a.Free(r2); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(16); err != nil {
		t.Fatalf("coalesced allocation failed: %v", err)
	}
	if _, err := a.Alloc(0); err == nil {
		t.Fatal("zero-page allocation accepted")
	}
	if _, err := NewAllocator(phys.Region{}); err == nil {
		t.Fatal("empty pool accepted")
	}
}

func TestAllocatorFragmentation(t *testing.T) {
	a, _ := NewAllocator(phys.MakeRegion(0, 8*pg))
	var regs []phys.Region
	for i := 0; i < 8; i++ {
		r, err := a.Alloc(1)
		if err != nil {
			t.Fatal(err)
		}
		regs = append(regs, r)
	}
	// Free every other page: 4 pages free but no 2-page extent.
	for i := 0; i < 8; i += 2 {
		if err := a.Free(regs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if a.FreeBytes() != 4*pg {
		t.Fatalf("free = %#x", a.FreeBytes())
	}
	if _, err := a.Alloc(2); err == nil {
		t.Fatal("fragmented allocator satisfied a contiguous request")
	}
	if len(a.Extents()) != 4 {
		t.Fatalf("extents = %v", a.Extents())
	}
}

func TestClientHeapSetup(t *testing.T) {
	c := world(t, core.BackendVTX)
	if c.Heap() == nil {
		t.Fatal("AutoHeap did not configure a heap")
	}
	// SetHeap validation: foreign node.
	if err := c.SetHeap(9999, phys.MakeRegion(0, pg)); err == nil {
		t.Fatal("foreign node accepted")
	}
	// Pool outside the capability.
	var node cap.NodeID
	for _, n := range c.Monitor().OwnerNodes(c.Self()) {
		if n.Resource.Kind == cap.ResMemory {
			node = n.ID
		}
	}
	if err := c.SetHeap(node, phys.MakeRegion(phys.Addr(1<<30), pg)); err == nil {
		t.Fatal("out-of-capability pool accepted")
	}
	// Client with no delegable memory.
	c2 := New(c.Monitor(), core.DomainID(999))
	if err := c2.AutoHeap(0); err == nil {
		t.Fatal("AutoHeap for capless domain succeeded")
	}
	if _, err := c2.Alloc(1); !errors.Is(err, ErrNoHeap) {
		t.Fatalf("alloc without heap: %v", err)
	}
}

func TestEnclaveLoadRunAttest(t *testing.T) {
	for _, kind := range []core.BackendKind{core.BackendVTX, core.BackendPMP} {
		t.Run(string(kind), func(t *testing.T) {
			c := world(t, kind)
			img := addTwo("adder")
			opts := DefaultLoadOptions()
			opts.Cores = []phys.CoreID{0}
			enc, err := c.NewEnclave(img, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !enc.Sealed() {
				t.Fatal("enclave not sealed")
			}
			// Offline hashing (tyche-hash) predicts the measurement.
			want, err := img.Measurement(enc.Base())
			if err != nil {
				t.Fatal(err)
			}
			if enc.Measurement() != want {
				t.Fatal("offline measurement does not match monitor measurement")
			}
			// dom0 lost access to the enclave's text (granted away).
			text, _ := enc.SegmentRegion(".text")
			if c.Monitor().CheckAccess(core.InitialDomain, text.Start, cap.RightRead) {
				t.Fatal("creator can read enclave text")
			}
			// Call it.
			got, err := enc.Invoke(0, 10000, 40)
			if err != nil {
				t.Fatal(err)
			}
			if got != 42 {
				t.Fatalf("enclave returned %d, want 42", got)
			}
			// Attest: sealed, measurement matches, memory exclusive.
			rep, err := enc.Attest([]byte("n"))
			if err != nil {
				t.Fatal(err)
			}
			if err := core.VerifyReport(rep); err != nil {
				t.Fatal(err)
			}
			if !rep.Sealed || rep.Measurement != want {
				t.Fatalf("report = %+v", rep)
			}
			for _, rec := range rep.Resources {
				if rec.Resource.Kind == cap.ResMemory && rec.RefCount != 1 {
					t.Fatalf("enclave memory %v refcount = %d", rec.Resource, rec.RefCount)
				}
			}
		})
	}
}

func TestSandboxSharedVisibility(t *testing.T) {
	c := world(t, core.BackendVTX)
	img := addTwo("sandbox")
	opts := DefaultLoadOptions()
	opts.Cores = []phys.CoreID{0}
	sb, err := c.NewSandbox(img, opts)
	if err != nil {
		t.Fatal(err)
	}
	text, _ := sb.SegmentRegion(".text")
	// Parent retains visibility (sandbox, not enclave).
	if !c.Monitor().CheckAccess(core.InitialDomain, text.Start, cap.RightRead) {
		t.Fatal("parent lost access to sandbox memory")
	}
	// Refcount 2: parent + sandbox.
	found := false
	for _, rc := range c.Monitor().RefCounts() {
		if rc.Region.Overlaps(text) {
			found = true
			if rc.Count != 2 {
				t.Fatalf("sandbox text refcount = %d", rc.Count)
			}
		}
	}
	if !found {
		t.Fatal("sandbox region missing from refcount map")
	}
	// Sandbox cannot see parent memory (dom0 code page).
	if c.Monitor().CheckAccess(sb.ID(), 4*pg, cap.RightRead) {
		t.Fatal("sandbox can read parent memory")
	}
	// And it still runs.
	got, err := sb.Invoke(0, 10000, 5)
	if err != nil || got != 7 {
		t.Fatalf("sandbox returned %d, %v", got, err)
	}
	// Sandboxes are unsealed: the parent may keep configuring them.
	if sb.Sealed() {
		t.Fatal("sandbox sealed")
	}
}

func TestChannelControlledSharing(t *testing.T) {
	c := world(t, core.BackendVTX)
	opts := DefaultLoadOptions()
	opts.Cores = []phys.CoreID{0}
	encA, err := c.NewEnclave(addTwo("a"), opts)
	if err != nil {
		t.Fatal(err)
	}
	encB, err := c.NewEnclave(addTwo("b"), opts)
	if err != nil {
		t.Fatal(err)
	}
	// A channel between dom0 and enclave A... enclaves are sealed: they
	// cannot receive new shares. Verify that first.
	if _, err := c.OpenChannel(encA.ID(), 2, cap.CleanZero); err == nil {
		t.Fatal("sealed enclave accepted a new share")
	}
	// Unsealed flow: create enclave-like domain without sealing, open a
	// channel, then seal.
	img := addTwo("c")
	opts2 := DefaultLoadOptions()
	opts2.Cores = []phys.CoreID{0}
	opts2.Seal = false
	encC, err := c.Load(img, opts2)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := c.OpenChannel(encC.ID(), 2, cap.CleanZero)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := encC.Seal(); err != nil {
		t.Fatal(err)
	}
	if ch.RefCount() != 2 {
		t.Fatalf("channel refcount = %d", ch.RefCount())
	}
	// Both endpoints can use it.
	if err := ch.Write(0, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	got, err := ch.ReadAs(encC.ID(), 0, 4)
	if err != nil || string(got) != "ping" {
		t.Fatalf("peer read = %q, %v", got, err)
	}
	if err := ch.WriteAs(encC.ID(), 8, []byte("pong")); err != nil {
		t.Fatal(err)
	}
	// A third domain cannot.
	if err := ch.WriteAs(encB.ID(), 0, []byte("mitm")); err == nil {
		t.Fatal("third party wrote to the channel")
	}
	if _, err := ch.ReadAs(encB.ID(), 0, 4); err == nil {
		t.Fatal("third party read the channel")
	}
	// Close: peer loses access, content zeroed, region reusable.
	if err := ch.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ch.ReadAs(encC.ID(), 0, 4); err == nil {
		t.Fatal("peer retains channel access after close")
	}
	data, err := c.Read(ch.Region().Start, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, make([]byte, 4)) {
		t.Fatal("channel not zeroed on close")
	}
}

func TestNestedEnclaves(t *testing.T) {
	c := world(t, core.BackendVTX)
	// Outer enclave: give it generous BSS to serve as its own heap.
	outerImg := addTwo("outer").WithHeap(".heap", 64*pg)
	opts := DefaultLoadOptions()
	opts.Cores = []phys.CoreID{0}
	opts.Seal = false // seal later; it must receive nothing more anyway
	outer, err := c.Load(outerImg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := outer.Seal(); err != nil {
		t.Fatal(err)
	}

	// The outer enclave maps libtyche: it gets a client and spawns a
	// nested enclave from its own exclusively-owned heap (§4.2).
	oc := outer.Client()
	heapRegion, _ := outer.SegmentRegion(".heap")
	heapNode, _ := outer.SegmentNode(".heap")
	if err := oc.SetHeap(heapNode, heapRegion); err != nil {
		t.Fatal(err)
	}
	innerOpts := DefaultLoadOptions()
	innerOpts.Cores = []phys.CoreID{0}
	// The outer enclave holds only a shared core capability... it has no
	// core node of its own to delegate? It received core 0 shared: find
	// it via the outer domain's nodes — oc.coreNode does that.
	inner, err := oc.NewEnclave(addTwo("inner"), innerOpts)
	if err != nil {
		t.Fatal(err)
	}
	// The nested enclave's memory is exclusive: neither dom0 nor the
	// outer enclave can touch it.
	text, _ := inner.SegmentRegion(".text")
	if c.Monitor().CheckAccess(core.InitialDomain, text.Start, cap.RightRead) {
		t.Fatal("dom0 can read nested enclave")
	}
	if c.Monitor().CheckAccess(outer.ID(), text.Start, cap.RightRead) {
		t.Fatal("outer enclave retains access to nested enclave text")
	}
	// The inner enclave works.
	got, err := inner.Invoke(0, 10000, 10)
	if err != nil || got != 12 {
		t.Fatalf("nested enclave returned %d, %v", got, err)
	}
	// Cleanup cascades: killing the outer enclave revokes the nested
	// one too (its memory derives from the outer grant).
	if err := c.Monitor().KillDomain(core.InitialDomain, outer.ID()); err != nil {
		t.Fatal(err)
	}
	if c.Monitor().CheckAccess(inner.ID(), text.Start, cap.RightRead) {
		t.Fatal("nested enclave survived outer teardown")
	}
}

func TestConfidentialVMExclusiveCores(t *testing.T) {
	c := world(t, core.BackendVTX)
	img := addTwo("cvm")
	cvm, err := c.NewConfidentialVM(img, []phys.CoreID{2}, DefaultLoadOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !cvm.Sealed() {
		t.Fatal("CVM not sealed")
	}
	// dom0 lost core 2: launching dom0 there is denied.
	if err := c.Monitor().Launch(core.InitialDomain, 2); !errors.Is(err, core.ErrDenied) {
		t.Fatalf("dom0 launch on granted core: %v", err)
	}
	// The CVM itself runs there.
	if err := cvm.Launch(2); err != nil {
		t.Fatal(err)
	}
	res, err := c.Monitor().RunCore(2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap.Kind != hw.TrapHalt {
		t.Fatalf("trap = %v", res.Trap)
	}
	if _, err := c.NewConfidentialVM(img, nil, DefaultLoadOptions()); err == nil {
		t.Fatal("CVM without cores accepted")
	}
}

func TestKernelCompartmentConfinesDevice(t *testing.T) {
	c := world(t, core.BackendVTX)
	img := addTwo("nic-driver").WithBSS("dma-pool", 8*pg)
	comp, err := c.NewKernelCompartment(img, []phys.DeviceID{1}, DefaultLoadOptions())
	if err != nil {
		t.Fatal(err)
	}
	nic := c.Monitor().Machine().Device(1)
	pool, _ := comp.SegmentRegion("dma-pool")
	// DMA inside the compartment works; outside is blocked.
	if err := nic.DMAWrite(pool.Start, []byte{1, 2, 3}); err != nil {
		t.Fatalf("driver DMA failed: %v", err)
	}
	if err := nic.DMAWrite(4*pg, []byte{1}); err == nil {
		t.Fatal("device DMA'd into kernel memory")
	}
	// dom0 cannot drive the device anymore (granted away), but the GPU
	// (still dom0's) can't reach the compartment either.
	gpu := c.Monitor().Machine().Device(0)
	if err := gpu.DMAWrite(pool.Start, []byte{1}); err == nil {
		t.Fatal("foreign device reached the compartment")
	}
}

func TestUserRingSegmentConfinement(t *testing.T) {
	c := world(t, core.BackendVTX)
	// A sandbox whose payload runs in ring 3 and whose secret data is
	// kernel-ring only: the payload can run but not read the secret.
	payload := hw.NewAsm()
	payload.Movi(1, 0) // will hold the loaded secret
	payload.Hlt()
	img := &image.Image{
		Name:         "ringbox",
		EntrySegment: "user-code",
	}
	img.Segments = append(img.Segments,
		image.Segment{Name: "user-code", Data: payload.MustAssemble(0), Rights: cap.MemRX, Ring: hw.RingUser, Confidential: true},
		image.Segment{Name: "kernel-secret", Data: []byte("s3cret"), Rights: cap.MemRW, Ring: hw.RingKernel, Confidential: true},
	)
	opts := DefaultLoadOptions()
	opts.Cores = []phys.CoreID{1}
	// Probe load: learn the deterministic layout, then rebuild the
	// payload to target its own domain's secret and reload into the
	// same (freed, first-fit-reused) block.
	probe, err := c.Load(img, opts)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := c.Monitor().Domain(probe.ID())
	if d.EntryRing() != hw.RingUser {
		t.Fatalf("entry ring = %v", d.EntryRing())
	}
	secret, _ := probe.SegmentRegion("kernel-secret")
	if err := probe.Kill(); err != nil {
		t.Fatal(err)
	}
	attack := hw.NewAsm()
	attack.Movi(1, uint32(secret.Start))
	attack.Ld(2, 1, 0)
	attack.Hlt()
	img.Segments[0].Data = attack.MustAssemble(0)
	dom, err := c.Load(img, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := dom.SegmentRegion("kernel-secret")
	if got != secret {
		t.Fatalf("layout not reproduced: %v vs %v", got, secret)
	}
	if err := dom.Launch(1); err != nil {
		t.Fatal(err)
	}
	res, err := c.Monitor().RunCore(1, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Ring-3 code reading a kernel-ring segment of its own domain must
	// fault on the first-level filter — even though the monitor-level
	// filter grants the domain access.
	if res.Trap.Kind != hw.TrapFault || res.Trap.Addr != secret.Start {
		t.Fatalf("trap = %v, want ring-3 fault at %v", res.Trap, secret.Start)
	}
}

func TestDomainKillFreesAndZeroes(t *testing.T) {
	c := world(t, core.BackendVTX)
	img := addTwo("victim").WithData(".data", []byte{0xde, 0xad})
	opts := DefaultLoadOptions()
	opts.Cores = []phys.CoreID{0}
	d, err := c.NewEnclave(img, opts)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := d.SegmentRegion(".data")
	before := c.Heap().FreeBytes()
	if err := d.Kill(); err != nil {
		t.Fatal(err)
	}
	if c.Heap().FreeBytes() <= before {
		t.Fatal("kill did not return memory to the heap")
	}
	// Obliterating cleanup zeroed the enclave's data.
	got, err := c.Read(data.Start, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{0, 0}) {
		t.Fatalf("enclave data leaked: %v", got)
	}
}

func TestLoadFailureCleansUp(t *testing.T) {
	c := world(t, core.BackendVTX)
	img := addTwo("x")
	opts := DefaultLoadOptions()
	opts.Cores = []phys.CoreID{99} // nonexistent core capability
	if _, err := c.Load(img, opts); err == nil {
		t.Fatal("load with bad core succeeded")
	}
	// Heap fully restored.
	img2 := addTwo("y")
	opts2 := DefaultLoadOptions()
	before := c.Heap().FreeBytes()
	d, err := c.Load(img2, opts2)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Kill(); err != nil {
		t.Fatal(err)
	}
	if c.Heap().FreeBytes() != before {
		t.Fatalf("heap leaked: %#x -> %#x", before, c.Heap().FreeBytes())
	}
}

func TestFastPathOption(t *testing.T) {
	c := world(t, core.BackendVTX)
	img := addTwo("fast")
	opts := DefaultLoadOptions()
	opts.Cores = []phys.CoreID{0}
	opts.FastPathCore = 0
	d, err := c.Load(img, opts)
	if err != nil {
		t.Fatal(err)
	}
	// The fast switch works immediately (pair registered during load).
	if err := c.Monitor().FastSwitch(0, d.ID()); err != nil {
		t.Fatalf("fast switch: %v", err)
	}
	// On the PMP backend the same option fails cleanly at load time.
	cp := world(t, core.BackendPMP)
	if _, err := cp.Load(addTwo("fast2"), opts); err == nil {
		t.Fatal("PMP backend accepted a fast path")
	}
}
