package libtyche

import (
	"math/rand"
	"testing"

	"github.com/tyche-sim/tyche/internal/phys"
)

// TestAllocatorInvariants drives random alloc/free sequences and checks
// the allocator's global invariants: live allocations never overlap,
// always lie within the pool, and byte accounting is exact.
func TestAllocatorInvariants(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		poolPages := uint64(rng.Intn(200) + 56)
		pool := phys.MakeRegion(phys.Addr(16*pg), poolPages*pg)
		a, err := NewAllocator(pool)
		if err != nil {
			t.Fatal(err)
		}
		var live []phys.Region
		liveBytes := uint64(0)
		for step := 0; step < 500; step++ {
			if rng.Intn(2) == 0 {
				pages := uint64(rng.Intn(12) + 1)
				r, err := a.Alloc(pages)
				if err != nil {
					continue // fragmentation or exhaustion: fine
				}
				if !pool.ContainsRegion(r) {
					t.Fatalf("seed %d: allocation %v outside pool %v", seed, r, pool)
				}
				for _, other := range live {
					if r.Overlaps(other) {
						t.Fatalf("seed %d: %v overlaps live %v", seed, r, other)
					}
				}
				live = append(live, r)
				liveBytes += r.Size()
			} else if len(live) > 0 {
				i := rng.Intn(len(live))
				r := live[i]
				if err := a.Free(r); err != nil {
					t.Fatalf("seed %d: freeing %v: %v", seed, r, err)
				}
				live = append(live[:i], live[i+1:]...)
				liveBytes -= r.Size()
			}
			if got := a.FreeBytes(); got != pool.Size()-liveBytes {
				t.Fatalf("seed %d step %d: free=%d, want %d", seed, step, got, pool.Size()-liveBytes)
			}
			// Peek never mutates.
			before := a.FreeBytes()
			if r, err := a.Peek(1); err == nil {
				if !pool.ContainsRegion(r) {
					t.Fatalf("peek outside pool: %v", r)
				}
			}
			if a.FreeBytes() != before {
				t.Fatal("Peek mutated the allocator")
			}
		}
		// Free everything: full pool must be reclaimable in one extent.
		for _, r := range live {
			if err := a.Free(r); err != nil {
				t.Fatal(err)
			}
		}
		if a.FreeBytes() != pool.Size() {
			t.Fatalf("seed %d: leaked %d bytes", seed, pool.Size()-a.FreeBytes())
		}
		if got, err := a.Alloc(poolPages); err != nil || got != pool {
			t.Fatalf("seed %d: full-pool alloc after drain: %v, %v", seed, got, err)
		}
	}
}
