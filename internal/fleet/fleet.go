// Package fleet is the simulated-datacenter control plane: it manages
// tens to hundreds of simulated machines (hw.Machine + core.Monitor
// pairs), each booted identically with a fleet agent enclave holding
// the node's NIC, and layers three services on top:
//
//   - Placement: a domain image is admitted onto a node as a
//     core.DomainSnapshot restore, attested against its expected
//     measurement (the control plane verifies the node's TPM-rooted
//     chain before trusting the report), and registered with the load
//     balancer.
//   - Attested live migration: a running domain's complete isolation
//     state — memory, capability shape, entry configuration, queued
//     vCPU contexts — crosses between nodes over a dist.Conn attested
//     channel, is re-attested on arrival, and departs the source with
//     a forced crypto-erase (core.Monitor.DepartKill). Blackout time —
//     load-balancer freeze to re-registration — is measured per
//     migration.
//   - Fleet-wide runtime verification: every node's rv.Service ships
//     its hash-chained trace digests over its own attested channel to
//     a per-node check.RemoteVerifier on the control-plane machine;
//     Audit finalizes all chains and reports per-node flags.
//
// Tenant bases are allocated fleet-globally (bump-down from the top of
// dom0's heap, never reused). Every node boots the same memory layout,
// so a tenant's span is free on every other node by construction —
// which is what lets measurements and absolute jump targets survive
// migration and re-placement at the same physical base (see
// internal/core/migrate.go).
package fleet

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/tyche-sim/tyche/internal/attest"
	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/core"
	"github.com/tyche-sim/tyche/internal/dist"
	"github.com/tyche-sim/tyche/internal/fault"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/image"
	"github.com/tyche-sim/tyche/internal/libtyche"
	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/rv"
	"github.com/tyche-sim/tyche/internal/tpm"
	"github.com/tyche-sim/tyche/internal/trace"
	"github.com/tyche-sim/tyche/internal/trace/check"
)

const pg = phys.PageSize

// ErrNoCapacity reports that no live node can host a placement — a
// benign outcome during kill storms when replicas == live nodes.
var ErrNoCapacity = errors.New("fleet: no live node can host service")

// agentCore is the core every node's fleet agent enclave runs on; the
// remaining cores serve tenants.
const agentCore = phys.CoreID(1)

// Config sizes a fleet. Zero values take the documented defaults.
type Config struct {
	// Nodes is the machine count (default 3).
	Nodes int
	// CoresPerNode is each machine's core count (default 4). Core 1 is
	// the agent core; all others serve tenants.
	CoresPerNode int
	// MemBytes is each machine's memory (default 32 MiB).
	MemBytes uint64
	// Backend selects the isolation backend (default vtx).
	Backend core.BackendKind
	// Seed parameterizes everything derived (nonces, fault schedules).
	Seed int64
	// SampleN is the nodes' runtime-verification sampling regime
	// (<=1 exact).
	SampleN int
	// AgentBufPages is the agent enclave's registered RDMA buffer size
	// (default 256 pages — digests with full audit streams must fit in
	// one frame).
	AgentBufPages uint64
	// Spin adds a per-request busy loop of this many iterations to
	// every service image (default 200), so serving throughput is
	// dominated by simulated core execution rather than host-side
	// bookkeeping.
	Spin int
}

func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 3
	}
	if c.CoresPerNode == 0 {
		c.CoresPerNode = 4
	}
	if c.MemBytes == 0 {
		c.MemBytes = 32 << 20
	}
	if c.Backend == "" {
		c.Backend = core.BackendVTX
	}
	if c.AgentBufPages == 0 {
		c.AgentBufPages = 256
	}
	if c.Spin == 0 {
		c.Spin = 200
	}
	return c
}

// Node is one simulated machine under control-plane management.
type Node struct {
	Index int
	Name  string
	Mach  *hw.Machine
	TPM   *tpm.TPM
	Mon   *core.Monitor
	CL    *libtyche.Client
	// Agent is the node's fleet agent enclave: it holds the NIC and
	// the registered RDMA buffer every attested channel of this node
	// runs over.
	Agent    *libtyche.Domain
	AgentImg *image.Image
	// SVC is the node's always-on runtime verification (nil under the
	// notrace build tag).
	SVC *rv.Service
	// Inj is the node's armed fault injector (nil until ArmKill).
	Inj *fault.Injector

	workers []phys.CoreID
	cores   chan phys.CoreID

	mu      sync.Mutex
	conn    *dist.Conn     // digest channel to the control plane
	ep      *dist.Endpoint // this node's side of the digest channel
	pending [][]byte       // digests buffered before the channel existed

	failed atomic.Bool
}

// Workers returns the node's tenant-serving cores.
func (n *Node) Workers() []phys.CoreID {
	return append([]phys.CoreID(nil), n.workers...)
}

// Failed reports whether the control plane declared the node dead.
func (n *Node) Failed() bool { return n.failed.Load() }

// acquireCore blocks until a serving core is free.
func (n *Node) acquireCore() phys.CoreID { return <-n.cores }

func (n *Node) releaseCore(c phys.CoreID) { n.cores <- c }

// ServiceSpec declares a deployable service. Delta is the service's
// response transform (reply = request + Delta); unique deltas per
// service make every response a cross-tenant integrity oracle.
type ServiceSpec struct {
	Name  string
	Delta uint32
}

// template is a service's golden image: a restore-ready snapshot at
// its fleet-global base plus the expected measurement.
type template struct {
	spec  ServiceSpec
	base  phys.Addr
	pages uint64
	snap  *core.DomainSnapshot
	meas  tpm.Digest
}

// Fleet is the control plane.
type Fleet struct {
	cfg   Config
	Nodes []*Node

	// cp is the control-plane machine hosting the digest-channel
	// endpoints and the per-node remote verifiers.
	cp   *Node
	cpMu sync.Mutex // serializes receives into the CP's shared buffer
	vers []*check.RemoteVerifier

	lb *LoadBalancer

	baseMu   sync.Mutex
	nextBase phys.Addr
	tmpls    map[string]*template

	nonceMu sync.Mutex
	nonce   uint64

	blackMu   sync.Mutex
	blackouts []uint64 // nanoseconds per completed migration

	errMu    sync.Mutex
	firstErr error
}

// New boots the fleet: cfg.Nodes identical machines plus the
// control-plane machine, runtime verification attached per node, and
// one attested digest channel per node to the control plane.
func New(cfg Config) (*Fleet, error) {
	cfg = cfg.withDefaults()
	if cfg.CoresPerNode < 2 {
		return nil, fmt.Errorf("fleet: need at least 2 cores per node (agent + worker)")
	}
	f := &Fleet{cfg: cfg, lb: NewLoadBalancer(), tmpls: make(map[string]*template)}
	for i := 0; i < cfg.Nodes; i++ {
		n, err := f.bootNode(i, fmt.Sprintf("node%d", i), cfg.CoresPerNode, cfg.MemBytes, true)
		if err != nil {
			return nil, fmt.Errorf("fleet: boot %s: %w", fmt.Sprintf("node%d", i), err)
		}
		f.Nodes = append(f.Nodes, n)
	}
	cp, err := f.bootNode(-1, "ctrl", 2, 16<<20, false)
	if err != nil {
		return nil, fmt.Errorf("fleet: boot control plane: %w", err)
	}
	f.cp = cp
	// The fleet-global tenant base allocator bumps down from the top of
	// the (identical) per-node heap; node-local allocations (the agent
	// enclave) happened at bring-up from the bottom.
	f.nextBase = f.Nodes[0].CL.Heap().Pool().End
	for _, n := range f.Nodes {
		if err := f.openDigestChannel(n); err != nil {
			return nil, fmt.Errorf("fleet: digest channel %s: %w", n.Name, err)
		}
	}
	// First pulse: every node reaches a quiescent point and ships its
	// bring-up digest, anchoring each hash chain.
	f.Pulse()
	return f, nil
}

// bootNode brings up one machine: monitor, runtime verification (nodes
// only), agent enclave on the agent core with the NIC and the RDMA
// buffer, and dom0 parked on every worker core.
func (f *Fleet) bootNode(index int, name string, cores int, memBytes uint64, verified bool) (*Node, error) {
	mach, err := hw.NewMachine(hw.Config{
		MemBytes:            memBytes,
		NumCores:            cores,
		PMPEntries:          16,
		IOMMUAllowByDefault: true,
		Devices:             []hw.DeviceConfig{{Name: "nic0", Class: hw.DevNIC}},
	})
	if err != nil {
		return nil, err
	}
	rot, err := tpm.New(nil)
	if err != nil {
		return nil, err
	}
	mon, err := core.Boot(core.BootConfig{Machine: mach, TPM: rot, Backend: f.cfg.Backend})
	if err != nil {
		return nil, err
	}
	n := &Node{Index: index, Name: name, Mach: mach, TPM: rot, Mon: mon}
	if verified && trace.Compiled {
		svc, err := rv.Attach(mach, mon, rv.Options{
			Node:    name,
			SampleN: f.cfg.SampleN,
			Ship:    func(raw []byte) error { return f.shipDigest(n, raw) },
		})
		if err != nil {
			return nil, err
		}
		n.SVC = svc
		f.vers = append(f.vers, check.NewRemoteVerifier(name))
	}
	cl := libtyche.New(mon, core.InitialDomain)
	if err := cl.AutoHeap(16); err != nil {
		return nil, err
	}
	n.CL = cl
	// dom0's idle loop, parked on every worker core so mediated calls
	// can be issued from it.
	idle := hw.NewAsm()
	idle.Hlt()
	if err := mon.CopyInto(core.InitialDomain, 4*pg, idle.MustAssemble(4*pg)); err != nil {
		return nil, err
	}
	if err := mon.SetEntry(core.InitialDomain, core.InitialDomain, 4*pg); err != nil {
		return nil, err
	}
	// The agent enclave: Hlt body plus the registered RDMA buffer; it
	// holds the NIC, so the channel's DMA path is capability-checked
	// against it, never against the host.
	prog := hw.NewAsm()
	prog.Hlt()
	img := image.NewProgram("fleet-agent", prog.MustAssemble(0)).WithBSS(".rdma", f.cfg.AgentBufPages*pg)
	opts := libtyche.DefaultLoadOptions()
	opts.Cores = []phys.CoreID{agentCore}
	opts.Devices = []phys.DeviceID{0}
	agent, err := cl.NewEnclave(img, opts)
	if err != nil {
		return nil, err
	}
	n.Agent, n.AgentImg = agent, img
	for c := 0; c < cores; c++ {
		cid := phys.CoreID(c)
		if cid == agentCore {
			continue
		}
		n.workers = append(n.workers, cid)
		if err := mon.Launch(core.InitialDomain, cid); err != nil {
			return nil, err
		}
		if _, err := mon.RunCore(cid, 10); err != nil {
			return nil, err
		}
	}
	n.cores = make(chan phys.CoreID, len(n.workers))
	for _, c := range n.workers {
		n.cores <- c
	}
	return n, nil
}

// endpoint builds one side of an attested channel anchored in a node's
// agent enclave, trusting peer's TPM root, monitor identity, and agent
// measurement.
func (f *Fleet) endpoint(n, peer *Node) (*dist.Endpoint, error) {
	buf, ok := n.Agent.SegmentRegion(".rdma")
	if !ok {
		return nil, fmt.Errorf("fleet: %s agent has no .rdma segment", n.Name)
	}
	meas, err := peer.AgentImg.Measurement(peer.Agent.Base())
	if err != nil {
		return nil, err
	}
	return &dist.Endpoint{
		Monitor:         n.Mon,
		TPM:             n.TPM,
		Domain:          n.Agent.ID(),
		Buffer:          buf,
		NIC:             0,
		PeerVerifier:    attest.NewVerifier(peer.TPM.EndorsementKey(), peer.Mon.Identity()),
		PeerMeasurement: &meas,
	}, nil
}

// openDigestChannel connects node n's agent to the control plane and
// flushes any digests buffered during bring-up, in chain order.
func (f *Fleet) openDigestChannel(n *Node) error {
	if n.SVC == nil {
		return nil
	}
	epN, err := f.endpoint(n, f.cp)
	if err != nil {
		return err
	}
	epCP, err := f.endpoint(f.cp, n)
	if err != nil {
		return err
	}
	conn, err := dist.Connect(epN, epCP, &dist.Wire{})
	if err != nil {
		return err
	}
	n.mu.Lock()
	n.conn, n.ep = conn, epN
	pending := n.pending
	n.pending = nil
	n.mu.Unlock()
	for _, raw := range pending {
		if err := f.shipDigest(n, raw); err != nil {
			return err
		}
	}
	return nil
}

// shipDigest is every node's rv Ship hook: send the digest over the
// node's attested channel and feed the control-plane verifier with
// what actually arrived. Digests emitted before the channel exists are
// buffered in order.
func (f *Fleet) shipDigest(n *Node, raw []byte) error {
	n.mu.Lock()
	if n.conn == nil {
		n.pending = append(n.pending, append([]byte(nil), raw...))
		n.mu.Unlock()
		return nil
	}
	conn, ep := n.conn, n.ep
	n.mu.Unlock()
	f.cpMu.Lock()
	defer f.cpMu.Unlock()
	got, err := conn.Send(ep, raw)
	if err != nil {
		return err
	}
	return f.vers[n.Index].Consume(got)
}

// Pulse drives every live node to a quiescent point (a short dedicated
// RunCores round over its worker cores), firing the monitors'
// checkpoints so pending digest intervals ship. Callers must not hold
// serving cores.
func (f *Fleet) Pulse() {
	for _, n := range f.Nodes {
		if n.Failed() {
			continue
		}
		// Take every serving core so no request is in flight during the
		// round.
		held := make([]phys.CoreID, 0, len(n.workers))
		for range n.workers {
			held = append(held, n.acquireCore())
		}
		if _, err := n.Mon.RunCores(5, n.workers...); err != nil {
			f.latch(fmt.Errorf("fleet: pulse %s: %w", n.Name, err))
		}
		for _, c := range held {
			n.releaseCore(c)
		}
	}
}

// nextNonce returns a fresh attestation nonce (unique per fleet).
func (f *Fleet) nextNonce() []byte {
	f.nonceMu.Lock()
	defer f.nonceMu.Unlock()
	f.nonce++
	return []byte(fmt.Sprintf("fleet-%d-%d", f.cfg.Seed, f.nonce))
}

func (f *Fleet) latch(err error) {
	if err == nil {
		return
	}
	f.errMu.Lock()
	defer f.errMu.Unlock()
	if f.firstErr == nil {
		f.firstErr = err
	}
}

// Err returns the first asynchronous control-plane error (node
// re-placement, pulse, drain timeout), if any.
func (f *Fleet) Err() error {
	f.errMu.Lock()
	defer f.errMu.Unlock()
	return f.firstErr
}

// allocBase carves a fleet-global tenant base: bump-down from the top
// of the identical per-node heap, never reused, so every assigned span
// is free on every node — including after kills and migrations.
func (f *Fleet) allocBase(pages uint64) phys.Addr {
	f.baseMu.Lock()
	defer f.baseMu.Unlock()
	f.nextBase -= phys.Addr(pages * pg)
	return f.nextBase
}

// buildTemplate assembles a service's golden image at its fleet-global
// base and derives the snapshot + expected measurement. The image is
// base-dependent (the spin loop's jump target is absolute), which is
// exactly why placement and migration restore at the same base.
func (f *Fleet) buildTemplate(spec ServiceSpec) *template {
	const pages = 2
	base := f.allocBase(pages)
	a := hw.NewAsm()
	a.Movi(3, spec.Delta)
	a.Add(1, 2, 3)
	if f.cfg.Spin > 0 {
		a.Movi(4, uint32(f.cfg.Spin))
		a.Movi(5, 1)
		a.Label("spin")
		a.Sub(4, 4, 5)
		a.Jnz(4, "spin")
	}
	a.Movi(0, uint32(core.CallReturn))
	a.Vmcall()
	a.Hlt()
	data := make([]byte, pages*pg)
	copy(data, a.MustAssemble(base))
	meas := core.ComputeMeasurement(base, []core.MeasuredRegion{
		{Region: phys.MakeRegion(base, pg), Content: data[:pg]},
	})
	return &template{
		spec:  spec,
		base:  base,
		pages: pages,
		meas:  meas,
		snap: &core.DomainSnapshot{
			Name:        spec.Name,
			Base:        uint64(base),
			Span:        pages * pg,
			Entry:       uint64(base),
			EntrySet:    true,
			Sealed:      true,
			Measurement: meas,
			Measured:    []core.MeasuredSpan{{Offset: 0, Size: pg}},
			Regions: []core.RegionSnapshot{
				{Offset: 0, Size: pages * pg, Rights: cap.MemRWX, Data: data},
			},
			Cores: f.cfg.CoresPerNode - 1,
		},
	}
}

// Deploy admits a service onto `replicas` distinct nodes.
func (f *Fleet) Deploy(spec ServiceSpec, replicas int) error {
	f.baseMu.Lock()
	if _, dup := f.tmpls[spec.Name]; dup {
		f.baseMu.Unlock()
		return fmt.Errorf("fleet: service %q already deployed", spec.Name)
	}
	f.baseMu.Unlock()
	tmpl := f.buildTemplate(spec)
	f.baseMu.Lock()
	f.tmpls[spec.Name] = tmpl
	f.baseMu.Unlock()
	for i := 0; i < replicas; i++ {
		if _, err := f.Place(spec.Name); err != nil {
			return err
		}
	}
	return nil
}

// Place admits one replica of a deployed service onto the live node
// with the fewest placements that does not already host it: restore
// from the golden snapshot at the service's fleet-global base, attest
// the restored domain against the expected measurement, register with
// the load balancer.
func (f *Fleet) Place(name string) (*Placement, error) {
	f.baseMu.Lock()
	tmpl := f.tmpls[name]
	f.baseMu.Unlock()
	if tmpl == nil {
		return nil, fmt.Errorf("fleet: unknown service %q", name)
	}
	hosting := f.lb.ReplicaNodes(name)
	var best *Node
	bestLoad := 0
	for _, n := range f.Nodes {
		if n.Failed() || hosting[n.Index] {
			continue
		}
		load := f.lb.NodeCount(n.Index)
		if best == nil || load < bestLoad {
			best, bestLoad = n, load
		}
	}
	if best == nil {
		return nil, fmt.Errorf("%w: %q", ErrNoCapacity, name)
	}
	return f.placeOn(best, tmpl)
}

func (f *Fleet) placeOn(n *Node, tmpl *template) (*Placement, error) {
	id, err := n.Mon.RestoreDomain(core.InitialDomain, n.CL.HeapNode(), n.workers, tmpl.snap)
	if err != nil {
		return nil, fmt.Errorf("fleet: admit %q on %s: %w", tmpl.spec.Name, n.Name, err)
	}
	if err := f.attestPlacement(n, id, tmpl.meas); err != nil {
		_ = n.Mon.ForceKill(id)
		return nil, fmt.Errorf("fleet: attest %q on %s: %w", tmpl.spec.Name, n.Name, err)
	}
	pl := &Placement{Service: tmpl.spec.Name, Node: n.Index, Dom: id, Base: tmpl.base, Delta: tmpl.spec.Delta}
	f.lb.Register(pl)
	return pl, nil
}

// attestPlacement verifies the full chain for a freshly admitted
// domain: TPM-quoted boot, monitor identity, signed domain report,
// sealed state, expected measurement.
func (f *Fleet) attestPlacement(n *Node, id core.DomainID, want tpm.Digest) error {
	nonce := f.nextNonce()
	ver := attest.NewVerifier(n.TPM.EndorsementKey(), n.Mon.Identity())
	q, err := n.Mon.BootQuote(nonce)
	if err != nil {
		return err
	}
	sess, err := ver.NewSession(q, nonce)
	if err != nil {
		return err
	}
	rep, err := n.Mon.Attest(id, nonce)
	if err != nil {
		return err
	}
	if err := sess.VerifyDomain(rep, nonce); err != nil {
		return err
	}
	if err := attest.RequireSealed(rep); err != nil {
		return err
	}
	return attest.RequireMeasurement(rep, want)
}

// ArmKill arms node i's fault injector to machine-check every worker
// core after `afterAccesses` memory accesses (per core), with an
// effectively unbounded count: once the node starts dying, it keeps
// dying. Deterministic: the same fleet history fires at the same
// points.
func (f *Fleet) ArmKill(i int, afterAccesses uint64) {
	n := f.Nodes[i]
	var faults []fault.Fault
	for _, c := range n.workers {
		faults = append(faults, fault.Fault{
			Kind: fault.MachineCheck, Core: c, After: afterAccesses, Count: 1 << 40,
		})
	}
	n.Inj = fault.NewInjector(faults...)
	n.Inj.Arm(n.Mach, n.TPM)
}

// FailNode is the control plane's node-death protocol: stop routing,
// drain in-flight requests, destroy the node's remaining tenant
// plaintext (forced scrub), and re-place every lost service at the
// same base on surviving nodes. Idempotent; safe from serving workers.
func (f *Fleet) FailNode(i int) {
	n := f.Nodes[i]
	if !n.failed.CompareAndSwap(false, true) {
		return
	}
	lost := f.lb.DeregisterNode(i)
	for _, pl := range lost {
		if err := pl.Drain(); err != nil {
			f.latch(fmt.Errorf("fleet: drain %s on %s: %w", pl.Service, n.Name, err))
		}
	}
	// Destroy surviving tenant instances on the dead node — machine
	// checks already killed (and scrubbed) the ones caught running.
	var alive []core.DomainID
	for _, pl := range lost {
		if d, err := n.Mon.Domain(pl.Dom); err == nil && d.State() != core.StateDead {
			alive = append(alive, pl.Dom)
		}
	}
	if len(alive) > 0 {
		if _, err := n.Mon.ForceKillAll(alive...); err != nil {
			f.latch(fmt.Errorf("fleet: scrub %s: %w", n.Name, err))
		}
	}
	for _, pl := range lost {
		if _, err := f.Place(pl.Service); err != nil {
			// Every survivor already hosting the service is capacity
			// loss, not a failure.
			if !errors.Is(err, ErrNoCapacity) {
				f.latch(err)
			}
		}
	}
}
