package fleet

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/tyche-sim/tyche/internal/core"
	"github.com/tyche-sim/tyche/internal/phys"
)

// Placement is one service instance on one node. live/inflight carry
// the drain protocol: Deregister flips live, then Drain spins until
// every request that won the tryAcquire race has released.
type Placement struct {
	Service string
	Node    int
	Dom     core.DomainID
	Base    phys.Addr
	Delta   uint32

	live     atomic.Bool
	inflight atomic.Int64
}

// tryAcquire claims one in-flight slot iff the placement is still
// routable. The increment happens before the liveness check so a
// concurrent Deregister either sees the request in the inflight count
// (and drains it) or the request sees dead and rolls back — no request
// can be in flight and invisible to Drain.
func (p *Placement) tryAcquire() bool {
	p.inflight.Add(1)
	if !p.live.Load() {
		p.inflight.Add(-1)
		return false
	}
	return true
}

func (p *Placement) release() { p.inflight.Add(-1) }

// Inflight returns the instantaneous in-flight request count.
func (p *Placement) Inflight() int64 { return p.inflight.Load() }

// Drain blocks until every in-flight request against this (already
// deregistered) placement has completed.
func (p *Placement) Drain() error {
	deadline := time.Now().Add(30 * time.Second)
	for p.inflight.Load() > 0 {
		if time.Now().After(deadline) {
			return errDrainTimeout
		}
		time.Sleep(50 * time.Microsecond)
	}
	return nil
}

var errDrainTimeout = timeoutError("fleet: drain timed out")

type timeoutError string

func (e timeoutError) Error() string { return string(e) }

// LoadBalancer routes requests round-robin over a service's live
// placements.
type LoadBalancer struct {
	mu   sync.Mutex
	reps map[string][]*Placement
	rr   map[string]uint64
}

func NewLoadBalancer() *LoadBalancer {
	return &LoadBalancer{reps: make(map[string][]*Placement), rr: make(map[string]uint64)}
}

// Register makes a placement routable.
func (lb *LoadBalancer) Register(p *Placement) {
	p.live.Store(true)
	lb.mu.Lock()
	defer lb.mu.Unlock()
	lb.reps[p.Service] = append(lb.reps[p.Service], p)
}

// Deregister freezes one placement (routing stops immediately; the
// caller drains). Returns false if it was not registered.
func (lb *LoadBalancer) Deregister(p *Placement) bool {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	list := lb.reps[p.Service]
	for i, q := range list {
		if q == p {
			p.live.Store(false)
			lb.reps[p.Service] = append(append([]*Placement(nil), list[:i]...), list[i+1:]...)
			return true
		}
	}
	return false
}

// DeregisterNode freezes every placement on a node and returns them
// (undrained).
func (lb *LoadBalancer) DeregisterNode(node int) []*Placement {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	var out []*Placement
	for svc, list := range lb.reps {
		keep := list[:0:0]
		for _, p := range list {
			if p.Node == node {
				p.live.Store(false)
				out = append(out, p)
			} else {
				keep = append(keep, p)
			}
		}
		lb.reps[svc] = keep
	}
	return out
}

// Pick acquires a routable placement for the service (round-robin),
// or nil when none is live. The caller must release() after the
// request completes.
func (lb *LoadBalancer) Pick(service string) *Placement {
	lb.mu.Lock()
	list := append([]*Placement(nil), lb.reps[service]...)
	start := lb.rr[service]
	lb.rr[service] = start + 1
	lb.mu.Unlock()
	if len(list) == 0 {
		return nil
	}
	for i := range list {
		p := list[(start+uint64(i))%uint64(len(list))]
		if p.tryAcquire() {
			return p
		}
	}
	return nil
}

// Placements snapshots a service's registered placements.
func (lb *LoadBalancer) Placements(service string) []*Placement {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	return append([]*Placement(nil), lb.reps[service]...)
}

// ReplicaNodes reports which node indexes currently host the service.
func (lb *LoadBalancer) ReplicaNodes(service string) map[int]bool {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	out := make(map[int]bool)
	for _, p := range lb.reps[service] {
		out[p.Node] = true
	}
	return out
}

// NodeCount returns how many placements a node hosts across services.
func (lb *LoadBalancer) NodeCount(node int) int {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	n := 0
	for _, list := range lb.reps {
		for _, p := range list {
			if p.Node == node {
				n++
			}
		}
	}
	return n
}

// LB exposes the fleet's load balancer.
func (f *Fleet) LB() *LoadBalancer { return f.lb }
