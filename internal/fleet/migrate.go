package fleet

import (
	"encoding/json"
	"fmt"
	"time"

	"github.com/tyche-sim/tyche/internal/core"
	"github.com/tyche-sim/tyche/internal/dist"
	"github.com/tyche-sim/tyche/internal/sched"
)

// Migrate live-migrates one placement of `service` from node `from` to
// node `to` over an attested channel between the two nodes' agent
// enclaves, carried on `wire` (pass an armed wire to exercise link
// faults; pass nil for a clean link).
//
// Protocol, in blackout order:
//
//  1. Freeze: deregister the placement and drain in-flight requests.
//  2. Snapshot: capture the quiescent domain (memory, capability
//     shape, entry config, parked vCPUs) under an epoch pin.
//  3. Ship: serialize and send over the node-to-node attested channel.
//     The payload is sealed to the channel (AEAD + transcript MAC), so
//     a tampered frame surfaces as dist.ErrTampered and a dropped one
//     as dist.ErrLinkLost before any target state exists.
//  4. Restore + re-attest: rebuild on the target at the same base; the
//     ordinary Seal path must reproduce the snapshot measurement, and
//     the control plane re-runs the full attestation chain against the
//     target node's TPM root.
//  5. Unfreeze: register the target placement — blackout ends here.
//  6. Depart: crypto-erase the source instance (DepartKill: forced
//     scrub + MKTME key erase). The domain's plaintext never outlives
//     its departure.
//
// Every failure before step 5 aborts cleanly: the source placement is
// re-registered untouched, and a failed restore leaves no half-state
// on the target (RestoreDomain force-kills its partial domain).
func (f *Fleet) Migrate(service string, from, to int, wire *dist.Wire) error {
	src, dst := f.Nodes[from], f.Nodes[to]
	if dst.Failed() {
		return fmt.Errorf("fleet: migration target %s is dead", dst.Name)
	}
	f.baseMu.Lock()
	tmpl := f.tmpls[service]
	f.baseMu.Unlock()
	if tmpl == nil {
		return fmt.Errorf("fleet: unknown service %q", service)
	}
	var pl *Placement
	for _, p := range f.lb.Placements(service) {
		if p.Node == from {
			pl = p
			break
		}
	}
	if pl == nil {
		return fmt.Errorf("fleet: %q has no placement on %s", service, src.Name)
	}

	// Step 1: freeze. Blackout starts the moment routing stops.
	f.lb.Deregister(pl)
	start := time.Now()
	if err := pl.Drain(); err != nil {
		f.lb.Register(pl)
		return fmt.Errorf("fleet: migrate %q: %w", service, err)
	}
	abort := func(stage string, err error) error {
		// Source untouched: re-register and report.
		f.lb.Register(pl)
		return fmt.Errorf("fleet: migrate %q %s->%s: %s: %w", service, src.Name, dst.Name, stage, err)
	}

	// Step 2: snapshot the quiescent source.
	snap, err := src.Mon.SnapshotDomain(pl.Dom)
	if err != nil {
		return abort("snapshot", err)
	}
	payload, err := json.Marshal(snap)
	if err != nil {
		return abort("encode", err)
	}

	// Step 3: ship over a fresh node-to-node attested channel.
	if wire == nil {
		wire = &dist.Wire{}
	}
	epSrc, err := f.endpoint(src, dst)
	if err != nil {
		return abort("endpoint", err)
	}
	epDst, err := f.endpoint(dst, src)
	if err != nil {
		return abort("endpoint", err)
	}
	conn, err := dist.Connect(epSrc, epDst, wire)
	if err != nil {
		return abort("connect", err)
	}
	got, err := conn.Send(epSrc, payload)
	if err != nil {
		// Lost or tampered in flight: nothing arrived, nothing was
		// restored; the source keeps serving.
		return abort("transfer", err)
	}

	// Step 4: restore from the received bytes and re-attest.
	var arrived core.DomainSnapshot
	if err := json.Unmarshal(got, &arrived); err != nil {
		return abort("decode", err)
	}
	newID, err := dst.Mon.RestoreDomain(core.InitialDomain, dst.CL.HeapNode(), dst.workers, &arrived)
	if err != nil {
		return abort("restore", err)
	}
	if err := f.attestPlacement(dst, newID, tmpl.meas); err != nil {
		_ = dst.Mon.ForceKill(newID)
		return abort("re-attest", err)
	}

	// Step 5: unfreeze on the target — blackout ends.
	moved := &Placement{Service: service, Node: to, Dom: newID, Base: tmpl.base, Delta: pl.Delta}
	f.lb.Register(moved)
	f.recordBlackout(uint64(time.Since(start).Nanoseconds()))

	// Step 6: the source departs with a forced crypto-erase.
	if err := src.Mon.DepartKill(pl.Dom); err != nil {
		return fmt.Errorf("fleet: migrate %q: depart: %w", service, err)
	}
	return nil
}

func (f *Fleet) recordBlackout(ns uint64) {
	f.blackMu.Lock()
	defer f.blackMu.Unlock()
	f.blackouts = append(f.blackouts, ns)
}

// Blackouts returns every completed migration's blackout
// (deregister-to-reregister) in nanoseconds.
func (f *Fleet) Blackouts() []uint64 {
	f.blackMu.Lock()
	defer f.blackMu.Unlock()
	return append([]uint64(nil), f.blackouts...)
}

// BlackoutP99 returns the 99th-percentile blackout in nanoseconds
// (0 when no migration completed).
func (f *Fleet) BlackoutP99() uint64 {
	bs := f.Blackouts()
	if len(bs) == 0 {
		return 0
	}
	return sched.Percentile(bs, 99)
}
