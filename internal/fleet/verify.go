package fleet

import (
	"fmt"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/core"
	"github.com/tyche-sim/tyche/internal/trace"
)

// NodeAudit is one node's fleet-verification verdict.
type NodeAudit struct {
	Node string
	// SelfErr is the node's own sharded checker verdict (nil = clean).
	SelfErr error
	// Digests counts hash-chained digests the control plane consumed
	// from this node.
	Digests uint64
	// Flags are the control-plane verifier's findings: reported
	// violations, digest-chain breaks, and replayed/diverging
	// intervals.
	Flags []string
}

// Audit finalizes fleet-wide runtime verification: every node ships
// its final digest interval (unsent violations ride along), then the
// control plane finalizes each node's chain and reports per-node
// verdicts. Returns nil, nil when the build carries no tracing.
func (f *Fleet) Audit() ([]NodeAudit, error) {
	if !trace.Compiled {
		return nil, nil
	}
	var out []NodeAudit
	for i, n := range f.Nodes {
		if n.SVC == nil {
			continue
		}
		a := NodeAudit{Node: n.Name, SelfErr: n.SVC.Finalize()}
		ver := f.vers[i]
		a.Flags = ver.Finalize()
		a.Digests = ver.Digests()
		out = append(out, a)
	}
	return out, f.Err()
}

// SeedViolation plants a deliberate isolation violation on node i: a
// scratch domain takes an exclusive grant, the monitor kills it, and
// then the node's "hardware" emits a share by the dead domain — the
// same single-node seeding C21 uses, here to prove the fleet verifier
// localizes the fault to exactly one node's digest chain. No-op
// without tracing.
func (f *Fleet) SeedViolation(i int) error {
	if !trace.Compiled {
		return nil
	}
	n := f.Nodes[i]
	scratch, err := n.Mon.CreateDomain(core.InitialDomain, "seeded-violation")
	if err != nil {
		return fmt.Errorf("fleet: seed violation on %s: %w", n.Name, err)
	}
	rg, err := n.CL.Alloc(1)
	if err != nil {
		return fmt.Errorf("fleet: seed violation on %s: %w", n.Name, err)
	}
	if _, err := n.Mon.Grant(core.InitialDomain, n.CL.HeapNode(), scratch,
		cap.MemResource(rg), cap.MemRW, cap.CleanNone); err != nil {
		return fmt.Errorf("fleet: seed violation on %s: %w", n.Name, err)
	}
	if err := n.Mon.ForceKill(scratch); err != nil {
		return fmt.Errorf("fleet: seed violation on %s: %w", n.Name, err)
	}
	n.Mach.Trace(trace.GlobalCore, trace.KShare, uint64(scratch), 0, 99, 0x1000, 4096)
	return nil
}
