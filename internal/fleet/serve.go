package fleet

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/tyche-sim/tyche/internal/core"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/phys"
)

// invokeBudget bounds one request's simulated execution; it covers the
// service body plus the configured spin loop with wide margin.
const invokeBudget = 1_000_000

// ServeStats is one Serve call's outcome.
type ServeStats struct {
	Requests  uint64 // completed with a verified-correct reply
	Retries   uint64 // re-routed after a node fault or routing race
	NodeKills int    // nodes the control plane declared dead mid-run
}

// leakError is fatal: a reply did not match its service's transform,
// meaning isolation between tenants (or a half-migrated state) leaked
// into a response.
type leakError struct{ msg string }

func (e *leakError) Error() string { return e.msg }

// IsLeak reports whether err is a cross-tenant leak verdict.
func IsLeak(err error) bool {
	_, ok := err.(*leakError)
	return ok
}

// errLatch keeps the first fatal serving error.
type errLatch struct {
	mu  sync.Mutex
	err error
}

func (l *errLatch) set(err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err == nil {
		l.err = err
	}
}

func (l *errLatch) get() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

var errNodeFault = &nodeFaultError{}

type nodeFaultError struct{}

func (e *nodeFaultError) Error() string { return "fleet: node machine check" }

// invoke runs one request on a placement: a mediated Call into the
// tenant on a held worker core, reply in Regs[1]. Machine checks — and
// any error on a node whose injector has started firing — surface as
// errNodeFault so the serving loop can fail the node instead of
// aborting the run.
func (f *Fleet) invoke(n *Node, pl *Placement, c phys.CoreID, arg uint32) (uint32, error) {
	nodeDying := func() bool {
		return n.Failed() || (n.Inj != nil && len(n.Inj.Fired()) > 0)
	}
	cpu := n.Mach.Cores[int(c)]
	cpu.Regs[2] = uint64(arg)
	if err := n.Mon.Call(c, pl.Dom); err != nil {
		if nodeDying() {
			return 0, errNodeFault
		}
		return 0, fmt.Errorf("call: %w", err)
	}
	res, err := n.Mon.RunCore(c, invokeBudget)
	if err != nil {
		if nodeDying() {
			return 0, errNodeFault
		}
		return 0, fmt.Errorf("run: %w", err)
	}
	switch res.Trap.Kind {
	case hw.TrapMachineCheck:
		return 0, errNodeFault
	case hw.TrapFault, hw.TrapIllegal:
		if nodeDying() {
			return 0, errNodeFault
		}
		return 0, fmt.Errorf("tenant trap: %v", res.Trap)
	}
	return uint32(cpu.Regs[1]), nil
}

// Serve pushes `requests` requests round-robin over `services`,
// load-balanced across the fleet, with `workers` host-side goroutines
// (default min(8, GOMAXPROCS)). Requests are issued in waves; between
// waves every live node is pulsed to a quiescent point so runtime-
// verification digests ship mid-serving, not only at the end.
//
// When a request dies on a machine check the control plane runs the
// node-death protocol (drain, crypto-erase, re-place) and the request
// retries on a surviving replica. Every reply is checked against the
// service transform; a mismatch is a cross-tenant leak and aborts.
func (f *Fleet) Serve(services []string, requests int, workers int) (ServeStats, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if workers > 8 {
			workers = 8
		}
	}
	var stats ServeStats
	var retries atomic.Uint64
	fatal := &errLatch{}
	const waves = 4
	perWave := (requests + waves - 1) / waves
	done := 0
	for w := 0; w < waves && done < requests; w++ {
		n := perWave
		if done+n > requests {
			n = requests - done
		}
		f.serveWave(services, done, n, workers, &retries, fatal)
		if err := fatal.get(); err != nil {
			return stats, err
		}
		done += n
		stats.Requests += uint64(n)
		// Quiescent pulse: checkpoints fire, digest intervals ship.
		f.Pulse()
		if err := f.Err(); err != nil {
			return stats, err
		}
	}
	stats.Retries = retries.Load()
	for _, n := range f.Nodes {
		if n.Failed() {
			stats.NodeKills++
		}
	}
	return stats, nil
}

func (f *Fleet) serveWave(services []string, offset, count, workers int, retries *atomic.Uint64, fatal *errLatch) {
	reqs := make(chan int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range reqs {
				if fatal.get() != nil {
					continue
				}
				svc := services[i%len(services)]
				arg := uint32(i) & 0xffff
				if err := f.serveOne(svc, arg, retries); err != nil {
					fatal.set(err)
				}
			}
		}()
	}
	for i := offset; i < offset+count; i++ {
		reqs <- i
	}
	close(reqs)
	wg.Wait()
}

// serveOne routes and executes a single request, retrying across the
// fleet until a correct reply lands or no replica remains.
func (f *Fleet) serveOne(service string, arg uint32, retries *atomic.Uint64) error {
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			retries.Add(1)
		}
		if attempt > 64 {
			return fmt.Errorf("fleet: request to %q starved after %d attempts", service, attempt)
		}
		pl := f.lb.Pick(service)
		if pl == nil {
			if f.allDead() {
				return fmt.Errorf("fleet: no live replica of %q", service)
			}
			runtime.Gosched()
			continue
		}
		n := f.Nodes[pl.Node]
		c := n.acquireCore()
		got, err := f.invoke(n, pl, c, arg)
		n.releaseCore(c)
		pl.release()
		if err == errNodeFault {
			// The injector took the node down mid-request: run the
			// death protocol once, retry elsewhere.
			f.FailNode(pl.Node)
			continue
		}
		if err != nil {
			return fmt.Errorf("fleet: %q on %s: %w", service, n.Name, err)
		}
		want := arg + pl.Delta
		if got != want {
			return &leakError{fmt.Sprintf(
				"fleet: LEAK %q on %s: reply %#x != %#x (arg %#x, delta %#x)",
				service, n.Name, got, want, arg, pl.Delta)}
		}
		return nil
	}
}

func (f *Fleet) allDead() bool {
	for _, n := range f.Nodes {
		if !n.Failed() {
			return false
		}
	}
	return true
}

// LiveNodes counts nodes not declared dead.
func (f *Fleet) LiveNodes() int {
	live := 0
	for _, n := range f.Nodes {
		if !n.Failed() {
			live++
		}
	}
	return live
}

// Stats aggregates migration counters fleet-wide.
func (f *Fleet) Stats() core.Stats {
	var out core.Stats
	for _, n := range f.Nodes {
		s := n.Mon.Stats()
		out.MigrationsIn += s.MigrationsIn
		out.MigrationsOut += s.MigrationsOut
	}
	return out
}
