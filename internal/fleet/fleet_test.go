package fleet

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"github.com/tyche-sim/tyche/internal/core"
	"github.com/tyche-sim/tyche/internal/dist"
	"github.com/tyche-sim/tyche/internal/fault"
	"github.com/tyche-sim/tyche/internal/trace"
)

func newTestFleet(t *testing.T, nodes int) *Fleet {
	t.Helper()
	f, err := New(Config{
		Nodes:        nodes,
		CoresPerNode: 3,
		MemBytes:     16 << 20,
		Seed:         42,
		Spin:         25,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// auditClean finalizes fleet verification and fails the test on any
// node's violation or chain flag.
func auditClean(t *testing.T, f *Fleet) {
	t.Helper()
	audits, err := f.Audit()
	if err != nil {
		t.Fatalf("audit: %v", err)
	}
	if !trace.Compiled {
		return
	}
	for _, a := range audits {
		if a.SelfErr != nil {
			t.Errorf("%s self-verdict: %v", a.Node, a.SelfErr)
		}
		if len(a.Flags) != 0 {
			t.Errorf("%s flagged by fleet verifier: %v", a.Node, a.Flags)
		}
		if a.Digests < 2 {
			t.Errorf("%s shipped %d digests, want >= 2", a.Node, a.Digests)
		}
	}
}

func TestFleetPlacementAndServing(t *testing.T) {
	f := newTestFleet(t, 3)
	if err := f.Deploy(ServiceSpec{Name: "alpha", Delta: 100}, 2); err != nil {
		t.Fatal(err)
	}
	if err := f.Deploy(ServiceSpec{Name: "beta", Delta: 9000}, 2); err != nil {
		t.Fatal(err)
	}
	// Distinct nodes per replica.
	for _, svc := range []string{"alpha", "beta"} {
		if n := len(f.LB().ReplicaNodes(svc)); n != 2 {
			t.Fatalf("%s on %d nodes, want 2", svc, n)
		}
	}
	stats, err := f.Serve([]string{"alpha", "beta"}, 400, 4)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Requests != 400 {
		t.Fatalf("served %d requests, want 400", stats.Requests)
	}
	if stats.NodeKills != 0 {
		t.Fatalf("unexpected node kills: %d", stats.NodeKills)
	}
	auditClean(t, f)
}

func TestFleetLiveMigration(t *testing.T) {
	f := newTestFleet(t, 2)
	if err := f.Deploy(ServiceSpec{Name: "pay", Delta: 777}, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Serve([]string{"pay"}, 50, 2); err != nil {
		t.Fatal(err)
	}
	pl := f.LB().Placements("pay")[0]
	from := pl.Node
	to := 1 - from
	oldDom := pl.Dom
	if err := f.Migrate("pay", from, to, nil); err != nil {
		t.Fatal(err)
	}
	// The placement moved, the source instance is dead (crypto-erased
	// on departure), and both sides counted the migration.
	moved := f.LB().Placements("pay")
	if len(moved) != 1 || moved[0].Node != to {
		t.Fatalf("placement after migration: %+v", moved)
	}
	d, err := f.Nodes[from].Mon.Domain(oldDom)
	if err != nil {
		t.Fatal(err)
	}
	if d.State() != core.StateDead {
		t.Fatalf("source instance state %v, want dead", d.State())
	}
	// MigrationsIn counts every restore: the initial admission plus the
	// live migration.
	s := f.Stats()
	if s.MigrationsOut != 1 || s.MigrationsIn != 2 {
		t.Fatalf("migration counters out=%d in=%d, want 1/2", s.MigrationsOut, s.MigrationsIn)
	}
	if len(f.Blackouts()) != 1 || f.BlackoutP99() == 0 {
		t.Fatalf("blackout not recorded: %v", f.Blackouts())
	}
	// The moved instance serves with the same transform.
	if _, err := f.Serve([]string{"pay"}, 50, 2); err != nil {
		t.Fatal(err)
	}
	auditClean(t, f)
}

// TestFleetMigrationAbortsCleanly covers the link-fault satellite: a
// dropped migration frame and a tampered migration payload both abort
// with the source intact and no half-state on the target.
func TestFleetMigrationAbortsCleanly(t *testing.T) {
	f := newTestFleet(t, 2)
	if err := f.Deploy(ServiceSpec{Name: "idx", Delta: 31}, 1); err != nil {
		t.Fatal(err)
	}
	pl := f.LB().Placements("idx")[0]
	from, to := pl.Node, 1-pl.Node
	targetDomains := len(f.Nodes[to].Mon.Domains())

	// Dropped in flight: the deterministic link fault discards the
	// migration frame; the sender sees ErrLinkLost.
	wire := &dist.Wire{}
	wire.Arm([]fault.Fault{{Kind: fault.LinkDrop}})
	err := f.Migrate("idx", from, to, wire)
	if !errors.Is(err, dist.ErrLinkLost) {
		t.Fatalf("dropped frame: err = %v, want ErrLinkLost", err)
	}
	if wire.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", wire.Dropped)
	}

	// Tampered in flight: a flipped ciphertext byte must surface as
	// ErrTampered end-to-end.
	wire = &dist.Wire{}
	wire.Corrupt = func(frame []byte) []byte {
		frame[len(frame)-40] ^= 0x01
		return frame
	}
	err = f.Migrate("idx", from, to, wire)
	if !errors.Is(err, dist.ErrTampered) {
		t.Fatalf("tampered frame: err = %v, want ErrTampered", err)
	}

	// Both aborts left the source serving and the target untouched.
	after := f.LB().Placements("idx")
	if len(after) != 1 || after[0].Node != from || after[0].Dom != pl.Dom {
		t.Fatalf("source placement disturbed by abort: %+v", after)
	}
	if got := len(f.Nodes[to].Mon.Domains()); got != targetDomains {
		t.Fatalf("target grew %d domains during aborted migrations", got-targetDomains)
	}
	if _, err := f.Serve([]string{"idx"}, 40, 2); err != nil {
		t.Fatal(err)
	}

	// A clean wire completes the same migration.
	if err := f.Migrate("idx", from, to, nil); err != nil {
		t.Fatal(err)
	}
	auditClean(t, f)
}

func TestFleetKillDuringServing(t *testing.T) {
	f := newTestFleet(t, 3)
	if err := f.Deploy(ServiceSpec{Name: "alpha", Delta: 5}, 2); err != nil {
		t.Fatal(err)
	}
	if err := f.Deploy(ServiceSpec{Name: "beta", Delta: 600}, 2); err != nil {
		t.Fatal(err)
	}
	// Pick a victim that hosts something and kill it early in the run.
	victim := -1
	for i := range f.Nodes {
		if f.LB().NodeCount(i) > 0 {
			victim = i
			break
		}
	}
	f.ArmKill(victim, 2000)
	stats, err := f.Serve([]string{"alpha", "beta"}, 600, 4)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Requests != 600 {
		t.Fatalf("served %d, want 600 (every request must complete despite the kill)", stats.Requests)
	}
	if stats.NodeKills != 1 || !f.Nodes[victim].Failed() {
		t.Fatalf("node kills = %d (victim failed=%v), want the armed node dead",
			stats.NodeKills, f.Nodes[victim].Failed())
	}
	if stats.Retries == 0 {
		t.Fatal("kill mid-serving should have forced retries")
	}
	// Every service still has at least one live replica, none on the
	// dead node.
	for _, svc := range []string{"alpha", "beta"} {
		hosts := f.LB().ReplicaNodes(svc)
		if len(hosts) == 0 {
			t.Fatalf("%s has no live replica after the kill", svc)
		}
		if hosts[victim] {
			t.Fatalf("%s still routed to the dead node", svc)
		}
	}
	if err := f.Err(); err != nil {
		t.Fatalf("control-plane error: %v", err)
	}
	auditClean(t, f)
}

// TestFleetServeDuringMigration races the serving loop against live
// migrations (the CI race leg's target).
func TestFleetServeDuringMigration(t *testing.T) {
	f := newTestFleet(t, 3)
	if err := f.Deploy(ServiceSpec{Name: "alpha", Delta: 21}, 2); err != nil {
		t.Fatal(err)
	}
	if err := f.Deploy(ServiceSpec{Name: "beta", Delta: 4000}, 2); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var serveErr error
	var stats ServeStats
	wg.Add(1)
	go func() {
		defer wg.Done()
		stats, serveErr = f.Serve([]string{"alpha", "beta"}, 400, 4)
	}()
	// Chase "alpha" around the fleet while requests are in flight.
	migrations := 0
	for hop := 0; hop < 3; hop++ {
		pls := f.LB().Placements("alpha")
		if len(pls) == 0 {
			break
		}
		pl := pls[0]
		to := -1
		hosts := f.LB().ReplicaNodes("alpha")
		for i := range f.Nodes {
			if i != pl.Node && !hosts[i] && !f.Nodes[i].Failed() {
				to = i
				break
			}
		}
		if to < 0 {
			break
		}
		if err := f.Migrate("alpha", pl.Node, to, nil); err != nil {
			t.Errorf("hop %d: %v", hop, err)
			break
		}
		migrations++
	}
	wg.Wait()
	if serveErr != nil {
		t.Fatalf("serving failed during migration: %v", serveErr)
	}
	if stats.Requests != 400 {
		t.Fatalf("served %d, want 400", stats.Requests)
	}
	if migrations == 0 {
		t.Fatal("no migration completed")
	}
	// Four initial admissions plus one restore per migration.
	s := f.Stats()
	if s.MigrationsOut != uint64(migrations) || s.MigrationsIn != uint64(4+migrations) {
		t.Fatalf("migration counters out=%d in=%d, want %d/%d",
			s.MigrationsOut, s.MigrationsIn, migrations, 4+migrations)
	}
	auditClean(t, f)
}

// TestFleetVerifierFlagsSeededNode seeds a violation on exactly one
// node and requires the fleet verifier to localize it there.
func TestFleetVerifierFlagsSeededNode(t *testing.T) {
	if !trace.Compiled {
		t.Skip("tracing compiled out")
	}
	f := newTestFleet(t, 3)
	if err := f.Deploy(ServiceSpec{Name: "alpha", Delta: 1}, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Serve([]string{"alpha"}, 80, 2); err != nil {
		t.Fatal(err)
	}
	const seeded = 1
	if err := f.SeedViolation(seeded); err != nil {
		t.Fatal(err)
	}
	audits, err := f.Audit()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range audits {
		if a.Node == f.Nodes[seeded].Name {
			if a.SelfErr == nil || !strings.Contains(a.SelfErr.Error(), "dead domain") {
				t.Errorf("seeded node self-verdict = %v, want dead-domain violation", a.SelfErr)
			}
			found := false
			for _, flag := range a.Flags {
				if strings.Contains(flag, "dead domain") {
					found = true
				}
			}
			if !found {
				t.Errorf("fleet verifier did not flag the seeded node: %v", a.Flags)
			}
			continue
		}
		if a.SelfErr != nil || len(a.Flags) != 0 {
			t.Errorf("innocent %s flagged: self=%v flags=%v", a.Node, a.SelfErr, a.Flags)
		}
	}
}
