// Package rv is the always-on runtime-verification service: the glue
// that turns the sharded incremental trace checker (trace/check) into
// a live production monitor-of-the-monitor. Attach wires one machine
// up end to end — tracer, per-ring shard delivery, optional 1-in-N
// sampling, the monitor's quiescent-point checkpoint hook — and, when
// a Ship function is given, emits one hash-chained trace digest per
// stable merge for a remote verifier (check.RemoteVerifier) on the far
// side of an attested channel (internal/dist).
//
// Cost model: the hot emit path gains one per-ring shard delivery
// (shard-local mutex, zero allocations for the sample-eligible kinds);
// cross-core property resolution happens only at quiescent points. No
// simulated cycles are ever consumed, so cycle histories are
// bit-identical with the service on or off — the C21 experiment gates
// both that and the <5% wall-clock overhead at 8-core full load.
//
// Parallel reclamation (core.Monitor.SetReclaimWorkers) is covered
// without special cases: a partitioned drain round emits one
// KDrainBegin/KDrainEnd frame whose single coalesced shootdown round
// the checker audits (trace/check property 6), the drain doorbell
// remains the service's merge point, and the shipped digests carry the
// drain-frame tally so the remote verifier cross-checks it like every
// other structural count.
package rv

import (
	"errors"
	"sync"

	"github.com/tyche-sim/tyche/internal/core"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/trace"
	"github.com/tyche-sim/tyche/internal/trace/check"
)

// ErrNotCompiled reports that the tracer is compiled out (notrace
// build tag), so runtime verification cannot attach.
var ErrNotCompiled = errors.New("rv: tracing compiled out (notrace build)")

// Options configures Attach.
type Options struct {
	// Node names this machine in digests (defaults to "node").
	Node string
	// SampleN > 1 samples the high-rate event kinds 1-in-N
	// (trace.Sampleable); safety-critical kinds stay exact. <= 1 is
	// exact mode, where event counts still reconcile with Stats().
	SampleN int
	// PerRing is the tracer ring capacity (trace.DefaultRingEntries
	// when 0). Ignored when Tracer is given.
	PerRing int
	// Tracer, when non-nil, augments an existing (not yet installed)
	// tracer instead of building one: Attach adds the shard sink and
	// sampling, and the CALLER installs the tracer afterwards with
	// SetTracer. When nil, Attach builds and installs its own.
	Tracer *trace.Tracer
	// Ship, when non-nil, transports each interval's encoded digest
	// (e.g. over a dist.Conn). Called synchronously from the monitor's
	// checkpoint; errors are latched and reported by Err.
	Ship func(raw []byte) error
}

// Service is one machine's attached runtime verification.
type Service struct {
	tr *trace.Tracer
	sh *check.Sharded

	mu      sync.Mutex
	db      *check.DigestBuilder
	ship    func([]byte) error
	shipErr error
	shipped uint64
	// sent tallies violation messages already carried by a shipped
	// digest, so the final digest can report exactly the remainder
	// (eager shard-local detections surface only at End).
	sent  map[string]int
	final bool
}

// Attach wires runtime verification onto the machine/monitor pair and
// returns the running service. The sharded checker observes the trace
// from KBoot on; the monitor's checkpoint hook is claimed for the
// service's merge step.
func Attach(mach *hw.Machine, mon *core.Monitor, opts Options) (*Service, error) {
	if !trace.Compiled {
		return nil, ErrNotCompiled
	}
	if opts.Node == "" {
		opts.Node = "node"
	}
	tr := opts.Tracer
	if tr == nil {
		tr = mach.NewTracer(opts.PerRing)
	}
	sh := check.NewSharded(tr)
	tr.AttachSharded(sh)
	if opts.SampleN > 1 {
		tr.SetSampling(opts.SampleN)
	}
	svc := &Service{
		tr:   tr,
		sh:   sh,
		db:   check.NewDigestBuilder(opts.Node, opts.SampleN),
		ship: opts.Ship,
		sent: make(map[string]int),
	}
	mon.SetCheckpoint(svc.checkpoint)
	if opts.Tracer == nil {
		mach.SetTracer(tr)
	}
	return svc, nil
}

// checkpoint is the monitor's quiescent-point hook: merge the shards
// and, in shipping mode, emit the interval's digest.
func (s *Service) checkpoint() {
	rep := s.sh.Merge()
	if !rep.Merged {
		return
	}
	s.digest(rep, false)
}

// digest builds and ships one digest for a stable merge. Empty
// non-final intervals (no structural events, no new violations) are
// skipped so checkpoint-dense runs don't flood the channel.
func (s *Service) digest(rep check.MergeReport, isFinal bool) {
	if s.ship == nil {
		return
	}
	if len(rep.Events) == 0 && len(rep.NewViolations) == 0 && !isFinal {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_, raw, err := s.db.Build(rep, s.sh.Counts(), s.sh.ShardStats(), s.tr.SampledOut())
	if err == nil {
		for _, v := range rep.NewViolations {
			s.sent[v.Msg]++
		}
		err = s.ship(raw)
		s.shipped++
	}
	if err != nil && s.shipErr == nil {
		s.shipErr = err
	}
}

// Finalize closes the service once the run is quiescent: a last merge,
// the checker's end-of-trace validation, and — in shipping mode — a
// final digest carrying the structural tail plus every violation not
// yet reported (eager shard-local detections surface here). Idempotent;
// returns Err.
func (s *Service) Finalize() error {
	s.mu.Lock()
	if s.final {
		s.mu.Unlock()
		return s.Err()
	}
	s.final = true
	s.mu.Unlock()

	rep := s.sh.Merge()
	s.sh.End()
	final := check.MergeReport{Merged: true, Events: rep.Events, Seen: s.sh.Seen()}
	s.mu.Lock()
	unsent := make(map[string]int, len(s.sent))
	for msg, n := range s.sent {
		unsent[msg] = -n
	}
	s.mu.Unlock()
	for _, v := range s.sh.Violations() {
		unsent[v.Msg]++
		if unsent[v.Msg] > 0 {
			final.NewViolations = append(final.NewViolations, v)
		}
	}
	s.digest(final, true)
	return s.Err()
}

// Err finalises the checker and reports the verdict: invariant
// violations, or a latched digest-shipping error.
func (s *Service) Err() error {
	if err := s.sh.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shipErr
}

// Checker exposes the sharded checker (counts, merge stats, verdicts).
func (s *Service) Checker() *check.Sharded { return s.sh }

// Tracer exposes the service's tracer.
func (s *Service) Tracer() *trace.Tracer { return s.tr }

// Sampled reports whether the service runs in sampled (inexact-tally)
// mode.
func (s *Service) Sampled() bool { return s.tr.SampleN() > 1 }

// Shipped returns how many digests have been emitted.
func (s *Service) Shipped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shipped
}
