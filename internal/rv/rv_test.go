package rv

import (
	"strings"
	"testing"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/core"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/tpm"
	"github.com/tyche-sim/tyche/internal/trace"
	"github.com/tyche-sim/tyche/internal/trace/check"
)

// bootPair builds one machine/monitor pair for service-level tests.
func bootPair(t *testing.T) (*hw.Machine, *core.Monitor) {
	t.Helper()
	mach, err := hw.NewMachine(hw.Config{MemBytes: 8 << 20, NumCores: 2})
	if err != nil {
		t.Fatal(err)
	}
	rot, err := tpm.New(nil)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := core.Boot(core.BootConfig{Machine: mach, TPM: rot})
	if err != nil {
		t.Fatal(err)
	}
	return mach, mon
}

// TestAttachNotCompiled pins the notrace behaviour: the service must
// refuse to attach rather than silently verify nothing.
func TestAttachNotCompiled(t *testing.T) {
	if trace.Compiled {
		t.Skip("tracing compiled in")
	}
	mach, mon := bootPair(t)
	if _, err := Attach(mach, mon, Options{}); err != ErrNotCompiled {
		t.Fatalf("Attach under notrace = %v, want ErrNotCompiled", err)
	}
}

// TestServiceCleanRun wires the full pipeline — service, digest chain,
// remote verifier — over a clean kill-with-scrub history.
func TestServiceCleanRun(t *testing.T) {
	if !trace.Compiled {
		t.Skip("tracing compiled out (notrace)")
	}
	mach, mon := bootPair(t)
	ver := check.NewRemoteVerifier("clean-node")
	svc, err := Attach(mach, mon, Options{
		Node: "clean-node",
		Ship: func(raw []byte) error { return ver.Consume(raw) },
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := mon.CreateDomain(core.InitialDomain, "tenant")
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.ForceKill(d); err != nil {
		t.Fatal(err)
	}
	if err := svc.Finalize(); err != nil {
		t.Fatalf("clean run flagged: %v", err)
	}
	if svc.Err() != nil {
		t.Fatalf("Err after Finalize: %v", svc.Err())
	}
	if svc.Shipped() == 0 {
		t.Fatal("no digests shipped")
	}
	if flags := ver.Finalize(); len(flags) != 0 {
		t.Fatalf("verifier flagged a clean node: %q", flags)
	}
	if ver.Digests() != svc.Shipped() {
		t.Fatalf("verifier consumed %d digests, node shipped %d", ver.Digests(), svc.Shipped())
	}
	if svc.Sampled() {
		t.Fatal("exact-mode service reports sampled")
	}
}

// TestServiceReportsSeededViolation seeds a dead-domain use; the node
// must flag itself AND the shipped digests must carry the verdict to
// the remote verifier, whose independent replay agrees (no divergence).
func TestServiceReportsSeededViolation(t *testing.T) {
	if !trace.Compiled {
		t.Skip("tracing compiled out (notrace)")
	}
	mach, mon := bootPair(t)
	ver := check.NewRemoteVerifier("bad-node")
	svc, err := Attach(mach, mon, Options{
		Node: "bad-node",
		Ship: func(raw []byte) error { return ver.Consume(raw) },
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := mon.CreateDomain(core.InitialDomain, "victim")
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.ForceKill(d); err != nil {
		t.Fatal(err)
	}
	mach.Trace(trace.GlobalCore, trace.KShare, uint64(d), 0, 1, 0x1000, 4096)
	verr := svc.Finalize()
	if verr == nil || !strings.Contains(verr.Error(), "dead domain") {
		t.Fatalf("Finalize = %v, want dead-domain violation", verr)
	}
	reported, diverged := false, false
	for _, f := range ver.Finalize() {
		if strings.Contains(f, "reported violation") && strings.Contains(f, "dead domain") {
			reported = true
		}
		if strings.Contains(f, "diverges") || strings.Contains(f, "chain") {
			diverged = true
		}
	}
	if !reported {
		t.Fatal("verifier never saw the node's violation verdict")
	}
	if diverged {
		t.Fatalf("verifier disagreed with an honestly-reporting node: %q", ver.Flags())
	}
}

// TestServiceSampledMode pins the sampling plumbing: Attach installs
// the 1-in-N regime on the tracer and the service reports it.
func TestServiceSampledMode(t *testing.T) {
	if !trace.Compiled {
		t.Skip("tracing compiled out (notrace)")
	}
	mach, mon := bootPair(t)
	svc, err := Attach(mach, mon, Options{Node: "sampled-node", SampleN: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !svc.Sampled() {
		t.Fatal("SampleN=4 service not in sampled mode")
	}
	if got := svc.Tracer().SampleN(); got != 4 {
		t.Fatalf("tracer SampleN = %d, want 4", got)
	}
	d, err := mon.CreateDomain(core.InitialDomain, "tenant")
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.ForceKill(d); err != nil {
		t.Fatal(err)
	}
	if err := svc.Finalize(); err != nil {
		t.Fatalf("sampled clean run flagged: %v", err)
	}
}

// TestShipErrorLatched pins transport-failure reporting: a Ship error
// must surface through Err, not vanish.
func TestShipErrorLatched(t *testing.T) {
	if !trace.Compiled {
		t.Skip("tracing compiled out (notrace)")
	}
	mach, mon := bootPair(t)
	svc, err := Attach(mach, mon, Options{
		Node: "cut-node",
		Ship: func([]byte) error { return errShipCut },
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := mon.CreateDomain(core.InitialDomain, "tenant")
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.ForceKill(d); err != nil {
		t.Fatal(err)
	}
	if err := svc.Finalize(); err != errShipCut {
		t.Fatalf("Finalize = %v, want the latched ship error", err)
	}
}

// TestServiceParallelDrain audits the parallel reclamation pipeline
// end to end: with drain workers opted in, a partitioned ring-drain
// round plus a shared-grace kill storm must verify clean on-node, and
// the shipped digests must carry the drain-frame tally to the remote
// verifier so it reconciles like every other structural count.
func TestServiceParallelDrain(t *testing.T) {
	if !trace.Compiled {
		t.Skip("tracing compiled out (notrace)")
	}
	mach, mon := bootPair(t)
	ver := check.NewRemoteVerifier("drain-node")
	svc, err := Attach(mach, mon, Options{
		Node: "drain-node",
		Ship: func(raw []byte) error { return ver.Consume(raw) },
	})
	if err != nil {
		t.Fatal(err)
	}
	mon.SetReclaimWorkers(2)
	var memNode cap.NodeID
	for _, n := range mon.OwnerNodes(core.InitialDomain) {
		if n.Resource.Kind == cap.ResMemory {
			memNode = n.ID
			break
		}
	}
	pageRes := func(page, pages uint64) cap.Resource {
		return cap.MemResource(phys.MakeRegion(phys.Addr(page*phys.PageSize), pages*phys.PageSize))
	}
	const entries = 16
	var doms []core.DomainID
	for i := 0; i < 2; i++ {
		d, err := mon.CreateDomain(core.InitialDomain, "tenant")
		if err != nil {
			t.Fatal(err)
		}
		page := uint64(400 + 2*i)
		if _, err := mon.Grant(core.InitialDomain, memNode, d, pageRes(page, 1), cap.MemRW, cap.CleanNone); err != nil {
			t.Fatal(err)
		}
		base := phys.Addr(page * phys.PageSize)
		if err := mon.RingSetup(d, base, entries); err != nil {
			t.Fatal(err)
		}
		var tail uint64
		enqueue := func(desc ...uint64) {
			off := base + phys.Addr(core.RingSQOff(entries, tail))
			for w := 0; w < 6; w++ {
				var v uint64
				if w < len(desc) {
					v = desc[w]
				}
				if err := mach.Mem.Write64(off+phys.Addr(8*w), v); err != nil {
					t.Fatal(err)
				}
			}
			tail++
			if err := mach.Mem.Write64(base+core.RingOffSQTail, tail); err != nil {
				t.Fatal(err)
			}
		}
		for j := 0; j < 2; j++ {
			id, err := mon.Share(core.InitialDomain, memNode, d, pageRes(uint64(500+i*4+j), 1), cap.MemRW, cap.CleanFlushTLB)
			if err != nil {
				t.Fatal(err)
			}
			enqueue(core.CallRevoke, uint64(id))
		}
		enqueue(core.CallSelfID)
		doms = append(doms, d)
	}
	if n := mon.DrainRings(); n != 6 {
		t.Fatalf("DrainRings = %d, want 6", n)
	}
	st := mon.Stats()
	if st.RingParallelDrains != 1 {
		t.Fatalf("RingParallelDrains = %d, want 1", st.RingParallelDrains)
	}
	if _, err := mon.ForceKillAll(doms...); err != nil {
		t.Fatal(err)
	}
	if err := svc.Finalize(); err != nil {
		t.Fatalf("parallel-drain run flagged: %v", err)
	}
	if got := svc.Checker().Counts().Drains; got != st.RingParallelDrains {
		t.Fatalf("checker counted %d drain frames, stats say %d", got, st.RingParallelDrains)
	}
	if svc.Shipped() == 0 {
		t.Fatal("no digests shipped")
	}
	if flags := ver.Finalize(); len(flags) != 0 {
		t.Fatalf("verifier flagged a clean parallel-drain node: %q", flags)
	}
}

var errShipCut = &shipCutError{}

type shipCutError struct{}

func (*shipCutError) Error() string { return "digest channel cut" }
