// Package baseline implements the comparison systems the experiments
// measure Tyche against:
//
//   - Commodity: a commodity OS alone on the machine — processes are the
//     only isolation, ring 0 bypasses it, and devices DMA freely (§2.2's
//     monopoly, unmitigated).
//   - SGX: an SGX-like enclave substrate — enclaves tied to a process,
//     one ELRANGE each, implicit access to all process memory, a finite
//     EPC, and no nesting (the §4.2 comparison target).
//   - VMOnly: a confidential-VM-only security monitor — isolation exists
//     solely at virtual-machine granularity (the "tied to existing
//     system abstractions" point of §2.2/§3.5).
package baseline

import (
	"errors"
	"fmt"

	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/libtyche"
	"github.com/tyche-sim/tyche/internal/phys"
)

// Commodity syscall numbers (same ABI as oskit for comparable
// workloads).
const (
	SysExit   uint64 = 1
	SysLog    uint64 = 2
	SysYield  uint64 = 3
	SysGetPid uint64 = 4
)

// CProcState is a commodity process's state.
type CProcState int

// Commodity process states.
const (
	CProcReady CProcState = iota
	CProcExited
	CProcFaulted
)

// CProcess is a commodity-OS process.
type CProcess struct {
	Pid      int
	Name     string
	State    CProcState
	Code     phys.Region
	Data     phys.Region
	ExitCode uint64
	FaultAt  phys.Addr
	Logs     []uint64

	filter *hw.EPT
	regs   [hw.NumRegs]uint64
	pc     phys.Addr
}

// Commodity is the no-monitor baseline: an OS with a ring-0/ring-3
// split and per-process first-level filters, and nothing above it.
type Commodity struct {
	mach  *hw.Machine
	alloc *libtyche.Allocator
	ctx   *hw.Context // the single kernel context: Filter is AllowAll

	procs   map[int]*CProcess
	runq    []int
	nextPid int
	current *CProcess

	Switches uint64
	Syscalls uint64
}

// NewCommodity boots the commodity OS on a bare machine, managing
// memory above reservePages.
func NewCommodity(mach *hw.Machine, reservePages uint64) (*Commodity, error) {
	pool := phys.Region{Start: phys.Addr(reservePages * phys.PageSize), End: phys.Addr(mach.Mem.Size())}
	alloc, err := libtyche.NewAllocator(pool)
	if err != nil {
		return nil, err
	}
	// The commodity kernel faces no second-level filter: AllowAll.
	ctx := &hw.Context{Owner: 1, Filter: hw.AllowAll{}}
	return &Commodity{
		mach:    mach,
		alloc:   alloc,
		ctx:     ctx,
		procs:   make(map[int]*CProcess),
		nextPid: 1,
	}, nil
}

// Spawn creates a process (same contract as oskit.Spawn).
func (c *Commodity) Spawn(name string, codeAt func(phys.Addr) []byte, codePages, dataPages uint64) (*CProcess, error) {
	code, err := c.alloc.Alloc(codePages)
	if err != nil {
		return nil, err
	}
	var data phys.Region
	if dataPages > 0 {
		if data, err = c.alloc.Alloc(dataPages); err != nil {
			c.alloc.Free(code)
			return nil, err
		}
	}
	bytes := codeAt(code.Start)
	if uint64(len(bytes)) > code.Size() {
		return nil, fmt.Errorf("baseline: %q code exceeds %d pages", name, codePages)
	}
	if err := c.mach.Mem.WriteAt(code.Start, bytes); err != nil {
		return nil, err
	}
	filter := hw.NewEPT()
	if err := filter.Map(code, hw.PermRX); err != nil {
		return nil, err
	}
	if !data.Empty() {
		if err := filter.Map(data, hw.PermRW); err != nil {
			return nil, err
		}
	}
	p := &CProcess{Pid: c.nextPid, Name: name, Code: code, Data: data, filter: filter, pc: code.Start}
	p.regs[9] = uint64(data.Start)
	c.nextPid++
	c.procs[p.Pid] = p
	c.runq = append(c.runq, p.Pid)
	return p, nil
}

// Runnable reports whether the run queue is non-empty.
func (c *Commodity) Runnable() bool { return len(c.runq) > 0 }

// Schedule runs the next ready process on core for up to quantum
// instructions, handling its syscalls inline (the commodity kernel has
// no monitor to trap through).
func (c *Commodity) Schedule(coreID phys.CoreID, quantum int) (*CProcess, error) {
	if len(c.runq) == 0 {
		return nil, errors.New("baseline: run queue empty")
	}
	pid := c.runq[0]
	c.runq = c.runq[1:]
	p := c.procs[pid]
	cpu := c.mach.Core(coreID)
	if cpu == nil {
		return nil, fmt.Errorf("baseline: no core %v", coreID)
	}
	c.mach.Clock.Advance(c.mach.Cost.SchedPick + 2*c.mach.Cost.CtxSave + c.mach.Cost.TLBFlush)
	c.ctx.OSFilter = p.filter
	cpu.InstallContext(c.ctx)
	cpu.Regs = p.regs
	cpu.PC = p.pc
	cpu.Ring = hw.RingUser
	c.current = p
	c.Switches++

	budget := quantum
	for budget > 0 {
		n, trap := cpu.Run(budget)
		budget -= n
		switch trap.Kind {
		case hw.TrapNone:
			p.regs, p.pc = cpu.Regs, cpu.PC
			c.runq = append(c.runq, pid) // preempted
			return p, nil
		case hw.TrapHalt:
			p.State = CProcExited
			return p, nil
		case hw.TrapSyscall:
			c.Syscalls++
			c.mach.Clock.Advance(c.mach.Cost.Syscall)
			done := c.handleSyscall(cpu, p)
			c.mach.Clock.Advance(c.mach.Cost.Sysret)
			if done {
				p.regs, p.pc = cpu.Regs, cpu.PC
				if p.State == CProcReady {
					c.runq = append(c.runq, pid) // yielded
				}
				return p, nil
			}
		case hw.TrapFault, hw.TrapIllegal:
			p.State = CProcFaulted
			p.FaultAt = trap.Addr
			return p, nil
		case hw.TrapVMCall:
			// No monitor on this machine: VMCALL is undefined.
			p.State = CProcFaulted
			return p, nil
		}
	}
	p.regs, p.pc = cpu.Regs, cpu.PC
	c.runq = append(c.runq, pid)
	return p, nil
}

// handleSyscall returns true when the process leaves the core.
func (c *Commodity) handleSyscall(cpu *hw.Core, p *CProcess) bool {
	switch cpu.Regs[0] {
	case SysExit:
		p.ExitCode = cpu.Regs[1]
		p.State = CProcExited
		return true
	case SysLog:
		p.Logs = append(p.Logs, cpu.Regs[1])
		cpu.Regs[0] = 0
	case SysYield:
		return true
	case SysGetPid:
		cpu.Regs[0] = 0
		cpu.Regs[1] = uint64(p.Pid)
	default:
		cpu.Regs[0] = ^uint64(0)
	}
	return false
}

// RunAll drains the run queue (bounded by maxSlices).
func (c *Commodity) RunAll(coreID phys.CoreID, quantum, maxSlices int) error {
	for i := 0; i < maxSlices && c.Runnable(); i++ {
		if _, err := c.Schedule(coreID, quantum); err != nil {
			return err
		}
	}
	return nil
}

// KernelRead is the §2.2 bypass, unmitigated: the commodity kernel can
// read any byte of physical memory, process isolation notwithstanding.
// It never fails (within bounds) — that is the point of the baseline.
func (c *Commodity) KernelRead(a phys.Addr, n uint64) ([]byte, error) {
	buf := make([]byte, n)
	if err := c.mach.Mem.ReadAt(a, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Alloc exposes the OS allocator (for workload setup).
func (c *Commodity) Alloc(pages uint64) (phys.Region, error) { return c.alloc.Alloc(pages) }
