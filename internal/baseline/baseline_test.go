package baseline

import (
	"bytes"
	"errors"
	"testing"

	"github.com/tyche-sim/tyche/internal/core"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/image"
	"github.com/tyche-sim/tyche/internal/libtyche"
	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/tpm"
)

const pg = phys.PageSize

func bareMachine(t testing.TB) *hw.Machine {
	t.Helper()
	m, err := hw.NewMachine(hw.Config{
		MemBytes: 16 << 20, NumCores: 4, IOMMUAllowByDefault: true,
		Devices: []hw.DeviceConfig{{Name: "gpu0", Class: hw.DevAccelerator}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCommodityProcessesRunAndIsolate(t *testing.T) {
	m := bareMachine(t)
	c, err := NewCommodity(m, 16)
	if err != nil {
		t.Fatal(err)
	}
	exitProg := func(code uint32) func(phys.Addr) []byte {
		return func(base phys.Addr) []byte {
			a := hw.NewAsm()
			a.Movi(0, uint32(SysGetPid)).Syscall()
			a.Movi(0, uint32(SysLog)).Syscall()
			a.Movi(0, uint32(SysExit)).Movi(1, code).Syscall()
			return a.MustAssemble(base)
		}
	}
	p1, err := c.Spawn("a", exitProg(1), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.Spawn("b", func(base phys.Addr) []byte {
		// Read p1's data page: user-level isolation still works.
		a := hw.NewAsm()
		a.Movi(1, uint32(p1.Data.Start))
		a.Ld(2, 1, 0)
		a.Movi(0, uint32(SysExit)).Movi(1, 0).Syscall()
		return a.MustAssemble(base)
	}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RunAll(0, 1000, 10); err != nil {
		t.Fatal(err)
	}
	if p1.State != CProcExited || p1.ExitCode != 1 {
		t.Fatalf("p1 = %+v", p1)
	}
	if len(p1.Logs) != 1 || p1.Logs[0] != uint64(p1.Pid) {
		t.Fatalf("p1 logs = %v", p1.Logs)
	}
	if p2.State != CProcFaulted || p2.FaultAt != p1.Data.Start {
		t.Fatalf("p2 = %+v", p2)
	}
}

func TestCommodityKernelBypassAndDMA(t *testing.T) {
	m := bareMachine(t)
	c, err := NewCommodity(m, 16)
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.Spawn("victim", func(base phys.Addr) []byte {
		a := hw.NewAsm()
		a.Movi(0, uint32(SysExit)).Movi(1, 0).Syscall()
		return a.MustAssemble(base)
	}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Plant a secret in the victim's data page.
	if err := m.Mem.WriteAt(p.Data.Start, []byte("secret")); err != nil {
		t.Fatal(err)
	}
	// The kernel reads it — process isolation protects only user code.
	got, err := c.KernelRead(p.Data.Start, 6)
	if err != nil || string(got) != "secret" {
		t.Fatalf("kernel bypass: %q, %v", got, err)
	}
	// Any device DMAs it out too (no IOMMU policy).
	buf := make([]byte, 6)
	if err := m.Device(0).DMARead(p.Data.Start, buf); err != nil || string(buf) != "secret" {
		t.Fatalf("DMA attack: %q, %v", buf, err)
	}
}

func TestSGXEnclaveSemantics(t *testing.T) {
	m := bareMachine(t)
	s := NewSGX(m, 64)
	procMem := phys.MakeRegion(1<<20, 128*pg)
	proc, err := s.NewProcess(procMem)
	if err != nil {
		t.Fatal(err)
	}
	el := phys.MakeRegion(procMem.Start+8*pg, 8*pg)
	// Put code-ish bytes inside for the measurement.
	if err := m.Mem.WriteAt(el.Start, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	e, err := proc.CreateEnclave(el, el.Start, false)
	if err != nil {
		t.Fatal(err)
	}
	if e.Measurement == (tpm.Digest{}) {
		t.Fatal("no measurement")
	}
	if s.EPCFree() != 56 {
		t.Fatalf("EPC free = %d", s.EPCFree())
	}
	// Host cannot see the ELRANGE; enclave sees everything (implicit
	// untrusted access — the leak path).
	if proc.HostContext().Filter.Check(el.Start, hw.PermR) {
		t.Fatal("host reads enclave memory")
	}
	if !e.ctx.Filter.Check(procMem.Start, hw.PermW) {
		t.Fatal("enclave lost implicit access to process memory")
	}
	// No nesting.
	if _, err := proc.CreateEnclave(phys.MakeRegion(procMem.Start+32*pg, 4*pg), 0, true); !errors.Is(err, ErrSGXNoNesting) {
		t.Fatalf("nesting: %v", err)
	}
	// No overlapping ELRANGEs (no address reuse).
	if _, err := proc.CreateEnclave(el, el.Start, false); !errors.Is(err, ErrSGXELRangeOverlap) {
		t.Fatalf("overlap: %v", err)
	}
	// EPC exhaustion.
	if _, err := proc.CreateEnclave(phys.MakeRegion(procMem.Start+120*pg, 60*pg), 0, false); !errors.Is(err, ErrSGXOutsideProcess) {
		t.Fatalf("outside: %v", err)
	}
	// EPC exhaustion: 57 pages wanted, 56 free.
	big := phys.MakeRegion(procMem.Start+16*pg, 57*pg)
	if _, err := proc.CreateEnclave(big, 0, false); !errors.Is(err, ErrSGXEPCExhausted) {
		t.Fatalf("epc: %v", err)
	}
	// No EPC sharing between enclaves.
	e2, err := proc.CreateEnclave(phys.MakeRegion(procMem.Start+24*pg, 4*pg), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ShareEPC(e2, phys.MakeRegion(el.Start, pg)); !errors.Is(err, ErrSGXNoSharing) {
		t.Fatalf("share: %v", err)
	}
	// Transitions cost SGX prices.
	before := m.Clock.Cycles()
	e.EEnter(m.Cores[0])
	e.EExit(m.Cores[0])
	if got := m.Clock.Cycles() - before; got != SGXEEnterCost+SGXEExitCost {
		t.Fatalf("transition cost = %d", got)
	}
	// Destroy scrubs and returns EPC + host access.
	if err := e.Destroy(); err != nil {
		t.Fatal(err)
	}
	if s.EPCFree() != 60 {
		t.Fatalf("EPC free after destroy = %d", s.EPCFree())
	}
	if !proc.HostContext().Filter.Check(el.Start, hw.PermR) {
		t.Fatal("host access not restored")
	}
	got, _ := m.Mem.View(phys.MakeRegion(el.Start, pg))
	if !bytes.Equal(got[:3], []byte{0, 0, 0}) {
		t.Fatal("EPC not scrubbed")
	}
	if err := e.Destroy(); err == nil {
		t.Fatal("double destroy")
	}
}

func TestVMOnlyRestrictions(t *testing.T) {
	m := bareMachine(t)
	rot, err := tpm.New(nil)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := core.Boot(core.BootConfig{Machine: m, TPM: rot})
	if err != nil {
		t.Fatal(err)
	}
	client := libtyche.New(mon, core.InitialDomain)
	if err := client.AutoHeap(16); err != nil {
		t.Fatal(err)
	}
	v := NewVMOnly(client)

	prog := hw.NewAsm()
	prog.Hlt()
	img := image.NewProgram("guest", prog.MustAssemble(0)).WithBSS(".bss", 2*pg)

	if _, err := v.CreateVM(img, nil); !errors.Is(err, ErrVMOnlyNoCores) {
		t.Fatalf("no cores: %v", err)
	}
	vm1, err := v.CreateVM(img, []phys.CoreID{1})
	if err != nil {
		t.Fatal(err)
	}
	// Footprint padded to VM granularity.
	var vmPages uint64
	for _, rec := range mustEnum(t, mon, vm1.ID()) {
		if rec.Resource.Kind == 0 { // memory
			vmPages += rec.Resource.Mem.Pages()
		}
	}
	if vmPages < DefaultVMMinPages {
		t.Fatalf("VM footprint %d pages < floor %d", vmPages, DefaultVMMinPages)
	}
	// No nesting: a client acting as the VM cannot create VMs.
	vGuest := NewVMOnly(libtyche.New(mon, vm1.ID()))
	if _, err := vGuest.CreateVM(img, []phys.CoreID{0}); !errors.Is(err, ErrVMOnlyNoNesting) {
		t.Fatalf("nesting: %v", err)
	}
	// No sharing.
	if err := v.OpenChannel(vm1, 1); !errors.Is(err, ErrVMOnlyNoSharing) {
		t.Fatalf("sharing: %v", err)
	}
	// Bounce copy between two VMs costs VM exits + copies.
	vm2, err := v.CreateVM(img, []phys.CoreID{2})
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.CopyInto(vm1.ID(), mustSeg(t, vm1), []byte("x")); err == nil {
		// staging write path sanity only; ignore result
		_ = err
	}
	cost, err := v.BounceCopy(vm1, vm2, 0, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	minCost := 2 * (m.Cost.VMExit + m.Cost.VMEntry)
	if cost < minCost {
		t.Fatalf("bounce cost = %d, want >= %d", cost, minCost)
	}
}

func mustEnum(t *testing.T, mon *core.Monitor, id core.DomainID) []core.ResourceRecord {
	t.Helper()
	recs, err := mon.Enumerate(id)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func mustSeg(t *testing.T, d *libtyche.Domain) phys.Addr {
	t.Helper()
	r, ok := d.SegmentRegion(".bss")
	if !ok {
		t.Fatal("no .bss")
	}
	return r.Start
}
