package baseline

import (
	"errors"
	"fmt"

	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/tpm"
)

// SGX transition costs in cycles. SGX world switches are an order of
// magnitude costlier than VM transitions: published measurements put an
// EENTER/EEXIT round trip at 8-14k cycles (e.g. Hotcalls, ISCA'17; SGX
// Explained). We model the entry and exit halves separately.
const (
	SGXEEnterCost = 7200
	SGXEExitCost  = 3300
	// SGXEAddCost is charged per EPC page added at enclave build time.
	SGXEAddCost = 1800
)

// DefaultEPCPages models the classic 93.5 MiB usable EPC, scaled to the
// simulated machine (we default to 1024 pages = 4 MiB and let the
// experiments vary it).
const DefaultEPCPages = 1024

// SGX model errors — each encodes one of the §4.2 limitations Tyche
// lifts.
var (
	// ErrSGXNoNesting: enclaves cannot create enclaves.
	ErrSGXNoNesting = errors.New("sgx: enclaves cannot spawn enclaves (no nesting)")
	// ErrSGXELRangeOverlap: enclave ranges within one process must be
	// disjoint — no virtual-address reuse.
	ErrSGXELRangeOverlap = errors.New("sgx: ELRANGE overlaps an existing enclave (no address reuse)")
	// ErrSGXEPCExhausted: the enclave page cache is finite.
	ErrSGXEPCExhausted = errors.New("sgx: EPC exhausted")
	// ErrSGXOutsideProcess: an enclave must live inside its host
	// process's address space.
	ErrSGXOutsideProcess = errors.New("sgx: ELRANGE outside host process")
	// ErrSGXNoSharing: two enclaves cannot share protected memory.
	ErrSGXNoSharing = errors.New("sgx: enclaves cannot share EPC pages")
)

// SGX is the SGX-like substrate on a simulated machine.
type SGX struct {
	mach      *hw.Machine
	epcBudget uint64
	epcUsed   uint64
	nextID    int
}

// NewSGX returns an SGX model with an EPC of epcPages (0 selects
// DefaultEPCPages).
func NewSGX(mach *hw.Machine, epcPages uint64) *SGX {
	if epcPages == 0 {
		epcPages = DefaultEPCPages
	}
	return &SGX{mach: mach, epcBudget: epcPages, nextID: 1}
}

// EPCFree returns the remaining EPC pages.
func (s *SGX) EPCFree() uint64 { return s.epcBudget - s.epcUsed }

// SGXProcess is a host process that can hold enclaves.
type SGXProcess struct {
	sgx      *SGX
	Mem      phys.Region
	Enclaves []*SGXEnclave
	hostCtx  *hw.Context
	hostEPT  *hw.EPT
}

// NewProcess creates a host process owning mem.
func (s *SGX) NewProcess(mem phys.Region) (*SGXProcess, error) {
	if err := mem.Validate(); err != nil {
		return nil, err
	}
	ept := hw.NewEPT()
	if err := ept.Map(mem, hw.PermRWX); err != nil {
		return nil, err
	}
	return &SGXProcess{
		sgx:     s,
		Mem:     mem,
		hostEPT: ept,
		hostCtx: &hw.Context{Owner: uint64(s.nextID), Filter: ept},
	}, nil
}

// SGXEnclave is one enclave: an ELRANGE inside a host process.
type SGXEnclave struct {
	proc    *SGXProcess
	ELRange phys.Region
	Entry   phys.Addr
	// Measurement is the MRENCLAVE analogue.
	Measurement tpm.Digest

	ctx *hw.Context
	ept *hw.EPT
	// insideEnclave marks contexts created by this enclave's execution
	// (used to detect nesting attempts).
}

// CreateEnclave builds an enclave at elrange within the process,
// entered at entry. fromEnclave marks a creation attempt issued by code
// already running inside an enclave — real SGX has no instruction for
// this; the model returns ErrSGXNoNesting.
func (p *SGXProcess) CreateEnclave(elrange phys.Region, entry phys.Addr, fromEnclave bool) (*SGXEnclave, error) {
	if fromEnclave {
		return nil, ErrSGXNoNesting
	}
	if err := elrange.Validate(); err != nil {
		return nil, err
	}
	if !p.Mem.ContainsRegion(elrange) {
		return nil, ErrSGXOutsideProcess
	}
	for _, e := range p.Enclaves {
		if e.ELRange.Overlaps(elrange) {
			return nil, ErrSGXELRangeOverlap
		}
	}
	pages := elrange.Pages()
	if p.sgx.epcUsed+pages > p.sgx.epcBudget {
		return nil, ErrSGXEPCExhausted
	}
	p.sgx.epcUsed += pages
	p.sgx.mach.Clock.Advance(pages * SGXEAddCost)

	// Enclave view: its ELRANGE fully, PLUS the whole host process —
	// the implicit untrusted access §4.2 contrasts with Tyche's
	// explicit sharing. A buggy enclave can write secrets anywhere in
	// the process.
	ept := hw.NewEPT()
	if err := ept.Map(p.Mem, hw.PermRW); err != nil {
		return nil, err
	}
	if err := ept.Map(elrange, hw.PermRWX); err != nil {
		return nil, err
	}
	// Host view loses the ELRANGE.
	if err := p.hostEPT.Unmap(elrange); err != nil {
		return nil, err
	}
	data, err := p.sgx.mach.Mem.View(elrange)
	if err != nil {
		return nil, err
	}
	e := &SGXEnclave{
		proc:        p,
		ELRange:     elrange,
		Entry:       entry,
		Measurement: tpm.Measure(data),
		ept:         ept,
		ctx:         &hw.Context{Owner: uint64(p.sgx.nextID), Filter: ept, Entry: entry},
	}
	p.sgx.nextID++
	p.Enclaves = append(p.Enclaves, e)
	return e, nil
}

// Destroy releases the enclave's EPC pages and restores host access.
func (e *SGXEnclave) Destroy() error {
	p := e.proc
	for i, cand := range p.Enclaves {
		if cand == e {
			p.Enclaves = append(p.Enclaves[:i], p.Enclaves[i+1:]...)
			p.sgx.epcUsed -= e.ELRange.Pages()
			// EREMOVE scrubs EPC pages.
			if err := p.sgx.mach.Mem.Zero(e.ELRange); err != nil {
				return err
			}
			return p.hostEPT.Map(e.ELRange, hw.PermRWX)
		}
	}
	return fmt.Errorf("sgx: enclave already destroyed")
}

// EEnter switches the core into the enclave (expensive world switch).
func (e *SGXEnclave) EEnter(core *hw.Core) {
	e.proc.sgx.mach.Clock.Advance(SGXEEnterCost)
	core.InstallContext(e.ctx)
	core.PC = e.Entry
}

// EExit switches the core back to the host process.
func (e *SGXEnclave) EExit(core *hw.Core) {
	e.proc.sgx.mach.Clock.Advance(SGXEExitCost)
	core.InstallContext(e.proc.hostCtx)
}

// HostContext returns the process's (non-enclave) execution context.
func (p *SGXProcess) HostContext() *hw.Context { return p.hostCtx }

// ShareEPC models an attempt to map one enclave's protected page into
// another enclave: impossible on SGX.
func (e *SGXEnclave) ShareEPC(*SGXEnclave, phys.Region) error { return ErrSGXNoSharing }
