package baseline

import (
	"errors"
	"fmt"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/core"
	"github.com/tyche-sim/tyche/internal/image"
	"github.com/tyche-sim/tyche/internal/libtyche"
	"github.com/tyche-sim/tyche/internal/phys"
)

// VMOnly models a confidential-VM-only security monitor (CloudVisor-
// style): the only isolation unit is a whole virtual machine with
// dedicated cores and a large memory footprint, created exclusively by
// the platform (no nesting), with no sub-VM sharing — cross-VM
// communication bounces through hypervisor copies. It is implemented as
// a policy straitjacket over the real monitor, so the enforcement
// mechanics are identical and only the abstraction granularity differs
// (§2.2: "they only provide processes and virtual machines, two
// coarse-grain abstractions with rigid trust models").
type VMOnly struct {
	client *libtyche.Client
	// MinPages is the smallest VM memory footprint (VM granularity).
	MinPages uint64
}

// DefaultVMMinPages is the modelled minimum CVM footprint (1 MiB): a
// guest kernel + firmware floor, tiny compared to real CVMs but large
// against enclave-sized payloads — preserving the granularity gap.
const DefaultVMMinPages = 256

// VM-only model errors.
var (
	// ErrVMOnlyNoNesting: only the platform (initial domain) creates VMs.
	ErrVMOnlyNoNesting = errors.New("vmonly: VMs cannot create VMs (no nesting)")
	// ErrVMOnlyNoSharing: no shared memory between isolation units.
	ErrVMOnlyNoSharing = errors.New("vmonly: confidential VMs cannot share memory")
	// ErrVMOnlyNoCores: a VM needs at least one dedicated core.
	ErrVMOnlyNoCores = errors.New("vmonly: a VM requires dedicated cores")
)

// NewVMOnly wraps a dom0 libtyche client into the VM-only policy.
func NewVMOnly(client *libtyche.Client) *VMOnly {
	return &VMOnly{client: client, MinPages: DefaultVMMinPages}
}

// CreateVM builds a confidential VM from img. Only the initial domain
// may call it, cores are granted exclusively, and the image footprint
// is padded to the VM granularity floor.
func (v *VMOnly) CreateVM(img *image.Image, cores []phys.CoreID) (*libtyche.Domain, error) {
	if v.client.Self() != core.InitialDomain {
		return nil, ErrVMOnlyNoNesting
	}
	if len(cores) == 0 {
		return nil, ErrVMOnlyNoCores
	}
	padded := *img
	padded.Segments = append([]image.Segment(nil), img.Segments...)
	if got := img.TotalPages(); got < v.MinPages {
		padded = *img
		padded.Segments = append(padded.Segments, image.Segment{
			Name:         ".vm-floor",
			Size:         (v.MinPages - got) * phys.PageSize,
			Rights:       cap.MemRW,
			Confidential: true,
		})
	}
	opts := libtyche.DefaultLoadOptions()
	return v.client.NewConfidentialVM(&padded, cores, opts)
}

// OpenChannel always fails: the VM-only abstraction has no controlled
// sharing below VM granularity.
func (v *VMOnly) OpenChannel(*libtyche.Domain, uint64) error { return ErrVMOnlyNoSharing }

// BounceCopy models cross-VM communication on the VM-only platform:
// each guest's paravirtual driver copies through its staging window
// (the hypervisor cannot read CVM memory), costing two copies plus a VM
// exit/entry round trip on each side. It returns the cycles charged.
func (v *VMOnly) BounceCopy(src, dst *libtyche.Domain, srcOff, dstOff uint64, n uint64) (uint64, error) {
	mon := v.client.Monitor()
	mach := mon.Machine()
	srcRegion, ok := segregion(src)
	if !ok {
		return 0, fmt.Errorf("vmonly: source VM has no shared staging segment")
	}
	dstRegion, ok := segregion(dst)
	if !ok {
		return 0, fmt.Errorf("vmonly: destination VM has no shared staging segment")
	}
	before := mach.Clock.Cycles()
	// Exit + copy out + entry, exit + copy in + entry.
	mach.Clock.Advance(2 * (mach.Cost.VMExit + mach.Cost.VMEntry))
	data, err := mon.CopyFrom(src.ID(), srcRegion.Start+phys.Addr(srcOff), n)
	if err != nil {
		return 0, err
	}
	lines := (n + 63) / 64
	mach.Clock.Advance(2 * lines * mach.Cost.ZeroLine)
	if err := mon.CopyInto(dst.ID(), dstRegion.Start+phys.Addr(dstOff), data); err != nil {
		return 0, err
	}
	return mach.Clock.Cycles() - before, nil
}

// segregion finds a VM's bounce-staging segment (its first shared or
// bss region; the model only needs a window the hypervisor may touch).
func segregion(d *libtyche.Domain) (phys.Region, bool) {
	for _, name := range []string{"staging", ".bss", ".data"} {
		if r, ok := d.SegmentRegion(name); ok {
			return r, ok
		}
	}
	return phys.Region{}, false
}
