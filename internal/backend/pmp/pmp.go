// Package pmp implements the RISC-V machine-mode enforcement backend:
// trust domains are confined with the per-core PMP register file, which
// "only supports a fixed number of segments, which requires a careful
// memory layout of trust domains and validation by the monitor" (§4).
//
// Unlike the vtx backend's per-domain EPT, PMP state is per-core and
// must be reprogrammed on every domain transition (machine-mode trap,
// clear + rewrite entries, mret). Domain installation validates that
// the domain's flattened memory layout fits the entry budget; the C5
// experiment sweeps exactly this constraint.
package pmp

import (
	"fmt"
	"sync"

	"github.com/tyche-sim/tyche/internal/backend"
	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/trace"
)

type domainState struct {
	owner cap.OwnerID
	asid  uint64

	// mu guards segs (rewritten by SyncDomain while transitions on other
	// cores program them into PMP files) and the lazily-populated
	// per-core context cache.
	mu   sync.Mutex
	segs []backend.Segment
	ctxs map[phys.CoreID]*hw.Context
}

// Backend is the machine-mode PMP enforcement backend.
//
// Concurrency contract: under the epoch scheme every monitor entry
// holds the top-level lock shared, so InstallDomain can race
// RemoveDomain at this layer. The domains map and nextASID carry their
// own RWMutex (domMu); per-domain mutable state carries the
// domainState mutex. A domainState pointer read under domMu.RLock
// stays valid after the unlock — removal only deletes the map entry,
// and the dead domain's PMP files have been cleared, so a racing
// reader's view degrades to deny-all.
type Backend struct {
	mach  *hw.Machine
	space *cap.Space

	domMu    sync.RWMutex
	domains  map[cap.OwnerID]*domainState
	nextASID uint64
	reserved int // entries locked for monitor self-protection per core
}

// Option configures the backend.
type Option func(*Backend)

// New returns a PMP backend over mach and space. If monitorRegion is
// non-empty, entry 0 of every core is programmed to deny it and locked —
// machine-mode self-protection, as Keystone's security monitor does.
func New(mach *hw.Machine, space *cap.Space, monitorRegion phys.Region) (*Backend, error) {
	b := &Backend{
		mach:     mach,
		space:    space,
		domains:  make(map[cap.OwnerID]*domainState),
		nextASID: 1,
	}
	if !monitorRegion.Empty() {
		for _, c := range mach.Cores {
			if err := c.PMPUnit.Program(0, monitorRegion, hw.PermNone); err != nil {
				return nil, fmt.Errorf("pmp: reserving monitor entry: %w", err)
			}
			if err := c.PMPUnit.Lock(0); err != nil {
				return nil, fmt.Errorf("pmp: locking monitor entry: %w", err)
			}
			mach.Clock.Advance(mach.Cost.PMPWrite)
		}
		b.reserved = 1
	}
	return b, nil
}

// Name implements backend.Backend.
func (b *Backend) Name() string { return "pmp" }

// Budget returns the PMP entries available to a domain layout on each
// core (total minus monitor-reserved).
func (b *Backend) Budget() int {
	if len(b.mach.Cores) == 0 {
		return 0
	}
	return b.mach.Cores[0].PMPUnit.NumEntries() - b.reserved
}

// InstallDomain implements backend.Backend. The map insert holds domMu
// exclusively; the initial sync runs after the unlock (SyncDomain
// re-enters through state(), and the RWMutex is not reentrant).
func (b *Backend) InstallDomain(owner cap.OwnerID) error {
	b.domMu.Lock()
	if _, ok := b.domains[owner]; ok {
		b.domMu.Unlock()
		return fmt.Errorf("pmp: domain %d already installed", owner)
	}
	b.domains[owner] = &domainState{
		owner: owner,
		asid:  b.nextASID,
		ctxs:  make(map[phys.CoreID]*hw.Context),
	}
	b.nextASID++
	b.domMu.Unlock()
	return b.SyncDomain(owner)
}

func (b *Backend) state(owner cap.OwnerID) (*domainState, error) {
	b.domMu.RLock()
	st, ok := b.domains[owner]
	b.domMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %d", backend.ErrUnknownDomain, owner)
	}
	return st, nil
}

// SyncDomain implements backend.Backend: recompute the domain's segment
// layout and validate it against the PMP budget. The hardware itself is
// reprogrammed lazily at transition time (PMP is per-core state).
func (b *Backend) SyncDomain(owner cap.OwnerID) error {
	st, err := b.state(owner)
	if err != nil {
		return err
	}
	segs := backend.FlattenGrants(b.space.OwnerMemoryGrants(owner))
	if need, avail := len(segs), b.Budget(); need > avail {
		return &backend.PMPExhaustedError{Owner: owner, Needed: need, Available: avail}
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.segs = segs
	// Cores currently running this domain must be reprogrammed now:
	// access may have been revoked.
	for _, c := range b.mach.Cores {
		if ctx := c.Context(); ctx != nil && ctx.Owner == uint64(owner) {
			if _, ok := st.ctxs[c.ID()]; ok {
				b.program(c, st)
			}
		}
	}
	return nil
}

// program writes the domain's segments into the core's PMP file
// (st.mu held).
func (b *Backend) program(core *hw.Core, st *domainState) {
	unit := core.PMPUnit
	cleared := unit.ClearAll()
	b.mach.Clock.Advance(uint64(cleared) * b.mach.Cost.PMPWrite)
	idx := b.reserved
	for _, s := range st.segs {
		// Budget was validated at sync time; a failure here is a
		// programming bug, not a runtime condition.
		if err := unit.Program(idx, s.Region, s.Perm); err != nil {
			panic(fmt.Sprintf("pmp: validated layout failed to program: %v", err))
		}
		b.mach.Clock.Advance(b.mach.Cost.PMPWrite)
		b.mach.Trace(int32(core.ID()), trace.KPMPWrite, uint64(st.owner), uint64(idx), uint64(s.Perm), uint64(s.Region.Start), s.Region.Size())
		idx++
	}
}

// RemoveDomain implements backend.Backend.
func (b *Backend) RemoveDomain(owner cap.OwnerID) error {
	if _, err := b.state(owner); err != nil {
		return err
	}
	// Scrub the register files of cores the domain died on: PMP state
	// outlives the domain otherwise, and cleared entries (plus the
	// locked monitor guard) deny every access.
	for _, c := range b.mach.Cores {
		if ctx := c.Context(); ctx != nil && ctx.Owner == uint64(owner) {
			cleared := c.PMPUnit.ClearAll()
			b.mach.Clock.Advance(uint64(cleared) * b.mach.Cost.PMPWrite)
		}
	}
	b.domMu.Lock()
	delete(b.domains, owner)
	b.domMu.Unlock()
	return nil
}

// Context implements backend.Backend. The context's filter is the
// core's PMP unit itself: whatever is programmed on the core at access
// time decides, exactly like the hardware.
func (b *Backend) Context(owner cap.OwnerID, core phys.CoreID) (*hw.Context, error) {
	st, err := b.state(owner)
	if err != nil {
		return nil, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	ctx, ok := st.ctxs[core]
	if !ok {
		c := b.mach.Core(core)
		if c == nil {
			return nil, fmt.Errorf("pmp: no core %v", core)
		}
		ctx = &hw.Context{
			Owner:  uint64(owner),
			Filter: c.PMPUnit,
			ASID:   st.asid,
		}
		st.ctxs[core] = ctx
	}
	return ctx, nil
}

// Transition implements backend.Backend: a machine-mode trap that
// clears and reprograms the core's PMP entries for the target domain.
// There is no fast path — PMP has no VMFUNC analogue.
func (b *Backend) Transition(core *hw.Core, to cap.OwnerID, fast bool) error {
	if fast {
		return fmt.Errorf("%w: pmp backend has no VMFUNC analogue", backend.ErrNoFastPath)
	}
	st, err := b.state(to)
	if err != nil {
		return err
	}
	ctx, err := b.Context(to, core.ID())
	if err != nil {
		return err
	}
	cost := b.mach.Cost
	b.mach.Clock.Advance(cost.MTrap)
	st.mu.Lock()
	b.program(core, st)
	st.mu.Unlock()
	b.mach.Clock.Advance(cost.MRet)
	core.InstallContext(ctx) // PMP is untagged: full TLB flush
	return nil
}

// RegisterFastPair implements backend.Backend; PMP has no fast path.
func (b *Backend) RegisterFastPair(phys.CoreID, cap.OwnerID, cap.OwnerID) error {
	return fmt.Errorf("%w: pmp backend has no VMFUNC analogue", backend.ErrNoFastPath)
}

// SyncDevice implements backend.Backend. The RISC-V platform model has
// no IOMMU contexts per se; we model an equivalent bus filter so the
// capability semantics match the vtx backend (differential tests rely
// on identical accept/deny decisions).
func (b *Backend) SyncDevice(dev phys.DeviceID) error {
	filter, err := backend.BuildDeviceFilter(b.space, dev)
	if err != nil {
		return err
	}
	b.mach.IOMMU.Attach(dev, filter)
	return nil
}

// ExecuteCleanups implements backend.Backend.
func (b *Backend) ExecuteCleanups(acts []cap.CleanupAction) error {
	return backend.RunCleanups(b.mach, acts)
}
