// Package backend defines the interface between the isolation monitor's
// platform-independent capability model and the platform-specific
// enforcement mechanisms (§3.3, §4: "operations on capabilities are
// validated and translated into platform-specific hardware
// configurations by Tyche's backend").
//
// Two backends exist, mirroring the paper's prototypes: vtx (x86_64:
// per-domain EPT, VMCall exits, VMFUNC fast switches, IOMMU contexts)
// and pmp (RISC-V machine mode: per-core PMP reprogramming with a fixed
// entry budget). They enforce identical capability semantics; the
// cross-backend differential tests check exactly that.
package backend

import (
	"errors"
	"fmt"
	"sort"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/phys"
)

// Backend programs hardware access-control state from capability state.
type Backend interface {
	// Name identifies the backend ("vtx" or "pmp").
	Name() string

	// InstallDomain creates hardware state for a new trust domain.
	InstallDomain(owner cap.OwnerID) error

	// SyncDomain reprograms the domain's hardware access-control state
	// from the current capability space. Must be called after any
	// capability operation affecting the domain.
	SyncDomain(owner cap.OwnerID) error

	// RemoveDomain tears down the domain's hardware state.
	RemoveDomain(owner cap.OwnerID) error

	// Context returns the domain's execution context for a core,
	// creating it on first use.
	Context(owner cap.OwnerID, core phys.CoreID) (*hw.Context, error)

	// Transition switches core to the target domain's context and
	// charges the hardware cost. fast requests the VMFUNC-style switch,
	// available only between pre-registered pairs on backends that
	// support it.
	Transition(core *hw.Core, to cap.OwnerID, fast bool) error

	// RegisterFastPair authorises fast transitions between a and b on
	// core. Backends without a fast mechanism return ErrNoFastPath.
	RegisterFastPair(core phys.CoreID, a, b cap.OwnerID) error

	// SyncDevice reprograms the IOMMU context of dev from the
	// capability space (union of DMA-right holders' memory).
	SyncDevice(dev phys.DeviceID) error

	// ExecuteCleanups performs the cleanup actions emitted by a
	// revocation: zeroing memory, flushing caches and TLBs.
	ExecuteCleanups(acts []cap.CleanupAction) error
}

// Sentinel errors.
var (
	// ErrNoFastPath reports a fast transition that is not available:
	// unregistered pair, or a backend without a VMFUNC analogue.
	ErrNoFastPath = errors.New("backend: no fast transition path")
	// ErrUnknownDomain reports an owner with no installed hardware state.
	ErrUnknownDomain = errors.New("backend: unknown domain")
)

// PMPExhaustedError reports a domain memory layout that does not fit the
// PMP entry budget — the constraint the paper highlights for the RISC-V
// backend (§4).
type PMPExhaustedError struct {
	Owner     cap.OwnerID
	Needed    int
	Available int
}

func (e *PMPExhaustedError) Error() string {
	return fmt.Sprintf("backend: domain %d needs %d PMP entries, only %d available",
		e.Owner, e.Needed, e.Available)
}

// RightsToPerm maps capability memory rights onto hardware permissions.
func RightsToPerm(r cap.Rights) hw.Perm {
	var p hw.Perm
	if r.Has(cap.RightRead) {
		p |= hw.PermR
	}
	if r.Has(cap.RightWrite) {
		p |= hw.PermW
	}
	if r.Has(cap.RightExec) {
		p |= hw.PermX
	}
	return p
}

// Segment is one contiguous run of identically permissioned memory in a
// domain's flattened view; both backends program from this form.
type Segment struct {
	Region phys.Region
	Perm   hw.Perm
}

// FlattenGrants folds a domain's per-capability memory grants into
// minimal disjoint segments, OR-ing permissions where capabilities
// overlap and merging adjacent equal-permission runs.
func FlattenGrants(grants []cap.MemoryGrant) []Segment {
	if len(grants) == 0 {
		return nil
	}
	type ev struct {
		at   phys.Addr
		perm hw.Perm
		open bool
	}
	var events []ev
	for _, g := range grants {
		p := RightsToPerm(g.Rights)
		if p == hw.PermNone || g.Region.Empty() {
			continue
		}
		events = append(events, ev{g.Region.Start, p, true}, ev{g.Region.End, p, false})
	}
	if len(events) == 0 {
		return nil
	}
	// Sweep with permission multiset; close before open at equal points.
	sort.Slice(events, func(i, j int) bool {
		if events[i].at != events[j].at {
			return events[i].at < events[j].at
		}
		return !events[i].open && events[j].open
	})
	counts := map[hw.Perm]int{}
	var out []Segment
	var prev phys.Addr
	cur := hw.PermNone
	recompute := func() hw.Perm {
		var p hw.Perm
		for perm, n := range counts {
			if n > 0 {
				p |= perm
			}
		}
		return p
	}
	for _, e := range events {
		if e.at > prev && cur != hw.PermNone {
			if n := len(out); n > 0 && out[n-1].Region.End == prev && out[n-1].Perm == cur {
				out[n-1].Region.End = e.at
			} else {
				out = append(out, Segment{Region: phys.Region{Start: prev, End: e.at}, Perm: cur})
			}
		}
		prev = e.at
		if e.open {
			counts[e.perm]++
		} else {
			counts[e.perm]--
		}
		cur = recompute()
	}
	// Merge adjacent equal-permission segments (can arise when a region
	// closes and an identical-permission region opens at the same point).
	var merged []Segment
	for _, s := range out {
		if n := len(merged); n > 0 && merged[n-1].Region.End == s.Region.Start && merged[n-1].Perm == s.Perm {
			merged[n-1].Region.End = s.Region.End
			continue
		}
		merged = append(merged, s)
	}
	return merged
}
