package backend

import (
	"fmt"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/phys"
)

// BuildDeviceFilter computes the IOMMU context for dev from capability
// state: the union of the effective memory (minus execute, meaningless
// on the bus) of every domain holding DMA rights on the device.
// Confining a device therefore means granting its DMA capability to a
// narrow I/O domain (Figure 2's GPU pattern). Both backends program the
// result into the machine's IOMMU.
func BuildDeviceFilter(space *cap.Space, dev phys.DeviceID) (*hw.EPT, error) {
	filter := hw.NewEPT()
	for _, owner := range space.DeviceDMAHolders(dev) {
		for _, s := range FlattenGrants(space.OwnerMemoryGrants(owner)) {
			p := s.Perm &^ hw.PermX
			if p == hw.PermNone {
				continue
			}
			// OR into any permissions another DMA holder contributed.
			for a := s.Region.Start; a < s.Region.End; a += phys.PageSize {
				pr := phys.Region{Start: a, End: a + phys.PageSize}
				if err := filter.Map(pr, p|filter.Lookup(a)); err != nil {
					return nil, fmt.Errorf("backend: device %v filter: %w", dev, err)
				}
			}
		}
	}
	return filter, nil
}

// RunCleanups executes revocation cleanup actions on the machine: the
// guaranteed "clean-up" operations of §3.2. Both backends share this
// logic — zeroing and flushes are architecture-neutral in the model.
//
// Cleanups are deliberately conservative: cache and TLB flushes hit
// every core (a shootdown), because the capability model does not track
// which cores may hold stale state.
func RunCleanups(m *hw.Machine, acts []cap.CleanupAction) error {
	for _, a := range acts {
		if a.Cleanup == cap.CleanNone {
			continue
		}
		if a.Resource.Kind == cap.ResMemory && a.Cleanup&cap.CleanZero != 0 {
			r := a.Resource.Mem
			if err := m.Mem.Zero(r); err != nil {
				return fmt.Errorf("backend: zeroing %v: %w", r, err)
			}
			lines := r.Size() / hw.CacheLineSize
			m.Clock.Advance(lines * m.Cost.ZeroLine)
		}
		if a.Cleanup&cap.CleanFlushCache != 0 {
			for _, c := range m.Cores {
				flushed := c.CacheUnit().Flush()
				m.Clock.Advance(flushed * m.Cost.CacheFlushLine)
			}
		}
		if a.Cleanup&cap.CleanFlushTLB != 0 {
			if a.Resource.Kind == cap.ResMemory {
				m.ShootdownRegion(a.Resource.Mem)
			} else {
				m.ShootdownAll()
			}
		}
	}
	return nil
}
