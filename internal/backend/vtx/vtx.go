// Package vtx implements the x86_64 enforcement backend: per-domain
// second-level page tables (EPT) programmed from capability state,
// VMCall-style exits into the monitor, VMFUNC-style fast transitions
// between pre-registered domain pairs, and IOMMU context entries for
// device confinement (§3.3, §4: "On Intel x86_64, Tyche ... isolates
// domains with Intel VT-x and I/O-MMUs", "fast (100 cycles) domain
// transitions using VMFUNC").
package vtx

import (
	"fmt"
	"sync"

	"github.com/tyche-sim/tyche/internal/backend"
	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/trace"
)

type domainState struct {
	ept  *hw.EPT
	asid uint64

	// mu guards the lazily-populated per-core context cache: cores take
	// concurrent transitions into the same domain under the monitor's
	// shared lock. ept and asid are immutable after InstallDomain (the
	// EPT object synchronises its own contents).
	mu   sync.Mutex
	ctxs map[phys.CoreID]*hw.Context
}

// Backend is the VT-x enforcement backend.
//
// Concurrency contract: under the epoch scheme every monitor entry
// holds the top-level lock shared, so domain creation can race
// destruction at this layer. The domains map and nextASID carry their
// own RWMutex (domMu); fastPairs is registered and consulted on the
// shared path, so it carries another; per-domain context caches are
// guarded by the domainState mutex. A domainState pointer read under
// domMu.RLock stays valid after the unlock — RemoveDomain empties the
// EPT rather than freeing it, so a racing reader's view degrades to
// deny-all, never to a dangling table.
type Backend struct {
	mach  *hw.Machine
	space *cap.Space

	domMu    sync.RWMutex
	domains  map[cap.OwnerID]*domainState
	nextASID uint64

	pairMu    sync.RWMutex
	fastPairs map[fastKey]bool
}

type fastKey struct {
	core phys.CoreID
	a, b cap.OwnerID
}

func canonPair(core phys.CoreID, a, b cap.OwnerID) fastKey {
	if a > b {
		a, b = b, a
	}
	return fastKey{core, a, b}
}

// New returns a VT-x backend over mach and space.
func New(mach *hw.Machine, space *cap.Space) *Backend {
	return &Backend{
		mach:      mach,
		space:     space,
		domains:   make(map[cap.OwnerID]*domainState),
		fastPairs: make(map[fastKey]bool),
		nextASID:  1,
	}
}

// Name implements backend.Backend.
func (b *Backend) Name() string { return "vtx" }

// InstallDomain implements backend.Backend. The map insert holds domMu
// exclusively; the initial sync runs after the unlock (SyncDomain
// re-enters through state(), and the RWMutex is not reentrant).
func (b *Backend) InstallDomain(owner cap.OwnerID) error {
	b.domMu.Lock()
	if _, ok := b.domains[owner]; ok {
		b.domMu.Unlock()
		return fmt.Errorf("vtx: domain %d already installed", owner)
	}
	b.domains[owner] = &domainState{
		ept:  hw.NewEPT(),
		asid: b.nextASID,
		ctxs: make(map[phys.CoreID]*hw.Context),
	}
	b.nextASID++
	b.domMu.Unlock()
	return b.SyncDomain(owner)
}

func (b *Backend) state(owner cap.OwnerID) (*domainState, error) {
	b.domMu.RLock()
	st, ok := b.domains[owner]
	b.domMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %d", backend.ErrUnknownDomain, owner)
	}
	return st, nil
}

// SyncDomain implements backend.Backend: rebuild the domain's EPT from
// its current effective capabilities.
func (b *Backend) SyncDomain(owner cap.OwnerID) error {
	st, err := b.state(owner)
	if err != nil {
		return err
	}
	segs := backend.FlattenGrants(b.space.OwnerMemoryGrants(owner))
	st.ept.Clear()
	var pages uint64
	for _, s := range segs {
		if err := st.ept.Map(s.Region, s.Perm); err != nil {
			return fmt.Errorf("vtx: syncing domain %d: %w", owner, err)
		}
		pages += s.Region.Pages()
		b.mach.Trace(trace.GlobalCore, trace.KEPTMap, uint64(owner), 0, uint64(s.Perm), uint64(s.Region.Start), s.Region.Size())
	}
	b.mach.Clock.Advance(pages * b.mach.Cost.EPTUpdatePage)
	return nil
}

// RemoveDomain implements backend.Backend.
func (b *Backend) RemoveDomain(owner cap.OwnerID) error {
	st, err := b.state(owner)
	if err != nil {
		return err
	}
	// Empty the EPT before dropping the state: a core that still has
	// one of the domain's contexts installed (it died mid-run) keeps a
	// pointer to this table, and an empty table denies every access.
	st.ept.Clear()
	b.mach.Trace(trace.GlobalCore, trace.KEPTClear, uint64(owner), 0, 0, 0, 0)
	b.domMu.Lock()
	delete(b.domains, owner)
	b.domMu.Unlock()
	b.pairMu.Lock()
	for k := range b.fastPairs {
		if k.a == owner || k.b == owner {
			delete(b.fastPairs, k)
		}
	}
	b.pairMu.Unlock()
	for _, cpu := range b.mach.Cores {
		cpu.ClearVMFuncEntry(uint64(owner))
	}
	return nil
}

// Context implements backend.Backend.
func (b *Backend) Context(owner cap.OwnerID, core phys.CoreID) (*hw.Context, error) {
	st, err := b.state(owner)
	if err != nil {
		return nil, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	ctx, ok := st.ctxs[core]
	if !ok {
		ctx = &hw.Context{
			Owner:   uint64(owner),
			Filter:  st.ept,
			UsesEPT: true,
			ASID:    st.asid,
		}
		st.ctxs[core] = ctx
	}
	return ctx, nil
}

// Transition implements backend.Backend. The slow path models a full
// VM exit + entry; the fast path models VMFUNC(0) switching the EPT
// pointer from the core's pre-registered list without exiting.
func (b *Backend) Transition(core *hw.Core, to cap.OwnerID, fast bool) error {
	ctx, err := b.Context(to, core.ID())
	if err != nil {
		return err
	}
	cost := b.mach.Cost
	if fast {
		var from cap.OwnerID
		if cur := core.Context(); cur != nil {
			from = cap.OwnerID(cur.Owner)
		}
		b.pairMu.RLock()
		ok := b.fastPairs[canonPair(core.ID(), from, to)]
		b.pairMu.RUnlock()
		if !ok {
			return fmt.Errorf("%w: %d->%d on %v", backend.ErrNoFastPath, from, to, core.ID())
		}
		b.mach.Clock.Advance(cost.VMFunc)
		core.SwitchContextTagged(ctx)
		return nil
	}
	b.mach.Clock.Advance(cost.VMExit + cost.VMEntry)
	core.InstallContext(ctx)
	return nil
}

// RegisterFastPair implements backend.Backend. Besides authorising
// monitor-driven fast transitions, it installs both domains' contexts
// into the core's VMFUNC list (indexed by domain ID), enabling the
// *guest-level* VMFUNC instruction: code on a page mapped in both views
// can switch without any monitor involvement — the Hodor pattern §4.1
// cites for its 100-cycle figure.
func (b *Backend) RegisterFastPair(core phys.CoreID, a, bID cap.OwnerID) error {
	if _, err := b.state(a); err != nil {
		return err
	}
	if _, err := b.state(bID); err != nil {
		return err
	}
	b.pairMu.Lock()
	b.fastPairs[canonPair(core, a, bID)] = true
	b.pairMu.Unlock()
	cpu := b.mach.Core(core)
	if cpu == nil {
		return fmt.Errorf("vtx: no core %v", core)
	}
	for _, owner := range []cap.OwnerID{a, bID} {
		ctx, err := b.Context(owner, core)
		if err != nil {
			return err
		}
		cpu.SetVMFuncEntry(uint64(owner), ctx)
	}
	return nil
}

// SyncDevice implements backend.Backend: program the device's IOMMU
// context entry from capability state.
func (b *Backend) SyncDevice(dev phys.DeviceID) error {
	filter, err := backend.BuildDeviceFilter(b.space, dev)
	if err != nil {
		return err
	}
	b.mach.IOMMU.Attach(dev, filter)
	return nil
}

// ExecuteCleanups implements backend.Backend: zero revoked memory, flush
// caches, and shoot down TLBs as each action's policy demands.
func (b *Backend) ExecuteCleanups(acts []cap.CleanupAction) error {
	return backend.RunCleanups(b.mach, acts)
}
