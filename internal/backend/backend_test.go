package backend_test

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/tyche-sim/tyche/internal/backend"
	pmpbk "github.com/tyche-sim/tyche/internal/backend/pmp"
	"github.com/tyche-sim/tyche/internal/backend/vtx"
	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/phys"
)

const pg = phys.PageSize

func mem(start, pages uint64) cap.Resource {
	return cap.MemResource(phys.MakeRegion(phys.Addr(start*pg), pages*pg))
}

func newWorld(t testing.TB, pmpEntries int) (*hw.Machine, *cap.Space) {
	t.Helper()
	m, err := hw.NewMachine(hw.Config{
		MemBytes: 4 << 20, NumCores: 2, PMPEntries: pmpEntries,
		Devices: []hw.DeviceConfig{{Name: "gpu0", Class: hw.DevAccelerator}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m, cap.NewSpace()
}

func TestRightsToPerm(t *testing.T) {
	cases := []struct {
		r    cap.Rights
		want hw.Perm
	}{
		{cap.RightRead, hw.PermR},
		{cap.MemRW, hw.PermRW},
		{cap.MemRWX, hw.PermRWX},
		{cap.MemRWX | cap.RightShare, hw.PermRWX},
		{cap.RightRun, hw.PermNone},
		{cap.RightsNone, hw.PermNone},
	}
	for _, tc := range cases {
		if got := backend.RightsToPerm(tc.r); got != tc.want {
			t.Errorf("RightsToPerm(%v) = %v, want %v", tc.r, got, tc.want)
		}
	}
}

func TestFlattenGrants(t *testing.T) {
	grants := []cap.MemoryGrant{
		{Region: phys.MakeRegion(0, 4*pg), Rights: cap.RightRead, Node: 1},
		{Region: phys.MakeRegion(2*pg, 4*pg), Rights: cap.RightWrite, Node: 2},
		{Region: phys.MakeRegion(8*pg, 2*pg), Rights: cap.MemRWX, Node: 3},
		{Region: phys.MakeRegion(10*pg, 2*pg), Rights: cap.MemRWX, Node: 4}, // adjacent same perm: merge
	}
	segs := backend.FlattenGrants(grants)
	want := []backend.Segment{
		{Region: phys.MakeRegion(0, 2*pg), Perm: hw.PermR},
		{Region: phys.MakeRegion(2*pg, 2*pg), Perm: hw.PermRW},
		{Region: phys.MakeRegion(4*pg, 2*pg), Perm: hw.PermW},
		{Region: phys.MakeRegion(8*pg, 4*pg), Perm: hw.PermRWX},
	}
	if len(segs) != len(want) {
		t.Fatalf("segs = %v, want %v", segs, want)
	}
	for i := range segs {
		if segs[i] != want[i] {
			t.Fatalf("seg %d = %v, want %v", i, segs[i], want[i])
		}
	}
	if backend.FlattenGrants(nil) != nil {
		t.Fatal("empty input should flatten to nil")
	}
	// Rights with no hardware permission contribute nothing.
	none := backend.FlattenGrants([]cap.MemoryGrant{{Region: phys.MakeRegion(0, pg), Rights: cap.RightShare}})
	if none != nil {
		t.Fatalf("share-only grant should flatten to nil, got %v", none)
	}
}

func TestVTXInstallAndSync(t *testing.T) {
	m, s := newWorld(t, 0)
	bk := vtx.New(m, s)
	root, err := s.CreateRoot(1, mem(0, 64), cap.MemFull, cap.CleanNone)
	if err != nil {
		t.Fatal(err)
	}
	if err := bk.InstallDomain(1); err != nil {
		t.Fatal(err)
	}
	if err := bk.InstallDomain(1); err == nil {
		t.Fatal("double install must fail")
	}
	ctx, err := bk.Context(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ctx.Filter.Check(0, hw.PermR) || !ctx.Filter.Check(phys.Addr(63*pg), hw.PermX) {
		t.Fatal("installed EPT should reflect root capability")
	}
	// Grant away pages 0-3 to domain 2, sync, and verify the EPT shrank.
	if _, err := s.Grant(root, 2, mem(0, 4), cap.MemRW, cap.CleanNone); err != nil {
		t.Fatal(err)
	}
	if err := bk.InstallDomain(2); err != nil {
		t.Fatal(err)
	}
	if err := bk.SyncDomain(1); err != nil {
		t.Fatal(err)
	}
	if ctx.Filter.Check(0, hw.PermR) {
		t.Fatal("granted-away page still mapped in granter EPT")
	}
	ctx2, err := bk.Context(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ctx2.Filter.Check(0, hw.PermW) {
		t.Fatal("grantee EPT missing granted page")
	}
	if ctx2.Filter.Check(0, hw.PermX) {
		t.Fatal("grantee EPT must honour attenuated rights")
	}
	if ctx.ASID == ctx2.ASID {
		t.Fatal("domains must get distinct ASIDs")
	}
	if err := bk.SyncDomain(9); !errors.Is(err, backend.ErrUnknownDomain) {
		t.Fatalf("sync unknown: %v", err)
	}
}

func TestVTXTransitions(t *testing.T) {
	m, s := newWorld(t, 0)
	bk := vtx.New(m, s)
	if _, err := s.CreateRoot(1, mem(0, 16), cap.MemFull, cap.CleanNone); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateRoot(2, mem(16, 16), cap.MemFull, cap.CleanNone); err != nil {
		t.Fatal(err)
	}
	for _, d := range []cap.OwnerID{1, 2} {
		if err := bk.InstallDomain(d); err != nil {
			t.Fatal(err)
		}
	}
	core := m.Cores[0]
	before := m.Clock.Cycles()
	if err := bk.Transition(core, 1, false); err != nil {
		t.Fatal(err)
	}
	slow := m.Clock.Cycles() - before
	if slow < m.Cost.VMExit {
		t.Fatalf("slow transition charged %d cycles", slow)
	}
	if core.Context().Owner != 1 {
		t.Fatal("context not installed")
	}
	// Fast path requires registration.
	if err := bk.Transition(core, 2, true); !errors.Is(err, backend.ErrNoFastPath) {
		t.Fatalf("unregistered fast transition: %v", err)
	}
	if err := bk.RegisterFastPair(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	before = m.Clock.Cycles()
	if err := bk.Transition(core, 2, true); err != nil {
		t.Fatal(err)
	}
	fast := m.Clock.Cycles() - before
	if fast != m.Cost.VMFunc {
		t.Fatalf("fast transition charged %d, want %d", fast, m.Cost.VMFunc)
	}
	if fast*5 >= slow {
		t.Fatalf("fast (%d) should be ≪ slow (%d)", fast, slow)
	}
	if core.Context().Owner != 2 {
		t.Fatal("fast switch did not change context")
	}
	// Registration is symmetric.
	if err := bk.Transition(core, 1, true); err != nil {
		t.Fatalf("reverse fast transition: %v", err)
	}
	// Removing a domain drops its fast pairs.
	if err := bk.RemoveDomain(2); err != nil {
		t.Fatal(err)
	}
	if err := bk.Transition(core, 2, true); err == nil {
		t.Fatal("transition to removed domain must fail")
	}
	if err := bk.RegisterFastPair(0, 1, 2); !errors.Is(err, backend.ErrUnknownDomain) {
		t.Fatalf("register with removed domain: %v", err)
	}
}

func TestVTXFastSwitchKeepsTLB(t *testing.T) {
	m, s := newWorld(t, 0)
	bk := vtx.New(m, s)
	for _, d := range []cap.OwnerID{1, 2} {
		if _, err := s.CreateRoot(d, mem(uint64(d-1)*16, 16), cap.MemFull, cap.CleanNone); err != nil {
			t.Fatal(err)
		}
		if err := bk.InstallDomain(d); err != nil {
			t.Fatal(err)
		}
	}
	if err := bk.RegisterFastPair(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	core := m.Cores[0]
	if err := bk.Transition(core, 1, false); err != nil {
		t.Fatal(err)
	}
	// Warm the TLB via an interpreted load.
	a := hw.NewAsm()
	a.Movi(1, uint32(0)).Ld(2, 1, 0).Hlt()
	code := a.MustAssemble(8 * pg)
	if err := m.Mem.WriteAt(8*pg, code); err != nil {
		t.Fatal(err)
	}
	core.PC = 8 * pg
	if _, trap := core.Run(10); trap.Kind != hw.TrapHalt {
		t.Fatalf("trap = %v", trap)
	}
	if core.TLBUnit().Len() == 0 {
		t.Fatal("expected warm TLB")
	}
	warm := core.TLBUnit().Len()
	if err := bk.Transition(core, 2, true); err != nil {
		t.Fatal(err)
	}
	if core.TLBUnit().Len() != warm {
		t.Fatal("fast switch must not flush the tagged TLB")
	}
	// Slow transition flushes.
	if err := bk.Transition(core, 1, false); err != nil {
		t.Fatal(err)
	}
	if core.TLBUnit().Len() != 0 {
		t.Fatal("slow transition must flush the TLB")
	}
}

func TestPMPBudgetValidation(t *testing.T) {
	m, s := newWorld(t, 4)
	monRegion := phys.MakeRegion(phys.Addr(3<<20), 1<<20)
	bk, err := pmpbk.New(m, s, monRegion)
	if err != nil {
		t.Fatal(err)
	}
	if bk.Budget() != 3 {
		t.Fatalf("budget = %d, want 3 (4 entries - 1 reserved)", bk.Budget())
	}
	// Domain with 3 disjoint same-perm segments fits.
	if _, err := s.CreateRoot(1, mem(0, 2), cap.MemFull, cap.CleanNone); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateRoot(1, mem(4, 2), cap.MemFull, cap.CleanNone); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateRoot(1, mem(8, 2), cap.MemFull, cap.CleanNone); err != nil {
		t.Fatal(err)
	}
	if err := bk.InstallDomain(1); err != nil {
		t.Fatal(err)
	}
	// A fourth disjoint segment exceeds the budget.
	if _, err := s.CreateRoot(1, mem(12, 2), cap.MemFull, cap.CleanNone); err != nil {
		t.Fatal(err)
	}
	err = bk.SyncDomain(1)
	var exhausted *backend.PMPExhaustedError
	if !errors.As(err, &exhausted) {
		t.Fatalf("err = %v, want PMPExhaustedError", err)
	}
	if exhausted.Needed != 4 || exhausted.Available != 3 {
		t.Fatalf("exhausted = %+v", exhausted)
	}
}

func TestPMPTransitionProgramsAndProtectsMonitor(t *testing.T) {
	m, s := newWorld(t, 8)
	monRegion := phys.MakeRegion(phys.Addr(3<<20), 1<<20)
	bk, err := pmpbk.New(m, s, monRegion)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateRoot(1, mem(0, 16), cap.MemFull, cap.CleanNone); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateRoot(2, mem(16, 16), cap.MemFull, cap.CleanNone); err != nil {
		t.Fatal(err)
	}
	if err := bk.InstallDomain(1); err != nil {
		t.Fatal(err)
	}
	if err := bk.InstallDomain(2); err != nil {
		t.Fatal(err)
	}
	core := m.Cores[0]
	if err := bk.Transition(core, 1, false); err != nil {
		t.Fatal(err)
	}
	f := core.Context().Filter
	if !f.Check(0, hw.PermR) {
		t.Fatal("domain 1 memory not programmed")
	}
	if f.Check(phys.Addr(16*pg), hw.PermR) {
		t.Fatal("domain 2 memory visible to domain 1")
	}
	if f.Check(monRegion.Start, hw.PermR) {
		t.Fatal("monitor region must be denied by the locked entry")
	}
	// Switch to domain 2: PMP reprogrammed.
	if err := bk.Transition(core, 2, false); err != nil {
		t.Fatal(err)
	}
	f = core.Context().Filter
	if f.Check(0, hw.PermR) || !f.Check(phys.Addr(16*pg), hw.PermR) {
		t.Fatal("PMP not reprogrammed for domain 2")
	}
	if f.Check(monRegion.Start, hw.PermW) {
		t.Fatal("monitor region exposed after reprogramming")
	}
	// No fast path.
	if err := bk.Transition(core, 1, true); !errors.Is(err, backend.ErrNoFastPath) {
		t.Fatalf("fast on pmp: %v", err)
	}
	if err := bk.RegisterFastPair(0, 1, 2); !errors.Is(err, backend.ErrNoFastPath) {
		t.Fatalf("register fast on pmp: %v", err)
	}
}

func TestPMPSyncReprogramsRunningCore(t *testing.T) {
	m, s := newWorld(t, 8)
	bk, err := pmpbk.New(m, s, phys.Region{})
	if err != nil {
		t.Fatal(err)
	}
	root, err := s.CreateRoot(1, mem(0, 16), cap.MemFull, cap.CleanNone)
	if err != nil {
		t.Fatal(err)
	}
	if err := bk.InstallDomain(1); err != nil {
		t.Fatal(err)
	}
	core := m.Cores[0]
	if err := bk.Transition(core, 1, false); err != nil {
		t.Fatal(err)
	}
	if !core.Context().Filter.Check(0, hw.PermR) {
		t.Fatal("precondition: access works")
	}
	// Grant pages 0-7 away while domain 1 is on-core; sync must
	// immediately reprogram the running core's PMP.
	if _, err := s.Grant(root, 2, mem(0, 8), cap.MemRW, cap.CleanNone); err != nil {
		t.Fatal(err)
	}
	if err := bk.SyncDomain(1); err != nil {
		t.Fatal(err)
	}
	if core.Context().Filter.Check(0, hw.PermR) {
		t.Fatal("revoked access still programmed on running core")
	}
	if !core.Context().Filter.Check(phys.Addr(8*pg), hw.PermR) {
		t.Fatal("remaining access lost")
	}
}

func TestRunCleanups(t *testing.T) {
	m, s := newWorld(t, 0)
	_ = s
	r := phys.MakeRegion(0x4000, 2*pg)
	if err := m.Mem.WriteAt(r.Start, []byte{0xaa, 0xbb}); err != nil {
		t.Fatal(err)
	}
	core := m.Cores[0]
	core.TLBUnit().Insert(1, r.Start.Page(), hw.PermRW, 0)
	core.CacheUnit().Touch(r.Start, true)
	acts := []cap.CleanupAction{{
		Owner:    2,
		Resource: cap.MemResource(r),
		Cleanup:  cap.CleanObfuscate,
	}}
	before := m.Clock.Cycles()
	if err := backend.RunCleanups(m, acts); err != nil {
		t.Fatal(err)
	}
	if m.Clock.Cycles() == before {
		t.Fatal("cleanups must charge cycles")
	}
	b, err := m.Mem.ReadByteAt(r.Start)
	if err != nil || b != 0 {
		t.Fatalf("memory not zeroed: %#x %v", b, err)
	}
	if _, hit := core.TLBUnit().Lookup(1, r.Start.Page(), 0); hit {
		t.Fatal("TLB entry survived the shootdown")
	}
	if core.CacheUnit().Resident() != 0 {
		t.Fatal("cache not flushed")
	}
	// CleanNone does nothing.
	if err := backend.RunCleanups(m, []cap.CleanupAction{{Resource: cap.MemResource(r)}}); err != nil {
		t.Fatal(err)
	}
	// Out-of-bounds zero reports an error.
	bad := []cap.CleanupAction{{
		Resource: cap.MemResource(phys.MakeRegion(phys.Addr(m.Mem.Size()), pg)),
		Cleanup:  cap.CleanZero,
	}}
	if err := backend.RunCleanups(m, bad); err == nil {
		t.Fatal("expected zeroing beyond memory to fail")
	}
}

func TestBuildDeviceFilterUnion(t *testing.T) {
	m, s := newWorld(t, 0)
	dev := phys.DeviceID(0)
	// Domain 1 holds DMA on the device and pages 0-3; domain 2 holds
	// the device without DMA and pages 8-11.
	d1mem, err := s.CreateRoot(1, mem(0, 4), cap.MemFull, cap.CleanNone)
	if err != nil {
		t.Fatal(err)
	}
	_ = d1mem
	if _, err := s.CreateRoot(1, cap.DeviceResource(dev), cap.DeviceFull, cap.CleanNone); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateRoot(2, mem(8, 4), cap.MemFull, cap.CleanNone); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateRoot(2, cap.DeviceResource(dev), cap.RightUse, cap.CleanNone); err != nil {
		t.Fatal(err)
	}
	f, err := backend.BuildDeviceFilter(s, dev)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Check(0, hw.PermR) {
		t.Fatal("DMA holder's memory missing from device filter")
	}
	if f.Check(phys.Addr(8*pg), hw.PermR) {
		t.Fatal("non-DMA holder's memory must not be reachable")
	}
	if f.Check(0, hw.PermX) {
		t.Fatal("device filter must not carry execute")
	}
	m.IOMMU.Attach(dev, f)
	m.IOMMU.DefaultAllow = false
	gpu := m.Device(dev)
	if err := gpu.DMAWrite(0, []byte{1}); err != nil {
		t.Fatalf("authorized DMA failed: %v", err)
	}
	if err := gpu.DMAWrite(phys.Addr(8*pg), []byte{1}); err == nil {
		t.Fatal("unauthorized DMA succeeded")
	}
}

// TestDifferentialBackends drives identical random capability workloads
// through both backends and checks they make identical accept/deny
// decisions at every sampled address — the paper's claim that the
// capability model is platform-independent and the backends merely
// enforce it (§4.1).
func TestDifferentialBackends(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))

		mV, sV := newWorld(t, 64)
		mP, sP := newWorld(t, 64)
		bkV := vtx.New(mV, sV)
		bkP, err := pmpbk.New(mP, sP, phys.Region{})
		if err != nil {
			t.Fatal(err)
		}

		type worldOp func(s *cap.Space) // same op applied to both spaces
		roots := map[cap.OwnerID]cap.NodeID{}
		apply := func(op worldOp) {
			op(sV)
			op(sP)
		}
		// Boot both worlds identically: domains 1..3 with root regions.
		for d := cap.OwnerID(1); d <= 3; d++ {
			d := d
			apply(func(s *cap.Space) {
				id, err := s.CreateRoot(d, mem(uint64(d-1)*64, 64), cap.MemFull, cap.CleanNone)
				if err != nil {
					t.Fatal(err)
				}
				roots[d] = id // same IDs in both spaces (deterministic)
			})
			if err := bkV.InstallDomain(d); err != nil {
				t.Fatal(err)
			}
			if err := bkP.InstallDomain(d); err != nil {
				t.Fatal(err)
			}
		}
		// Random shares/grants/revokes, mirrored.
		var created []cap.NodeID
		for i := 0; i < 40; i++ {
			switch rng.Intn(3) {
			case 0, 1:
				src := cap.OwnerID(rng.Intn(3) + 1)
				dst := cap.OwnerID(rng.Intn(3) + 1)
				off := uint64(rng.Intn(64)) + uint64(src-1)*64
				n := uint64(rng.Intn(8) + 1)
				if off+n > uint64(src)*64 {
					continue
				}
				grant := rng.Intn(2) == 0
				var gotV, gotP cap.NodeID
				var errV, errP error
				sub := mem(off, n)
				rights := cap.MemRW
				if grant {
					gotV, errV = sV.Grant(roots[src], dst, sub, rights, cap.CleanNone)
					gotP, errP = sP.Grant(roots[src], dst, sub, rights, cap.CleanNone)
				} else {
					gotV, errV = sV.Share(roots[src], dst, sub, rights, cap.CleanNone)
					gotP, errP = sP.Share(roots[src], dst, sub, rights, cap.CleanNone)
				}
				if (errV == nil) != (errP == nil) {
					t.Fatalf("seed %d op %d: divergent op outcome: %v vs %v", seed, i, errV, errP)
				}
				if errV == nil {
					if gotV != gotP {
						t.Fatalf("node IDs diverged: %d vs %d", gotV, gotP)
					}
					created = append(created, gotV)
				}
			case 2:
				if len(created) == 0 {
					continue
				}
				id := created[rng.Intn(len(created))]
				_, errV := sV.Revoke(id)
				_, errP := sP.Revoke(id)
				if (errV == nil) != (errP == nil) {
					t.Fatalf("seed %d: divergent revoke outcome", seed)
				}
			}
			// Sync everything in both worlds.
			for d := cap.OwnerID(1); d <= 3; d++ {
				if err := bkV.SyncDomain(d); err != nil {
					t.Fatalf("vtx sync: %v", err)
				}
				if err := bkP.SyncDomain(d); err != nil {
					t.Fatalf("pmp sync: %v", err)
				}
			}
		}
		// Compare decisions: for each domain, transition a core in each
		// world and sample addresses.
		for d := cap.OwnerID(1); d <= 3; d++ {
			if err := bkV.Transition(mV.Cores[0], d, false); err != nil {
				t.Fatal(err)
			}
			if err := bkP.Transition(mP.Cores[0], d, false); err != nil {
				t.Fatal(err)
			}
			fV := mV.Cores[0].Context().Filter
			fP := mP.Cores[0].Context().Filter
			for pgN := uint64(0); pgN < 192; pgN += 2 {
				a := phys.Addr(pgN * pg)
				for _, p := range []hw.Perm{hw.PermR, hw.PermW} {
					dv, dp := fV.Check(a, p), fP.Check(a, p)
					if dv != dp {
						t.Fatalf("seed %d: domain %d at %v perm %v: vtx=%v pmp=%v",
							seed, d, a, p, dv, dp)
					}
					// Both must agree with the capability model.
					want := cap.RightRead
					if p == hw.PermW {
						want = cap.RightWrite
					}
					if model := sV.CheckMemAccess(d, a, want); model != dv {
						t.Fatalf("seed %d: domain %d at %v: model=%v hw=%v", seed, d, a, model, dv)
					}
				}
			}
		}
	}
}
