package bench

import (
	"github.com/tyche-sim/tyche/internal/baseline"
	"github.com/tyche-sim/tyche/internal/core"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/libtyche"
	"github.com/tyche-sim/tyche/internal/oskit"
	"github.com/tyche-sim/tyche/internal/phys"
)

func init() {
	register(Experiment{
		ID:    "C8",
		Title: "Privileged-attack suite: commodity monopoly vs isolation monitor",
		Paper: "§2.2 'privileged code can easily bypass process isolation'; §3 the monitor closes it",
		Run:   runC8,
	})
}

// runC8 runs the same attack suite against (a) a commodity OS alone on
// the machine and (b) the same OS retrofitted onto the monitor with the
// sensitive component moved into an enclave. Shape: every attack
// succeeds on commodity (that is §2.2's point), every attack is denied
// under the monitor — while the OS keeps its process abstraction intact.
func runC8(cfg Config) (*Result, error) {
	res := &Result{
		ID: "C8", Title: "Privileged-attack suite",
		Columns: []string{"attack", "commodity OS", "oskit on tyche"},
	}

	// ---------- commodity machine ----------
	cm, err := hw.NewMachine(hw.Config{
		MemBytes: 16 << 20, NumCores: 2, IOMMUAllowByDefault: true,
		Devices: []hw.DeviceConfig{{Name: "gpu0", Class: hw.DevAccelerator}},
	})
	if err != nil {
		return nil, err
	}
	cos, err := baseline.NewCommodity(cm, 16)
	if err != nil {
		return nil, err
	}
	victim, err := cos.Spawn("victim", func(base phys.Addr) []byte {
		a := hw.NewAsm()
		a.Movi(0, uint32(baseline.SysExit)).Movi(1, 0).Syscall()
		return a.MustAssemble(base)
	}, 1, 1)
	if err != nil {
		return nil, err
	}
	secret := []byte("comm-secret")
	if err := cm.Mem.WriteAt(victim.Data.Start, secret); err != nil {
		return nil, err
	}
	// A1: kernel reads the app's secret.
	got, _ := cos.KernelRead(victim.Data.Start, uint64(len(secret)))
	a1c := string(got) == string(secret)
	// A2: device DMAs the secret out.
	buf := make([]byte, len(secret))
	dmaErr := cm.Device(0).DMARead(victim.Data.Start, buf)
	a2c := dmaErr == nil && string(buf) == string(secret)
	// A3: kernel rewrites the app's code (integrity).
	a3c := cm.Mem.WriteAt(victim.Code.Start, []byte{0xff}) == nil

	// ---------- oskit on tyche ----------
	w, err := newWorld(cfg, defaultWorldOpts())
	if err != nil {
		return nil, err
	}
	osk, err := oskit.New(w.mon, core.InitialDomain, dom0ReservePages)
	if err != nil {
		return nil, err
	}
	// The sensitive component is an enclave with the same secret.
	img := haltImage("vault").WithData(".secret", []byte("tych-secret"))
	opts := libtyche.DefaultLoadOptions()
	opts.Cores = []phys.CoreID{1}
	vault, err := osk.Client().NewEnclave(img, opts)
	if err != nil {
		return nil, err
	}
	sec, _ := vault.SegmentRegion(".secret")
	// A1': the kernel (ring 0, owns the machine's management) reads it.
	_, kErr := osk.KernelRead(sec.Start, 11)
	a1t := kErr == nil
	// A2': a device the kernel controls DMAs it.
	dma2 := w.mach.Device(0).DMARead(sec.Start, make([]byte, 11))
	a2t := dma2 == nil
	// A3': the kernel overwrites enclave code.
	text, _ := vault.SegmentRegion(".text")
	wErr := w.mon.CopyInto(core.InitialDomain, text.Start, []byte{0xff})
	a3t := wErr == nil
	// A4': interpreted ring-0 kernel code reads the enclave directly —
	// enforcement in hardware, not just in the API layer.
	attack := hw.NewAsm()
	attack.Movi(1, uint32(sec.Start))
	attack.Ld(2, 1, 0)
	attack.Hlt()
	if err := w.mon.CopyInto(core.InitialDomain, 8*phys.PageSize, attack.MustAssemble(8*phys.PageSize)); err != nil {
		return nil, err
	}
	cpu := w.mach.Core(0)
	cpu.PC = 8 * phys.PageSize
	cpu.Ring = hw.RingKernel
	cpu.ClearHalt()
	runRes, err := w.mon.RunCore(0, 100)
	if err != nil {
		return nil, err
	}
	a4t := runRes.Trap.Kind == hw.TrapHalt

	// Processes still work under the monitor (the OS keeps its
	// abstraction, §3.5).
	pid, err := osk.Spawn("app", func(base phys.Addr) []byte {
		a := hw.NewAsm()
		a.Movi(0, uint32(oskit.SysExit)).Movi(1, 7).Syscall()
		return a.MustAssemble(base)
	}, 1, 1)
	if err != nil {
		return nil, err
	}
	if err := osk.RunAll(0, 1000, 4); err != nil {
		return nil, err
	}
	p, _ := osk.Process(pid)
	procsWork := p.State() == oskit.ProcExited && p.ExitCode() == 7

	res.row("privileged read of app/enclave secret", attackWord(a1c), attackWord(a1t))
	res.row("device DMA exfiltration", attackWord(a2c), attackWord(a2t))
	res.row("privileged code-integrity violation", attackWord(a3c), attackWord(a3t))
	res.row("ring-0 interpreted read (hardware path)", attackWord(true), attackWord(a4t))
	res.row("OS process abstraction still functional", "yes", boolYes(procsWork))

	res.check("commodity-bypass-works", a1c && a2c && a3c,
		"all privileged attacks succeed on the commodity baseline (the §2.2 monopoly)")
	res.check("monitor-closes-bypass", !a1t && !a2t && !a3t && !a4t,
		"all privileged attacks denied under the monitor")
	res.check("os-retrofit-intact", procsWork,
		"the retrofitted OS still schedules processes and handles syscalls")
	return res, nil
}

func attackWord(succeeded bool) string {
	if succeeded {
		return "SUCCEEDS"
	}
	return "denied"
}
