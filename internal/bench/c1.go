package bench

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
)

func init() {
	register(Experiment{
		ID:    "C1",
		Title: "Monitor TCB size: thousands of lines, not millions",
		Paper: "§4 '<10K LOC', §3.5 'orders of magnitude smaller'",
		Run:   runC1,
	})
}

// runC1 counts the repository's non-test Go lines per subsystem and
// checks the paper's shape: the monitor core (capability engine +
// monitor + backends, the code a verifier must trust) stays under the
// 10K-line budget and is a small fraction of the overall system —
// "an isolation monitor or microkernel is expected to be orders of
// magnitude smaller, e.g., thousands of lines of code instead of
// millions, than a typical monolithic kernel or hypervisor" (§3.5).
func runC1(cfg Config) (*Result, error) {
	res := &Result{
		ID: "C1", Title: "Monitor TCB size",
		Columns: []string{"subsystem", "packages", "LoC", "in TCB"},
	}
	root, err := repoRoot()
	if err != nil {
		return nil, err
	}
	groups := []struct {
		name string
		pkgs []string
		tcb  bool
	}{
		{"capability engine", []string{"internal/cap", "internal/phys"}, true},
		{"monitor core", []string{"internal/core"}, true},
		{"enforcement backends", []string{"internal/backend"}, true},
		{"attestation verifier", []string{"internal/attest", "internal/tpm"}, false},
		{"hardware substrate (simulator)", []string{"internal/hw"}, false},
		{"domain libraries (libtyche, image)", []string{"internal/libtyche", "internal/image"}, false},
		{"guest OS kit", []string{"internal/oskit"}, false},
		{"baselines", []string{"internal/baseline"}, false},
		{"experiments (bench)", []string{"internal/bench"}, false},
	}
	var tcb, total int
	counts := make(map[string]int)
	for _, g := range groups {
		var n int
		for _, p := range g.pkgs {
			c, err := countGoLines(filepath.Join(root, p))
			if err != nil {
				return nil, err
			}
			n += c
		}
		counts[g.name] = n
		total += n
		if g.tcb {
			tcb += n
		}
		res.row(g.name, strings.Join(g.pkgs, ","), fmt.Sprintf("%d", n), boolYes(g.tcb))
	}
	res.row("TOTAL", "", fmt.Sprintf("%d", total), "")
	res.row("TCB (trusted by verifiers)", "", fmt.Sprintf("%d", tcb), "yes")

	res.check("tcb-under-10k", tcb > 0 && tcb < 10000, "TCB = %d lines (< 10000)", tcb)
	res.check("tcb-minority", tcb*2 < total, "TCB is %d of %d total lines (< 1/2)", tcb, total)
	res.note("non-test .go lines; the TCB is what a verifier must trust after attestation")
	res.note("the hardware substrate replaces silicon, not monitor code; Linux-class kernels it hosts are millions of lines")
	return res, nil
}

func boolYes(v bool) string {
	if v {
		return "yes"
	}
	return "no"
}

// repoRoot locates the repository root from this source file's path.
func repoRoot() (string, error) {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		return "", fmt.Errorf("bench: cannot locate source tree")
	}
	// file = <root>/internal/bench/c1.go
	root := filepath.Dir(filepath.Dir(filepath.Dir(file)))
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		return "", fmt.Errorf("bench: source tree not available at %s (LoC audit needs a checkout): %w", root, err)
	}
	return root, nil
}

// countGoLines counts non-test Go source lines (excluding blank lines)
// under dir, recursively.
func countGoLines(dir string) (int, error) {
	total := 0
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 1024*1024), 1024*1024)
		for sc.Scan() {
			if strings.TrimSpace(sc.Text()) != "" {
				total++
			}
		}
		return sc.Err()
	})
	return total, err
}
