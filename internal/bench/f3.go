package bench

import (
	"fmt"
	"strings"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/core"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/libtyche"
	"github.com/tyche-sim/tyche/internal/oskit"
	"github.com/tyche-sim/tyche/internal/phys"
)

func init() {
	register(Experiment{
		ID:    "F3",
		Title: "Trust domains orthogonal to system abstractions",
		Paper: "Figure 3",
		Run:   runF3,
	})
}

// runF3 builds Figure 3's deployment — hypervisor, SaaS VM, processes,
// driver, enclaves — and tabulates how trust domains cut across the
// traditional abstraction boxes: the crypto engine (a "process-level"
// component) and the SaaS VM are separate domains; the OS's processes
// are *not* domains (the OS keeps that abstraction); and the driver
// compartment is a domain inside the kernel's box.
func runF3(cfg Config) (*Result, error) {
	res := &Result{
		ID: "F3", Title: "Trust domains vs system abstractions",
		Columns: []string{"component", "system abstraction", "trust domain", "mem(KiB)", "cores", "devices", "state"},
	}
	w, err := newWorld(cfg, defaultWorldOpts())
	if err != nil {
		return nil, err
	}
	d, err := buildSaaS(w)
	if err != nil {
		return nil, err
	}
	// The provider also runs a commodity OS in dom0 with two plain
	// processes (no trust domain of their own), plus a NIC driver
	// compartment (a trust domain inside the kernel's box).
	os, err := oskit.NewWithClient(w.mon, w.cl)
	if err != nil {
		return nil, err
	}
	mkProc := func(name string) (oskit.Pid, error) {
		return os.Spawn(name, procExit0, 1, 1)
	}
	p1, err := mkProc("web")
	if err != nil {
		return nil, err
	}
	p2, err := mkProc("db")
	if err != nil {
		return nil, err
	}
	driverImg := haltImage("nic-driver").WithBSS(".dmapool", 4*phys.PageSize)
	driver, err := os.Client().NewKernelCompartment(driverImg, []phys.DeviceID{1}, libtyche.DefaultLoadOptions())
	if err != nil {
		return nil, err
	}

	type comp struct {
		name, box string
		dom       core.DomainID // 0 = not a domain of its own
	}
	comps := []comp{
		{"cloud provider hypervisor+OS (dom0)", "hypervisor", core.InitialDomain},
		{"process web", "process in dom0", 0},
		{"process db", "process in dom0", 0},
		{"nic driver compartment", "kernel module in dom0", driver.ID()},
		{"SaaS VM", "virtual machine", d.vm.ID()},
		{"SaaS application", "process in VM", d.app.ID()},
		{"crypto engine", "enclave in VM", d.crypto.ID()},
		{"GPU", "PCI device", d.gpuDom.ID()},
	}
	for _, c := range comps {
		if c.dom == 0 {
			res.row(c.name, c.box, "-(OS abstraction)", "-", "-", "-", "-")
			continue
		}
		dom, err := w.mon.Domain(c.dom)
		if err != nil {
			return nil, err
		}
		recs, err := w.mon.Enumerate(c.dom)
		if err != nil {
			return nil, err
		}
		var memKiB uint64
		var cores, devs []string
		for _, r := range recs {
			switch r.Resource.Kind {
			case cap.ResMemory:
				memKiB += r.Resource.Mem.Size() / 1024
			case cap.ResCore:
				cores = append(cores, r.Resource.Core.String())
			case cap.ResDevice:
				devs = append(devs, r.Resource.Device.String())
			}
		}
		res.row(c.name, c.box, fmt.Sprintf("domain %d", c.dom), fmtU(memKiB),
			orDash(strings.Join(cores, ",")), orDash(strings.Join(devs, ",")), dom.State().String())
	}

	// Orthogonality checks: domain boundaries do not follow privilege
	// boundaries.
	// (a) The hypervisor (most privileged) cannot read the enclave.
	text, _ := d.crypto.SegmentRegion(".text")
	hv := w.mon.CheckAccess(core.InitialDomain, text.Start, cap.RightRead)
	res.check("hypervisor-vs-enclave", !hv, "dom0 (hypervisor) has no access to the crypto engine")
	// (b) The VM cannot read its own child enclave either (nesting cuts
	// both ways).
	vmRead := w.mon.CheckAccess(d.vm.ID(), text.Start, cap.RightRead)
	res.check("vm-vs-nested-enclave", !vmRead, "the SaaS VM cannot read the enclave it spawned")
	// (c) The driver compartment is isolated from the kernel that
	// created it, while plain processes are not monitor-isolated.
	pool, _ := driver.SegmentRegion(".dmapool")
	kd := w.mon.CheckAccess(core.InitialDomain, pool.Start, cap.RightRead)
	res.check("kernel-vs-driver", !kd, "dom0 kernel cannot touch the driver compartment")
	proc1, _ := os.Process(p1)
	kp := w.mon.CheckAccess(core.InitialDomain, proc1.DataRegion().Start, cap.RightRead)
	res.check("kernel-vs-process", kp, "plain processes stay inside dom0's domain (OS abstraction preserved)")
	_ = p2
	res.note("trust domains colour the deployment independently of the hypervisor/VM/process boxes")
	return res, nil
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// procExit0 is the minimal oskit process body: exit(0).
func procExit0(base phys.Addr) []byte {
	a := hw.NewAsm()
	a.Movi(0, uint32(oskit.SysExit)).Movi(1, 0).Syscall()
	return a.MustAssemble(base)
}
