package bench

import (
	"fmt"
	"time"

	"github.com/tyche-sim/tyche/internal/core"
	"github.com/tyche-sim/tyche/internal/fault"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/image"
	"github.com/tyche-sim/tyche/internal/libtyche"
	"github.com/tyche-sim/tyche/internal/phys"
)

func init() {
	register(Experiment{
		ID:    "C16",
		Title: "Fault containment: kill-and-reclaim latency vs domain size and core count",
		Paper: "§3 revocation over the lineage forest; §5 'reduced TCB' — a crashed domain must be destroyable without trusting it",
		Run:   runC16,
	})
}

// runC16 measures the monitor's containment path: force-killing a
// domain revokes its capability subtree, scrubs its exclusive memory,
// shoots down every core's TLB, and removes the backend state. The
// latency is dominated by the scrub (linear in domain size) and the
// per-core TLB shootdown (linear in core count); the sweep exposes both
// axes. A third axis holds the victim fixed and grows the population of
// unrelated live domains: epoch-based revocation detaches only the
// victim's subtree and defers node frees to the grace period, so kill
// latency must stay flat as the rest of the machine fills up — the
// bystanders are never walked, locked, or resynced. A final end-to-end
// round injects a deterministic machine check under a running victim
// and checks that a concurrent survivor finishes its workload untouched
// — containment, not just teardown.
func runC16(cfg Config) (*Result, error) {
	res := &Result{
		ID: "C16", Title: "Kill-and-reclaim latency",
		Columns: []string{"domain pages", "cores", "bystanders", "kill cycles", "cycles/page", "scrubbed", "wall us"},
	}
	sizeSweep := []uint64{16, 64, 256}
	coreSweep := []int{1, 2, 4}
	domSweep := []int{0, 8, 32}
	if cfg.Quick {
		sizeSweep = []uint64{16, 128}
		coreSweep = []int{1, 4}
		domSweep = []int{0, 16}
	}
	// Axis 1: domain size at a fixed 2-core machine.
	var sizeCycles []uint64
	for _, pages := range sizeSweep {
		kc, err := c16Kill(cfg, res, pages, 2, 0)
		if err != nil {
			return nil, err
		}
		sizeCycles = append(sizeCycles, kc)
	}
	grows := true
	for i := 1; i < len(sizeCycles); i++ {
		if sizeCycles[i] <= sizeCycles[i-1] {
			grows = false
		}
	}
	res.check("latency-scales-with-size", grows,
		"kill cycles grow with domain size: %v", sizeCycles)

	// Axis 2: core count at a fixed 64-page domain (TLB shootdown cost).
	var coreCycles []uint64
	for _, cores := range coreSweep {
		kc, err := c16Kill(cfg, res, 64, cores, 0)
		if err != nil {
			return nil, err
		}
		coreCycles = append(coreCycles, kc)
	}
	res.check("shootdown-scales-with-cores",
		coreCycles[len(coreCycles)-1] > coreCycles[0],
		"kill cycles grow with core count (TLB shootdown): %v", coreCycles)

	// Axis 3: live-domain count at a fixed 64-page victim on 2 cores.
	// Containment touches the victim's subtree and nothing else, so the
	// kill must cost the same on a crowded machine as on an empty one.
	var domCycles []uint64
	for _, n := range domSweep {
		kc, err := c16Kill(cfg, res, 64, 2, n)
		if err != nil {
			return nil, err
		}
		domCycles = append(domCycles, kc)
	}
	base, crowded := domCycles[0], domCycles[len(domCycles)-1]
	res.metric("kill_cycles_vs_domains_ratio", float64(crowded)/float64(base))
	res.check("latency-flat-vs-domains",
		crowded <= base+base/10,
		"kill cycles flat as live domains grow %v -> %v: %v (crowded/empty %.2fx, allowed 1.10x)",
		domSweep[0], domSweep[len(domSweep)-1], domCycles, float64(crowded)/float64(base))

	// End to end: inject a machine check under a running victim while a
	// survivor computes on another core.
	if err := c16EndToEnd(cfg, res); err != nil {
		return nil, err
	}
	return res, nil
}

// c16Victim builds and loads a domain with one code page and a
// (pages-1)-page exclusive data segment, pinned to core 1 when present.
func c16Victim(w *world, pages uint64, run bool) (*libtyche.Domain, error) {
	prog := func(base phys.Addr) *hw.Asm {
		a := hw.NewAsm()
		a.Movi(2, 0xAB)
		a.Label("loop")
		a.St(1, 0, 2) // r1 poked to the data base after Launch
		a.Jmp("loop")
		return a
	}
	img, err := buildAt(w.cl, "victim", prog,
		func(img *image.Image) { img.WithBSS(".data", (pages-1)*phys.PageSize) })
	if err != nil {
		return nil, err
	}
	lo := libtyche.DefaultLoadOptions()
	if run {
		lo.Cores = []phys.CoreID{1}
	}
	return w.cl.Load(img, lo)
}

// c16Kill measures one ForceKill on an idle machine, so the cycle delta
// is exactly the containment path: revocation, scrub, shootdown,
// backend removal. bystanders unrelated live domains are loaded before
// the victim so the domain-count axis can show the kill never walks
// them.
func c16Kill(cfg Config, res *Result, pages uint64, cores int, bystanders int) (uint64, error) {
	opts := defaultWorldOpts()
	opts.cores = cores
	w, err := newWorld(cfg, opts)
	if err != nil {
		return 0, err
	}
	for i := 0; i < bystanders; i++ {
		if _, err := w.cl.Load(haltImage(fmt.Sprintf("bystander%d", i)), libtyche.DefaultLoadOptions()); err != nil {
			return 0, err
		}
	}
	dom, err := c16Victim(w, pages, false)
	if err != nil {
		return 0, err
	}
	data, ok := dom.SegmentRegion(".data")
	if !ok {
		return 0, fmt.Errorf("c16: victim has no data segment")
	}
	before := w.mon.Stats()
	start := time.Now()
	kc, err := cycles(w.mach, func() error { return w.mon.ForceKill(dom.ID()) })
	wall := time.Since(start)
	if err != nil {
		return 0, err
	}
	after := w.mon.Stats()
	scrubbed := after.PagesScrubbed - before.PagesScrubbed

	tag := fmt.Sprintf("p%d_c%d", pages, cores)
	if bystanders > 0 {
		tag += fmt.Sprintf("_d%d", bystanders)
	}
	res.row(fmtU(pages), fmt.Sprintf("%d", cores), fmt.Sprintf("%d", bystanders), fmtU(kc),
		fmt.Sprintf("%.0f", float64(kc)/float64(pages)), fmtU(scrubbed),
		fmt.Sprintf("%d", wall.Microseconds()))
	res.metric(tag+"_kill_cycles", float64(kc))
	res.metric(tag+"_scrubbed_pages", float64(scrubbed))

	res.check(tag+"-scrub-exact", scrubbed == pages,
		"containment scrubbed %d pages for a %d-page domain", scrubbed, pages)
	// The memory reverted to dom0 and reads as zero.
	buf, err := w.mon.CopyFrom(core.InitialDomain, data.Start, phys.PageSize)
	if err != nil {
		return 0, err
	}
	zero := true
	for _, b := range buf {
		if b != 0 {
			zero = false
		}
	}
	res.check(tag+"-memory-scrubbed", zero, "first reclaimed page reads as zero")
	clean := true
	for _, rc := range w.mon.RefCounts() {
		if rc.Count != len(rc.Owners) {
			clean = false
		}
	}
	res.check(tag+"-refcounts-consistent", clean, "refcount audit after kill")
	return kc, nil
}

// c16EndToEnd reproduces the containment scenario the fault tests pin
// down, as a benchmark check: victim on core 1 killed by an injected
// machine check while dom0's workload on core 0 runs to completion.
func c16EndToEnd(cfg Config, res *Result) error {
	opts := defaultWorldOpts()
	opts.cores = 2
	w, err := newWorld(cfg, opts)
	if err != nil {
		return err
	}
	dom, err := c16Victim(w, 16, true)
	if err != nil {
		return err
	}
	data, ok := dom.SegmentRegion(".data")
	if !ok {
		return fmt.Errorf("c16: victim has no data segment")
	}
	// Survivor workload for dom0 on core 0: sum 0..9 into r1.
	a := hw.NewAsm()
	a.Movi(1, 0)
	a.Movi(2, 0)
	a.Movi(3, 10)
	a.Label("loop")
	a.Add(1, 1, 2)
	a.Addi(2, 2, 1)
	a.Jlt(2, 3, "loop")
	a.Hlt()
	if err := w.mon.CopyInto(core.InitialDomain, dom0Entry, a.MustAssemble(dom0Entry)); err != nil {
		return err
	}
	if err := w.mon.Launch(core.InitialDomain, 0); err != nil {
		return err
	}
	if err := dom.Launch(1); err != nil {
		return err
	}
	w.mach.Core(1).Regs[1] = uint64(data.Start)
	sched, err := fault.ParseSchedule("mc1@500")
	if err != nil {
		return err
	}
	in := fault.NewInjector(sched...)
	in.Arm(w.mach, w.rot)
	start := time.Now()
	runs, err := w.mon.RunCores(100_000, 0, 1)
	wall := time.Since(start)
	if err != nil {
		return err
	}
	st := w.mon.Stats()
	res.metric("e2e_wall_ns", float64(wall.Nanoseconds()))
	res.metric("e2e_pages_scrubbed", float64(st.PagesScrubbed))
	res.note("end-to-end: schedule mc1@500, containment in %v wall", wall)

	res.check("e2e-fault-fired", in.Exhausted(),
		"injected schedule fired: %v", in.Fired())
	res.check("e2e-victim-killed",
		runs[1].Trap.Kind == hw.TrapMachineCheck && st.ForcedKills == 1,
		"victim trapped with %v, forced kills %d", runs[1].Trap, st.ForcedKills)
	res.check("e2e-survivor-completed",
		runs[0].Trap.Kind == hw.TrapHalt && w.mach.Core(0).Regs[1] == 45,
		"survivor trap %v, result %d (want 45)", runs[0].Trap, w.mach.Core(0).Regs[1])
	dead := true
	for _, id := range w.mon.Domains() {
		if id == dom.ID() {
			dead = false
		}
	}
	res.check("e2e-victim-gone", dead, "dead domain no longer enumerated")
	return nil
}
