package bench

import (
	"fmt"

	"github.com/tyche-sim/tyche/internal/baseline"
	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/image"
	"github.com/tyche-sim/tyche/internal/libtyche"
	"github.com/tyche-sim/tyche/internal/phys"
)

func init() {
	register(Experiment{
		ID:    "C4",
		Title: "Tyche enclaves vs SGX: explicit sharing, layout freedom, nesting",
		Paper: "§4.2 'Tyche-enclaves present notable improvements over SGX ones'",
		Run:   runC4,
	})
}

// runC4 reproduces the three §4.2 comparisons head to head:
// (a) accidental leakage: a buggy enclave writing outside itself —
// implicit untrusted access lets it leak on SGX, the write faults on
// Tyche; (b) enclave count/layout: SGX is capped by disjoint ELRANGEs
// and the EPC while Tyche enclaves scale with physical memory; (c)
// nesting and enclave-to-enclave sharing: impossible on SGX, native on
// Tyche.
func runC4(cfg Config) (*Result, error) {
	res := &Result{
		ID: "C4", Title: "Enclave model comparison",
		Columns: []string{"property", "sgx", "tyche"},
	}

	// ---------- (a) accidental leakage ----------
	sgxMach, err := hw.NewMachine(hw.Config{MemBytes: 16 << 20, NumCores: 1, IOMMUAllowByDefault: true})
	if err != nil {
		return nil, err
	}
	sgx := baseline.NewSGX(sgxMach, 0)
	procMem := phys.MakeRegion(1<<20, 256*phys.PageSize)
	proc, err := sgx.NewProcess(procMem)
	if err != nil {
		return nil, err
	}
	el := phys.MakeRegion(procMem.Start, 4*phys.PageSize)
	secretAddr := el.Start + 2*phys.PageSize
	leakTarget := procMem.Start + 64*phys.PageSize // untrusted process memory
	// Buggy enclave: copy its secret into untrusted memory.
	buggy := hw.NewAsm()
	buggy.Movi(1, uint32(secretAddr))
	buggy.Ld(2, 1, 0)
	buggy.Movi(3, uint32(leakTarget))
	buggy.St(3, 0, 2)
	buggy.Hlt()
	if err := sgxMach.Mem.WriteAt(el.Start, buggy.MustAssemble(el.Start)); err != nil {
		return nil, err
	}
	if err := sgxMach.Mem.Write64(secretAddr, 0x5ec2e7); err != nil {
		return nil, err
	}
	encl, err := proc.CreateEnclave(el, el.Start, false)
	if err != nil {
		return nil, err
	}
	encl.EEnter(sgxMach.Cores[0])
	_, sgxTrap := sgxMach.Cores[0].Run(100)
	leaked, err := sgxMach.Mem.Read64(leakTarget)
	if err != nil {
		return nil, err
	}
	sgxLeaks := sgxTrap.Kind == hw.TrapHalt && leaked == 0x5ec2e7

	// Tyche: same buggy program, same layout idea; the write faults
	// because nothing outside the enclave is mapped unless explicitly
	// shared.
	w, err := newWorld(cfg, defaultWorldOpts())
	if err != nil {
		return nil, err
	}
	leakT := w.mon.MonitorRegion().Start - 64*phys.PageSize // some dom0 page
	img, err := buildAt(w.cl, "buggy", func(base phys.Addr) *hw.Asm {
		a := hw.NewAsm()
		a.Movi(1, uint32(base+phys.PageSize)) // its own secret page
		a.Ld(2, 1, 0)
		a.Movi(3, uint32(leakT))
		a.St(3, 0, 2)
		a.Hlt()
		return a
	}, func(img *image.Image) { img.WithBSS(".secret", phys.PageSize) })
	if err != nil {
		return nil, err
	}
	opts := libtyche.DefaultLoadOptions()
	opts.Cores = []phys.CoreID{1}
	tEncl, err := w.cl.NewEnclave(img, opts)
	if err != nil {
		return nil, err
	}
	if err := tEncl.Launch(1); err != nil {
		return nil, err
	}
	tRes, err := w.mon.RunCore(1, 100)
	if err != nil {
		return nil, err
	}
	tycheLeaks := tRes.Trap.Kind == hw.TrapHalt
	res.row("buggy enclave writes secret to untrusted memory", leakWord(sgxLeaks), leakWord(tycheLeaks))
	res.check("explicit-sharing-stops-leak", sgxLeaks && !tycheLeaks,
		"sgx: secret escaped to untrusted memory; tyche: %v at %v", tRes.Trap.Kind, tRes.Trap.Addr)

	// ---------- (b) enclave count & layout ----------
	// How many 8-page enclaves fit? SGX: bounded by min(process
	// ELRANGE space, EPC). Tyche: bounded by physical memory.
	enclavePages := uint64(8)
	sgxMach2, _ := hw.NewMachine(hw.Config{MemBytes: 16 << 20, NumCores: 1, IOMMUAllowByDefault: true})
	epc := uint64(64) // pages
	sgx2 := baseline.NewSGX(sgxMach2, epc)
	proc2, err := sgx2.NewProcess(phys.MakeRegion(1<<20, 512*phys.PageSize))
	if err != nil {
		return nil, err
	}
	sgxMax := 0
	for i := 0; ; i++ {
		r := phys.MakeRegion(phys.Addr(1<<20)+phys.Addr(uint64(i)*enclavePages*phys.PageSize), enclavePages*phys.PageSize)
		if _, err := proc2.CreateEnclave(r, r.Start, false); err != nil {
			break
		}
		sgxMax++
	}
	w2, err := newWorld(cfg, defaultWorldOpts())
	if err != nil {
		return nil, err
	}
	tycheMax := 0
	limit := 64
	if cfg.Quick {
		limit = 24
	}
	for i := 0; i < limit; i++ {
		opts := libtyche.DefaultLoadOptions()
		opts.Cores = []phys.CoreID{1}
		e, err := w2.cl.NewEnclave(addImage(fmt.Sprintf("e%d", i), 1).WithBSS(".pad", (enclavePages-1)*phys.PageSize), opts)
		if err != nil {
			break
		}
		_ = e
		tycheMax++
	}
	res.row(fmt.Sprintf("max %d-page enclaves (EPC=%d pages)", enclavePages, epc),
		fmtU(uint64(sgxMax)), fmt.Sprintf(">=%d (stopped at sweep limit)", tycheMax))
	res.check("enclave-count-crossover", sgxMax < tycheMax,
		"sgx capped at %d by the EPC; tyche reached the sweep limit %d", sgxMax, tycheMax)

	// ---------- (c) nesting & enclave-to-enclave sharing ----------
	_, nestErr := proc2.CreateEnclave(phys.MakeRegion(1<<20+400*phys.PageSize, 8*phys.PageSize), 0, true)
	sgxNest := nestErr == nil
	w3, err := newWorld(cfg, defaultWorldOpts())
	if err != nil {
		return nil, err
	}
	outerImg := addImage("outer", 1).WithHeap(".heap", 64*phys.PageSize)
	o3 := libtyche.DefaultLoadOptions()
	o3.Cores = []phys.CoreID{1}
	o3.Seal = false
	outer, err := w3.cl.Load(outerImg, o3)
	if err != nil {
		return nil, err
	}
	if _, err := outer.Seal(); err != nil {
		return nil, err
	}
	oc := outer.Client()
	heapNode, _ := outer.SegmentNode(".heap")
	heapRegion, _ := outer.SegmentRegion(".heap")
	if err := oc.SetHeap(heapNode, heapRegion); err != nil {
		return nil, err
	}
	innerOpts := libtyche.DefaultLoadOptions()
	innerOpts.Cores = []phys.CoreID{1}
	innerOpts.Seal = false
	inner, innerErr := oc.Load(addImage("inner", 2), innerOpts)
	tycheNest := innerErr == nil
	res.row("enclave spawns nested enclave", boolCell(sgxNest), boolCell(tycheNest))
	res.check("nesting", !sgxNest && tycheNest,
		"sgx: %v; tyche nested load: %v", nestErr, innerErr)
	if !tycheNest {
		return res, nil
	}

	// Enclave-to-enclave page sharing: a secure channel between outer
	// and inner (outer shares an exclusively-owned page, §4.2).
	chanRegion, err := oc.Alloc(1)
	if err != nil {
		return nil, err
	}
	_, shareErr := w3.mon.Share(outer.ID(), heapNode, inner.ID(), cap.MemResource(chanRegion), cap.MemRW, cap.CleanZero)
	sgxShareErr := encl.ShareEPC(nil, phys.Region{})
	res.row("protected page shared between enclaves", boolCell(sgxShareErr == nil), boolCell(shareErr == nil))
	refs := 0
	for _, rc := range w3.mon.RefCounts() {
		if rc.Region.Overlaps(chanRegion) {
			refs = rc.Count
		}
	}
	res.check("enclave-sharing", sgxShareErr != nil && shareErr == nil && refs == 2,
		"sgx: %v; tyche: %v<->%v channel at %v, refcount %d", sgxShareErr, outer.ID(), inner.ID(), chanRegion, refs)
	return res, nil
}

func leakWord(leaked bool) string {
	if leaked {
		return "SECRET LEAKED"
	}
	return "write faults"
}
