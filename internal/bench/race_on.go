//go:build race

package bench

// raceEnabled reports whether this binary was built with the race
// detector. Wall-clock overhead gates are waived under it: the
// detector multiplies every memory access's host cost, so a <5%
// wall-clock bound measures the instrumentation, not the checker.
const raceEnabled = true
