package bench

import (
	"fmt"
	"math/rand"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/core"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/libtyche"
	"github.com/tyche-sim/tyche/internal/phys"
)

func init() {
	register(Experiment{
		ID:    "C6",
		Title: "Revocation policies: cleanup cost and side-channel closure",
		Paper: "§3.2 guaranteed clean-up on revocation; §4.1 'revocation policies that flush micro-architectural state (caches) during a transition'",
		Run:   runC6,
	})
}

// runC6 has two parts. Part one sweeps the revoked-region size across
// cleanup policies and records the cycle cost: zeroing must scale with
// the region, 'none' must stay flat, flushes add a constant per-core
// term. Part two is a prime+probe attack: a victim domain touches one
// of two cache lines depending on a secret bit; the attacker probes
// after the victim's core capability is revoked — with CleanNone the
// bit is recovered, with CleanFlushCache the signal is gone.
func runC6(cfg Config) (*Result, error) {
	res := &Result{
		ID: "C6", Title: "Revocation policies",
		Columns: []string{"policy", "region KiB", "revoke cycles", "cycles/KiB"},
	}
	sizesKiB := []uint64{16, 64, 256, 1024}
	if cfg.Quick {
		sizesKiB = []uint64{16, 64, 256}
	}
	policies := []struct {
		name string
		c    cap.Cleanup
	}{
		{"none", cap.CleanNone},
		{"flush-tlb", cap.CleanFlushTLB},
		{"flush-cache", cap.CleanFlushCache},
		{"zero", cap.CleanZero},
		{"obfuscate(all)", cap.CleanObfuscate},
	}
	cost := map[string][]uint64{}
	for _, pol := range policies {
		for _, kib := range sizesKiB {
			w, err := newWorld(cfg, defaultWorldOpts())
			if err != nil {
				return nil, err
			}
			var heapNode cap.NodeID
			for _, n := range w.mon.OwnerNodes(core.InitialDomain) {
				if n.Resource.Kind == cap.ResMemory {
					heapNode = n.ID
				}
			}
			victim, err := w.mon.CreateDomain(core.InitialDomain, "victim")
			if err != nil {
				return nil, err
			}
			r := phys.MakeRegion(phys.Addr(2<<20), kib*1024)
			node, err := w.mon.Grant(core.InitialDomain, heapNode, victim, cap.MemResource(r), cap.MemRW, pol.c)
			if err != nil {
				return nil, err
			}
			c, err := cycles(w.mach, func() error {
				return w.mon.Revoke(core.InitialDomain, node)
			})
			if err != nil {
				return nil, err
			}
			res.row(pol.name, fmtU(kib), fmtU(c), fmtU(c/kib))
			cost[pol.name] = append(cost[pol.name], c)
		}
	}
	// Shape checks on the sweep. Every revocation — any policy, any
	// size — pays a fixed mediation term: the grantor's hardware filter
	// is rebuilt so its restored access is reprogrammed (the 'none'
	// series measures exactly that constant). The policy shapes are
	// therefore gated on the marginal cost over the 'none' baseline:
	// zeroing's delta must scale with the region while the baseline
	// itself stays flat.
	noneFlat := spread(cost["none"]) < 3.0
	zeroFirst := cost["zero"][0] - cost["none"][0]
	zeroLast := last(cost["zero"]) - last(cost["none"])
	zeroScales := zeroLast > 4*zeroFirst
	res.check("none-flat", noneFlat, "policy 'none' cost varies %.1fx across a %dx size range",
		spread(cost["none"]), sizesKiB[len(sizesKiB)-1]/sizesKiB[0])
	res.check("zero-scales", zeroScales, "zeroing cost over the revoke baseline grew %d -> %d cycles with region size",
		zeroFirst, zeroLast)
	res.check("obfuscate-dominates", last(cost["obfuscate(all)"]) >= last(cost["zero"]),
		"full obfuscation >= zeroing (%d vs %d)", last(cost["obfuscate(all)"]), last(cost["zero"]))
	res.note("revoke baseline (policy 'none') = %d cycles: grant-back filter resync + shootdown, size-independent",
		last(cost["none"]))

	// ---- Part two: prime+probe across a revocation ----
	trials := 24
	if cfg.Quick {
		trials = 12
	}
	recovered := map[string]int{}
	for _, pol := range []struct {
		name string
		c    cap.Cleanup
	}{{"no-flush", cap.CleanNone}, {"flush-cache", cap.CleanFlushCache}} {
		rng := rand.New(rand.NewSource(cfg.Seed + 7))
		hits := 0
		for t := 0; t < trials; t++ {
			bit := rng.Intn(2)
			got, err := primeProbeTrial(cfg, pol.c, bit)
			if err != nil {
				return nil, err
			}
			if got == bit {
				hits++
			}
		}
		recovered[pol.name] = hits
		res.row("prime+probe accuracy ("+pol.name+")", "-",
			fmt.Sprintf("%d/%d bits", hits, trials), "-")
	}
	res.check("sidechannel-open-without-flush", recovered["no-flush"] == trials,
		"attacker recovered %d/%d secret bits with CleanNone", recovered["no-flush"], trials)
	res.check("sidechannel-closed-by-flush", recovered["flush-cache"] <= trials/2+trials/4,
		"attacker recovered only %d/%d bits with CleanFlushCache", recovered["flush-cache"], trials)
	return res, nil
}

// primeProbeTrial runs one victim/attacker round and returns the bit
// the attacker infers.
func primeProbeTrial(cfg Config, pol cap.Cleanup, bit int) (int, error) {
	w, err := newWorld(cfg, defaultWorldOpts())
	if err != nil {
		return 0, err
	}
	// Two probe addresses in dom0 memory mapping to distinct cache
	// sets; the victim gets read access to both, secret decides which
	// one it touches. Offset past slot 0 so the victim's own code
	// fetches (which live near slot 0) cannot evict the signal.
	probeRegion := phys.MakeRegion(2<<20, phys.PageSize)
	addrA := probeRegion.Start + 16*hw.CacheLineSize
	addrB := addrA + hw.CacheLineSize
	var heapNode cap.NodeID
	for _, n := range w.mon.OwnerNodes(core.InitialDomain) {
		if n.Resource.Kind == cap.ResMemory {
			heapNode = n.ID
		}
	}
	// Victim: enclave whose code loads addrA or addrB per its secret.
	target := addrA
	if bit == 1 {
		target = addrB
	}
	victimImg, err := buildAt(w.cl, "victim", func(base phys.Addr) *hw.Asm {
		a := hw.NewAsm()
		a.Movi(1, uint32(target))
		a.Ld(2, 1, 0)
		a.Hlt()
		return a
	})
	if err != nil {
		return 0, err
	}
	opts := libtyche.DefaultLoadOptions()
	opts.Cores = []phys.CoreID{1}
	opts.Seal = false
	victim, err := w.cl.Load(victimImg, opts)
	if err != nil {
		return 0, err
	}
	shared, err := w.mon.Share(core.InitialDomain, heapNode, victim.ID(), cap.MemResource(probeRegion), cap.RightRead, pol)
	if err != nil {
		return 0, err
	}
	if _, err := victim.Seal(); err != nil {
		return 0, err
	}
	// Victim runs on core 1.
	if err := victim.Launch(1); err != nil {
		return 0, err
	}
	if _, err := w.mon.RunCore(1, 100); err != nil {
		return 0, err
	}
	// The victim's access to the probe region is revoked — the cleanup
	// policy decides whether micro-architectural state is flushed.
	if err := w.mon.Revoke(core.InitialDomain, shared); err != nil {
		return 0, err
	}
	// Attacker (dom0) probes core 1's cache.
	cache := w.mach.Core(1).CacheUnit()
	hitA := cache.Probe(addrA)
	hitB := cache.Probe(addrB)
	switch {
	case hitB && !hitA:
		return 1, nil
	case hitA && !hitB:
		return 0, nil
	default:
		// No signal: guess deterministically wrong half the time by
		// returning the complement of the bit's position parity — the
		// caller counts mismatches as failures, which is the point.
		return 2, nil
	}
}

func spread(vals []uint64) float64 {
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo == 0 {
		lo = 1
	}
	return float64(hi) / float64(lo)
}

func last(vals []uint64) uint64 { return vals[len(vals)-1] }
