package bench

import (
	"errors"

	"github.com/tyche-sim/tyche/internal/attest"
	"github.com/tyche-sim/tyche/internal/core"
	"github.com/tyche-sim/tyche/internal/libtyche"
	"github.com/tyche-sim/tyche/internal/phys"
)

func init() {
	register(Experiment{
		ID:    "F1",
		Title: "Separation of powers: boot → measure → legislate → enforce → attest → verify",
		Paper: "Figure 1",
		Run:   runF1,
	})
}

// runF1 walks the full Figure-1 loop once and records which branch of
// the separation of powers performed each step, checking that the
// judiciary (remote verifier) accepts the honest run and rejects a
// tampered one.
func runF1(cfg Config) (*Result, error) {
	res := &Result{
		ID: "F1", Title: "Separation of powers",
		Columns: []string{"step", "power", "actor", "outcome"},
	}
	w, err := newWorld(cfg, defaultWorldOpts())
	if err != nil {
		return nil, err
	}
	res.row("measured boot (firmware+monitor PCRs)", "judiciary", "TPM", "ok")

	// Legislative: an unprivileged domain (not the monitor, not the OS
	// kernel) defines the isolation policy by loading an enclave.
	img := addImage("f1-enclave", 1)
	opts := libtyche.DefaultLoadOptions()
	opts.Cores = []phys.CoreID{1}
	enc, err := w.cl.NewEnclave(img, opts)
	if err != nil {
		return nil, err
	}
	res.row("define enclave policy (grant+seal)", "legislative", "dom0 software", "ok")
	res.row("program EPT/PMP + mediate transfers", "executive", "isolation monitor", "ok")

	// Judiciary: remote verifier establishes the chain and checks the
	// domain.
	verifier := attest.NewVerifier(w.rot.EndorsementKey(), core.DefaultIdentity)
	bootNonce := []byte("f1-boot")
	quote, err := w.mon.BootQuote(bootNonce)
	if err != nil {
		return nil, err
	}
	sess, err := verifier.NewSession(quote, bootNonce)
	if err != nil {
		return nil, err
	}
	res.row("verify boot quote (tier 1)", "judiciary", "remote verifier", "ok")

	nonce := []byte("f1-domain")
	rep, err := enc.Attest(nonce)
	if err != nil {
		return nil, err
	}
	if err := sess.VerifyDomain(rep, nonce); err != nil {
		return nil, err
	}
	wantMeas, err := img.Measurement(enc.Base())
	if err != nil {
		return nil, err
	}
	policyErr := errors.Join(
		attest.RequireSealed(rep),
		attest.RequireMeasurement(rep, wantMeas),
		attest.RequireExclusiveMemory(rep),
	)
	res.row("verify domain report + policy (tier 2)", "judiciary", "remote verifier", boolCell(policyErr == nil))
	res.check("honest-chain-accepted", policyErr == nil, "two-tier attestation verified: %v", policyErr)

	// Negative control 1: a different (untrusted) monitor identity.
	evilVerifier := attest.NewVerifier(w.rot.EndorsementKey(), []byte("trojaned monitor"))
	_, evilErr := evilVerifier.VerifyBoot(quote, bootNonce)
	res.row("reject unknown monitor measurement", "judiciary", "remote verifier", boolCell(evilErr != nil))
	res.check("unknown-monitor-rejected", errors.Is(evilErr, attest.ErrUntrustedMonitor), "%v", evilErr)

	// Negative control 2: tampered report.
	tampered := *rep
	tampered.Sealed = false
	tErr := sess.VerifyDomain(&tampered, nonce)
	res.row("reject tampered report", "judiciary", "remote verifier", boolCell(tErr != nil))
	res.check("tampered-report-rejected", tErr != nil, "%v", tErr)

	// Negative control 3: the executive refuses an invalid policy (a
	// domain delegating a capability it does not own).
	_, stealErr := w.mon.Share(enc.ID(), 1 /* dom0's root node */, enc.ID(),
		rep.Resources[0].Resource, 0, 0)
	res.row("reject invalid policy (foreign capability)", "executive", "isolation monitor", boolCell(stealErr != nil))
	res.check("invalid-policy-rejected", stealErr != nil, "%v", stealErr)

	res.note("backend=%s; the monitor never defines policy, only validates and enforces it", w.mon.Backend())
	return res, nil
}
