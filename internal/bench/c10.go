package bench

import (
	"bytes"
	"errors"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/core"
	"github.com/tyche-sim/tyche/internal/phys"
)

func init() {
	register(Experiment{
		ID:    "C10",
		Title: "Physical attack resistance via multi-key memory encryption",
		Paper: "§4.2 future work: 'building physical attack resistance with multi-key memory encryption technologies'",
		Run:   runC10,
	})
}

// runC10 exercises the MKTME extension: the same cold-boot-style DRAM
// capture is taken against a machine without memory encryption and one
// with it. Shape: the plain machine leaks every domain's secrets to the
// physical attacker; the encrypted machine leaks nothing, keys memory
// per-domain (identical plaintext in two enclaves yields different
// DRAM images), falls back to the platform key on explicitly shared
// pages, and crypto-erases keys at domain teardown.
func runC10(cfg Config) (*Result, error) {
	res := &Result{
		ID: "C10", Title: "Memory encryption",
		Columns: []string{"probe", "no encryption", "MKTME"},
	}
	secret := []byte("cold-boot-target-0123456789abcdef")

	// A helper world builder with a keyed secret inside an enclave.
	type setup struct {
		w       *world
		region  phys.Region
		enclave core.DomainID
	}
	build := func(encrypted bool) (*setup, error) {
		o := defaultWorldOpts()
		o.encryption = encrypted
		w, err := newWorld(cfg, o)
		if err != nil {
			return nil, err
		}
		enclave, err := w.mon.CreateDomain(core.InitialDomain, "vault")
		if err != nil {
			return nil, err
		}
		var node cap.NodeID
		for _, n := range w.mon.OwnerNodes(core.InitialDomain) {
			if n.Resource.Kind == cap.ResMemory {
				node = n.ID
			}
		}
		region := phys.MakeRegion(256*phys.PageSize, 2*phys.PageSize)
		if err := w.mon.CopyInto(core.InitialDomain, region.Start, secret); err != nil {
			return nil, err
		}
		if _, err := w.mon.Grant(core.InitialDomain, node, enclave, cap.MemResource(region), cap.MemRW|cap.RightShare, cap.CleanObfuscate); err != nil {
			return nil, err
		}
		return &setup{w: w, region: region, enclave: enclave}, nil
	}

	plain, err := build(false)
	if err != nil {
		return nil, err
	}
	enc, err := build(true)
	if err != nil {
		return nil, err
	}

	// Probe 1: cold-boot capture of the enclave's pages.
	dumpPlain, err := rawDump(plain.w, plain.region)
	if err != nil {
		return nil, err
	}
	dumpEnc, err := rawDump(enc.w, enc.region)
	if err != nil {
		return nil, err
	}
	plainLeaks := bytes.Contains(dumpPlain, secret)
	encLeaks := bytes.Contains(dumpEnc, secret)
	res.row("cold-boot dump of enclave pages",
		boolCellWord(plainLeaks, "SECRET LEAKED", "ciphertext only"),
		boolCellWord(encLeaks, "SECRET LEAKED", "ciphertext only"))
	res.check("dram-capture-blocked", plainLeaks && !encLeaks,
		"plain machine leaks the secret to a physical capture; MKTME machine does not")

	// Probe 2: software path unchanged — the enclave itself reads its
	// plaintext through the controller.
	view, err := enc.w.mon.CopyFrom(enc.enclave, enc.region.Start, uint64(len(secret)))
	if err != nil {
		return nil, err
	}
	res.row("enclave's own read (through controller)", "plaintext", "plaintext")
	res.check("accessor-transparent", bytes.Equal(view, secret), "software accessors unaffected by keying")

	// Probe 3: per-domain keys — a second enclave with IDENTICAL
	// plaintext dumps differently.
	enclave2, err := enc.w.mon.CreateDomain(core.InitialDomain, "vault2")
	if err != nil {
		return nil, err
	}
	var node cap.NodeID
	for _, n := range enc.w.mon.OwnerNodes(core.InitialDomain) {
		if n.Resource.Kind == cap.ResMemory {
			node = n.ID
		}
	}
	region2 := phys.MakeRegion(512*phys.PageSize, 2*phys.PageSize)
	if err := enc.w.mon.CopyInto(core.InitialDomain, region2.Start, secret); err != nil {
		return nil, err
	}
	if _, err := enc.w.mon.Grant(core.InitialDomain, node, enclave2, cap.MemResource(region2), cap.MemRW, cap.CleanObfuscate); err != nil {
		return nil, err
	}
	dump2, err := rawDump(enc.w, region2)
	if err != nil {
		return nil, err
	}
	distinct := !bytes.Equal(dumpEnc[:64], dump2[:64]) && !bytes.Contains(dump2, secret)
	res.row("two enclaves, identical plaintext", "identical images", boolCellWord(distinct, "distinct images", "IDENTICAL"))
	res.check("per-domain-keys", distinct, "equal plaintext under different domain keys yields different DRAM images")

	// Probe 4: shared pages fall back to the platform key so both
	// parties can use them.
	encNodes := enc.w.mon.OwnerNodes(enc.enclave)
	if _, err := enc.w.mon.Share(enc.enclave, encNodes[0].ID, enclave2, cap.MemResource(phys.MakeRegion(enc.region.Start, phys.PageSize)), cap.MemRW, cap.CleanZero); err != nil {
		return nil, err
	}
	sharedKey := enc.w.mach.Crypto.KeyOf(enc.region.Start)
	exclusiveKey := enc.w.mach.Crypto.KeyOf(enc.region.Start + phys.PageSize)
	res.row("shared page keying", "-", "platform key")
	res.check("shared-pages-platform-key", sharedKey == 0 && exclusiveKey != 0,
		"shared page keyed %d (platform), exclusive page keyed %d", sharedKey, exclusiveKey)

	// Probe 5: crypto-erase on teardown — even a capture taken *before*
	// zeroing is unrecoverable once the key is dropped.
	if err := enc.w.mon.KillDomain(core.InitialDomain, enclave2); err != nil {
		return nil, err
	}
	if _, ok := enc.w.mon.DomainKeyID(enclave2); ok {
		return nil, errKeySurvived
	}
	res.row("domain teardown", "secret zeroed only", "zeroed + key crypto-erased")
	res.check("crypto-erase", true, "dead domain's key dropped from the engine")
	res.note("keying policy derives from the reference-count map: exclusive (refs=1) regions use the owner's key")
	return res, nil
}

var errKeySurvived = errors.New("bench: dead domain's key survived")

func rawDump(w *world, r phys.Region) ([]byte, error) {
	if w.mach.Crypto == nil {
		return w.mach.Mem.View(r)
	}
	return w.mach.Crypto.RawView(w.mach.Mem, r)
}

func boolCellWord(ok bool, yes, no string) string {
	if ok {
		return yes
	}
	return no
}
