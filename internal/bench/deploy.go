package bench

import (
	"fmt"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/core"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/image"
	"github.com/tyche-sim/tyche/internal/libtyche"
	"github.com/tyche-sim/tyche/internal/phys"
)

// saasDeployment is the Figure 2/3 scenario built for real: an
// untrusted cloud provider (dom0) hosting a SaaS VM, which itself
// spawns a crypto-engine enclave, a SaaS application enclave, and a GPU
// I/O domain; the app shares one buffer with the crypto engine and one
// with the GPU, and the crypto engine shares a provisioning mailbox
// with dom0 (public data only).
type saasDeployment struct {
	w *world

	vm       *libtyche.Domain
	vmClient *libtyche.Client

	crypto *libtyche.Domain
	app    *libtyche.Domain
	gpuDom *libtyche.Domain

	cryptoImg, appImg, gpuImg *image.Image

	mailbox *libtyche.Channel // dom0 <-> crypto (pub keys, ciphertext)
	keySeg  phys.Region       // crypto-private symmetric key storage
	chanSeg phys.Region       // app <-> crypto data buffer
	gpuBuf  phys.Region       // app <-> gpu ciphertext buffer
	fbSeg   phys.Region       // gpu-private framebuffer
}

// saasCore is the core both the VM's children share.
const saasCore = phys.CoreID(1)

// buildSaaS assembles the deployment. The interpreted programs are
// real: the app's code performs the mediated call into the crypto
// engine, and the crypto engine's code XOR-encrypts the shared buffer
// with its provisioned key (a stand-in stream cipher; the key exchange
// uses real X25519 in the F2 experiment).
func buildSaaS(w *world) (*saasDeployment, error) {
	d := &saasDeployment{w: w}

	// 1. The provider loads the SaaS VM: sealed, with a private RWX
	// heap it will carve its children from, sharing cores 1-2 and
	// granting the GPU (device 0).
	vmImg := haltImage("saas-vm").WithHeap(".heap", 1024*phys.PageSize)
	vmOpts := libtyche.DefaultLoadOptions()
	vmOpts.Cores = []phys.CoreID{saasCore, 2}
	vmOpts.Devices = []phys.DeviceID{0}
	vmOpts.Seal = true
	vm, err := w.cl.Load(vmImg, vmOpts)
	if err != nil {
		return nil, fmt.Errorf("loading saas vm: %w", err)
	}
	d.vm = vm
	d.vmClient = vm.Client()
	heapRegion, _ := vm.SegmentRegion(".heap")
	heapNode, _ := vm.SegmentNode(".heap")
	if err := d.vmClient.SetHeap(heapNode, heapRegion); err != nil {
		return nil, err
	}

	// 2. Crypto engine enclave: .text (XOR service) + .key page. The
	// key page sits one page after the text by construction.
	cryptoImg, err := buildAt(d.vmClient, "crypto-engine", cryptoEngineProgram,
		func(img *image.Image) { img.WithBSS(".key", phys.PageSize) })
	if err != nil {
		return nil, err
	}
	d.cryptoImg = cryptoImg
	cryptoOpts := libtyche.DefaultLoadOptions()
	cryptoOpts.Cores = []phys.CoreID{saasCore}
	cryptoOpts.Seal = false // mailbox + channel arrive before sealing
	crypto, err := d.vmClient.Load(cryptoImg, cryptoOpts)
	if err != nil {
		return nil, fmt.Errorf("loading crypto engine: %w", err)
	}
	d.crypto = crypto
	d.keySeg, _ = crypto.SegmentRegion(".key")

	// 3. Provisioning mailbox from dom0 (the provider relays customer
	// traffic): refcount 2 with the crypto engine; only public data
	// crosses it.
	mailbox, err := w.cl.OpenChannel(crypto.ID(), 1, cap.CleanZero)
	if err != nil {
		return nil, fmt.Errorf("opening mailbox: %w", err)
	}
	d.mailbox = mailbox

	// 4. SaaS application enclave: its code calls the crypto engine
	// with the shared buffer's address in r2; segments .chan (to share
	// with crypto) and .gpubuf (to share with the GPU domain).
	appImg, err := buildAt(d.vmClient, "saas-app",
		func(base phys.Addr) *hw.Asm {
			chanBase := base + phys.PageSize // .text is one page
			a := hw.NewAsm()
			a.Movi(0, uint32(core.CallDomainCall))
			a.Movi(1, uint32(crypto.ID()))
			a.Movi(2, uint32(chanBase))
			a.Vmcall() // encrypt .chan in place; r1 = byte count
			a.Hlt()
			return a
		},
		func(img *image.Image) {
			img.WithBSS(".chan", phys.PageSize)
			img.WithBSS(".gpubuf", phys.PageSize)
		})
	if err != nil {
		return nil, err
	}
	d.appImg = appImg
	appOpts := libtyche.DefaultLoadOptions()
	appOpts.Cores = []phys.CoreID{saasCore}
	appOpts.Seal = false
	app, err := d.vmClient.Load(appImg, appOpts)
	if err != nil {
		return nil, fmt.Errorf("loading saas app: %w", err)
	}
	d.app = app
	d.chanSeg, _ = app.SegmentRegion(".chan")
	d.gpuBuf, _ = app.SegmentRegion(".gpubuf")

	// 5. GPU I/O domain: private framebuffer + the GPU device granted
	// with DMA rights — the device can then reach exactly the domain's
	// memory (framebuffer + the buffer the app shares with it).
	d.gpuImg = haltImage("gpu-domain").WithBSS(".fb", 4*phys.PageSize)
	gpuOpts := libtyche.DefaultLoadOptions()
	gpuOpts.Cores = nil // an I/O domain runs on the device, not a core
	gpuOpts.Seal = false
	gpuDom, err := d.vmClient.NewKernelCompartment(d.gpuImg, []phys.DeviceID{0}, gpuOpts)
	if err != nil {
		return nil, fmt.Errorf("loading gpu domain: %w", err)
	}
	d.gpuDom = gpuDom
	d.fbSeg, _ = gpuDom.SegmentRegion(".fb")

	// 6. Controlled sharing: the app shares .chan with the crypto
	// engine and .gpubuf with the GPU domain (both refcount 2).
	chanNode, _ := app.SegmentNode(".chan")
	if _, err := w.mon.Share(app.ID(), chanNode, crypto.ID(), cap.MemResource(d.chanSeg), cap.MemRW, cap.CleanZero); err != nil {
		return nil, fmt.Errorf("sharing app->crypto channel: %w", err)
	}
	gpuNode, _ := app.SegmentNode(".gpubuf")
	if _, err := w.mon.Share(app.ID(), gpuNode, gpuDom.ID(), cap.MemResource(d.gpuBuf), cap.MemRW, cap.CleanZero); err != nil {
		return nil, fmt.Errorf("sharing app->gpu buffer: %w", err)
	}

	// 7. Seal the children: resource sets frozen, attestations stable.
	for _, dom := range []*libtyche.Domain{d.crypto, d.app, d.gpuDom} {
		if _, err := dom.Seal(); err != nil {
			return nil, fmt.Errorf("sealing %d: %w", dom.ID(), err)
		}
	}
	return d, nil
}

// cryptoEngineProgram is the crypto engine's interpreted service: XOR
// the length-prefixed buffer at [r2] with the 32-byte key in the .key
// segment (text base + one page), in place, and return the byte count.
// Layout dependency: .text is the first (single-page) segment and .key
// the second — buildAt and the image builders guarantee it.
func cryptoEngineProgram(base phys.Addr) *hw.Asm {
	keyBase := base + phys.PageSize
	a := hw.NewAsm()
	a.Ld(3, 2, 0)              // r3 = n (length prefix)
	a.Movi(4, 0)               // r4 = i
	a.Movi(5, uint32(keyBase)) // r5 = key base
	a.Label("loop")
	a.Jlt(4, 3, "body")
	a.Jmp("done")
	a.Label("body")
	a.Add(6, 2, 4) // r6 = chan + i
	a.Ldb(7, 6, 8) // r7 = data[i] (8-byte length prefix)
	a.Movi(8, 31)
	a.And(9, 4, 8) // r9 = i % 32
	a.Add(10, 5, 9)
	a.Ldb(11, 10, 0) // r11 = key[i%32]
	a.Xor(7, 7, 11)
	a.Stb(6, 8, 7) // data[i] ^= key byte
	a.Addi(4, 4, 1)
	a.Jmp("loop")
	a.Label("done")
	a.Movi(0, uint32(core.CallReturn))
	a.Mov(1, 3)
	a.Vmcall()
	a.Hlt()
	return a
}
