package bench

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"time"

	"github.com/tyche-sim/tyche/internal/dist"
	"github.com/tyche-sim/tyche/internal/fault"
	"github.com/tyche-sim/tyche/internal/fleet"
	"github.com/tyche-sim/tyche/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "C23",
		Title: "Datacenter fleet: serving scaling, attested live migration, kill churn, fleet-wide verification",
		Paper: "§5 the monitor as the unit a confidential cloud is built from (journal version: managing trust in the cloud)",
		Run:   runC23,
	})
}

// runC23 exercises the internal/fleet control plane in four phases:
//
//	scale   — identical confidential-SaaS fleets of 2, 4, and 8 nodes
//	          serve the same load-balanced request stream; serving
//	          throughput must grow with machine count (≥2x from 2 to 8
//	          nodes). The gate is host-gated exactly like C18/C22: a
//	          fleet's nodes execute on host threads, so the speedup is
//	          demoted to a note when the host lacks 8 hardware threads
//	          or the run shares a worker pool.
//	migrate — a service is live-migrated around a 3-node fleet over
//	          attested dist.Conn channels. Gates: every blackout is
//	          measured and p99 stays bounded; a deterministically
//	          dropped migration frame aborts with ErrLinkLost and a
//	          tampered payload with ErrTampered, both leaving the
//	          source serving and the target without half-state.
//	churn   — a node is killed by the fault injector mid-serving.
//	          Gates: every in-flight and subsequent request completes
//	          with the correct per-tenant transform (a wrong reply
//	          fails the serve loop as a cross-tenant leak), the dead
//	          node's domains re-place onto survivors, and every node's
//	          runtime-verification verdict stays clean.
//	verify  — fleet-wide RV aggregation: per-node hash-chained digests
//	          ship to control-plane RemoteVerifiers; a violation seeded
//	          on exactly one node must be flagged there — and only
//	          there — by the fleet-level audit.
//
// Fleet nodes attach the always-on rv.Service unconditionally (that is
// the subsystem under test), so Config.Trace/Verify do not change what
// this experiment verifies.
func runC23(cfg Config) (*Result, error) {
	res := &Result{
		ID: "C23", Title: "Datacenter fleet (scaling / live migration / kill churn / fleet verification)",
		Columns: []string{"phase", "nodes", "requests", "wall ms", "req/s", "speedup", "detail"},
	}
	res.metric("gomaxprocs", float64(runtime.GOMAXPROCS(0)))
	hostParallel := runtime.GOMAXPROCS(0) >= 8 && !cfg.contended
	if !hostParallel {
		res.note("host GOMAXPROCS=%d contended=%v: fleet nodes time-share hardware threads, so the 2x scaling gate is demoted to a note (migration, churn, and verification gates still enforce)", runtime.GOMAXPROCS(0), cfg.contended)
	}

	// Phase A: serving throughput vs machine count.
	scaleReqs := 12000
	spin := 0 // default (200)
	if cfg.Quick {
		scaleReqs, spin = 1200, 25
	}
	tput := make(map[int]float64)
	for _, nodes := range []int{2, 4, 8} {
		f, err := newC23Fleet(cfg, nodes, spin)
		if err != nil {
			return nil, fmt.Errorf("c23 scale n%d: %w", nodes, err)
		}
		// Every node hosts a replica of both tenants, so capacity — not
		// placement — is what changes across the sweep.
		for s, spec := range c23Services() {
			if err := f.Deploy(spec, nodes); err != nil {
				return nil, fmt.Errorf("c23 scale n%d deploy %d: %w", nodes, s, err)
			}
		}
		start := time.Now()
		stats, err := f.Serve(c23ServiceNames(), scaleReqs, 2*nodes)
		wall := time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("c23 scale n%d serve: %w", nodes, err)
		}
		rate := float64(stats.Requests) / wall.Seconds()
		tput[nodes] = rate
		tag := fmt.Sprintf("scale_n%d", nodes)
		res.row("scale", fmt.Sprintf("%d", nodes), fmtU(stats.Requests),
			fmt.Sprintf("%d", wall.Milliseconds()), fmt.Sprintf("%.0f", rate),
			fmt.Sprintf("%.2fx", rate/tput[2]), "-")
		res.metric(tag+"_wall_ns", float64(wall.Nanoseconds()))
		res.metric(tag+"_req_per_sec", rate)
		res.check(tag+"-complete", stats.Requests == uint64(scaleReqs) && stats.NodeKills == 0,
			"%d/%d requests served with correct per-tenant transforms, no node failures", stats.Requests, scaleReqs)
		c23Audit(res, tag, f, -1)
	}
	scaleup := tput[8] / tput[2]
	res.metric("scale_2to8_speedup", scaleup)
	if hostParallel {
		res.check("scale-2x", scaleup >= 2.0,
			"8-node fleet throughput %.2fx the 2-node fleet (gate: >= 2x)", scaleup)
	} else {
		res.note("8-node fleet throughput %.2fx the 2-node fleet (2x gate demoted: host not parallel)", scaleup)
	}

	// Phase B: attested live migration — blackout distribution and
	// fault-injected aborts.
	hops := 12
	if cfg.Quick {
		hops = 4
	}
	fm, err := newC23Fleet(cfg, 3, spin)
	if err != nil {
		return nil, fmt.Errorf("c23 migrate: %w", err)
	}
	if err := fm.Deploy(fleet.ServiceSpec{Name: "pay", Delta: 777}, 1); err != nil {
		return nil, fmt.Errorf("c23 migrate deploy: %w", err)
	}
	if _, err := fm.Serve([]string{"pay"}, 100, 2); err != nil {
		return nil, fmt.Errorf("c23 migrate warmup: %w", err)
	}
	for hop := 0; hop < hops; hop++ {
		pl := fm.LB().Placements("pay")[0]
		if err := fm.Migrate("pay", pl.Node, (pl.Node+1)%3, nil); err != nil {
			return nil, fmt.Errorf("c23 migrate hop %d: %w", hop, err)
		}
	}
	p99 := fm.BlackoutP99()
	res.metric("blackout_count", float64(len(fm.Blackouts())))
	res.metric("blackout_p99_ns", float64(p99))
	const blackoutBound = 2 * uint64(time.Second)
	res.check("migrate-blackouts", len(fm.Blackouts()) == hops,
		"every migration's blackout measured: %d/%d", len(fm.Blackouts()), hops)
	res.check("migrate-blackout-p99", p99 > 0 && p99 < blackoutBound,
		"blackout p99 = %s (gate: measured and < %s)", time.Duration(p99), time.Duration(blackoutBound))
	res.row("migrate", "3", fmtU(uint64(hops)), "-", "-", "-",
		fmt.Sprintf("blackout p99 %s", time.Duration(p99)))

	// Fault-injected aborts on the same fleet: a dropped frame and a
	// tampered payload must both fail closed.
	pl := fm.LB().Placements("pay")[0]
	to := (pl.Node + 1) % 3
	targetDomains := len(fm.Nodes[to].Mon.Domains())
	wire := &dist.Wire{}
	wire.Arm([]fault.Fault{{Kind: fault.LinkDrop}})
	errDrop := fm.Migrate("pay", pl.Node, to, wire)
	res.check("migrate-drop-aborts", errors.Is(errDrop, dist.ErrLinkLost) && wire.Dropped == 1,
		"dropped migration frame aborts with ErrLinkLost (got %v, %d dropped)", errDrop, wire.Dropped)
	wire = &dist.Wire{}
	wire.Corrupt = func(frame []byte) []byte { frame[len(frame)/2] ^= 0x01; return frame }
	errTamper := fm.Migrate("pay", pl.Node, to, wire)
	res.check("migrate-tamper-aborts", errors.Is(errTamper, dist.ErrTampered),
		"tampered migration payload rejected end-to-end with ErrTampered (got %v)", errTamper)
	after := fm.LB().Placements("pay")
	res.check("migrate-abort-clean",
		len(after) == 1 && after[0].Node == pl.Node && after[0].Dom == pl.Dom &&
			len(fm.Nodes[to].Mon.Domains()) == targetDomains,
		"aborted migrations left the source serving and no half-state on the target")
	if _, err := fm.Serve([]string{"pay"}, 100, 2); err != nil {
		return nil, fmt.Errorf("c23 migrate post-abort serve: %w", err)
	}
	c23Audit(res, "migrate", fm, -1)

	// Phase C: node kill mid-serving.
	churnReqs := 20000
	if cfg.Quick {
		churnReqs = 1000
	}
	fc, err := newC23Fleet(cfg, 4, spin)
	if err != nil {
		return nil, fmt.Errorf("c23 churn: %w", err)
	}
	for _, spec := range c23Services() {
		if err := fc.Deploy(spec, 2); err != nil {
			return nil, fmt.Errorf("c23 churn deploy: %w", err)
		}
	}
	victim := -1
	for i := range fc.Nodes {
		if fc.LB().NodeCount(i) > 0 {
			victim = i
			break
		}
	}
	fc.ArmKill(victim, 2000)
	stats, err := fc.Serve(c23ServiceNames(), churnReqs, 4)
	if err != nil {
		return nil, fmt.Errorf("c23 churn serve: %w", err)
	}
	res.metric("churn_requests", float64(stats.Requests))
	res.metric("churn_retries", float64(stats.Retries))
	res.metric("churn_node_kills", float64(stats.NodeKills))
	res.check("churn-drains", stats.Requests == uint64(churnReqs),
		"%d/%d requests completed with correct per-tenant transforms despite the kill (%d retried)",
		stats.Requests, churnReqs, stats.Retries)
	res.check("churn-kill-fired", stats.NodeKills == 1 && fc.Nodes[victim].Failed(),
		"the armed machine-check killed node %d mid-serving (kills=%d)", victim, stats.NodeKills)
	replaced := true
	detail := "every service has live replicas, none routed to the dead node"
	for _, svc := range c23ServiceNames() {
		hosts := fc.LB().ReplicaNodes(svc)
		if len(hosts) == 0 || hosts[victim] {
			replaced, detail = false, fmt.Sprintf("%s: hosts=%v (victim %d)", svc, hosts, victim)
		}
	}
	res.check("churn-replaced", replaced && fc.Err() == nil, "%s (control-plane err: %v)", detail, fc.Err())
	res.row("churn", "4", fmtU(stats.Requests), "-", "-", "-",
		fmt.Sprintf("%d retried, %d node killed", stats.Retries, stats.NodeKills))
	c23Audit(res, "churn", fc, -1)

	// Phase D: fleet-wide verification localizes a seeded violation.
	if trace.Compiled {
		fv, err := newC23Fleet(cfg, 3, spin)
		if err != nil {
			return nil, fmt.Errorf("c23 verify: %w", err)
		}
		if err := fv.Deploy(fleet.ServiceSpec{Name: "audit", Delta: 1}, 2); err != nil {
			return nil, fmt.Errorf("c23 verify deploy: %w", err)
		}
		if _, err := fv.Serve([]string{"audit"}, 100, 2); err != nil {
			return nil, fmt.Errorf("c23 verify serve: %w", err)
		}
		const seeded = 1
		if err := fv.SeedViolation(seeded); err != nil {
			return nil, fmt.Errorf("c23 verify seed: %w", err)
		}
		c23Audit(res, "verify", fv, seeded)
		res.row("verify", "3", "100", "-", "-", "-", fmt.Sprintf("violation seeded on node %d", seeded))
	} else {
		res.note("notrace build: fleet verification phase skipped (tracing compiled out)")
	}
	return res, nil
}

// newC23Fleet boots a fleet sized for the benchmark: 3 cores per node
// (2 tenant-serving workers + the agent core) and a per-phase spin.
func newC23Fleet(cfg Config, nodes, spin int) (*fleet.Fleet, error) {
	return fleet.New(fleet.Config{
		Nodes:        nodes,
		CoresPerNode: 3,
		MemBytes:     16 << 20,
		Backend:      cfg.Backend,
		Seed:         cfg.Seed,
		Spin:         spin,
	})
}

// c23Services is the two-tenant workload every phase serves: distinct
// per-tenant transforms, so a cross-tenant mixup is observable in the
// reply.
func c23Services() []fleet.ServiceSpec {
	return []fleet.ServiceSpec{
		{Name: "alpha", Delta: 101},
		{Name: "beta", Delta: 9091},
	}
}

func c23ServiceNames() []string {
	specs := c23Services()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// c23Audit folds a fleet's final verification audit into checks. With
// seeded >= 0 that node must be flagged (self-verdict and fleet-level
// chain audit both reporting the violation) while every other node
// stays clean; with seeded < 0 all nodes must be clean. No-op under
// the notrace build tag.
func c23Audit(res *Result, tag string, f *fleet.Fleet, seeded int) {
	audits, err := f.Audit()
	if err != nil {
		res.check(tag+"-audit", false, "fleet audit: %v", err)
		return
	}
	if !trace.Compiled {
		return
	}
	clean, detail := true, fmt.Sprintf("%d nodes, all verdicts clean, digests aggregated", len(audits))
	flagged := false
	var flaggedDetail string
	for i, a := range audits {
		if seeded >= 0 && a.Node == f.Nodes[seeded].Name {
			selfHit := a.SelfErr != nil && strings.Contains(a.SelfErr.Error(), "dead domain")
			fleetHit := false
			for _, flag := range a.Flags {
				if strings.Contains(flag, "dead domain") {
					fleetHit = true
				}
			}
			flagged = selfHit && fleetHit
			flaggedDetail = fmt.Sprintf("node %d self=%v flags=%v", i, a.SelfErr, a.Flags)
			continue
		}
		if a.SelfErr != nil || len(a.Flags) != 0 || a.Digests < 2 {
			clean = false
			detail = fmt.Sprintf("%s: self=%v flags=%v digests=%d", a.Node, a.SelfErr, a.Flags, a.Digests)
		}
	}
	res.check(tag+"-audit-clean", clean, "%s", detail)
	if seeded >= 0 {
		res.check(tag+"-audit-flagged", flagged,
			"seeded node flagged by both its own verifier and the fleet-level chain audit: %s", flaggedDetail)
	}
}
