package bench

import (
	"fmt"
	"runtime"
	"time"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/core"
	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "C22",
		Title: "Parallel reclamation pipeline: concurrent ring drains, shared grace periods, sharded kill-storm scrub",
		Paper: "§3 mediation must scale with the machine: reclamation throughput must grow with cores, not serialise behind one",
		Run:   runC22,
	})
}

// runC22 measures the opt-in parallel reclamation pipeline
// (Monitor.SetReclaimWorkers) in three phases:
//
//	drain — an 8-tenant ring fleet, every ring pre-loaded with
//	        CallAttest descriptors (each costs an ed25519 report
//	        signature — real, parallelisable host work). One
//	        DrainRings per iteration drains the whole fleet; the sweep
//	        compares the untouched serial path against partitioned
//	        rounds at 1, 2, and 4 workers. Gates: ≥2x drain throughput
//	        at 4 workers vs serial (demoted to a note when the host
//	        lacks 4 hardware threads or the run shares a worker pool),
//	        and — always enforced — the workers=1 run's cycle history
//	        is bit-identical to serial, because one worker routes to
//	        the exact serial code path.
//	mixed — the same fleet running a revocation-heavy descriptor mix
//	        (flush-cleanup revokes + attests) with a ForceKillAll storm
//	        at the end, run serial and at 4 workers with the tracer and
//	        checker attached. Gates: byte-identical checker verdicts
//	        serial-vs-parallel (both clean, same violation bytes),
//	        identical semantic counters, and exact count reconciliation
//	        (which now includes parallel drain rounds).
//	storm — a 12-victim ForceKillAll over ring-owning tenants with
//	        exclusive slabs. Gate: the shared grace period combiner
//	        covers the storm with at most kills/1.5 grace periods
//	        (measured from EpochStats; the serial pre-pipeline kill
//	        loop paid one per kill), and with workers opted in the
//	        forced scrub reports sharded zeroing jobs.
//
// Timed runs are untraced; traced validation runs audit every
// configuration's full history, exactly as C18/C20 do.
func runC22(cfg Config) (*Result, error) {
	res := &Result{
		ID: "C22", Title: "Parallel reclamation pipeline (drain scaling / verdict identity / kill storm)",
		Columns: []string{"phase", "workers", "wall us", "cycles", "ops", "kops/s", "speedup", "graces"},
	}
	res.metric("gomaxprocs", float64(runtime.GOMAXPROCS(0)))
	res.metric("biglock", b2f(core.BigLockBuild))
	hostParallel := runtime.GOMAXPROCS(0) >= 4 && !cfg.contended
	if !hostParallel {
		res.note("host GOMAXPROCS=%d contended=%v: drain workers time-share hardware threads, so the wall-clock speedup gate is demoted to a note (cycle bit-identity and verdict identity still gate)", runtime.GOMAXPROCS(0), cfg.contended)
	}

	iters := 6
	if cfg.Quick {
		iters = 2
	}
	timed := cfg
	timed.Trace = false
	valid := cfg
	valid.Trace = true

	// Phase A: attest-drain scaling.
	type point struct {
		p    *c22DrainRun
		tput float64
	}
	var serialPt point
	for _, workers := range []int{0, 1, 2, 4} {
		tag := fmt.Sprintf("drain_w%d", workers)
		arm := fmt.Sprintf("%d", workers)
		if workers == 0 {
			tag, arm = "drain_serial", "serial"
		}
		p, err := runC22Drain(timed, workers, iters)
		if err != nil {
			return nil, fmt.Errorf("c22 %s: %w", tag, err)
		}
		tput := float64(p.ops) / p.wall.Seconds()
		speedup := 1.0
		if workers == 0 {
			serialPt = point{p: p, tput: tput}
		} else {
			speedup = tput / serialPt.tput
		}
		res.row("drain", arm, fmt.Sprintf("%d", p.wall.Microseconds()),
			fmtU(p.cycles), fmtU(p.ops), fmt.Sprintf("%.0f", tput/1e3),
			fmt.Sprintf("%.2fx", speedup), "-")
		res.metric(tag+"_wall_ns", float64(p.wall.Nanoseconds()))
		res.metric(tag+"_cycles", float64(p.cycles))
		res.metric(tag+"_ops", float64(p.ops))
		res.metric(tag+"_ops_per_sec", tput)
		res.metric(tag+"_speedup_vs_serial", speedup)
		res.check(tag+"-complete", p.complete, "fleet drained every descriptor each iteration%s", p.detail)
		switch workers {
		case 1:
			// One worker must route to the exact serial code: the
			// simulated history is bit-identical, not merely equivalent.
			res.check("drain-w1-cycle-identity", p.cycles == serialPt.p.cycles,
				"workers=1 cycle history %d vs serial %d (must be bit-identical)", p.cycles, serialPt.p.cycles)
		case 4:
			if hostParallel {
				res.check("drain-w4-speedup", speedup >= 2.0,
					"4-worker drain throughput %.2fx serial (gate: >= 2x)", speedup)
			} else {
				res.note("4-worker drain throughput %.2fx serial (2x gate demoted: host not parallel)", speedup)
			}
		}
	}

	// Phase B: mixed revocation workload — verdict identity.
	if trace.Compiled {
		ser, err := runC22Mixed(valid, 0)
		if err != nil {
			return nil, fmt.Errorf("c22 mixed serial: %w", err)
		}
		par, err := runC22Mixed(valid, 4)
		if err != nil {
			return nil, fmt.Errorf("c22 mixed parallel: %w", err)
		}
		one, err := runC22Mixed(valid, 1)
		if err != nil {
			return nil, fmt.Errorf("c22 mixed w1: %w", err)
		}
		for tag, r := range map[string]*c22MixedRun{"mixed_serial": ser, "mixed_w4": par} {
			r.w.traceClean(res, tag)
			res.metric(tag+"_cycles", float64(r.cycles))
			res.metric(tag+"_revocations", float64(r.revocations))
		}
		res.check("mixed-verdict-identity", ser.verdict == par.verdict,
			"checker verdicts serial vs parallel: %q vs %q (must be byte-identical)", ser.verdict, par.verdict)
		res.check("mixed-semantics-identical",
			ser.ringOps == par.ringOps && ser.revocations == par.revocations && ser.kills == par.kills,
			"semantic counters serial ops=%d revs=%d kills=%d vs parallel ops=%d revs=%d kills=%d",
			ser.ringOps, ser.revocations, ser.kills, par.ringOps, par.revocations, par.kills)
		res.check("mixed-w1-cycle-identity", one.cycles == ser.cycles,
			"workers=1 mixed cycle history %d vs serial %d (must be bit-identical)", one.cycles, ser.cycles)
		res.check("mixed-parallel-coalesces", par.shootdownRounds < ser.shootdownRounds,
			"parallel rounds retired %d shootdown rounds vs %d serial (cross-ring coalescing must reduce them)",
			par.shootdownRounds, ser.shootdownRounds)
		res.row("mixed", "serial", "-", fmtU(ser.cycles), fmtU(ser.ringOps), "-", "-", "-")
		res.row("mixed", "4", "-", fmtU(par.cycles), fmtU(par.ringOps), "-", "-", "-")
	} else {
		res.note("notrace build: mixed verdict-identity phase skipped (tracing compiled out)")
	}

	// Phase C: kill storm — shared grace periods and sharded scrub.
	for _, workers := range []int{0, 4} {
		tag := fmt.Sprintf("storm_w%d", workers)
		arm := fmt.Sprintf("%d", workers)
		if workers == 0 {
			tag, arm = "storm_serial", "serial"
		}
		s, err := runC22Storm(timed, workers)
		if err != nil {
			return nil, fmt.Errorf("c22 %s: %w", tag, err)
		}
		res.row("storm", arm, fmt.Sprintf("%d", s.wall.Microseconds()),
			fmtU(s.cycles), fmtU(s.kills), "-", "-", fmtU(s.graces))
		res.metric(tag+"_wall_ns", float64(s.wall.Nanoseconds()))
		res.metric(tag+"_graces", float64(s.graces))
		res.metric(tag+"_combined", float64(s.combined))
		res.check(tag+"-kills", s.kills == c22StormVictims, "storm killed %d/%d victims", s.kills, c22StormVictims)
		res.check(tag+"-graces", s.graces <= c22StormVictims*2/3,
			"storm of %d kills ran %d grace periods (gate: <= kills/1.5 = %d; combiner folded %d)",
			c22StormVictims, s.graces, c22StormVictims*2/3, s.combined)
		if workers > 0 {
			res.check(tag+"-scrub-sharded", s.scrubShards > 0,
				"forced scrub fanned zeroing across workers: %d shard jobs", s.scrubShards)
		}
		if trace.Compiled {
			v, err := runC22Storm(valid, workers)
			if err != nil {
				return nil, fmt.Errorf("c22 %s (traced): %w", tag, err)
			}
			res.check(tag+"-traced-kills", v.kills == c22StormVictims, "traced storm killed %d victims", v.kills)
			v.w.traceClean(res, tag)
		}
	}
	return res, nil
}

// c22Fleet is a set of ring-owning tenants built on a bench world.
type c22Fleet struct {
	w     *world
	doms  []core.DomainID
	bases []phys.Addr
	tails []uint64
	node  cap.NodeID // dom0's root memory capability
}

const (
	c22Tenants      = 8
	c22Entries      = 32
	c22PerRing      = 16
	c22StormVictims = 12
)

// c22PageRegion builds a page-granular memory resource.
func c22PageRegion(page, pages uint64) cap.Resource {
	return cap.MemResource(phys.MakeRegion(phys.Addr(page*phys.PageSize), pages*phys.PageSize))
}

// newC22Fleet boots a world with `tenants` ring-owning domains. Each
// tenant owns one ring page (granted exclusively) at page ringBase+2i.
func newC22Fleet(cfg Config, workers, tenants int) (*c22Fleet, error) {
	w, err := newWorld(cfg, defaultWorldOpts())
	if err != nil {
		return nil, err
	}
	if workers > 0 {
		w.mon.SetReclaimWorkers(workers)
	}
	f := &c22Fleet{w: w, tails: make([]uint64, tenants)}
	for _, n := range w.mon.OwnerNodes(core.InitialDomain) {
		if n.Resource.Kind == cap.ResMemory {
			f.node = n.ID
			break
		}
	}
	const ringBase = 4096
	for i := 0; i < tenants; i++ {
		dom, err := w.mon.CreateDomain(core.InitialDomain, fmt.Sprintf("tenant%d", i))
		if err != nil {
			return nil, err
		}
		page := uint64(ringBase + 2*i)
		if _, err := w.mon.Grant(core.InitialDomain, f.node, dom, c22PageRegion(page, 1), cap.MemRW, cap.CleanNone); err != nil {
			return nil, err
		}
		base := phys.Addr(page * phys.PageSize)
		if err := w.mon.RingSetup(dom, base, c22Entries); err != nil {
			return nil, err
		}
		f.doms = append(f.doms, dom)
		f.bases = append(f.bases, base)
	}
	return f, nil
}

// enqueue writes one descriptor with raw guest-level stores and
// advances the fleet's shadow tail.
func (f *c22Fleet) enqueue(i int, desc ...uint64) error {
	mem := f.w.mach.Mem
	off := f.bases[i] + phys.Addr(core.RingSQOff(c22Entries, f.tails[i]))
	for w := 0; w < 6; w++ {
		var v uint64
		if w < len(desc) {
			v = desc[w]
		}
		if err := mem.Write64(off+phys.Addr(8*w), v); err != nil {
			return err
		}
	}
	f.tails[i]++
	return mem.Write64(f.bases[i]+core.RingOffSQTail, f.tails[i])
}

// c22DrainRun is one timed attest-drain configuration.
type c22DrainRun struct {
	w        *world
	wall     time.Duration
	cycles   uint64
	ops      uint64
	complete bool
	detail   string
}

// runC22Drain drains c22PerRing CallAttest descriptors per tenant ring
// per iteration — each descriptor signs an attestation report, so a
// partitioned round has real host work to parallelise.
func runC22Drain(cfg Config, workers, iters int) (*c22DrainRun, error) {
	f, err := newC22Fleet(cfg, workers, c22Tenants)
	if err != nil {
		return nil, err
	}
	r := &c22DrainRun{w: f.w, complete: true}
	// Pre-write every descriptor slot once (slots are reused modulo the
	// ring size); iterations only republish tails.
	mem := f.w.mach.Mem
	for i := range f.doms {
		for s := uint64(0); s < c22Entries; s++ {
			off := f.bases[i] + phys.Addr(core.RingSQOff(c22Entries, s))
			if err := mem.Write64(off, core.CallAttest); err != nil {
				return nil, err
			}
			if err := mem.Write64(off+8, s); err != nil { // nonce
				return nil, err
			}
		}
	}
	cyclesBefore := f.w.mach.Clock.Cycles()
	start := time.Now()
	for it := 0; it < iters; it++ {
		for i := range f.doms {
			f.tails[i] += c22PerRing
			if err := mem.Write64(f.bases[i]+core.RingOffSQTail, f.tails[i]); err != nil {
				return nil, err
			}
		}
		n := f.w.mon.DrainRings()
		want := uint64(c22Tenants * c22PerRing)
		if n != want {
			r.complete = false
			r.detail = fmt.Sprintf(" (iteration %d drained %d, want %d; first error: %v)", it, n, want, f.w.mon.FirstDrainError())
		}
		r.ops += n
	}
	r.wall = time.Since(start)
	r.cycles = f.w.mach.Clock.Cycles() - cyclesBefore
	return r, nil
}

// c22MixedRun is one traced revocation-heavy run.
type c22MixedRun struct {
	w               *world
	cycles          uint64
	ringOps         uint64
	revocations     uint64
	kills           uint64
	shootdownRounds uint64
	verdict         string
}

// runC22Mixed drives flush-cleanup revokes and attests through every
// ring, then storms the last two tenants, and snapshots the checker's
// verdict bytes for the serial-vs-parallel identity gate.
func runC22Mixed(cfg Config, workers int) (*c22MixedRun, error) {
	f, err := newC22Fleet(cfg, workers, 6)
	if err != nil {
		return nil, err
	}
	rounds := 4
	if cfg.Quick {
		rounds = 2
	}
	const sharePages = 5200
	page := uint64(sharePages)
	for round := 0; round < rounds; round++ {
		for i, dom := range f.doms {
			for j := 0; j < 2; j++ {
				id, err := f.w.mon.Share(core.InitialDomain, f.node, dom, c22PageRegion(page, 1), cap.MemRW, cap.CleanFlushTLB)
				if err != nil {
					return nil, err
				}
				page++
				if err := f.enqueue(i, core.CallRevoke, uint64(id)); err != nil {
					return nil, err
				}
			}
			if err := f.enqueue(i, core.CallAttest, uint64(round)); err != nil {
				return nil, err
			}
			if err := f.enqueue(i, core.CallEnumerateLen); err != nil {
				return nil, err
			}
		}
		f.w.mon.DrainRings()
	}
	if _, err := f.w.mon.ForceKillAll(f.doms[len(f.doms)-2], f.doms[len(f.doms)-1]); err != nil {
		return nil, err
	}
	f.w.mon.DrainRings()
	st := f.w.mon.Stats()
	r := &c22MixedRun{
		w:               f.w,
		cycles:          f.w.mach.Clock.Cycles(),
		ringOps:         st.RingOps,
		revocations:     st.Revocations,
		kills:           st.ForcedKills,
		shootdownRounds: st.RingShootdowns,
	}
	if f.w.ck != nil {
		r.verdict = fmt.Sprintf("%v|%v", f.w.ck.Err(), f.w.ck.Violations())
	}
	return r, nil
}

// c22StormRun is one kill-storm configuration.
type c22StormRun struct {
	w           *world
	wall        time.Duration
	cycles      uint64
	kills       uint64
	graces      uint64
	combined    uint64
	scrubShards uint64
}

// runC22Storm builds c22StormVictims ring-owning tenants, each with an
// exclusive 8-page slab (forced-scrub fodder), and kills them all in
// one ForceKillAll.
func runC22Storm(cfg Config, workers int) (*c22StormRun, error) {
	f, err := newC22Fleet(cfg, workers, c22StormVictims)
	if err != nil {
		return nil, err
	}
	// Exclusive slabs: granted wholesale, away from the ring pages so
	// each victim scrubs at least two disjoint regions.
	for i, dom := range f.doms {
		slab := uint64(6000 + i*8)
		if _, err := f.w.mon.Grant(core.InitialDomain, f.node, dom, c22PageRegion(slab, 8), cap.MemRW, cap.CleanNone); err != nil {
			return nil, err
		}
		if err := f.enqueue(i, core.CallSelfID); err != nil {
			return nil, err
		}
	}
	f.w.mon.DrainRings()
	es0 := f.w.mon.EpochStats()
	st0 := f.w.mon.Stats()
	cyclesBefore := f.w.mach.Clock.Cycles()
	start := time.Now()
	n, err := f.w.mon.ForceKillAll(f.doms...)
	wall := time.Since(start)
	if err != nil {
		return nil, err
	}
	es1 := f.w.mon.EpochStats()
	st1 := f.w.mon.Stats()
	return &c22StormRun{
		w:           f.w,
		wall:        wall,
		cycles:      f.w.mach.Clock.Cycles() - cyclesBefore,
		kills:       uint64(n),
		graces:      es1.Syncs - es0.Syncs,
		combined:    es1.CombinedSyncs - es0.CombinedSyncs,
		scrubShards: st1.ScrubShards - st0.ScrubShards,
	}, nil
}
