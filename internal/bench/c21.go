package bench

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"github.com/tyche-sim/tyche/internal/attest"
	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/core"
	"github.com/tyche-sim/tyche/internal/dist"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/image"
	"github.com/tyche-sim/tyche/internal/libtyche"
	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/rv"
	"github.com/tyche-sim/tyche/internal/sched"
	"github.com/tyche-sim/tyche/internal/tpm"
	"github.com/tyche-sim/tyche/internal/trace"
	"github.com/tyche-sim/tyche/internal/trace/check"
)

func init() {
	register(Experiment{
		ID:    "C21",
		Title: "Always-on runtime verification: sharded checking at production rates, audited across machines",
		Paper: "trust without hierarchy needs evidence: the monitor's invariants are checked live on every machine and re-checked by its peers",
		Run:   runC21,
	})
}

// runC21 validates the always-on runtime-verification stack end to end,
// in three phases:
//
//	A — cost: the C19-style oversubscribed scheduler workload at 8-core
//	    full load, run untraced, with exact sharded verification, and
//	    with 1-in-16 sampled verification. Gates: min-of-trials
//	    wall-clock overhead under 5%, and bit-identical simulated cycle
//	    histories with checking on and off (verification must never
//	    advance the clocks it audits).
//	B — correctness: the run's own trace replayed through BOTH checker
//	    implementations, clean and with a seeded dead-domain violation;
//	    serial is the reference semantics, sharded must agree verbatim.
//	C — remoteness: a second machine ships hash-chained trace digests
//	    over the attested dist channel; the verifier machine replays the
//	    audit stream, flags a violation seeded on the remote node, and
//	    the wire tamper is caught by the channel itself.
func runC21(cfg Config) (*Result, error) {
	res := &Result{
		ID: "C21", Title: "Always-on runtime verification (overhead / differential / remote audit)",
		Columns: []string{"phase", "event", "detail"},
	}
	if !trace.Compiled {
		res.row("-", "notrace", "-")
		res.note("tracing compiled out (notrace build tag); runtime verification cannot attach")
		res.check("phases-run", true, "skipped under notrace")
		return res, nil
	}
	if err := runC21Overhead(cfg, res); err != nil {
		return nil, fmt.Errorf("c21 phase A: %w", err)
	}
	if err := runC21Differential(cfg, res); err != nil {
		return nil, fmt.Errorf("c21 phase B: %w", err)
	}
	if err := runC21Remote(cfg, res); err != nil {
		return nil, fmt.Errorf("c21 phase C: %w", err)
	}
	return res, nil
}

// c21Run is one verification mode measured over several trials.
type c21Run struct {
	wall    time.Duration // min over trials
	cycles  uint64        // trial 0; all trials must agree
	stable  bool          // cycles identical across trials
	events  uint64        // tracer emissions (last trial)
	skipped uint64        // sampled-out emissions (last trial)
	verdict error         // rv verdict (nil when clean or mode off)
	exact   bool          // exact-mode tallies reconcile with Stats()
}

// runC21Overhead is phase A: the 16-domain / 8-worker-core scheduler
// workload under three verification modes. Wall clock is host-noise
// sensitive, so each mode takes the minimum over trials and the 5%
// gate has a small absolute floor for machines where the whole run is
// a few milliseconds.
func runC21Overhead(cfg Config, res *Result) error {
	const domains, workers, sampleRate = 16, 8, 16
	iters, quantum, trials := 60_000, 8192, 5
	if cfg.Quick {
		iters = 6_000
	}
	if cfg.contended {
		// Sibling experiments are sharing the host CPUs, so wall clock
		// measures the worker pool, not the checker — and a full-size
		// phase A would starve their timing in return. Shrink the load,
		// keep the deterministic gates, waive the wall-clock ones.
		iters, trials = 2_000, 2
	}

	runOnce := func(sampleN int, out *c21Run, first bool) error {
		local := cfg
		local.Trace, local.Verify, local.audit = false, 0, nil
		opts := defaultWorldOpts()
		opts.cores = workers + 1
		w, err := newWorld(local, opts)
		if err != nil {
			return err
		}
		var svc *rv.Service
		var base core.Stats
		if sampleN > 0 {
			base = w.mon.Stats()
			if svc, err = rv.Attach(w.mach, w.mon, rv.Options{Node: "bench", SampleN: sampleN}); err != nil {
				return err
			}
		}
		cores := workerCores(workers)
		w.mon.SetSchedPolicy(&sched.Policy{Quantum: quantum, Steal: true, Seed: cfg.Seed})
		if _, err := loadTenants(w, domains, cores, computeTenant(uint32(iters))); err != nil {
			return err
		}
		// Level the GC field so a mode's position in the trial order does
		// not decide how much collector work its timed region inherits.
		runtime.GC()
		before := w.mach.Clock.Cycles()
		start := time.Now()
		if _, err := w.mon.RunCores(16_000_000, cores...); err != nil {
			return err
		}
		wall := time.Since(start)
		cycles := w.mach.Clock.Cycles() - before
		if st := w.mon.Stats(); st.SchedCompleted != uint64(domains) {
			return fmt.Errorf("only %d of %d tenants completed", st.SchedCompleted, domains)
		}
		if first {
			out.wall, out.cycles = wall, cycles
		} else {
			if cycles != out.cycles {
				out.stable = false
			}
			if wall < out.wall {
				out.wall = wall
			}
		}
		if svc != nil {
			if err := svc.Finalize(); err != nil {
				out.verdict = err
			}
			out.events = svc.Tracer().Len()
			out.skipped = svc.Tracer().SampledOut()
			if sampleN == 1 {
				// Exact mode: event-derived tallies must reconcile with
				// the monitor's statistics over the attached window.
				c, st := svc.Checker().Counts(), w.mon.Stats()
				if !(c.Transitions == st.Transitions-base.Transitions &&
					c.Revocations == st.Revocations-base.Revocations &&
					c.CapOps == st.CapOps-base.CapOps &&
					c.VMCalls+c.MachineChecks == st.VMExits-base.VMExits) {
					out.exact = false
				}
			}
		}
		return nil
	}

	// Trials interleave the modes with a rotated starting point: wall
	// clock on a loaded host drifts over the experiment's lifetime, so a
	// fixed order would systematically tax whichever mode runs last.
	off := &c21Run{stable: true, exact: true}
	exact := &c21Run{stable: true, exact: true}
	sampled := &c21Run{stable: true, exact: true}
	modes := []struct {
		name    string
		sampleN int
		out     *c21Run
	}{
		{"off", 0, off},
		{"verify exact", 1, exact},
		{fmt.Sprintf("verify 1-in-%d", sampleRate), sampleRate, sampled},
	}
	for t := 0; t < trials; t++ {
		for i := range modes {
			m := modes[(t+i)%len(modes)]
			if err := runOnce(m.sampleN, m.out, t == 0); err != nil {
				return fmt.Errorf("%s trial %d: %w", m.name, t, err)
			}
		}
	}

	res.row("A", "off", fmt.Sprintf("wall %dus, cycles %s", off.wall.Microseconds(), fmtU(off.cycles)))
	res.row("A", "verify exact", fmt.Sprintf("wall %dus, cycles %s, %s events",
		exact.wall.Microseconds(), fmtU(exact.cycles), fmtU(exact.events)))
	res.row("A", fmt.Sprintf("verify 1-in-%d", sampleRate), fmt.Sprintf("wall %dus, cycles %s, %s events (%s sampled out)",
		sampled.wall.Microseconds(), fmtU(sampled.cycles), fmtU(sampled.events), fmtU(sampled.skipped)))
	res.metric("a_off_wall_ns", float64(off.wall.Nanoseconds()))
	res.metric("a_exact_wall_ns", float64(exact.wall.Nanoseconds()))
	res.metric("a_sampled_wall_ns", float64(sampled.wall.Nanoseconds()))
	res.metric("a_cycles", float64(off.cycles))
	res.metric("a_events", float64(exact.events))
	res.metric("a_sampled_out", float64(sampled.skipped))

	res.check("a-cycles-identical",
		off.stable && exact.stable && sampled.stable &&
			off.cycles == exact.cycles && exact.cycles == sampled.cycles,
		"verification advances no simulated clocks: off=%d exact=%d sampled=%d over %d trials each",
		off.cycles, exact.cycles, sampled.cycles, trials)
	overhead := func(m *c21Run) float64 {
		return float64(m.wall-off.wall) / float64(off.wall) * 100
	}
	exactPct, sampledPct := overhead(exact), overhead(sampled)
	res.metric("a_exact_overhead_pct", exactPct)
	res.metric("a_sampled_overhead_pct", sampledPct)
	// Absolute floor: when the whole workload is a few ms of host time,
	// the percentage is dominated by scheduler jitter in the numerator.
	// Under a contended worker pool, or with the race detector
	// inflating every access's host cost, the wall numbers are
	// recorded but the gates are waived — they gate serial
	// uninstrumented runs (CI enforces them via `-experiment C21`).
	const floor = 2 * time.Millisecond
	waived := cfg.contended || raceEnabled
	suffix := ""
	if cfg.contended {
		suffix = "; gate waived under shared-CPU worker pool"
	} else if raceEnabled {
		suffix = "; gate waived under the race detector"
	}
	res.check("a-overhead-exact",
		waived || exactPct <= 5.0 || exact.wall-off.wall < floor,
		"exact sharded checking adds %.2f%% wall clock at 8-core full load (min of %d trials, gate 5%%)%s",
		exactPct, trials, suffix)
	res.check("a-overhead-sampled",
		waived || sampledPct <= 5.0 || sampled.wall-off.wall < floor,
		"1-in-%d sampled checking adds %.2f%% wall clock (min of %d trials, gate 5%%)%s",
		sampleRate, sampledPct, trials, suffix)
	res.check("a-verifier-clean", exact.verdict == nil && sampled.verdict == nil,
		"both verification modes report the workload clean: exact %v, sampled %v", exact.verdict, sampled.verdict)
	res.check("a-counts-exact", exact.exact,
		"exact-mode event tallies reconcile with the Stats() delta over the attached window")
	res.note("phase A: %d domains over %d worker cores, %d iterations each, quantum %d, %d trials per mode",
		domains, workers, iters, quantum, trials)
	return nil
}

// sortedViolationMsgs projects violations to a sorted message multiset
// for cross-checker comparison.
func sortedViolationMsgs(vs []check.Violation) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.Msg
	}
	sort.Strings(out)
	return out
}

// checkersAgree reports whether serial and sharded replays of the same
// stream reached identical verdicts, violation multisets, and counts.
func checkersAgree(serial *check.Checker, sh *check.Sharded) bool {
	if (serial.Err() == nil) != (sh.Err() == nil) {
		return false
	}
	a, b := sortedViolationMsgs(serial.Violations()), sortedViolationMsgs(sh.Violations())
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return serial.Counts() == sh.Counts()
}

// runC21Differential is phase B: record a real share/revoke/kill
// history in-process and replay it through both checker
// implementations, clean and with a seeded dead-domain violation.
func runC21Differential(cfg Config, res *Result) error {
	local := cfg
	local.Trace, local.Verify, local.audit = false, 0, nil
	w, err := newWorld(local, defaultWorldOpts())
	if err != nil {
		return err
	}
	tr := w.mach.NewTracer(1 << 15)
	w.mach.SetTracer(tr)
	lo := libtyche.DefaultLoadOptions()
	lo.Seal = false
	peer, err := w.cl.Load(haltImage("c21-peer"), lo)
	if err != nil {
		return err
	}
	rg, err := w.cl.Alloc(1)
	if err != nil {
		return err
	}
	rounds := 48
	if cfg.Quick {
		rounds = 12
	}
	for i := 0; i < rounds; i++ {
		node, err := w.mon.Share(core.InitialDomain, w.cl.HeapNode(), peer.ID(),
			cap.MemResource(rg), cap.MemRW, cap.CleanFlushTLB)
		if err != nil {
			return err
		}
		if err := w.mon.Revoke(core.InitialDomain, node); err != nil {
			return err
		}
	}
	if err := w.mon.ForceKill(peer.ID()); err != nil {
		return err
	}
	if d := tr.Dropped(); d != 0 {
		return fmt.Errorf("trace ring dropped %d events", d)
	}

	evs := tr.Events()
	serial, sh := check.Replay(evs), check.ReplaySharded(evs)
	res.row("B", "differential replay, clean history", fmt.Sprintf("%d events, serial vs sharded", len(evs)))
	res.metric("b_events", float64(len(evs)))
	res.check("b-clean", serial.Err() == nil && sh.Err() == nil,
		"both checkers accept the recorded history: serial %v, sharded %v", serial.Err(), sh.Err())
	res.check("b-agree-clean", checkersAgree(serial, sh),
		"verdict, violation multiset, and counts identical on the clean history")

	// Seed the violation the paper's trust argument hinges on: the
	// "hardware" speaks for a domain the monitor already killed.
	w.mach.Trace(trace.GlobalCore, trace.KShare, uint64(peer.ID()), 0, 99, 0x1000, 4096)
	evs = tr.Events()
	serial, sh = check.Replay(evs), check.ReplaySharded(evs)
	caught := serial.Err() != nil && sh.Err() != nil
	res.row("B", "differential replay, seeded dead-domain use",
		boolCellWord(caught, "both reject", "MISSED"))
	res.check("b-violation-agree", caught && checkersAgree(serial, sh),
		"both checkers reject the seeded dead-domain use with identical verdicts: %v", serial.Err())
	return nil
}

// runC21Remote is phase C: two independently booted machines; the
// remote node runs verified with digest shipping over the attested
// channel, seeds a violation, and the verifier machine must catch it.
func runC21Remote(cfg Config, res *Result) error {
	build := func(name string) (*core.Monitor, *tpm.TPM, *libtyche.Client, *libtyche.Domain, *image.Image, error) {
		mach, err := hw.NewMachine(hw.Config{
			MemBytes: 16 << 20, NumCores: 2, IOMMUAllowByDefault: true,
			Devices: []hw.DeviceConfig{{Name: "rnic0", Class: hw.DevNIC}},
		})
		if err != nil {
			return nil, nil, nil, nil, nil, err
		}
		rot, err := tpm.New(nil)
		if err != nil {
			return nil, nil, nil, nil, nil, err
		}
		mon, err := core.Boot(core.BootConfig{Machine: mach, TPM: rot, Backend: cfg.Backend})
		if err != nil {
			return nil, nil, nil, nil, nil, err
		}
		cl := libtyche.New(mon, core.InitialDomain)
		if err := cl.AutoHeap(dom0ReservePages); err != nil {
			return nil, nil, nil, nil, nil, err
		}
		// Digests carry the interval's full structural audit stream, so
		// the registered buffer is sized well past one interval's JSON.
		img := haltImage(name).WithBSS(".rdma", 32*phys.PageSize)
		opts := libtyche.DefaultLoadOptions()
		opts.Cores = []phys.CoreID{1}
		opts.Devices = []phys.DeviceID{0}
		dom, err := cl.NewEnclave(img, opts)
		if err != nil {
			return nil, nil, nil, nil, nil, err
		}
		return mon, rot, cl, dom, img, nil
	}
	endpoint := func(mon *core.Monitor, rot *tpm.TPM, dom *libtyche.Domain,
		peerRot *tpm.TPM, peerMon *core.Monitor, peerImg *image.Image, peerDom *libtyche.Domain) (*dist.Endpoint, error) {
		buf, ok := dom.SegmentRegion(".rdma")
		if !ok {
			return nil, fmt.Errorf("no .rdma segment in domain %d", dom.ID())
		}
		meas, err := peerImg.Measurement(peerDom.Base())
		if err != nil {
			return nil, err
		}
		return &dist.Endpoint{
			Monitor: mon, TPM: rot, Domain: dom.ID(), Buffer: buf, NIC: 0,
			PeerVerifier:    attest.NewVerifier(peerRot.EndorsementKey(), peerMon.Identity()),
			PeerMeasurement: &meas,
		}, nil
	}

	monA, rotA, _, domA, imgA, err := build("c21-verifier")
	if err != nil {
		return err
	}
	monB, rotB, clB, domB, imgB, err := build("c21-remote")
	if err != nil {
		return err
	}
	wire := &dist.Wire{}
	epA, err := endpoint(monA, rotA, domA, rotB, monB, imgB, domB)
	if err != nil {
		return err
	}
	epB, err := endpoint(monB, rotB, domB, rotA, monA, imgA, domA)
	if err != nil {
		return err
	}
	conn, err := dist.Connect(epA, epB, wire)
	if err != nil {
		return err
	}
	res.row("C", "attested channel between verifier and remote node", "ok")
	res.check("c-connect", true, "mutual attestation established the digest channel")

	// The remote node verifies itself and ships every interval's digest
	// to the verifier machine through the channel.
	ver := check.NewRemoteVerifier("remote")
	ship := func(raw []byte) error {
		got, err := conn.Send(epB, raw)
		if err != nil {
			return err
		}
		return ver.Consume(got)
	}
	svc, err := rv.Attach(monB.Machine(), monB, rv.Options{Node: "remote", Ship: ship})
	if err != nil {
		return err
	}

	// Remote workload: the endpoint enclave runs to halt (the RunCores
	// quiescent point fires the checkpoint, shipping interval 0), then a
	// scratch domain takes an exclusive grant and is killed cleanly.
	if err := domB.Launch(1); err != nil {
		return err
	}
	if _, err := monB.RunCores(10_000, 1); err != nil {
		return err
	}
	scratch, err := monB.CreateDomain(core.InitialDomain, "scratch")
	if err != nil {
		return err
	}
	rg, err := clB.Alloc(1)
	if err != nil {
		return err
	}
	if _, err := monB.Grant(core.InitialDomain, clB.HeapNode(), scratch,
		cap.MemResource(rg), cap.MemRW, cap.CleanNone); err != nil {
		return err
	}
	if err := monB.ForceKill(scratch); err != nil {
		return err
	}
	// The seeded violation: the remote "hardware" emits a share by the
	// domain the monitor just killed.
	monB.Machine().Trace(trace.GlobalCore, trace.KShare, uint64(scratch), 0, 99, 0x1000, 4096)

	verr := svc.Finalize()
	res.row("C", "remote node self-verdict", boolCellWord(verr != nil, "violation flagged", "CLEAN"))
	res.check("c-remote-flags-itself", verr != nil && strings.Contains(verr.Error(), "dead domain"),
		"the remote node's own sharded checker rejects the seeded dead-domain use: %v", verr)

	flags := ver.Finalize()
	reported, diverged, broken := false, false, false
	for _, f := range flags {
		switch {
		case strings.Contains(f, "reported violation") && strings.Contains(f, "dead domain"):
			reported = true
		case strings.Contains(f, "diverges"):
			diverged = true
		case strings.Contains(f, "chain") || strings.Contains(f, "hash mismatch") || strings.Contains(f, "truncated"):
			broken = true
		}
	}
	res.row("C", "verifier consumed the digest chain",
		fmt.Sprintf("%d digest(s), %d flag(s)", ver.Digests(), len(flags)))
	res.metric("c_digests", float64(ver.Digests()))
	res.metric("c_flags", float64(len(flags)))
	res.check("c-chain-delivered", svc.Shipped() >= 2 && ver.Digests() == svc.Shipped(),
		"%d hash-chained digests shipped and every one consumed chain-valid", svc.Shipped())
	res.check("c-verifier-detects", reported,
		"the verifier machine flags the remote node's dead-domain violation over the attested channel")
	res.check("c-replay-agrees", !diverged && !broken,
		"independent audit replay agrees with the node's verdicts (no divergence, chain intact): %q", flags)

	// The transport's own integrity: a bit-flip on a digest frame in
	// flight must be rejected by the channel before it can reach the
	// verifier's chain logic.
	wire.Corrupt = func(f []byte) []byte { f[20] ^= 0xff; return f }
	_, tamperErr := conn.Send(epB, []byte("late digest"))
	wire.Corrupt = nil
	res.row("C", "ciphertext bit-flip on a digest frame", boolCell(tamperErr == nil))
	res.check("c-tamper-detected", errors.Is(tamperErr, dist.ErrTampered), "%v", tamperErr)
	res.note("phase C: digests are SHA-256 hash-chained per interval; the verifier replays each interval's structural audit stream through its own serial engine")
	return nil
}
