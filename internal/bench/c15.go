package bench

import (
	"fmt"
	"time"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/core"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/image"
	"github.com/tyche-sim/tyche/internal/libtyche"
	"github.com/tyche-sim/tyche/internal/phys"
)

func init() {
	register(Experiment{
		ID:    "C15",
		Title: "SMP contention: concurrent guest capability ops preserve refcount invariants",
		Paper: "§3.2 exact system-wide reference counts; monitor entry serialisation under multi-core execution",
		Run:   runC15,
	})
}

// runC15 is the multi-core contention experiment: W worker domains, one
// per core, each running *concurrently* (Monitor.RunCores, a goroutine
// per core) a guest loop that shares its private scratch page to the
// next worker in the ring and immediately revokes the share — the
// heaviest possible hammering of the capability engine from inside
// domains. Afterwards every invariant the paper's verifiers rely on
// must still hold: every scratch page is exclusive again (refcount 1),
// the monitor counted exactly W*iters revocations (no lost or phantom
// ops), and the capability generation advanced monotonically. The sweep
// over W shows guest execution parallelising while monitor entries
// serialise.
func runC15(cfg Config) (*Result, error) {
	res := &Result{
		ID: "C15", Title: "SMP capability contention",
		Columns: []string{"workers", "iters/worker", "wall us", "cycles", "vmexits", "revokes", "cycles/op"},
	}
	sweep := []int{1, 2, 4}
	iters := 64
	if cfg.Quick {
		sweep = []int{1, 4}
		iters = 24
	}
	for _, workers := range sweep {
		if err := c15Round(cfg, res, workers, iters); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func c15Round(cfg Config, res *Result, workers, iters int) error {
	opts := defaultWorldOpts()
	opts.cores = workers + 1 // dom0 idles on core 0
	w, err := newWorld(cfg, opts)
	if err != nil {
		return err
	}
	// Identical worker images: share-scratch-then-revoke in a loop. All
	// configuration arrives in registers, poked after Launch (which
	// zeroes them) exactly like libtyche's Invoke argument passing.
	prog := func(base phys.Addr) *hw.Asm {
		a := hw.NewAsm()
		a.Movi(12, 1)
		a.Label("loop")
		a.Mov(1, 6)  // scratch capability node
		a.Mov(2, 7)  // destination domain
		a.Mov(3, 8)  // scratch start
		a.Mov(4, 9)  // scratch size
		a.Mov(5, 11) // rights | cleanup<<16
		a.Movi(0, uint32(core.CallShare))
		a.Vmcall()
		a.Jnz(0, "fail")
		// r1 now holds the derived node; revoke it straight away.
		a.Movi(0, uint32(core.CallRevoke))
		a.Vmcall()
		a.Jnz(0, "fail")
		a.Sub(10, 10, 12)
		a.Jnz(10, "loop")
		a.Hlt()
		a.Label("fail")
		a.Movi(15, 0xdead)
		a.Hlt()
		return a
	}
	type worker struct {
		dom     *libtyche.Domain
		core    phys.CoreID
		scratch phys.Region
		node    cap.NodeID
	}
	var ws []*worker
	for i := 0; i < workers; i++ {
		img, err := buildAt(w.cl, fmt.Sprintf("worker%d", i), prog,
			func(img *image.Image) { img.WithBSS(".scratch", phys.PageSize) })
		if err != nil {
			return err
		}
		coreID := phys.CoreID(i + 1)
		lo := libtyche.DefaultLoadOptions()
		lo.Cores = []phys.CoreID{coreID}
		lo.Seal = false // workers receive shares while running
		dom, err := w.cl.Load(img, lo)
		if err != nil {
			return err
		}
		scratch, ok := dom.SegmentRegion(".scratch")
		if !ok {
			return fmt.Errorf("c15: worker %d has no scratch segment", i)
		}
		node, ok := dom.SegmentNode(".scratch")
		if !ok {
			return fmt.Errorf("c15: worker %d has no scratch node", i)
		}
		ws = append(ws, &worker{dom: dom, core: coreID, scratch: scratch, node: node})
	}
	statsBefore := w.mon.Stats()
	genBefore := w.mon.CapGeneration()
	cyclesBefore := w.mach.Clock.Cycles()
	var cores []phys.CoreID
	for i, wk := range ws {
		if err := wk.dom.Launch(wk.core); err != nil {
			return err
		}
		// Boot arguments, poked into the zeroed register file before the
		// core starts running.
		dst := core.InitialDomain
		if workers > 1 {
			dst = ws[(i+1)%workers].dom.ID()
		}
		c := w.mach.Core(wk.core)
		c.Regs[6] = uint64(wk.node)
		c.Regs[7] = uint64(dst)
		c.Regs[8] = uint64(wk.scratch.Start)
		c.Regs[9] = wk.scratch.Size()
		c.Regs[10] = uint64(iters)
		c.Regs[11] = uint64(cap.MemRW) | uint64(cap.CleanFlushTLB)<<16
		cores = append(cores, wk.core)
	}
	start := time.Now()
	runs, err := w.mon.RunCores(100_000, cores...)
	wall := time.Since(start)
	if err != nil {
		return err
	}
	cyclesDelta := w.mach.Clock.Cycles() - cyclesBefore
	statsAfter := w.mon.Stats()
	genAfter := w.mon.CapGeneration()

	tag := fmt.Sprintf("w%d", workers)
	ops := uint64(workers * iters)
	vmexits := statsAfter.VMExits - statsBefore.VMExits
	revokes := statsAfter.Revocations - statsBefore.Revocations
	res.row(fmt.Sprintf("%d", workers), fmt.Sprintf("%d", iters),
		fmt.Sprintf("%d", wall.Microseconds()), fmtU(cyclesDelta),
		fmtU(vmexits), fmtU(revokes), fmtU(cyclesDelta/(2*ops)))
	res.metric(tag+"_wall_ns", float64(wall.Nanoseconds()))
	res.metric(tag+"_cycles", float64(cyclesDelta))
	res.metric(tag+"_vmexits", float64(vmexits))
	res.metric(tag+"_revocations", float64(revokes))

	// Every worker must have finished its whole loop cleanly.
	complete := true
	detail := ""
	for _, wk := range ws {
		run, ok := runs[wk.core]
		c := w.mach.Core(wk.core)
		if !ok || run.Trap.Kind != hw.TrapHalt || c.Regs[10] != 0 || c.Regs[15] == 0xdead {
			complete = false
			detail = fmt.Sprintf("core %v: trap=%v r10=%d r15=%#x", wk.core, run.Trap, c.Regs[10], c.Regs[15])
			break
		}
	}
	res.check(tag+"-workers-complete", complete,
		"all %d workers ran %d share+revoke pairs to completion%s", workers, iters, detail)

	// Refcount invariant: every scratch page is exclusive again.
	exclusive := true
	for _, rc := range w.mon.RefCounts() {
		for _, wk := range ws {
			if rc.Region.Overlaps(wk.scratch) && rc.Count != 1 {
				exclusive = false
				detail = fmt.Sprintf("%v refcount %d", rc.Region, rc.Count)
			}
		}
	}
	res.check(tag+"-refcounts-restored", exclusive,
		"every scratch page back to refcount 1 after %d concurrent revocations%s", revokes, detail)

	// Op accounting: the serialised monitor must have seen exactly one
	// revocation per loop iteration — none lost, none duplicated.
	res.check(tag+"-ops-exact", revokes == ops && vmexits >= 2*ops,
		"%d revocations for %d issued (vmexits %d >= %d)", revokes, ops, vmexits, 2*ops)
	res.check(tag+"-generation-advances", genAfter > genBefore,
		"capability generation %d -> %d", genBefore, genAfter)
	return nil
}
