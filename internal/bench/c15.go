package bench

import (
	"fmt"
	"time"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/core"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/image"
	"github.com/tyche-sim/tyche/internal/libtyche"
	"github.com/tyche-sim/tyche/internal/phys"
)

func init() {
	register(Experiment{
		ID:    "C15",
		Title: "SMP contention: concurrent guest capability ops preserve refcount invariants",
		Paper: "§3.2 exact system-wide reference counts; monitor entry serialisation under multi-core execution",
		Run:   runC15,
	})
}

// runC15 is the multi-core contention experiment: W worker domains, one
// per core, each running *concurrently* (Monitor.RunCores, a goroutine
// per core) a guest loop that shares its private scratch page to the
// next worker in the ring and immediately revokes the share — the
// heaviest possible hammering of the capability engine from inside
// domains. Afterwards every invariant the paper's verifiers rely on
// must still hold: every scratch page is exclusive again (refcount 1),
// the monitor counted exactly W*iters revocations (no lost or phantom
// ops), and the capability generation advanced monotonically. The sweep
// over W shows guest execution parallelising while monitor entries
// serialise.
func runC15(cfg Config) (*Result, error) {
	res := &Result{
		ID: "C15", Title: "SMP capability contention",
		Columns: []string{"workers", "iters/worker", "wall us", "cycles", "vmexits", "revokes", "cycles/op"},
	}
	sweep := []int{1, 2, 4}
	iters := 64
	if cfg.Quick {
		sweep = []int{1, 4}
		iters = 24
	}
	for _, workers := range sweep {
		if err := c15Round(cfg, res, workers, iters); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// ringRun captures one execution of the share+revoke ring workload —
// the contention kernel shared by C15 (invariant checks under load)
// and C17 (tracing overhead on the identical workload).
type ringRun struct {
	w         *world
	wall      time.Duration
	cycles    uint64 // simulated cycles consumed by the concurrent phase
	vmexits   uint64
	revokes   uint64
	genBefore uint64
	genAfter  uint64
	ops       uint64 // share+revoke pairs issued
	complete  bool   // every worker halted cleanly with its loop drained
	detail    string // failure detail when a check below goes red
	scratches []phys.Region
	// lockWait/lockAcqs are the monitor-lock acquisition totals over the
	// concurrent phase only (C18 turns them into a contention share).
	lockWait time.Duration
	lockAcqs uint64
}

// runShareRevokeRing boots a world with one worker domain per core and
// drives the C15 guest loop concurrently to completion. tweak, when
// non-nil, runs right after world construction — C17 uses it to
// install tracers of different configurations on an otherwise
// identical workload.
func runShareRevokeRing(cfg Config, workers, iters int, tweak func(*world) error) (*ringRun, error) {
	opts := defaultWorldOpts()
	opts.cores = workers + 1 // dom0 idles on core 0
	w, err := newWorld(cfg, opts)
	if err != nil {
		return nil, err
	}
	if tweak != nil {
		if err := tweak(w); err != nil {
			return nil, err
		}
	}
	// Identical worker images: share-scratch-then-revoke in a loop. All
	// configuration arrives in registers, poked after Launch (which
	// zeroes them) exactly like libtyche's Invoke argument passing.
	prog := func(base phys.Addr) *hw.Asm {
		a := hw.NewAsm()
		a.Movi(12, 1)
		a.Label("loop")
		a.Mov(1, 6)  // scratch capability node
		a.Mov(2, 7)  // destination domain
		a.Mov(3, 8)  // scratch start
		a.Mov(4, 9)  // scratch size
		a.Mov(5, 11) // rights | cleanup<<16
		a.Movi(0, uint32(core.CallShare))
		a.Vmcall()
		a.Jnz(0, "fail")
		// r1 now holds the derived node; revoke it straight away.
		a.Movi(0, uint32(core.CallRevoke))
		a.Vmcall()
		a.Jnz(0, "fail")
		a.Sub(10, 10, 12)
		a.Jnz(10, "loop")
		a.Hlt()
		a.Label("fail")
		a.Movi(15, 0xdead)
		a.Hlt()
		return a
	}
	type worker struct {
		dom     *libtyche.Domain
		core    phys.CoreID
		scratch phys.Region
		node    cap.NodeID
	}
	var ws []*worker
	for i := 0; i < workers; i++ {
		img, err := buildAt(w.cl, fmt.Sprintf("worker%d", i), prog,
			func(img *image.Image) { img.WithBSS(".scratch", phys.PageSize) })
		if err != nil {
			return nil, err
		}
		coreID := phys.CoreID(i + 1)
		lo := libtyche.DefaultLoadOptions()
		lo.Cores = []phys.CoreID{coreID}
		lo.Seal = false // workers receive shares while running
		dom, err := w.cl.Load(img, lo)
		if err != nil {
			return nil, err
		}
		scratch, ok := dom.SegmentRegion(".scratch")
		if !ok {
			return nil, fmt.Errorf("c15: worker %d has no scratch segment", i)
		}
		node, ok := dom.SegmentNode(".scratch")
		if !ok {
			return nil, fmt.Errorf("c15: worker %d has no scratch node", i)
		}
		ws = append(ws, &worker{dom: dom, core: coreID, scratch: scratch, node: node})
	}
	r := &ringRun{w: w, ops: uint64(workers * iters), genBefore: w.mon.CapGeneration()}
	statsBefore := w.mon.Stats()
	cyclesBefore := w.mach.Clock.Cycles()
	var cores []phys.CoreID
	for i, wk := range ws {
		if err := wk.dom.Launch(wk.core); err != nil {
			return nil, err
		}
		// Boot arguments, poked into the zeroed register file before the
		// core starts running.
		dst := core.InitialDomain
		if workers > 1 {
			dst = ws[(i+1)%workers].dom.ID()
		}
		c := w.mach.Core(wk.core)
		c.Regs[6] = uint64(wk.node)
		c.Regs[7] = uint64(dst)
		c.Regs[8] = uint64(wk.scratch.Start)
		c.Regs[9] = wk.scratch.Size()
		c.Regs[10] = uint64(iters)
		c.Regs[11] = uint64(cap.MemRW) | uint64(cap.CleanFlushTLB)<<16
		cores = append(cores, wk.core)
	}
	waitBefore, acqBefore := w.mon.LockWait()
	start := time.Now()
	runs, err := w.mon.RunCores(100_000, cores...)
	r.wall = time.Since(start)
	if err != nil {
		return nil, err
	}
	waitAfter, acqAfter := w.mon.LockWait()
	r.lockWait, r.lockAcqs = waitAfter-waitBefore, acqAfter-acqBefore
	r.cycles = w.mach.Clock.Cycles() - cyclesBefore
	statsAfter := w.mon.Stats()
	r.genAfter = w.mon.CapGeneration()
	r.vmexits = statsAfter.VMExits - statsBefore.VMExits
	r.revokes = statsAfter.Revocations - statsBefore.Revocations

	r.complete = true
	for _, wk := range ws {
		r.scratches = append(r.scratches, wk.scratch)
		run, ok := runs[wk.core]
		c := w.mach.Core(wk.core)
		if !ok || run.Trap.Kind != hw.TrapHalt || c.Regs[10] != 0 || c.Regs[15] == 0xdead {
			r.complete = false
			r.detail = fmt.Sprintf("core %v: trap=%v r10=%d r15=%#x", wk.core, run.Trap, c.Regs[10], c.Regs[15])
		}
	}
	return r, nil
}

func c15Round(cfg Config, res *Result, workers, iters int) error {
	r, err := runShareRevokeRing(cfg, workers, iters, nil)
	if err != nil {
		return err
	}
	tag := fmt.Sprintf("w%d", workers)
	res.row(fmt.Sprintf("%d", workers), fmt.Sprintf("%d", iters),
		fmt.Sprintf("%d", r.wall.Microseconds()), fmtU(r.cycles),
		fmtU(r.vmexits), fmtU(r.revokes), fmtU(r.cycles/(2*r.ops)))
	res.metric(tag+"_wall_ns", float64(r.wall.Nanoseconds()))
	res.metric(tag+"_cycles", float64(r.cycles))
	res.metric(tag+"_vmexits", float64(r.vmexits))
	res.metric(tag+"_revocations", float64(r.revokes))

	// Every worker must have finished its whole loop cleanly.
	res.check(tag+"-workers-complete", r.complete,
		"all %d workers ran %d share+revoke pairs to completion%s", workers, iters, r.detail)

	// Refcount invariant: every scratch page is exclusive again.
	exclusive := true
	detail := ""
	for _, rc := range r.w.mon.RefCounts() {
		for _, scratch := range r.scratches {
			if rc.Region.Overlaps(scratch) && rc.Count != 1 {
				exclusive = false
				detail = fmt.Sprintf("%v refcount %d", rc.Region, rc.Count)
			}
		}
	}
	res.check(tag+"-refcounts-restored", exclusive,
		"every scratch page back to refcount 1 after %d concurrent revocations%s", r.revokes, detail)

	// Op accounting: the monitor must have seen exactly one revocation
	// per loop iteration — none lost, none duplicated — regardless of
	// how finely its locking is sliced.
	res.check(tag+"-ops-exact", r.revokes == r.ops && r.vmexits >= 2*r.ops,
		"%d revocations for %d issued (vmexits %d >= %d)", r.revokes, r.ops, r.vmexits, 2*r.ops)
	res.check(tag+"-generation-advances", r.genAfter > r.genBefore,
		"capability generation %d -> %d", r.genBefore, r.genAfter)
	// With -traced, the online checker audited every event of the run.
	r.w.traceClean(res, tag)
	return nil
}
