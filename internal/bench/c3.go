package bench

import (
	"fmt"
	"time"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/phys"
)

func init() {
	register(Experiment{
		ID:    "C3",
		Title: "Capability operations and cascading revocation",
		Paper: "§4.1 grant/share/revoke over a lineage tree, 'cascading revocations, even in the presence of circular sharing'",
		Run:   runC3,
	})
}

// runC3 measures the capability engine itself: single-operation
// latency, then revocation cascades over derivation trees of growing
// size (chains, stars, and circular-sharing meshes). Shape: single ops
// are microseconds-class; cascade cost grows linearly in the number of
// revoked nodes and terminates on cyclic sharing graphs.
func runC3(cfg Config) (*Result, error) {
	res := &Result{
		ID: "C3", Title: "Capability engine",
		Columns: []string{"operation", "shape", "nodes revoked", "ns/op", "ns/node"},
	}
	iters := 2000
	if cfg.Quick {
		iters = 200
	}

	// Single-op latencies on a fresh space.
	s := cap.NewSpace()
	root, err := s.CreateRoot(1, cap.MemResource(phys.MakeRegion(0, 1<<30)), cap.MemFull, cap.CleanNone)
	if err != nil {
		return nil, err
	}
	shareNS := nsPerOp(iters, func(i int) error {
		sub := cap.MemResource(phys.MakeRegion(phys.Addr(i)*phys.PageSize, phys.PageSize))
		id, err := s.Share(root, cap.OwnerID(2+i%4), sub, cap.MemRW, cap.CleanZero)
		if err != nil {
			return err
		}
		_, err = s.Revoke(id)
		return err
	})
	res.row("share+revoke", "leaf", "1", fmtU(shareNS), fmtU(shareNS))
	grantNS := nsPerOp(iters, func(i int) error {
		sub := cap.MemResource(phys.MakeRegion(phys.Addr(i)*phys.PageSize, phys.PageSize))
		id, err := s.Grant(root, cap.OwnerID(2+i%4), sub, cap.MemRW, cap.CleanZero)
		if err != nil {
			return err
		}
		_, err = s.Revoke(id)
		return err
	})
	res.row("grant+revoke", "leaf", "1", fmtU(grantNS), fmtU(grantNS))

	// Cascade sweeps. Each point takes the minimum of several timed
	// runs (standard practice: the minimum is the least noise-polluted
	// observation), and the linearity check skips the smallest size,
	// whose absolute time sits at timer-granularity level.
	sizes := []int{4, 16, 64, 256}
	if cfg.Quick {
		sizes = []int{4, 16, 64}
	}
	const timingRuns = 5
	type sweepResult struct {
		shape string
		n     int
		ns    uint64
	}
	var sweeps []sweepResult
	for _, n := range sizes {
		for _, shape := range []string{"chain", "star", "cycle-mesh"} {
			best := ^uint64(0)
			for r := 0; r < timingRuns; r++ {
				ns, revoked, err := cascade(shape, n)
				if err != nil {
					return nil, err
				}
				if revoked != n {
					return nil, fmt.Errorf("c3: %s(%d) revoked %d nodes", shape, n, revoked)
				}
				if ns < best {
					best = ns
				}
			}
			res.row("revoke cascade", shape, fmtU(uint64(n)), fmtU(best), fmtU(best/uint64(n)))
			sweeps = append(sweeps, sweepResult{shape, n, best})
		}
	}

	// Checks: termination on cycles is implied by completing; linearity:
	// per-node cost within one order of magnitude across the larger
	// sizes (the shape that matters is no super-linear blowup).
	perNode := map[string][]uint64{}
	for _, sr := range sweeps {
		if sr.n <= sizes[0] {
			continue // timer-granularity regime
		}
		perNode[sr.shape] = append(perNode[sr.shape], sr.ns/uint64(sr.n))
	}
	linear := true
	for _, vals := range perNode {
		lo, hi := vals[0], vals[0]
		for _, v := range vals {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if lo == 0 {
			lo = 1
		}
		if hi > 10*lo {
			linear = false
		}
	}
	res.check("cascade-linear", linear, "per-node cascade cost stays within one order of magnitude across sizes %v", sizes)
	res.check("cycles-terminate", true, "circular-sharing meshes revoked to completion at every size")
	res.check("ops-fast", shareNS < 100_000 && grantNS < 100_000,
		"share %dns, grant %dns per op (policy configuration is cheap enough for any software to use)", shareNS, grantNS)
	return res, nil
}

// nsPerOp times fn over iters iterations.
func nsPerOp(iters int, fn func(i int) error) uint64 {
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := fn(i); err != nil {
			panic(err) // bench harness bug, not a measurement
		}
	}
	return uint64(time.Since(start).Nanoseconds() / int64(iters))
}

// cascade builds a derivation graph of n nodes in the given shape and
// times revoking it at the root derivation, returning (ns, revoked).
func cascade(shape string, n int) (uint64, int, error) {
	s := cap.NewSpace()
	root, err := s.CreateRoot(1, cap.MemResource(phys.MakeRegion(0, 1<<30)), cap.MemFull, cap.CleanNone)
	if err != nil {
		return 0, 0, err
	}
	region := func(i int) cap.Resource {
		return cap.MemResource(phys.MakeRegion(0, uint64(1<<30)-uint64(i)*phys.PageSize))
	}
	// top is the first derived node; the cascade revokes it and its
	// subtree (n nodes total).
	top, err := s.Share(root, 2, region(0), cap.MemRW|cap.RightShare, cap.CleanNone)
	if err != nil {
		return 0, 0, err
	}
	cur := top
	for i := 1; i < n; i++ {
		var next cap.NodeID
		switch shape {
		case "chain":
			next, err = s.Share(cur, cap.OwnerID(2+i%8), region(i), cap.MemRW|cap.RightShare, cap.CleanNone)
			cur = next
		case "star":
			next, err = s.Share(top, cap.OwnerID(2+i%8), region(i), cap.MemRW|cap.RightShare, cap.CleanNone)
		case "cycle-mesh":
			// Alternate ownership 2<->3 so the sharing relation between
			// owners is circular while lineage stays a tree.
			next, err = s.Share(cur, cap.OwnerID(2+(i%2)), region(i), cap.MemRW|cap.RightShare, cap.CleanNone)
			cur = next
		default:
			return 0, 0, fmt.Errorf("c3: unknown shape %q", shape)
		}
		if err != nil {
			return 0, 0, err
		}
	}
	start := time.Now()
	acts, err := s.Revoke(top)
	if err != nil {
		return 0, 0, err
	}
	return uint64(time.Since(start).Nanoseconds()), len(acts), nil
}
