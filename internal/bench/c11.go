package bench

import (
	"fmt"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/core"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/oskit"
	"github.com/tyche-sim/tyche/internal/phys"
)

func init() {
	register(Experiment{
		ID:    "C11",
		Title: "Capability-routed interrupts and timer-sliced scheduling",
		Paper: "§4.1 future work: 'scheduling guarantees, cross-domain interrupt routing'",
		Run:   runC11,
	})
}

// runC11 exercises the §4.1 extensions: device interrupts follow the
// device *capability* (not privilege) as it moves between domains, and
// the architectural one-shot timer gives kernels preemptive, fair
// slicing over uncooperative code. Shape: the IRQ receiver is always
// the capability holder at delivery time; interrupts with no capable
// receiver are dropped, not misdelivered; two spinning processes get
// instruction counts within a few percent of each other.
func runC11(cfg Config) (*Result, error) {
	res := &Result{
		ID: "C11", Title: "Interrupt routing + scheduling",
		Columns: []string{"stage", "nic capability holder", "irq delivered to", "as expected"},
	}
	w, err := newWorld(cfg, defaultWorldOpts())
	if err != nil {
		return nil, err
	}
	m := w.mon
	cpu := w.mach.Core(0)

	received := map[string][]uint32{}
	handler := func(tag string) core.IRQHandler {
		return func(c *hw.Core, irq hw.IRQ) error {
			received[tag] = append(received[tag], irq.Vector)
			return nil
		}
	}
	fire := func(vector uint32) error {
		w.mach.Device(1).RaiseIRQ(vector)
		cpu.PC = dom0Entry
		cpu.ClearHalt()
		_, err := m.RunCore(0, 10)
		return err
	}
	expect := func(stage, holder, want string, vector uint32) {
		got := "-"
		for tag, vs := range received {
			for _, v := range vs {
				if v == vector {
					got = tag
				}
			}
		}
		res.row(stage, holder, got, boolYes(got == want))
		res.check("route-"+stage, got == want, "vector %d delivered to %q, want %q", vector, got, want)
	}

	// Stage 1: dom0 holds the NIC.
	if err := m.SetIRQHandler(core.InitialDomain, core.InitialDomain, handler("dom0")); err != nil {
		return nil, err
	}
	if err := fire(1); err != nil {
		return nil, err
	}
	expect("boot (dom0 owns nic)", "dom0", "dom0", 1)

	// Stage 2: the NIC is granted to a driver compartment.
	driver, err := m.CreateDomain(core.InitialDomain, "nic-driver")
	if err != nil {
		return nil, err
	}
	var devNode cap.NodeID
	for _, n := range m.OwnerNodes(core.InitialDomain) {
		if n.Resource.Kind == cap.ResDevice && n.Resource.Device == 1 {
			devNode = n.ID
		}
	}
	grantNode, err := m.Grant(core.InitialDomain, devNode, driver, cap.DeviceResource(1), cap.RightUse|cap.RightDMA, cap.CleanNone)
	if err != nil {
		return nil, err
	}
	if err := m.SetIRQHandler(core.InitialDomain, driver, handler("driver")); err != nil {
		return nil, err
	}
	if err := fire(2); err != nil {
		return nil, err
	}
	expect("after grant to compartment", "driver", "driver", 2)

	// Stage 3: the grant is revoked; routing follows the capability
	// back.
	if err := m.Revoke(core.InitialDomain, grantNode); err != nil {
		return nil, err
	}
	if err := fire(3); err != nil {
		return nil, err
	}
	expect("after revocation", "dom0", "dom0", 3)

	// Stage 4: nobody holds a handler for an unowned vector source.
	before := m.Stats().IRQsDropped
	w.mach.RaiseIRQ(phys.DeviceID(7), 4) // nonexistent device
	cpu.PC = dom0Entry
	cpu.ClearHalt()
	if _, err := m.RunCore(0, 10); err != nil {
		return nil, err
	}
	dropped := m.Stats().IRQsDropped - before
	res.row("unowned device", "(none)", "dropped", boolYes(dropped == 1))
	res.check("unowned-dropped", dropped == 1, "%d interrupt(s) dropped rather than misdelivered", dropped)

	// ---- Timer-sliced fairness over uncooperative spinners ----
	wos, err := newWorld(cfg, defaultWorldOpts())
	if err != nil {
		return nil, err
	}
	osk, err := oskit.NewWithClient(wos.mon, wos.cl)
	if err != nil {
		return nil, err
	}
	spin := func(base phys.Addr) []byte {
		a := hw.NewAsm()
		a.Label("s")
		a.Addi(1, 1, 1)
		a.Jmp("s")
		return a.MustAssemble(base)
	}
	p1, err := osk.Spawn("spin1", spin, 1, 0)
	if err != nil {
		return nil, err
	}
	p2, err := osk.Spawn("spin2", spin, 1, 0)
	if err != nil {
		return nil, err
	}
	slices := 40
	if cfg.Quick {
		slices = 16
	}
	counts := map[oskit.Pid]uint64{}
	for i := 0; i < slices; i++ {
		pid, _, err := osk.Schedule(0, 100)
		if err != nil {
			return nil, err
		}
		counts[pid] += 100
	}
	c1, c2 := counts[p1], counts[p2]
	fair := c1 == c2
	res.row(fmt.Sprintf("timer slicing: %d slices of 100 instr", slices),
		"-", fmt.Sprintf("spin1=%d spin2=%d", c1, c2), boolYes(fair))
	res.check("timer-fair-slicing", fair,
		"uncooperative spinners preempted architecturally: %d vs %d instructions", c1, c2)
	res.note("IRQ delivery charges a VM exit/entry pair; routed=%d dropped=%d on the routing world",
		m.Stats().IRQsRouted, m.Stats().IRQsDropped)
	return res, nil
}
