package bench

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/core"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/libtyche"
	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "C20",
		Title: "Batched ABI fast path: submission rings, coalesced shootdowns, transition cache",
		Paper: "§3 every operation is mediated; mediation cost must not scale with operation count",
		Run:   runC20,
	})
}

// c20K is the batch width: each workload iteration shares K pages to a
// sink domain and revokes all K delegations (TLB-flush cleanup, so
// every revocation owes a cross-core shootdown).
const c20K = 16

// runC20 measures the asynchronous batched ABI against the trap-per-op
// baseline on the same capability workload, in three phases:
//
//	storm    — W guest workers, one per core, each looping K=16
//	           share-to-sink + K revoke operations. The sync arm pays
//	           one VMCALL trap per operation and one TLB shootdown
//	           round per revocation (2K traps + K rounds per
//	           iteration); the batched arm enqueues descriptors with
//	           plain stores and pays two CallRingFlush traps per
//	           iteration, with the K revocation shootdowns coalesced
//	           into one cross-core round per batch.
//	batch-1  — a ring carrying exactly one descriptor per flush against
//	           the same operation done synchronously: batching is pure
//	           amortisation, so the degenerate batch must cost what the
//	           sync path costs (the opt-in is free when unused).
//	transcache — repeat mediated call/return switches with the
//	           pre-validated transition cache off vs on: a hit skips
//	           revalidation and pays the VMFUNC tariff (~100 cycles)
//	           instead of the exit/entry round trip.
//
// Gates (the tentpole's acceptance criteria): batched per-op cost >= 5x
// cheaper than sync on the storm, batched p99 per-op service span no
// worse than sync (throughput not bought with tail latency), exactly
// one shootdown round per revocation batch from trace counts, the
// batch-of-1 within 5% of sync, and the cached switch >= 5x cheaper
// than the slow path with pinned hit/miss counts.
//
// Timed runs are untraced; every configuration is re-run with the
// cycle-stamped tracer and online invariant checker attached, which
// also supplies the shootdown-round counts and the per-op spans the
// p99 gate reads (KOpBegin/KOpEnd bracket each capability operation).
func runC20(cfg Config) (*Result, error) {
	res := &Result{
		ID: "C20", Title: "Batched ABI throughput (ring storm / batch-of-1 / transition cache)",
		Columns: []string{"arm", "workers", "wall us", "cycles", "ops", "cyc/op", "traps", "shootdowns", "p99 cyc"},
	}

	sweep := []int{1, 2, 4}
	iters := 8
	if cfg.Quick {
		sweep = []int{1, 2}
		iters = 4
	}
	timed := cfg
	timed.Trace = false
	valid := cfg
	valid.Trace = true

	for _, workers := range sweep {
		var perOp [2]float64 // [sync, batched] cycles per op
		for ai, arm := range []string{"sync", "batched"} {
			batched := arm == "batched"
			tag := fmt.Sprintf("%s_w%d", arm, workers)
			p, err := runC20Storm(timed, workers, iters, batched, nil)
			if err != nil {
				return nil, fmt.Errorf("c20 %s: %w", tag, err)
			}
			perOp[ai] = float64(p.cycles) / float64(p.ops)
			res.check(tag+"-complete", p.complete,
				"all %d workers drained %d iterations of %d ops%s", workers, iters, 2*c20K, p.detail)

			// Traced validation: same configuration, full-history audit,
			// plus the shootdown-round and p99 evidence.
			var sd, p99c uint64
			if trace.Compiled {
				spans := newOpSpans()
				v, err := runC20Storm(valid, workers, iters, batched, spans)
				if err != nil {
					return nil, fmt.Errorf("c20 %s (traced): %w", tag, err)
				}
				res.check(tag+"-traced-complete", v.complete, "traced validation run complete%s", v.detail)
				v.w.traceClean(res, tag)
				sd = v.shootdowns
				p99c = spans.p99()
				wantSD := uint64(workers * iters)
				if !batched {
					wantSD = uint64(workers * iters * c20K)
				}
				res.check(tag+"-shootdown-rounds", sd == wantSD,
					"traced cross-core shootdown rounds: %d, want %d (%s)", sd, wantSD,
					map[bool]string{true: "one per revocation batch", false: "one per revocation"}[batched])
			}
			res.row(arm, fmt.Sprintf("%d", workers),
				fmt.Sprintf("%d", p.wall.Microseconds()), fmtU(p.cycles), fmtU(p.ops),
				fmt.Sprintf("%.0f", perOp[ai]), fmtU(p.traps), fmtU(sd), fmtU(p99c))
			res.metric(tag+"_wall_ns", float64(p.wall.Nanoseconds()))
			res.metric(tag+"_cycles", float64(p.cycles))
			res.metric(tag+"_ops", float64(p.ops))
			res.metric(tag+"_cycles_per_op", perOp[ai])
			res.metric(tag+"_traps", float64(p.traps))
			if trace.Compiled {
				res.metric(tag+"_shootdown_rounds", float64(sd))
				res.metric(tag+"_p99_cycles", float64(p99c))
				if batched {
					res.metric(fmt.Sprintf("w%d_p99_batched", workers), float64(p99c))
				} else {
					res.metric(fmt.Sprintf("w%d_p99_sync", workers), float64(p99c))
				}
			}
		}
		speedup := perOp[0] / perOp[1]
		res.metric(fmt.Sprintf("w%d_batch_speedup_cycles", workers), speedup)
		res.check(fmt.Sprintf("w%d-batched-5x", workers), speedup >= 5,
			"batched per-op cost %.0f cyc vs sync %.0f cyc: %.1fx (gate: >= 5x)",
			perOp[1], perOp[0], speedup)
	}
	// The p99 half of the throughput gate: the batched arm's per-op
	// service span must not regress past the sync arm's. Spans are
	// measured on the aggregate cycle clock, so with multiple workers
	// the concurrent cores' progress bleeds into each span — real in
	// both arms but interleaving-dependent, so the single-worker point
	// (fully deterministic) carries the strict gate and wider points
	// get 2x headroom for that cross-core noise.
	if trace.Compiled {
		for _, workers := range sweep {
			s := res.Metrics[fmt.Sprintf("w%d_p99_sync", workers)]
			b := res.Metrics[fmt.Sprintf("w%d_p99_batched", workers)]
			slack := 1.0
			if workers > 1 {
				slack = 2.0
			}
			res.check(fmt.Sprintf("w%d-p99-no-worse", workers), b <= s*slack && s > 0,
				"per-op span p99: batched %.0f cyc vs sync %.0f cyc (tolerance %.0fx)", b, s, slack)
		}
	} else {
		res.note("notrace build: shootdown-round, p99, and trace-oracle checks skipped (tracing compiled out)")
	}

	// Simulated cycles are deterministic: two identical unbatched runs
	// must produce bit-identical histories (batching stays opt-in and
	// perturbs nothing it does not touch).
	d1, err := runC20Storm(timed, 1, iters, false, nil)
	if err != nil {
		return nil, err
	}
	d2, err := runC20Storm(timed, 1, iters, false, nil)
	if err != nil {
		return nil, err
	}
	res.check("sync-deterministic", d1.cycles == d2.cycles,
		"unbatched cycle history bit-identical across runs: %d vs %d cycles", d1.cycles, d2.cycles)

	if err := runC20BatchOfOne(timed, res); err != nil {
		return nil, err
	}
	if err := runC20TransCache(timed, res); err != nil {
		return nil, err
	}
	return res, nil
}

// c20Run is one execution of the share/revoke storm.
type c20Run struct {
	w          *world
	wall       time.Duration
	cycles     uint64
	ops        uint64 // shares + revokes executed
	traps      uint64 // VMExits taken during the run
	shootdowns uint64 // cross-core rounds (traced runs)
	complete   bool
	detail     string
}

// runC20Storm boots a world with `workers` guest domains (one per core,
// dom0 idling on core 0), each owning a K-page shareable region plus —
// in the batched arm — a K-entry submission ring, and runs them to
// completion. Every worker executes `iters` iterations of: share its K
// pages to dom0 with TLB-flush cleanup, then revoke all K delegations.
func runC20Storm(cfg Config, workers, iters int, batched bool, spans *opSpans) (*c20Run, error) {
	opts := defaultWorldOpts()
	opts.cores = workers + 1 // dom0 idles on core 0
	w, err := newWorld(cfg, opts)
	if err != nil {
		return nil, err
	}
	pgs := uint64(phys.PageSize)
	rightsWord := uint32(cap.MemRW) | uint32(cap.CleanFlushTLB)<<16
	ringPages := (core.RingBytes(c20K) + pgs - 1) / pgs

	type workerDom struct {
		dom  *libtyche.Domain
		sink *libtyche.Domain
		node cap.NodeID
		core phys.CoreID
	}
	var ws []*workerDom
	for i := 0; i < workers; i++ {
		coreID := phys.CoreID(i + 1)
		// Delegations resynchronise both endpoints' address-translation
		// state, a cost proportional to the pages they own. Sharing into
		// a minimal sink domain (instead of page-rich dom0) keeps that
		// resync term small and identical across arms, so the A/B
		// isolates what batching actually changes: traps and shootdowns.
		loSink := libtyche.DefaultLoadOptions()
		loSink.Seal = false
		sink, err := w.cl.Load(haltImage(fmt.Sprintf("sink%d", i)), loSink)
		if err != nil {
			return nil, err
		}
		// Allocate the worker's regions first so their addresses are
		// assembly-time constants for the generated program.
		shareRg, err := w.cl.Alloc(c20K)
		if err != nil {
			return nil, err
		}
		ringRg, err := w.cl.Alloc(ringPages)
		if err != nil {
			return nil, err
		}
		var gen func(base phys.Addr) *hw.Asm
		if batched {
			gen = func(base phys.Addr) *hw.Asm {
				return c20BatchedProg(ringRg.Start, shareRg.Start, rightsWord)
			}
		} else {
			gen = func(base phys.Addr) *hw.Asm {
				return c20SyncProg(shareRg.Start, rightsWord)
			}
		}
		img, err := buildAt(w.cl, fmt.Sprintf("w%d", i), gen)
		if err != nil {
			return nil, err
		}
		lo := libtyche.DefaultLoadOptions()
		lo.Cores = []phys.CoreID{coreID}
		lo.Seal = false
		dom, err := w.cl.Load(img, lo)
		if err != nil {
			return nil, err
		}
		// The shareable region transfers to the worker with delegation
		// rights: the worker re-shares it to dom0 from guest code.
		node, err := w.mon.Grant(core.InitialDomain, w.cl.HeapNode(), dom.ID(),
			cap.MemResource(shareRg), cap.MemRW|cap.RightShare, cap.CleanNone)
		if err != nil {
			return nil, err
		}
		// The ring footprint only needs to be guest-readable/writable.
		if _, err := w.mon.Grant(core.InitialDomain, w.cl.HeapNode(), dom.ID(),
			cap.MemResource(ringRg), cap.MemRW, cap.CleanNone); err != nil {
			return nil, err
		}
		ws = append(ws, &workerDom{dom: dom, sink: sink, node: node, core: coreID})
	}

	r := &c20Run{w: w, ops: uint64(workers * iters * 2 * c20K)}
	var cores []phys.CoreID
	for _, wd := range ws {
		if err := wd.dom.Launch(wd.core); err != nil {
			return nil, err
		}
		c := w.mach.Core(wd.core)
		c.Regs[6] = uint64(wd.node)
		c.Regs[7] = uint64(wd.sink.ID())
		c.Regs[10] = uint64(iters)
		cores = append(cores, wd.core)
	}
	if spans != nil && w.ck != nil {
		// Attach after setup so the span population is exactly the
		// measured window's operations.
		w.mach.Tracer().Attach(spans)
	}
	var sdBefore uint64
	if w.ck != nil {
		sdBefore = w.ck.Counts().Shootdowns
	}
	statsBefore := w.mon.Stats()
	cyclesBefore := w.mach.Clock.Cycles()
	start := time.Now()
	runs, err := w.mon.RunCores(1_000_000, cores...)
	r.wall = time.Since(start)
	if err != nil {
		return nil, err
	}
	r.cycles = w.mach.Clock.Cycles() - cyclesBefore
	st := w.mon.Stats()
	r.traps = st.VMExits - statsBefore.VMExits
	if w.ck != nil {
		r.shootdowns = w.ck.Counts().Shootdowns - sdBefore
	}

	r.complete = true
	for _, wd := range ws {
		run, ok := runs[wd.core]
		c := w.mach.Core(wd.core)
		if !ok || run.Trap.Kind != hw.TrapHalt || c.Regs[10] != 0 || c.Regs[15] == 0xdead {
			r.complete = false
			r.detail = fmt.Sprintf(" (core %v: trap=%v r10=%d r15=%#x)", wd.core, run.Trap, c.Regs[10], c.Regs[15])
		}
	}
	// Exact operation accounting — none lost, none duplicated, and the
	// ring counters move only when the ring path ran.
	wantRevokes := uint64(workers * iters * c20K)
	if got := st.Revocations - statsBefore.Revocations; got != wantRevokes {
		r.complete = false
		r.detail = fmt.Sprintf(" (revocations %d, want %d)", got, wantRevokes)
	}
	flushes := st.RingFlushes - statsBefore.RingFlushes
	ringOps := st.RingOps - statsBefore.RingOps
	coalesced := st.RingOpsCoalesced - statsBefore.RingOpsCoalesced
	rounds := st.RingShootdowns - statsBefore.RingShootdowns
	if batched {
		if flushes != uint64(workers*iters*2) || ringOps != r.ops ||
			rounds != uint64(workers*iters) || coalesced != wantRevokes {
			r.complete = false
			r.detail = fmt.Sprintf(" (ring flushes=%d ops=%d rounds=%d coalesced=%d, want %d/%d/%d/%d)",
				flushes, ringOps, rounds, coalesced, workers*iters*2, r.ops, workers*iters, wantRevokes)
		}
	} else if flushes != 0 || ringOps != 0 {
		r.complete = false
		r.detail = fmt.Sprintf(" (sync arm moved ring counters: flushes=%d ops=%d)", flushes, ringOps)
	}
	return r, nil
}

// c20SyncProg is the trap-per-op worker: K times per iteration, a
// CallShare VMCALL immediately followed by a CallRevoke VMCALL of the
// node the share minted (left in r1 by the ABI).
//
// Registers: r6 = shareable-region capability node and r7 = sink
// domain ID (both set at launch), r10 = iteration count, r12 =
// constant 1, r15 = failure marker.
func c20SyncProg(shareBase phys.Addr, rightsWord uint32) *hw.Asm {
	a := hw.NewAsm()
	a.Movi(12, 1)
	a.Label("outer")
	for k := uint64(0); k < c20K; k++ {
		a.Mov(1, 6)
		a.Mov(2, 7)
		a.Movi(3, uint32(shareBase)+uint32(k*phys.PageSize))
		a.Movi(4, uint32(phys.PageSize))
		a.Movi(5, rightsWord)
		a.Movi(0, uint32(core.CallShare))
		a.Vmcall()
		a.Jnz(0, "fail")
		// r1 now holds the minted node: revoke it straight back.
		a.Movi(0, uint32(core.CallRevoke))
		a.Vmcall()
		a.Jnz(0, "fail")
	}
	a.Sub(10, 10, 12)
	a.Jnz(10, "outer")
	a.Hlt()
	a.Label("fail")
	a.Movi(15, 0xdead)
	a.Hlt()
	return a
}

// c20BatchedProg is the ring worker: per iteration it writes K share
// descriptors with plain stores, publishes the tail, flushes (trap 1),
// then reads each completion back, rewrites the slots as revoke
// descriptors of the minted nodes, and flushes again (trap 2). The ring
// holds exactly K entries and every batch is exactly K descriptors, so
// descriptor i of every batch lands on slot i — all offsets are
// assembly-time immediates.
//
// Registers: r6 = share node, r7 = sink domain ID, r10 = iterations,
// r11 = running submission tail, r12 = constant 1, r13 = ring base,
// r15 = failure marker.
func c20BatchedProg(ringBase, shareBase phys.Addr, rightsWord uint32) *hw.Asm {
	a := hw.NewAsm()
	a.Movi(1, uint32(ringBase))
	a.Movi(2, c20K)
	a.Movi(0, uint32(core.CallRingSetup))
	a.Vmcall()
	a.Jnz(0, "fail")
	a.Movi(13, uint32(ringBase))
	a.Movi(12, 1)
	a.Movi(11, 0)
	a.Label("outer")
	for k := uint64(0); k < c20K; k++ {
		off := uint32(core.RingSQOff(c20K, k))
		a.Movi(1, uint32(core.CallShare))
		a.St(13, off, 1)
		a.St(13, off+8, 6)
		a.St(13, off+16, 7)
		a.Movi(1, uint32(shareBase)+uint32(k*phys.PageSize))
		a.St(13, off+24, 1)
		a.Movi(1, uint32(phys.PageSize))
		a.St(13, off+32, 1)
		a.Movi(1, rightsWord)
		a.St(13, off+40, 1)
	}
	a.Addi(11, 11, c20K)
	a.St(13, uint32(core.RingOffSQTail), 11)
	a.Movi(0, uint32(core.CallRingFlush))
	a.Vmcall()
	a.Jnz(0, "fail")
	for k := uint64(0); k < c20K; k++ {
		cq := uint32(core.RingCQOff(c20K, k))
		off := uint32(core.RingSQOff(c20K, k))
		a.Ld(1, 13, cq) // share completion status must be OK
		a.Jnz(1, "fail")
		a.Ld(2, 13, cq+8) // minted node
		a.Movi(1, uint32(core.CallRevoke))
		a.St(13, off, 1)
		a.St(13, off+8, 2)
	}
	a.Addi(11, 11, c20K)
	a.St(13, uint32(core.RingOffSQTail), 11)
	a.Movi(0, uint32(core.CallRingFlush))
	a.Vmcall()
	a.Jnz(0, "fail")
	a.Sub(10, 10, 12)
	a.Jnz(10, "outer")
	a.Hlt()
	a.Label("fail")
	a.Movi(15, 0xdead)
	a.Hlt()
	return a
}

// runC20BatchOfOne measures the degenerate batch: one descriptor per
// flush against the identical synchronous operation. The ring's whole
// benefit is amortisation, so a batch of one must cost what the sync
// path costs — within 5%, per the acceptance gate.
func runC20BatchOfOne(cfg Config, res *Result) error {
	w, err := newWorld(cfg, defaultWorldOpts())
	if err != nil {
		return err
	}
	lo := libtyche.DefaultLoadOptions()
	lo.Seal = false
	peer, err := w.cl.Load(haltImage("b1-peer"), lo)
	if err != nil {
		return err
	}
	rg, err := w.cl.Alloc(1)
	if err != nil {
		return err
	}
	const M = 16
	share := func() (cap.NodeID, error) {
		return w.mon.Share(core.InitialDomain, w.cl.HeapNode(), peer.ID(),
			cap.MemResource(rg), cap.MemRW, cap.CleanFlushTLB)
	}
	var syncTotal, batchTotal uint64
	for i := 0; i < M; i++ {
		node, err := share()
		if err != nil {
			return err
		}
		c, err := cycles(w.mach, func() error { return w.mon.Revoke(core.InitialDomain, node) })
		if err != nil {
			return err
		}
		syncTotal += c
	}
	ring, err := w.cl.NewRing(1)
	if err != nil {
		return err
	}
	for i := 0; i < M; i++ {
		node, err := share()
		if err != nil {
			return err
		}
		c, err := cycles(w.mach, func() error {
			if err := ring.Enqueue(core.CallRevoke, uint64(node)); err != nil {
				return err
			}
			n, err := ring.Flush()
			if err == nil && n != 1 {
				return fmt.Errorf("batch-of-1 flush drained %d descriptors", n)
			}
			return err
		})
		if err != nil {
			return err
		}
		batchTotal += c
	}
	s := float64(syncTotal) / M
	b := float64(batchTotal) / M
	dev := (b - s) / s
	if dev < 0 {
		dev = -dev
	}
	res.row("batch-1", "-", "-", "-", fmt.Sprintf("%d+%d", M, M),
		fmt.Sprintf("%.0f vs %.0f", b, s), "-", "-", "-")
	res.metric("b1_sync_cycles_per_op", s)
	res.metric("b1_batched_cycles_per_op", b)
	res.check("batch1-parity", dev <= 0.05,
		"batch-of-1 revocation %.0f cyc vs sync %.0f cyc: %.1f%% apart (gate: <= 5%%)", b, s, dev*100)
	return nil
}

// runC20TransCache measures the pre-validated transition cache on a
// mediated call/return pair: uncached every switch revalidates and pays
// the exit/entry round trip; cached (and with the world quiet, so no
// generation has moved) it pays the VMFUNC tariff.
func runC20TransCache(cfg Config, res *Result) error {
	w, err := newWorld(cfg, defaultWorldOpts())
	if err != nil {
		return err
	}
	lo := libtyche.DefaultLoadOptions()
	lo.Cores = []phys.CoreID{0}
	lo.Seal = false
	svc, err := w.cl.Load(addImage("tc-svc", 0), lo)
	if err != nil {
		return err
	}
	const M = 32
	pairs := func(n int) (uint64, error) {
		return cycles(w.mach, func() error {
			for i := 0; i < n; i++ {
				if err := w.mon.Call(0, svc.ID()); err != nil {
					return err
				}
				if err := w.mon.Return(0); err != nil {
					return err
				}
			}
			return nil
		})
	}
	uncached, err := pairs(M)
	if err != nil {
		return err
	}
	w.mon.SetTransitionCache(true)
	defer w.mon.SetTransitionCache(false)
	if _, err := pairs(1); err != nil { // warm: miss + fill
		return err
	}
	stBefore := w.mon.Stats()
	cached, err := pairs(M)
	if err != nil {
		return err
	}
	st := w.mon.Stats()
	hits := st.TransCacheHits - stBefore.TransCacheHits
	misses := st.TransCacheMisses - stBefore.TransCacheMisses
	cost := w.mach.Cost

	up := float64(uncached) / M
	cp := float64(cached) / M
	ratio := up / cp
	res.row("transcache", "-", "-", fmtU(cached), fmtU(2*M),
		fmt.Sprintf("%.0f vs %.0f", cp, up), "0", "-", "-")
	res.metric("tc_uncached_cycles_per_pair", up)
	res.metric("tc_cached_cycles_per_pair", cp)
	res.metric("tc_speedup", ratio)
	res.metric("tc_hits", float64(hits))
	res.metric("tc_misses", float64(misses))
	res.check("transcache-5x", ratio >= 5,
		"cached call/return pair %.0f cyc vs uncached %.0f cyc: %.1fx (gate: >= 5x)", cp, up, ratio)
	res.check("transcache-vmfunc-cost", cached <= uint64(M)*(2*cost.VMFunc+8),
		"cached pair costs %d cyc over %d pairs, VMFUNC tariff is %d/switch", cached, M, cost.VMFunc)
	res.check("transcache-pinned-hits", hits == 2*M && misses == 0,
		"quiet-world hit/miss: %d/%d, want %d/0 (every switch after the fill is a hit)", hits, misses, 2*M)
	return nil
}

// opSpans is a trace sink collecting the cycle span of every capability
// operation (KOpBegin..KOpEnd, matched by token). Ops are serialised by
// the monitor lock so a token map suffices; the tracer already
// serialises sink delivery but the mutex keeps the final read safe.
type opSpans struct {
	mu    sync.Mutex
	open  map[uint64]uint64
	spans []uint64
}

func newOpSpans() *opSpans { return &opSpans{open: make(map[uint64]uint64)} }

func (s *opSpans) Event(ev trace.Event) {
	switch ev.Kind {
	case trace.KOpBegin:
		s.mu.Lock()
		s.open[ev.Node] = ev.Cycle
		s.mu.Unlock()
	case trace.KOpEnd:
		s.mu.Lock()
		if b, ok := s.open[ev.Node]; ok {
			delete(s.open, ev.Node)
			s.spans = append(s.spans, ev.Cycle-b)
		}
		s.mu.Unlock()
	}
}

// p99 returns the 99th-percentile span (0 when nothing was observed).
func (s *opSpans) p99() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.spans) == 0 {
		return 0
	}
	sorted := append([]uint64(nil), s.spans...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := (len(sorted)*99 + 99) / 100
	if idx > len(sorted) {
		idx = len(sorted)
	}
	return sorted[idx-1]
}
