package bench

import (
	"fmt"
	"runtime"
	"time"

	"github.com/tyche-sim/tyche/internal/core"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/libtyche"
	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "C18",
		Title: "Monitor lock scalability: fine-grained locking vs the big lock over 1-8 cores",
		Paper: "§3 the monitor mediates every operation; mediation must not serialise multi-core execution",
		Run:   runC18,
	})
}

// runC18 measures how monitor-entry throughput scales with core count
// under two workloads at opposite ends of the locking spectrum:
//
//	capring — the C15 share+revoke ring: every iteration delegates
//	          under the shared lock and revokes via epoch-based
//	          detach (shared lock + revocation mutex + grace period),
//	          the heaviest mutation mix the monitor serves;
//	storm   — a transition storm: each worker loops a mediated
//	          call+return into a private service domain, the pure
//	          read-path case the fine-grained monitor runs with the
//	          lock held shared and no cross-core contention.
//
// Each sweep point reports wall time, simulated cycles, throughput,
// the monitor-lock wait accumulated across all cores (LockWait), the
// wait's share of total core-time, and throughput speedup relative to
// the single-worker run of the same workload.
//
// The same experiment runs on both lock implementations: the binary's
// policy is baked in by the `biglock` build tag and reported as the
// `biglock` metric, and `tyche-bench -merge` joins a fine-grained and
// a big-lock BENCH json into BENCH_scale.json, computing A/B speedups
// and enforcing the acceptance gates (storm >= 1.5x and capring >=
// 1.1x over the big lock at 4 workers — the latter is the concurrent
// revocation win: epoch-based reclamation detaches under the shared
// lock, so the revoke-heavy ring no longer serialises the monitor).
// Simulated cycles are wall-clock independent, so the merge
// also asserts single-worker cycle counts are bit-identical across the
// two builds — the locking policy must change timing only, never the
// simulated machine's history.
//
// Timed runs are untraced; each sweep point is then re-run untimed
// with the cycle-stamped tracer and online invariant checker attached,
// so every configuration's full history is audited (dead-domain
// silence, shootdown acks, scrub-before-kill, exact count
// reconciliation) without perturbing the measurement.
func runC18(cfg Config) (*Result, error) {
	res := &Result{
		ID: "C18", Title: "Monitor lock scalability (capring / transition storm)",
		Columns: []string{"workload", "workers", "wall us", "cycles", "ops", "kops/s", "lockwait us", "lock share", "speedup"},
	}
	lockMode := "fine-grained (sharded)"
	if core.BigLockBuild {
		lockMode = "big lock (biglock tag)"
	}
	res.metric("biglock", b2f(core.BigLockBuild))
	res.metric("gomaxprocs", float64(runtime.GOMAXPROCS(0)))
	res.note("lock implementation: %s; merge fine+biglock runs with `tyche-bench -merge` for the A/B", lockMode)
	if runtime.GOMAXPROCS(0) < 4 {
		res.note("host GOMAXPROCS=%d: workers time-share hardware threads, so wall-clock speedup cannot reflect the lock policy here (the -merge gate detects this and falls back to cycle bit-identity)", runtime.GOMAXPROCS(0))
	}

	sweep := []int{1, 2, 4, 8}
	iters := 48
	if cfg.Quick {
		sweep = []int{1, 4}
		iters = 16
	}
	timed := cfg
	timed.Trace = false // timed runs are never traced
	valid := cfg
	valid.Trace = true // validation runs always are (no-op under notrace)

	type c18Point struct {
		wall     time.Duration
		cycles   uint64
		pairs    uint64 // completed workload op pairs
		lockWait time.Duration
		lockAcqs uint64
		complete bool
		detail   string
		w        *world
	}
	workloads := []struct {
		key string
		run func(cfg Config, workers int) (*c18Point, error)
	}{
		{"capring", func(cfg Config, workers int) (*c18Point, error) {
			r, err := runShareRevokeRing(cfg, workers, iters, nil)
			if err != nil {
				return nil, err
			}
			return &c18Point{wall: r.wall, cycles: r.cycles, pairs: r.ops,
				lockWait: r.lockWait, lockAcqs: r.lockAcqs,
				complete: r.complete && r.revokes == r.ops, detail: r.detail, w: r.w}, nil
		}},
		{"storm", func(cfg Config, workers int) (*c18Point, error) {
			r, err := runTransitionStorm(cfg, workers, iters)
			if err != nil {
				return nil, err
			}
			return &c18Point{wall: r.wall, cycles: r.cycles, pairs: r.ops,
				lockWait: r.lockWait, lockAcqs: r.lockAcqs,
				complete: r.complete, detail: r.detail, w: r.w}, nil
		}},
	}

	for _, wl := range workloads {
		var base float64 // single-worker throughput (pairs/sec)
		for _, workers := range sweep {
			tag := fmt.Sprintf("%s_w%d", wl.key, workers)
			p, err := wl.run(timed, workers)
			if err != nil {
				return nil, fmt.Errorf("c18 %s: %w", tag, err)
			}
			tput := float64(p.pairs) / p.wall.Seconds()
			if workers == sweep[0] {
				base = tput
			}
			share := float64(p.lockWait) / (float64(workers) * float64(p.wall))
			speedup := tput / base
			res.row(wl.key, fmt.Sprintf("%d", workers),
				fmt.Sprintf("%d", p.wall.Microseconds()), fmtU(p.cycles), fmtU(p.pairs),
				fmt.Sprintf("%.0f", tput/1e3),
				fmt.Sprintf("%d", p.lockWait.Microseconds()),
				fmt.Sprintf("%.1f%%", share*100),
				fmt.Sprintf("%.2fx", speedup))
			res.metric(tag+"_wall_ns", float64(p.wall.Nanoseconds()))
			res.metric(tag+"_cycles", float64(p.cycles))
			res.metric(tag+"_ops", float64(p.pairs))
			res.metric(tag+"_ops_per_sec", tput)
			res.metric(tag+"_lockwait_ns", float64(p.lockWait.Nanoseconds()))
			res.metric(tag+"_lock_share", share)
			res.metric(tag+"_speedup_vs_w1", speedup)
			res.check(tag+"-complete", p.complete,
				"all %d workers drained %d op pairs%s", workers, iters, p.detail)
			res.check(tag+"-lock-instrumented", p.lockAcqs > 0,
				"monitor-lock accounting live: %d acquisitions, %s waiting", p.lockAcqs, p.lockWait)

			// Untimed validation: identical configuration, tracer+checker
			// attached from boot, full-history audit.
			if trace.Compiled {
				v, err := wl.run(valid, workers)
				if err != nil {
					return nil, fmt.Errorf("c18 %s (traced): %w", tag, err)
				}
				res.check(tag+"-traced-complete", v.complete,
					"traced validation run drained all op pairs%s", v.detail)
				v.w.traceClean(res, tag)
			}
		}
	}
	if !trace.Compiled {
		res.note("notrace build: per-point trace validation skipped (tracing compiled out)")
	}
	return res, nil
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// stormRun is one execution of the transition-storm workload: W caller
// domains, one per core, each looping a mediated call into a private
// service domain that returns immediately — 2*W*iters monitor-mediated
// transitions with zero capability mutations, all entered concurrently
// from RunCores.
type stormRun struct {
	w        *world
	wall     time.Duration
	cycles   uint64
	ops      uint64 // call+return pairs issued
	trans    uint64 // transition count observed by Stats
	vmexits  uint64
	lockWait time.Duration
	lockAcqs uint64
	complete bool
	detail   string
}

func runTransitionStorm(cfg Config, workers, iters int) (*stormRun, error) {
	opts := defaultWorldOpts()
	opts.cores = workers + 1 // dom0 idles on core 0
	w, err := newWorld(cfg, opts)
	if err != nil {
		return nil, err
	}
	// Caller loop: mediated call into the service (entered at its entry,
	// returning via CallReturn), decrement, repeat.
	prog := func(base phys.Addr) *hw.Asm {
		a := hw.NewAsm()
		a.Movi(12, 1)
		a.Label("loop")
		a.Mov(1, 7) // service domain id
		a.Movi(0, uint32(core.CallDomainCall))
		a.Vmcall()
		a.Jnz(0, "fail")
		a.Sub(10, 10, 12)
		a.Jnz(10, "loop")
		a.Hlt()
		a.Label("fail")
		a.Movi(15, 0xdead)
		a.Hlt()
		return a
	}
	type pair struct {
		caller  *libtyche.Domain
		service *libtyche.Domain
		core    phys.CoreID
	}
	var ps []*pair
	for i := 0; i < workers; i++ {
		coreID := phys.CoreID(i + 1)
		lo := libtyche.DefaultLoadOptions()
		lo.Cores = []phys.CoreID{coreID}
		lo.Seal = false
		svc, err := w.cl.Load(addImage(fmt.Sprintf("svc%d", i), 0), lo)
		if err != nil {
			return nil, err
		}
		img, err := buildAt(w.cl, fmt.Sprintf("caller%d", i), prog)
		if err != nil {
			return nil, err
		}
		caller, err := w.cl.Load(img, lo)
		if err != nil {
			return nil, err
		}
		ps = append(ps, &pair{caller: caller, service: svc, core: coreID})
	}
	r := &stormRun{w: w, ops: uint64(workers * iters)}
	statsBefore := w.mon.Stats()
	cyclesBefore := w.mach.Clock.Cycles()
	var cores []phys.CoreID
	for _, p := range ps {
		if err := p.caller.Launch(p.core); err != nil {
			return nil, err
		}
		c := w.mach.Core(p.core)
		c.Regs[7] = uint64(p.service.ID())
		c.Regs[10] = uint64(iters)
		cores = append(cores, p.core)
	}
	waitBefore, acqBefore := w.mon.LockWait()
	start := time.Now()
	runs, err := w.mon.RunCores(100_000, cores...)
	r.wall = time.Since(start)
	if err != nil {
		return nil, err
	}
	waitAfter, acqAfter := w.mon.LockWait()
	r.lockWait, r.lockAcqs = waitAfter-waitBefore, acqAfter-acqBefore
	r.cycles = w.mach.Clock.Cycles() - cyclesBefore
	statsAfter := w.mon.Stats()
	r.trans = statsAfter.Transitions - statsBefore.Transitions
	r.vmexits = statsAfter.VMExits - statsBefore.VMExits

	r.complete = true
	for _, p := range ps {
		run, ok := runs[p.core]
		c := w.mach.Core(p.core)
		if !ok || run.Trap.Kind != hw.TrapHalt || c.Regs[10] != 0 || c.Regs[15] == 0xdead {
			r.complete = false
			r.detail = fmt.Sprintf("core %v: trap=%v r10=%d r15=%#x", p.core, run.Trap, c.Regs[10], c.Regs[15])
		}
	}
	// Exact transition accounting: one launch per caller plus a
	// call+return pair per iteration — none lost, none duplicated.
	if want := uint64(workers) + 2*r.ops; r.trans != want {
		r.complete = false
		r.detail = fmt.Sprintf(" (transitions %d, want %d)", r.trans, want)
	}
	if r.vmexits < 2*r.ops {
		r.complete = false
		r.detail = fmt.Sprintf(" (vmexits %d < %d)", r.vmexits, 2*r.ops)
	}
	return r, nil
}
