package bench

import (
	"fmt"
	"time"

	"github.com/tyche-sim/tyche/internal/core"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/libtyche"
	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/sched"
)

func init() {
	register(Experiment{
		ID:    "C19",
		Title: "Multi-tenant oversubscription: N domains time-multiplexed over M cores",
		Paper: "§3 domains as the only abstraction: tenants share cores under monitor scheduling, no OS above the monitor",
		Run:   runC19,
	})
}

// runC19 measures the preemptive multi-tenant scheduler (internal/sched
// plus core's round-barrier engine) under oversubscription: N compute
// tenants scheduled over M cores, N ≫ M, swept across both axes.
//
// Throughput is measured in iterations per simulated kilocycle — the
// cycle domain, not wall clock — so the numbers are bit-stable and the
// tracer can stay attached to the measured run itself (tracing costs
// host time only, never simulated cycles; C18 keeps timed runs untraced
// because its metric is wall clock). Each sweep point also reports the
// p99 transition-to-dispatch latency from the scheduler's per-dispatch
// queue-latency samples.
//
// Four scenario checks ride on top of the sweep:
//
//	dedicated A/B — 4 tenants on 4 dedicated cores (plain RunCores, no
//	    policy) is the baseline; the acceptance gate requires 16
//	    domains over 4 cores to keep >= 0.7x its per-iteration
//	    throughput despite dispatch overhead;
//	determinism — the gate configuration is rebuilt and re-run from the
//	    same seed; the schedule must replay bit-identically (equal
//	    dispatch-record hashes and final cycle counts);
//	yield mix — cooperative tenants ending every slice with CallYield;
//	    the yield count must be exact;
//	kill purge — a never-terminating tenant queued twice is ForceKilled
//	    mid-run; its queued vCPUs must be purged and never dispatched
//	    again (cross-checked against the dispatch records here and by
//	    the trace oracle's dead-domain silence over KTransition).
func runC19(cfg Config) (*Result, error) {
	res := &Result{
		ID: "C19", Title: "Multi-tenant oversubscription throughput (scheduled domains over shared cores)",
		Columns: []string{"domains", "cores", "mode", "cycles", "wall us", "iters", "it/kcyc", "p99 disp", "disp", "preempt", "steal", "maxq"},
	}
	domSweep := []int{4, 8, 16, 32, 64}
	coreSweep := []int{1, 2, 4, 8}
	iters, quantum := 20_000, 8192
	if cfg.Quick {
		domSweep = []int{4, 16}
		coreSweep = []int{2, 4}
		iters, quantum = 4_000, 4096
	}
	res.note("quantum %d instructions, %d iterations per tenant, seed %d", quantum, iters, cfg.Seed)

	addRow := func(domains, workers int, mode string, p *c19Point) {
		tput := float64(p.iters) / float64(p.cycles) * 1000
		res.row(fmt.Sprintf("%d", domains), fmt.Sprintf("%d", workers), mode,
			fmtU(p.cycles), fmt.Sprintf("%d", p.wall.Microseconds()), fmtU(p.iters),
			fmt.Sprintf("%.2f", tput), fmtU(p.p99),
			fmtU(p.ctr.Dispatches), fmtU(p.ctr.Preemptions), fmtU(p.ctr.Steals), fmtU(p.ctr.MaxQueueDepth))
	}
	pointMetrics := func(tag string, p *c19Point) {
		res.metric(tag+"_cycles", float64(p.cycles))
		res.metric(tag+"_iters", float64(p.iters))
		res.metric(tag+"_iters_per_kcycle", float64(p.iters)/float64(p.cycles)*1000)
		res.metric(tag+"_p99_dispatch_cycles", float64(p.p99))
		res.metric(tag+"_dispatches", float64(p.ctr.Dispatches))
		res.metric(tag+"_preemptions", float64(p.ctr.Preemptions))
		res.metric(tag+"_steals", float64(p.ctr.Steals))
		res.metric(tag+"_max_queue_depth", float64(p.ctr.MaxQueueDepth))
		res.metric(tag+"_wall_ns", float64(p.wall.Nanoseconds()))
	}

	// Dedicated-core baseline: one tenant per core, no scheduler.
	base, err := runC19Dedicated(cfg, 4, iters)
	if err != nil {
		return nil, fmt.Errorf("c19 dedicated baseline: %w", err)
	}
	addRow(4, 4, "dedicated", base)
	pointMetrics("dedicated4", base)
	res.check("dedicated-complete", base.complete, "4 dedicated tenants halted cleanly%s", base.detail)
	base.w.traceClean(res, "dedicated4")
	baseTput := float64(base.iters) / float64(base.cycles)

	var gate *c19Point
	for _, d := range domSweep {
		for _, w := range coreSweep {
			tag := fmt.Sprintf("d%d_c%d", d, w)
			p, err := runC19Oversub(cfg, d, w, iters, quantum)
			if err != nil {
				return nil, fmt.Errorf("c19 %s: %w", tag, err)
			}
			addRow(d, w, "sched", p)
			pointMetrics(tag, p)
			res.check(tag+"-complete", p.complete,
				"all %d tenants over %d core(s) ran to completion%s", d, w, p.detail)
			if d > w {
				res.check(tag+"-preempted", p.ctr.Preemptions > 0,
					"oversubscribed point saw %d timer preemptions", p.ctr.Preemptions)
			}
			p.w.traceClean(res, tag)
			if d == 16 && w == 4 {
				gate = p
			}
		}
	}

	// Acceptance gate: oversubscription overhead bounded at the 16/4
	// point.
	gateTput := float64(gate.iters) / float64(gate.cycles)
	ratio := gateTput / baseTput
	res.metric("oversub_ratio_16_4", ratio)
	res.check("oversub-throughput", ratio >= 0.7,
		"16 domains / 4 cores at %.2fx the dedicated per-iteration throughput (gate 0.7x)", ratio)
	res.check("oversub-latency-sampled", gate.p99 > 0,
		"p99 transition-to-dispatch latency %d cycles over %d dispatches", gate.p99, gate.ctr.Dispatches)

	// Determinism: rebuild the gate configuration from the same seed;
	// the schedule must replay bit for bit.
	replay, err := runC19Oversub(cfg, 16, 4, iters, quantum)
	if err != nil {
		return nil, fmt.Errorf("c19 replay: %w", err)
	}
	res.check("determinism-replay", replay.hash == gate.hash && replay.cycles == gate.cycles,
		"schedule hash %#x/%#x, cycles %d/%d across two identically-seeded runs",
		gate.hash, replay.hash, gate.cycles, replay.cycles)
	res.note("16/4 schedule hash %#x over %d dispatch records", gate.hash, gate.ctr.Dispatches)

	// Cooperative tenants: every slice ends in CallYield, counted
	// exactly.
	yields := 64
	if cfg.Quick {
		yields = 16
	}
	ym, err := runC19YieldMix(cfg, 8, 2, yields, quantum)
	if err != nil {
		return nil, fmt.Errorf("c19 yield mix: %w", err)
	}
	res.check("yield-mix", ym.complete && ym.ctr.Yields == uint64(8*yields),
		"8 cooperative tenants yielded %d times (want exactly %d)%s", ym.ctr.Yields, 8*yields, ym.detail)
	ym.w.traceClean(res, "yieldmix")

	// Containment: kill a scheduled tenant mid-run.
	kill, err := runC19Kill(cfg, iters, quantum)
	if err != nil {
		return nil, fmt.Errorf("c19 kill: %w", err)
	}
	res.metric("kill_purged_vcpus", float64(kill.purged))
	res.check("kill-purged", kill.purged >= 2,
		"ForceKill purged %d queued vCPUs of the victim (want >= 2)", kill.purged)
	res.check("kill-no-dispatch", kill.victimAfter == 0,
		"%d dispatches of the killed domain after its destruction (want 0, %d records checked)",
		kill.victimAfter, kill.records)
	res.check("kill-survivors", kill.survivorsDone, "the 3 surviving tenants all completed")
	kill.w.traceClean(res, "kill")
	return res, nil
}

// c19Point is one measured scheduling run.
type c19Point struct {
	w        *world
	wall     time.Duration
	cycles   uint64
	iters    uint64 // total tenant loop iterations completed
	p99      uint64 // p99 transition-to-dispatch latency, cycles
	hash     uint64 // dispatch-schedule hash
	ctr      sched.Counters
	complete bool
	detail   string
}

// computeTenant builds the tenant workload: a pure compute loop of
// `iters` iterations ending in HLT. The count is baked into the text
// with MOVI — a scheduled dispatch launches with zeroed registers, so
// inputs cannot be poked in afterwards as C18 does.
func computeTenant(iters uint32) func(base phys.Addr) *hw.Asm {
	return func(base phys.Addr) *hw.Asm {
		a := hw.NewAsm()
		a.Movi(10, iters)
		a.Movi(12, 1)
		a.Label("loop")
		a.Sub(10, 10, 12)
		a.Jnz(10, "loop")
		a.Hlt()
		return a
	}
}

// yieldTenant is computeTenant with a cooperative CallYield ending
// every iteration's slice.
func yieldTenant(iters uint32) func(base phys.Addr) *hw.Asm {
	return func(base phys.Addr) *hw.Asm {
		a := hw.NewAsm()
		a.Movi(10, iters)
		a.Movi(12, 1)
		a.Label("loop")
		a.Movi(0, uint32(core.CallYield))
		a.Vmcall()
		a.Sub(10, 10, 12)
		a.Jnz(10, "loop")
		a.Hlt()
		return a
	}
}

// loadTenants loads n copies of gen into a fresh world, shared over the
// given worker cores, and schedules each one.
func loadTenants(w *world, n int, cores []phys.CoreID, gen func(base phys.Addr) *hw.Asm) ([]*libtyche.Domain, error) {
	var doms []*libtyche.Domain
	for i := 0; i < n; i++ {
		lo := libtyche.DefaultLoadOptions()
		lo.Cores = cores
		lo.Seal = false
		img, err := buildAt(w.cl, fmt.Sprintf("tenant%d", i), gen)
		if err != nil {
			return nil, err
		}
		d, err := w.cl.Load(img, lo)
		if err != nil {
			return nil, err
		}
		if err := w.mon.Schedule(d.ID()); err != nil {
			return nil, err
		}
		doms = append(doms, d)
	}
	return doms, nil
}

func workerCores(n int) []phys.CoreID {
	out := make([]phys.CoreID, n)
	for i := range out {
		out[i] = phys.CoreID(i + 1) // dom0 idles on core 0
	}
	return out
}

func runC19Oversub(cfg Config, domains, workers, iters, quantum int) (*c19Point, error) {
	opts := defaultWorldOpts()
	opts.cores = workers + 1
	w, err := newWorld(cfg, opts)
	if err != nil {
		return nil, err
	}
	cores := workerCores(workers)
	w.mon.SetSchedPolicy(&sched.Policy{Quantum: quantum, Steal: true, Seed: cfg.Seed})
	if _, err := loadTenants(w, domains, cores, computeTenant(uint32(iters))); err != nil {
		return nil, err
	}
	p := &c19Point{w: w, iters: uint64(domains) * uint64(iters)}
	before := w.mach.Clock.Cycles()
	start := time.Now()
	if _, err := w.mon.RunCores(8_000_000, cores...); err != nil {
		return nil, err
	}
	p.wall = time.Since(start)
	p.cycles = w.mach.Clock.Cycles() - before
	q := w.mon.Scheduler()
	p.ctr = q.Counters()
	p.p99 = q.LatencyP99()
	p.hash = q.Hash()
	st := w.mon.Stats()
	p.complete = st.SchedCompleted == uint64(domains)
	if !p.complete {
		p.detail = fmt.Sprintf(" (completed %d of %d, pending %d)", st.SchedCompleted, domains, q.Pending())
	}
	return p, nil
}

func runC19Dedicated(cfg Config, domains, iters int) (*c19Point, error) {
	opts := defaultWorldOpts()
	opts.cores = domains + 1
	w, err := newWorld(cfg, opts)
	if err != nil {
		return nil, err
	}
	var cores []phys.CoreID
	var doms []*libtyche.Domain
	for i := 0; i < domains; i++ {
		coreID := phys.CoreID(i + 1)
		lo := libtyche.DefaultLoadOptions()
		lo.Cores = []phys.CoreID{coreID}
		lo.Seal = false
		img, err := buildAt(w.cl, fmt.Sprintf("tenant%d", i), computeTenant(uint32(iters)))
		if err != nil {
			return nil, err
		}
		d, err := w.cl.Load(img, lo)
		if err != nil {
			return nil, err
		}
		if err := d.Launch(coreID); err != nil {
			return nil, err
		}
		cores = append(cores, coreID)
		doms = append(doms, d)
	}
	p := &c19Point{w: w, iters: uint64(domains) * uint64(iters)}
	before := w.mach.Clock.Cycles()
	start := time.Now()
	runs, err := w.mon.RunCores(8_000_000, cores...)
	if err != nil {
		return nil, err
	}
	p.wall = time.Since(start)
	p.cycles = w.mach.Clock.Cycles() - before
	p.complete = true
	for _, c := range cores {
		if run, ok := runs[c]; !ok || run.Trap.Kind != hw.TrapHalt {
			p.complete = false
			p.detail = fmt.Sprintf(" (core %v: %+v)", c, runs[c])
		}
	}
	return p, nil
}

func runC19YieldMix(cfg Config, domains, workers, yields, quantum int) (*c19Point, error) {
	opts := defaultWorldOpts()
	opts.cores = workers + 1
	w, err := newWorld(cfg, opts)
	if err != nil {
		return nil, err
	}
	cores := workerCores(workers)
	w.mon.SetSchedPolicy(&sched.Policy{Quantum: quantum, Steal: true, Seed: cfg.Seed})
	if _, err := loadTenants(w, domains, cores, yieldTenant(uint32(yields))); err != nil {
		return nil, err
	}
	p := &c19Point{w: w, iters: uint64(domains) * uint64(yields)}
	start := time.Now()
	if _, err := w.mon.RunCores(8_000_000, cores...); err != nil {
		return nil, err
	}
	p.wall = time.Since(start)
	p.ctr = w.mon.Scheduler().Counters()
	st := w.mon.Stats()
	p.complete = st.SchedCompleted == uint64(domains)
	if !p.complete {
		p.detail = fmt.Sprintf(" (completed %d of %d)", st.SchedCompleted, domains)
	}
	return p, nil
}

// c19Kill is the containment scenario's outcome.
type c19Kill struct {
	w             *world
	purged        uint64 // queued victim vCPUs removed by ForceKill
	victimAfter   int    // victim dispatches recorded after the kill
	records       int    // total dispatch records checked
	survivorsDone bool
}

func runC19Kill(cfg Config, iters, quantum int) (*c19Kill, error) {
	opts := defaultWorldOpts()
	opts.cores = 3
	w, err := newWorld(cfg, opts)
	if err != nil {
		return nil, err
	}
	cores := workerCores(2)
	w.mon.SetSchedPolicy(&sched.Policy{Quantum: quantum, Steal: true, Seed: cfg.Seed})
	// The victim spins effectively forever and is queued twice (two
	// vCPUs); three finite tenants ride alongside.
	victims, err := loadTenants(w, 1, cores, computeTenant(2_000_000_000))
	if err != nil {
		return nil, err
	}
	victim := victims[0]
	if err := w.mon.Schedule(victim.ID()); err != nil { // second vCPU
		return nil, err
	}
	if _, err := loadTenants(w, 3, cores, computeTenant(uint32(iters))); err != nil {
		return nil, err
	}
	// First slice: everyone gets dispatched, nobody finishes; the
	// budget expires with both victim vCPUs requeued.
	if _, err := w.mon.RunCores(2*quantum, cores...); err != nil {
		return nil, err
	}
	preKill := len(w.mon.Scheduler().Records())
	if err := w.mon.ForceKill(victim.ID()); err != nil {
		return nil, err
	}
	k := &c19Kill{w: w, purged: w.mon.Stats().SchedPurged}
	if _, err := w.mon.RunCores(8_000_000, cores...); err != nil {
		return nil, err
	}
	recs := w.mon.Scheduler().Records()
	k.records = len(recs)
	for _, r := range recs[preKill:] {
		if r.Domain == uint64(victim.ID()) {
			k.victimAfter++
		}
	}
	k.survivorsDone = w.mon.Stats().SchedCompleted == 3
	return k, nil
}
