package bench

import (
	"fmt"
	"strings"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/phys"
)

func init() {
	register(Experiment{
		ID:    "F4",
		Title: "Physical memory view: domain-to-region mappings and reference counts",
		Paper: "Figure 4",
		Run:   runF4,
	})
}

// runF4 rebuilds the Figure 2/3 deployment and dumps the monitor's
// system-wide reference-count map — Figure 4's "view of a subset of the
// physical memory ... with domain-to-regions mappings and regions
// reference counts". The checks pin the figure's pattern: confidential
// regions at refcount 1, the explicitly shared buffers at exactly 2.
func runF4(cfg Config) (*Result, error) {
	res := &Result{
		ID: "F4", Title: "Memory reference-count view",
		Columns: []string{"region", "KiB", "refs", "domains", "role"},
	}
	w, err := newWorld(cfg, defaultWorldOpts())
	if err != nil {
		return nil, err
	}
	d, err := buildSaaS(w)
	if err != nil {
		return nil, err
	}

	roles := map[phys.Region]string{}
	if r, ok := d.crypto.SegmentRegion(".text"); ok {
		roles[r] = "crypto engine text (confidential)"
	}
	roles[d.keySeg] = "crypto engine key page (confidential)"
	roles[d.chanSeg] = "app<->crypto shared buffer"
	roles[d.gpuBuf] = "app<->gpu shared buffer"
	roles[d.fbSeg] = "gpu framebuffer (confidential)"
	roles[d.mailbox.Region()] = "dom0<->crypto mailbox"

	roleOf := func(r phys.Region) string {
		for k, v := range roles {
			if k.Overlaps(r) {
				return v
			}
		}
		return ""
	}

	counts := w.mon.RefCounts()
	for _, rc := range counts {
		owners := make([]string, len(rc.Owners))
		for i, o := range rc.Owners {
			owners[i] = fmt.Sprintf("d%d", o)
		}
		res.row(rc.Region.String(), fmtU(rc.Region.Size()/1024), fmtU(uint64(rc.Count)),
			strings.Join(owners, ","), roleOf(rc.Region))
	}

	// Figure-4 pattern checks.
	expect2 := []phys.Region{d.chanSeg, d.gpuBuf, d.mailbox.Region()}
	for i, r := range expect2 {
		got := w.mon.RefCounts()
		ok := regionCountIs(got, r, 2)
		res.check(fmt.Sprintf("shared-region-%d-refs-2", i), ok, "%v must have refcount exactly 2", r)
	}
	expect1 := []phys.Region{d.keySeg, d.fbSeg}
	for i, r := range expect1 {
		ok := regionCountIs(counts, r, 1)
		res.check(fmt.Sprintf("exclusive-region-%d-refs-1", i), ok, "%v must have refcount exactly 1", r)
	}
	// No region anywhere exceeds 2 in this deployment, and every byte of
	// RAM below the monitor region is owned by someone (no limbo).
	max := 0
	var covered uint64
	for _, rc := range counts {
		if rc.Count > max {
			max = rc.Count
		}
		covered += rc.Region.Size()
	}
	res.check("max-refcount-2", max == 2, "max refcount = %d", max)
	// Every byte of RAM is accounted for: the domains below the monitor
	// region, and the monitor's own reserved region (owner d0).
	total := w.mach.Mem.Size()
	res.check("full-coverage", covered == total, "covered %d of %d bytes", covered, total)
	res.note("backend=%s; refcounts are computed live from the capability space", w.mon.Backend())
	return res, nil
}

func regionCountIs(counts []cap.RegionCount, r phys.Region, want int) bool {
	for _, rc := range counts {
		if rc.Region.Overlaps(r) && rc.Count != want {
			return false
		}
	}
	return true
}
