package bench

import (
	"fmt"

	"github.com/tyche-sim/tyche/internal/baseline"
	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/core"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/libtyche"
	"github.com/tyche-sim/tyche/internal/phys"
)

func init() {
	register(Experiment{
		ID:    "C14",
		Title: "Data-plane isolation overhead: per-call cost amortization",
		Paper: "§4.1's VMFUNC motivation (Hodor-style data-plane libraries) vs exit-based and SGX isolation",
		Run:   runC14,
	})
}

// runC14 measures what isolating a per-packet data-plane function costs
// across mechanisms, sweeping the payload size. The workload is a byte
// checksum; each call crosses the isolation boundary, processes the
// buffer, and crosses back. Shape: guest-level VMFUNC overhead is
// near-zero once buffers reach KiB scale; exit-based mediation needs
// much larger buffers to amortize; SGX world switches are the most
// expensive everywhere. This is the quantitative argument behind §4.1's
// interest in VMFUNC transitions.
func runC14(cfg Config) (*Result, error) {
	res := &Result{
		ID: "C14", Title: "Data-plane amortization",
		Columns: []string{"bytes/call", "inline", "vmfunc comp.", "overhead", "mediated enclave", "overhead", "sgx ecall", "overhead"},
	}
	sizes := []uint64{64, 1024, 16384}
	if cfg.Quick {
		sizes = []uint64{64, 1024, 8192}
	}
	reps := 6

	type point struct{ inline, vmfunc, mediated, sgx uint64 }
	var points []point
	for _, n := range sizes {
		p := point{}
		var err error
		if p.inline, err = inlineChecksum(cfg, n, reps); err != nil {
			return nil, fmt.Errorf("inline %d: %w", n, err)
		}
		if p.vmfunc, err = vmfuncChecksum(cfg, n, reps); err != nil {
			return nil, fmt.Errorf("vmfunc %d: %w", n, err)
		}
		if p.mediated, err = mediatedChecksum(cfg, n, reps); err != nil {
			return nil, fmt.Errorf("mediated %d: %w", n, err)
		}
		if p.sgx, err = sgxChecksum(cfg, n, reps); err != nil {
			return nil, fmt.Errorf("sgx %d: %w", n, err)
		}
		points = append(points, p)
		res.row(fmtU(n), fmtU(p.inline),
			fmtU(p.vmfunc), pct(p.vmfunc, p.inline),
			fmtU(p.mediated), pct(p.mediated, p.inline),
			fmtU(p.sgx), pct(p.sgx, p.inline))
	}

	last := points[len(points)-1]
	first := points[0]
	res.check("ordering-at-small-buffers",
		first.inline < first.vmfunc && first.vmfunc < first.mediated && first.mediated < first.sgx,
		"64B: inline %d < vmfunc %d < mediated %d < sgx %d",
		first.inline, first.vmfunc, first.mediated, first.sgx)
	vmOver := float64(last.vmfunc-last.inline) / float64(last.inline)
	res.check("vmfunc-amortizes", vmOver < 0.02,
		"vmfunc overhead %.2f%% at %d bytes (near-free data-plane isolation)", vmOver*100, sizes[len(sizes)-1])
	medOverSmall := float64(first.mediated-first.inline) / float64(first.inline)
	medOverBig := float64(last.mediated-last.inline) / float64(last.inline)
	res.check("mediation-needs-amortization", medOverSmall > 1.0 && medOverBig < 0.25,
		"mediated overhead %.0f%% at %dB falling to %.1f%% at %dB",
		medOverSmall*100, sizes[0], medOverBig*100, sizes[len(sizes)-1])
	res.check("sgx-worst-everywhere",
		first.sgx > first.mediated && last.sgx > last.mediated,
		"sgx stays the most expensive mechanism at every size")
	res.note("workload: byte checksum, %d reps/point; cycles are per call including the crossing", reps)
	return res, nil
}

func pct(v, base uint64) string {
	if base == 0 {
		return "-"
	}
	return fmt.Sprintf("+%.1f%%", float64(v-base)/float64(base)*100)
}

// checksumBody emits the canonical loop: sum bytes [r2, r2+r3) into r5.
func checksumBody(a *hw.Asm) {
	a.Movi(4, 0)
	a.Movi(5, 0)
	a.Label("csloop")
	a.Jlt(4, 3, "csbody")
	a.Jmp("csdone")
	a.Label("csbody")
	a.Add(6, 2, 4)
	a.Ldb(7, 6, 0)
	a.Add(5, 5, 7)
	a.Addi(4, 4, 1)
	a.Jmp("csloop")
	a.Label("csdone")
}

// timeRuns runs the program at entry on core 0 `reps` times and returns
// the average cycles per run.
func timeRuns(w *world, entry phys.Addr, reps int, budget int) (uint64, error) {
	cpu := w.mach.Core(0)
	var total uint64
	for i := 0; i < reps; i++ {
		cpu.PC = entry
		cpu.ClearHalt()
		c, err := cycles(w.mach, func() error {
			res, err := w.mon.RunCore(0, budget)
			if err != nil {
				return err
			}
			if res.Trap.Kind != hw.TrapHalt {
				return fmt.Errorf("run ended with %v", res.Trap)
			}
			return nil
		})
		if err != nil {
			return 0, err
		}
		total += c
	}
	return total / uint64(reps), nil
}

func inlineChecksum(cfg Config, n uint64, reps int) (uint64, error) {
	w, err := newWorld(cfg, defaultWorldOpts())
	if err != nil {
		return 0, err
	}
	buf := phys.Addr(2<<20 + 0x4000) // slot-offset: avoid direct-mapped conflicts with code lines
	entry := phys.Addr(8 * phys.PageSize)
	a := hw.NewAsm()
	a.Movi(2, uint32(buf))
	a.Movi(3, uint32(n))
	checksumBody(a)
	a.Hlt()
	if err := w.mon.CopyInto(core.InitialDomain, entry, a.MustAssemble(entry)); err != nil {
		return 0, err
	}
	return timeRuns(w, entry, reps, int(n)*8+64)
}

func vmfuncChecksum(cfg Config, n uint64, reps int) (uint64, error) {
	w, err := newWorld(cfg, defaultWorldOpts())
	if err != nil {
		return 0, err
	}
	m := w.mon
	comp, err := m.CreateDomain(core.InitialDomain, "dataplane")
	if err != nil {
		return 0, err
	}
	node := dom0MemNodeB(w)
	coreNode := dom0CoreNodeB(w, 0)
	buf := phys.MakeRegion(2<<20+0x4000, ((n+phys.PageSize-1)/phys.PageSize)*phys.PageSize)
	// The compartment sees the packet buffer and the trampoline; its
	// private state (which the isolation protects) is irrelevant to the
	// timing.
	if _, err := m.Share(core.InitialDomain, node, comp, cap.MemResource(buf), cap.RightRead, cap.CleanNone); err != nil {
		return 0, err
	}
	if _, err := m.Share(core.InitialDomain, coreNode, comp, cap.CoreResource(0), cap.RightRun, cap.CleanNone); err != nil {
		return 0, err
	}
	tramp := phys.Addr(90 * phys.PageSize)
	a := hw.NewAsm()
	a.Movi(14, uint32(comp))
	a.Vmfunc()
	a.Movi(2, uint32(buf.Start))
	a.Movi(3, uint32(n))
	checksumBody(a)
	a.Movi(14, uint32(core.InitialDomain))
	a.Vmfunc()
	a.Hlt()
	code := a.MustAssemble(tramp)
	if err := m.CopyInto(core.InitialDomain, tramp, code); err != nil {
		return 0, err
	}
	trampPages := phys.MakeRegion(tramp, ((uint64(len(code))+phys.PageSize-1)/phys.PageSize)*phys.PageSize)
	if _, err := m.Share(core.InitialDomain, node, comp, cap.MemResource(trampPages), cap.MemRX, cap.CleanNone); err != nil {
		return 0, err
	}
	if err := m.SetEntry(core.InitialDomain, comp, tramp); err != nil {
		return 0, err
	}
	if err := m.RegisterFastPath(core.InitialDomain, core.InitialDomain, comp, 0); err != nil {
		return 0, err
	}
	return timeRuns(w, tramp, reps, int(n)*8+64)
}

func mediatedChecksum(cfg Config, n uint64, reps int) (uint64, error) {
	w, err := newWorld(cfg, defaultWorldOpts())
	if err != nil {
		return 0, err
	}
	buf := phys.MakeRegion(2<<20+0x4000, ((n+phys.PageSize-1)/phys.PageSize)*phys.PageSize)
	img, err := buildAt(w.cl, "cs-enclave", func(base phys.Addr) *hw.Asm {
		a := hw.NewAsm()
		// args r2 (buf) r3 (len) arrive from the caller.
		checksumBody(a)
		a.Mov(1, 5)
		a.Movi(0, uint32(core.CallReturn))
		a.Vmcall()
		a.Hlt()
		return a
	})
	if err != nil {
		return 0, err
	}
	opts := libtyche.DefaultLoadOptions()
	opts.Cores = []phys.CoreID{0}
	opts.Seal = false
	dom, err := w.cl.Load(img, opts)
	if err != nil {
		return 0, err
	}
	node := dom0MemNodeB(w)
	if _, err := w.mon.Share(core.InitialDomain, node, dom.ID(), cap.MemResource(buf), cap.RightRead, cap.CleanNone); err != nil {
		return 0, err
	}
	// Host program: call the enclave with r2/r3, halt.
	entry := phys.Addr(8 * phys.PageSize)
	host := hw.NewAsm()
	host.Movi(0, uint32(core.CallDomainCall))
	host.Movi(1, uint32(dom.ID()))
	host.Movi(2, uint32(buf.Start))
	host.Movi(3, uint32(n))
	host.Vmcall()
	host.Hlt()
	if err := w.mon.CopyInto(core.InitialDomain, entry, host.MustAssemble(entry)); err != nil {
		return 0, err
	}
	return timeRuns(w, entry, reps, int(n)*8+128)
}

func sgxChecksum(cfg Config, n uint64, reps int) (uint64, error) {
	mach, err := hw.NewMachine(hw.Config{MemBytes: 16 << 20, NumCores: 1, IOMMUAllowByDefault: true})
	if err != nil {
		return 0, err
	}
	sgx := baseline.NewSGX(mach, 0)
	procMem := phys.MakeRegion(1<<20, 256*phys.PageSize)
	proc, err := sgx.NewProcess(procMem)
	if err != nil {
		return 0, err
	}
	el := phys.MakeRegion(procMem.Start, 4*phys.PageSize)
	buf := procMem.Start + 67*phys.PageSize // slot-offset, as for the other variants
	a := hw.NewAsm()
	a.Movi(2, uint32(buf))
	a.Movi(3, uint32(n))
	checksumBody(a)
	a.Hlt()
	if err := mach.Mem.WriteAt(el.Start, a.MustAssemble(el.Start)); err != nil {
		return 0, err
	}
	encl, err := proc.CreateEnclave(el, el.Start, false)
	if err != nil {
		return 0, err
	}
	cpu := mach.Cores[0]
	var total uint64
	for i := 0; i < reps; i++ {
		before := mach.Clock.Cycles()
		encl.EEnter(cpu)
		if _, trap := cpu.Run(int(n)*8 + 64); trap.Kind != hw.TrapHalt {
			return 0, fmt.Errorf("sgx run: %v", trap)
		}
		encl.EExit(cpu)
		total += mach.Clock.Cycles() - before
	}
	return total / uint64(reps), nil
}

// dom0MemNodeB finds dom0's root memory capability.
func dom0MemNodeB(w *world) cap.NodeID {
	for _, n := range w.mon.OwnerNodes(core.InitialDomain) {
		if n.Resource.Kind == cap.ResMemory {
			return n.ID
		}
	}
	return 0
}

// dom0CoreNodeB finds dom0's capability for a core.
func dom0CoreNodeB(w *world, c phys.CoreID) cap.NodeID {
	for _, n := range w.mon.OwnerNodes(core.InitialDomain) {
		if n.Resource.Kind == cap.ResCore && n.Resource.Core == c {
			return n.ID
		}
	}
	return 0
}
