package bench

import (
	"time"

	"github.com/tyche-sim/tyche/internal/attest"
	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/core"
	"github.com/tyche-sim/tyche/internal/libtyche"
	"github.com/tyche-sim/tyche/internal/phys"
)

func init() {
	register(Experiment{
		ID:    "C7",
		Title: "Two-tier attestation: cost vs resource-enumeration size",
		Paper: "§3.4 two-tier protocol; reports enumerate resources and reference counts",
		Run:   runC7,
	})
}

// runC7 sweeps the number of resources a domain holds and measures
// report generation and verification time. Shape: both grow roughly
// linearly in the enumeration size, verification always succeeds for
// honest reports, and the boot (tier-one) cost is paid once per
// session, not per report.
func runC7(cfg Config) (*Result, error) {
	res := &Result{
		ID: "C7", Title: "Attestation scaling",
		Columns: []string{"resources", "report bytes~", "attest us", "verify us"},
	}
	sizes := []int{1, 8, 32, 128}
	if cfg.Quick {
		sizes = []int{1, 8, 32}
	}
	w, err := newWorld(cfg, defaultWorldOpts())
	if err != nil {
		return nil, err
	}
	verifier := attest.NewVerifier(w.rot.EndorsementKey(), core.DefaultIdentity)
	bootNonce := []byte("c7-boot")
	bootStart := time.Now()
	quote, err := w.mon.BootQuote(bootNonce)
	if err != nil {
		return nil, err
	}
	sess, err := verifier.NewSession(quote, bootNonce)
	if err != nil {
		return nil, err
	}
	bootUS := time.Since(bootStart).Microseconds()

	var heapNode cap.NodeID
	for _, n := range w.mon.OwnerNodes(core.InitialDomain) {
		if n.Resource.Kind == cap.ResMemory {
			heapNode = n.ID
		}
	}
	var attestUS, verifyUS []int64
	base := phys.Addr(4 << 20)
	for _, n := range sizes {
		opts := libtyche.DefaultLoadOptions()
		opts.Cores = []phys.CoreID{1}
		opts.Seal = false
		dom, err := w.cl.Load(addImage("c7", 1), opts)
		if err != nil {
			return nil, err
		}
		// Grow the enumeration with alternating-rights single-page
		// shares (they cannot merge).
		for i := 0; i < n; i++ {
			rights := cap.MemRW
			if i%2 == 1 {
				rights = cap.RightRead
			}
			r := phys.MakeRegion(base+phys.Addr(uint64(i)*2*phys.PageSize), phys.PageSize)
			if _, err := w.mon.Share(core.InitialDomain, heapNode, dom.ID(), cap.MemResource(r), rights, cap.CleanNone); err != nil {
				return nil, err
			}
		}
		nonce := []byte("c7")
		iters := 20
		if cfg.Quick {
			iters = 5
		}
		var rep *core.Report
		start := time.Now()
		for i := 0; i < iters; i++ {
			rep, err = dom.Attest(nonce)
			if err != nil {
				return nil, err
			}
		}
		aUS := time.Since(start).Microseconds() / int64(iters)
		start = time.Now()
		for i := 0; i < iters; i++ {
			if err := sess.VerifyDomain(rep, nonce); err != nil {
				return nil, err
			}
		}
		vUS := time.Since(start).Microseconds() / int64(iters)
		attestUS = append(attestUS, aUS)
		verifyUS = append(verifyUS, vUS)
		approxBytes := 100 + 60*len(rep.Resources)
		res.row(fmtU(uint64(len(rep.Resources))), fmtU(uint64(approxBytes)), fmtU(uint64(aUS)), fmtU(uint64(vUS)))
		// Teardown: give the next round a clean slate.
		if err := w.mon.KillDomain(core.InitialDomain, dom.ID()); err != nil {
			return nil, err
		}
		base += phys.Addr(uint64(2*n+2) * phys.PageSize)
	}

	growth := float64(attestUS[len(attestUS)-1]+1) / float64(attestUS[0]+1)
	perResource := float64(attestUS[len(attestUS)-1]+1) / float64(sizes[len(sizes)-1])
	res.check("attest-at-most-linear", growth <= float64(sizes[len(sizes)-1])/float64(sizes[0]),
		"attest time grew %.1fx over a %dx resource range (%.1fus/resource at the top)",
		growth, sizes[len(sizes)-1]/sizes[0], perResource)
	res.check("verify-succeeds-at-scale", true, "every report verified under the session key")
	res.note("tier-one boot verification: %dus, paid once per session", bootUS)
	return res, nil
}
