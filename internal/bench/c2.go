package bench

import (
	"github.com/tyche-sim/tyche/internal/baseline"
	"github.com/tyche-sim/tyche/internal/core"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/libtyche"
	"github.com/tyche-sim/tyche/internal/oskit"
	"github.com/tyche-sim/tyche/internal/phys"
)

func init() {
	register(Experiment{
		ID:    "C2",
		Title: "Domain transition mechanisms: VMFUNC vs exits vs context switches vs SGX",
		Paper: "§4.1 'fast (100 cycles) domain transitions using VMFUNC'",
		Run:   runC2,
	})
}

// runC2 measures the cycle cost of every control-transfer mechanism in
// the system. The shape that must hold: the VMFUNC fast switch is ~100
// cycles and at least an order of magnitude below exit-based
// transitions, which in turn beat OS process context switches and SGX
// world switches.
func runC2(cfg Config) (*Result, error) {
	res := &Result{
		ID: "C2", Title: "Transition mechanisms",
		Columns: []string{"mechanism", "system", "cycles/transition", "vs VMFUNC"},
	}
	iters := 200
	if cfg.Quick {
		iters = 50
	}

	// --- Tyche vtx: fast switch and mediated call/return.
	w, err := newWorld(cfg, defaultWorldOpts())
	if err != nil {
		return nil, err
	}
	opts := libtyche.DefaultLoadOptions()
	opts.Cores = []phys.CoreID{0}
	opts.FastPathCore = 0
	comp, err := w.cl.Load(addImage("c2-comp", 1), opts)
	if err != nil {
		return nil, err
	}
	// Fast switches: bounce dom0 <-> comp.
	fast, err := cycles(w.mach, func() error {
		for i := 0; i < iters; i++ {
			if err := w.mon.FastSwitch(0, comp.ID()); err != nil {
				return err
			}
			if err := w.mon.FastSwitch(0, core.InitialDomain); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	fastPer := fast / uint64(2*iters)

	// Mediated call + return round trip (two exit+entry pairs plus the
	// domain's work; we use an empty service so the monitor path
	// dominates).
	cpu := w.mach.Core(0)
	callRT, err := cycles(w.mach, func() error {
		for i := 0; i < iters; i++ {
			if _, err := comp.Invoke(0, 10000, 1); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	_ = cpu
	callPer := callRT / uint64(iters)

	// --- Tyche pmp: mediated transition with PMP reprogramming.
	pmpCfg := cfg
	pmpCfg.Backend = core.BackendPMP
	wp, err := newWorld(pmpCfg, defaultWorldOpts())
	if err != nil {
		return nil, err
	}
	pmpOpts := libtyche.DefaultLoadOptions()
	pmpOpts.Cores = []phys.CoreID{0}
	pmpComp, err := wp.cl.Load(addImage("c2-pmp", 1), pmpOpts)
	if err != nil {
		return nil, err
	}
	pmpRT, err := cycles(wp.mach, func() error {
		for i := 0; i < iters; i++ {
			if _, err := pmpComp.Invoke(0, 10000, 1); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	pmpPer := pmpRT / uint64(iters)

	// --- OS process context switch (per switch, via yielding pair).
	wos, err := newWorld(cfg, defaultWorldOpts())
	if err != nil {
		return nil, err
	}
	osk, err := oskit.New(wos.mon, core.InitialDomain, dom0ReservePages)
	if err != nil {
		return nil, err
	}
	yielders := iters
	spin := func(base phys.Addr) []byte {
		a := hw.NewAsm()
		a.Label("top")
		a.Movi(0, uint32(oskit.SysYield)).Syscall()
		a.Jmp("top")
		return a.MustAssemble(base)
	}
	if _, err := osk.Spawn("y1", spin, 1, 0); err != nil {
		return nil, err
	}
	if _, err := osk.Spawn("y2", spin, 1, 0); err != nil {
		return nil, err
	}
	ctxCycles, err := cycles(wos.mach, func() error {
		for i := 0; i < yielders; i++ {
			if _, _, err := osk.Schedule(0, 1000); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	ctxPer := ctxCycles / uint64(yielders)

	// --- Syscall round trip inside one domain.
	sysIters := iters
	if err := wos.mon.SetSyscallHandler(core.InitialDomain, core.InitialDomain, func(c *hw.Core) error { return nil }); err != nil {
		return nil, err
	}
	sysProg := hw.NewAsm()
	for i := 0; i < 8; i++ {
		sysProg.Movi(0, 99).Syscall()
	}
	sysProg.Hlt()
	sysBase := phys.Addr(8 * phys.PageSize)
	if err := wos.mon.CopyInto(core.InitialDomain, sysBase, sysProg.MustAssemble(sysBase)); err != nil {
		return nil, err
	}
	kernelCtx, err := wos.mon.DomainContext(core.InitialDomain, core.InitialDomain, 0)
	if err != nil {
		return nil, err
	}
	kernelCtx.OSFilter = nil
	sysTotal := uint64(0)
	for i := 0; i < sysIters/8; i++ {
		wos.mach.Core(0).PC = sysBase
		wos.mach.Core(0).ClearHalt()
		c, err := cycles(wos.mach, func() error {
			_, err := wos.mon.RunCore(0, 1000)
			return err
		})
		if err != nil {
			return nil, err
		}
		sysTotal += c
	}
	sysPer := sysTotal / uint64(sysIters/8*8)

	// --- SGX EENTER/EEXIT round trip.
	sgxMach, err := hw.NewMachine(hw.Config{MemBytes: 8 << 20, NumCores: 1, IOMMUAllowByDefault: true})
	if err != nil {
		return nil, err
	}
	sgx := baseline.NewSGX(sgxMach, 0)
	proc, err := sgx.NewProcess(phys.MakeRegion(0x100000, 64*phys.PageSize))
	if err != nil {
		return nil, err
	}
	encl, err := proc.CreateEnclave(phys.MakeRegion(0x100000, 4*phys.PageSize), 0x100000, false)
	if err != nil {
		return nil, err
	}
	sgxCycles, err := cycles(sgxMach, func() error {
		for i := 0; i < iters; i++ {
			encl.EEnter(sgxMach.Cores[0])
			encl.EExit(sgxMach.Cores[0])
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sgxPer := sgxCycles / uint64(iters)

	rows := []struct {
		name, sys string
		per       uint64
	}{
		{"VMFUNC fast switch", "tyche/vtx", fastPer},
		{"syscall round trip (ring3->0->3)", "oskit in-domain", sysPer},
		{"mediated call+return (VM exits)", "tyche/vtx", callPer},
		{"mediated call+return (PMP reprogram)", "tyche/pmp", pmpPer},
		{"process context switch", "oskit scheduler", ctxPer},
		{"EENTER+EEXIT round trip", "sgx baseline", sgxPer},
	}
	for _, r := range rows {
		res.row(r.name, r.sys, fmtU(r.per), fmtRatio(r.per, fastPer))
	}

	res.check("vmfunc-about-100-cycles", fastPer >= 80 && fastPer <= 200,
		"fast switch = %d cycles (paper: ~100)", fastPer)
	res.check("vmfunc-10x-under-exits", fastPer*10 <= callPer,
		"fast %d vs mediated %d", fastPer, callPer)
	res.check("fast-beats-process-switch", fastPer*5 <= ctxPer,
		"fast %d vs process switch %d: compartment crossings no longer cost a process switch", fastPer, ctxPer)
	res.check("mediated-same-order-as-ctxswitch", callPer < 10*ctxPer,
		"mediated %d vs process switch %d (within one order of magnitude)", callPer, ctxPer)
	res.check("sgx-most-expensive", sgxPer > callPer && sgxPer > ctxPer && sgxPer > pmpPer,
		"sgx %d vs mediated %d vs pmp %d vs ctx %d", sgxPer, callPer, pmpPer, ctxPer)
	res.note("mediated call+return includes two exit/entry pairs plus service code; iters=%d", iters)
	return res, nil
}
