package bench

import (
	"fmt"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/core"
	"github.com/tyche-sim/tyche/internal/libtyche"
	"github.com/tyche-sim/tyche/internal/phys"
)

func init() {
	register(Experiment{
		ID:    "C9",
		Title: "Recursive nesting: domains all the way down",
		Paper: "§3.5 'supports arbitrary nesting'; §4.2 nested enclaves",
		Run:   runC9,
	})
}

// runC9 builds a chain of nested enclaves, each spawned by its parent
// from the parent's own exclusively-granted heap, and measures creation
// and call cost per level. Shape: every level succeeds (SGX stops at
// depth 1, the VM-only monitor at depth 1), per-level creation cost
// stays flat (no blow-up with depth), each level is isolated from every
// ancestor, and tearing down level 1 cascades to the deepest level.
func runC9(cfg Config) (*Result, error) {
	res := &Result{
		ID: "C9", Title: "Nesting depth sweep",
		Columns: []string{"depth", "create cycles", "invoke cycles", "isolated from ancestors"},
	}
	depth := 6
	if cfg.Quick {
		depth = 4
	}
	w, err := newWorld(cfg, defaultWorldOpts())
	if err != nil {
		return nil, err
	}
	// dom0 hosts the invocations on core 1.
	if err := w.mon.Launch(core.InitialDomain, 1); err != nil {
		return nil, err
	}
	if _, err := w.mon.RunCore(1, 10); err != nil {
		return nil, err
	}

	type level struct {
		dom    *libtyche.Domain
		client *libtyche.Client
	}
	chain := []level{{dom: nil, client: w.cl}}
	var createCosts, invokeCosts []uint64
	// Heap sizes shrink by a constant amount per level: each child's
	// heap must fit inside the parent's.
	heapPages := uint64(16 * depth)
	for lvl := 1; lvl <= depth; lvl++ {
		parent := chain[lvl-1].client
		img := addImage(fmt.Sprintf("nest-%d", lvl), uint32(lvl)).WithHeap(".heap", heapPages*phys.PageSize)
		opts := libtyche.DefaultLoadOptions()
		opts.Cores = []phys.CoreID{1}
		opts.Seal = false
		var dom *libtyche.Domain
		c, err := cycles(w.mach, func() error {
			var err error
			dom, err = parent.Load(img, opts)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("nesting level %d: %w", lvl, err)
		}
		if _, err := dom.Seal(); err != nil {
			return nil, err
		}
		client := dom.Client()
		heapNode, _ := dom.SegmentNode(".heap")
		heapRegion, _ := dom.SegmentRegion(".heap")
		if err := client.SetHeap(heapNode, heapRegion); err != nil {
			return nil, err
		}
		// Invoke through the monitor from dom0's context.
		ic, err := cycles(w.mach, func() error {
			got, err := dom.Invoke(1, 10000, 40)
			if err != nil {
				return err
			}
			if got != uint64(40+lvl) {
				return fmt.Errorf("level %d returned %d", lvl, got)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		// Isolation: no ancestor (including dom0) can read this level's
		// text.
		text, _ := dom.SegmentRegion(".text")
		isolated := true
		for a := 0; a < lvl; a++ {
			ancestor := core.InitialDomain
			if a > 0 {
				ancestor = chain[a].dom.ID()
			}
			if w.mon.CheckAccess(ancestor, text.Start, cap.RightRead) {
				isolated = false
			}
		}
		chain = append(chain, level{dom: dom, client: client})
		createCosts = append(createCosts, c)
		invokeCosts = append(invokeCosts, ic)
		heapPages -= 16
		res.row(fmtU(uint64(lvl)), fmtU(c), fmtU(ic), boolYes(isolated))
		if !isolated {
			res.check("isolation-at-depth", false, "level %d readable by an ancestor", lvl)
		}
	}
	res.check("all-levels-created", len(chain) == depth+1,
		"nested enclaves to depth %d (sgx: depth 1; vm-only monitor: depth 1)", depth)
	// Per-level creation cost flat-ish: last within 4x of first.
	flat := createCosts[len(createCosts)-1] < 4*createCosts[0]
	res.check("creation-cost-flat", flat,
		"create cost %d -> %d cycles across depth (no super-linear growth)",
		createCosts[0], createCosts[len(createCosts)-1])
	// Invoke cost independent of depth (the monitor mediates directly,
	// no per-level hop).
	inv := invokeCosts[len(invokeCosts)-1] < 2*invokeCosts[0]+w.mach.Cost.VMExit
	res.check("invoke-depth-independent", inv,
		"invoke cost %d -> %d cycles (transition cost does not stack with depth)",
		invokeCosts[0], invokeCosts[len(invokeCosts)-1])

	// Teardown cascade: killing level 1 must destroy the whole chain.
	deepText, _ := chain[depth].dom.SegmentRegion(".text")
	if err := chain[1].dom.Kill(); err != nil {
		return nil, err
	}
	gone := true
	for lvl := 1; lvl <= depth; lvl++ {
		if w.mon.CheckAccess(chain[lvl].dom.ID(), deepText.Start, cap.RightsNone) {
			gone = false
		}
	}
	res.check("teardown-cascades", gone,
		"killing level 1 revoked every nested level's access (cascading revocation)")
	return res, nil
}
