package bench

import (
	"errors"
	"fmt"

	"github.com/tyche-sim/tyche/internal/backend"
	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/core"
	"github.com/tyche-sim/tyche/internal/libtyche"
	"github.com/tyche-sim/tyche/internal/phys"
)

func init() {
	register(Experiment{
		ID:    "C5",
		Title: "PMP segment pressure: fixed entries force careful layout",
		Paper: "§4 'PMP only supports a fixed number of segments, which requires a careful memory layout of trust domains and validation by the monitor'",
		Run:   runC5,
	})
}

// runC5 sweeps the number of disjoint memory segments a domain holds
// (extra shared buffers fragment its layout) on both backends. Shape:
// the EPT backend accepts any count; the PMP backend accepts up to its
// entry budget and then rejects with a layout-validation error; PMP
// transition cost grows with the segment count while EPT transitions
// stay flat.
func runC5(cfg Config) (*Result, error) {
	res := &Result{
		ID: "C5", Title: "PMP segment pressure",
		Columns: []string{"segments", "pmp(16 entries)", "pmp cycles/transition", "vtx", "vtx cycles/transition"},
	}
	maxSegs := 24
	if cfg.Quick {
		maxSegs = 20
	}
	var pmpFailAt int
	var pmpGrew, vtxFlat bool
	var firstPMP, lastPMP, firstVTX, lastVTX uint64

	for segs := 2; segs <= maxSegs; segs += 2 {
		pmpCost, pmpErr := segmentedDomainCost(cfg, core.BackendPMP, segs)
		vtxCost, vtxErr := segmentedDomainCost(cfg, core.BackendVTX, segs)
		if vtxErr != nil {
			return nil, fmt.Errorf("vtx with %d segments: %w", segs, vtxErr)
		}
		pmpCell := "ok"
		pmpCycles := fmtU(pmpCost)
		if pmpErr != nil {
			var exhausted *backend.PMPExhaustedError
			if !errors.As(pmpErr, &exhausted) {
				return nil, fmt.Errorf("pmp with %d segments: %w", segs, pmpErr)
			}
			pmpCell = fmt.Sprintf("REJECTED (needs %d > %d)", exhausted.Needed, exhausted.Available)
			pmpCycles = "-"
			if pmpFailAt == 0 {
				pmpFailAt = segs
			}
		} else {
			if firstPMP == 0 {
				firstPMP = pmpCost
			}
			lastPMP = pmpCost
		}
		if firstVTX == 0 {
			firstVTX = vtxCost
		}
		lastVTX = vtxCost
		res.row(fmtU(uint64(segs)), pmpCell, pmpCycles, "ok", fmtU(vtxCost))
	}
	pmpGrew = lastPMP > firstPMP
	vtxFlat = lastVTX <= firstVTX+firstVTX/10

	res.check("pmp-budget-enforced", pmpFailAt > 0 && pmpFailAt <= 18,
		"monitor rejected layouts needing more than the budget (first failure at %d segments)", pmpFailAt)
	res.check("vtx-unbounded", true, "EPT backend accepted every layout up to %d segments", maxSegs)
	res.check("pmp-transition-grows", pmpGrew,
		"PMP transition cost grew %d -> %d cycles with layout size", firstPMP, lastPMP)
	res.check("vtx-transition-flat", vtxFlat,
		"EPT transition cost flat: %d -> %d cycles", firstVTX, lastVTX)
	res.note("the domain's own footprint contributes segments beyond the added buffers; dom0's budget also shrinks as grants fragment it")
	return res, nil
}

// segmentedDomainCost builds a domain whose flattened layout has
// roughly `segs` disjoint segments (alternating rights stop merging)
// and returns the cycle cost of one mediated call+return into it.
func segmentedDomainCost(cfg Config, kind core.BackendKind, segs int) (uint64, error) {
	wcfg := cfg
	wcfg.Backend = kind
	o := defaultWorldOpts()
	o.pmpEntries = 16
	w, err := newWorld(wcfg, o)
	if err != nil {
		return 0, err
	}
	opts := libtyche.DefaultLoadOptions()
	opts.Cores = []phys.CoreID{0}
	opts.Seal = false
	dom, err := w.cl.Load(addImage("c5", 1), opts)
	if err != nil {
		return 0, err
	}
	// Each extra buffer: one page, alternating ro/rw so FlattenGrants
	// cannot merge them, with a one-page hole between buffers.
	var heapNode cap.NodeID
	for _, n := range w.mon.OwnerNodes(core.InitialDomain) {
		if n.Resource.Kind == cap.ResMemory {
			heapNode = n.ID
		}
	}
	// The loaded image already occupies a couple of segments; add
	// buffers until the flattened layout reaches `segs`.
	base := w.mon.MonitorRegion().Start - phys.Addr(4<<20)
	for i := 0; ; i++ {
		grants := w.cl.Monitor().OwnerNodes(dom.ID())
		flat := 0
		var memGrants []cap.MemoryGrant
		for _, g := range grants {
			if g.Resource.Kind == cap.ResMemory {
				memGrants = append(memGrants, cap.MemoryGrant{Region: g.Resource.Mem, Rights: g.Rights, Node: g.ID})
			}
		}
		flat = len(backend.FlattenGrants(memGrants))
		if flat >= segs {
			break
		}
		rights := cap.MemRW
		if i%2 == 1 {
			rights = cap.RightRead
		}
		r := phys.MakeRegion(base+phys.Addr(uint64(i)*2*phys.PageSize), phys.PageSize)
		if _, err := w.mon.Share(core.InitialDomain, heapNode, dom.ID(), cap.MemResource(r), rights, cap.CleanNone); err != nil {
			return 0, err
		}
	}
	return cycles(w.mach, func() error {
		_, err := dom.Invoke(0, 10000, 1)
		return err
	})
}
