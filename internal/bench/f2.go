package bench

import (
	"bytes"
	"crypto/ecdh"
	"crypto/rand"
	"encoding/binary"
	"fmt"

	"github.com/tyche-sim/tyche/internal/attest"
	"github.com/tyche-sim/tyche/internal/core"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/tpm"
)

func init() {
	register(Experiment{
		ID:    "F2",
		Title: "Confidential SaaS processing through an untrusted provider",
		Paper: "Figure 2",
		Run:   runF2,
	})
}

// runF2 executes Figure 2 end to end: the customer attests the crypto
// engine, SaaS app, and GPU domain; provisions a key over X25519 bound
// to the attestation; the app's data is encrypted by the crypto
// engine's interpreted code and leaves through the GPU — while the
// compromised provider (dom0) observes nothing but public values and
// is denied on every probe.
func runF2(cfg Config) (*Result, error) {
	res := &Result{
		ID: "F2", Title: "Confidential SaaS processing",
		Columns: []string{"event", "actor", "outcome"},
	}
	w, err := newWorld(cfg, defaultWorldOpts())
	if err != nil {
		return nil, err
	}
	d, err := buildSaaS(w)
	if err != nil {
		return nil, err
	}
	res.row("deploy SaaS VM + crypto engine + app + GPU domain", "provider/VM", "ok")

	// --- Crypto engine generates its key-exchange key and binds it to
	// its attestation (REPORTDATA), publishing the public key in the
	// provider-relayed mailbox.
	x := ecdh.X25519()
	enginePriv, err := x.GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	enginePub := enginePriv.PublicKey().Bytes()
	if err := w.mon.SetReportData(d.crypto.ID(), d.crypto.ID(), tpm.Measure(enginePub)); err != nil {
		return nil, err
	}
	if err := d.mailbox.WriteAs(d.crypto.ID(), 0, enginePub); err != nil {
		return nil, err
	}
	res.row("engine publishes X25519 key, binds hash into report", "crypto engine", "ok")

	// --- The customer verifies the whole chain before trusting
	// anything.
	verifier := attest.NewVerifier(w.rot.EndorsementKey(), core.DefaultIdentity)
	bootNonce := []byte("f2-boot")
	quote, err := w.mon.BootQuote(bootNonce)
	if err != nil {
		return nil, err
	}
	sess, err := verifier.NewSession(quote, bootNonce)
	if err != nil {
		return nil, err
	}
	nonce := []byte("f2-domains")
	repCrypto, err := d.crypto.Attest(nonce)
	if err != nil {
		return nil, err
	}
	repApp, err := d.app.Attest(nonce)
	if err != nil {
		return nil, err
	}
	repGPU, err := d.gpuDom.Attest(nonce)
	if err != nil {
		return nil, err
	}
	repDom0, err := w.mon.Attest(core.InitialDomain, nonce)
	if err != nil {
		return nil, err
	}
	for _, r := range []*core.Report{repCrypto, repApp, repGPU} {
		if err := sess.VerifyDomain(r, nonce); err != nil {
			return nil, fmt.Errorf("verifying domain %d: %w", r.Domain, err)
		}
	}
	wantCrypto, err := d.cryptoImg.Measurement(d.crypto.Base())
	if err != nil {
		return nil, err
	}
	wantApp, err := d.appImg.Measurement(d.app.Base())
	if err != nil {
		return nil, err
	}
	policyOK := attest.RequireSealed(repCrypto) == nil &&
		attest.RequireMeasurement(repCrypto, wantCrypto) == nil &&
		attest.RequireSharedOnlyWith(repCrypto, repApp, repDom0) == nil &&
		attest.RequireSealed(repApp) == nil &&
		attest.RequireMeasurement(repApp, wantApp) == nil &&
		attest.RequireSharedOnlyWith(repApp, repCrypto, repGPU) == nil &&
		attest.RequireSealed(repGPU) == nil &&
		attest.RequireSharedOnlyWith(repGPU, repApp) == nil
	res.row("verify sealed + measurements + controlled sharing", "customer", boolCell(policyOK))
	res.check("attestation-policies", policyOK, "crypto/app/gpu reports verified against offline hashes and sharing policy")

	// The mailbox key is the attested one (no provider MITM: REPORTDATA
	// binds it).
	mailboxPub, err := d.mailbox.Read(0, uint64(len(enginePub)))
	if err != nil {
		return nil, err
	}
	bound := tpm.Measure(mailboxPub) == repCrypto.ReportData
	res.row("check mailbox key against signed REPORTDATA", "customer", boolCell(bound))
	res.check("key-binding", bound, "X25519 public key hash matches attested report data")

	// --- Key provisioning: X25519 both ways; the shared secret becomes
	// the stream key, which the engine installs into its private page.
	customerPriv, err := x.GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	if err := d.mailbox.WriteAs(core.InitialDomain, 64, customerPriv.PublicKey().Bytes()); err != nil {
		return nil, err
	}
	customerKey, err := customerPriv.ECDH(enginePriv.PublicKey())
	if err != nil {
		return nil, err
	}
	// Engine side: read the customer key from the mailbox, derive the
	// same secret, install it privately.
	peerBytes, err := d.mailbox.ReadAs(d.crypto.ID(), 64, 32)
	if err != nil {
		return nil, err
	}
	peerPub, err := x.NewPublicKey(peerBytes)
	if err != nil {
		return nil, err
	}
	engineKey, err := enginePriv.ECDH(peerPub)
	if err != nil {
		return nil, err
	}
	if err := w.mon.CopyInto(d.crypto.ID(), d.keySeg.Start, engineKey); err != nil {
		return nil, err
	}
	res.row("provision key via X25519 through the mailbox", "customer+engine", "ok")
	res.check("ecdh-agreement", bytes.Equal(customerKey, engineKey), "both sides derived the same secret")

	// --- Data path: the app stages plaintext, calls the crypto engine
	// (interpreted XOR service), moves ciphertext to the GPU buffer,
	// and the GPU DMAs it into its framebuffer.
	plaintext := []byte("attested confidential pipeline: the provider sees only ciphertext")
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(plaintext)))
	if err := w.mon.CopyInto(d.app.ID(), d.chanSeg.Start, append(hdr[:], plaintext...)); err != nil {
		return nil, err
	}
	if err := d.app.Launch(saasCore); err != nil {
		return nil, err
	}
	runRes, err := w.mon.RunCore(saasCore, 100000)
	if err != nil {
		return nil, err
	}
	if runRes.Trap.Kind != hw.TrapHalt {
		return nil, fmt.Errorf("app run ended with %v", runRes.Trap)
	}
	encrypted := w.mach.Core(saasCore).Regs[1]
	res.row(fmt.Sprintf("app calls crypto engine, %d bytes encrypted in enclave code", encrypted), "app+engine", "ok")

	ciphertext, err := w.mon.CopyFrom(d.app.ID(), d.chanSeg.Start+8, uint64(len(plaintext)))
	if err != nil {
		return nil, err
	}
	if err := w.mon.CopyInto(d.app.ID(), d.gpuBuf.Start, ciphertext); err != nil {
		return nil, err
	}
	gpu := w.mach.Device(0)
	if err := gpu.DMACopy(d.gpuBuf.Start, d.fbSeg.Start, uint64(len(ciphertext))); err != nil {
		return nil, fmt.Errorf("gpu dma: %w", err)
	}
	res.row("GPU DMAs ciphertext into its framebuffer", "gpu domain", "ok")

	// Customer decrypts what left the machine.
	want := make([]byte, len(plaintext))
	for i := range plaintext {
		want[i] = plaintext[i] ^ customerKey[i%32]
	}
	correct := bytes.Equal(ciphertext, want) && encrypted == uint64(len(plaintext))
	res.check("ciphertext-correct", correct, "enclave XOR stream matches customer-side computation over %d bytes", len(plaintext))

	// --- Attack phase: the compromised provider probes everything.
	_, keyErr := w.mon.CopyFrom(core.InitialDomain, d.keySeg.Start, 32)
	res.row("provider reads engine key page", "attacker (dom0)", boolCell(keyErr == nil))
	_, ptErr := w.mon.CopyFrom(core.InitialDomain, d.chanSeg.Start, 16)
	res.row("provider reads app<->engine channel", "attacker (dom0)", boolCell(ptErr == nil))
	_, fbErr := w.mon.CopyFrom(core.InitialDomain, d.fbSeg.Start, 16)
	res.row("provider reads GPU framebuffer", "attacker (dom0)", boolCell(fbErr == nil))
	dmaErr := gpu.DMARead(d.keySeg.Start, make([]byte, 32))
	res.row("GPU DMA probes engine key page", "attacker (device)", boolCell(dmaErr == nil))
	res.check("attacks-denied", keyErr != nil && ptErr != nil && fbErr != nil && dmaErr != nil,
		"all provider/device probes denied by the monitor")

	// The provider-visible mailbox holds only public values.
	visible, err := d.mailbox.ReadAs(core.InitialDomain, 0, 96)
	if err != nil {
		return nil, err
	}
	leak := bytes.Contains(visible, engineKey) || bytes.Contains(visible, plaintext)
	res.check("no-plaintext-visible", !leak, "provider-visible bytes contain neither key nor plaintext")
	res.note("key exchange is real X25519; XOR stream stands in for AES-GCM (see DESIGN.md)")
	return res, nil
}
