package bench

import (
	"strings"
	"testing"
)

// TestC18LockScalability is the CI entry point for the lock-contention
// job (`go test -run C18 -mutexprofile ...`): it runs the full C18
// sweep so the mutex profile captures the monitor's contention
// behaviour under both workloads at every core count, and requires
// every shape check to pass on whichever lock implementation this
// binary was built with (the `biglock` tag flips it).
func TestC18LockScalability(t *testing.T) {
	e, ok := Lookup("C18")
	if !ok {
		t.Fatal("C18 not registered")
	}
	cfg := Config{Seed: 1, Quick: testing.Short()}
	res, err := e.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	res.Render(&sb)
	t.Log(sb.String())
	for _, c := range res.Failed() {
		t.Errorf("C18 check %s failed: %s", c.Name, c.Detail)
	}
}
