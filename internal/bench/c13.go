package bench

import (
	"fmt"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/core"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/libtyche"
	"github.com/tyche-sim/tyche/internal/phys"
)

func init() {
	register(Experiment{
		ID:    "C13",
		Title: "Ablations: tagged TLBs and the revocation shootdown",
		Paper: "design choices behind §4.1's fast transitions and §3.2's guaranteed cleanups",
		Run:   runC13,
	})
}

// runC13 ablates two design choices the headline numbers depend on.
//
// (a) ASID-tagged TLBs: the VMFUNC fast path is only fast because the
// tagged TLB survives the switch. We measure a domain's memory access
// immediately after returning via the fast path (warm) vs after a full
// exit-based transition (TLB flushed, cold).
//
// (b) TLB shootdown on revocation: with real (non-coherent) TLBs, a
// revocation that skips the flush leaves a stale-translation window —
// the revoked domain can keep accessing the memory. We execute that
// attack: it SUCCEEDS with CleanNone and is closed by CleanFlushTLB.
// This is why the monitor treats the flush as part of the guaranteed
// cleanup, not an optimization.
func runC13(cfg Config) (*Result, error) {
	res := &Result{
		ID: "C13", Title: "Ablations",
		Columns: []string{"ablation", "variant", "result"},
	}

	// ---------- (a) tagged-TLB benefit ----------
	w, err := newWorld(cfg, defaultWorldOpts())
	if err != nil {
		return nil, err
	}
	opts := libtyche.DefaultLoadOptions()
	opts.Cores = []phys.CoreID{0}
	opts.FastPathCore = 0
	opts.Seal = false
	dom, err := w.cl.Load(addImage("c13", 1), opts)
	if err != nil {
		return nil, err
	}
	// A one-load probe program in dom0.
	probeAddr := phys.Addr(8 * phys.PageSize)
	probe := hw.NewAsm()
	probe.Movi(1, uint32(probeAddr)).Ld(2, 1, 0).Hlt()
	if err := w.mon.CopyInto(core.InitialDomain, probeAddr, probe.MustAssemble(probeAddr)); err != nil {
		return nil, err
	}
	cpu := w.mach.Core(0)
	runProbe := func() (uint64, error) {
		cpu.PC = probeAddr
		cpu.ClearHalt()
		return cycles(w.mach, func() error {
			_, err := w.mon.RunCore(0, 10)
			return err
		})
	}
	// Warm the TLB, bounce through the fast path, and re-probe.
	if _, err := runProbe(); err != nil {
		return nil, err
	}
	if err := w.mon.FastSwitch(0, dom.ID()); err != nil {
		return nil, err
	}
	if err := w.mon.FastSwitch(0, core.InitialDomain); err != nil {
		return nil, err
	}
	warm, err := runProbe()
	if err != nil {
		return nil, err
	}
	// Now bounce through full transitions (untagged path: flush).
	if err := w.mon.Call(0, dom.ID()); err != nil {
		return nil, err
	}
	if err := w.mon.Return(0); err != nil {
		return nil, err
	}
	cold, err := runProbe()
	if err != nil {
		return nil, err
	}
	res.row("TLB after domain round trip", "tagged (VMFUNC path)", fmt.Sprintf("%d cycles/probe (warm)", warm))
	res.row("TLB after domain round trip", "untagged (exit path flushes)", fmt.Sprintf("%d cycles/probe (cold)", cold))
	res.check("tagging-keeps-tlb-warm", warm < cold,
		"probe after fast path %d cycles vs %d after flushing transition", warm, cold)

	// ---------- (b) revocation shootdown ----------
	attack := func(policy cap.Cleanup) (hw.TrapKind, error) {
		w, err := newWorld(cfg, defaultWorldOpts())
		if err != nil {
			return 0, err
		}
		var heapNode cap.NodeID
		for _, n := range w.mon.OwnerNodes(core.InitialDomain) {
			if n.Resource.Kind == cap.ResMemory {
				heapNode = n.ID
			}
		}
		target := phys.MakeRegion(2<<20, phys.PageSize)
		// Victim domain: loads from target in an infinite loop.
		vImg, err := buildAt(w.cl, "tlb-victim", func(base phys.Addr) *hw.Asm {
			a := hw.NewAsm()
			a.Movi(1, uint32(target.Start))
			a.Label("loop")
			a.Ld(2, 1, 0)
			a.Jmp("loop")
			return a
		})
		if err != nil {
			return 0, err
		}
		vOpts := libtyche.DefaultLoadOptions()
		vOpts.Cores = []phys.CoreID{1}
		vOpts.Seal = false
		victim, err := w.cl.Load(vImg, vOpts)
		if err != nil {
			return 0, err
		}
		share, err := w.mon.Share(core.InitialDomain, heapNode, victim.ID(), cap.MemResource(target), cap.RightRead, policy)
		if err != nil {
			return 0, err
		}
		// Run the victim: its TLB caches the translation.
		if err := victim.Launch(1); err != nil {
			return 0, err
		}
		if _, err := w.mon.RunCore(1, 50); err != nil {
			return 0, err
		}
		// Revoke while the victim is off-core but its context (and TLB)
		// stay live; the cleanup policy decides whether a shootdown
		// happens.
		if err := w.mon.Revoke(core.InitialDomain, share); err != nil {
			return 0, err
		}
		// Resume the victim without a context reinstall.
		resOut, err := w.mon.RunCore(1, 50)
		if err != nil {
			return 0, err
		}
		return resOut.Trap.Kind, nil
	}
	noFlush, err := attack(cap.CleanNone)
	if err != nil {
		return nil, err
	}
	withFlush, err := attack(cap.CleanFlushTLB)
	if err != nil {
		return nil, err
	}
	res.row("access revoked memory via stale TLB", "no shootdown (CleanNone)",
		boolCellWord(noFlush == hw.TrapNone, "ACCESS STILL SUCCEEDS", noFlush.String()))
	res.row("access revoked memory via stale TLB", "shootdown (CleanFlushTLB)",
		boolCellWord(withFlush == hw.TrapFault, "faults immediately", withFlush.String()))
	res.check("stale-tlb-window-exists", noFlush == hw.TrapNone,
		"without a shootdown the revoked mapping remains usable (the hazard)")
	res.check("shootdown-closes-window", withFlush == hw.TrapFault,
		"CleanFlushTLB makes the next access fault")
	res.note("the monitor therefore couples revocation to TLB shootdown; 'fast' transitions rely on tags, not on skipping coherence")
	return res, nil
}
