package bench

import (
	"errors"

	"github.com/tyche-sim/tyche/internal/attest"
	"github.com/tyche-sim/tyche/internal/core"
	"github.com/tyche-sim/tyche/internal/dist"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/image"
	"github.com/tyche-sim/tyche/internal/libtyche"
	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/tpm"
)

func init() {
	register(Experiment{
		ID:    "C12",
		Title: "Attested cross-machine channels (RDMA-style TEE interconnect)",
		Paper: "§4.2 future work: 'RDMA support for Tyche-based TEEs running on separate machines' + multi-domain attestation",
		Run:   runC12,
	})
}

// runC12 connects enclaves on two independently booted machines over an
// untrusted wire. Shape: the honest connection establishes after mutual
// chain verification and carries data with neither host OS nor the wire
// seeing plaintext; an impostor machine (different monitor), a wrong
// enclave measurement, in-flight tampering, and replay are all
// rejected.
func runC12(cfg Config) (*Result, error) {
	res := &Result{
		ID: "C12", Title: "Cross-machine attested channels",
		Columns: []string{"event", "outcome"},
	}
	build := func(identity []byte) (*core.Monitor, *tpm.TPM, *libtyche.Domain, *image.Image, error) {
		mach, err := hw.NewMachine(hw.Config{
			MemBytes: 16 << 20, NumCores: 2, IOMMUAllowByDefault: true,
			Devices: []hw.DeviceConfig{{Name: "rnic0", Class: hw.DevNIC}},
		})
		if err != nil {
			return nil, nil, nil, nil, err
		}
		rot, err := tpm.New(nil)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		mon, err := core.Boot(core.BootConfig{Machine: mach, TPM: rot, Identity: identity})
		if err != nil {
			return nil, nil, nil, nil, err
		}
		cl := libtyche.New(mon, core.InitialDomain)
		if err := cl.AutoHeap(dom0ReservePages); err != nil {
			return nil, nil, nil, nil, err
		}
		img := haltImage("rdma-endpoint").WithBSS(".rdma", 2*phys.PageSize)
		opts := libtyche.DefaultLoadOptions()
		opts.Cores = []phys.CoreID{1}
		opts.Devices = []phys.DeviceID{0}
		dom, err := cl.NewEnclave(img, opts)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		return mon, rot, dom, img, nil
	}
	endpoint := func(mon *core.Monitor, rot *tpm.TPM, dom *libtyche.Domain,
		peerRot *tpm.TPM, peerMon *core.Monitor, peerImg *image.Image, peerDom *libtyche.Domain) (*dist.Endpoint, error) {
		buf, _ := dom.SegmentRegion(".rdma")
		meas, err := peerImg.Measurement(peerDom.Base())
		if err != nil {
			return nil, err
		}
		return &dist.Endpoint{
			Monitor: mon, TPM: rot, Domain: dom.ID(), Buffer: buf, NIC: 0,
			PeerVerifier:    attest.NewVerifier(peerRot.EndorsementKey(), peerMon.Identity()),
			PeerMeasurement: &meas,
		}, nil
	}

	monA, rotA, domA, imgA, err := build(nil)
	if err != nil {
		return nil, err
	}
	monB, rotB, domB, imgB, err := build(nil)
	if err != nil {
		return nil, err
	}
	wire := &dist.Wire{}
	epA, err := endpoint(monA, rotA, domA, rotB, monB, imgB, domB)
	if err != nil {
		return nil, err
	}
	epB, err := endpoint(monB, rotB, domB, rotA, monA, imgA, domA)
	if err != nil {
		return nil, err
	}
	conn, err := dist.Connect(epA, epB, wire)
	if err != nil {
		return nil, err
	}
	res.row("mutual attestation (quote+report+measurement+key binding), both directions", "ok")
	res.check("honest-connect", true, "two independently rooted machines established the channel")

	payload := []byte("cross-machine TEE payload: hosts and wire see ciphertext only")
	got, err := conn.Send(epA, payload)
	if err != nil {
		return nil, err
	}
	back, err := conn.Send(epB, []byte("acknowledged"))
	if err != nil {
		return nil, err
	}
	res.row("A->B and B->A transfers through registered buffers + NIC DMA", "ok")
	res.check("payload-intact", string(got) == string(payload) && string(back) == "acknowledged",
		"both directions delivered verbatim")
	res.check("wire-sees-ciphertext", !wire.WireCarried(payload),
		"the adversary's tap never saw plaintext across %d frames", len(wire.Taps))

	_, hostAErr := monA.CopyFrom(core.InitialDomain, epA.Buffer.Start, 8)
	_, hostBErr := monB.CopyFrom(core.InitialDomain, epB.Buffer.Start, 8)
	res.row("host OS probes on both registered buffers", boolCell(hostAErr == nil || hostBErr == nil))
	res.check("hosts-off-the-path", hostAErr != nil && hostBErr != nil,
		"neither provider OS can read the endpoints' buffers")

	// Attack 1: impostor machine with a different monitor.
	monC, rotC, domC, imgC, err := build([]byte("trojaned monitor build"))
	if err != nil {
		return nil, err
	}
	epCtoA, err := endpoint(monC, rotC, domC, rotA, monA, imgA, domA)
	if err != nil {
		return nil, err
	}
	epAtoC, err := endpoint(monA, rotA, domA, rotC, monC, imgC, domC)
	if err != nil {
		return nil, err
	}
	// A insists on the *trusted* monitor identity for its peer.
	epAtoC.PeerVerifier = attest.NewVerifier(rotC.EndorsementKey(), core.DefaultIdentity)
	_, impostorErr := dist.Connect(epAtoC, epCtoA, wire)
	res.row("impostor machine (unknown monitor) connects", boolCell(impostorErr == nil))
	res.check("impostor-rejected", errors.Is(impostorErr, dist.ErrPeerUntrusted), "%v", impostorErr)

	// Attack 2: wrong enclave measurement.
	evil := tpm.Measure([]byte("evil enclave"))
	epA.PeerMeasurement = &evil
	_, measErr := dist.Connect(epA, epB, wire)
	res.row("peer with unexpected enclave measurement", boolCell(measErr == nil))
	res.check("measurement-pinned", errors.Is(measErr, dist.ErrPeerUntrusted), "%v", measErr)
	// Restore for the remaining attacks.
	measOK, err := imgB.Measurement(domB.Base())
	if err != nil {
		return nil, err
	}
	epA.PeerMeasurement = &measOK
	conn, err = dist.Connect(epA, epB, wire)
	if err != nil {
		return nil, err
	}

	// Attack 3: tamper in flight.
	wire.Corrupt = func(f []byte) []byte { f[20] ^= 0xff; return f }
	_, tamperErr := conn.Send(epA, []byte("integrity"))
	wire.Corrupt = nil
	res.row("ciphertext bit-flip on the wire", boolCell(tamperErr == nil))
	res.check("tamper-detected", errors.Is(tamperErr, dist.ErrTampered), "%v", tamperErr)

	// Attack 4: replay an old frame.
	if _, err := conn.Send(epA, []byte("fresh")); err != nil {
		return nil, err
	}
	captured := append([]byte(nil), wire.Taps[len(wire.Taps)-1]...)
	wire.Corrupt = func([]byte) []byte { return append([]byte(nil), captured...) }
	_, replayErr := conn.Send(epA, []byte("newer"))
	wire.Corrupt = nil
	res.row("replay of a captured frame", boolCell(replayErr == nil))
	res.check("replay-detected", errors.Is(replayErr, dist.ErrTampered), "%v", replayErr)
	res.note("session keys derive from X25519 public keys bound into each enclave's signed report data")
	return res, nil
}
