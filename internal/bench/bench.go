// Package bench regenerates every figure and claim of the paper's
// evaluation as executable experiments (see DESIGN.md's experiment
// index). The paper is a HotOS vision paper: Figures 1-4 are conceptual
// and the quantitative content lives in prose claims, so each figure is
// reproduced as a checked executable scenario and each claim as a
// parameter-sweep measurement. Every experiment prints a table and
// returns machine-checkable shape assertions; EXPERIMENTS.md records
// paper-vs-measured from exactly this output.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/tyche-sim/tyche/internal/core"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/image"
	"github.com/tyche-sim/tyche/internal/libtyche"
	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/rv"
	"github.com/tyche-sim/tyche/internal/tpm"
	"github.com/tyche-sim/tyche/internal/trace"
	"github.com/tyche-sim/tyche/internal/trace/check"
)

// Config tunes an experiment run.
type Config struct {
	// Backend selects the enforcement backend where the experiment does
	// not itself sweep backends (vtx default).
	Backend core.BackendKind
	// Quick shrinks sweeps for use under `go test`.
	Quick bool
	// Seed drives randomized workloads deterministically.
	Seed int64
	// Trace installs a cycle-stamped tracer with the online invariant
	// checker on every experiment world. Experiments with explicit
	// oracle checks (C15) append exact count reconciliation; the
	// harness additionally appends one trace-oracle check per
	// experiment asserting no world saw a violation. No-op under the
	// notrace build tag.
	Trace bool
	// Verify > 0 attaches the always-on runtime-verification service
	// (internal/rv: sharded incremental checker merged at the monitor's
	// quiescent points) to every experiment world. 1 is exact mode;
	// N > 1 samples the high-rate event kinds 1-in-N (safety-critical
	// kinds stay exact). Composes with Trace — both sinks then feed off
	// one tracer. No-op under the notrace build tag.
	Verify int

	// audit, when non-nil, collects every traced world so the harness
	// can render the checker's verdict even for experiments without
	// explicit trace checks. Wired by RunExperiments.
	audit *traceAudit
	// contended marks a multi-worker pool run: sibling experiments are
	// competing for the host CPU, so wall-clock gates cannot be
	// enforced meaningfully. Experiments with such gates (C21) demote
	// them to informational and shrink their measurement load. Set by
	// RunExperiments.
	contended bool
}

// verdicter is any attached trace oracle the audit can finalise: the
// serial online checker and the sharded runtime-verification service
// both satisfy it.
type verdicter interface{ Err() error }

// traceAudit accumulates the checkers of the traced worlds one
// experiment boots. It holds the checkers themselves, not the worlds:
// C17 legitimately detaches and replaces a world's tracer mid-run, and
// the verdict wanted here is each checker's over whatever it saw.
type traceAudit struct {
	mu  sync.Mutex
	cks []verdicter
}

func (a *traceAudit) add(ck verdicter) {
	a.mu.Lock()
	a.cks = append(a.cks, ck)
	a.mu.Unlock()
}

// appendCheck adds one harness-level check over every traced world the
// experiment booted. Exact count reconciliation stays with the
// experiments' own traceClean calls; an invariant violation in any
// world fails the experiment here regardless of whether it audits
// itself.
func (a *traceAudit) appendCheck(res *Result) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.cks) == 0 {
		return
	}
	ok := true
	detail := fmt.Sprintf("%d traced world(s)", len(a.cks))
	for i, ck := range a.cks {
		if err := ck.Err(); err != nil {
			ok = false
			detail = fmt.Sprintf("world %d: %v", i, err)
			break
		}
	}
	res.check("trace-oracle", ok, "online invariant checker clean across %s", detail)
}

// Check is one shape assertion an experiment evaluated: the property
// that must hold for the reproduction to count (who wins, where the
// crossover falls), as opposed to absolute numbers.
type Check struct {
	Name   string
	OK     bool
	Detail string
}

// Result is an experiment's structured outcome.
type Result struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
	Checks  []Check
	// WallNanos is the experiment's wall-clock duration, stamped by the
	// harness (RunExperiments).
	WallNanos int64 `json:",omitempty"`
	// Metrics carries machine-readable scalars (cycle counts, hit
	// rates) for BENCH_smp.json; experiments fill it via metric().
	Metrics map[string]float64 `json:",omitempty"`
}

// Failed returns the failed checks.
func (r *Result) Failed() []Check {
	var out []Check
	for _, c := range r.Checks {
		if !c.OK {
			out = append(out, c)
		}
	}
	return out
}

func (r *Result) check(name string, ok bool, format string, args ...any) {
	r.Checks = append(r.Checks, Check{Name: name, OK: ok, Detail: fmt.Sprintf(format, args...)})
}

func (r *Result) row(cells ...string) { r.Rows = append(r.Rows, cells) }

func (r *Result) metric(name string, v float64) {
	if r.Metrics == nil {
		r.Metrics = make(map[string]float64)
	}
	r.Metrics[name] = v
}

func (r *Result) note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Render pretty-prints the result to w.
func (r *Result) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(r.Columns)
	sep := make([]string, len(r.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	for _, c := range r.Checks {
		status := "PASS"
		if !c.OK {
			status = "FAIL"
		}
		fmt.Fprintf(w, "  check [%s] %s: %s\n", status, c.Name, c.Detail)
	}
	fmt.Fprintln(w)
}

// Experiment is one registered experiment.
type Experiment struct {
	ID    string
	Title string
	// Paper names the paper artefact this regenerates.
	Paper string
	Run   func(cfg Config) (*Result, error)
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// Experiments returns all registered experiments in ID order.
func Experiments() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every experiment serially, rendering to w, and
// returns the failed checks across all of them.
func RunAll(w io.Writer, cfg Config) ([]Check, error) {
	return RunAllParallel(w, cfg, 1)
}

// RunAllParallel is RunAll over a pool of `workers` goroutines.
// Experiments are independent (each boots its own machine), so they
// parallelise trivially; output stays deterministic because results are
// rendered in ID order after the pool drains.
func RunAllParallel(w io.Writer, cfg Config, workers int) ([]Check, error) {
	results, err := RunExperiments(Experiments(), cfg, workers)
	if err != nil {
		return nil, err
	}
	var failed []Check
	for _, res := range results {
		res.Render(w)
		failed = append(failed, res.Failed()...)
	}
	return failed, nil
}

// RunExperiments runs the given experiments over a pool of `workers`
// goroutines and returns their results in input order, each stamped
// with its wall-clock duration. The first experiment error aborts the
// batch.
func RunExperiments(exps []Experiment, cfg Config, workers int) ([]*Result, error) {
	if workers < 1 {
		workers = 1
	}
	if workers > len(exps) {
		workers = len(exps)
	}
	results := make([]*Result, len(exps))
	errs := make([]error, len(exps))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				run := cfg
				run.contended = workers > 1
				if cfg.Trace || cfg.Verify > 0 {
					run.audit = &traceAudit{}
				}
				start := time.Now()
				res, err := exps[j].Run(run)
				if err != nil {
					errs[j] = err
					continue
				}
				res.WallNanos = time.Since(start).Nanoseconds()
				if run.audit != nil {
					run.audit.appendCheck(res)
				}
				results[j] = res
			}
		}()
	}
	for j := range exps {
		jobs <- j
	}
	close(jobs)
	wg.Wait()
	for j, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", exps[j].ID, err)
		}
	}
	return results, nil
}

// --- shared world construction --------------------------------------

// world bundles a booted machine+monitor with a dom0 client idling on
// core 0. With Config.Trace set, ck is the online invariant checker
// fed by the machine's tracer from the moment of boot (nil otherwise).
type world struct {
	mach *hw.Machine
	rot  *tpm.TPM
	mon  *core.Monitor
	cl   *libtyche.Client
	ck   *check.Checker
	// rvs is the always-on runtime-verification service (Config.Verify);
	// nil when verification is off or tracing is compiled out.
	rvs *rv.Service
}

// traceClean appends the checker-oracle checks to res when the world
// is traced: no invariant violations, and event-derived counters
// reconciling exactly with the monitor's statistics.
func (w *world) traceClean(res *Result, tag string) {
	if w.ck != nil {
		err := w.ck.Err()
		res.check(tag+"-trace-clean", err == nil, "online invariant checker over the full run: %v", err)
		st := w.mon.Stats()
		c := w.ck.Counts()
		ok := countsMatch(c, st)
		res.check(tag+"-trace-counts", ok,
			"event-derived counts match Stats(): trace %+v vs stats %+v", c, st)
	}
	if w.rvs != nil {
		err := w.rvs.Err()
		mode := "exact"
		if n := w.rvs.Tracer().SampleN(); n > 1 {
			mode = fmt.Sprintf("sampled 1-in-%d", n)
		}
		res.check(tag+"-rv-clean", err == nil,
			"sharded runtime verifier (%s) over the full run: %v", mode, err)
		// Count reconciliation needs every event: skip it in sampled mode
		// (tallies are deliberately inexact there) and when the tracer was
		// detached mid-run.
		if !w.rvs.Sampled() && w.mach.Tracer() == w.rvs.Tracer() {
			st := w.mon.Stats()
			c := w.rvs.Checker().Counts()
			res.check(tag+"-rv-counts", countsMatch(c, st),
				"shard-derived counts match Stats(): trace %+v vs stats %+v", c, st)
		}
	}
}

// countsMatch is the harness-level count reconciliation both trace
// oracles share.
func countsMatch(c check.Counts, st core.Stats) bool {
	return c.Transitions == st.Transitions && c.FastSwitches == st.FastSwitches &&
		c.CapOps == st.CapOps && c.Revocations == st.Revocations &&
		c.ForcedKills == st.ForcedKills && c.PagesScrubbed == st.PagesScrubbed &&
		c.VMCalls+c.MachineChecks == st.VMExits &&
		c.Batches == st.RingFlushes && c.BatchedOps == st.RingOps &&
		c.Drains == st.RingParallelDrains
}

type worldOpts struct {
	cores      int
	memBytes   uint64
	pmpEntries int
	devices    []hw.DeviceConfig
	encryption bool
}

func defaultWorldOpts() worldOpts {
	return worldOpts{
		cores:    4,
		memBytes: 32 << 20,
		devices: []hw.DeviceConfig{
			{Name: "gpu0", Class: hw.DevAccelerator},
			{Name: "nic0", Class: hw.DevNIC},
		},
	}
}

// dom0ReservePages keeps the low pages for dom0's own text.
const dom0ReservePages = 16

// dom0Entry is where the idle kernel text lives.
const dom0Entry = phys.Addr(4 * phys.PageSize)

func newWorld(cfg Config, o worldOpts) (*world, error) {
	mach, err := hw.NewMachine(hw.Config{
		MemBytes:            o.memBytes,
		NumCores:            o.cores,
		PMPEntries:          o.pmpEntries,
		IOMMUAllowByDefault: true,
		Devices:             o.devices,
		MemoryEncryption:    o.encryption,
	})
	if err != nil {
		return nil, err
	}
	rot, err := tpm.New(nil)
	if err != nil {
		return nil, err
	}
	kind := cfg.Backend
	if kind == "" {
		kind = core.BackendVTX
	}
	mon, err := core.Boot(core.BootConfig{Machine: mach, TPM: rot, Backend: kind})
	if err != nil {
		return nil, err
	}
	var ck *check.Checker
	var rvs *rv.Service
	if (cfg.Trace || cfg.Verify > 0) && trace.Compiled {
		// One tracer feeds every attached oracle, installed before dom0's
		// first op so checker counts and monitor statistics tally the
		// same history from zero. Sinks attach before SetTracer so all of
		// them observe KBoot.
		tr := mach.NewTracer(trace.DefaultRingEntries)
		if cfg.Trace {
			ck = check.New()
			tr.Attach(ck)
		}
		if cfg.Verify > 0 {
			svc, err := rv.Attach(mach, mon, rv.Options{
				Node:    "bench",
				SampleN: cfg.Verify,
				Tracer:  tr,
			})
			if err != nil {
				return nil, err
			}
			rvs = svc
		}
		mach.SetTracer(tr)
	}
	w := &world{mach: mach, rot: rot, mon: mon, ck: ck, rvs: rvs}
	if cfg.audit != nil {
		if ck != nil {
			cfg.audit.add(ck)
		}
		if rvs != nil {
			cfg.audit.add(rvs)
		}
	}
	cl := libtyche.New(mon, core.InitialDomain)
	w.cl = cl
	if err := cl.AutoHeap(dom0ReservePages); err != nil {
		return nil, err
	}
	idle := hw.NewAsm()
	idle.Hlt()
	if err := mon.CopyInto(core.InitialDomain, dom0Entry, idle.MustAssemble(dom0Entry)); err != nil {
		return nil, err
	}
	if err := mon.SetEntry(core.InitialDomain, core.InitialDomain, dom0Entry); err != nil {
		return nil, err
	}
	if err := mon.Launch(core.InitialDomain, 0); err != nil {
		return nil, err
	}
	if _, err := mon.RunCore(0, 10); err != nil {
		return nil, err
	}
	return w, nil
}

// addImage builds an image whose domain returns r2+delta via the
// monitor's return call (the standard "service domain" payload).
func addImage(name string, delta uint32) *image.Image {
	a := hw.NewAsm()
	a.Movi(3, delta)
	a.Add(1, 2, 3)
	a.Movi(0, uint32(core.CallReturn))
	a.Vmcall()
	a.Hlt()
	return image.NewProgram(name, a.MustAssemble(0))
}

// haltImage builds the minimal runnable image.
func haltImage(name string) *image.Image {
	a := hw.NewAsm()
	a.Hlt()
	return image.NewProgram(name, a.MustAssemble(0))
}

// buildAt constructs an image whose text is assembled against its final
// load address (for programs with absolute jump targets): gen receives
// the text base, extras mutate the image (adding segments), and the
// returned image must be loaded immediately (it is assembled against
// the next allocation the client's heap will hand out).
func buildAt(cl *libtyche.Client, name string, gen func(base phys.Addr) *hw.Asm, extras ...func(*image.Image)) (*image.Image, error) {
	// Pass 1: size the image with a dummy base.
	probe := image.NewProgram(name, gen(0).MustAssemble(0))
	for _, ex := range extras {
		ex(probe)
	}
	base, err := cl.Heap().Peek(probe.TotalPages())
	if err != nil {
		return nil, err
	}
	code, err := gen(base.Start).Assemble(base.Start)
	if err != nil {
		return nil, err
	}
	img := image.NewProgram(name, code)
	for _, ex := range extras {
		ex(img)
	}
	return img, nil
}

func cycles(m *hw.Machine, f func() error) (uint64, error) {
	before := m.Clock.Cycles()
	err := f()
	return m.Clock.Cycles() - before, err
}

func fmtU(v uint64) string { return fmt.Sprintf("%d", v) }

func fmtRatio(v, base uint64) string {
	if base == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fx", float64(v)/float64(base))
}

func boolCell(ok bool) string {
	if ok {
		return "ok"
	}
	return "DENIED"
}
