package bench

import (
	"fmt"
	"time"

	"github.com/tyche-sim/tyche/internal/core"
	"github.com/tyche-sim/tyche/internal/trace"
	"github.com/tyche-sim/tyche/internal/trace/check"
)

func init() {
	register(Experiment{
		ID:    "C17",
		Title: "Tracing overhead: cycle-stamped monitor tracing on the C15 contention workload",
		Paper: "runtime verification of the monitor's claimed invariants must not perturb what it observes",
		Run:   runC17,
	})
}

// runC17 measures what the trace subsystem costs, on the identical
// share+revoke contention workload C15 uses, in three configurations:
//
//	off        — no tracer installed: every emit site is one atomic
//	             nil-load and branch, the cost everyone pays when not
//	             tracing;
//	ring       — per-core lock-free ring buffers recording every event;
//	ring+check — ring plus the online invariant checker as a sink
//	             (emission serialises to give the checker a total order).
//
// Two properties are load-bearing. First, tracing must advance no
// simulated clocks: the single-worker runs of all three modes must
// consume bit-identical cycle counts, or the act of observing would
// change the system under observation. Second, the disabled path must
// be negligible: the measured per-emit cost times the observed event
// rate must stay under 2% of the workload's wall time.
func runC17(cfg Config) (*Result, error) {
	res := &Result{
		ID: "C17", Title: "Tracing overhead (off / ring / ring+check)",
		Columns: []string{"workers", "mode", "wall us", "cycles", "events", "dropped", "checker"},
	}
	if !trace.Compiled {
		res.row("-", "notrace", "0", "0", "0", "0", "-")
		res.note("tracing compiled out (notrace build tag); overhead is zero by construction")
		res.check("modes-run", true, "skipped under notrace")
		return res, nil
	}
	iters := 64
	if cfg.Quick {
		iters = 24
	}

	type modeRun struct {
		run    *ringRun
		tracer *trace.Tracer
		ck     *check.Checker
		base   core.Stats // stats at tracer install time
	}
	runMode := func(workers int, name string) (*modeRun, error) {
		mr := &modeRun{}
		tweak := func(w *world) error {
			// Worlds may arrive pre-traced (-traced); C17 controls its
			// own instrumentation, so start from a clean slate.
			w.mach.SetTracer(nil)
			w.ck = nil
			// A -verify service attached at boot would keep merging at
			// checkpoints against the replaced tracer; release the hook so
			// C17's modes measure only their own instrumentation.
			w.mon.SetCheckpoint(nil)
			w.rvs = nil
			if name == "off" {
				return nil
			}
			mr.tracer = w.mach.NewTracer(trace.DefaultRingEntries)
			if name == "ring+check" {
				mr.ck = check.New()
				mr.tracer.Attach(mr.ck)
			}
			mr.base = w.mon.Stats()
			w.mach.SetTracer(mr.tracer)
			return nil
		}
		r, err := runShareRevokeRing(cfg, workers, iters, tweak)
		if err != nil {
			return nil, fmt.Errorf("c17 %s/w%d: %w", name, workers, err)
		}
		mr.run = r
		return mr, nil
	}

	modes := []string{"off", "ring", "ring+check"}
	var wide map[string]*modeRun // the w4 runs, reused for the overhead bound
	for _, workers := range []int{1, 4} {
		byMode := make(map[string]*modeRun, len(modes))
		for _, name := range modes {
			mr, err := runMode(workers, name)
			if err != nil {
				return nil, err
			}
			byMode[name] = mr
			events, dropped, checker := uint64(0), uint64(0), "-"
			if mr.tracer != nil {
				events, dropped = mr.tracer.Len(), mr.tracer.Dropped()
			}
			if mr.ck != nil {
				if err := mr.ck.Err(); err != nil {
					checker = "VIOLATION"
				} else {
					checker = "clean"
				}
			}
			tag := fmt.Sprintf("w%d", workers)
			res.row(fmt.Sprintf("%d", workers), name,
				fmt.Sprintf("%d", mr.run.wall.Microseconds()), fmtU(mr.run.cycles),
				fmtU(events), fmtU(dropped), checker)
			res.metric(fmt.Sprintf("%s_%s_wall_ns", tag, name), float64(mr.run.wall.Nanoseconds()))
			res.metric(fmt.Sprintf("%s_%s_cycles", tag, name), float64(mr.run.cycles))
			res.check(fmt.Sprintf("%s-%s-complete", tag, name), mr.run.complete,
				"all workers ran to completion%s", mr.run.detail)
		}
		tag := fmt.Sprintf("w%d", workers)
		if workers == 1 {
			// Single worker: execution is sequential, so cycle accounting
			// is exactly reproducible and any divergence is tracing
			// perturbing the machine.
			off, ring, chk := byMode["off"].run.cycles, byMode["ring"].run.cycles, byMode["ring+check"].run.cycles
			res.check("cycles-identical", off == ring && ring == chk,
				"tracing advances no simulated clocks: off=%d ring=%d ring+check=%d", off, ring, chk)
		}
		// The checker saw the whole history since its install: its
		// event-derived counters must reconcile exactly with the stats
		// delta over the same window.
		mc := byMode["ring+check"]
		st := mc.run.w.mon.Stats()
		c := mc.ck.Counts()
		exact := c.Revocations == st.Revocations-mc.base.Revocations &&
			c.CapOps == st.CapOps-mc.base.CapOps &&
			c.Transitions == st.Transitions-mc.base.Transitions &&
			c.VMCalls+c.MachineChecks == st.VMExits-mc.base.VMExits
		res.check(tag+"-checker-clean", mc.ck.Err() == nil,
			"online invariant checker over the traced window: %v", mc.ck.Err())
		res.check(tag+"-counts-exact", exact,
			"event-derived counts match the Stats() delta: trace %+v", c)
		wide = byMode
	}

	// Disabled-path overhead: measure the per-emit cost with no tracer
	// installed (one atomic load + branch) and scale it by the event
	// rate the ring mode observed on the big run. That product over the
	// untraced wall time bounds what always-compiled-in tracing costs a
	// production run that never turns it on.
	mOff := wide["off"].run.w.mach // its tracer was never installed
	const probes = 1 << 20
	start := time.Now()
	for i := 0; i < probes; i++ {
		mOff.Trace(trace.GlobalCore, trace.KVMCall, 0, 0, 0, 0, 0)
	}
	disabledNs := float64(time.Since(start).Nanoseconds()) / probes
	ring, off := wide["ring"], wide["off"]
	events := float64(ring.tracer.Len())
	estNs := events * disabledNs
	overheadPct := estNs / float64(off.run.wall.Nanoseconds()) * 100
	res.metric("disabled_emit_ns", disabledNs)
	res.metric("disabled_overhead_pct", overheadPct)
	res.note("disabled emit: %.2f ns/site over %d probes; %s events on the w4 workload -> estimated %.3f%% of the untraced wall time",
		disabledNs, probes, fmtU(ring.tracer.Len()), overheadPct)
	// Lenient absolute floor: on a fast machine the whole estimated
	// cost can be a handful of microseconds, where the percentage is
	// dominated by wall-clock noise in the denominator.
	res.check("disabled-overhead-bounded", overheadPct <= 2.0 || estNs < 100_000,
		"estimated disabled-tracing overhead %.3f%% (%.0f ns of %d ns) <= 2%%",
		overheadPct, estNs, off.run.wall.Nanoseconds())
	return res, nil
}
