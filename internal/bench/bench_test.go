package bench

import (
	"io"
	"strings"
	"testing"

	"github.com/tyche-sim/tyche/internal/core"
)

// TestExperimentsPassAllChecks runs every registered experiment in
// quick mode and requires every shape check to pass — the experiments
// double as the repository's integration suite.
func TestExperimentsPassAllChecks(t *testing.T) {
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res, err := e.Run(Config{Quick: true, Seed: 1})
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			var sb strings.Builder
			res.Render(&sb)
			for _, c := range res.Failed() {
				t.Errorf("%s check %s failed: %s", e.ID, c.Name, c.Detail)
			}
			if t.Failed() {
				t.Log(sb.String())
			}
			if len(res.Rows) == 0 {
				t.Fatalf("%s produced no table rows", e.ID)
			}
		})
	}
}

// TestExperimentsOnPMPBackend re-runs the backend-sensitive scenario
// experiments on the PMP backend.
func TestExperimentsOnPMPBackend(t *testing.T) {
	for _, id := range []string{"F1", "F4"} {
		e, ok := Lookup(id)
		if !ok {
			t.Fatalf("experiment %s not registered", id)
		}
		t.Run(id, func(t *testing.T) {
			res, err := e.Run(Config{Quick: true, Seed: 1, Backend: core.BackendPMP})
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range res.Failed() {
				t.Errorf("%s on pmp: check %s failed: %s", id, c.Name, c.Detail)
			}
		})
	}
}

func TestRegistryAndRunAll(t *testing.T) {
	if len(Experiments()) < 18 {
		t.Fatalf("registered experiments = %d, want 18 (F1-F4, C1-C14)", len(Experiments()))
	}
	if _, ok := Lookup("F1"); !ok {
		t.Fatal("F1 missing")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("bogus lookup succeeded")
	}
	failed, err := RunAll(io.Discard, Config{Quick: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) != 0 {
		t.Fatalf("failed checks: %+v", failed)
	}
}
