package bench

import (
	"io"
	"strings"
	"testing"

	"github.com/tyche-sim/tyche/internal/core"
	"github.com/tyche-sim/tyche/internal/trace"
)

// TestExperimentsPassAllChecks runs every registered experiment in
// quick mode and requires every shape check to pass — the experiments
// double as the repository's integration suite.
func TestExperimentsPassAllChecks(t *testing.T) {
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res, err := e.Run(Config{Quick: true, Seed: 1})
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			var sb strings.Builder
			res.Render(&sb)
			for _, c := range res.Failed() {
				t.Errorf("%s check %s failed: %s", e.ID, c.Name, c.Detail)
			}
			if t.Failed() {
				t.Log(sb.String())
			}
			if len(res.Rows) == 0 {
				t.Fatalf("%s produced no table rows", e.ID)
			}
		})
	}
}

// TestExperimentsOnPMPBackend re-runs the backend-sensitive scenario
// experiments on the PMP backend (C18 because its lock-scalability
// workloads must hold regardless of the enforcement mechanism).
func TestExperimentsOnPMPBackend(t *testing.T) {
	for _, id := range []string{"F1", "F4", "C18"} {
		e, ok := Lookup(id)
		if !ok {
			t.Fatalf("experiment %s not registered", id)
		}
		t.Run(id, func(t *testing.T) {
			res, err := e.Run(Config{Quick: true, Seed: 1, Backend: core.BackendPMP})
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range res.Failed() {
				t.Errorf("%s on pmp: check %s failed: %s", id, c.Name, c.Detail)
			}
		})
	}
}

func TestRegistryAndRunAll(t *testing.T) {
	if len(Experiments()) < 22 {
		t.Fatalf("registered experiments = %d, want 22 (F1-F4, C1-C18)", len(Experiments()))
	}
	if _, ok := Lookup("F1"); !ok {
		t.Fatal("F1 missing")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("bogus lookup succeeded")
	}
	failed, err := RunAll(io.Discard, Config{Quick: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) != 0 {
		t.Fatalf("failed checks: %+v", failed)
	}
}

// TestRunAllParallel runs the whole suite over a worker pool: every
// check must still pass (experiments must stay independent of each
// other), every experiment must be stamped with a wall-clock duration,
// and rendering must come out in ID order despite out-of-order
// completion.
func TestRunAllParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite run")
	}
	results, err := RunExperiments(Experiments(), Config{Quick: true, Seed: 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(Experiments()) {
		t.Fatalf("results = %d, want %d", len(results), len(Experiments()))
	}
	for i, res := range results {
		if want := Experiments()[i].ID; res.ID != want {
			t.Fatalf("result %d is %s, want %s (ID order)", i, res.ID, want)
		}
		if res.WallNanos <= 0 {
			t.Errorf("%s missing wall-clock stamp", res.ID)
		}
		for _, c := range res.Failed() {
			t.Errorf("%s check %s failed under parallel run: %s", res.ID, c.Name, c.Detail)
		}
	}
}

// TestTracedRunAppendsOracleChecks runs a world-booting experiment with
// Config.Trace through the harness and requires the harness-level
// trace-oracle check to appear and pass: with -traced, every
// experiment world is audited by the online invariant checker even
// when the experiment carries no trace checks of its own.
func TestTracedRunAppendsOracleChecks(t *testing.T) {
	if !trace.Compiled {
		t.Skip("built with notrace")
	}
	e, ok := Lookup("C6")
	if !ok {
		t.Fatal("C6 not registered")
	}
	results, err := RunExperiments([]Experiment{e}, Config{Quick: true, Seed: 1, Trace: true}, 1)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range results[0].Checks {
		if c.Name == "trace-oracle" {
			found = true
			if !c.OK {
				t.Errorf("trace-oracle failed: %s", c.Detail)
			}
		}
	}
	if !found {
		t.Fatalf("no trace-oracle check appended; checks: %+v", results[0].Checks)
	}
}
