package oskit

import (
	"testing"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/core"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/image"
	"github.com/tyche-sim/tyche/internal/libtyche"
	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/tpm"
)

const pg = phys.PageSize

// bootOS boots a monitor and an OS in dom0, with dom0 idling on core 0.
func bootOS(t testing.TB) (*core.Monitor, *OS) {
	t.Helper()
	mach, err := hw.NewMachine(hw.Config{
		MemBytes: 16 << 20, NumCores: 2, IOMMUAllowByDefault: true,
		Devices: []hw.DeviceConfig{{Name: "gpu0", Class: hw.DevAccelerator}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rot, err := tpm.New(nil)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := core.Boot(core.BootConfig{Machine: mach, TPM: rot})
	if err != nil {
		t.Fatal(err)
	}
	// Kernel idle text at page 4.
	idle := hw.NewAsm()
	idle.Hlt()
	if err := mon.CopyInto(core.InitialDomain, 4*pg, idle.MustAssemble(4*pg)); err != nil {
		t.Fatal(err)
	}
	if err := mon.SetEntry(core.InitialDomain, core.InitialDomain, 4*pg); err != nil {
		t.Fatal(err)
	}
	if err := mon.Launch(core.InitialDomain, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := mon.RunCore(0, 10); err != nil {
		t.Fatal(err)
	}
	os, err := New(mon, core.InitialDomain, 16)
	if err != nil {
		t.Fatal(err)
	}
	return mon, os
}

// logAndExit builds a process that logs its pid and exits with code.
func logAndExit(code uint32) func(base phys.Addr) []byte {
	return func(base phys.Addr) []byte {
		a := hw.NewAsm()
		a.Movi(0, uint32(SysGetPid)).Syscall() // r1 = pid
		a.Movi(0, uint32(SysLog)).Syscall()    // log r1 (= pid)
		a.Movi(0, uint32(SysExit)).Movi(1, code).Syscall()
		a.Hlt()
		return a.MustAssemble(base)
	}
}

func TestSpawnScheduleExit(t *testing.T) {
	_, os := bootOS(t)
	p1, err := os.Spawn("a", logAndExit(11), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := os.Spawn("b", logAndExit(22), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.RunAll(0, 1000, 10); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		pid  Pid
		code uint64
	}{{p1, 11}, {p2, 22}} {
		p, err := os.Process(tc.pid)
		if err != nil {
			t.Fatal(err)
		}
		if p.State() != ProcExited || p.ExitCode() != tc.code {
			t.Fatalf("process %d: %v exit=%d", tc.pid, p.State(), p.ExitCode())
		}
		if logs := p.Logs(); len(logs) != 1 || logs[0] != uint64(tc.pid) {
			t.Fatalf("process %d logs = %v", tc.pid, logs)
		}
	}
	st := os.Stats()
	if st.Spawns != 2 || st.Switches < 2 || st.Syscalls < 6 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestProcessIsolationFirstLevel(t *testing.T) {
	_, os := bootOS(t)
	// Victim with a data page.
	victim, err := os.Spawn("victim", logAndExit(0), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	vp, _ := os.Process(victim)
	vData := vp.DataRegion()
	// Attacker reads the victim's data page.
	attacker, err := os.Spawn("attacker", func(base phys.Addr) []byte {
		a := hw.NewAsm()
		a.Movi(1, uint32(vData.Start))
		a.Ld(2, 1, 0)
		a.Movi(0, uint32(SysExit)).Movi(1, 0).Syscall()
		return a.MustAssemble(base)
	}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.RunAll(0, 1000, 10); err != nil {
		t.Fatal(err)
	}
	ap, _ := os.Process(attacker)
	if ap.State() != ProcFaulted {
		t.Fatalf("attacker state = %v, want faulted", ap.State())
	}
	if ap.Fault().Addr != vData.Start {
		t.Fatalf("fault at %v, want %v", ap.Fault().Addr, vData.Start)
	}
	// The kernel, however, bypasses process isolation within its domain
	// (§2.2): privileged read of the victim's data succeeds.
	if _, err := os.KernelRead(vData.Start, 8); err != nil {
		t.Fatalf("kernel bypass failed inside own domain: %v", err)
	}
}

func TestKernelCannotReachEnclave(t *testing.T) {
	// The C8 closing move: same kernel, but the page now belongs to an
	// enclave created through the monitor — the kernel's privilege
	// stops at the domain boundary.
	_, os := bootOS(t)
	enc := hw.NewAsm()
	enc.Hlt()
	img := image.NewProgram("enclave", enc.MustAssemble(0))
	opts := libtyche.DefaultLoadOptions()
	opts.Cores = []phys.CoreID{0}
	dom, err := os.Client().NewEnclave(img, opts)
	if err != nil {
		t.Fatal(err)
	}
	text, _ := dom.SegmentRegion(".text")
	if _, err := os.KernelRead(text.Start, 8); err == nil {
		t.Fatal("kernel read enclave memory through the monitor")
	}
}

func TestYieldRoundRobin(t *testing.T) {
	_, os := bootOS(t)
	// Two processes that yield between logs; interleaving proves
	// round-robin.
	yielder := func(tag uint32) func(base phys.Addr) []byte {
		return func(base phys.Addr) []byte {
			a := hw.NewAsm()
			a.Movi(0, uint32(SysLog)).Movi(1, tag).Syscall()
			a.Movi(0, uint32(SysYield)).Syscall()
			a.Movi(0, uint32(SysLog)).Movi(1, tag+1).Syscall()
			a.Movi(0, uint32(SysExit)).Movi(1, 0).Syscall()
			return a.MustAssemble(base)
		}
	}
	p1, err := os.Spawn("y1", yielder(100), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := os.Spawn("y2", yielder(200), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.RunAll(0, 10000, 10); err != nil {
		t.Fatal(err)
	}
	a, _ := os.Process(p1)
	b, _ := os.Process(p2)
	if a.State() != ProcExited || b.State() != ProcExited {
		t.Fatalf("states: %v %v", a.State(), b.State())
	}
	if logs := a.Logs(); len(logs) != 2 || logs[0] != 100 || logs[1] != 101 {
		t.Fatalf("p1 logs = %v", logs)
	}
	if logs := b.Logs(); len(logs) != 2 || logs[0] != 200 || logs[1] != 201 {
		t.Fatalf("p2 logs = %v", logs)
	}
	// Yields forced at least 4 switches (2 per process).
	if os.Stats().Switches < 4 {
		t.Fatalf("switches = %d", os.Stats().Switches)
	}
}

func TestQuantumPreemption(t *testing.T) {
	_, os := bootOS(t)
	// Infinite loop: only preemption gets it off-core.
	spinner := func(base phys.Addr) []byte {
		a := hw.NewAsm()
		a.Label("spin")
		a.Jmp("spin")
		return a.MustAssemble(base)
	}
	pid, err := os.Spawn("spin", spinner, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	ran, runnable, err := os.Schedule(0, 50)
	if err != nil {
		t.Fatal(err)
	}
	if ran != pid || !runnable {
		t.Fatalf("ran=%d runnable=%v", ran, runnable)
	}
	p, _ := os.Process(pid)
	if p.State() != ProcReady {
		t.Fatalf("state = %v", p.State())
	}
	// Still schedulable and makes no syscalls.
	if _, _, err := os.Schedule(0, 50); err != nil {
		t.Fatal(err)
	}
	if os.Stats().Switches != 2 {
		t.Fatalf("switches = %d", os.Stats().Switches)
	}
}

func TestUnknownSyscall(t *testing.T) {
	_, os := bootOS(t)
	pid, err := os.Spawn("weird", func(base phys.Addr) []byte {
		a := hw.NewAsm()
		a.Movi(0, 999).Syscall()
		a.Mov(1, 0)                         // save the ENOSYS marker from r0
		a.Movi(0, uint32(SysLog)).Syscall() // log it
		a.Movi(0, uint32(SysExit)).Movi(1, 0).Syscall()
		return a.MustAssemble(base)
	}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.RunAll(0, 1000, 5); err != nil {
		t.Fatal(err)
	}
	p, _ := os.Process(pid)
	if logs := p.Logs(); len(logs) != 1 || logs[0] != ^uint64(0) {
		t.Fatalf("logs = %v, want ENOSYS", logs)
	}
}

func TestReap(t *testing.T) {
	_, os := bootOS(t)
	free := os.Client().Heap().FreeBytes()
	pid, err := os.Spawn("short", logAndExit(0), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Reap(pid); err == nil {
		t.Fatal("reaped a runnable process")
	}
	if err := os.RunAll(0, 1000, 5); err != nil {
		t.Fatal(err)
	}
	if err := os.Reap(pid); err != nil {
		t.Fatal(err)
	}
	if os.Client().Heap().FreeBytes() != free {
		t.Fatal("reap leaked memory")
	}
	if _, err := os.Process(pid); err == nil {
		t.Fatal("reaped process still listed")
	}
	if err := os.Reap(pid); err == nil {
		t.Fatal("double reap succeeded")
	}
}

func TestMonitorEnforcesUnderneathProcesses(t *testing.T) {
	// A process (ring 3, OS filter) additionally confined by the
	// monitor: grant part of dom0's memory away and have a process try
	// to read it — both filters deny, and the fault is attributed to the
	// monitor-level filter (checked first).
	mon, os := bootOS(t)
	other, err := mon.CreateDomain(core.InitialDomain, "other")
	if err != nil {
		t.Fatal(err)
	}
	var memNode cap.NodeID
	for _, n := range mon.OwnerNodes(core.InitialDomain) {
		if n.Resource.Kind == cap.ResMemory {
			memNode = n.ID
		}
	}
	stolen := phys.MakeRegion(2<<20, 4*pg)
	if _, err := mon.Grant(core.InitialDomain, memNode, other, cap.MemResource(stolen), cap.MemRW, cap.CleanNone); err != nil {
		t.Fatal(err)
	}
	pid, err := os.Spawn("snoop", func(base phys.Addr) []byte {
		a := hw.NewAsm()
		a.Movi(1, uint32(stolen.Start))
		a.Ld(2, 1, 0)
		a.Movi(0, uint32(SysExit)).Movi(1, 0).Syscall()
		return a.MustAssemble(base)
	}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.RunAll(0, 1000, 5); err != nil {
		t.Fatal(err)
	}
	p, _ := os.Process(pid)
	if p.State() != ProcFaulted || p.Fault().Addr != stolen.Start {
		t.Fatalf("process = %v fault=%v", p.State(), p.Fault())
	}
}
