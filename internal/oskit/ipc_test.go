package oskit

import (
	"testing"

	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/phys"
)

func TestPipeProducerConsumer(t *testing.T) {
	_, os := bootOS(t)
	// The kernel pre-creates a pipe and passes its ID in r10 (via the
	// initial register file convention: r9=data, we use r10 through a
	// tiny trampoline: both programs receive the pipe id as immediate).
	pipeID := func() uint64 {
		// Create via the kernel-side map directly (the syscall path is
		// exercised by the producer below creating its own).
		id := os.nextPipe
		os.nextPipe++
		os.pipes[id] = &pipe{}
		return id
	}()

	// Producer: writes 10, 20, 30 into the pipe, yielding between
	// writes, then exits.
	producer := func(base phys.Addr) []byte {
		a := hw.NewAsm()
		for _, v := range []uint32{10, 20, 30} {
			a.Movi(0, uint32(SysPipeWrite))
			a.Movi(1, uint32(pipeID))
			a.Movi(2, v)
			a.Syscall()
			a.Movi(0, uint32(SysYield)).Syscall()
		}
		a.Movi(0, uint32(SysExit)).Movi(1, 0).Syscall()
		return a.MustAssemble(base)
	}
	// Consumer: polls the pipe; logs values; exits after 3.
	consumer := func(base phys.Addr) []byte {
		a := hw.NewAsm()
		a.Movi(8, 0) // received count
		a.Label("poll")
		a.Movi(0, uint32(SysPipeRead))
		a.Movi(1, uint32(pipeID))
		a.Syscall()
		a.Jnz(0, "retry") // r0 != 0: empty, yield and retry
		a.Movi(0, uint32(SysLog)).Syscall()
		a.Addi(8, 8, 1)
		a.Movi(9, 3)
		a.Jlt(8, 9, "poll")
		a.Movi(0, uint32(SysExit)).Movi(1, 0).Syscall()
		a.Label("retry")
		a.Movi(0, uint32(SysYield)).Syscall()
		a.Jmp("poll")
		return a.MustAssemble(base)
	}
	pp, err := os.Spawn("producer", producer, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := os.Spawn("consumer", consumer, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.RunAll(0, 10_000, 40); err != nil {
		t.Fatal(err)
	}
	prod, _ := os.Process(pp)
	cons, _ := os.Process(cp)
	if prod.State() != ProcExited || cons.State() != ProcExited {
		t.Fatalf("states: %v %v", prod.State(), cons.State())
	}
	logs := cons.Logs()
	if len(logs) != 3 || logs[0] != 10 || logs[1] != 20 || logs[2] != 30 {
		t.Fatalf("consumer logs = %v", logs)
	}
}

func TestPipeErrors(t *testing.T) {
	_, os := bootOS(t)
	// Write to a nonexistent pipe, create one via syscall, fill it to
	// capacity, and verify the full/empty statuses.
	pid, err := os.Spawn("pipes", func(base phys.Addr) []byte {
		a := hw.NewAsm()
		// Write to bogus pipe: expect status 2.
		a.Movi(0, uint32(SysPipeWrite)).Movi(1, 4242).Movi(2, 1).Syscall()
		a.Mov(1, 0)
		a.Movi(0, uint32(SysLog)).Syscall() // log 2
		// Read from bogus pipe: expect status 2.
		a.Movi(0, uint32(SysPipeRead)).Movi(1, 4242).Syscall()
		a.Mov(1, 0)
		a.Movi(0, uint32(SysLog)).Syscall() // log 2
		// Create a pipe (id lands in r1 -> move to r7).
		a.Movi(0, uint32(SysPipeNew)).Syscall()
		a.Mov(7, 1)
		// Read while empty: expect status 1.
		a.Movi(0, uint32(SysPipeRead)).Mov(1, 7).Syscall()
		a.Mov(1, 0)
		a.Movi(0, uint32(SysLog)).Syscall() // log 1
		// Fill to capacity (64 writes), then one more: expect status 1.
		a.Movi(8, 0)
		a.Movi(9, uint32(pipeCap))
		a.Label("fill")
		a.Movi(0, uint32(SysPipeWrite)).Mov(1, 7).Movi(2, 7).Syscall()
		a.Addi(8, 8, 1)
		a.Jlt(8, 9, "fill")
		a.Movi(0, uint32(SysPipeWrite)).Mov(1, 7).Movi(2, 7).Syscall()
		a.Mov(1, 0)
		a.Movi(0, uint32(SysLog)).Syscall() // log 1 (full)
		a.Movi(0, uint32(SysExit)).Movi(1, 0).Syscall()
		return a.MustAssemble(base)
	}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.RunAll(0, 100_000, 10); err != nil {
		t.Fatal(err)
	}
	p, _ := os.Process(pid)
	if p.State() != ProcExited {
		t.Fatalf("state = %v fault=%v", p.State(), p.Fault())
	}
	want := []uint64{2, 2, 1, 1}
	logs := p.Logs()
	if len(logs) != len(want) {
		t.Fatalf("logs = %v, want %v", logs, want)
	}
	for i := range want {
		if logs[i] != want[i] {
			t.Fatalf("logs = %v, want %v", logs, want)
		}
	}
}

func TestBrkGrowsProcessMemory(t *testing.T) {
	_, os := bootOS(t)
	pid, err := os.Spawn("brk", func(base phys.Addr) []byte {
		a := hw.NewAsm()
		// Grow by 2 pages; store to the new region; read back; log.
		a.Movi(0, uint32(SysBrk)).Movi(1, 2).Syscall()
		a.Jnz(0, "fail")
		a.Mov(7, 1) // new base
		a.Movi(2, 77)
		a.St(7, 0, 2)
		a.Ld(3, 7, 0)
		a.Mov(1, 3)
		a.Movi(0, uint32(SysLog)).Syscall()
		a.Movi(0, uint32(SysExit)).Movi(1, 0).Syscall()
		a.Label("fail")
		a.Movi(0, uint32(SysExit)).Movi(1, 1).Syscall()
		return a.MustAssemble(base)
	}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	free := os.Client().Heap().FreeBytes()
	if err := os.RunAll(0, 10_000, 5); err != nil {
		t.Fatal(err)
	}
	p, _ := os.Process(pid)
	if p.State() != ProcExited || p.ExitCode() != 0 {
		t.Fatalf("process: %v exit=%d fault=%v", p.State(), p.ExitCode(), p.Fault())
	}
	if logs := p.Logs(); len(logs) != 1 || logs[0] != 77 {
		t.Fatalf("logs = %v", logs)
	}
	// Reap returns the brk pages too.
	if err := os.Reap(pid); err != nil {
		t.Fatal(err)
	}
	// Code (1 page) + brk (2 pages) came back; free must exceed the
	// mid-run level.
	if os.Client().Heap().FreeBytes() <= free {
		t.Fatal("brk memory leaked at reap")
	}
}

func TestBrkValidation(t *testing.T) {
	_, os := bootOS(t)
	pid, err := os.Spawn("badbrk", func(base phys.Addr) []byte {
		a := hw.NewAsm()
		a.Movi(0, uint32(SysBrk)).Movi(1, 0).Syscall() // zero pages
		a.Mov(1, 0)
		a.Movi(0, uint32(SysLog)).Syscall()                // log 1
		a.Movi(0, uint32(SysBrk)).Movi(1, 1<<20).Syscall() // absurd
		a.Mov(1, 0)
		a.Movi(0, uint32(SysLog)).Syscall() // log 1
		a.Movi(0, uint32(SysExit)).Movi(1, 0).Syscall()
		return a.MustAssemble(base)
	}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.RunAll(0, 10_000, 5); err != nil {
		t.Fatal(err)
	}
	p, _ := os.Process(pid)
	if logs := p.Logs(); len(logs) != 2 || logs[0] != 1 || logs[1] != 1 {
		t.Fatalf("logs = %v", logs)
	}
}
