package oskit

import (
	"github.com/tyche-sim/tyche/internal/hw"
)

// Extended syscalls: kernel-mediated IPC pipes and dynamic memory.
// These exist to make the guest OS a credible commodity-system stand-in
// (the paper's point is that the OS keeps *managing* resources — pipes,
// heaps, scheduling — while the monitor owns isolation).
const (
	// SysPipeNew creates a pipe; its ID returns in r1.
	SysPipeNew uint64 = 5
	// SysPipeWrite writes byte r2 into pipe r1; r0 = 0 ok, 1 full, 2
	// no such pipe.
	SysPipeWrite uint64 = 6
	// SysPipeRead reads a byte from pipe r1 into r1; r0 = 0 ok, 1
	// empty, 2 no such pipe.
	SysPipeRead uint64 = 7
	// SysBrk grows the process's data by r1 pages; the new region's
	// base returns in r1 (r0 = 0 ok, 1 out of memory).
	SysBrk uint64 = 8
)

// pipeCap is the bounded pipe capacity in bytes.
const pipeCap = 64

type pipe struct {
	buf []uint64
}

// handleExtendedSyscall services the IPC/memory syscalls; it reports
// whether the call number was one of them.
func (o *OS) handleExtendedSyscall(c *hw.Core, p *Process) bool {
	switch c.Regs[0] {
	case SysPipeNew:
		id := o.nextPipe
		o.nextPipe++
		o.pipes[id] = &pipe{}
		c.Regs[0] = 0
		c.Regs[1] = id
	case SysPipeWrite:
		pp, ok := o.pipes[c.Regs[1]]
		switch {
		case !ok:
			c.Regs[0] = 2
		case len(pp.buf) >= pipeCap:
			c.Regs[0] = 1
		default:
			pp.buf = append(pp.buf, c.Regs[2])
			c.Regs[0] = 0
		}
	case SysPipeRead:
		pp, ok := o.pipes[c.Regs[1]]
		switch {
		case !ok:
			c.Regs[0] = 2
		case len(pp.buf) == 0:
			c.Regs[0] = 1
		default:
			c.Regs[0] = 0
			c.Regs[1] = pp.buf[0]
			pp.buf = pp.buf[1:]
		}
	case SysBrk:
		pages := c.Regs[1]
		if pages == 0 || pages > 1024 {
			c.Regs[0] = 1
			return true
		}
		region, err := o.lib.Alloc(pages)
		if err != nil {
			c.Regs[0] = 1
			return true
		}
		if err := p.filter.Map(region, hw.PermRW); err != nil {
			c.Regs[0] = 1
			return true
		}
		p.brk = append(p.brk, region)
		c.Regs[0] = 0
		c.Regs[1] = uint64(region.Start)
	default:
		return false
	}
	return true
}
