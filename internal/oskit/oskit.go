// Package oskit is a miniature commodity operating system that runs as
// a trust domain on the isolation monitor — the stand-in for the
// "unmodified Ubuntu distribution and Linux kernel" Tyche boots as its
// initial domain (§4).
//
// The OS keeps exactly the responsibilities the paper leaves with
// commodity systems: it *manages* resources (allocates process memory,
// schedules cores, implements syscalls) while the monitor *isolates*.
// Processes are an OS abstraction enforced with the domain's own
// first-level filter; the monitor's second-level filter keeps applying
// underneath, which is what lets "the OS still provide the process
// abstraction, while the monitor transparently allows sub-compartments
// within a process" (§3.5) — and what stops the OS kernel from reaching
// into enclaves even though it is the most privileged software in its
// domain (§2.2's bypass, closed).
package oskit

import (
	"errors"
	"fmt"
	"sort"

	"github.com/tyche-sim/tyche/internal/core"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/libtyche"
	"github.com/tyche-sim/tyche/internal/phys"
)

// Pid identifies an OS process.
type Pid int

// ProcState is a process's scheduler state.
type ProcState int

// Process states.
const (
	ProcReady ProcState = iota
	ProcExited
	ProcFaulted
)

var procStateNames = [...]string{"ready", "exited", "faulted"}

func (s ProcState) String() string {
	if int(s) < len(procStateNames) {
		return procStateNames[s]
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Syscall numbers (r0 at the SYSCALL instruction).
const (
	// SysExit terminates the process; r1 is the exit code.
	SysExit uint64 = 1
	// SysLog appends r1 to the process log.
	SysLog uint64 = 2
	// SysYield gives up the remaining time slice.
	SysYield uint64 = 3
	// SysGetPid returns the pid in r1.
	SysGetPid uint64 = 4
)

// Scheduler sentinels (returned through the monitor's run loop and
// interpreted by Schedule).
var (
	errExit  = errors.New("oskit: process exited")
	errYield = errors.New("oskit: process yielded")
)

// Process is one OS process: interpreted user code confined by a
// first-level filter.
type Process struct {
	pid   Pid
	name  string
	state ProcState

	code phys.Region
	data phys.Region
	// filter is the process's first-level view: its own code and data.
	filter *hw.EPT

	regs [hw.NumRegs]uint64
	pc   phys.Addr

	// brk lists regions acquired via SysBrk (freed at reap).
	brk []phys.Region

	exitCode uint64
	fault    hw.Trap
	logs     []uint64
}

// Pid returns the process ID.
func (p *Process) Pid() Pid { return p.pid }

// Name returns the process name.
func (p *Process) Name() string { return p.name }

// State returns the scheduler state.
func (p *Process) State() ProcState { return p.state }

// ExitCode returns the exit code (valid once exited).
func (p *Process) ExitCode() uint64 { return p.exitCode }

// Fault returns the fatal trap (valid once faulted).
func (p *Process) Fault() hw.Trap { return p.fault }

// Logs returns the values the process logged via SysLog.
func (p *Process) Logs() []uint64 {
	out := make([]uint64, len(p.logs))
	copy(out, p.logs)
	return out
}

// CodeRegion returns the process's code placement.
func (p *Process) CodeRegion() phys.Region { return p.code }

// DataRegion returns the process's data placement.
func (p *Process) DataRegion() phys.Region { return p.data }

// Stats counts OS-level events.
type Stats struct {
	Switches uint64 // process context switches
	Syscalls uint64
	Spawns   uint64
}

// OS is the miniature kernel.
type OS struct {
	mon  *core.Monitor
	self core.DomainID
	lib  *libtyche.Client

	procs   map[Pid]*Process
	runq    []Pid
	nextPid Pid
	// running tracks the process currently installed per core.
	running map[phys.CoreID]*Process

	pipes    map[uint64]*pipe
	nextPipe uint64

	stats Stats
}

// New builds an OS kernel for the given domain (usually the initial
// domain), reserving the first reservePages of its memory for kernel
// text/data already placed there. It installs itself as the domain's
// syscall handler.
func New(mon *core.Monitor, dom core.DomainID, reservePages uint64) (*OS, error) {
	lib := libtyche.New(mon, dom)
	if err := lib.AutoHeap(reservePages); err != nil {
		return nil, err
	}
	return NewWithClient(mon, lib)
}

// NewWithClient builds the OS kernel over an existing libtyche client
// (and its allocator). Use this when other code already allocates from
// the domain's memory — two independent allocators over one capability
// would hand out the same pages.
func NewWithClient(mon *core.Monitor, lib *libtyche.Client) (*OS, error) {
	if lib.Heap() == nil {
		return nil, libtyche.ErrNoHeap
	}
	dom := lib.Self()
	os := &OS{
		mon:      mon,
		self:     dom,
		lib:      lib,
		procs:    make(map[Pid]*Process),
		running:  make(map[phys.CoreID]*Process),
		pipes:    make(map[uint64]*pipe),
		nextPid:  1,
		nextPipe: 1,
	}
	if err := mon.SetSyscallHandler(dom, dom, os.handleSyscall); err != nil {
		return nil, err
	}
	return os, nil
}

// Client exposes the OS's libtyche client (the OS uses it to spawn
// monitor-level compartments alongside its processes).
func (o *OS) Client() *libtyche.Client { return o.lib }

// Stats returns the OS event counters.
func (o *OS) Stats() Stats { return o.stats }

// Domain returns the domain the OS kernel runs as.
func (o *OS) Domain() core.DomainID { return o.self }

// Process returns the process record for pid.
func (o *OS) Process(pid Pid) (*Process, error) {
	p, ok := o.procs[pid]
	if !ok {
		return nil, fmt.Errorf("oskit: no process %d", pid)
	}
	return p, nil
}

// Processes lists all pids in ascending order.
func (o *OS) Processes() []Pid {
	out := make([]Pid, 0, len(o.procs))
	for pid := range o.procs {
		out = append(out, pid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Spawn creates a process from user code with dataPages of zeroed data.
// The process's first-level filter confines it to its own code (rx) and
// data (rw); register r9 carries the data base address at start.
func (o *OS) Spawn(name string, codeAt func(base phys.Addr) []byte, codePages, dataPages uint64) (Pid, error) {
	if codePages == 0 {
		return 0, fmt.Errorf("oskit: process %q needs code pages", name)
	}
	code, err := o.lib.Alloc(codePages)
	if err != nil {
		return 0, err
	}
	var data phys.Region
	if dataPages > 0 {
		data, err = o.lib.Alloc(dataPages)
		if err != nil {
			o.lib.Heap().Free(code)
			return 0, err
		}
	}
	bytes := codeAt(code.Start)
	if uint64(len(bytes)) > code.Size() {
		o.freeProcMem(code, data)
		return 0, fmt.Errorf("oskit: %q code (%d bytes) exceeds %d pages", name, len(bytes), codePages)
	}
	if err := o.lib.Write(code.Start, bytes); err != nil {
		o.freeProcMem(code, data)
		return 0, err
	}
	filter := hw.NewEPT()
	if err := filter.Map(code, hw.PermRX); err != nil {
		o.freeProcMem(code, data)
		return 0, err
	}
	if !data.Empty() {
		if err := filter.Map(data, hw.PermRW); err != nil {
			o.freeProcMem(code, data)
			return 0, err
		}
	}
	p := &Process{
		pid: o.nextPid, name: name, code: code, data: data, filter: filter,
		pc: code.Start,
	}
	p.regs[9] = uint64(data.Start)
	o.nextPid++
	o.procs[p.pid] = p
	o.runq = append(o.runq, p.pid)
	o.stats.Spawns++
	return p.pid, nil
}

func (o *OS) freeProcMem(code, data phys.Region) {
	o.lib.Heap().Free(code)
	if !data.Empty() {
		o.lib.Heap().Free(data)
	}
}

// Reap frees an exited or faulted process's memory.
func (o *OS) Reap(pid Pid) error {
	p, err := o.Process(pid)
	if err != nil {
		return err
	}
	if p.state == ProcReady {
		return fmt.Errorf("oskit: process %d still runnable", pid)
	}
	o.freeProcMem(p.code, p.data)
	for _, r := range p.brk {
		o.lib.Heap().Free(r)
	}
	delete(o.procs, pid)
	return nil
}

// Runnable reports whether any process is ready.
func (o *OS) Runnable() bool { return len(o.runq) > 0 }

// Schedule picks the next ready process round-robin and runs it on the
// core for up to quantum instructions. It returns the pid that ran and
// whether it is still runnable. The OS domain must already be current
// on the core (Launch it first).
func (o *OS) Schedule(coreID phys.CoreID, quantum int) (Pid, bool, error) {
	if len(o.runq) == 0 {
		return 0, false, errors.New("oskit: run queue empty")
	}
	pid := o.runq[0]
	o.runq = o.runq[1:]
	p := o.procs[pid]

	mach := o.mon.Machine()
	cpu := mach.Core(coreID)
	if cpu == nil {
		return 0, false, fmt.Errorf("oskit: no core %v", coreID)
	}
	if cur, ok := o.mon.Current(coreID); !ok || cur != o.self {
		return 0, false, fmt.Errorf("oskit: OS domain %d not current on %v", o.self, coreID)
	}
	// Context switch: install the process's first-level view. The cost
	// model charges the scheduler decision, two register-file moves and
	// the CR3-style switch.
	ctx, err := o.mon.DomainContext(o.self, o.self, coreID)
	if err != nil {
		return 0, false, err
	}
	mach.Clock.Advance(mach.Cost.SchedPick + 2*mach.Cost.CtxSave + mach.Cost.TLBFlush)
	ctx.OSFilter = p.filter
	cpu.Regs = p.regs
	cpu.PC = p.pc
	cpu.Ring = hw.RingUser
	cpu.ClearHalt()
	// Preemption is architectural: the kernel arms the core's one-shot
	// timer for the slice (the RunCore budget is a simulator backstop).
	cpu.ArmTimer(quantum)
	o.running[coreID] = p
	o.stats.Switches++

	res, err := o.mon.RunCore(coreID, quantum*4+16)
	cpu.ArmTimer(0)
	o.running[coreID] = nil
	// Save user state back.
	p.regs = cpu.Regs
	p.pc = cpu.PC

	switch {
	case errors.Is(err, errExit):
		p.state = ProcExited
		return pid, false, nil
	case errors.Is(err, errYield),
		err == nil && res.Trap.Kind == hw.TrapNone,
		err == nil && res.Trap.Kind == hw.TrapTimer:
		// Yield, timer preemption, or budget expiry: requeue.
		o.runq = append(o.runq, pid)
		return pid, true, nil
	case err != nil:
		return pid, false, err
	case res.Trap.Kind == hw.TrapFault, res.Trap.Kind == hw.TrapIllegal:
		p.state = ProcFaulted
		p.fault = res.Trap
		return pid, false, nil
	case res.Trap.Kind == hw.TrapHalt:
		// HLT from user mode: treat as exit 0 (the idle convention).
		p.state = ProcExited
		return pid, false, nil
	default:
		return pid, false, fmt.Errorf("oskit: unexpected run result %+v", res)
	}
}

// RunAll schedules until the run queue drains or maxSlices quanta have
// been consumed.
func (o *OS) RunAll(coreID phys.CoreID, quantum, maxSlices int) error {
	for i := 0; i < maxSlices && o.Runnable(); i++ {
		if _, _, err := o.Schedule(coreID, quantum); err != nil {
			return err
		}
	}
	return nil
}

// handleSyscall is the domain's ring-0 trap handler.
func (o *OS) handleSyscall(c *hw.Core) error {
	o.stats.Syscalls++
	p := o.running[c.ID()]
	if p == nil {
		return fmt.Errorf("oskit: syscall with no running process on %v", c.ID())
	}
	switch c.Regs[0] {
	case SysExit:
		p.exitCode = c.Regs[1]
		return errExit
	case SysLog:
		p.logs = append(p.logs, c.Regs[1])
		c.Regs[0] = 0
	case SysYield:
		return errYield
	case SysGetPid:
		c.Regs[0] = 0
		c.Regs[1] = uint64(p.pid)
	default:
		if !o.handleExtendedSyscall(c, p) {
			c.Regs[0] = ^uint64(0) // ENOSYS
		}
	}
	return nil
}

// KernelRead is the privileged-bypass probe (§2.2): the kernel, as the
// domain's most privileged software, reads arbitrary memory *within its
// domain* regardless of process filters. Whether it succeeds outside —
// e.g. on an enclave's pages — is decided by the monitor's second-level
// filter, which is exactly experiment C8.
func (o *OS) KernelRead(a phys.Addr, n uint64) ([]byte, error) {
	return o.mon.CopyFrom(o.self, a, n)
}
