package cap

import "sort"

// Two-phase revocation for the monitor's epoch-based reclamation scheme.
//
// The classic Revoke/RevokeOwner unlink a subtree and hand back cleanup
// actions in one exclusive critical section — correct, but it forces
// the caller to hold everything else out while the irreversible effects
// (scrub, shootdown, hardware resync) run. The epoch scheme splits the
// operation into the RCU phases:
//
//   - Detach / DetachOwner — the *publish*: the subtree's nodes leave
//     the lock-free index (the owners lose access and every query stops
//     seeing them), but the lineage links stay in place. In particular a
//     granted child keeps hanging off its parent, so the parent's
//     effective regions still exclude the granted range: the grant
//     suspension persists and the parent cannot re-delegate the region
//     while the old owner's copy is being scrubbed.
//   - Release — after the grace period and the scrub: unlink the
//     detached tops from their live parents, restoring the parents'
//     effective access. The caller resynchronises the affected owners'
//     hardware immediately after, so Release itself does not bump the
//     generation — the interim staleness is in the safe (more
//     restrictive) direction.
//   - Reclaim — after a second grace period (the monitor's deferred-free
//     list): sever the internal links of the limbo nodes so the records
//     can be recycled. Until then a reader that picked up a node pointer
//     before the detach can still walk immutable identity fields safely.
//
// All three run under the structural writer lock and are short; the
// monitor serialises them per destructive operation with its own revMu.

// Detached holds a detached-but-not-yet-released set of capability
// subtrees: the output of Detach/DetachOwner, consumed by Release and
// Reclaim in that order.
type Detached struct {
	tops    []*node
	all     []*node
	actions []CleanupAction
	parents []OwnerID
}

// Actions returns the cleanup actions for the detached subtrees in
// execution order (children first), exactly as Revoke would have
// returned them.
func (d *Detached) Actions() []CleanupAction {
	if d == nil {
		return nil
	}
	return d.actions
}

// Empty reports whether the detach found nothing to revoke.
func (d *Detached) Empty() bool { return d == nil || len(d.all) == 0 }

// NumNodes returns how many capability records the detach put in limbo.
func (d *Detached) NumNodes() int {
	if d == nil {
		return 0
	}
	return len(d.all)
}

// Owners returns the distinct owners the detach's cleanup actions
// touch, sorted ascending — the set whose hardware state the caller
// must resynchronise after Release. Batch consumers (the monitor's
// parallel drain round retires many Detached under one grace period)
// union these instead of re-walking every action list.
func (d *Detached) Owners() []OwnerID {
	if d == nil || len(d.actions) == 0 {
		return nil
	}
	seen := make(map[OwnerID]bool, 4)
	out := make([]OwnerID, 0, 4)
	for _, a := range d.actions {
		if !seen[a.Owner] {
			seen[a.Owner] = true
			out = append(out, a.Owner)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ParentOwners returns the distinct owners of the surviving parents the
// detached tops hang off — the grantors whose suspended access Release
// restores. Their hardware must be resynchronised after Release just
// like the detached owners': the capability space says they have the
// granted-back regions again, but their filters were programmed while
// the suspension was in force. Captured at detach time, under the
// structural lock.
func (d *Detached) ParentOwners() []OwnerID {
	if d == nil || len(d.parents) == 0 {
		return nil
	}
	seen := make(map[OwnerID]bool, len(d.parents))
	out := make([]OwnerID, 0, len(d.parents))
	for _, o := range d.parents {
		if !seen[o] {
			seen[o] = true
			out = append(out, o)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// detachSubtree walks children-first, removing every node from the
// index and marking it detached, without touching any lineage link.
// Caller holds the structural writer lock.
func (s *Space) detachSubtree(n *node, det *Detached) {
	for _, c := range n.children {
		if c.detached {
			continue
		}
		s.detachSubtree(c, det)
	}
	n.detached = true
	s.remove(n.id)
	det.all = append(det.all, n)
	det.actions = append(det.actions, CleanupAction{
		Node: n.id, Owner: n.owner, Resource: n.res, Cleanup: n.cleanup,
	})
}

// Detach is the publish step of a two-phase Revoke: the capability and
// its entire derivation subtree vanish from the index (one generation
// bump, same as Revoke), but stay linked to the lineage forest so grant
// suspensions persist until Release.
func (s *Space) Detach(id NodeID) (*Detached, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, err := s.get(id)
	if err != nil {
		return nil, err
	}
	det := &Detached{}
	s.detachSubtree(n, det)
	det.tops = append(det.tops, n)
	if n.parent != nil && !n.parent.detached {
		det.parents = append(det.parents, n.parent.owner)
	}
	s.limbo.Add(int64(len(det.all)))
	s.mutate()
	return det, nil
}

// DetachOwner is the publish step of a two-phase RevokeOwner: every
// capability owned by owner (and everything derived from those) leaves
// the index; the owner's seal flag is cleared. Used when a domain is
// killed.
func (s *Space) DetachOwner(owner OwnerID) *Detached {
	s.mu.Lock()
	defer s.mu.Unlock()
	det := &Detached{}
	// Collect tops first: the walk mutates the node index.
	var tops []*node
	s.nodes.Range(func(_, v any) bool {
		n := v.(*node)
		if n.owner == owner {
			// Skip nodes whose ancestor is also being detached; the
			// subtree walk will reach them.
			anc := n.parent
			covered := false
			for anc != nil {
				if anc.owner == owner {
					covered = true
					break
				}
				anc = anc.parent
			}
			if !covered {
				tops = append(tops, n)
			}
		}
		return true
	})
	sort.Slice(tops, func(i, j int) bool { return tops[i].id < tops[j].id })
	for _, n := range tops {
		if _, ok := s.nodes.Load(n.id); !ok {
			continue // already detached via an earlier top's subtree
		}
		s.detachSubtree(n, det)
		det.tops = append(det.tops, n)
		if n.parent != nil && !n.parent.detached {
			det.parents = append(det.parents, n.parent.owner)
		}
	}
	if len(det.actions) > 0 {
		s.mutate()
	}
	s.sealed.Delete(owner)
	s.limbo.Add(int64(len(det.all)))
	return det
}

// Release unlinks the detached tops from their surviving parents,
// restoring the parents' effective access to anything the detached
// subtrees had been granted. Called after the grace period and after
// the revoked state has been scrubbed. Release does not bump the
// generation: it only widens access back toward the parents, and the
// monitor resynchronises the affected owners' hardware immediately
// after, so any interim staleness is in the restrictive direction.
func (s *Space) Release(det *Detached) {
	if det.Empty() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, n := range det.tops {
		if n.parent != nil && !n.parent.detached {
			n.parent.children = removeChild(n.parent.children, n)
		}
	}
}

// Reclaim severs the limbo nodes' internal links so the records can be
// collected. Must run only after every reader that could have picked up
// a node pointer before the detach has quiesced — the monitor calls it
// from its epoch deferred-free list.
func (s *Space) Reclaim(det *Detached) {
	if det.Empty() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, n := range det.all {
		n.children = nil
		n.parent = nil
	}
	s.limbo.Add(-int64(len(det.all)))
	det.tops, det.all = nil, nil
}

// LimboNodes returns how many detached capability records await
// Reclaim — the epoch engine's reclamation backlog.
func (s *Space) LimboNodes() int { return int(s.limbo.Load()) }
