package cap

import (
	"fmt"
	"sort"
	"strings"

	"github.com/tyche-sim/tyche/internal/phys"
)

// RegionCount is one entry of the system-wide reference-count view: a
// maximal physical region accessed by exactly the listed set of owners.
// This is Figure 4 of the paper: "domain-to-regions mappings and regions
// reference counts". The count is the number of *distinct domains* with
// effective access — the quantity verifiers use to judge controlled
// sharing ("exclusively owned (ref. count 1)" / "shared among themselves
// (ref. count 2)", §3.1).
type RegionCount struct {
	Region phys.Region
	Count  int
	Owners []OwnerID // sorted
}

func (rc RegionCount) String() string {
	parts := make([]string, len(rc.Owners))
	for i, o := range rc.Owners {
		parts[i] = fmt.Sprintf("d%d", o)
	}
	return fmt.Sprintf("%v refs=%d {%s}", rc.Region, rc.Count, strings.Join(parts, ","))
}

// RefCounts computes the memory reference-count map: maximal regions with
// a constant owner set, in address order. Regions with no owner are
// omitted.
func (s *Space) RefCounts() []RegionCount {
	s.mu.RLock()
	defer s.mu.RUnlock()
	defer s.rlockAll()()
	return s.refCounts()
}

// refCounts requires the sweep lock (all shards) or the structural
// writer lock.
func (s *Space) refCounts() []RegionCount {
	// Per-owner union of effective coverage (a single owner holding two
	// overlapping capabilities still counts once).
	perOwner := make(map[OwnerID][]phys.Region)
	s.nodes.Range(func(_, v any) bool {
		n := v.(*node)
		if n.res.Kind != ResMemory {
			return true
		}
		perOwner[n.owner] = append(perOwner[n.owner], s.effectiveRegions(n)...)
		return true
	})
	type event struct {
		at    phys.Addr
		owner OwnerID
		open  bool
	}
	var events []event
	for o, regs := range perOwner {
		for _, r := range phys.NormalizeRegions(regs) {
			events = append(events, event{r.Start, o, true}, event{r.End, o, false})
		}
	}
	if len(events) == 0 {
		return nil
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].at != events[j].at {
			return events[i].at < events[j].at
		}
		// Close before open at the same address so adjacency is exact.
		return !events[i].open && events[j].open
	})
	active := make(map[OwnerID]bool)
	var out []RegionCount
	var prev phys.Addr
	flush := func(upto phys.Addr) {
		if len(active) == 0 || upto <= prev {
			return
		}
		owners := make([]OwnerID, 0, len(active))
		for o := range active {
			owners = append(owners, o)
		}
		sort.Slice(owners, func(i, j int) bool { return owners[i] < owners[j] })
		seg := RegionCount{Region: phys.Region{Start: prev, End: upto}, Count: len(owners), Owners: owners}
		if n := len(out); n > 0 && out[n-1].Region.End == seg.Region.Start && sameOwners(out[n-1].Owners, owners) {
			out[n-1].Region.End = seg.Region.End
			return
		}
		out = append(out, seg)
	}
	for _, e := range events {
		flush(e.at)
		prev = e.at
		if e.open {
			active[e.owner] = true
		} else {
			delete(active, e.owner)
		}
	}
	return out
}

func sameOwners(a, b []OwnerID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// RefCountAt returns the number of distinct owners with effective access
// at address a.
func (s *Space) RefCountAt(a phys.Addr) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	defer s.rlockAll()()
	owners := make(map[OwnerID]bool)
	s.nodes.Range(func(_, v any) bool {
		n := v.(*node)
		if n.res.Kind != ResMemory || owners[n.owner] || !n.res.Mem.Contains(a) {
			return true
		}
		for _, r := range s.effectiveRegions(n) {
			if r.Contains(a) {
				owners[n.owner] = true
				break
			}
		}
		return true
	})
	return len(owners)
}

// RegionRefCount returns the maximum reference count over any byte of r
// (the conservative value a verifier uses: exclusive ownership requires
// the max to be 1).
func (s *Space) RegionRefCount(r phys.Region) int {
	max := 0
	for _, rc := range s.RefCounts() {
		if rc.Region.Overlaps(r) && rc.Count > max {
			max = rc.Count
		}
	}
	return max
}

// CoreRefCount returns the number of distinct owners holding RightRun on
// core.
func (s *Space) CoreRefCount(core phys.CoreID) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	defer s.rlockAll()()
	owners := make(map[OwnerID]bool)
	s.nodes.Range(func(_, v any) bool {
		n := v.(*node)
		if n.res.Kind == ResCore && n.res.Core == core && n.rights.Has(RightRun) && !s.coreGrantedAway(n) {
			owners[n.owner] = true
		}
		return true
	})
	return len(owners)
}

// DeviceRefCount returns the number of distinct owners holding RightUse
// on dev.
func (s *Space) DeviceRefCount(dev phys.DeviceID) int {
	return len(s.deviceHolders(dev, RightUse))
}

// DeviceDMAHolders returns the owners with live (not granted-away) DMA
// rights on dev, sorted. The backends build the device's IOMMU context
// from exactly this set.
func (s *Space) DeviceDMAHolders(dev phys.DeviceID) []OwnerID {
	return s.deviceHolders(dev, RightDMA)
}

// DeviceUsers returns the owners with live RightUse on dev, sorted. The
// monitor routes the device's interrupts to this set.
func (s *Space) DeviceUsers(dev phys.DeviceID) []OwnerID {
	return s.deviceHolders(dev, RightUse)
}

// deviceHolders returns owners holding `want` on dev through a node
// whose device has not been granted away.
func (s *Space) deviceHolders(dev phys.DeviceID, want Rights) []OwnerID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	defer s.rlockAll()()
	set := make(map[OwnerID]bool)
	s.nodes.Range(func(_, v any) bool {
		n := v.(*node)
		if n.res.Kind != ResDevice || n.res.Device != dev || !n.rights.Has(want) {
			return true
		}
		granted := false
		for _, c := range n.children {
			if c.kind == KindGranted && c.res.Kind == ResDevice && c.res.Device == dev {
				granted = true
				break
			}
		}
		if !granted {
			set[n.owner] = true
		}
		return true
	})
	out := make([]OwnerID, 0, len(set))
	for o := range set {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
