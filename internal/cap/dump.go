package cap

import (
	"fmt"
	"sort"
	"strings"
)

// TreeString renders the capability lineage forest — the structure
// grant/share/revoke operate on (§4.1) — for diagnostics and the
// tyche-sim dump. Roots are boot-time capabilities; indentation shows
// derivation.
func (s *Space) TreeString() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	defer s.rlockAll()()
	var roots []*node
	s.nodes.Range(func(_, v any) bool {
		if n := v.(*node); n.parent == nil {
			roots = append(roots, n)
		}
		return true
	})
	sort.Slice(roots, func(i, j int) bool { return roots[i].id < roots[j].id })
	var b strings.Builder
	for _, r := range roots {
		s.writeNode(&b, r, 0)
	}
	return b.String()
}

func (s *Space) writeNode(b *strings.Builder, n *node, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	sealed := ""
	if s.isSealed(n.owner) {
		sealed = " (sealed)"
	}
	fmt.Fprintf(b, "n%d d%d%s %s %v [%v]", n.id, n.owner, sealed, n.kind, n.res, n.rights)
	if n.cleanup != CleanNone {
		fmt.Fprintf(b, " cleanup=%v", n.cleanup)
	}
	b.WriteByte('\n')
	children := append([]*node(nil), n.children...)
	sort.Slice(children, func(i, j int) bool { return children[i].id < children[j].id })
	for _, c := range children {
		s.writeNode(b, c, depth+1)
	}
}
