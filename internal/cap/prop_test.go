package cap

import (
	"math/rand"
	"testing"

	"github.com/tyche-sim/tyche/internal/phys"
)

// propHarness drives a random but valid sequence of capability
// operations and checks the model's global invariants after every step.
// This is the executable counterpart of the paper's "meant to be
// formally verified" capability engine (§4.1): the invariants are the
// properties a verification effort would prove.
type propHarness struct {
	t   *testing.T
	s   *Space
	rng *rand.Rand
	ids []NodeID
}

const propPages = 64 // property world: 64 pages of physical memory

func (h *propHarness) randomOp() {
	switch h.rng.Intn(10) {
	case 0: // new root (rare: boot-time only in reality)
		start := uint64(h.rng.Intn(propPages / 2))
		pages := uint64(h.rng.Intn(propPages/2) + 1)
		id, err := h.s.CreateRoot(OwnerID(h.rng.Intn(3)+1), mem(start, pages), MemFull, CleanNone)
		if err == nil {
			h.ids = append(h.ids, id)
		}
	case 1, 2, 3, 4: // share
		h.derive(false)
	case 5, 6: // grant
		h.derive(true)
	case 7, 8: // revoke a random node
		if len(h.ids) == 0 {
			return
		}
		id := h.ids[h.rng.Intn(len(h.ids))]
		if _, err := h.s.Revoke(id); err != nil {
			// Node may already be gone via a cascade; that's fine.
			h.compactIDs()
		} else {
			h.compactIDs()
		}
	case 9: // revoke a random owner entirely
		h.s.RevokeOwner(OwnerID(h.rng.Intn(6) + 1))
		h.compactIDs()
	}
}

func (h *propHarness) derive(grant bool) {
	if len(h.ids) == 0 {
		return
	}
	id := h.ids[h.rng.Intn(len(h.ids))]
	info, err := h.s.Node(id)
	if err != nil || info.Resource.Kind != ResMemory {
		return
	}
	r := info.Resource.Mem
	pages := r.Pages()
	if pages == 0 {
		return
	}
	off := uint64(h.rng.Int63n(int64(pages)))
	n := uint64(h.rng.Int63n(int64(pages-off))) + 1
	sub := MemResource(phys.MakeRegion(r.Start+phys.Addr(off*pg), n*pg))
	rights := info.Rights
	if h.rng.Intn(2) == 0 {
		rights &^= RightWrite
	}
	newOwner := OwnerID(h.rng.Intn(6) + 1)
	var nid NodeID
	if grant {
		nid, err = h.s.Grant(id, newOwner, sub, rights, CleanZero)
	} else {
		nid, err = h.s.Share(id, newOwner, sub, rights, CleanNone)
	}
	if err == nil {
		h.ids = append(h.ids, nid)
	}
}

func (h *propHarness) compactIDs() {
	live := h.ids[:0]
	for _, id := range h.ids {
		if _, err := h.s.Node(id); err == nil {
			live = append(live, id)
		}
	}
	h.ids = live
}

// checkInvariants validates the global model invariants.
func (h *propHarness) checkInvariants() {
	t, s := h.t, h.s

	// I1: reference count at every page equals the number of distinct
	// owners with effective access (refcount is an exact sharing audit).
	for pgN := 0; pgN < propPages; pgN += 3 {
		a := phys.Addr(pgN * pg)
		byCount := s.RefCountAt(a)
		brute := 0
		for _, o := range s.Owners() {
			if s.CheckMemAccess(o, a, RightsNone) {
				brute++
			}
		}
		if byCount != brute {
			t.Fatalf("I1 violated at %v: refcount=%d brute=%d", a, byCount, brute)
		}
	}

	// I2: RefCounts segments are disjoint, ordered, and consistent with
	// RefCountAt.
	var prevEnd phys.Addr
	for _, rc := range s.RefCounts() {
		if rc.Region.Start < prevEnd {
			t.Fatalf("I2 violated: overlapping segments in %v", s.RefCounts())
		}
		prevEnd = rc.Region.End
		if got := s.RefCountAt(rc.Region.Start); got != rc.Count {
			t.Fatalf("I2 violated: segment %v but RefCountAt=%d", rc, got)
		}
		if rc.Count != len(rc.Owners) {
			t.Fatalf("I2 violated: count %d != owners %v", rc.Count, rc.Owners)
		}
	}

	// I3: rights only attenuate along lineage, and every child's
	// resource is contained in its parent's.
	for _, o := range s.Owners() {
		for _, inf := range s.OwnerNodes(o) {
			if inf.Parent == 0 {
				continue
			}
			p, err := s.Node(inf.Parent)
			if err != nil {
				t.Fatalf("I3 violated: dangling parent for %d", inf.ID)
			}
			if !inf.Rights.Subset(p.Rights) {
				t.Fatalf("I3 violated: child %v ⊄ parent %v", inf.Rights, p.Rights)
			}
			if !p.Resource.ContainsResource(inf.Resource) {
				t.Fatalf("I3 violated: %v not in %v", inf.Resource, p.Resource)
			}
		}
	}

	// I4: effective regions never include granted-away memory.
	for _, o := range s.Owners() {
		for _, inf := range s.OwnerNodes(o) {
			if inf.Resource.Kind != ResMemory {
				continue
			}
			eff, err := s.EffectiveRegions(inf.ID)
			if err != nil {
				t.Fatal(err)
			}
			for _, cid := range inf.Children {
				c, err := s.Node(cid)
				if err != nil || c.Kind != KindGranted {
					continue
				}
				for _, r := range eff {
					if r.Overlaps(c.Resource.Mem) {
						t.Fatalf("I4 violated: effective %v overlaps grant %v", r, c.Resource.Mem)
					}
				}
			}
		}
	}
}

func TestCapabilityInvariantsRandomOps(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		h := &propHarness{t: t, s: NewSpace(), rng: rand.New(rand.NewSource(seed))}
		// Boot: initial domain owns everything, as on real Tyche.
		root, err := h.s.CreateRoot(1, mem(0, propPages), MemFull, CleanNone)
		if err != nil {
			t.Fatal(err)
		}
		h.ids = append(h.ids, root)
		for step := 0; step < 300; step++ {
			h.randomOp()
			if step%10 == 0 {
				h.checkInvariants()
			}
		}
		h.checkInvariants()
	}
}

// TestRevocationAlwaysTerminatesAndEmpties: random deep/cyclic sharing
// graphs, then revoking the boot capability must empty the space
// entirely (cascading revocation reaches everything derived).
func TestRevocationCascadeReachesEverything(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := NewSpace()
		root, err := s.CreateRoot(1, mem(0, propPages), MemFull, CleanNone)
		if err != nil {
			t.Fatal(err)
		}
		ids := []NodeID{root}
		for i := 0; i < 120; i++ {
			src := ids[rng.Intn(len(ids))]
			info, err := s.Node(src)
			if err != nil {
				continue
			}
			r := info.Resource.Mem
			if r.Pages() == 0 {
				continue
			}
			off := uint64(rng.Int63n(int64(r.Pages())))
			n := uint64(rng.Int63n(int64(r.Pages()-off))) + 1
			sub := MemResource(phys.MakeRegion(r.Start+phys.Addr(off*pg), n*pg))
			// Deliberately create circular owner patterns: share back
			// and forth between owners 1..4.
			if id, err := s.Share(src, OwnerID(rng.Intn(4)+1), sub, info.Rights, CleanZero); err == nil {
				ids = append(ids, id)
			}
		}
		acts, err := s.Revoke(root)
		if err != nil {
			t.Fatal(err)
		}
		if s.NumNodes() != 0 {
			t.Fatalf("seed %d: %d nodes survive root revocation", seed, s.NumNodes())
		}
		if len(acts) == 0 {
			t.Fatal("no cleanup actions emitted")
		}
		// Cleanup order: every node appears after all of its children.
		seen := make(map[NodeID]bool)
		for _, a := range acts {
			seen[a.Node] = true
			_ = a
		}
		if !seen[root] || acts[len(acts)-1].Node != root {
			t.Fatal("root must be cleaned up last")
		}
		if s.RefCountAt(0) != 0 {
			t.Fatal("refcounts must drop to zero")
		}
	}
}

// capState is the observable capability state the revoke-under-fault
// properties compare: the exact refcount segmentation plus a
// brute-force access map for every owner at sampled pages.
type capState struct {
	segs   []RegionCount
	nodes  int
	access map[OwnerID][propPages]bool
}

func captureState(s *Space, owners []OwnerID) capState {
	st := capState{segs: s.RefCounts(), nodes: s.NumNodes(), access: make(map[OwnerID][propPages]bool)}
	for _, o := range owners {
		var m [propPages]bool
		for pgN := 0; pgN < propPages; pgN++ {
			m[pgN] = s.CheckMemAccess(o, phys.Addr(pgN*pg), RightsNone)
		}
		st.access[o] = m
	}
	return st
}

func diffStates(t *testing.T, label string, before, after capState) {
	t.Helper()
	if before.nodes != after.nodes {
		t.Fatalf("%s: node count %d -> %d (leak or double-free)", label, before.nodes, after.nodes)
	}
	if len(before.segs) != len(after.segs) {
		t.Fatalf("%s: refcount map changed shape:\n  %v\n  %v", label, before.segs, after.segs)
	}
	for i := range before.segs {
		b, a := before.segs[i], after.segs[i]
		if b.Region != a.Region || b.Count != a.Count {
			t.Fatalf("%s: segment %d changed: %v -> %v", label, i, b, a)
		}
	}
	for o, bm := range before.access {
		am := after.access[o]
		for pgN := range bm {
			if bm[pgN] != am[pgN] {
				t.Fatalf("%s: owner %d access at page %d changed %v -> %v",
					label, o, pgN, bm[pgN], am[pgN])
			}
		}
	}
}

// TestRevokeOwnerMidGrantNeutrality is the containment path's core
// property (Monitor.destroyDomain calls RevokeOwner on the victim):
// killing an owner at an *arbitrary point* of an in-flight
// grant-and-reshare sequence restores the surviving owners' view
// exactly — no leaked refcount from a half-built chain, no double-free
// from a cascade meeting a direct revocation, and no residual access
// for the victim or anyone who derived from it.
func TestRevokeOwnerMidGrantNeutrality(t *testing.T) {
	const victim, accomplice = OwnerID(9), OwnerID(10)
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := NewSpace()
		root, err := s.CreateRoot(1, mem(0, propPages), MemFull, CleanNone)
		if err != nil {
			t.Fatal(err)
		}
		// Pre-existing survivor topology among owners 1..3.
		base := []NodeID{root}
		for i := 0; i < rng.Intn(8); i++ {
			src := base[rng.Intn(len(base))]
			info, err := s.Node(src)
			if err != nil || info.Resource.Mem.Pages() == 0 {
				continue
			}
			r := info.Resource.Mem
			off := uint64(rng.Int63n(int64(r.Pages())))
			n := uint64(rng.Int63n(int64(r.Pages()-off))) + 1
			sub := MemResource(phys.MakeRegion(r.Start+phys.Addr(off*pg), n*pg))
			if id, err := s.Share(src, OwnerID(rng.Intn(3)+1), sub, info.Rights, CleanNone); err == nil {
				base = append(base, id)
			}
		}
		survivors := []OwnerID{1, 2, 3, victim, accomplice}
		before := captureState(s, survivors)

		// The victim's in-flight activity: receive shares and grants,
		// re-share onward to an accomplice, grant back to survivors. The
		// random op count is the "mid-grant" part — the kill lands after
		// an arbitrary prefix of the chain.
		var vids []NodeID
		steps := rng.Intn(14) + 1
		for i := 0; i < steps; i++ {
			pickSub := func(id NodeID) (Resource, Rights, bool) {
				info, err := s.Node(id)
				if err != nil || info.Resource.Kind != ResMemory || info.Resource.Mem.Pages() == 0 {
					return Resource{}, 0, false
				}
				r := info.Resource.Mem
				off := uint64(rng.Int63n(int64(r.Pages())))
				n := uint64(rng.Int63n(int64(r.Pages()-off))) + 1
				return MemResource(phys.MakeRegion(r.Start+phys.Addr(off*pg), n*pg)), info.Rights, true
			}
			switch {
			case len(vids) == 0 || rng.Intn(3) == 0: // inbound share/grant
				src := base[rng.Intn(len(base))]
				sub, rights, ok := pickSub(src)
				if !ok {
					continue
				}
				var id NodeID
				if rng.Intn(2) == 0 {
					id, err = s.Share(src, victim, sub, rights, CleanZero)
				} else {
					id, err = s.Grant(src, victim, sub, rights, CleanObfuscate)
				}
				if err == nil {
					vids = append(vids, id)
				}
			default: // victim re-derives onward
				src := vids[rng.Intn(len(vids))]
				sub, rights, ok := pickSub(src)
				if !ok {
					continue
				}
				dst := accomplice
				if rng.Intn(3) == 0 {
					dst = OwnerID(rng.Intn(3) + 1)
				}
				if id, err := s.Share(src, dst, sub, rights, CleanFlushTLB); err == nil {
					vids = append(vids, id)
				}
			}
		}

		// The fault: the monitor kills the victim mid-chain.
		s.RevokeOwner(victim)
		// Anything the victim re-shared dies with its lineage; the
		// accomplice's derived-only access must be gone too.
		after := captureState(s, survivors)
		diffStates(t, "kill mid-grant", before, after)
		for pgN := 0; pgN < propPages; pgN++ {
			if s.CheckMemAccess(victim, phys.Addr(pgN*pg), RightsNone) {
				t.Fatalf("seed %d: victim retains access at page %d after kill", seed, pgN)
			}
		}
		// Double-kill is a no-op: no action emitted, nothing changes.
		if acts := s.RevokeOwner(victim); len(acts) != 0 {
			t.Fatalf("seed %d: second RevokeOwner emitted %d cleanups", seed, len(acts))
		}
		diffStates(t, "double kill", after, captureState(s, survivors))
		// Full refcount audit after the cascade.
		for _, rc := range s.RefCounts() {
			if rc.Count != len(rc.Owners) {
				t.Fatalf("seed %d: refcount %d != owners %v", seed, rc.Count, rc.Owners)
			}
		}
	}
}

// Property: Grant then Revoke is access-neutral for every owner.
func TestGrantRevokeNeutrality(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		s := NewSpace()
		rootPages := uint64(rng.Intn(32) + 8)
		root, err := s.CreateRoot(1, mem(0, rootPages), MemFull, CleanNone)
		if err != nil {
			t.Fatal(err)
		}
		// Random pre-existing shares.
		for i := 0; i < rng.Intn(5); i++ {
			off := uint64(rng.Int63n(int64(rootPages)))
			n := uint64(rng.Int63n(int64(rootPages-off))) + 1
			s.Share(root, OwnerID(rng.Intn(3)+2), MemResource(phys.MakeRegion(phys.Addr(off*pg), n*pg)), MemRW, CleanNone)
		}
		snapshot := s.RefCounts()
		off := uint64(rng.Int63n(int64(rootPages)))
		n := uint64(rng.Int63n(int64(rootPages-off))) + 1
		g, err := s.Grant(root, 9, MemResource(phys.MakeRegion(phys.Addr(off*pg), n*pg)), MemRWX, CleanObfuscate)
		if err != nil {
			continue // grant may legitimately fail (e.g. overlap rules)
		}
		if _, err := s.Revoke(g); err != nil {
			t.Fatal(err)
		}
		after := s.RefCounts()
		if len(snapshot) != len(after) {
			t.Fatalf("trial %d: refcount map changed: %v -> %v", trial, snapshot, after)
		}
		for i := range snapshot {
			if snapshot[i].Region != after[i].Region || snapshot[i].Count != after[i].Count {
				t.Fatalf("trial %d: segment changed: %v -> %v", trial, snapshot[i], after[i])
			}
		}
	}
}
