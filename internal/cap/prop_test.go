package cap

import (
	"math/rand"
	"testing"

	"github.com/tyche-sim/tyche/internal/phys"
)

// propHarness drives a random but valid sequence of capability
// operations and checks the model's global invariants after every step.
// This is the executable counterpart of the paper's "meant to be
// formally verified" capability engine (§4.1): the invariants are the
// properties a verification effort would prove.
type propHarness struct {
	t   *testing.T
	s   *Space
	rng *rand.Rand
	ids []NodeID
}

const propPages = 64 // property world: 64 pages of physical memory

func (h *propHarness) randomOp() {
	switch h.rng.Intn(10) {
	case 0: // new root (rare: boot-time only in reality)
		start := uint64(h.rng.Intn(propPages / 2))
		pages := uint64(h.rng.Intn(propPages/2) + 1)
		id, err := h.s.CreateRoot(OwnerID(h.rng.Intn(3)+1), mem(start, pages), MemFull, CleanNone)
		if err == nil {
			h.ids = append(h.ids, id)
		}
	case 1, 2, 3, 4: // share
		h.derive(false)
	case 5, 6: // grant
		h.derive(true)
	case 7, 8: // revoke a random node
		if len(h.ids) == 0 {
			return
		}
		id := h.ids[h.rng.Intn(len(h.ids))]
		if _, err := h.s.Revoke(id); err != nil {
			// Node may already be gone via a cascade; that's fine.
			h.compactIDs()
		} else {
			h.compactIDs()
		}
	case 9: // revoke a random owner entirely
		h.s.RevokeOwner(OwnerID(h.rng.Intn(6) + 1))
		h.compactIDs()
	}
}

func (h *propHarness) derive(grant bool) {
	if len(h.ids) == 0 {
		return
	}
	id := h.ids[h.rng.Intn(len(h.ids))]
	info, err := h.s.Node(id)
	if err != nil || info.Resource.Kind != ResMemory {
		return
	}
	r := info.Resource.Mem
	pages := r.Pages()
	if pages == 0 {
		return
	}
	off := uint64(h.rng.Int63n(int64(pages)))
	n := uint64(h.rng.Int63n(int64(pages-off))) + 1
	sub := MemResource(phys.MakeRegion(r.Start+phys.Addr(off*pg), n*pg))
	rights := info.Rights
	if h.rng.Intn(2) == 0 {
		rights &^= RightWrite
	}
	newOwner := OwnerID(h.rng.Intn(6) + 1)
	var nid NodeID
	if grant {
		nid, err = h.s.Grant(id, newOwner, sub, rights, CleanZero)
	} else {
		nid, err = h.s.Share(id, newOwner, sub, rights, CleanNone)
	}
	if err == nil {
		h.ids = append(h.ids, nid)
	}
}

func (h *propHarness) compactIDs() {
	live := h.ids[:0]
	for _, id := range h.ids {
		if _, err := h.s.Node(id); err == nil {
			live = append(live, id)
		}
	}
	h.ids = live
}

// checkInvariants validates the global model invariants.
func (h *propHarness) checkInvariants() {
	t, s := h.t, h.s

	// I1: reference count at every page equals the number of distinct
	// owners with effective access (refcount is an exact sharing audit).
	for pgN := 0; pgN < propPages; pgN += 3 {
		a := phys.Addr(pgN * pg)
		byCount := s.RefCountAt(a)
		brute := 0
		for _, o := range s.Owners() {
			if s.CheckMemAccess(o, a, RightsNone) {
				brute++
			}
		}
		if byCount != brute {
			t.Fatalf("I1 violated at %v: refcount=%d brute=%d", a, byCount, brute)
		}
	}

	// I2: RefCounts segments are disjoint, ordered, and consistent with
	// RefCountAt.
	var prevEnd phys.Addr
	for _, rc := range s.RefCounts() {
		if rc.Region.Start < prevEnd {
			t.Fatalf("I2 violated: overlapping segments in %v", s.RefCounts())
		}
		prevEnd = rc.Region.End
		if got := s.RefCountAt(rc.Region.Start); got != rc.Count {
			t.Fatalf("I2 violated: segment %v but RefCountAt=%d", rc, got)
		}
		if rc.Count != len(rc.Owners) {
			t.Fatalf("I2 violated: count %d != owners %v", rc.Count, rc.Owners)
		}
	}

	// I3: rights only attenuate along lineage, and every child's
	// resource is contained in its parent's.
	for _, o := range s.Owners() {
		for _, inf := range s.OwnerNodes(o) {
			if inf.Parent == 0 {
				continue
			}
			p, err := s.Node(inf.Parent)
			if err != nil {
				t.Fatalf("I3 violated: dangling parent for %d", inf.ID)
			}
			if !inf.Rights.Subset(p.Rights) {
				t.Fatalf("I3 violated: child %v ⊄ parent %v", inf.Rights, p.Rights)
			}
			if !p.Resource.ContainsResource(inf.Resource) {
				t.Fatalf("I3 violated: %v not in %v", inf.Resource, p.Resource)
			}
		}
	}

	// I4: effective regions never include granted-away memory.
	for _, o := range s.Owners() {
		for _, inf := range s.OwnerNodes(o) {
			if inf.Resource.Kind != ResMemory {
				continue
			}
			eff, err := s.EffectiveRegions(inf.ID)
			if err != nil {
				t.Fatal(err)
			}
			for _, cid := range inf.Children {
				c, err := s.Node(cid)
				if err != nil || c.Kind != KindGranted {
					continue
				}
				for _, r := range eff {
					if r.Overlaps(c.Resource.Mem) {
						t.Fatalf("I4 violated: effective %v overlaps grant %v", r, c.Resource.Mem)
					}
				}
			}
		}
	}
}

func TestCapabilityInvariantsRandomOps(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		h := &propHarness{t: t, s: NewSpace(), rng: rand.New(rand.NewSource(seed))}
		// Boot: initial domain owns everything, as on real Tyche.
		root, err := h.s.CreateRoot(1, mem(0, propPages), MemFull, CleanNone)
		if err != nil {
			t.Fatal(err)
		}
		h.ids = append(h.ids, root)
		for step := 0; step < 300; step++ {
			h.randomOp()
			if step%10 == 0 {
				h.checkInvariants()
			}
		}
		h.checkInvariants()
	}
}

// TestRevocationAlwaysTerminatesAndEmpties: random deep/cyclic sharing
// graphs, then revoking the boot capability must empty the space
// entirely (cascading revocation reaches everything derived).
func TestRevocationCascadeReachesEverything(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := NewSpace()
		root, err := s.CreateRoot(1, mem(0, propPages), MemFull, CleanNone)
		if err != nil {
			t.Fatal(err)
		}
		ids := []NodeID{root}
		for i := 0; i < 120; i++ {
			src := ids[rng.Intn(len(ids))]
			info, err := s.Node(src)
			if err != nil {
				continue
			}
			r := info.Resource.Mem
			if r.Pages() == 0 {
				continue
			}
			off := uint64(rng.Int63n(int64(r.Pages())))
			n := uint64(rng.Int63n(int64(r.Pages()-off))) + 1
			sub := MemResource(phys.MakeRegion(r.Start+phys.Addr(off*pg), n*pg))
			// Deliberately create circular owner patterns: share back
			// and forth between owners 1..4.
			if id, err := s.Share(src, OwnerID(rng.Intn(4)+1), sub, info.Rights, CleanZero); err == nil {
				ids = append(ids, id)
			}
		}
		acts, err := s.Revoke(root)
		if err != nil {
			t.Fatal(err)
		}
		if s.NumNodes() != 0 {
			t.Fatalf("seed %d: %d nodes survive root revocation", seed, s.NumNodes())
		}
		if len(acts) == 0 {
			t.Fatal("no cleanup actions emitted")
		}
		// Cleanup order: every node appears after all of its children.
		seen := make(map[NodeID]bool)
		for _, a := range acts {
			seen[a.Node] = true
			_ = a
		}
		if !seen[root] || acts[len(acts)-1].Node != root {
			t.Fatal("root must be cleaned up last")
		}
		if s.RefCountAt(0) != 0 {
			t.Fatal("refcounts must drop to zero")
		}
	}
}

// Property: Grant then Revoke is access-neutral for every owner.
func TestGrantRevokeNeutrality(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		s := NewSpace()
		rootPages := uint64(rng.Intn(32) + 8)
		root, err := s.CreateRoot(1, mem(0, rootPages), MemFull, CleanNone)
		if err != nil {
			t.Fatal(err)
		}
		// Random pre-existing shares.
		for i := 0; i < rng.Intn(5); i++ {
			off := uint64(rng.Int63n(int64(rootPages)))
			n := uint64(rng.Int63n(int64(rootPages-off))) + 1
			s.Share(root, OwnerID(rng.Intn(3)+2), MemResource(phys.MakeRegion(phys.Addr(off*pg), n*pg)), MemRW, CleanNone)
		}
		snapshot := s.RefCounts()
		off := uint64(rng.Int63n(int64(rootPages)))
		n := uint64(rng.Int63n(int64(rootPages-off))) + 1
		g, err := s.Grant(root, 9, MemResource(phys.MakeRegion(phys.Addr(off*pg), n*pg)), MemRWX, CleanObfuscate)
		if err != nil {
			continue // grant may legitimately fail (e.g. overlap rules)
		}
		if _, err := s.Revoke(g); err != nil {
			t.Fatal(err)
		}
		after := s.RefCounts()
		if len(snapshot) != len(after) {
			t.Fatalf("trial %d: refcount map changed: %v -> %v", trial, snapshot, after)
		}
		for i := range snapshot {
			if snapshot[i].Region != after[i].Region || snapshot[i].Count != after[i].Count {
				t.Fatalf("trial %d: segment changed: %v -> %v", trial, snapshot[i], after[i])
			}
		}
	}
}
