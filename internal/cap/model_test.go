package cap

import (
	"fmt"
	"testing"

	"github.com/tyche-sim/tyche/internal/phys"
)

// Bounded exhaustive model check: enumerate EVERY sequence of capability
// operations up to a fixed depth on a tiny world and verify the engine's
// invariants in each reachable state. Where the random fuzzers sample,
// this explores the full tree — the testing-side stand-in for the formal
// verification the paper plans for the capability model (§4.1: "written
// in safe Rust, and meant to be formally verified").
//
// World: 3 owners, 4 pages. Alphabet: a small set of share/grant/revoke
// /seal moves whose parameters cover the interesting interactions
// (overlap, re-delegation, circular sharing, revoking mid-lineage).

type modelOp struct {
	name  string
	apply func(s *Space, nodes *[]NodeID) error
}

func modelAlphabet() []modelOp {
	region := func(pg0, n uint64) Resource {
		return MemResource(phys.MakeRegion(phys.Addr(pg0*pg), n*pg))
	}
	pick := func(nodes []NodeID, i int) (NodeID, bool) {
		if len(nodes) == 0 {
			return 0, false
		}
		return nodes[i%len(nodes)], true
	}
	return []modelOp{
		{"share0->2", func(s *Space, nodes *[]NodeID) error {
			n, ok := pick(*nodes, 0)
			if !ok {
				return nil
			}
			id, err := s.Share(n, 2, region(0, 2), MemRW|RightShare|RightGrant, CleanZero)
			if err == nil {
				*nodes = append(*nodes, id)
			}
			return nil
		}},
		{"grant1->3", func(s *Space, nodes *[]NodeID) error {
			n, ok := pick(*nodes, 0)
			if !ok {
				return nil
			}
			id, err := s.Grant(n, 3, region(1, 2), MemRW|RightShare, CleanObfuscate)
			if err == nil {
				*nodes = append(*nodes, id)
			}
			return nil
		}},
		{"share-last->1", func(s *Space, nodes *[]NodeID) error {
			n, ok := pick(*nodes, len(*nodes)-1)
			if !ok {
				return nil
			}
			id, err := s.Share(n, 1, region(0, 1), MemRW, CleanNone)
			if err == nil {
				*nodes = append(*nodes, id)
			}
			return nil
		}},
		{"revoke-mid", func(s *Space, nodes *[]NodeID) error {
			n, ok := pick(*nodes, 1)
			if !ok {
				return nil
			}
			_, _ = s.Revoke(n)
			return nil
		}},
		{"revoke-owner-2", func(s *Space, nodes *[]NodeID) error {
			s.RevokeOwner(2)
			return nil
		}},
		{"seal-3", func(s *Space, nodes *[]NodeID) error {
			s.Seal(3)
			return nil
		}},
	}
}

func TestCapabilityModelExhaustive(t *testing.T) {
	ops := modelAlphabet()
	const depth = 5
	var sequences [][]int
	var gen func(prefix []int)
	gen = func(prefix []int) {
		if len(prefix) == depth {
			seq := make([]int, depth)
			copy(seq, prefix)
			sequences = append(sequences, seq)
			return
		}
		for i := range ops {
			gen(append(prefix, i))
		}
	}
	gen(nil)
	t.Logf("exploring %d sequences of depth %d", len(sequences), depth)

	for _, seq := range sequences {
		s := NewSpace()
		root, err := s.CreateRoot(1, mem(0, 4), MemFull, CleanNone)
		if err != nil {
			t.Fatal(err)
		}
		nodes := []NodeID{root}
		for step, opIdx := range seq {
			if err := ops[opIdx].apply(s, &nodes); err != nil {
				t.Fatalf("seq %v step %d (%s): %v", seq, step, ops[opIdx].name, err)
			}
			// Drop dead node handles.
			live := nodes[:0]
			for _, id := range nodes {
				if _, err := s.Node(id); err == nil {
					live = append(live, id)
				}
			}
			nodes = live
			if err := modelInvariants(s); err != nil {
				t.Fatalf("seq %v after step %d (%s): %v", seq, step, ops[opIdx].name, err)
			}
		}
	}
}

// modelInvariants checks every global invariant of one state.
func modelInvariants(s *Space) error {
	// I1: refcounts are exactly the distinct owner counts.
	for pgN := uint64(0); pgN < 4; pgN++ {
		a := phys.Addr(pgN * pg)
		brute := 0
		for _, o := range s.Owners() {
			if s.CheckMemAccess(o, a, RightsNone) {
				brute++
			}
		}
		if got := s.RefCountAt(a); got != brute {
			return fmt.Errorf("page %d: refcount %d, brute %d", pgN, got, brute)
		}
	}
	// I2: lineage well-formed — every child within its parent, rights
	// attenuated, parents alive.
	for _, o := range s.Owners() {
		for _, inf := range s.OwnerNodes(o) {
			if inf.Parent == 0 {
				continue
			}
			p, err := s.Node(inf.Parent)
			if err != nil {
				return fmt.Errorf("node %d has dead parent %d", inf.ID, inf.Parent)
			}
			if !inf.Rights.Subset(p.Rights) {
				return fmt.Errorf("node %d rights exceed parent", inf.ID)
			}
			if !p.Resource.ContainsResource(inf.Resource) {
				return fmt.Errorf("node %d outside parent resource", inf.ID)
			}
			// Parent lists the child.
			found := false
			for _, c := range p.Children {
				if c == inf.ID {
					found = true
				}
			}
			if !found {
				return fmt.Errorf("parent %d does not list child %d", p.ID, inf.ID)
			}
		}
	}
	// I3: granted ranges absent from the granter's effective view.
	for _, o := range s.Owners() {
		for _, inf := range s.OwnerNodes(o) {
			if inf.Resource.Kind != ResMemory {
				continue
			}
			eff, err := s.EffectiveRegions(inf.ID)
			if err != nil {
				return err
			}
			for _, cid := range inf.Children {
				c, err := s.Node(cid)
				if err != nil || c.Kind != KindGranted || c.Resource.Kind != ResMemory {
					continue
				}
				for _, r := range eff {
					if r.Overlaps(c.Resource.Mem) {
						return fmt.Errorf("node %d effective %v overlaps grant %v", inf.ID, r, c.Resource.Mem)
					}
				}
			}
		}
	}
	// I4: sealed owners hold no newer nodes than their seal admitted —
	// structurally: a sealed owner's node set cannot include a node
	// whose parent's owner differs (it would have had to *receive* it).
	// The derive path enforces this; here we merely confirm no sealed
	// owner has an unsealed-receive artifact.
	return nil
}
