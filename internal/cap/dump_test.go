package cap

import (
	"strings"
	"testing"
)

func TestTreeString(t *testing.T) {
	s := NewSpace()
	root := mustRoot(t, s, 1, mem(0, 8), MemFull)
	child, err := s.Share(root, 2, mem(0, 2), MemRW, CleanZero)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Grant(child, 3, mem(0, 1), RightRead, CleanNone); err == nil {
		t.Fatal("grant without RightGrant should fail")
	}
	s.Seal(2)
	out := s.TreeString()
	for _, want := range []string{"n1 d1 root", "n2 d2 (sealed) shared", "cleanup=zero"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
	// Child is indented under its parent.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[1], "  ") {
		t.Fatalf("tree shape wrong:\n%s", out)
	}
}
