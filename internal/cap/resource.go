package cap

import (
	"fmt"

	"github.com/tyche-sim/tyche/internal/phys"
)

// ResourceKind distinguishes the three physical name spaces the monitor
// manages (§3.1: "memory, CPU cores, and PCI devices").
type ResourceKind int

// Resource kinds.
const (
	ResMemory ResourceKind = iota
	ResCore
	ResDevice
)

var resKindNames = [...]string{"memory", "core", "device"}

func (k ResourceKind) String() string {
	if int(k) < len(resKindNames) {
		return resKindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Resource names a physical resource: a memory region, a CPU core, or a
// PCI device. Exactly the field selected by Kind is meaningful.
type Resource struct {
	Kind   ResourceKind
	Mem    phys.Region
	Core   phys.CoreID
	Device phys.DeviceID
}

// MemResource names the memory region r.
func MemResource(r phys.Region) Resource { return Resource{Kind: ResMemory, Mem: r} }

// CoreResource names core c.
func CoreResource(c phys.CoreID) Resource { return Resource{Kind: ResCore, Core: c} }

// DeviceResource names device d.
func DeviceResource(d phys.DeviceID) Resource { return Resource{Kind: ResDevice, Device: d} }

// Validate checks internal consistency.
func (r Resource) Validate() error {
	switch r.Kind {
	case ResMemory:
		return r.Mem.Validate()
	case ResCore, ResDevice:
		return nil
	default:
		return fmt.Errorf("cap: unknown resource kind %v", r.Kind)
	}
}

// ContainsResource reports whether sub is wholly within r: a memory
// subrange, or the identical core/device.
func (r Resource) ContainsResource(sub Resource) bool {
	if r.Kind != sub.Kind {
		return false
	}
	switch r.Kind {
	case ResMemory:
		return r.Mem.ContainsRegion(sub.Mem) && !sub.Mem.Empty()
	case ResCore:
		return r.Core == sub.Core
	case ResDevice:
		return r.Device == sub.Device
	}
	return false
}

// ValidRights returns the rights bits meaningful for this resource kind
// (plus the delegation rights, which apply to all kinds).
func (r Resource) ValidRights() Rights {
	deleg := RightShare | RightGrant
	switch r.Kind {
	case ResMemory:
		return MemRWX | deleg
	case ResCore:
		return RightRun | deleg
	case ResDevice:
		return RightUse | RightDMA | deleg
	}
	return 0
}

func (r Resource) String() string {
	switch r.Kind {
	case ResMemory:
		return fmt.Sprintf("mem%v", r.Mem)
	case ResCore:
		return r.Core.String()
	case ResDevice:
		return r.Device.String()
	}
	return "resource(?)"
}
