package cap

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/tyche-sim/tyche/internal/phys"
)

// OwnerID identifies a capability owner — a trust domain. The capability
// model treats owners as opaque; domain lifecycle lives in the monitor.
type OwnerID uint64

// NodeID identifies one node in the capability lineage tree.
type NodeID uint64

// NodeKind records how a capability came to exist.
type NodeKind int

// Node kinds.
const (
	// KindRoot capabilities are created by the monitor at boot (the
	// initial domain owns all physical resources).
	KindRoot NodeKind = iota
	// KindShared capabilities were derived by Share: parent keeps access.
	KindShared
	// KindGranted capabilities were derived by Grant: the parent's
	// access to the transferred sub-resource is suspended while the
	// grant is active ("granting exclusive control", §3.2).
	KindGranted
)

var nodeKindNames = [...]string{"root", "shared", "granted"}

func (k NodeKind) String() string {
	if int(k) < len(nodeKindNames) {
		return nodeKindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Sentinel errors returned by Space operations.
var (
	ErrNotFound     = errors.New("cap: capability not found")
	ErrRights       = errors.New("cap: rights exceed parent capability")
	ErrNoDelegation = errors.New("cap: capability lacks the needed delegation right")
	ErrSealed       = errors.New("cap: domain is sealed")
	ErrSubresource  = errors.New("cap: requested resource not within (effective) capability")
	ErrInvalid      = errors.New("cap: invalid argument")
)

type node struct {
	// id, owner, res, rights, cleanup, kind, and parent are immutable
	// after creation; children is guarded by the owner's shard lock.
	// detached marks a node removed from the index by a two-phase
	// revocation but not yet released (detach.go); it is written only
	// under the structural writer lock.
	id       NodeID
	owner    OwnerID
	res      Resource
	rights   Rights
	cleanup  Cleanup
	kind     NodeKind
	parent   *node
	children []*node
	detached bool
}

// Info is an exported snapshot of one capability node.
type Info struct {
	ID       NodeID
	Owner    OwnerID
	Resource Resource
	Rights   Rights
	Cleanup  Cleanup
	Kind     NodeKind
	Parent   NodeID // 0 for roots
	Children []NodeID
}

// CleanupAction records one cleanup the monitor must execute as part of
// a revocation: the capability model validates and sequences; the
// hardware backend performs.
type CleanupAction struct {
	Node     NodeID
	Owner    OwnerID
	Resource Resource
	Cleanup  Cleanup
}

func (a CleanupAction) String() string {
	return fmt.Sprintf("cleanup{%v %v owner=%d %v}", a.Cleanup, a.Resource, a.Owner, a.Node)
}

// numShards is the owner-shard count; shardFor masks with it, so it
// must stay a power of two.
const numShards = 16

// Space is the system-wide capability state: every capability of every
// trust domain lives in one lineage forest rooted at the boot-time
// capabilities.
//
// Space is safe for concurrent use. The locking is layered:
//
//   - A structural RWMutex (mu) is held exclusively only by the revoke
//     family (Revoke, RevokeOwner) — the operations that unlink nodes
//     and therefore cannot tolerate any concurrent reader of the
//     lineage forest. Every other operation holds it shared.
//   - Owner shards: owners hash onto numShards RWMutexes. A node's
//     mutable state (its children list) and an owner's seal flag are
//     guarded by the owner's shard. Delegations lock the source and
//     destination owners' shards; cross-owner operations always
//     acquire multiple shards in ascending shard-index order, so
//     concurrent Share/Grant between disjoint owner pairs proceed in
//     parallel without deadlock.
//   - Global sweeps (reference counts, owner enumeration, tree dumps)
//     hold every shard shared, which excludes in-flight delegations
//     and yields a consistent snapshot without the writer lock.
//
// Identity lookups go through a lock-free node index (sync.Map);
// generation, op, and node counters are atomics. The lock order is
// mu before shards, shards in ascending index; no Space lock is ever
// held across a call out of the package.
type Space struct {
	mu     sync.RWMutex // structural: exclusive for revoke paths only
	shards [numShards]sync.RWMutex

	nodes  sync.Map // NodeID -> *node
	sealed sync.Map // OwnerID -> bool

	nextID   atomic.Uint64
	gen      atomic.Uint64
	ops      atomic.Uint64
	numNodes atomic.Int64
	limbo    atomic.Int64 // detached, not yet reclaimed (detach.go)
}

// NewSpace returns an empty capability space.
func NewSpace() *Space {
	s := &Space{}
	s.nextID.Store(1)
	return s
}

func shardFor(o OwnerID) int { return int(o) & (numShards - 1) }

// lockOwners write-locks the shards of the given owners in ascending
// shard order (deduplicated) and returns the unlock function. Callers
// must hold mu (shared or exclusive is irrelevant — shard locks nest
// inside mu).
func (s *Space) lockOwners(owners ...OwnerID) func() {
	var mask uint
	for _, o := range owners {
		mask |= 1 << uint(shardFor(o))
	}
	for i := 0; i < numShards; i++ {
		if mask&(1<<uint(i)) != 0 {
			s.shards[i].Lock()
		}
	}
	return func() {
		for i := numShards - 1; i >= 0; i-- {
			if mask&(1<<uint(i)) != 0 {
				s.shards[i].Unlock()
			}
		}
	}
}

// rlockOwner read-locks one owner's shard.
func (s *Space) rlockOwner(o OwnerID) func() {
	sh := &s.shards[shardFor(o)]
	sh.RLock()
	return sh.RUnlock
}

// rlockAll read-locks every shard in ascending order — the sweep lock
// for queries touching nodes of arbitrary owners.
func (s *Space) rlockAll() func() {
	for i := range s.shards {
		s.shards[i].RLock()
	}
	return func() {
		for i := numShards - 1; i >= 0; i-- {
			s.shards[i].RUnlock()
		}
	}
}

// Generation increments on every mutation; backends use it to detect
// staleness of derived hardware state.
func (s *Space) Generation() uint64 { return s.gen.Load() }

// Ops returns the number of mutating operations performed.
func (s *Space) Ops() uint64 { return s.ops.Load() }

// NumNodes returns the number of live capability nodes.
func (s *Space) NumNodes() int { return int(s.numNodes.Load()) }

func (s *Space) mutate() { s.gen.Add(1); s.ops.Add(1) }

func (s *Space) isSealed(o OwnerID) bool {
	v, ok := s.sealed.Load(o)
	return ok && v.(bool)
}

func (s *Space) insert(n *node) {
	s.nodes.Store(n.id, n)
	s.numNodes.Add(1)
}

func (s *Space) remove(id NodeID) {
	s.nodes.Delete(id)
	s.numNodes.Add(-1)
}

// CreateRoot mints a root capability for owner. Only the monitor calls
// this, at boot, to hand the initial domain the machine's resources.
func (s *Space) CreateRoot(owner OwnerID, res Resource, rights Rights, cleanup Cleanup) (NodeID, error) {
	if err := res.Validate(); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	if !rights.Subset(res.ValidRights()) {
		return 0, fmt.Errorf("%w: rights %v not valid for %v", ErrInvalid, rights, res.Kind)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	unlock := s.lockOwners(owner)
	defer unlock()
	if s.isSealed(owner) {
		return 0, fmt.Errorf("%w: owner %d cannot receive new capabilities", ErrSealed, owner)
	}
	n := &node{id: NodeID(s.nextID.Add(1) - 1), owner: owner, res: res, rights: rights, cleanup: cleanup, kind: KindRoot}
	s.insert(n)
	s.mutate()
	return n.id, nil
}

// get looks a node up in the index. Safe without shard locks: node
// identity fields are immutable, and unlinking only happens under the
// exclusive structural lock.
func (s *Space) get(id NodeID) (*node, error) {
	v, ok := s.nodes.Load(id)
	if !ok {
		return nil, fmt.Errorf("%w: node %d", ErrNotFound, id)
	}
	return v.(*node), nil
}

// derive validates and creates a child capability of kind k.
func (s *Space) derive(id NodeID, newOwner OwnerID, sub Resource, rights Rights, cleanup Cleanup, k NodeKind) (NodeID, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	parent, err := s.get(id)
	if err != nil {
		return 0, err
	}
	// Lock the delegation's two owners — parent's (its children list and
	// effective regions) and the receiver's (its seal flag) — in shard
	// order.
	unlock := s.lockOwners(parent.owner, newOwner)
	defer unlock()
	need := RightShare
	if k == KindGranted {
		need = RightGrant
	}
	if !parent.rights.Has(need) {
		return 0, fmt.Errorf("%w: %v needs %v", ErrNoDelegation, parent.res, need)
	}
	// A sealed domain cannot have its resource set extended (§3.1).
	// Sharing *out of* a sealed domain remains possible: it is a
	// voluntary act of the sealed domain, and it is visible to verifiers
	// because it raises the region's reference count — this is what lets
	// sealed Tyche-enclaves spawn nested enclaves and share pages with
	// them (§4.2).
	if s.isSealed(newOwner) {
		return 0, fmt.Errorf("%w: owner %d cannot receive new capabilities", ErrSealed, newOwner)
	}
	if err := sub.Validate(); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	if !parent.res.ContainsResource(sub) {
		return 0, fmt.Errorf("%w: %v not within %v", ErrSubresource, sub, parent.res)
	}
	if !rights.Subset(parent.rights) {
		return 0, fmt.Errorf("%w: %v ⊄ %v", ErrRights, rights, parent.rights)
	}
	// For memory, the sub-resource must lie within the *effective*
	// region: what the parent granted away is not the parent's to
	// delegate again until revoked.
	if sub.Kind == ResMemory {
		if !regionCovered(sub.Mem, s.effectiveRegions(parent)) {
			return 0, fmt.Errorf("%w: %v already granted away from %v", ErrSubresource, sub.Mem, parent.res)
		}
	} else if k == KindGranted {
		// Granting a core or device suspends the parent's use entirely;
		// re-granting an already-granted core/device is invalid.
		for _, c := range parent.children {
			if c.kind == KindGranted && c.res.Kind == sub.Kind &&
				c.res.Core == sub.Core && c.res.Device == sub.Device {
				return 0, fmt.Errorf("%w: %v already granted away", ErrSubresource, sub)
			}
		}
	}
	n := &node{
		id: NodeID(s.nextID.Add(1) - 1), owner: newOwner, res: sub, rights: rights,
		cleanup: cleanup, kind: k, parent: parent,
	}
	parent.children = append(parent.children, n)
	s.insert(n)
	s.mutate()
	return n.id, nil
}

// Share derives a child capability for newOwner over sub, keeping the
// parent's access intact (controlled sharing: the region's reference
// count rises).
func (s *Space) Share(id NodeID, newOwner OwnerID, sub Resource, rights Rights, cleanup Cleanup) (NodeID, error) {
	return s.derive(id, newOwner, sub, rights, cleanup, KindShared)
}

// Grant derives a child capability for newOwner over sub and suspends
// the parent's access to it: exclusive, revocable transfer.
func (s *Space) Grant(id NodeID, newOwner OwnerID, sub Resource, rights Rights, cleanup Cleanup) (NodeID, error) {
	return s.derive(id, newOwner, sub, rights, cleanup, KindGranted)
}

// Revoke removes the capability and its entire derivation subtree,
// children first, returning the cleanup actions in execution order.
// Because lineage is a tree (every share/grant mints a fresh node),
// revocation terminates even when domains have shared a region back and
// forth in a cycle.
//
// Revocation takes the structural lock exclusively: subtree unlinking
// crosses owner shards arbitrarily, so it is the one operation that
// falls back to the global writer lock.
func (s *Space) Revoke(id NodeID) ([]CleanupAction, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, err := s.get(id)
	if err != nil {
		return nil, err
	}
	var actions []CleanupAction
	s.revokeSubtree(n, &actions)
	if n.parent != nil {
		n.parent.children = removeChild(n.parent.children, n)
	}
	s.mutate()
	return actions, nil
}

func (s *Space) revokeSubtree(n *node, actions *[]CleanupAction) {
	for _, c := range n.children {
		if c.detached {
			continue // in limbo: already counted by its Detach
		}
		s.revokeSubtree(c, actions)
	}
	n.children = nil
	s.remove(n.id)
	*actions = append(*actions, CleanupAction{
		Node: n.id, Owner: n.owner, Resource: n.res, Cleanup: n.cleanup,
	})
}

// RevokeOwner tears down every capability owned by owner (and therefore
// everything ever derived from those capabilities). Used when a domain
// is killed. Like Revoke, it holds the structural lock exclusively.
func (s *Space) RevokeOwner(owner OwnerID) []CleanupAction {
	s.mu.Lock()
	defer s.mu.Unlock()
	var actions []CleanupAction
	// Collect first: revocation mutates the node index.
	var tops []*node
	s.nodes.Range(func(_, v any) bool {
		n := v.(*node)
		if n.owner == owner {
			// Skip nodes whose ancestor is also being revoked; the
			// subtree walk will reach them.
			anc := n.parent
			covered := false
			for anc != nil {
				if anc.owner == owner {
					covered = true
					break
				}
				anc = anc.parent
			}
			if !covered {
				tops = append(tops, n)
			}
		}
		return true
	})
	sort.Slice(tops, func(i, j int) bool { return tops[i].id < tops[j].id })
	for _, n := range tops {
		if _, ok := s.nodes.Load(n.id); !ok {
			continue // already revoked via an earlier top's subtree
		}
		s.revokeSubtree(n, &actions)
		if n.parent != nil {
			n.parent.children = removeChild(n.parent.children, n)
		}
	}
	if len(actions) > 0 {
		s.mutate()
	}
	s.sealed.Delete(owner)
	return actions
}

func removeChild(children []*node, target *node) []*node {
	for i, c := range children {
		if c == target {
			return append(children[:i], children[i+1:]...)
		}
	}
	return children
}

// Seal freezes owner's resource set: it can no longer receive
// capabilities (§3.1: "domains can be sealed, so that their resources
// cannot be extended").
func (s *Space) Seal(owner OwnerID) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	unlock := s.lockOwners(owner)
	defer unlock()
	s.sealed.Store(owner, true)
	s.mutate()
}

// Sealed reports whether owner is sealed.
func (s *Space) Sealed(owner OwnerID) bool { return s.isSealed(owner) }

// Node returns a snapshot of the capability id.
func (s *Space) Node(id NodeID) (Info, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n, err := s.get(id)
	if err != nil {
		return Info{}, err
	}
	defer s.rlockOwner(n.owner)()
	return s.info(n), nil
}

// info snapshots a node; the caller holds the node's owner shard.
func (s *Space) info(n *node) Info {
	inf := Info{
		ID: n.id, Owner: n.owner, Resource: n.res, Rights: n.rights,
		Cleanup: n.cleanup, Kind: n.kind,
	}
	if n.parent != nil {
		inf.Parent = n.parent.id
	}
	for _, c := range n.children {
		if c.detached {
			continue // limbo children are no longer observable
		}
		inf.Children = append(inf.Children, c.id)
	}
	sort.Slice(inf.Children, func(i, j int) bool { return inf.Children[i] < inf.Children[j] })
	return inf
}

// OwnerNodes returns snapshots of every capability owned by owner, in
// ID order.
func (s *Space) OwnerNodes(owner OwnerID) []Info {
	s.mu.RLock()
	defer s.mu.RUnlock()
	defer s.rlockOwner(owner)()
	var out []Info
	s.nodes.Range(func(_, v any) bool {
		if n := v.(*node); n.owner == owner {
			out = append(out, s.info(n))
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// effectiveRegions returns the memory the node actually confers access
// to: its region minus every active granted-out child region. The
// caller holds the node's owner shard (or the structural writer lock).
func (s *Space) effectiveRegions(n *node) []phys.Region {
	if n.res.Kind != ResMemory {
		return nil
	}
	regs := []phys.Region{n.res.Mem}
	for _, c := range n.children {
		if c.kind != KindGranted || c.res.Kind != ResMemory {
			continue
		}
		var next []phys.Region
		for _, r := range regs {
			next = append(next, r.Subtract(c.res.Mem)...)
		}
		regs = next
	}
	return phys.NormalizeRegions(regs)
}

// EffectiveRegions returns the node's effective memory regions.
func (s *Space) EffectiveRegions(id NodeID) ([]phys.Region, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n, err := s.get(id)
	if err != nil {
		return nil, err
	}
	defer s.rlockOwner(n.owner)()
	return s.effectiveRegions(n), nil
}

// regionCovered reports whether want lies entirely within the union of
// regs (regs must be normalized).
func regionCovered(want phys.Region, regs []phys.Region) bool {
	for _, r := range regs {
		if r.ContainsRegion(want) {
			return true
		}
	}
	return false
}

// OwnerMemory returns the union of owner's effective memory regions that
// carry at least the rights in want (normalized).
func (s *Space) OwnerMemory(owner OwnerID, want Rights) []phys.Region {
	s.mu.RLock()
	defer s.mu.RUnlock()
	defer s.rlockOwner(owner)()
	var regs []phys.Region
	s.nodes.Range(func(_, v any) bool {
		n := v.(*node)
		if n.owner != owner || n.res.Kind != ResMemory || !n.rights.Has(want) {
			return true
		}
		regs = append(regs, s.effectiveRegions(n)...)
		return true
	})
	return phys.NormalizeRegions(regs)
}

// MemoryGrants enumerates owner's effective memory access as
// (region, rights) pairs per capability, for backend programming. The
// backend resolves overlaps by OR-ing permissions.
type MemoryGrant struct {
	Region phys.Region
	Rights Rights
	Node   NodeID
}

// OwnerMemoryGrants returns owner's effective per-capability memory
// access, ordered by node ID.
func (s *Space) OwnerMemoryGrants(owner OwnerID) []MemoryGrant {
	s.mu.RLock()
	defer s.mu.RUnlock()
	defer s.rlockOwner(owner)()
	var out []MemoryGrant
	s.nodes.Range(func(_, v any) bool {
		n := v.(*node)
		if n.owner != owner || n.res.Kind != ResMemory {
			return true
		}
		for _, r := range s.effectiveRegions(n) {
			out = append(out, MemoryGrant{Region: r, Rights: n.rights, Node: n.id})
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Region.Start < out[j].Region.Start
	})
	return out
}

// OwnerCores returns the cores owner may run on (holding RightRun),
// minus cores granted away.
func (s *Space) OwnerCores(owner OwnerID) []phys.CoreID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	defer s.rlockOwner(owner)()
	return s.ownerCores(owner)
}

// ownerCores requires the owner's shard (or the structural writer lock).
func (s *Space) ownerCores(owner OwnerID) []phys.CoreID {
	set := make(map[phys.CoreID]bool)
	s.nodes.Range(func(_, v any) bool {
		n := v.(*node)
		if n.owner != owner || n.res.Kind != ResCore || !n.rights.Has(RightRun) {
			return true
		}
		if s.coreGrantedAway(n) {
			return true
		}
		set[n.res.Core] = true
		return true
	})
	out := make([]phys.CoreID, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (s *Space) coreGrantedAway(n *node) bool {
	for _, c := range n.children {
		if c.kind == KindGranted && c.res.Kind == ResCore && c.res.Core == n.res.Core {
			return true
		}
	}
	return false
}

// OwnerHasCore reports whether owner holds RightRun on core.
func (s *Space) OwnerHasCore(owner OwnerID, core phys.CoreID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	defer s.rlockOwner(owner)()
	for _, c := range s.ownerCores(owner) {
		if c == core {
			return true
		}
	}
	return false
}

// OwnerDevices returns the devices owner may use, minus devices granted
// away.
func (s *Space) OwnerDevices(owner OwnerID) []phys.DeviceID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	defer s.rlockOwner(owner)()
	set := make(map[phys.DeviceID]bool)
	s.nodes.Range(func(_, v any) bool {
		n := v.(*node)
		if n.owner != owner || n.res.Kind != ResDevice || !n.rights.Has(RightUse) {
			return true
		}
		granted := false
		for _, c := range n.children {
			if c.kind == KindGranted && c.res.Kind == ResDevice && c.res.Device == n.res.Device {
				granted = true
				break
			}
		}
		if !granted {
			set[n.res.Device] = true
		}
		return true
	})
	out := make([]phys.DeviceID, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// OwnerHasDevice reports whether owner holds RightUse on dev.
func (s *Space) OwnerHasDevice(owner OwnerID, dev phys.DeviceID) bool {
	for _, d := range s.OwnerDevices(owner) {
		if d == dev {
			return true
		}
	}
	return false
}

// CheckMemAccess reports whether owner has effective access with rights
// want at address a.
func (s *Space) CheckMemAccess(owner OwnerID, a phys.Addr, want Rights) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	defer s.rlockOwner(owner)()
	found := false
	s.nodes.Range(func(_, v any) bool {
		n := v.(*node)
		if n.owner != owner || n.res.Kind != ResMemory || !n.rights.Has(want) {
			return true
		}
		if !n.res.Mem.Contains(a) {
			return true
		}
		for _, r := range s.effectiveRegions(n) {
			if r.Contains(a) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// Owners returns every owner holding at least one capability, sorted.
func (s *Space) Owners() []OwnerID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	defer s.rlockAll()()
	set := make(map[OwnerID]bool)
	s.nodes.Range(func(_, v any) bool {
		set[v.(*node).owner] = true
		return true
	})
	out := make([]OwnerID, 0, len(set))
	for o := range set {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
