package cap

import (
	"errors"
	"fmt"
	"sort"

	"github.com/tyche-sim/tyche/internal/phys"
)

// OwnerID identifies a capability owner — a trust domain. The capability
// model treats owners as opaque; domain lifecycle lives in the monitor.
type OwnerID uint64

// NodeID identifies one node in the capability lineage tree.
type NodeID uint64

// NodeKind records how a capability came to exist.
type NodeKind int

// Node kinds.
const (
	// KindRoot capabilities are created by the monitor at boot (the
	// initial domain owns all physical resources).
	KindRoot NodeKind = iota
	// KindShared capabilities were derived by Share: parent keeps access.
	KindShared
	// KindGranted capabilities were derived by Grant: the parent's
	// access to the transferred sub-resource is suspended while the
	// grant is active ("granting exclusive control", §3.2).
	KindGranted
)

var nodeKindNames = [...]string{"root", "shared", "granted"}

func (k NodeKind) String() string {
	if int(k) < len(nodeKindNames) {
		return nodeKindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Sentinel errors returned by Space operations.
var (
	ErrNotFound     = errors.New("cap: capability not found")
	ErrRights       = errors.New("cap: rights exceed parent capability")
	ErrNoDelegation = errors.New("cap: capability lacks the needed delegation right")
	ErrSealed       = errors.New("cap: domain is sealed")
	ErrSubresource  = errors.New("cap: requested resource not within (effective) capability")
	ErrInvalid      = errors.New("cap: invalid argument")
)

type node struct {
	id       NodeID
	owner    OwnerID
	res      Resource
	rights   Rights
	cleanup  Cleanup
	kind     NodeKind
	parent   *node
	children []*node
}

// Info is an exported snapshot of one capability node.
type Info struct {
	ID       NodeID
	Owner    OwnerID
	Resource Resource
	Rights   Rights
	Cleanup  Cleanup
	Kind     NodeKind
	Parent   NodeID // 0 for roots
	Children []NodeID
}

// CleanupAction records one cleanup the monitor must execute as part of
// a revocation: the capability model validates and sequences; the
// hardware backend performs.
type CleanupAction struct {
	Node     NodeID
	Owner    OwnerID
	Resource Resource
	Cleanup  Cleanup
}

func (a CleanupAction) String() string {
	return fmt.Sprintf("cleanup{%v %v owner=%d %v}", a.Cleanup, a.Resource, a.Owner, a.Node)
}

// Space is the system-wide capability state: every capability of every
// trust domain lives in one lineage forest rooted at the boot-time
// capabilities.
//
// Space is not safe for concurrent use; the monitor serialises API calls
// (the real monitor takes a global lock around its capability engine).
type Space struct {
	nodes  map[NodeID]*node
	nextID NodeID
	sealed map[OwnerID]bool
	gen    uint64

	ops uint64 // total mutating operations, for bench reporting
}

// NewSpace returns an empty capability space.
func NewSpace() *Space {
	return &Space{
		nodes:  make(map[NodeID]*node),
		sealed: make(map[OwnerID]bool),
		nextID: 1,
	}
}

// Generation increments on every mutation; backends use it to detect
// staleness of derived hardware state.
func (s *Space) Generation() uint64 { return s.gen }

// Ops returns the number of mutating operations performed.
func (s *Space) Ops() uint64 { return s.ops }

// NumNodes returns the number of live capability nodes.
func (s *Space) NumNodes() int { return len(s.nodes) }

func (s *Space) mutate() { s.gen++; s.ops++ }

// CreateRoot mints a root capability for owner. Only the monitor calls
// this, at boot, to hand the initial domain the machine's resources.
func (s *Space) CreateRoot(owner OwnerID, res Resource, rights Rights, cleanup Cleanup) (NodeID, error) {
	if err := res.Validate(); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	if !rights.Subset(res.ValidRights()) {
		return 0, fmt.Errorf("%w: rights %v not valid for %v", ErrInvalid, rights, res.Kind)
	}
	if s.sealed[owner] {
		return 0, fmt.Errorf("%w: owner %d cannot receive new capabilities", ErrSealed, owner)
	}
	n := &node{id: s.nextID, owner: owner, res: res, rights: rights, cleanup: cleanup, kind: KindRoot}
	s.nextID++
	s.nodes[n.id] = n
	s.mutate()
	return n.id, nil
}

func (s *Space) get(id NodeID) (*node, error) {
	n, ok := s.nodes[id]
	if !ok {
		return nil, fmt.Errorf("%w: node %d", ErrNotFound, id)
	}
	return n, nil
}

// derive validates and creates a child capability of kind k.
func (s *Space) derive(id NodeID, newOwner OwnerID, sub Resource, rights Rights, cleanup Cleanup, k NodeKind) (NodeID, error) {
	parent, err := s.get(id)
	if err != nil {
		return 0, err
	}
	need := RightShare
	if k == KindGranted {
		need = RightGrant
	}
	if !parent.rights.Has(need) {
		return 0, fmt.Errorf("%w: %v needs %v", ErrNoDelegation, parent.res, need)
	}
	// A sealed domain cannot have its resource set extended (§3.1).
	// Sharing *out of* a sealed domain remains possible: it is a
	// voluntary act of the sealed domain, and it is visible to verifiers
	// because it raises the region's reference count — this is what lets
	// sealed Tyche-enclaves spawn nested enclaves and share pages with
	// them (§4.2).
	if s.sealed[newOwner] {
		return 0, fmt.Errorf("%w: owner %d cannot receive new capabilities", ErrSealed, newOwner)
	}
	if err := sub.Validate(); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	if !parent.res.ContainsResource(sub) {
		return 0, fmt.Errorf("%w: %v not within %v", ErrSubresource, sub, parent.res)
	}
	if !rights.Subset(parent.rights) {
		return 0, fmt.Errorf("%w: %v ⊄ %v", ErrRights, rights, parent.rights)
	}
	// For memory, the sub-resource must lie within the *effective*
	// region: what the parent granted away is not the parent's to
	// delegate again until revoked.
	if sub.Kind == ResMemory {
		if !regionCovered(sub.Mem, s.effectiveRegions(parent)) {
			return 0, fmt.Errorf("%w: %v already granted away from %v", ErrSubresource, sub.Mem, parent.res)
		}
	} else if k == KindGranted {
		// Granting a core or device suspends the parent's use entirely;
		// re-granting an already-granted core/device is invalid.
		for _, c := range parent.children {
			if c.kind == KindGranted && c.res.Kind == sub.Kind &&
				c.res.Core == sub.Core && c.res.Device == sub.Device {
				return 0, fmt.Errorf("%w: %v already granted away", ErrSubresource, sub)
			}
		}
	}
	n := &node{
		id: s.nextID, owner: newOwner, res: sub, rights: rights,
		cleanup: cleanup, kind: k, parent: parent,
	}
	s.nextID++
	parent.children = append(parent.children, n)
	s.nodes[n.id] = n
	s.mutate()
	return n.id, nil
}

// Share derives a child capability for newOwner over sub, keeping the
// parent's access intact (controlled sharing: the region's reference
// count rises).
func (s *Space) Share(id NodeID, newOwner OwnerID, sub Resource, rights Rights, cleanup Cleanup) (NodeID, error) {
	return s.derive(id, newOwner, sub, rights, cleanup, KindShared)
}

// Grant derives a child capability for newOwner over sub and suspends
// the parent's access to it: exclusive, revocable transfer.
func (s *Space) Grant(id NodeID, newOwner OwnerID, sub Resource, rights Rights, cleanup Cleanup) (NodeID, error) {
	return s.derive(id, newOwner, sub, rights, cleanup, KindGranted)
}

// Revoke removes the capability and its entire derivation subtree,
// children first, returning the cleanup actions in execution order.
// Because lineage is a tree (every share/grant mints a fresh node),
// revocation terminates even when domains have shared a region back and
// forth in a cycle.
func (s *Space) Revoke(id NodeID) ([]CleanupAction, error) {
	n, err := s.get(id)
	if err != nil {
		return nil, err
	}
	var actions []CleanupAction
	s.revokeSubtree(n, &actions)
	if n.parent != nil {
		n.parent.children = removeChild(n.parent.children, n)
	}
	s.mutate()
	return actions, nil
}

func (s *Space) revokeSubtree(n *node, actions *[]CleanupAction) {
	for _, c := range n.children {
		s.revokeSubtree(c, actions)
	}
	n.children = nil
	delete(s.nodes, n.id)
	*actions = append(*actions, CleanupAction{
		Node: n.id, Owner: n.owner, Resource: n.res, Cleanup: n.cleanup,
	})
}

// RevokeOwner tears down every capability owned by owner (and therefore
// everything ever derived from those capabilities). Used when a domain
// is killed.
func (s *Space) RevokeOwner(owner OwnerID) []CleanupAction {
	var actions []CleanupAction
	// Collect first: revocation mutates the node map.
	var tops []*node
	for _, n := range s.nodes {
		if n.owner == owner {
			// Skip nodes whose ancestor is also being revoked; the
			// subtree walk will reach them.
			anc := n.parent
			covered := false
			for anc != nil {
				if anc.owner == owner {
					covered = true
					break
				}
				anc = anc.parent
			}
			if !covered {
				tops = append(tops, n)
			}
		}
	}
	sort.Slice(tops, func(i, j int) bool { return tops[i].id < tops[j].id })
	for _, n := range tops {
		if _, ok := s.nodes[n.id]; !ok {
			continue // already revoked via an earlier top's subtree
		}
		s.revokeSubtree(n, &actions)
		if n.parent != nil {
			n.parent.children = removeChild(n.parent.children, n)
		}
	}
	if len(actions) > 0 {
		s.mutate()
	}
	delete(s.sealed, owner)
	return actions
}

func removeChild(children []*node, target *node) []*node {
	for i, c := range children {
		if c == target {
			return append(children[:i], children[i+1:]...)
		}
	}
	return children
}

// Seal freezes owner's resource set: it can no longer receive
// capabilities (§3.1: "domains can be sealed, so that their resources
// cannot be extended").
func (s *Space) Seal(owner OwnerID) { s.sealed[owner] = true; s.mutate() }

// Sealed reports whether owner is sealed.
func (s *Space) Sealed(owner OwnerID) bool { return s.sealed[owner] }

// Node returns a snapshot of the capability id.
func (s *Space) Node(id NodeID) (Info, error) {
	n, err := s.get(id)
	if err != nil {
		return Info{}, err
	}
	return s.info(n), nil
}

func (s *Space) info(n *node) Info {
	inf := Info{
		ID: n.id, Owner: n.owner, Resource: n.res, Rights: n.rights,
		Cleanup: n.cleanup, Kind: n.kind,
	}
	if n.parent != nil {
		inf.Parent = n.parent.id
	}
	for _, c := range n.children {
		inf.Children = append(inf.Children, c.id)
	}
	sort.Slice(inf.Children, func(i, j int) bool { return inf.Children[i] < inf.Children[j] })
	return inf
}

// OwnerNodes returns snapshots of every capability owned by owner, in
// ID order.
func (s *Space) OwnerNodes(owner OwnerID) []Info {
	var out []Info
	for _, n := range s.nodes {
		if n.owner == owner {
			out = append(out, s.info(n))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// effectiveRegions returns the memory the node actually confers access
// to: its region minus every active granted-out child region.
func (s *Space) effectiveRegions(n *node) []phys.Region {
	if n.res.Kind != ResMemory {
		return nil
	}
	regs := []phys.Region{n.res.Mem}
	for _, c := range n.children {
		if c.kind != KindGranted || c.res.Kind != ResMemory {
			continue
		}
		var next []phys.Region
		for _, r := range regs {
			next = append(next, r.Subtract(c.res.Mem)...)
		}
		regs = next
	}
	return phys.NormalizeRegions(regs)
}

// EffectiveRegions returns the node's effective memory regions.
func (s *Space) EffectiveRegions(id NodeID) ([]phys.Region, error) {
	n, err := s.get(id)
	if err != nil {
		return nil, err
	}
	return s.effectiveRegions(n), nil
}

// regionCovered reports whether want lies entirely within the union of
// regs (regs must be normalized).
func regionCovered(want phys.Region, regs []phys.Region) bool {
	for _, r := range regs {
		if r.ContainsRegion(want) {
			return true
		}
	}
	return false
}

// OwnerMemory returns the union of owner's effective memory regions that
// carry at least the rights in want (normalized).
func (s *Space) OwnerMemory(owner OwnerID, want Rights) []phys.Region {
	var regs []phys.Region
	for _, n := range s.nodes {
		if n.owner != owner || n.res.Kind != ResMemory || !n.rights.Has(want) {
			continue
		}
		regs = append(regs, s.effectiveRegions(n)...)
	}
	return phys.NormalizeRegions(regs)
}

// MemoryGrants enumerates owner's effective memory access as
// (region, rights) pairs per capability, for backend programming. The
// backend resolves overlaps by OR-ing permissions.
type MemoryGrant struct {
	Region phys.Region
	Rights Rights
	Node   NodeID
}

// OwnerMemoryGrants returns owner's effective per-capability memory
// access, ordered by node ID.
func (s *Space) OwnerMemoryGrants(owner OwnerID) []MemoryGrant {
	var out []MemoryGrant
	for _, n := range s.nodes {
		if n.owner != owner || n.res.Kind != ResMemory {
			continue
		}
		for _, r := range s.effectiveRegions(n) {
			out = append(out, MemoryGrant{Region: r, Rights: n.rights, Node: n.id})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Region.Start < out[j].Region.Start
	})
	return out
}

// OwnerCores returns the cores owner may run on (holding RightRun),
// minus cores granted away.
func (s *Space) OwnerCores(owner OwnerID) []phys.CoreID {
	set := make(map[phys.CoreID]bool)
	for _, n := range s.nodes {
		if n.owner != owner || n.res.Kind != ResCore || !n.rights.Has(RightRun) {
			continue
		}
		if s.coreGrantedAway(n) {
			continue
		}
		set[n.res.Core] = true
	}
	out := make([]phys.CoreID, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (s *Space) coreGrantedAway(n *node) bool {
	for _, c := range n.children {
		if c.kind == KindGranted && c.res.Kind == ResCore && c.res.Core == n.res.Core {
			return true
		}
	}
	return false
}

// OwnerHasCore reports whether owner holds RightRun on core.
func (s *Space) OwnerHasCore(owner OwnerID, core phys.CoreID) bool {
	for _, c := range s.OwnerCores(owner) {
		if c == core {
			return true
		}
	}
	return false
}

// OwnerDevices returns the devices owner may use, minus devices granted
// away.
func (s *Space) OwnerDevices(owner OwnerID) []phys.DeviceID {
	set := make(map[phys.DeviceID]bool)
	for _, n := range s.nodes {
		if n.owner != owner || n.res.Kind != ResDevice || !n.rights.Has(RightUse) {
			continue
		}
		granted := false
		for _, c := range n.children {
			if c.kind == KindGranted && c.res.Kind == ResDevice && c.res.Device == n.res.Device {
				granted = true
				break
			}
		}
		if !granted {
			set[n.res.Device] = true
		}
	}
	out := make([]phys.DeviceID, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// OwnerHasDevice reports whether owner holds RightUse on dev.
func (s *Space) OwnerHasDevice(owner OwnerID, dev phys.DeviceID) bool {
	for _, d := range s.OwnerDevices(owner) {
		if d == dev {
			return true
		}
	}
	return false
}

// CheckMemAccess reports whether owner has effective access with rights
// want at address a.
func (s *Space) CheckMemAccess(owner OwnerID, a phys.Addr, want Rights) bool {
	for _, n := range s.nodes {
		if n.owner != owner || n.res.Kind != ResMemory || !n.rights.Has(want) {
			continue
		}
		if !n.res.Mem.Contains(a) {
			continue
		}
		for _, r := range s.effectiveRegions(n) {
			if r.Contains(a) {
				return true
			}
		}
	}
	return false
}

// Owners returns every owner holding at least one capability, sorted.
func (s *Space) Owners() []OwnerID {
	set := make(map[OwnerID]bool)
	for _, n := range s.nodes {
		set[n.owner] = true
	}
	out := make([]OwnerID, 0, len(set))
	for o := range set {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
