// Package cap implements Tyche's platform-independent capability model
// (§4.1): "a capability model for which grant, share, and revoke
// operations modify a tree structure that represents a capability's
// lineage, maintains per-resource reference counts, and facilitates
// cascading revocations, even in the presence of circular sharing."
//
// The package is deliberately independent of the hardware substrate: it
// validates operations and records the cleanups revocation must perform;
// the monitor's backend translates the results into hardware
// configuration (EPT/PMP/IOMMU updates, zeroing, flushes). This mirrors
// the paper's split between the capability model ("written in safe Rust,
// meant to be formally verified") and the platform-specific backend.
package cap

import "strings"

// Rights is the access-rights bitmask attached to a capability. Rights
// only ever attenuate along the lineage tree: a derived capability's
// rights are a subset of its parent's.
type Rights uint16

// Resource access rights.
const (
	// RightRead permits reading the memory resource.
	RightRead Rights = 1 << iota
	// RightWrite permits writing the memory resource.
	RightWrite
	// RightExec permits instruction fetch from the memory resource.
	RightExec
	// RightRun permits scheduling the owning domain on the core resource
	// (domain transitions target cores the domain holds RightRun on).
	RightRun
	// RightUse permits driving the device resource.
	RightUse
	// RightDMA permits programming the device resource's DMA engine.
	RightDMA
	// RightShare permits deriving shared child capabilities.
	RightShare
	// RightGrant permits granting (exclusive, revocable transfer).
	RightGrant
)

// Common combinations.
const (
	RightsNone Rights = 0
	MemRW             = RightRead | RightWrite
	MemRX             = RightRead | RightExec
	MemRWX            = RightRead | RightWrite | RightExec
	MemFull           = MemRWX | RightShare | RightGrant
	CoreFull          = RightRun | RightShare | RightGrant
	DeviceFull        = RightUse | RightDMA | RightShare | RightGrant
)

// Subset reports whether every right in r is present in of.
func (r Rights) Subset(of Rights) bool { return r&^of == 0 }

// Has reports whether r includes every bit of want.
func (r Rights) Has(want Rights) bool { return r&want == want }

var rightNames = []struct {
	bit  Rights
	name string
}{
	{RightRead, "read"}, {RightWrite, "write"}, {RightExec, "exec"},
	{RightRun, "run"}, {RightUse, "use"}, {RightDMA, "dma"},
	{RightShare, "share"}, {RightGrant, "grant"},
}

func (r Rights) String() string {
	if r == 0 {
		return "none"
	}
	var parts []string
	for _, rn := range rightNames {
		if r&rn.bit != 0 {
			parts = append(parts, rn.name)
		}
	}
	return strings.Join(parts, "+")
}

// Cleanup is the revocation-policy bitmask: the "clean-up" operations
// guaranteed to execute when the capability is revoked (§3.2: "e.g.,
// zeroing-out memory or flushing CPU cache, that is guaranteed to
// execute upon revocation").
type Cleanup uint8

// Cleanup operations.
const (
	// CleanZero zeroes the revoked memory region before the resource
	// returns to the granter, guaranteeing confidentiality of the
	// revoked domain's data.
	CleanZero Cleanup = 1 << iota
	// CleanFlushCache flushes data-cache micro-architectural state,
	// closing cache side channels across the revocation.
	CleanFlushCache
	// CleanFlushTLB invalidates cached translations so no stale TLB
	// entry can outlive the revocation (integrity of enforcement).
	CleanFlushTLB

	// CleanNone performs no cleanup.
	CleanNone Cleanup = 0
	// CleanObfuscate is the paper's "obfuscating revocation policy":
	// together with refcount 1 it yields integrity + confidentiality.
	CleanObfuscate = CleanZero | CleanFlushCache | CleanFlushTLB
)

func (c Cleanup) String() string {
	if c == 0 {
		return "none"
	}
	var parts []string
	if c&CleanZero != 0 {
		parts = append(parts, "zero")
	}
	if c&CleanFlushCache != 0 {
		parts = append(parts, "flush-cache")
	}
	if c&CleanFlushTLB != 0 {
		parts = append(parts, "flush-tlb")
	}
	return strings.Join(parts, "+")
}
