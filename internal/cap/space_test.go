package cap

import (
	"errors"
	"testing"

	"github.com/tyche-sim/tyche/internal/phys"
)

const (
	pg = phys.PageSize
)

func mem(start, pages uint64) Resource {
	return MemResource(phys.MakeRegion(phys.Addr(start*pg), pages*pg))
}

func mustRoot(t *testing.T, s *Space, owner OwnerID, res Resource, rights Rights) NodeID {
	t.Helper()
	id, err := s.CreateRoot(owner, res, rights, CleanNone)
	if err != nil {
		t.Fatalf("CreateRoot: %v", err)
	}
	return id
}

func TestCreateRootValidation(t *testing.T) {
	s := NewSpace()
	if _, err := s.CreateRoot(1, MemResource(phys.Region{Start: 5, End: 10}), MemFull, CleanNone); err == nil {
		t.Fatal("unaligned region accepted")
	}
	if _, err := s.CreateRoot(1, CoreResource(0), MemRWX, CleanNone); err == nil {
		t.Fatal("memory rights on a core accepted")
	}
	if _, err := s.CreateRoot(1, mem(0, 4), RightRun, CleanNone); err == nil {
		t.Fatal("run right on memory accepted")
	}
	s.Seal(7)
	if _, err := s.CreateRoot(7, mem(0, 4), MemFull, CleanNone); !errors.Is(err, ErrSealed) {
		t.Fatalf("sealed owner root: err = %v, want ErrSealed", err)
	}
}

func TestShareKeepsParentAccess(t *testing.T) {
	s := NewSpace()
	root := mustRoot(t, s, 1, mem(0, 8), MemFull)
	child, err := s.Share(root, 2, mem(2, 2), MemRW, CleanZero)
	if err != nil {
		t.Fatal(err)
	}
	if !s.CheckMemAccess(1, phys.Addr(2*pg), RightRead) {
		t.Fatal("sharer must keep access")
	}
	if !s.CheckMemAccess(2, phys.Addr(3*pg), RightWrite) {
		t.Fatal("sharee must gain access")
	}
	if s.CheckMemAccess(2, phys.Addr(4*pg), RightRead) {
		t.Fatal("sharee must not see beyond the shared subrange")
	}
	if got := s.RefCountAt(phys.Addr(2 * pg)); got != 2 {
		t.Fatalf("refcount = %d, want 2", got)
	}
	if got := s.RefCountAt(phys.Addr(1 * pg)); got != 1 {
		t.Fatalf("refcount outside share = %d, want 1", got)
	}
	info, err := s.Node(child)
	if err != nil {
		t.Fatal(err)
	}
	if info.Kind != KindShared || info.Parent != root || info.Owner != 2 {
		t.Fatalf("child info = %+v", info)
	}
}

func TestGrantSuspendsParentAccess(t *testing.T) {
	s := NewSpace()
	root := mustRoot(t, s, 1, mem(0, 8), MemFull)
	g, err := s.Grant(root, 2, mem(2, 2), MemRWX, CleanObfuscate)
	if err != nil {
		t.Fatal(err)
	}
	if s.CheckMemAccess(1, phys.Addr(2*pg), RightRead) {
		t.Fatal("granter must lose access while grant is active")
	}
	if !s.CheckMemAccess(1, phys.Addr(1*pg), RightRead) {
		t.Fatal("granter keeps access outside the granted range")
	}
	if !s.CheckMemAccess(2, phys.Addr(2*pg), RightExec) {
		t.Fatal("grantee must gain access")
	}
	if got := s.RefCountAt(phys.Addr(2 * pg)); got != 1 {
		t.Fatalf("granted region refcount = %d, want 1 (exclusive)", got)
	}
	// Parent cannot share or re-grant what it granted away.
	if _, err := s.Share(root, 3, mem(2, 1), MemRW, CleanNone); !errors.Is(err, ErrSubresource) {
		t.Fatalf("share of granted-away region: err = %v", err)
	}
	if _, err := s.Grant(root, 3, mem(3, 1), MemRW, CleanNone); !errors.Is(err, ErrSubresource) {
		t.Fatalf("grant of granted-away region: err = %v", err)
	}
	// Revoking the grant restores the parent.
	acts, err := s.Revoke(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(acts) != 1 || acts[0].Cleanup != CleanObfuscate || acts[0].Owner != 2 {
		t.Fatalf("cleanup actions = %v", acts)
	}
	if !s.CheckMemAccess(1, phys.Addr(2*pg), RightWrite) {
		t.Fatal("revoke must restore granter access")
	}
	if s.CheckMemAccess(2, phys.Addr(2*pg), RightRead) {
		t.Fatal("revoked grantee must lose access")
	}
}

func TestRightsAttenuation(t *testing.T) {
	s := NewSpace()
	root := mustRoot(t, s, 1, mem(0, 8), RightRead|RightShare)
	if _, err := s.Share(root, 2, mem(0, 1), MemRW, CleanNone); !errors.Is(err, ErrRights) {
		t.Fatalf("rights escalation: err = %v", err)
	}
	// Derived cap without RightShare cannot share further.
	child, err := s.Share(root, 2, mem(0, 2), RightRead, CleanNone)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Share(child, 3, mem(0, 1), RightRead, CleanNone); !errors.Is(err, ErrNoDelegation) {
		t.Fatalf("share without RightShare: err = %v", err)
	}
	// Grant requires RightGrant.
	if _, err := s.Grant(root, 3, mem(0, 1), RightRead, CleanNone); !errors.Is(err, ErrNoDelegation) {
		t.Fatalf("grant without RightGrant: err = %v", err)
	}
}

func TestSubresourceValidation(t *testing.T) {
	s := NewSpace()
	root := mustRoot(t, s, 1, mem(4, 4), MemFull)
	if _, err := s.Share(root, 2, mem(0, 2), MemRW, CleanNone); !errors.Is(err, ErrSubresource) {
		t.Fatalf("out-of-range share: err = %v", err)
	}
	if _, err := s.Share(root, 2, mem(7, 2), MemRW, CleanNone); !errors.Is(err, ErrSubresource) {
		t.Fatalf("straddling share: err = %v", err)
	}
	core := mustRoot(t, s, 1, CoreResource(3), CoreFull)
	if _, err := s.Share(core, 2, CoreResource(4), RightRun, CleanNone); !errors.Is(err, ErrSubresource) {
		t.Fatalf("different core: err = %v", err)
	}
	if _, err := s.Share(core, 2, mem(0, 1), RightRead, CleanNone); !errors.Is(err, ErrSubresource) {
		t.Fatalf("kind mismatch: err = %v", err)
	}
	if _, err := s.Share(0, 2, mem(0, 1), RightRead, CleanNone); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing node: err = %v", err)
	}
}

func TestCascadingRevocation(t *testing.T) {
	s := NewSpace()
	root := mustRoot(t, s, 1, mem(0, 16), MemFull)
	b, err := s.Share(root, 2, mem(0, 8), MemRW|RightShare, CleanZero)
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.Share(b, 3, mem(0, 4), MemRW|RightShare, CleanFlushCache)
	if err != nil {
		t.Fatal(err)
	}
	d, err := s.Share(c, 4, mem(0, 2), MemRW, CleanNone)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.RefCountAt(0); got != 4 {
		t.Fatalf("refcount = %d, want 4", got)
	}
	acts, err := s.Revoke(b)
	if err != nil {
		t.Fatal(err)
	}
	// Children-first order: d, c, b.
	if len(acts) != 3 || acts[0].Node != d || acts[1].Node != c || acts[2].Node != b {
		t.Fatalf("actions = %v", acts)
	}
	for _, owner := range []OwnerID{2, 3, 4} {
		if s.CheckMemAccess(owner, 0, RightRead) {
			t.Fatalf("owner %d retains access after cascade", owner)
		}
	}
	if !s.CheckMemAccess(1, 0, RightRead) {
		t.Fatal("root owner must keep access")
	}
	if _, err := s.Node(c); !errors.Is(err, ErrNotFound) {
		t.Fatal("revoked node still present")
	}
	if got := s.RefCountAt(0); got != 1 {
		t.Fatalf("refcount after cascade = %d, want 1", got)
	}
}

func TestCircularSharingRevocationTerminates(t *testing.T) {
	s := NewSpace()
	// A(1) shares to B(2); B shares back to A; A shares that again to B.
	a := mustRoot(t, s, 1, mem(0, 4), MemFull)
	b, err := s.Share(a, 2, mem(0, 4), MemRW|RightShare, CleanNone)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := s.Share(b, 1, mem(0, 2), MemRW|RightShare, CleanNone)
	if err != nil {
		t.Fatal(err)
	}
	if _, err = s.Share(a2, 2, mem(0, 1), MemRW, CleanNone); err != nil {
		t.Fatal(err)
	}
	// Refcount counts distinct owners once despite multiple paths.
	if got := s.RefCountAt(0); got != 2 {
		t.Fatalf("refcount = %d, want 2 (distinct owners)", got)
	}
	acts, err := s.Revoke(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(acts) != 3 {
		t.Fatalf("revoked %d nodes, want 3", len(acts))
	}
	if s.CheckMemAccess(2, 0, RightRead) {
		t.Fatal("B retains access after its lineage was revoked")
	}
	// A still has its root.
	if !s.CheckMemAccess(1, 0, RightRead) {
		t.Fatal("A lost its root access")
	}
	if got := s.RefCountAt(0); got != 1 {
		t.Fatalf("refcount = %d, want 1", got)
	}
}

func TestRevokeOwner(t *testing.T) {
	s := NewSpace()
	root := mustRoot(t, s, 1, mem(0, 16), MemFull)
	b1, _ := s.Share(root, 2, mem(0, 4), MemRW|RightShare, CleanZero)
	if _, err := s.Share(root, 2, mem(8, 4), MemRW, CleanNone); err != nil {
		t.Fatal(err)
	}
	// 2 shares onward to 3: dies with 2.
	if _, err := s.Share(b1, 3, mem(0, 2), MemRW, CleanNone); err != nil {
		t.Fatal(err)
	}
	acts := s.RevokeOwner(2)
	if len(acts) != 3 {
		t.Fatalf("revoked %d nodes, want 3", len(acts))
	}
	if s.CheckMemAccess(2, 0, RightRead) || s.CheckMemAccess(3, 0, RightRead) {
		t.Fatal("access survived owner revocation")
	}
	if !s.CheckMemAccess(1, 0, RightRead) {
		t.Fatal("root owner affected")
	}
	if s.NumNodes() != 1 {
		t.Fatalf("nodes = %d, want 1", s.NumNodes())
	}
	if acts2 := s.RevokeOwner(2); len(acts2) != 0 {
		t.Fatal("second revocation should be a no-op")
	}
}

func TestSealSemantics(t *testing.T) {
	s := NewSpace()
	root := mustRoot(t, s, 1, mem(0, 16), MemFull)
	enclave, err := s.Share(root, 2, mem(0, 4), MemRWX|RightShare|RightGrant, CleanObfuscate)
	if err != nil {
		t.Fatal(err)
	}
	s.Seal(2)
	if !s.Sealed(2) {
		t.Fatal("seal not recorded")
	}
	// Sealed domain cannot receive more resources.
	if _, err := s.Share(root, 2, mem(8, 2), MemRW, CleanNone); !errors.Is(err, ErrSealed) {
		t.Fatalf("extend sealed: err = %v", err)
	}
	// But it can still share out (to spawn nested enclaves, §4.2).
	if _, err := s.Share(enclave, 3, mem(0, 1), MemRW, CleanNone); err != nil {
		t.Fatalf("sealed domain sharing out: %v", err)
	}
	// Teardown clears seal state.
	s.RevokeOwner(2)
	if s.Sealed(2) {
		t.Fatal("seal must clear on owner revocation")
	}
}

func TestCoreCapabilities(t *testing.T) {
	s := NewSpace()
	c0 := mustRoot(t, s, 1, CoreResource(0), CoreFull)
	mustRoot(t, s, 1, CoreResource(1), CoreFull)
	if got := s.OwnerCores(1); len(got) != 2 {
		t.Fatalf("cores = %v", got)
	}
	// Share core 0 with domain 2.
	if _, err := s.Share(c0, 2, CoreResource(0), RightRun, CleanFlushCache); err != nil {
		t.Fatal(err)
	}
	if !s.OwnerHasCore(2, 0) || s.OwnerHasCore(2, 1) {
		t.Fatal("core share wrong")
	}
	if s.CoreRefCount(0) != 2 || s.CoreRefCount(1) != 1 {
		t.Fatalf("core refcounts = %d,%d", s.CoreRefCount(0), s.CoreRefCount(1))
	}
	// Grant core 1 away: owner 1 loses it.
	c1list := s.OwnerNodes(1)
	var c1 NodeID
	for _, inf := range c1list {
		if inf.Resource.Kind == ResCore && inf.Resource.Core == 1 {
			c1 = inf.ID
		}
	}
	g, err := s.Grant(c1, 3, CoreResource(1), RightRun, CleanFlushCache)
	if err != nil {
		t.Fatal(err)
	}
	if s.OwnerHasCore(1, 1) {
		t.Fatal("granter retains core")
	}
	if !s.OwnerHasCore(3, 1) {
		t.Fatal("grantee lacks core")
	}
	if s.CoreRefCount(1) != 1 {
		t.Fatalf("core 1 refcount = %d", s.CoreRefCount(1))
	}
	// Double-grant of the same core fails.
	if _, err := s.Grant(c1, 4, CoreResource(1), RightRun, CleanNone); !errors.Is(err, ErrSubresource) {
		t.Fatalf("double core grant: err = %v", err)
	}
	if _, err := s.Revoke(g); err != nil {
		t.Fatal(err)
	}
	if !s.OwnerHasCore(1, 1) {
		t.Fatal("core not restored after revoke")
	}
}

func TestDeviceCapabilities(t *testing.T) {
	s := NewSpace()
	d := mustRoot(t, s, 1, DeviceResource(0), DeviceFull)
	if !s.OwnerHasDevice(1, 0) {
		t.Fatal("owner lacks device")
	}
	if _, err := s.Share(d, 2, DeviceResource(0), RightUse|RightDMA, CleanNone); err != nil {
		t.Fatal(err)
	}
	if s.DeviceRefCount(0) != 2 {
		t.Fatalf("device refcount = %d", s.DeviceRefCount(0))
	}
	g, err := s.Grant(d, 3, DeviceResource(0), RightUse, CleanNone)
	if err != nil {
		t.Fatal(err)
	}
	if s.OwnerHasDevice(1, 0) {
		t.Fatal("granter retains device")
	}
	// Domain 2's share is independent lineage: it still has the device.
	if !s.OwnerHasDevice(2, 0) {
		t.Fatal("sharee lost device")
	}
	if _, err := s.Revoke(g); err != nil {
		t.Fatal(err)
	}
	if !s.OwnerHasDevice(1, 0) {
		t.Fatal("device not restored")
	}
}

func TestRefCountsFigure4(t *testing.T) {
	// Reconstruct Figure 4's shape: a SaaS VM with a driver, a crypto
	// engine and a SaaS application, with confidential and shared
	// regions. Counts across the address space follow the figure's
	// 1,1,2,... pattern: exclusive regions count 1, the shared region
	// counts 2.
	s := NewSpace()
	const (
		saasVM = OwnerID(1)
		crypto = OwnerID(2)
		app    = OwnerID(3)
	)
	root := mustRoot(t, s, saasVM, mem(0, 64), MemFull)
	// Crypto engine: exclusive confidential pages 8-15.
	if _, err := s.Grant(root, crypto, mem(8, 8), MemRWX, CleanObfuscate); err != nil {
		t.Fatal(err)
	}
	// App: exclusive confidential pages 16-31.
	appCap, err := s.Grant(root, app, mem(16, 16), MemRWX|RightShare, CleanObfuscate)
	if err != nil {
		t.Fatal(err)
	}
	// Shared memory between app and crypto engine: pages 24-27 (app
	// shares out of its exclusive range).
	if _, err := s.Share(appCap, crypto, mem(24, 4), MemRW, CleanZero); err != nil {
		t.Fatal(err)
	}
	rcs := s.RefCounts()
	type want struct {
		start, pages uint64
		count        int
	}
	wants := []want{
		{0, 8, 1},   // VM-owned
		{8, 8, 1},   // crypto exclusive
		{16, 8, 1},  // app exclusive
		{24, 4, 2},  // app<->crypto shared
		{28, 4, 1},  // app exclusive
		{32, 32, 1}, // VM-owned
	}
	if len(rcs) != len(wants) {
		t.Fatalf("got %d segments %v, want %d", len(rcs), rcs, len(wants))
	}
	for i, w := range wants {
		r := phys.MakeRegion(phys.Addr(w.start*pg), w.pages*pg)
		if rcs[i].Region != r || rcs[i].Count != w.count {
			t.Fatalf("segment %d = %v, want %v count=%d", i, rcs[i], r, w.count)
		}
	}
	// The verifier's exclusivity predicate.
	if s.RegionRefCount(phys.MakeRegion(phys.Addr(8*pg), 8*pg)) != 1 {
		t.Fatal("crypto region should be exclusive")
	}
	if s.RegionRefCount(phys.MakeRegion(phys.Addr(16*pg), 16*pg)) != 2 {
		t.Fatal("app range contains a shared window: max refcount must be 2")
	}
}

func TestOwnerMemoryAndGrantsEnumeration(t *testing.T) {
	s := NewSpace()
	root := mustRoot(t, s, 1, mem(0, 8), MemFull)
	if _, err := s.Grant(root, 2, mem(2, 2), MemRW, CleanNone); err != nil {
		t.Fatal(err)
	}
	regs := s.OwnerMemory(1, RightRead)
	want := []phys.Region{
		phys.MakeRegion(0, 2*pg),
		phys.MakeRegion(phys.Addr(4*pg), 4*pg),
	}
	if len(regs) != 2 || regs[0] != want[0] || regs[1] != want[1] {
		t.Fatalf("owner memory = %v, want %v", regs, want)
	}
	grants := s.OwnerMemoryGrants(2)
	if len(grants) != 1 || grants[0].Region != phys.MakeRegion(phys.Addr(2*pg), 2*pg) {
		t.Fatalf("grants = %v", grants)
	}
	if len(s.Owners()) != 2 {
		t.Fatalf("owners = %v", s.Owners())
	}
}

func TestEffectiveRegionsErrors(t *testing.T) {
	s := NewSpace()
	if _, err := s.EffectiveRegions(42); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	core := mustRoot(t, s, 1, CoreResource(0), CoreFull)
	regs, err := s.EffectiveRegions(core)
	if err != nil || regs != nil {
		t.Fatalf("core effective regions = %v, %v", regs, err)
	}
}
