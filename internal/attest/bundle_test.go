package attest

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/tyche-sim/tyche/internal/core"
	"github.com/tyche-sim/tyche/internal/libtyche"
	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/tpm"
)

func buildBundle(t *testing.T) *Bundle {
	t.Helper()
	w := boot(t)
	opts := libtyche.DefaultLoadOptions()
	opts.Cores = []phys.CoreID{1}
	img := haltImage("bundled")
	dom, err := w.cl.NewEnclave(img, opts)
	if err != nil {
		t.Fatal(err)
	}
	bootNonce := []byte("bundle-boot")
	quote, err := w.mon.BootQuote(bootNonce)
	if err != nil {
		t.Fatal(err)
	}
	nonce := []byte("bundle-dom")
	rep, err := dom.Attest(nonce)
	if err != nil {
		t.Fatal(err)
	}
	meas, err := img.Measurement(dom.Base())
	if err != nil {
		t.Fatal(err)
	}
	return &Bundle{
		EndorsementKey:      w.rot.EndorsementKey(),
		MonitorIdentity:     w.mon.Identity(),
		BootNonce:           bootNonce,
		Quote:               quote,
		DomainNonce:         nonce,
		Report:              rep,
		ExpectedMeasurement: &meas,
	}
}

func TestBundleRoundTripAndVerify(t *testing.T) {
	b := buildBundle(t)
	steps, err := b.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 3 {
		t.Fatalf("steps = %v", steps)
	}
	// Survives serialization.
	path := filepath.Join(t.TempDir(), "evidence.json")
	if err := b.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loaded.Verify(); err != nil {
		t.Fatalf("loaded bundle failed verification: %v", err)
	}
}

func TestBundleRejections(t *testing.T) {
	// Missing pieces.
	if _, err := (&Bundle{}).Verify(); err == nil {
		t.Fatal("empty bundle verified")
	}
	// Tampered report.
	b := buildBundle(t)
	b.Report.Sealed = false
	if _, err := b.Verify(); !errors.Is(err, core.ErrBadReport) {
		t.Fatalf("tampered: %v", err)
	}
	// Wrong expected measurement.
	b2 := buildBundle(t)
	evil := tpm.Measure([]byte("evil"))
	b2.ExpectedMeasurement = &evil
	if _, err := b2.Verify(); !errors.Is(err, ErrPolicy) {
		t.Fatalf("wrong measurement: %v", err)
	}
	// Untrusted monitor identity.
	b3 := buildBundle(t)
	b3.MonitorIdentity = []byte("other monitor")
	if _, err := b3.Verify(); !errors.Is(err, ErrUntrustedMonitor) {
		t.Fatalf("untrusted monitor: %v", err)
	}
	// Corrupt file.
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := writeFile(path, []byte("{nope")); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBundle(path); err == nil {
		t.Fatal("corrupt bundle loaded")
	}
	if _, err := LoadBundle(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file loaded")
	}
}

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
