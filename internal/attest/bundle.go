package attest

import (
	"crypto/ed25519"
	"encoding/json"
	"fmt"
	"os"

	"github.com/tyche-sim/tyche/internal/core"
	"github.com/tyche-sim/tyche/internal/tpm"
)

// Bundle is a self-contained attestation evidence file: everything a
// remote verifier needs to check a domain offline (the tyche-verify
// tool consumes it). The trusted inputs — the TPM endorsement key and
// the expected monitor identity — are carried alongside for
// convenience; a production verifier obtains them out of band.
type Bundle struct {
	// EndorsementKey is the TPM's public key (trust anchor).
	EndorsementKey ed25519.PublicKey `json:"endorsement_key"`
	// MonitorIdentity is the monitor binary the verifier expects.
	MonitorIdentity []byte `json:"monitor_identity"`
	// BootNonce freshens the quote.
	BootNonce []byte `json:"boot_nonce"`
	// Quote is the tier-one TPM quote binding the monitor key.
	Quote *tpm.Quote `json:"quote"`
	// DomainNonce freshens the report.
	DomainNonce []byte `json:"domain_nonce"`
	// Report is the tier-two domain report.
	Report *core.Report `json:"report"`
	// ExpectedMeasurement optionally pins the domain identity
	// (offline-computed by tyche-hash).
	ExpectedMeasurement *tpm.Digest `json:"expected_measurement,omitempty"`
}

// Verify runs the full two-tier verification over the bundle and
// returns a human-readable transcript of the steps.
func (b *Bundle) Verify() ([]string, error) {
	var steps []string
	if b.Quote == nil || b.Report == nil {
		return steps, fmt.Errorf("attest: bundle missing quote or report")
	}
	v := NewVerifier(b.EndorsementKey, b.MonitorIdentity)
	sess, err := v.NewSession(b.Quote, b.BootNonce)
	if err != nil {
		return steps, fmt.Errorf("tier 1 (boot quote): %w", err)
	}
	steps = append(steps, "tier 1: TPM quote verified; machine runs the trusted monitor")
	if err := sess.VerifyDomain(b.Report, b.DomainNonce); err != nil {
		return steps, fmt.Errorf("tier 2 (domain report): %w", err)
	}
	steps = append(steps, fmt.Sprintf("tier 2: report for domain %d (%s) signed by the attested monitor",
		b.Report.Domain, b.Report.Name))
	if b.ExpectedMeasurement != nil {
		if err := RequireMeasurement(b.Report, *b.ExpectedMeasurement); err != nil {
			return steps, err
		}
		steps = append(steps, "policy: measurement matches the expected (offline) hash")
	}
	return steps, nil
}

// Save writes the bundle as JSON.
func (b *Bundle) Save(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadBundle reads a bundle from a JSON file.
func LoadBundle(path string) (*Bundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("attest: parsing bundle %s: %w", path, err)
	}
	return &b, nil
}
