// Package attest implements the remote-verifier side of the two-tier
// attestation protocol (§3.4): establishing trust in a specific
// isolation monitor via the TPM chain, verifying domain reports signed
// by that monitor, and evaluating controlled-sharing policies over the
// attested resource enumerations — the "customer" role in Figure 2.
package attest

import (
	"bytes"
	"crypto/ed25519"
	"errors"
	"fmt"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/core"
	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/tpm"
)

// Verification errors.
var (
	ErrUntrustedMonitor = errors.New("attest: monitor measurement not in the trusted set")
	ErrStaleNonce       = errors.New("attest: nonce mismatch (replay?)")
	ErrKeyMismatch      = errors.New("attest: report not signed by the attested monitor key")
	ErrPolicy           = errors.New("attest: policy violation")
)

// Verifier is a remote relying party: it trusts a TPM endorsement key
// (from the manufacturer) and a set of monitor implementations (whose
// source it inspected, or that carry formal-verification evidence —
// §3.4's "trust in the monitor is derived from the attestation by
// comparing the measurement to a known expected value").
type Verifier struct {
	ek      ed25519.PublicKey
	trusted []tpm.Digest // expected PCR-17 values
}

// NewVerifier builds a verifier trusting the given endorsement key and
// monitor identity blobs.
func NewVerifier(ek ed25519.PublicKey, trustedMonitors ...[]byte) *Verifier {
	v := &Verifier{ek: append(ed25519.PublicKey(nil), ek...)}
	for _, id := range trustedMonitors {
		v.trusted = append(v.trusted, core.ExpectedMonitorPCR(id))
	}
	return v
}

// VerifyBoot checks tier one: the TPM quote proves the machine booted a
// trusted monitor, and binds the monitor's attestation key. It returns
// that key.
func (v *Verifier) VerifyBoot(q *tpm.Quote, nonce []byte) (ed25519.PublicKey, error) {
	if err := tpm.VerifyQuote(v.ek, q); err != nil {
		return nil, err
	}
	if !bytes.Equal(q.Nonce, nonce) {
		return nil, ErrStaleNonce
	}
	pcr, ok := tpm.QuotedPCR(q, tpm.PCRMonitor)
	if !ok {
		return nil, fmt.Errorf("attest: quote lacks the monitor PCR")
	}
	trusted := false
	for _, want := range v.trusted {
		if pcr == want {
			trusted = true
			break
		}
	}
	if !trusted {
		return nil, fmt.Errorf("%w: PCR17=%v", ErrUntrustedMonitor, pcr)
	}
	if len(q.UserData) != ed25519.PublicKeySize {
		return nil, fmt.Errorf("attest: quote user data is not a key (%d bytes)", len(q.UserData))
	}
	return ed25519.PublicKey(append([]byte(nil), q.UserData...)), nil
}

// Session is an established verification session: a monitor key proven
// by VerifyBoot, against which domain reports are checked (tier two).
type Session struct {
	MonitorKey ed25519.PublicKey
}

// NewSession runs tier one and returns a session on success.
func (v *Verifier) NewSession(q *tpm.Quote, nonce []byte) (*Session, error) {
	key, err := v.VerifyBoot(q, nonce)
	if err != nil {
		return nil, err
	}
	return &Session{MonitorKey: key}, nil
}

// VerifyDomain checks tier two: the report is signed by the session's
// monitor and fresh for the nonce.
func (s *Session) VerifyDomain(r *core.Report, nonce []byte) error {
	if err := core.VerifyReport(r); err != nil {
		return err
	}
	if !bytes.Equal(r.MonitorKey, s.MonitorKey) {
		return ErrKeyMismatch
	}
	if !bytes.Equal(r.Nonce, nonce) {
		return ErrStaleNonce
	}
	return nil
}

// --- Policy predicates over verified reports -----------------------
//
// These run on attested resource enumerations; they are what makes
// reference counts actionable: "exclusive access to a resource (i.e., a
// reference count of 1) coupled with an obfuscating revocation policy
// guarantees integrity (while in use) and confidentiality" (§3.4).

// RequireSealed demands the domain be sealed (its resources frozen).
func RequireSealed(r *core.Report) error {
	if !r.Sealed {
		return fmt.Errorf("%w: domain %d is not sealed", ErrPolicy, r.Domain)
	}
	return nil
}

// RequireMeasurement demands the domain's identity match want — the
// offline-computed hash of the expected image (tyche-hash).
func RequireMeasurement(r *core.Report, want tpm.Digest) error {
	if r.Measurement != want {
		return fmt.Errorf("%w: measurement %v, want %v", ErrPolicy, r.Measurement, want)
	}
	return nil
}

// RequireExclusiveMemory demands every attested memory region be held
// exclusively (refcount 1), except regions overlapping the allowed
// list.
func RequireExclusiveMemory(r *core.Report, allowShared ...phys.Region) error {
	for _, rec := range r.Resources {
		if rec.Resource.Kind != cap.ResMemory || rec.RefCount <= 1 {
			continue
		}
		allowed := false
		for _, ok := range allowShared {
			if ok.ContainsRegion(rec.Resource.Mem) {
				allowed = true
				break
			}
		}
		if !allowed {
			return fmt.Errorf("%w: region %v has refcount %d", ErrPolicy, rec.Resource.Mem, rec.RefCount)
		}
	}
	return nil
}

// SharedRegions returns the attested memory regions with refcount > 1.
func SharedRegions(r *core.Report) []phys.Region {
	var out []phys.Region
	for _, rec := range r.Resources {
		if rec.Resource.Kind == cap.ResMemory && rec.RefCount > 1 {
			out = append(out, rec.Resource.Mem)
		}
	}
	return phys.NormalizeRegions(out)
}

// RequireSharedOnlyWith demands that every shared region of r also
// appears in (at least) one of the peers' enumerations, with refcount
// exactly 1+len matching peers... conservatively: refcount 2 and peer
// coverage. This is Figure 2's check that the SaaS application and GPU
// "share memory with the crypto engine" and nobody else.
func RequireSharedOnlyWith(r *core.Report, peers ...*core.Report) error {
	for _, rec := range r.Resources {
		if rec.Resource.Kind != cap.ResMemory || rec.RefCount <= 1 {
			continue
		}
		if rec.RefCount > 2 {
			return fmt.Errorf("%w: region %v shared %d ways", ErrPolicy, rec.Resource.Mem, rec.RefCount)
		}
		covered := false
		for _, p := range peers {
			for _, pr := range p.Resources {
				if pr.Resource.Kind == cap.ResMemory && pr.Resource.Mem.Overlaps(rec.Resource.Mem) {
					covered = true
					break
				}
			}
		}
		if !covered {
			return fmt.Errorf("%w: region %v is shared with an unknown domain", ErrPolicy, rec.Resource.Mem)
		}
	}
	return nil
}

// RequireExclusiveCore demands the domain hold at least one core
// exclusively (refcount 1) — the §4.1 side-channel posture.
func RequireExclusiveCore(r *core.Report) error {
	for _, rec := range r.Resources {
		if rec.Resource.Kind == cap.ResCore && rec.RefCount == 1 {
			return nil
		}
	}
	return fmt.Errorf("%w: domain %d holds no exclusive core", ErrPolicy, r.Domain)
}
