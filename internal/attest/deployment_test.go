package attest

import (
	"errors"
	"testing"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/core"
	"github.com/tyche-sim/tyche/internal/libtyche"
	"github.com/tyche-sim/tyche/internal/phys"
)

// buildDeployment creates three domains with A<->B and B<->C channels.
func buildDeployment(t *testing.T) (*worldT, []*core.Report, []core.DomainID) {
	t.Helper()
	w := boot(t)
	mk := func(name string) *libtyche.Domain {
		opts := libtyche.DefaultLoadOptions()
		opts.Cores = []phys.CoreID{1}
		opts.Seal = false
		d, err := w.cl.Load(haltImage(name), opts)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	a, b, c := mk("a"), mk("b"), mk("c")
	link := func(from, to *libtyche.Domain, startPage uint64) {
		t.Helper()
		var heapNode cap.NodeID
		for _, n := range w.mon.OwnerNodes(core.InitialDomain) {
			if n.Resource.Kind == cap.ResMemory {
				heapNode = n.ID
			}
		}
		r := phys.MakeRegion(phys.Addr(startPage*pg), pg)
		fromNode, err := w.mon.Grant(core.InitialDomain, heapNode, from.ID(), cap.MemResource(r), cap.MemRW|cap.RightShare, cap.CleanZero)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.mon.Share(from.ID(), fromNode, to.ID(), cap.MemResource(r), cap.MemRW, cap.CleanZero); err != nil {
			t.Fatal(err)
		}
	}
	link(a, b, 600)
	link(b, c, 620)
	reports := make([]*core.Report, 0, 3)
	ids := []core.DomainID{a.ID(), b.ID(), c.ID()}
	for _, id := range ids {
		rep, err := w.mon.Attest(id, []byte("dep"))
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, rep)
	}
	return w, reports, ids
}

func TestAuditDeploymentClosedWorld(t *testing.T) {
	_, reports, ids := buildDeployment(t)
	edges, err := AuditDeployment(reports...)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 2 {
		t.Fatalf("edges = %v", edges)
	}
	// A-B and B-C, no A-C.
	hasEdge := func(x, y core.DomainID) bool {
		for _, e := range edges {
			if (e.A == x && e.B == y) || (e.A == y && e.B == x) {
				return true
			}
		}
		return false
	}
	if !hasEdge(ids[0], ids[1]) || !hasEdge(ids[1], ids[2]) {
		t.Fatalf("missing expected paths: %v", edges)
	}
	if hasEdge(ids[0], ids[2]) {
		t.Fatalf("phantom path: %v", edges)
	}
}

func TestAuditDeploymentOpenWorldFails(t *testing.T) {
	// Omit C's report: B's shared region with C now points outside the
	// audited set.
	_, reports, _ := buildDeployment(t)
	if _, err := AuditDeployment(reports[0], reports[1]); !errors.Is(err, ErrPolicy) {
		t.Fatalf("open world accepted: %v", err)
	}
	// Degenerate inputs.
	if _, err := AuditDeployment(); err == nil {
		t.Fatal("empty deployment accepted")
	}
	// A fully isolated subset still audits (no shared regions at all).
	solo := boot(t)
	opts := libtyche.DefaultLoadOptions()
	opts.Cores = []phys.CoreID{1}
	d, err := solo.cl.NewEnclave(haltImage("solo"), opts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := d.Attest([]byte("n"))
	if err != nil {
		t.Fatal(err)
	}
	edges, err := AuditDeployment(rep)
	if err != nil || len(edges) != 0 {
		t.Fatalf("solo audit: %v, %v", edges, err)
	}
}
