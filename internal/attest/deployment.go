package attest

import (
	"fmt"
	"sort"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/core"
	"github.com/tyche-sim/tyche/internal/phys"
)

// Multi-domain deployment attestation (§4.2 future work: "extend
// attestation to multi-domain deployments with the insurance that all
// communication paths are secured and attested"). Given the verified
// reports of every domain a relying party intends to trust, the audit
// reconstructs the sharing graph from the attested enumerations and
// checks a closed-world property: every shared region is shared with
// exactly one *other audited* domain. Any edge leaving the audited set
// — a region with a higher count, or one no peer report accounts for —
// fails the deployment.

// Edge is one attested communication path: a region shared by exactly
// the two endpoint domains.
type Edge struct {
	A, B   core.DomainID
	Region phys.Region
}

func (e Edge) String() string {
	return fmt.Sprintf("d%d <-> d%d via %v", e.A, e.B, e.Region)
}

// AuditDeployment verifies the closed-world sharing property over a set
// of (already signature-verified) reports and returns the communication
// graph. Callers run Session.VerifyDomain on each report first; this
// function audits *topology*, not signatures.
func AuditDeployment(reports ...*core.Report) ([]Edge, error) {
	if len(reports) == 0 {
		return nil, fmt.Errorf("attest: empty deployment")
	}
	byDomain := make(map[core.DomainID]*core.Report, len(reports))
	for _, r := range reports {
		if prev, dup := byDomain[r.Domain]; dup && prev != r {
			return nil, fmt.Errorf("attest: duplicate report for domain %d", r.Domain)
		}
		byDomain[r.Domain] = r
	}
	var edges []Edge
	for _, r := range reports {
		for _, rec := range r.Resources {
			if rec.Resource.Kind != cap.ResMemory || rec.RefCount <= 1 {
				continue
			}
			if rec.RefCount > 2 {
				return nil, fmt.Errorf("%w: domain %d shares %v %d ways (point-to-point paths only)",
					ErrPolicy, r.Domain, rec.Resource.Mem, rec.RefCount)
			}
			peer, ok := findPeer(r, rec.Resource.Mem, byDomain)
			if !ok {
				return nil, fmt.Errorf("%w: domain %d shares %v with a domain outside the audited set",
					ErrPolicy, r.Domain, rec.Resource.Mem)
			}
			if r.Domain < peer {
				edges = append(edges, Edge{A: r.Domain, B: peer, Region: rec.Resource.Mem})
			}
		}
	}
	edges = dedupeEdges(edges)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].A != edges[j].A {
			return edges[i].A < edges[j].A
		}
		if edges[i].B != edges[j].B {
			return edges[i].B < edges[j].B
		}
		return edges[i].Region.Start < edges[j].Region.Start
	})
	return edges, nil
}

// findPeer locates the one other audited domain whose enumeration
// covers the shared region.
func findPeer(r *core.Report, region phys.Region, byDomain map[core.DomainID]*core.Report) (core.DomainID, bool) {
	for id, other := range byDomain {
		if id == r.Domain {
			continue
		}
		for _, rec := range other.Resources {
			if rec.Resource.Kind == cap.ResMemory && rec.Resource.Mem.Overlaps(region) {
				return id, true
			}
		}
	}
	return 0, false
}

func dedupeEdges(edges []Edge) []Edge {
	seen := make(map[string]bool, len(edges))
	out := edges[:0]
	for _, e := range edges {
		k := e.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, e)
		}
	}
	return out
}
