package attest

import (
	"errors"
	"testing"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/core"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/image"
	"github.com/tyche-sim/tyche/internal/libtyche"
	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/tpm"
)

const pg = phys.PageSize

type worldT struct {
	mon *core.Monitor
	rot *tpm.TPM
	cl  *libtyche.Client
}

func boot(t testing.TB) *worldT {
	t.Helper()
	mach, err := hw.NewMachine(hw.Config{MemBytes: 16 << 20, NumCores: 4, IOMMUAllowByDefault: true})
	if err != nil {
		t.Fatal(err)
	}
	rot, err := tpm.New(nil)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := core.Boot(core.BootConfig{Machine: mach, TPM: rot})
	if err != nil {
		t.Fatal(err)
	}
	cl := libtyche.New(mon, core.InitialDomain)
	if err := cl.AutoHeap(16); err != nil {
		t.Fatal(err)
	}
	return &worldT{mon: mon, rot: rot, cl: cl}
}

func haltImage(name string) *image.Image {
	a := hw.NewAsm()
	a.Hlt()
	return image.NewProgram(name, a.MustAssemble(0))
}

func TestBootVerification(t *testing.T) {
	w := boot(t)
	v := NewVerifier(w.rot.EndorsementKey(), core.DefaultIdentity)
	nonce := []byte("n1")
	q, err := w.mon.BootQuote(nonce)
	if err != nil {
		t.Fatal(err)
	}
	key, err := v.VerifyBoot(q, nonce)
	if err != nil {
		t.Fatal(err)
	}
	if !key.Equal(w.mon.AttestationKey()) {
		t.Fatal("bound key mismatch")
	}
	// Stale nonce rejected.
	if _, err := v.VerifyBoot(q, []byte("other")); !errors.Is(err, ErrStaleNonce) {
		t.Fatalf("stale: %v", err)
	}
	// Untrusted monitor identity rejected.
	v2 := NewVerifier(w.rot.EndorsementKey(), []byte("some other monitor"))
	if _, err := v2.VerifyBoot(q, nonce); !errors.Is(err, ErrUntrustedMonitor) {
		t.Fatalf("untrusted: %v", err)
	}
	// Wrong EK rejected.
	otherTPM, _ := tpm.New(nil)
	v3 := NewVerifier(otherTPM.EndorsementKey(), core.DefaultIdentity)
	if _, err := v3.VerifyBoot(q, nonce); err == nil {
		t.Fatal("quote verified under wrong EK")
	}
}

func TestDomainVerificationAndPolicies(t *testing.T) {
	w := boot(t)
	opts := libtyche.DefaultLoadOptions()
	opts.Cores = []phys.CoreID{1}
	opts.ExclusiveCores = true
	img := haltImage("service")
	dom, err := w.cl.NewConfidentialVM(img, []phys.CoreID{1}, libtyche.DefaultLoadOptions())
	if err != nil {
		t.Fatal(err)
	}

	v := NewVerifier(w.rot.EndorsementKey(), core.DefaultIdentity)
	bootNonce := []byte("bn")
	q, err := w.mon.BootQuote(bootNonce)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := v.NewSession(q, bootNonce)
	if err != nil {
		t.Fatal(err)
	}

	nonce := []byte("dn")
	rep, err := dom.Attest(nonce)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.VerifyDomain(rep, nonce); err != nil {
		t.Fatal(err)
	}
	if err := sess.VerifyDomain(rep, []byte("replayed")); !errors.Is(err, ErrStaleNonce) {
		t.Fatalf("replay: %v", err)
	}
	// A report signed by a different monitor key fails.
	other := boot(t)
	otherDom, err := other.cl.NewConfidentialVM(haltImage("imposter"), []phys.CoreID{1}, libtyche.DefaultLoadOptions())
	if err != nil {
		t.Fatal(err)
	}
	otherRep, err := otherDom.Attest(nonce)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.VerifyDomain(otherRep, nonce); !errors.Is(err, ErrKeyMismatch) {
		t.Fatalf("foreign monitor: %v", err)
	}

	// Policies.
	if err := RequireSealed(rep); err != nil {
		t.Fatal(err)
	}
	want, err := img.Measurement(dom.Base())
	if err != nil {
		t.Fatal(err)
	}
	if err := RequireMeasurement(rep, want); err != nil {
		t.Fatal(err)
	}
	if err := RequireMeasurement(rep, tpm.Measure([]byte("evil"))); !errors.Is(err, ErrPolicy) {
		t.Fatalf("wrong measurement accepted: %v", err)
	}
	if err := RequireExclusiveMemory(rep); err != nil {
		t.Fatal(err)
	}
	if err := RequireExclusiveCore(rep); err != nil {
		t.Fatal(err)
	}
}

func TestControlledSharingPolicies(t *testing.T) {
	w := boot(t)
	// Build two communicating domains + one interloper.
	mk := func(name string) *libtyche.Domain {
		opts := libtyche.DefaultLoadOptions()
		opts.Cores = []phys.CoreID{1}
		opts.Seal = false
		d, err := w.cl.Load(haltImage(name), opts)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	a := mk("a")
	b := mk("b")
	interloper := mk("c")

	// dom0 shares a buffer with A and B each... to get an A<->B shared
	// region at refcount 2, A must receive then share to B — dom0
	// builds it by granting to A, then A shares to B.
	buf, err := w.cl.Alloc(2)
	if err != nil {
		t.Fatal(err)
	}
	var heapNode cap.NodeID
	for _, n := range w.mon.OwnerNodes(core.InitialDomain) {
		if n.Resource.Kind == cap.ResMemory && n.Resource.Mem.ContainsRegion(buf) {
			heapNode = n.ID
		}
	}
	aNode, err := w.mon.Grant(core.InitialDomain, heapNode, a.ID(), cap.MemResource(buf), cap.MemRW|cap.RightShare, cap.CleanZero)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.mon.Share(a.ID(), aNode, b.ID(), cap.MemResource(buf), cap.MemRW, cap.CleanZero); err != nil {
		t.Fatal(err)
	}

	repA, _ := w.mon.Attest(a.ID(), []byte("n"))
	repB, _ := w.mon.Attest(b.ID(), []byte("n"))
	repC, _ := w.mon.Attest(interloper.ID(), []byte("n"))

	// A's shared region is covered by B: policy holds.
	if err := RequireSharedOnlyWith(repA, repB); err != nil {
		t.Fatal(err)
	}
	if got := SharedRegions(repA); len(got) != 1 || got[0] != buf {
		t.Fatalf("shared regions = %v", got)
	}
	// Against the interloper only: violation.
	if err := RequireSharedOnlyWith(repA, repC); !errors.Is(err, ErrPolicy) {
		t.Fatalf("unknown sharer accepted: %v", err)
	}
	// Exclusive-memory policy fails for A unless the buffer is allowed.
	if err := RequireExclusiveMemory(repA); !errors.Is(err, ErrPolicy) {
		t.Fatalf("shared region passed exclusivity: %v", err)
	}
	if err := RequireExclusiveMemory(repA, buf); err != nil {
		t.Fatal(err)
	}
	// Unsealed domains fail RequireSealed.
	if err := RequireSealed(repA); !errors.Is(err, ErrPolicy) {
		t.Fatalf("unsealed accepted: %v", err)
	}
}
