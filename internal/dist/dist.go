// Package dist implements attested cross-machine channels — the §4.2
// extensions "providing RDMA support for Tyche-based TEEs running on
// separate machines" and "extend attestation to multi-domain
// deployments with the insurance that all communication paths are
// secured and attested".
//
// Two trust domains on two simulated machines connect over an untrusted
// wire: each side first verifies the other's full chain (TPM quote →
// monitor identity → domain report → measurement policy), then runs an
// X25519 handshake whose public keys are bound to the attested reports
// (report data), and derives AES-CTR + HMAC-SHA256 session keys. Data
// moves RDMA-style: the sending domain's NIC DMA-reads the ciphertext
// from the domain's registered buffer and the receiving NIC DMA-writes
// into the peer's — every bus access IOMMU-checked, so only domains
// holding their NIC and buffer can use the path, and neither provider
// OS ever observes plaintext.
package dist

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/tyche-sim/tyche/internal/attest"
	"github.com/tyche-sim/tyche/internal/core"
	"github.com/tyche-sim/tyche/internal/fault"
	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/tpm"
)

// Errors surfaced by connection setup and transport.
var (
	ErrPeerUntrusted = errors.New("dist: peer attestation rejected")
	ErrTampered      = errors.New("dist: message authentication failed")
	ErrTooLarge      = errors.New("dist: message exceeds the registered buffer")
	// ErrLinkLost means the frame never arrived (dropped or delayed in
	// flight). Unlike ErrTampered it is not an integrity failure: the
	// sender's sequence number is not consumed, so the caller may retry
	// the same payload over the same channel.
	ErrLinkLost = errors.New("dist: frame lost in flight")
)

// Endpoint is one side of a channel: a trust domain on a machine, with
// a registered buffer and a NIC it holds (RDMA-style: the domain owns
// its queue pair; the host OS is not on the data path).
type Endpoint struct {
	Monitor *core.Monitor
	TPM     *tpm.TPM
	Domain  core.DomainID
	// Buffer is the registered memory region (must be the domain's).
	Buffer phys.Region
	// NIC is the device the domain holds with DMA rights.
	NIC phys.DeviceID

	// Policy the endpoint applies to its peer.
	PeerVerifier *attest.Verifier
	// PeerMeasurement optionally pins the peer domain's identity.
	PeerMeasurement *tpm.Digest

	priv *ecdh.PrivateKey
}

// Wire is the untrusted interconnect between two machines. Everything
// that crosses it is observable (and corruptible) by the adversary; the
// Sniff and Corrupt hooks let tests and experiments play that role, and
// Arm installs a deterministic schedule of link faults (drop, duplicate,
// reorder) in the internal/fault grammar.
type Wire struct {
	frames [][]byte
	// Taps receives a copy of every frame (the adversary's monitor
	// port).
	Taps [][]byte
	// Corrupt, when set, may rewrite a frame in flight.
	Corrupt func([]byte) []byte

	// armed link faults count push events, mirroring the pure-counter
	// determinism of fault.Injector: same schedule, same frame stream,
	// same failures, forever.
	armed []*linkArmed
	held  [][]byte
	// Dropped, Duped and Reordered count fired link faults.
	Dropped   uint64
	Duped     uint64
	Reordered uint64
}

// linkArmed is one armed link fault with its event counters.
type linkArmed struct {
	f    fault.Fault
	seen uint64
	done uint64
}

func (a *linkArmed) count() uint64 {
	if a.f.Count == 0 {
		return 1
	}
	return a.f.Count
}

// Arm installs the link-kinded faults of a schedule (non-link kinds are
// ignored, so one FromSeed schedule can drive machine and wire alike).
func (w *Wire) Arm(faults []fault.Fault) {
	for _, f := range faults {
		if f.Kind.Link() {
			w.armed = append(w.armed, &linkArmed{f: f})
		}
	}
}

// linkFault consumes one push event against the armed schedule. When
// several faults match the same frame, drop dominates dup dominates
// reorder — a discarded frame cannot also be replayed.
func (w *Wire) linkFault() (fault.Kind, bool) {
	var fired *linkArmed
	rank := func(k fault.Kind) int {
		switch k {
		case fault.LinkDrop:
			return 0
		case fault.LinkDup:
			return 1
		default:
			return 2
		}
	}
	for _, a := range w.armed {
		a.seen++
		if a.done >= a.count() || a.seen <= a.f.After {
			continue
		}
		if fired == nil || rank(a.f.Kind) < rank(fired.f.Kind) {
			fired = a
		}
	}
	if fired == nil {
		return 0, false
	}
	fired.done++
	return fired.f.Kind, true
}

func (w *Wire) push(frame []byte) {
	cp := append([]byte(nil), frame...)
	w.Taps = append(w.Taps, append([]byte(nil), cp...))
	if w.Corrupt != nil {
		cp = w.Corrupt(cp)
	}
	k, fired := w.linkFault()
	if !fired {
		w.frames = append(w.frames, cp)
		w.flushHeld()
		return
	}
	switch k {
	case fault.LinkDrop:
		// The frame vanishes; the sender will find the wire empty.
		w.Dropped++
	case fault.LinkDup:
		// Byte-exact replay: the second copy arrives behind the first
		// and must die on the receiver's sequence check.
		w.Duped++
		w.frames = append(w.frames, cp, append([]byte(nil), cp...))
		w.flushHeld()
	case fault.LinkReorder:
		// Held back: released behind the next frame that passes, so the
		// pair arrives out of order.
		w.Reordered++
		w.held = append(w.held, cp)
	}
}

// flushHeld releases reorder-held frames behind the frame just queued.
func (w *Wire) flushHeld() {
	w.frames = append(w.frames, w.held...)
	w.held = nil
}

func (w *Wire) pop() ([]byte, bool) {
	if len(w.frames) == 0 {
		return nil, false
	}
	f := w.frames[0]
	w.frames = w.frames[1:]
	return f, true
}

// Conn is an established attested channel.
type Conn struct {
	a, b *Endpoint
	wire *Wire

	sendKey [32]byte // AES-CTR key material + HMAC key derived per dir
	seqAB   uint64
	seqBA   uint64
}

// handshakeEvidence is what each side sends during setup: its boot
// quote, its domain report (with the X25519 key bound via report data),
// and the key itself.
type handshakeEvidence struct {
	Quote  *tpm.Quote
	Report *core.Report
	Pub    []byte
}

// gatherEvidence produces an endpoint's evidence for the given nonces.
func (e *Endpoint) gatherEvidence(bootNonce, domNonce []byte) (*handshakeEvidence, error) {
	x := ecdh.X25519()
	priv, err := x.GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	e.priv = priv
	pub := priv.PublicKey().Bytes()
	if err := e.Monitor.SetReportData(e.Domain, e.Domain, tpm.Measure(pub)); err != nil {
		return nil, err
	}
	quote, err := e.Monitor.BootQuote(bootNonce)
	if err != nil {
		return nil, err
	}
	report, err := e.Monitor.Attest(e.Domain, domNonce)
	if err != nil {
		return nil, err
	}
	return &handshakeEvidence{Quote: quote, Report: report, Pub: pub}, nil
}

// verifyPeer applies the endpoint's policy to the peer's evidence.
func (e *Endpoint) verifyPeer(ev *handshakeEvidence, bootNonce, domNonce []byte) error {
	sess, err := e.PeerVerifier.NewSession(ev.Quote, bootNonce)
	if err != nil {
		return fmt.Errorf("%w: boot: %v", ErrPeerUntrusted, err)
	}
	if err := sess.VerifyDomain(ev.Report, domNonce); err != nil {
		return fmt.Errorf("%w: report: %v", ErrPeerUntrusted, err)
	}
	if err := attest.RequireSealed(ev.Report); err != nil {
		return fmt.Errorf("%w: %v", ErrPeerUntrusted, err)
	}
	if e.PeerMeasurement != nil {
		if err := attest.RequireMeasurement(ev.Report, *e.PeerMeasurement); err != nil {
			return fmt.Errorf("%w: %v", ErrPeerUntrusted, err)
		}
	}
	if tpm.Measure(ev.Pub) != ev.Report.ReportData {
		return fmt.Errorf("%w: key not bound to attestation", ErrPeerUntrusted)
	}
	return nil
}

// Connect establishes an attested channel between a and b over wire:
// mutual attestation, bound X25519 handshake, session key derivation.
func Connect(a, b *Endpoint, wire *Wire) (*Conn, error) {
	bootNonce := []byte("dist-boot")
	domNonce := []byte("dist-domain")
	evA, err := a.gatherEvidence(bootNonce, domNonce)
	if err != nil {
		return nil, err
	}
	evB, err := b.gatherEvidence(bootNonce, domNonce)
	if err != nil {
		return nil, err
	}
	// Evidence crosses the untrusted wire (it is public; tampering
	// breaks signatures and is caught by verification).
	if err := a.verifyPeer(evB, bootNonce, domNonce); err != nil {
		return nil, err
	}
	if err := b.verifyPeer(evA, bootNonce, domNonce); err != nil {
		return nil, err
	}
	x := ecdh.X25519()
	pubB, err := x.NewPublicKey(evB.Pub)
	if err != nil {
		return nil, err
	}
	secretA, err := a.priv.ECDH(pubB)
	if err != nil {
		return nil, err
	}
	conn := &Conn{a: a, b: b, wire: wire}
	conn.sendKey = sha256.Sum256(secretA)
	return conn, nil
}

// frame layout: 8-byte seq | 8-byte length | ciphertext | 32-byte tag.
func (c *Conn) seal(seq uint64, plaintext []byte) ([]byte, error) {
	block, err := aes.NewCipher(c.sendKey[:16])
	if err != nil {
		return nil, err
	}
	var iv [16]byte
	binary.LittleEndian.PutUint64(iv[:8], seq)
	ct := make([]byte, len(plaintext))
	cipher.NewCTR(block, iv[:]).XORKeyStream(ct, plaintext)
	frame := make([]byte, 16, 16+len(ct)+32)
	binary.LittleEndian.PutUint64(frame[:8], seq)
	binary.LittleEndian.PutUint64(frame[8:16], uint64(len(ct)))
	frame = append(frame, ct...)
	mac := hmac.New(sha256.New, c.sendKey[16:])
	mac.Write(frame)
	return mac.Sum(frame), nil
}

func (c *Conn) open(frame []byte, wantSeq uint64) ([]byte, error) {
	if len(frame) < 48 {
		return nil, ErrTampered
	}
	body, tag := frame[:len(frame)-32], frame[len(frame)-32:]
	mac := hmac.New(sha256.New, c.sendKey[16:])
	mac.Write(body)
	if !hmac.Equal(mac.Sum(nil), tag) {
		return nil, ErrTampered
	}
	seq := binary.LittleEndian.Uint64(body[:8])
	if seq != wantSeq {
		return nil, fmt.Errorf("%w: replayed or reordered (seq %d, want %d)", ErrTampered, seq, wantSeq)
	}
	n := binary.LittleEndian.Uint64(body[8:16])
	if n != uint64(len(body)-16) {
		return nil, ErrTampered
	}
	block, err := aes.NewCipher(c.sendKey[:16])
	if err != nil {
		return nil, err
	}
	var iv [16]byte
	binary.LittleEndian.PutUint64(iv[:8], seq)
	pt := make([]byte, n)
	cipher.NewCTR(block, iv[:]).XORKeyStream(pt, body[16:])
	return pt, nil
}

// Send moves plaintext from endpoint `from`'s buffer to the peer's,
// RDMA-style: ciphertext is staged in the sender's registered buffer,
// the sender's NIC DMA-reads it onto the wire, the receiver's NIC
// DMA-writes it into the peer buffer, and the receiving domain opens
// it. Returns the plaintext as observed by the receiver.
func (c *Conn) Send(from *Endpoint, plaintext []byte) ([]byte, error) {
	to := c.b
	var seq *uint64
	switch from {
	case c.a:
		to, seq = c.b, &c.seqAB
	case c.b:
		to, seq = c.a, &c.seqBA
	default:
		return nil, fmt.Errorf("dist: endpoint not part of this connection")
	}
	frame, err := c.seal(*seq, plaintext)
	if err != nil {
		return nil, err
	}
	if uint64(len(frame)) > from.Buffer.Size() || uint64(len(frame)) > to.Buffer.Size() {
		return nil, ErrTooLarge
	}
	// Stage ciphertext in the sender's registered buffer (the sending
	// domain writes it — capability-checked).
	if err := from.Monitor.CopyInto(from.Domain, from.Buffer.Start, frame); err != nil {
		return nil, err
	}
	// Sender NIC DMA-reads the staged frame (IOMMU-checked).
	out := make([]byte, len(frame))
	if err := from.Monitor.Machine().Device(from.NIC).DMARead(from.Buffer.Start, out); err != nil {
		return nil, fmt.Errorf("dist: tx dma: %w", err)
	}
	c.wire.push(out)
	// Receiver NIC DMA-writes into the peer's registered buffer and
	// raises an interrupt for the owning domain.
	rx, ok := c.wire.pop()
	if !ok {
		return nil, ErrLinkLost
	}
	if err := to.Monitor.Machine().Device(to.NIC).DMAWrite(to.Buffer.Start, rx); err != nil {
		return nil, fmt.Errorf("dist: rx dma: %w", err)
	}
	to.Monitor.Machine().Device(to.NIC).RaiseIRQ(1)
	// The receiving domain reads and authenticates.
	got, err := to.Monitor.CopyFrom(to.Domain, to.Buffer.Start, uint64(len(rx)))
	if err != nil {
		return nil, err
	}
	pt, err := c.open(got, *seq)
	if err != nil {
		return nil, err
	}
	*seq++
	return pt, nil
}

// WireCarried reports whether the adversary's tap ever saw `needle` in
// the clear.
func (w *Wire) WireCarried(needle []byte) bool {
	for _, f := range w.Taps {
		if bytes.Contains(f, needle) {
			return true
		}
	}
	return false
}
