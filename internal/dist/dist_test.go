package dist

import (
	"bytes"
	"errors"
	"testing"

	"github.com/tyche-sim/tyche/internal/attest"
	"github.com/tyche-sim/tyche/internal/core"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/image"
	"github.com/tyche-sim/tyche/internal/libtyche"
	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/tpm"
)

const pg = phys.PageSize

// machineT is one simulated machine with its endpoint enclave.
type machineT struct {
	mon *core.Monitor
	rot *tpm.TPM
	dom *libtyche.Domain
	img *image.Image
}

func buildMachine(t testing.TB, identity []byte) *machineT {
	t.Helper()
	mach, err := hw.NewMachine(hw.Config{
		MemBytes: 16 << 20, NumCores: 2, IOMMUAllowByDefault: true,
		Devices: []hw.DeviceConfig{{Name: "rnic0", Class: hw.DevNIC}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rot, err := tpm.New(nil)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := core.Boot(core.BootConfig{Machine: mach, TPM: rot, Identity: identity})
	if err != nil {
		t.Fatal(err)
	}
	cl := libtyche.New(mon, core.InitialDomain)
	if err := cl.AutoHeap(16); err != nil {
		t.Fatal(err)
	}
	idle := hw.NewAsm()
	idle.Hlt()
	if err := mon.CopyInto(core.InitialDomain, 4*pg, idle.MustAssemble(4*pg)); err != nil {
		t.Fatal(err)
	}
	if err := mon.SetEntry(core.InitialDomain, core.InitialDomain, 4*pg); err != nil {
		t.Fatal(err)
	}
	// The RDMA endpoint enclave: code + registered buffer + the NIC.
	prog := hw.NewAsm()
	prog.Hlt()
	img := image.NewProgram("rdma-endpoint", prog.MustAssemble(0)).WithBSS(".rdma", 2*pg)
	opts := libtyche.DefaultLoadOptions()
	opts.Cores = []phys.CoreID{1}
	opts.Devices = []phys.DeviceID{0}
	dom, err := cl.NewEnclave(img, opts)
	if err != nil {
		t.Fatal(err)
	}
	return &machineT{mon: mon, rot: rot, dom: dom, img: img}
}

func (m *machineT) endpoint(t testing.TB, peer *machineT) *Endpoint {
	t.Helper()
	buf, ok := m.dom.SegmentRegion(".rdma")
	if !ok {
		t.Fatal("no .rdma segment")
	}
	peerMeas, err := peer.img.Measurement(peer.dom.Base())
	if err != nil {
		t.Fatal(err)
	}
	return &Endpoint{
		Monitor:         m.mon,
		TPM:             m.rot,
		Domain:          m.dom.ID(),
		Buffer:          buf,
		NIC:             0,
		PeerVerifier:    attest.NewVerifier(peer.rot.EndorsementKey(), peer.mon.Identity()),
		PeerMeasurement: &peerMeas,
	}
}

func TestAttestedChannelEndToEnd(t *testing.T) {
	ma := buildMachine(t, nil)
	mb := buildMachine(t, nil)
	wire := &Wire{}
	a := ma.endpoint(t, mb)
	b := mb.endpoint(t, ma)
	conn, err := Connect(a, b, wire)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("cross-machine confidential payload")
	got, err := conn.Send(a, msg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("received %q", got)
	}
	// The other direction works too.
	reply := []byte("ack from machine B")
	got, err = conn.Send(b, reply)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, reply) {
		t.Fatalf("reply %q", got)
	}
	// The wire never carried plaintext.
	if wire.WireCarried(msg) || wire.WireCarried(reply) {
		t.Fatal("plaintext on the wire")
	}
	// Neither host OS can read the endpoints' buffers.
	if _, err := ma.mon.CopyFrom(core.InitialDomain, a.Buffer.Start, 8); err == nil {
		t.Fatal("host A read the registered buffer")
	}
	if _, err := mb.mon.CopyFrom(core.InitialDomain, b.Buffer.Start, 8); err == nil {
		t.Fatal("host B read the registered buffer")
	}
	// The receive interrupt went to the endpoint's holder queue.
	if ma.mon.Stats().IRQsDropped+mb.mon.Stats().IRQsDropped == 0 {
		// Endpoints registered no handler: interrupts are pending or
		// dropped at next run; just ensure they were raised.
		if ma.mon.Machine().PendingIRQs()+mb.mon.Machine().PendingIRQs() == 0 {
			t.Fatal("no receive interrupts raised")
		}
	}
}

func TestImpostorMachineRejected(t *testing.T) {
	ma := buildMachine(t, nil)
	// The impostor runs a different (unknown) monitor implementation.
	mc := buildMachine(t, []byte("trojaned monitor build"))
	wire := &Wire{}
	a := ma.endpoint(t, mc)
	// a's verifier only trusts the default identity.
	a.PeerVerifier = attest.NewVerifier(mc.rot.EndorsementKey(), core.DefaultIdentity)
	c := mc.endpoint(t, ma)
	if _, err := Connect(a, c, wire); !errors.Is(err, ErrPeerUntrusted) {
		t.Fatalf("impostor accepted: %v", err)
	}
}

func TestWrongMeasurementRejected(t *testing.T) {
	ma := buildMachine(t, nil)
	mb := buildMachine(t, nil)
	wire := &Wire{}
	a := ma.endpoint(t, mb)
	evil := tpm.Measure([]byte("some other enclave"))
	a.PeerMeasurement = &evil
	b := mb.endpoint(t, ma)
	if _, err := Connect(a, b, wire); !errors.Is(err, ErrPeerUntrusted) {
		t.Fatalf("wrong measurement accepted: %v", err)
	}
}

func TestWireTamperDetected(t *testing.T) {
	ma := buildMachine(t, nil)
	mb := buildMachine(t, nil)
	wire := &Wire{}
	a := ma.endpoint(t, mb)
	b := mb.endpoint(t, ma)
	conn, err := Connect(a, b, wire)
	if err != nil {
		t.Fatal(err)
	}
	wire.Corrupt = func(f []byte) []byte {
		f[20] ^= 0xff // flip a ciphertext byte
		return f
	}
	if _, err := conn.Send(a, []byte("integrity-protected")); !errors.Is(err, ErrTampered) {
		t.Fatalf("tampered frame accepted: %v", err)
	}
	wire.Corrupt = nil
}

func TestReplayRejected(t *testing.T) {
	ma := buildMachine(t, nil)
	mb := buildMachine(t, nil)
	wire := &Wire{}
	a := ma.endpoint(t, mb)
	b := mb.endpoint(t, ma)
	conn, err := Connect(a, b, wire)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Send(a, []byte("first")); err != nil {
		t.Fatal(err)
	}
	// Replay the captured first frame as the second message.
	replay := wire.Taps[0]
	wire.Corrupt = func(f []byte) []byte { return append([]byte(nil), replay...) }
	if _, err := conn.Send(a, []byte("second")); !errors.Is(err, ErrTampered) {
		t.Fatalf("replay accepted: %v", err)
	}
}

func TestOversizedMessageRejected(t *testing.T) {
	ma := buildMachine(t, nil)
	mb := buildMachine(t, nil)
	wire := &Wire{}
	a := ma.endpoint(t, mb)
	b := mb.endpoint(t, ma)
	conn, err := Connect(a, b, wire)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Send(a, make([]byte, 3*pg)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized accepted: %v", err)
	}
	// Foreign endpoints are rejected.
	if _, err := conn.Send(&Endpoint{}, []byte("x")); err == nil {
		t.Fatal("foreign endpoint accepted")
	}
}
