package dist

import (
	"bytes"
	"errors"
	"testing"

	"github.com/tyche-sim/tyche/internal/attest"
	"github.com/tyche-sim/tyche/internal/core"
	"github.com/tyche-sim/tyche/internal/fault"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/image"
	"github.com/tyche-sim/tyche/internal/libtyche"
	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/tpm"
)

const pg = phys.PageSize

// machineT is one simulated machine with its endpoint enclave.
type machineT struct {
	mon *core.Monitor
	rot *tpm.TPM
	dom *libtyche.Domain
	img *image.Image
}

func buildMachine(t testing.TB, identity []byte) *machineT {
	t.Helper()
	mach, err := hw.NewMachine(hw.Config{
		MemBytes: 16 << 20, NumCores: 2, IOMMUAllowByDefault: true,
		Devices: []hw.DeviceConfig{{Name: "rnic0", Class: hw.DevNIC}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rot, err := tpm.New(nil)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := core.Boot(core.BootConfig{Machine: mach, TPM: rot, Identity: identity})
	if err != nil {
		t.Fatal(err)
	}
	cl := libtyche.New(mon, core.InitialDomain)
	if err := cl.AutoHeap(16); err != nil {
		t.Fatal(err)
	}
	idle := hw.NewAsm()
	idle.Hlt()
	if err := mon.CopyInto(core.InitialDomain, 4*pg, idle.MustAssemble(4*pg)); err != nil {
		t.Fatal(err)
	}
	if err := mon.SetEntry(core.InitialDomain, core.InitialDomain, 4*pg); err != nil {
		t.Fatal(err)
	}
	// The RDMA endpoint enclave: code + registered buffer + the NIC.
	prog := hw.NewAsm()
	prog.Hlt()
	img := image.NewProgram("rdma-endpoint", prog.MustAssemble(0)).WithBSS(".rdma", 2*pg)
	opts := libtyche.DefaultLoadOptions()
	opts.Cores = []phys.CoreID{1}
	opts.Devices = []phys.DeviceID{0}
	dom, err := cl.NewEnclave(img, opts)
	if err != nil {
		t.Fatal(err)
	}
	return &machineT{mon: mon, rot: rot, dom: dom, img: img}
}

func (m *machineT) endpoint(t testing.TB, peer *machineT) *Endpoint {
	t.Helper()
	buf, ok := m.dom.SegmentRegion(".rdma")
	if !ok {
		t.Fatal("no .rdma segment")
	}
	peerMeas, err := peer.img.Measurement(peer.dom.Base())
	if err != nil {
		t.Fatal(err)
	}
	return &Endpoint{
		Monitor:         m.mon,
		TPM:             m.rot,
		Domain:          m.dom.ID(),
		Buffer:          buf,
		NIC:             0,
		PeerVerifier:    attest.NewVerifier(peer.rot.EndorsementKey(), peer.mon.Identity()),
		PeerMeasurement: &peerMeas,
	}
}

func TestAttestedChannelEndToEnd(t *testing.T) {
	ma := buildMachine(t, nil)
	mb := buildMachine(t, nil)
	wire := &Wire{}
	a := ma.endpoint(t, mb)
	b := mb.endpoint(t, ma)
	conn, err := Connect(a, b, wire)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("cross-machine confidential payload")
	got, err := conn.Send(a, msg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("received %q", got)
	}
	// The other direction works too.
	reply := []byte("ack from machine B")
	got, err = conn.Send(b, reply)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, reply) {
		t.Fatalf("reply %q", got)
	}
	// The wire never carried plaintext.
	if wire.WireCarried(msg) || wire.WireCarried(reply) {
		t.Fatal("plaintext on the wire")
	}
	// Neither host OS can read the endpoints' buffers.
	if _, err := ma.mon.CopyFrom(core.InitialDomain, a.Buffer.Start, 8); err == nil {
		t.Fatal("host A read the registered buffer")
	}
	if _, err := mb.mon.CopyFrom(core.InitialDomain, b.Buffer.Start, 8); err == nil {
		t.Fatal("host B read the registered buffer")
	}
	// The receive interrupt went to the endpoint's holder queue.
	if ma.mon.Stats().IRQsDropped+mb.mon.Stats().IRQsDropped == 0 {
		// Endpoints registered no handler: interrupts are pending or
		// dropped at next run; just ensure they were raised.
		if ma.mon.Machine().PendingIRQs()+mb.mon.Machine().PendingIRQs() == 0 {
			t.Fatal("no receive interrupts raised")
		}
	}
}

func TestImpostorMachineRejected(t *testing.T) {
	ma := buildMachine(t, nil)
	// The impostor runs a different (unknown) monitor implementation.
	mc := buildMachine(t, []byte("trojaned monitor build"))
	wire := &Wire{}
	a := ma.endpoint(t, mc)
	// a's verifier only trusts the default identity.
	a.PeerVerifier = attest.NewVerifier(mc.rot.EndorsementKey(), core.DefaultIdentity)
	c := mc.endpoint(t, ma)
	if _, err := Connect(a, c, wire); !errors.Is(err, ErrPeerUntrusted) {
		t.Fatalf("impostor accepted: %v", err)
	}
}

func TestWrongMeasurementRejected(t *testing.T) {
	ma := buildMachine(t, nil)
	mb := buildMachine(t, nil)
	wire := &Wire{}
	a := ma.endpoint(t, mb)
	evil := tpm.Measure([]byte("some other enclave"))
	a.PeerMeasurement = &evil
	b := mb.endpoint(t, ma)
	if _, err := Connect(a, b, wire); !errors.Is(err, ErrPeerUntrusted) {
		t.Fatalf("wrong measurement accepted: %v", err)
	}
}

func TestWireTamperDetected(t *testing.T) {
	ma := buildMachine(t, nil)
	mb := buildMachine(t, nil)
	wire := &Wire{}
	a := ma.endpoint(t, mb)
	b := mb.endpoint(t, ma)
	conn, err := Connect(a, b, wire)
	if err != nil {
		t.Fatal(err)
	}
	wire.Corrupt = func(f []byte) []byte {
		f[20] ^= 0xff // flip a ciphertext byte
		return f
	}
	if _, err := conn.Send(a, []byte("integrity-protected")); !errors.Is(err, ErrTampered) {
		t.Fatalf("tampered frame accepted: %v", err)
	}
	wire.Corrupt = nil
}

func TestReplayRejected(t *testing.T) {
	ma := buildMachine(t, nil)
	mb := buildMachine(t, nil)
	wire := &Wire{}
	a := ma.endpoint(t, mb)
	b := mb.endpoint(t, ma)
	conn, err := Connect(a, b, wire)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Send(a, []byte("first")); err != nil {
		t.Fatal(err)
	}
	// Replay the captured first frame as the second message.
	replay := wire.Taps[0]
	wire.Corrupt = func(f []byte) []byte { return append([]byte(nil), replay...) }
	if _, err := conn.Send(a, []byte("second")); !errors.Is(err, ErrTampered) {
		t.Fatalf("replay accepted: %v", err)
	}
}

// TestLinkDropRetryable: a dropped frame surfaces as ErrLinkLost — not
// an integrity failure — and the unconsumed sequence number lets the
// sender retry the identical payload successfully.
func TestLinkDropRetryable(t *testing.T) {
	ma := buildMachine(t, nil)
	mb := buildMachine(t, nil)
	wire := &Wire{}
	faults, err := fault.ParseSchedule("drop@0")
	if err != nil {
		t.Fatal(err)
	}
	wire.Arm(faults)
	a := ma.endpoint(t, mb)
	b := mb.endpoint(t, ma)
	conn, err := Connect(a, b, wire)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("at-most-once is not enough")
	if _, err := conn.Send(a, msg); !errors.Is(err, ErrLinkLost) {
		t.Fatalf("dropped frame: %v", err)
	}
	if wire.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", wire.Dropped)
	}
	got, err := conn.Send(a, msg)
	if err != nil {
		t.Fatalf("retry after drop: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("retry delivered %q", got)
	}
}

// TestLinkDupRejectedAsReplay: a duplicated frame is a byte-exact
// replay; the first copy delivers, the stale second copy dies on the
// receiver's sequence check with ErrTampered.
func TestLinkDupRejectedAsReplay(t *testing.T) {
	ma := buildMachine(t, nil)
	mb := buildMachine(t, nil)
	wire := &Wire{}
	faults, err := fault.ParseSchedule("dup@0")
	if err != nil {
		t.Fatal(err)
	}
	wire.Arm(faults)
	a := ma.endpoint(t, mb)
	b := mb.endpoint(t, ma)
	conn, err := Connect(a, b, wire)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Send(a, []byte("first")); err != nil {
		t.Fatalf("first copy should deliver: %v", err)
	}
	if _, err := conn.Send(a, []byte("second")); !errors.Is(err, ErrTampered) {
		t.Fatalf("stale duplicate accepted: %v", err)
	}
	if wire.Duped != 1 {
		t.Fatalf("Duped = %d, want 1", wire.Duped)
	}
}

// TestLinkReorderRejected: a held-back frame first looks like a loss
// (ErrLinkLost, retryable), and when it finally lands out of order the
// receiver rejects it as reordered with ErrTampered.
func TestLinkReorderRejected(t *testing.T) {
	ma := buildMachine(t, nil)
	mb := buildMachine(t, nil)
	wire := &Wire{}
	faults, err := fault.ParseSchedule("reorder@0")
	if err != nil {
		t.Fatal(err)
	}
	wire.Arm(faults)
	a := ma.endpoint(t, mb)
	b := mb.endpoint(t, ma)
	conn, err := Connect(a, b, wire)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Send(a, []byte("held")); !errors.Is(err, ErrLinkLost) {
		t.Fatalf("held frame: %v", err)
	}
	// Retry passes (fresh frame, same seq); the stale held frame is
	// released behind it.
	if _, err := conn.Send(a, []byte("held")); err != nil {
		t.Fatalf("retry after reorder: %v", err)
	}
	// The late out-of-order frame now precedes the next send and must
	// be rejected by the sequence check.
	if _, err := conn.Send(a, []byte("next")); !errors.Is(err, ErrTampered) {
		t.Fatalf("out-of-order frame accepted: %v", err)
	}
	if wire.Reordered != 1 {
		t.Fatalf("Reordered = %d, want 1", wire.Reordered)
	}
}

// TestLinkFaultsDeterministic: the same armed schedule applied to the
// same frame stream produces the same deliveries, byte for byte.
func TestLinkFaultsDeterministic(t *testing.T) {
	run := func() ([][]byte, [3]uint64) {
		w := &Wire{}
		w.Arm(fault.FromSeedLinks(1234, 5))
		for i := byte(0); i < 8; i++ {
			w.push([]byte{i, i, i})
		}
		var out [][]byte
		for {
			f, ok := w.pop()
			if !ok {
				break
			}
			out = append(out, f)
		}
		return out, [3]uint64{w.Dropped, w.Duped, w.Reordered}
	}
	d1, c1 := run()
	d2, c2 := run()
	if c1 != c2 {
		t.Fatalf("counters diverged: %v vs %v", c1, c2)
	}
	if len(d1) != len(d2) {
		t.Fatalf("delivery count diverged: %d vs %d", len(d1), len(d2))
	}
	for i := range d1 {
		if !bytes.Equal(d1[i], d2[i]) {
			t.Fatalf("delivery %d diverged", i)
		}
	}
	if c1[0]+c1[1]+c1[2] == 0 {
		t.Fatal("seeded schedule fired nothing")
	}
}

func TestOversizedMessageRejected(t *testing.T) {
	ma := buildMachine(t, nil)
	mb := buildMachine(t, nil)
	wire := &Wire{}
	a := ma.endpoint(t, mb)
	b := mb.endpoint(t, ma)
	conn, err := Connect(a, b, wire)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Send(a, make([]byte, 3*pg)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized accepted: %v", err)
	}
	// Foreign endpoints are rejected.
	if _, err := conn.Send(&Endpoint{}, []byte("x")); err == nil {
		t.Fatal("foreign endpoint accepted")
	}
}
