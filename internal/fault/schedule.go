package fault

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"github.com/tyche-sim/tyche/internal/phys"
)

// Schedule strings. A schedule is a comma-separated list of fault
// specs; FormatSchedule(ParseSchedule(s)) round-trips. The grammar:
//
//	mc<core>@<after>[x<count>]              machine check on core
//	stall<core>@<after>                     hard core stall
//	dropirq<dev>@<after>[x<count>]          drop device's raised IRQs
//	spurious<dev>.<vector>@<after>[x<count>] phantom IRQ on poll
//	quote@<after>[x<count>]                 transient TPM quote failure
//	drop@<after>[x<count>]                  discard wire frame (link fault)
//	dup@<after>[x<count>]                   replay wire frame (link fault)
//	reorder@<after>[x<count>]               swap wire frame with its successor
//
// e.g. "mc1@128,dropirq0@2x3,quote@0x2" — machine-check core 1's 129th
// access, drop nic 0's 3rd-5th raises, fail the first two quotes.
// Printed in every failing test's output, a schedule string plus the
// workload seed is the complete reproducer.

// FormatFault renders one fault in schedule grammar.
func FormatFault(f Fault) string {
	var b strings.Builder
	switch f.Kind {
	case MachineCheck:
		fmt.Fprintf(&b, "mc%d", f.Core)
	case CoreStall:
		fmt.Fprintf(&b, "stall%d", f.Core)
	case DropIRQ:
		fmt.Fprintf(&b, "dropirq%d", f.Device)
	case SpuriousIRQ:
		fmt.Fprintf(&b, "spurious%d.%d", f.Device, f.Vector)
	case QuoteFail:
		b.WriteString("quote")
	case LinkDrop, LinkDup, LinkReorder:
		b.WriteString(f.Kind.String())
	default:
		fmt.Fprintf(&b, "kind%d", f.Kind)
	}
	fmt.Fprintf(&b, "@%d", f.After)
	if f.count() != 1 {
		fmt.Fprintf(&b, "x%d", f.count())
	}
	return b.String()
}

// FormatSchedule renders a schedule as a parseable string.
func FormatSchedule(faults []Fault) string {
	specs := make([]string, len(faults))
	for i, f := range faults {
		specs[i] = FormatFault(f)
	}
	return strings.Join(specs, ",")
}

// ParseFault parses one spec in schedule grammar.
func ParseFault(spec string) (Fault, error) {
	bad := func(why string) (Fault, error) {
		return Fault{}, fmt.Errorf("fault: bad spec %q: %s", spec, why)
	}
	head, tail, ok := strings.Cut(spec, "@")
	if !ok {
		return bad("missing @after")
	}
	var f Fault
	switch {
	case strings.HasPrefix(head, "mc"):
		f.Kind = MachineCheck
		head = head[len("mc"):]
	case strings.HasPrefix(head, "stall"):
		f.Kind = CoreStall
		head = head[len("stall"):]
	case strings.HasPrefix(head, "dropirq"):
		f.Kind = DropIRQ
		head = head[len("dropirq"):]
	case strings.HasPrefix(head, "spurious"):
		f.Kind = SpuriousIRQ
		head = head[len("spurious"):]
	case head == "quote":
		f.Kind = QuoteFail
		head = ""
	case head == "drop":
		f.Kind = LinkDrop
		head = ""
	case head == "dup":
		f.Kind = LinkDup
		head = ""
	case head == "reorder":
		f.Kind = LinkReorder
		head = ""
	default:
		return bad("unknown kind")
	}
	switch f.Kind {
	case MachineCheck, CoreStall:
		n, err := strconv.ParseUint(head, 10, 32)
		if err != nil {
			return bad("core: " + err.Error())
		}
		f.Core = phys.CoreID(n)
	case DropIRQ:
		n, err := strconv.ParseUint(head, 10, 32)
		if err != nil {
			return bad("device: " + err.Error())
		}
		f.Device = phys.DeviceID(n)
	case SpuriousIRQ:
		devs, vecs, ok := strings.Cut(head, ".")
		if !ok {
			return bad("spurious needs dev.vector")
		}
		d, err := strconv.ParseUint(devs, 10, 32)
		if err != nil {
			return bad("device: " + err.Error())
		}
		v, err := strconv.ParseUint(vecs, 10, 32)
		if err != nil {
			return bad("vector: " + err.Error())
		}
		f.Device = phys.DeviceID(d)
		f.Vector = uint32(v)
	case QuoteFail:
		if head != "" {
			return bad("quote takes no target")
		}
	case LinkDrop, LinkDup, LinkReorder:
		if head != "" {
			return bad("link faults take no target")
		}
	}
	afters, counts, hasCount := strings.Cut(tail, "x")
	after, err := strconv.ParseUint(afters, 10, 64)
	if err != nil {
		return bad("after: " + err.Error())
	}
	f.After = after
	if hasCount {
		cnt, err := strconv.ParseUint(counts, 10, 64)
		if err != nil || cnt == 0 {
			return bad("count must be a positive integer")
		}
		f.Count = cnt
	}
	return f, nil
}

// ParseSchedule parses a comma-separated schedule string. The empty
// string is the empty schedule.
func ParseSchedule(s string) ([]Fault, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []Fault
	for _, spec := range strings.Split(s, ",") {
		f, err := ParseFault(strings.TrimSpace(spec))
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// FromSeed derives a schedule of n faults for a machine with the given
// core and device counts, deterministically from seed: same inputs,
// same schedule, forever. Core-targeted faults avoid core 0 when the
// machine has more than one core, so the schedule never takes out the
// core conventionally driving dom0's control workload.
func FromSeed(seed int64, cores, devices, n int) []Fault {
	rng := rand.New(rand.NewSource(seed))
	kinds := []Kind{MachineCheck, CoreStall, DropIRQ, SpuriousIRQ, QuoteFail}
	if devices == 0 {
		kinds = kinds[:2]
	}
	out := make([]Fault, 0, n)
	for i := 0; i < n; i++ {
		f := Fault{Kind: kinds[rng.Intn(len(kinds))]}
		switch f.Kind {
		case MachineCheck, CoreStall:
			if cores > 1 {
				f.Core = phys.CoreID(1 + rng.Intn(cores-1))
			}
			f.After = uint64(rng.Intn(256))
		case DropIRQ:
			f.Device = phys.DeviceID(rng.Intn(devices))
			f.After = uint64(rng.Intn(4))
			f.Count = uint64(1 + rng.Intn(3))
		case SpuriousIRQ:
			f.Device = phys.DeviceID(rng.Intn(devices))
			f.Vector = uint32(rng.Intn(8))
			f.After = uint64(rng.Intn(4))
		case QuoteFail:
			f.After = uint64(rng.Intn(2))
			f.Count = uint64(1 + rng.Intn(2))
		}
		out = append(out, f)
	}
	return out
}

// FromSeedLinks derives a schedule of n link faults deterministically
// from seed, for arming a dist.Wire. Offsets stay small so even a
// short migration exchange (a handful of frames) hits the schedule.
func FromSeedLinks(seed int64, n int) []Fault {
	rng := rand.New(rand.NewSource(seed))
	kinds := []Kind{LinkDrop, LinkDup, LinkReorder}
	out := make([]Fault, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Fault{
			Kind:  kinds[rng.Intn(len(kinds))],
			After: uint64(rng.Intn(4)),
		})
	}
	return out
}
