// Package fault is the deterministic fault-injection subsystem. It
// implements hw.FaultInjector: a schedule of armed faults fires against
// the simulated hardware at exact, countable event offsets, so any
// failure an injected run produces is replayable from the pair
// (seed, schedule) alone — no wall clock, no process randomness.
//
// Determinism model. Every fault carries a countdown (After) over the
// events that match it. Core-targeted faults (machine checks, stalls)
// count that core's own memory accesses, which are totally ordered by
// the core's instruction stream even under SMP. Device-targeted faults
// count the interrupt controller's raise/poll events, which are ordered
// by its lock. Randomness exists only at plan-construction time
// (FromSeed); at injection time the injector is a pure counter machine.
//
// Runtime Verification for Trustworthy Computing (PAPERS.md) motivates
// the loop: inject, let the monitor contain, re-check every isolation
// invariant, repeat — under the race detector.
package fault

import (
	"errors"
	"fmt"
	"sync"

	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/tpm"
)

// Kind classifies an injectable hardware fault.
type Kind uint8

// Fault kinds.
const (
	// MachineCheck aborts a matching memory access on the target core
	// with hw.TrapMachineCheck; the core itself survives.
	MachineCheck Kind = iota
	// CoreStall hard-crashes the target core mid-access: the access and
	// every later step raise hw.TrapMachineCheck until the core is
	// explicitly un-stalled.
	CoreStall
	// DropIRQ eats interrupts the target device raises (lost lines).
	DropIRQ
	// SpuriousIRQ delivers phantom interrupts for the target device
	// ahead of the controller's real queue.
	SpuriousIRQ
	// QuoteFail makes the TPM's MakeQuote return a transient error.
	QuoteFail
	// LinkDrop silently discards a matching frame pushed onto an
	// attested wire (dist.Wire.Arm). Link kinds count the wire's own
	// push events — ordered by the sender's send sequence — so they
	// obey the same pure-counter determinism as hardware kinds. The
	// Injector itself never fires them; they exist so one schedule
	// string can describe machine and network faults together.
	LinkDrop
	// LinkDup enqueues a matching frame twice: the receiver sees a
	// byte-exact replay, which the channel's sequence check must
	// reject as tampering.
	LinkDup
	// LinkReorder holds a matching frame back and releases it after
	// the next frame passes, delivering the pair out of order.
	LinkReorder
)

var kindNames = [...]string{
	MachineCheck: "mc", CoreStall: "stall", DropIRQ: "dropirq",
	SpuriousIRQ: "spurious", QuoteFail: "quote",
	LinkDrop: "drop", LinkDup: "dup", LinkReorder: "reorder",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Link reports whether k targets an attested wire rather than the
// simulated hardware. The Injector never fires link kinds; dist.Wire
// consumes them via its own Arm.
func (k Kind) Link() bool {
	return k == LinkDrop || k == LinkDup || k == LinkReorder
}

// Fault is one armed injection: fire Count times against events that
// match (Kind, Core|Device), after letting After matching events pass.
type Fault struct {
	Kind Kind
	// Core targets MachineCheck and CoreStall.
	Core phys.CoreID
	// Device targets DropIRQ and SpuriousIRQ.
	Device phys.DeviceID
	// Vector is the vector a SpuriousIRQ delivers.
	Vector uint32
	// After is how many matching events pass untouched before firing.
	After uint64
	// Count is how many matching events are affected (0 means 1).
	Count uint64
}

func (f Fault) count() uint64 {
	if f.Count == 0 {
		return 1
	}
	return f.Count
}

// Firing records one fault actually firing, for replay assertions.
type Firing struct {
	Fault Fault
	// Seq is the 1-based index of the matching event the fault hit.
	Seq uint64
	// Addr is the access address for core-targeted faults.
	Addr phys.Addr
}

func (fr Firing) String() string {
	return fmt.Sprintf("%s@%d(addr=%v)", FormatFault(fr.Fault), fr.Seq, fr.Addr)
}

// ErrQuote is the transient error an injected QuoteFail surfaces from
// the TPM.
var ErrQuote = errors.New("injected transient quote failure")

// armed is one fault plus its live counters.
type armed struct {
	f Fault
	// seen counts matching events observed so far.
	seen uint64
	// done counts events this fault has affected.
	done uint64
}

// Injector implements hw.FaultInjector over a fixed schedule. It is
// safe for concurrent use by all cores and devices; the determinism
// contract is documented on the package.
type Injector struct {
	mu    sync.Mutex
	armed []*armed
	fired []Firing
}

// NewInjector arms the given schedule.
func NewInjector(faults ...Fault) *Injector {
	in := &Injector{}
	for _, f := range faults {
		in.armed = append(in.armed, &armed{f: f})
	}
	return in
}

// Schedule returns the armed schedule in arming order.
func (in *Injector) Schedule() []Fault {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Fault, len(in.armed))
	for i, af := range in.armed {
		out[i] = af.f
	}
	return out
}

// Fired returns every firing so far, in firing order.
func (in *Injector) Fired() []Firing {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Firing(nil), in.fired...)
}

// Exhausted reports whether every armed fault has fired its full count.
func (in *Injector) Exhausted() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, af := range in.armed {
		if af.done < af.f.count() {
			return false
		}
	}
	return true
}

// Arm installs the injector on machine m and (when non-nil) TPM t.
func (in *Injector) Arm(m *hw.Machine, t *tpm.TPM) {
	m.SetFaultInjector(in)
	if t != nil {
		t.SetQuoteHook(in.QuoteHook())
	}
}

// OnAccess implements hw.FaultInjector for core-targeted faults.
func (in *Injector) OnAccess(core phys.CoreID, a phys.Addr, want hw.Perm) hw.FaultAction {
	in.mu.Lock()
	defer in.mu.Unlock()
	act := hw.FaultNone
	for _, af := range in.armed {
		if (af.f.Kind != MachineCheck && af.f.Kind != CoreStall) || af.f.Core != core {
			continue
		}
		af.seen++
		if af.seen <= af.f.After || af.done >= af.f.count() {
			continue
		}
		af.done++
		in.fired = append(in.fired, Firing{Fault: af.f, Seq: af.seen, Addr: a})
		if af.f.Kind == CoreStall {
			// A stall dominates a same-event machine check: the core is
			// gone either way, and stalling is the stronger poison.
			act = hw.FaultStall
		} else if act == hw.FaultNone {
			act = hw.FaultAbort
		}
	}
	return act
}

// OnRaiseIRQ implements hw.FaultInjector for dropped interrupts.
func (in *Injector) OnRaiseIRQ(dev phys.DeviceID, vector uint32) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	drop := false
	for _, af := range in.armed {
		if af.f.Kind != DropIRQ || af.f.Device != dev {
			continue
		}
		af.seen++
		if af.seen <= af.f.After || af.done >= af.f.count() {
			continue
		}
		af.done++
		in.fired = append(in.fired, Firing{Fault: af.f, Seq: af.seen})
		drop = true
	}
	return drop
}

// TakeSpuriousIRQ implements hw.FaultInjector for phantom interrupts.
// Every controller poll counts as one matching event per armed
// SpuriousIRQ fault; the first due fault delivers.
func (in *Injector) TakeSpuriousIRQ() (hw.IRQ, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, af := range in.armed {
		if af.f.Kind != SpuriousIRQ {
			continue
		}
		af.seen++
		if af.seen <= af.f.After || af.done >= af.f.count() {
			continue
		}
		af.done++
		in.fired = append(in.fired, Firing{Fault: af.f, Seq: af.seen})
		return hw.IRQ{Device: af.f.Device, Vector: af.f.Vector}, true
	}
	return hw.IRQ{}, false
}

// QuoteHook returns the function to install via tpm.SetQuoteHook: each
// quote attempt counts as one matching event per armed QuoteFail fault.
func (in *Injector) QuoteHook() func() error {
	return func() error {
		in.mu.Lock()
		defer in.mu.Unlock()
		var err error
		for _, af := range in.armed {
			if af.f.Kind != QuoteFail {
				continue
			}
			af.seen++
			if af.seen <= af.f.After || af.done >= af.f.count() {
				continue
			}
			af.done++
			in.fired = append(in.fired, Firing{Fault: af.f, Seq: af.seen})
			err = ErrQuote
		}
		return err
	}
}
