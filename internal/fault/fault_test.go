package fault

import (
	"errors"
	"reflect"
	"testing"

	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/tpm"
)

func TestScheduleRoundTrip(t *testing.T) {
	cases := []struct {
		spec string
		want Fault
	}{
		{"mc1@128", Fault{Kind: MachineCheck, Core: 1, After: 128}},
		{"mc0@0", Fault{Kind: MachineCheck}},
		{"stall2@64", Fault{Kind: CoreStall, Core: 2, After: 64}},
		{"dropirq0@2x3", Fault{Kind: DropIRQ, Device: 0, After: 2, Count: 3}},
		{"spurious1.7@1", Fault{Kind: SpuriousIRQ, Device: 1, Vector: 7, After: 1}},
		{"quote@0x2", Fault{Kind: QuoteFail, After: 0, Count: 2}},
		{"drop@1", Fault{Kind: LinkDrop, After: 1}},
		{"dup@0x2", Fault{Kind: LinkDup, After: 0, Count: 2}},
		{"reorder@3", Fault{Kind: LinkReorder, After: 3}},
	}
	for _, tc := range cases {
		got, err := ParseFault(tc.spec)
		if err != nil {
			t.Fatalf("ParseFault(%q): %v", tc.spec, err)
		}
		if got != tc.want {
			t.Fatalf("ParseFault(%q) = %+v, want %+v", tc.spec, got, tc.want)
		}
		if back := FormatFault(got); back != tc.spec {
			t.Fatalf("FormatFault(%+v) = %q, want %q", got, back, tc.spec)
		}
	}
	sched := "mc1@128,dropirq0@2x3,quote@0x2"
	fs, err := ParseSchedule(sched)
	if err != nil {
		t.Fatal(err)
	}
	if FormatSchedule(fs) != sched {
		t.Fatalf("schedule round trip: %q != %q", FormatSchedule(fs), sched)
	}
	if fs, err := ParseSchedule("  "); err != nil || fs != nil {
		t.Fatalf("empty schedule: %v, %v", fs, err)
	}
	for _, bad := range []string{"mc1", "bogus3@1", "mc@1", "spurious1@0", "quote7@1", "mc1@1x0", "mc1@-3", "drop1@0", "reorder.2@0"} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Fatalf("ParseSchedule(%q): expected error", bad)
		}
	}
}

func TestFromSeedDeterministic(t *testing.T) {
	a := FromSeed(42, 4, 2, 16)
	b := FromSeed(42, 4, 2, 16)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed must derive identical schedules")
	}
	c := FromSeed(43, 4, 2, 16)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds should derive different schedules")
	}
	for _, f := range a {
		if f.Kind == MachineCheck || f.Kind == CoreStall {
			if f.Core == 0 {
				t.Fatalf("FromSeed targeted core 0: %+v", f)
			}
			if int(f.Core) >= 4 {
				t.Fatalf("FromSeed core out of range: %+v", f)
			}
		}
		if (f.Kind == DropIRQ || f.Kind == SpuriousIRQ) && int(f.Device) >= 2 {
			t.Fatalf("FromSeed device out of range: %+v", f)
		}
	}
	// No devices: only core faults can be derived.
	for _, f := range FromSeed(7, 2, 0, 8) {
		if f.Kind != MachineCheck && f.Kind != CoreStall {
			t.Fatalf("device fault derived on device-less machine: %+v", f)
		}
	}
	// Link schedules are deterministic too, and purely link-kinded.
	la := FromSeedLinks(9, 6)
	if !reflect.DeepEqual(la, FromSeedLinks(9, 6)) {
		t.Fatal("same seed must derive identical link schedules")
	}
	for _, f := range la {
		if !f.Kind.Link() {
			t.Fatalf("FromSeedLinks derived a non-link fault: %+v", f)
		}
	}
}

// runLoop loads a store loop on core and runs it under the injector,
// returning the stopping trap and retired-instruction count.
func runLoop(t *testing.T, in *Injector) (hw.Trap, uint64, []Firing) {
	t.Helper()
	m, err := hw.NewMachine(hw.Config{MemBytes: 1 << 20, NumCores: 1})
	if err != nil {
		t.Fatal(err)
	}
	in.Arm(m, nil)
	a := hw.NewAsm()
	a.Movi(1, 0x8000) // store base
	a.Movi(2, 0)      // i
	a.Movi(3, 200)
	a.Label("loop")
	a.St(1, 0, 2)
	a.Addi(2, 2, 1)
	a.Jlt(2, 3, "loop")
	a.Hlt()
	code, err := a.Assemble(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Mem.WriteAt(0x1000, code); err != nil {
		t.Fatal(err)
	}
	core := m.Cores[0]
	core.InstallContext(&hw.Context{Owner: 1, Filter: hw.AllowAll{}, Entry: 0x1000})
	core.PC = 0x1000
	_, trap := core.Run(10_000)
	return trap, core.InstrCount(), in.Fired()
}

func TestMachineCheckFiresAtExactEvent(t *testing.T) {
	f := Fault{Kind: MachineCheck, Core: 0, After: 57}
	trap, instrs, fired := runLoop(t, NewInjector(f))
	if trap.Kind != hw.TrapMachineCheck {
		t.Fatalf("trap = %v, want machine-check", trap)
	}
	if len(fired) != 1 || fired[0].Seq != 58 {
		t.Fatalf("fired = %v, want one firing at seq 58", fired)
	}
	// Replay: a fresh machine and injector reproduce the identical
	// trap, firing record, and retired-instruction count.
	trap2, instrs2, fired2 := runLoop(t, NewInjector(f))
	if trap2 != trap || instrs2 != instrs || !reflect.DeepEqual(fired2, fired) {
		t.Fatalf("replay diverged: %v/%d/%v vs %v/%d/%v",
			trap, instrs, fired, trap2, instrs2, fired2)
	}
}

func TestMachineCheckAbortsDoNotStall(t *testing.T) {
	in := NewInjector(Fault{Kind: MachineCheck, Core: 0, After: 10})
	trap, _, _ := runLoop(t, in)
	if trap.Kind != hw.TrapMachineCheck {
		t.Fatalf("trap = %v", trap)
	}
	if !in.Exhausted() {
		t.Fatal("single-shot fault should be exhausted")
	}
}

func TestCoreStallPoisonsUntilCleared(t *testing.T) {
	m, err := hw.NewMachine(hw.Config{MemBytes: 1 << 20, NumCores: 2})
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(Fault{Kind: CoreStall, Core: 1, After: 3})
	in.Arm(m, nil)
	a := hw.NewAsm()
	a.Label("loop")
	a.Nop()
	a.Jmp("loop")
	code, err := a.Assemble(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Mem.WriteAt(0x1000, code); err != nil {
		t.Fatal(err)
	}
	victim := m.Cores[1]
	victim.InstallContext(&hw.Context{Owner: 1, Filter: hw.AllowAll{}, Entry: 0x1000})
	victim.PC = 0x1000
	if _, trap := victim.Run(100); trap.Kind != hw.TrapMachineCheck {
		t.Fatalf("trap = %v, want machine-check", trap)
	}
	if !victim.Stalled() {
		t.Fatal("core should be stalled")
	}
	// Every further step raises the machine check without executing.
	before := victim.InstrCount()
	if trap := victim.Step(); trap.Kind != hw.TrapMachineCheck {
		t.Fatalf("stalled step trap = %v", trap)
	}
	if victim.InstrCount() != before {
		t.Fatal("stalled core retired an instruction")
	}
	// The sibling core is untouched.
	other := m.Cores[0]
	other.InstallContext(&hw.Context{Owner: 2, Filter: hw.AllowAll{}, Entry: 0x1000})
	other.PC = 0x1000
	if _, trap := other.Run(10); trap.Kind != hw.TrapNone {
		t.Fatalf("sibling trap = %v", trap)
	}
	victim.ClearStall()
	if victim.Stalled() {
		t.Fatal("ClearStall did not clear")
	}
	if trap := victim.Step(); trap.Kind != hw.TrapNone {
		t.Fatalf("post-clear step = %v", trap)
	}
}

func TestDropAndSpuriousIRQs(t *testing.T) {
	m, err := hw.NewMachine(hw.Config{MemBytes: 1 << 20, NumCores: 1,
		Devices: []hw.DeviceConfig{{Name: "nic0", Class: hw.DevNIC}}})
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(
		Fault{Kind: DropIRQ, Device: 0, After: 1, Count: 2},
		Fault{Kind: SpuriousIRQ, Device: 0, Vector: 9, After: 2},
	)
	in.Arm(m, nil)
	for i := 0; i < 5; i++ {
		m.RaiseIRQ(0, uint32(i))
	}
	// The 2nd and 3rd raises (after=1, count=2) were dropped.
	if got := m.PendingIRQs(); got != 3 {
		t.Fatalf("pending = %d, want 3", got)
	}
	var got []hw.IRQ
	for {
		irq, ok := m.TakeIRQ()
		if !ok {
			break
		}
		got = append(got, irq)
	}
	want := []hw.IRQ{
		{Device: 0, Vector: 0},
		{Device: 0, Vector: 3}, // vectors 1 and 2 were dropped at raise
		{Device: 0, Vector: 9}, // spurious, injected on the 3rd poll
		{Device: 0, Vector: 4},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("delivered = %v, want %v", got, want)
	}
	if !in.Exhausted() {
		t.Fatalf("schedule not exhausted: fired %v", in.Fired())
	}
}

func TestQuoteFailureIsTransient(t *testing.T) {
	rot, err := tpm.New(nil)
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(Fault{Kind: QuoteFail, After: 1, Count: 2})
	rot.SetQuoteHook(in.QuoteHook())
	quote := func() error {
		_, err := rot.MakeQuote([]byte("nonce"), []int{0}, nil)
		return err
	}
	if err := quote(); err != nil {
		t.Fatalf("quote 1 should pass: %v", err)
	}
	for i := 0; i < 2; i++ {
		if err := quote(); !errors.Is(err, ErrQuote) {
			t.Fatalf("quote %d: err = %v, want injected failure", i+2, err)
		}
	}
	if err := quote(); err != nil {
		t.Fatalf("recovery quote failed: %v", err)
	}
	rot.SetQuoteHook(nil)
	if err := quote(); err != nil {
		t.Fatalf("unhooked quote failed: %v", err)
	}
}
