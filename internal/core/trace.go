package core

import (
	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/trace"
)

// Trace emission. Every emit site sits at the exact commit point where
// the corresponding Stats counter is updated, so event-derived counts
// (trace/check.Counts) and Monitor.Stats() are two independent tallies
// of the same history — the checker cross-validates them. Emission
// compiles out under the notrace build tag and costs one atomic load
// when no tracer is installed (see hw.Machine.Trace).
//
// Ordering: with the fine-grained monitor lock, emit sites on the
// shared-lock path can run concurrently; when a checker is attached the
// sink mutex serialises events in real-time emission order. Operation
// frames (KOpBegin/KOpEnd) carry a token in their Node field so the
// checker matches interleaved frames exactly; events that the checker's
// invariants order strictly — shootdowns, scrubs, kills, revocations —
// are only emitted under the exclusive monitor lock, which drains every
// shared-path emitter first.

// emit records a monitor-context event.
func (m *Monitor) emit(k trace.Kind, domain DomainID, aux, node, addr, size uint64) {
	m.mach.Trace(trace.GlobalCore, k, uint64(domain), aux, node, addr, size)
}

// emitCore records an event attributed to a specific core.
func (m *Monitor) emitCore(core phys.CoreID, k trace.Kind, domain DomainID, aux, node, addr, size uint64) {
	m.mach.Trace(int32(core), k, uint64(domain), aux, node, addr, size)
}
