package core

import (
	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/trace"
)

// Trace emission. Every emit site sits at the exact commit point where
// the corresponding Stats counter is updated, so event-derived counts
// (trace/check.Counts) and Monitor.Stats() are two independent tallies
// of the same history — the checker cross-validates them. Emission
// compiles out under the notrace build tag and costs one atomic load
// when no tracer is installed (see hw.Machine.Trace).

// emit records a monitor-context event (the monitor lock is held at
// every call site, so sinks observe operations in lock order).
func (m *Monitor) emit(k trace.Kind, domain DomainID, aux, node, addr, size uint64) {
	m.mach.Trace(trace.GlobalCore, k, uint64(domain), aux, node, addr, size)
}

// emitCore records an event attributed to a specific core.
func (m *Monitor) emitCore(core phys.CoreID, k trace.Kind, domain DomainID, aux, node, addr, size uint64) {
	m.mach.Trace(int32(core), k, uint64(domain), aux, node, addr, size)
}
