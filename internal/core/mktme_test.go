package core

import (
	"bytes"
	"testing"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/tpm"
)

func bootEncrypted(t testing.TB) *Monitor {
	t.Helper()
	mach, err := hw.NewMachine(hw.Config{
		MemBytes: 8 << 20, NumCores: 2, IOMMUAllowByDefault: true,
		MemoryEncryption: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rot, err := tpm.New(nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Boot(BootConfig{Machine: mach, TPM: rot})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestEncryptionKeysFollowExclusivity(t *testing.T) {
	m := bootEncrypted(t)
	if !m.MemoryEncryptionActive() {
		t.Fatal("encryption not active")
	}
	eng := m.Machine().Crypto
	// After boot, dom0's exclusive memory is keyed under dom0's key.
	k0, ok := m.DomainKeyID(InitialDomain)
	if !ok {
		t.Fatal("dom0 has no key")
	}
	if eng.KeyOf(0x1000) != k0 {
		t.Fatal("dom0 memory not keyed")
	}

	// Grant pages to an enclave: they re-key to the enclave's key.
	enclave, err := m.CreateDomain(InitialDomain, "e")
	if err != nil {
		t.Fatal(err)
	}
	node := dom0MemNode(t, m)
	secretRegion := phys.MakeRegion(64*pg, 2*pg)
	secret := []byte("physical-attackers-cant-see-this")
	if err := m.CopyInto(InitialDomain, secretRegion.Start, secret); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Grant(InitialDomain, node, enclave, cap.MemResource(secretRegion), cap.MemRW|cap.RightShare, cap.CleanObfuscate); err != nil {
		t.Fatal(err)
	}
	ke, ok := m.DomainKeyID(enclave)
	if !ok {
		t.Fatal("enclave has no key")
	}
	if eng.KeyOf(secretRegion.Start) != ke {
		t.Fatalf("granted region keyed %d, want enclave key %d", eng.KeyOf(secretRegion.Start), ke)
	}

	// Physical dump: ciphertext; the enclave's own read: plaintext.
	raw, err := eng.RawView(m.Machine().Mem, secretRegion)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, secret) {
		t.Fatal("physical dump leaked the secret")
	}
	view, err := m.CopyFrom(enclave, secretRegion.Start, uint64(len(secret)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(view, secret) {
		t.Fatal("enclave accessor path broken")
	}

	// Sharing part of the region drops it to the platform key (both
	// parties must access it).
	other, err := m.CreateDomain(InitialDomain, "peer")
	if err != nil {
		t.Fatal(err)
	}
	encNodes := m.OwnerNodes(enclave)
	if _, err := m.Share(enclave, encNodes[0].ID, other, cap.MemResource(phys.MakeRegion(64*pg, pg)), cap.MemRW, cap.CleanZero); err != nil {
		t.Fatal(err)
	}
	if eng.KeyOf(64*pg) != hw.KeyPlaintext {
		t.Fatal("shared page should use the platform key")
	}
	if eng.KeyOf(65*pg) != ke {
		t.Fatal("still-exclusive page must stay under the enclave key")
	}

	// Kill: the key is crypto-erased.
	if err := m.KillDomain(InitialDomain, enclave); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.DomainKeyID(enclave); ok {
		t.Fatal("dead domain's key survived")
	}
}

func TestEncryptionAbsentIsNoop(t *testing.T) {
	m := bootWorld(t, BackendVTX)
	if m.MemoryEncryptionActive() {
		t.Fatal("encryption active without engine")
	}
	if _, ok := m.DomainKeyID(InitialDomain); ok {
		t.Fatal("key allocated without engine")
	}
	// Mutations run fine with no engine.
	enclave, err := m.CreateDomain(InitialDomain, "e")
	if err != nil {
		t.Fatal(err)
	}
	node := dom0MemNode(t, m)
	if _, err := m.Grant(InitialDomain, node, enclave, memRes(64, 1), cap.MemRW, cap.CleanNone); err != nil {
		t.Fatal(err)
	}
}
