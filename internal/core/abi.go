package core

import (
	"encoding/binary"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/trace"
)

// Guest VMCall ABI: interpreted domain code reaches the monitor with the
// VMCALL instruction. Register conventions:
//
//	r0: call number (in), status (out; 0 = OK)
//	r1..r5: arguments (in), r1 also return value (out)
//
// The ABI covers what in-domain *code* needs at run time (identity,
// transfers, logging). Capability policy configuration happens through
// the Go-level API, standing in for libtyche issuing richer call
// sequences on the domain's behalf.
const (
	// CallSelfID returns the calling domain's ID in r1.
	CallSelfID uint64 = 1
	// CallDomainCall transfers control to the domain named by r1 (a
	// mediated call; the callee's HLT or CallReturn resumes the caller).
	CallDomainCall uint64 = 2
	// CallReturn returns to the caller domain; r1 is delivered as the
	// callee's result.
	CallReturn uint64 = 3
	// CallLog appends r1 to the domain's log buffer (the simulated
	// console; examples and tests read it back).
	CallLog uint64 = 4
	// CallFastSwitch performs a pre-registered fast switch to the
	// domain named by r1.
	CallFastSwitch uint64 = 5
	// CallEnumerateLen returns in r1 the number of resources in the
	// caller's own enumeration (a guest-visible taste of §3.2's
	// "enumerate and attest a domain's resources").
	CallEnumerateLen uint64 = 6
	// CallShare derives a shared memory capability from guest code:
	// r1 = capability node, r2 = destination domain, r3 = start address,
	// r4 = size in bytes, r5 = rights (low 16 bits) | cleanup << 16.
	// Returns the new node in r1. This is the legislative power
	// exercised from *inside* a domain, no library in between.
	CallShare uint64 = 7
	// CallGrant is CallShare with exclusive-transfer semantics.
	CallGrant uint64 = 8
	// CallRevoke revokes capability r1 (and its derivation subtree).
	CallRevoke uint64 = 9
	// CallSealSelf seals the calling domain.
	CallSealSelf uint64 = 10
	// CallYield cooperatively ends the calling domain's time slice:
	// the run loop hands control back to the embedding scheduler
	// (RunResult.Yielded). Under the multi-tenant engine the vCPU is
	// requeued behind its siblings; execution resumes after the VMCALL
	// at the next dispatch.
	CallYield uint64 = 11
	// CallRingSetup registers the caller's submission/completion ring:
	// r1 = base address, r2 = capacity in entries (see ring.go for the
	// layout). The footprint must be readable+writable by the caller.
	CallRingSetup uint64 = 12
	// CallRingFlush drains the caller's ring now — the batched ABI's
	// doorbell: one trap executes every enqueued descriptor, with
	// revocation shootdowns coalesced into one cross-core round.
	// Returns the number of descriptors executed in r1.
	CallRingFlush uint64 = 13
	// CallAttest produces an attestation report for the caller itself
	// (r1 = a guest-chosen nonce seed) and returns the first 8 bytes of
	// its measurement in r1 — the guest-visible taste of the judiciary
	// power; full reports travel through the Go-level API.
	CallAttest uint64 = 14
)

// VMCall status codes returned in r0.
const (
	StatusOK uint64 = 0
	// StatusBadCall reports an unknown call number.
	StatusBadCall uint64 = 1
	// StatusDenied reports a validated-and-rejected operation.
	StatusDenied uint64 = 2
)

// handleVMCall services one guest hypercall on core. It runs with no
// monitor lock held — RunCore dispatches traps lock-free and every
// operation takes exactly the locks it needs: read-only calls (SelfID,
// EnumerateLen, Log) touch only lock-free state or the domain's own
// mutex, transfers and delegations hold the monitor lock shared, and
// revocation takes it exclusively. It returns stop=true when the run
// loop should hand control back to the embedder (CallYield; errors
// also stop it).
func (m *Monitor) handleVMCall(c *hw.Core, core phys.CoreID) (stop bool, err error) {
	cur := DomainID(c.Context().Owner)
	call := c.Regs[0]
	m.emitCore(core, trace.KVMCall, cur, call, 0, 0, 0)
	switch call {
	case CallSelfID:
		c.Regs[0] = StatusOK
		c.Regs[1] = uint64(cur)
	case CallDomainCall:
		target := DomainID(c.Regs[1])
		if err := m.Call(core, target); err != nil {
			c.Regs[0] = StatusDenied
			return false, nil
		}
		// Execution continues in the target; its return will land after
		// the caller's VMCALL with r0/r1 set by Return.
	case CallReturn:
		ret := c.Regs[1]
		if err := m.Return(core); err != nil {
			c.Regs[0] = StatusDenied
			return false, nil
		}
		c.Regs[0] = StatusOK
		c.Regs[1] = ret
	case CallLog:
		if d, ok := m.tab.Load().doms[cur]; ok {
			d.mu.Lock()
			d.logbuf = append(d.logbuf, c.Regs[1])
			d.mu.Unlock()
		}
		c.Regs[0] = StatusOK
	case CallFastSwitch:
		target := DomainID(c.Regs[1])
		if err := m.FastSwitch(core, target); err != nil {
			c.Regs[0] = StatusDenied
			return false, nil
		}
	case CallEnumerateLen:
		c.Regs[0] = StatusOK
		c.Regs[1] = uint64(len(m.enumerate(cap.OwnerID(cur))))
	case CallShare, CallGrant:
		node := cap.NodeID(c.Regs[1])
		dst := DomainID(c.Regs[2])
		sub := cap.MemResource(phys.MakeRegion(phys.Addr(c.Regs[3]), c.Regs[4]))
		rights := cap.Rights(c.Regs[5] & 0xffff)
		cleanup := cap.Cleanup(c.Regs[5] >> 16)
		id, err := m.delegate(cur, node, dst, sub, rights, cleanup, call == CallGrant)
		if err != nil {
			c.Regs[0] = StatusDenied
			return false, nil
		}
		c.Regs[0] = StatusOK
		c.Regs[1] = uint64(id)
	case CallRevoke:
		if err := m.Revoke(cur, cap.NodeID(c.Regs[1])); err != nil {
			c.Regs[0] = StatusDenied
			return false, nil
		}
		c.Regs[0] = StatusOK
	case CallSealSelf:
		if _, err := m.Seal(cur, cur); err != nil {
			c.Regs[0] = StatusDenied
			return false, nil
		}
		c.Regs[0] = StatusOK
	case CallYield:
		c.Regs[0] = StatusOK
		return true, nil
	case CallRingSetup:
		if err := m.RingSetup(cur, phys.Addr(c.Regs[1]), c.Regs[2]); err != nil {
			c.Regs[0] = StatusDenied
			return false, nil
		}
		c.Regs[0] = StatusOK
	case CallRingFlush:
		n, err := m.ringFlush(cur, int32(core))
		c.Regs[1] = n
		if err != nil {
			c.Regs[0] = StatusDenied
			return false, nil
		}
		c.Regs[0] = StatusOK
	case CallAttest:
		// Attest takes the monitor lock shared around the report commit;
		// ringExec's attestLocked variant is only safe under the exclusive
		// lock of a ring drain, and handleVMCall holds no lock here.
		var nonce [8]byte
		binary.LittleEndian.PutUint64(nonce[:], c.Regs[1])
		rep, err := m.Attest(cur, nonce[:])
		if err != nil {
			c.Regs[0] = StatusDenied
			return false, nil
		}
		c.Regs[0] = StatusOK
		c.Regs[1] = binary.LittleEndian.Uint64(rep.Measurement[:8])
	default:
		c.Regs[0] = StatusBadCall
	}
	return false, nil
}
