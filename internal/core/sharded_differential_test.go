package core

import (
	"fmt"
	"testing"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/fault"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/sched"
	"github.com/tyche-sim/tyche/internal/trace"
	"github.com/tyche-sim/tyche/internal/trace/check"
)

// Differential suite for the sharded checker: real workloads — fault
// containment, raw SMP, the multi-tenant scheduler, submission rings —
// captured at 1/2/4/8 cores and replayed through BOTH checker
// implementations. Verdicts, violation messages, and event-derived
// counts must be identical; the serial Replay is the reference
// semantics the sharded rewrite must preserve.

// diffVictim builds a sealed enclave with an endless store loop over
// patterned exclusive data, pinned to the given core (buildVictim with
// the core parameterised so the 1-core shape works too).
func diffVictim(t *testing.T, m *Monitor, core phys.CoreID) DomainID {
	t.Helper()
	victim, err := m.CreateDomain(InitialDomain, "victim")
	if err != nil {
		t.Fatal(err)
	}
	a := hw.NewAsm()
	a.Movi(1, uint32(victimData*pg))
	a.Movi(2, 0)
	a.Label("loop")
	a.St(1, 0, 2)
	a.Addi(2, 2, 1)
	a.Jmp("loop")
	if err := m.CopyInto(InitialDomain, victimCode*pg, a.MustAssemble(victimCode*pg)); err != nil {
		t.Fatal(err)
	}
	if err := m.CopyInto(InitialDomain, victimData*pg, victimPattern); err != nil {
		t.Fatal(err)
	}
	node := dom0MemNode(t, m)
	if _, err := m.Grant(InitialDomain, node, victim, memRes(victimCode, 2), cap.MemRWX, cap.CleanNone); err != nil {
		t.Fatal(err)
	}
	for _, n := range m.OwnerNodes(InitialDomain) {
		if n.Resource.Kind == cap.ResCore && n.Resource.Core == core {
			if _, err := m.Share(InitialDomain, n.ID, victim, cap.CoreResource(core), cap.RightRun, cap.CleanNone); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := m.SetEntry(InitialDomain, victim, victimCode*pg); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Seal(InitialDomain, victim); err != nil {
		t.Fatal(err)
	}
	return victim
}

// diffFault: machine-check containment — victim on the last core takes
// an injected fault mid-store-loop and is force-killed with a scrub.
func diffFault(t *testing.T, m *Monitor, cores int) {
	core := phys.CoreID(cores - 1)
	victim := diffVictim(t, m, core)
	if err := m.Launch(victim, core); err != nil {
		t.Fatal(err)
	}
	sched, err := fault.ParseSchedule(fmt.Sprintf("mc%d@137", core))
	if err != nil {
		t.Fatal(err)
	}
	in := fault.NewInjector(sched...)
	in.Arm(m.Machine(), nil)
	res, err := m.RunCore(core, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap.Kind != hw.TrapMachineCheck {
		t.Fatalf("victim trap = %v, want machine-check", res.Trap)
	}
}

// diffSMP: one dedicated guest per core, all run concurrently through
// the trap-dispatch loop.
func diffSMP(t *testing.T, m *Monitor, cores int) {
	all := make([]phys.CoreID, cores)
	for c := 0; c < cores; c++ {
		all[c] = phys.CoreID(c)
		id := loadTenant(t, m, fmt.Sprintf("smp%d", c), uint64(80+c), 16, false, []phys.CoreID{phys.CoreID(c)})
		if err := m.Launch(id, phys.CoreID(c)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.RunCores(200_000, all...); err != nil {
		t.Fatal(err)
	}
}

// diffSched: the multi-tenant scheduler oversubscribed with yielding
// tenants — round barriers, purges, vmcalls.
func diffSched(t *testing.T, m *Monitor, cores int) {
	m.SetSchedPolicy(&sched.Policy{Quantum: 64})
	all := make([]phys.CoreID, cores)
	for c := range all {
		all[c] = phys.CoreID(c)
	}
	for i := 0; i < cores+2; i++ {
		id := loadTenant(t, m, fmt.Sprintf("tenant%d", i), uint64(80+i), 8, true, all)
		if err := m.Schedule(id); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.RunCores(2_000_000, all...); err != nil {
		t.Fatal(err)
	}
}

// diffRing: batched ABI — mixed verbs through the submission ring,
// flushed in coalesced batches, then a revoke and a kill through the
// plain API so shootdowns and scrubs land in the same trace.
func diffRing(t *testing.T, m *Monitor, cores int) {
	node := dom0MemNode(t, m)
	worker, err := m.CreateDomain(InitialDomain, "worker")
	if err != nil {
		t.Fatal(err)
	}
	const entries = 8
	base := ringAt(t, m, InitialDomain, 8, entries)
	for batch := 0; batch < 3; batch++ {
		enqueue(t, m, base, entries, CallSelfID)
		enqueue(t, m, base, entries, CallLog, uint64(batch))
		enqueue(t, m, base, entries, CallShare, uint64(node), uint64(worker),
			uint64(100+batch)*pg, pg, uint64(cap.MemRW))
		if _, err := m.RingFlush(InitialDomain); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.ForceKill(worker); err != nil {
		t.Fatal(err)
	}
}

// diffInject: a seeded dead-domain violation emitted straight into the
// trace (the hardware "speaks" for a killed domain) — both checkers
// must reject, with the same message.
func diffInject(t *testing.T, m *Monitor, cores int) {
	worker, err := m.CreateDomain(InitialDomain, "worker")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.ForceKill(worker); err != nil {
		t.Fatal(err)
	}
	m.Machine().Trace(trace.GlobalCore, trace.KShare, uint64(worker), 0, 99, 0x1000, 4096)
}

// TestShardedDifferentialWorkloads runs every workload shape at every
// core count and pins serial-vs-sharded replay equivalence.
func TestShardedDifferentialWorkloads(t *testing.T) {
	if !trace.Compiled {
		t.Skip("tracing compiled out (notrace)")
	}
	skipUnlessOnlyMutation(t, false) // any armed mutation dirties the workloads
	workloads := []struct {
		name string
		run  func(*testing.T, *Monitor, int)
		want bool // true = the workload must end with a violation
	}{
		{"fault", diffFault, false},
		{"smp", diffSMP, false},
		{"sched", diffSched, false},
		{"ring", diffRing, false},
		{"inject", diffInject, true},
	}
	for _, cores := range []int{1, 2, 4, 8} {
		for _, w := range workloads {
			t.Run(fmt.Sprintf("%s/%dcore", w.name, cores), func(t *testing.T) {
				m, tr, _ := tracedWorldN(t, cores)
				w.run(t, m, cores)
				evs := tr.Events()
				if len(evs) == 0 {
					t.Fatal("workload produced no events")
				}
				serial := check.Replay(evs)
				sh := check.ReplaySharded(evs)
				serialErr, shErr := serial.Err(), sh.Err()
				if (serialErr == nil) != (shErr == nil) {
					t.Fatalf("verdicts differ:\n  serial:  %v\n  sharded: %v", serialErr, shErr)
				}
				if w.want && serialErr == nil {
					t.Fatal("seeded violation not flagged")
				}
				if !w.want && serialErr != nil {
					t.Fatalf("clean workload flagged: %v", serialErr)
				}
				a, b := violationMsgs(serial.Violations()), violationMsgs(sh.Violations())
				if len(a) != len(b) {
					t.Fatalf("violation multisets differ:\n  serial:  %q\n  sharded: %q", a, b)
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("violation %d differs:\n  serial:  %s\n  sharded: %s", i, a[i], b[i])
					}
				}
				if cs, cq := serial.Counts(), sh.Counts(); cs != cq {
					t.Fatalf("counts differ:\n  serial:  %+v\n  sharded: %+v", cs, cq)
				}
			})
		}
	}
}
