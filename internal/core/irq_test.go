package core

import (
	"errors"
	"testing"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/phys"
)

// launchIdle puts dom0 on core 0 ready to absorb RunCore calls.
func launchIdle(t testing.TB, m *Monitor) {
	t.Helper()
	idle := hw.NewAsm()
	idle.Hlt()
	if err := m.CopyInto(InitialDomain, 4*pg, idle.MustAssemble(4*pg)); err != nil {
		t.Fatal(err)
	}
	if err := m.SetEntry(InitialDomain, InitialDomain, 4*pg); err != nil {
		t.Fatal(err)
	}
	if err := m.Launch(InitialDomain, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunCore(0, 10); err != nil {
		t.Fatal(err)
	}
}

func TestIRQRoutedByCapability(t *testing.T) {
	m := bootWorld(t, BackendVTX)
	launchIdle(t, m)

	// dom0 holds the device initially: its handler receives the IRQ.
	var dom0Got, driverGot []hw.IRQ
	if err := m.SetIRQHandler(InitialDomain, InitialDomain, func(c *hw.Core, irq hw.IRQ) error {
		dom0Got = append(dom0Got, irq)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	m.Machine().Device(0).RaiseIRQ(11)
	cpu := m.Machine().Core(0)
	cpu.PC = 4 * pg
	cpu.ClearHalt()
	if _, err := m.RunCore(0, 10); err != nil {
		t.Fatal(err)
	}
	if len(dom0Got) != 1 || dom0Got[0].Vector != 11 {
		t.Fatalf("dom0 irqs = %+v", dom0Got)
	}

	// Grant the device to a driver domain: interrupts re-route.
	driver, err := m.CreateDomain(InitialDomain, "driver")
	if err != nil {
		t.Fatal(err)
	}
	var devNode cap.NodeID
	for _, n := range m.OwnerNodes(InitialDomain) {
		if n.Resource.Kind == cap.ResDevice && n.Resource.Device == 0 {
			devNode = n.ID
		}
	}
	if _, err := m.Grant(InitialDomain, devNode, driver, cap.DeviceResource(0), cap.RightUse|cap.RightDMA, cap.CleanNone); err != nil {
		t.Fatal(err)
	}
	if err := m.SetIRQHandler(InitialDomain, driver, func(c *hw.Core, irq hw.IRQ) error {
		driverGot = append(driverGot, irq)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	m.Machine().Device(0).RaiseIRQ(22)
	cpu.PC = 4 * pg
	cpu.ClearHalt()
	if _, err := m.RunCore(0, 10); err != nil {
		t.Fatal(err)
	}
	if len(driverGot) != 1 || driverGot[0].Vector != 22 {
		t.Fatalf("driver irqs = %+v", driverGot)
	}
	if len(dom0Got) != 1 {
		t.Fatalf("dom0 received a re-routed irq: %+v", dom0Got)
	}
	st := m.Stats()
	if st.IRQsRouted != 2 {
		t.Fatalf("routed = %d", st.IRQsRouted)
	}
}

func TestIRQDroppedWithoutHolderHandler(t *testing.T) {
	m := bootWorld(t, BackendVTX)
	launchIdle(t, m)
	// No handler registered anywhere: the interrupt is dropped.
	m.Machine().RaiseIRQ(0, 5)
	cpu := m.Machine().Core(0)
	cpu.PC = 4 * pg
	cpu.ClearHalt()
	if _, err := m.RunCore(0, 10); err != nil {
		t.Fatal(err)
	}
	if m.Stats().IRQsDropped != 1 || m.Stats().IRQsRouted != 0 {
		t.Fatalf("stats = %+v", m.Stats())
	}
	// Unknown device: dropped too.
	m.Machine().RaiseIRQ(phys.DeviceID(99), 5)
	cpu.PC = 4 * pg
	cpu.ClearHalt()
	if _, err := m.RunCore(0, 10); err != nil {
		t.Fatal(err)
	}
	if m.Stats().IRQsDropped != 2 {
		t.Fatalf("stats = %+v", m.Stats())
	}
}

func TestIRQHandlerAuthorization(t *testing.T) {
	m := bootWorld(t, BackendVTX)
	a, _ := m.CreateDomain(InitialDomain, "a")
	b, _ := m.CreateDomain(InitialDomain, "b")
	// An unrelated domain cannot install handlers for another.
	if err := m.SetIRQHandler(a, b, func(*hw.Core, hw.IRQ) error { return nil }); !errors.Is(err, ErrDenied) {
		t.Fatalf("foreign handler install: %v", err)
	}
	// The creator may.
	if err := m.SetIRQHandler(InitialDomain, b, func(*hw.Core, hw.IRQ) error { return nil }); err != nil {
		t.Fatal(err)
	}
	// The domain itself may.
	if err := m.SetIRQHandler(a, a, func(*hw.Core, hw.IRQ) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestTimerTrapReachesScheduler(t *testing.T) {
	m := bootWorld(t, BackendVTX)
	launchIdle(t, m)
	spin := hw.NewAsm()
	spin.Label("s")
	spin.Jmp("s")
	if err := m.CopyInto(InitialDomain, 8*pg, spin.MustAssemble(8*pg)); err != nil {
		t.Fatal(err)
	}
	cpu := m.Machine().Core(0)
	cpu.PC = 8 * pg
	cpu.ClearHalt()
	cpu.ArmTimer(25)
	res, err := m.RunCore(0, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap.Kind != hw.TrapTimer {
		t.Fatalf("trap = %v, want timer", res.Trap)
	}
	if res.Steps != 25 {
		t.Fatalf("steps = %d, want 25", res.Steps)
	}
}
