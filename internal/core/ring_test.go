package core

import (
	"errors"
	"testing"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/trace"
)

// ringAt registers a ring for the domain at the given page, failing the
// test on error.
func ringAt(t *testing.T, m *Monitor, d DomainID, page, entries uint64) phys.Addr {
	t.Helper()
	base := phys.Addr(page * pg)
	if err := m.RingSetup(d, base, entries); err != nil {
		t.Fatalf("RingSetup: %v", err)
	}
	return base
}

// enqueue writes one descriptor with guest-level stores and publishes
// the new tail, returning it. Raw physical writes stand in for the
// stores interpreted guest code would issue.
func enqueue(t *testing.T, m *Monitor, base phys.Addr, entries uint64, desc ...uint64) {
	t.Helper()
	mem := m.Machine().Mem
	tail, err := mem.Read64(base + RingOffSQTail)
	if err != nil {
		t.Fatal(err)
	}
	off := base + phys.Addr(RingSQOff(entries, tail))
	for w := 0; w < 6; w++ {
		var v uint64
		if w < len(desc) {
			v = desc[w]
		}
		if err := mem.Write64(off+phys.Addr(8*w), v); err != nil {
			t.Fatal(err)
		}
	}
	if err := mem.Write64(base+RingOffSQTail, tail+1); err != nil {
		t.Fatal(err)
	}
}

// completion reads completion slot i.
func completion(t *testing.T, m *Monitor, base phys.Addr, entries, i uint64) (status, result uint64) {
	t.Helper()
	mem := m.Machine().Mem
	off := base + phys.Addr(RingCQOff(entries, i))
	st, err := mem.Read64(off)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mem.Read64(off + 8)
	if err != nil {
		t.Fatal(err)
	}
	return st, res
}

// TestRingSetupValidation: capacity and capability checks at
// registration time.
func TestRingSetupValidation(t *testing.T) {
	m, ck := bootTracedWorld(t, BackendVTX)
	for _, tc := range []struct {
		name    string
		caller  DomainID
		base    phys.Addr
		entries uint64
		ok      bool
	}{
		{"zero-capacity", InitialDomain, 8 * pg, 0, false},
		{"oversized", InitialDomain, 8 * pg, MaxRingEntries + 1, false},
		{"monitor-memory", InitialDomain, m.MonitorRegion().Start, 8, false},
		{"valid", InitialDomain, 8 * pg, 8, true},
		{"replace", InitialDomain, 16 * pg, 4, true},
	} {
		err := m.RingSetup(tc.caller, tc.base, tc.entries)
		if (err == nil) != tc.ok {
			t.Errorf("%s: RingSetup = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
	// The replace registration won: header initialised at the new base.
	if got, _ := m.Machine().Mem.Read64(16*pg + RingOffEntries); got != 4 {
		t.Fatalf("replacement ring header entries = %d, want 4", got)
	}
	assertTraceClean(t, m, ck)
}

// TestRingBatchExecutesVerbs drives a mixed batch — identity, log,
// share, grant, enumerate, attest — through one flush on both backends
// and checks every completion plus the batch bookkeeping.
func TestRingBatchExecutesVerbs(t *testing.T) {
	for _, kind := range []BackendKind{BackendVTX, BackendPMP} {
		t.Run(string(kind), func(t *testing.T) {
			m, ck := bootTracedWorld(t, kind)
			node := dom0MemNode(t, m)
			worker, err := m.CreateDomain(InitialDomain, "worker")
			if err != nil {
				t.Fatal(err)
			}
			const entries = 8
			base := ringAt(t, m, InitialDomain, 8, entries)
			enqueue(t, m, base, entries, CallSelfID)
			enqueue(t, m, base, entries, CallLog, 0xbeef)
			enqueue(t, m, base, entries, CallShare, uint64(node), uint64(worker),
				100*pg, 2*pg, uint64(cap.MemRW))
			enqueue(t, m, base, entries, CallGrant, uint64(node), uint64(worker),
				120*pg, pg, uint64(cap.MemRW))
			enqueue(t, m, base, entries, CallEnumerateLen)
			enqueue(t, m, base, entries, CallAttest, 42)

			if got := m.RingPending(InitialDomain); got != 6 {
				t.Fatalf("RingPending = %d, want 6", got)
			}
			n, err := m.RingFlush(InitialDomain)
			if err != nil {
				t.Fatalf("RingFlush: %v", err)
			}
			if n != 6 {
				t.Fatalf("flush executed %d, want 6", n)
			}
			if got := m.RingPending(InitialDomain); got != 0 {
				t.Fatalf("RingPending after flush = %d, want 0", got)
			}

			if st, res := completion(t, m, base, entries, 0); st != StatusOK || res != uint64(InitialDomain) {
				t.Fatalf("selfid completion = (%d, %d)", st, res)
			}
			if st, _ := completion(t, m, base, entries, 1); st != StatusOK {
				t.Fatalf("log completion status = %d", st)
			}
			st, shareNode := completion(t, m, base, entries, 2)
			if st != StatusOK || shareNode == 0 {
				t.Fatalf("share completion = (%d, %d)", st, shareNode)
			}
			if !m.CheckAccess(worker, 100*pg, cap.RightRead) {
				t.Fatal("batched share did not take effect")
			}
			if st, _ := completion(t, m, base, entries, 3); st != StatusOK {
				t.Fatalf("grant completion status = %d", st)
			}
			if m.CheckAccess(InitialDomain, 120*pg, cap.RightRead) {
				t.Fatal("batched grant left the granter with access")
			}
			if st, n := completion(t, m, base, entries, 4); st != StatusOK || n == 0 {
				t.Fatalf("enumerate completion = (%d, %d)", st, n)
			}
			// Dom0 is unsealed, so its measurement (and therefore the
			// returned first 8 bytes) is legitimately zero — the status
			// and the attest counter carry the assertion.
			if st, _ := completion(t, m, base, entries, 5); st != StatusOK {
				t.Fatalf("attest completion status = %d", st)
			}
			if got := m.Stats().Attests; got != 1 {
				t.Fatalf("Attests = %d, want 1", got)
			}
			if d, _ := m.Domain(InitialDomain); d.Log()[0] != 0xbeef {
				t.Fatal("batched log did not land")
			}

			stats := m.Stats()
			if stats.RingOps != 6 || stats.RingFlushes != 1 {
				t.Fatalf("RingOps=%d RingFlushes=%d, want 6/1", stats.RingOps, stats.RingFlushes)
			}
			assertTraceClean(t, m, ck)
		})
	}
}

// TestRingWraparound: free-running indices land descriptors and
// completions at slot i%entries across several flushes of a tiny ring.
func TestRingWraparound(t *testing.T) {
	m, ck := bootTracedWorld(t, BackendVTX)
	const entries = 4
	base := ringAt(t, m, InitialDomain, 8, entries)
	// 3 batches of 3 — index 9 > entries, so every slot gets reused at
	// least twice.
	for batch := uint64(0); batch < 3; batch++ {
		for k := uint64(0); k < 3; k++ {
			enqueue(t, m, base, entries, CallLog, batch*100+k)
		}
		n, err := m.RingFlush(InitialDomain)
		if err != nil || n != 3 {
			t.Fatalf("batch %d: flush = %d, %v", batch, n, err)
		}
		for k := uint64(0); k < 3; k++ {
			i := batch*3 + k
			if st, _ := completion(t, m, base, entries, i); st != StatusOK {
				t.Fatalf("completion %d status = %d", i, st)
			}
		}
	}
	d, _ := m.Domain(InitialDomain)
	log := d.Log()
	if len(log) != 9 || log[0] != 0 || log[8] != 202 {
		t.Fatalf("log = %v, want 9 entries ending in 202", log)
	}
	// The header mirrors caught up with the free-running index.
	if head, _ := m.Machine().Mem.Read64(base + RingOffSQHead); head != 9 {
		t.Fatalf("mirrored sqHead = %d, want 9", head)
	}
	if st := m.Stats(); st.RingOps != 9 || st.RingFlushes != 3 {
		t.Fatalf("RingOps=%d RingFlushes=%d, want 9/3", st.RingOps, st.RingFlushes)
	}
	assertTraceClean(t, m, ck)
}

// TestRingMalformedDescriptor: a bad verb and an out-of-range operation
// fail their own completions without poisoning the rest of the batch.
func TestRingMalformedDescriptor(t *testing.T) {
	m, ck := bootTracedWorld(t, BackendVTX)
	node := dom0MemNode(t, m)
	worker, err := m.CreateDomain(InitialDomain, "worker")
	if err != nil {
		t.Fatal(err)
	}
	const entries = 8
	base := ringAt(t, m, InitialDomain, 8, entries)
	enqueue(t, m, base, entries, CallSelfID)
	enqueue(t, m, base, entries, 0xdead) // unknown verb
	// Transfer verbs are not ring-eligible (they change which domain
	// runs); they must fail cleanly, not wedge the drain.
	enqueue(t, m, base, entries, CallDomainCall, uint64(worker))
	// A share of memory dom0 does not own (the monitor region).
	enqueue(t, m, base, entries, CallShare, uint64(node), uint64(worker),
		uint64(m.MonitorRegion().Start), pg, uint64(cap.MemRW))
	enqueue(t, m, base, entries, CallLog, 7)

	n, err := m.RingFlush(InitialDomain)
	if err != nil {
		t.Fatalf("RingFlush: %v", err)
	}
	if n != 5 {
		t.Fatalf("flush executed %d, want 5", n)
	}
	want := []uint64{StatusOK, StatusBadCall, StatusBadCall, StatusDenied, StatusOK}
	for i, w := range want {
		if st, _ := completion(t, m, base, entries, uint64(i)); st != w {
			t.Errorf("completion %d status = %d, want %d", i, st, w)
		}
	}
	if d, _ := m.Domain(InitialDomain); len(d.Log()) != 1 || d.Log()[0] != 7 {
		t.Fatal("op after the malformed descriptors did not execute")
	}
	assertTraceClean(t, m, ck)
}

// TestRingTailOverrun: a guest-corrupted tail that claims more pending
// descriptors than the ring holds denies the whole flush without
// consuming anything; a repaired tail flushes fine.
func TestRingTailOverrun(t *testing.T) {
	m, ck := bootTracedWorld(t, BackendVTX)
	const entries = 4
	base := ringAt(t, m, InitialDomain, 8, entries)
	enqueue(t, m, base, entries, CallLog, 1)
	mem := m.Machine().Mem
	if err := mem.Write64(base+RingOffSQTail, entries+3); err != nil {
		t.Fatal(err)
	}
	if _, err := m.RingFlush(InitialDomain); !errors.Is(err, ErrDenied) {
		t.Fatalf("overrun flush err = %v, want denied", err)
	}
	if st := m.Stats(); st.RingOps != 0 {
		t.Fatalf("overrun flush consumed %d ops", st.RingOps)
	}
	// Repair the tail: the one legitimately enqueued descriptor drains.
	if err := mem.Write64(base+RingOffSQTail, 1); err != nil {
		t.Fatal(err)
	}
	n, err := m.RingFlush(InitialDomain)
	if err != nil || n != 1 {
		t.Fatalf("repaired flush = %d, %v", n, err)
	}
	assertTraceClean(t, m, ck)
}

// TestRingCoalescedShootdowns is the tentpole's perf invariant at the
// trace level: a batch of K TLB-cleanup revocations performs exactly
// ONE cross-core shootdown round, where the synchronous path performs
// K. Cycle-accounting follows: one TLBFlush charge per core per batch.
func TestRingCoalescedShootdowns(t *testing.T) {
	const K = 8
	m, ck := bootTracedWorld(t, BackendVTX)
	if ck == nil {
		t.Skip("shootdown counting requires the traced build")
	}
	node := dom0MemNode(t, m)
	worker, err := m.CreateDomain(InitialDomain, "worker")
	if err != nil {
		t.Fatal(err)
	}

	// Synchronous baseline: K share+revoke pairs, one shootdown each.
	syncNodes := make([]cap.NodeID, K)
	for i := range syncNodes {
		id, err := m.Share(InitialDomain, node, worker, memRes(uint64(200+2*i), 1), cap.MemRW, cap.CleanFlushTLB)
		if err != nil {
			t.Fatal(err)
		}
		syncNodes[i] = id
	}
	for _, id := range syncNodes {
		if err := m.Revoke(InitialDomain, id); err != nil {
			t.Fatal(err)
		}
	}
	syncSD := ck.Counts().Shootdowns
	if syncSD != K {
		t.Fatalf("sync baseline: %d shootdowns, want %d", syncSD, K)
	}

	// Batched arm: the same K revocations in one flush.
	const entries = 16
	base := ringAt(t, m, InitialDomain, 8, entries)
	batchNodes := make([]cap.NodeID, K)
	for i := range batchNodes {
		id, err := m.Share(InitialDomain, node, worker, memRes(uint64(240+2*i), 1), cap.MemRW, cap.CleanFlushTLB)
		if err != nil {
			t.Fatal(err)
		}
		batchNodes[i] = id
	}
	for _, id := range batchNodes {
		enqueue(t, m, base, entries, CallRevoke, uint64(id))
	}
	n, err := m.RingFlush(InitialDomain)
	if err != nil || n != K {
		t.Fatalf("flush = %d, %v", n, err)
	}
	for i := uint64(0); i < K; i++ {
		if st, _ := completion(t, m, base, entries, i); st != StatusOK {
			t.Fatalf("revoke completion %d status = %d", i, st)
		}
	}
	batchSD := ck.Counts().Shootdowns - syncSD
	if batchSD != 1 {
		t.Fatalf("batched arm: %d shootdown rounds, want exactly 1", batchSD)
	}
	st := m.Stats()
	if st.RingShootdowns != 1 || st.RingOpsCoalesced != K {
		t.Fatalf("RingShootdowns=%d RingOpsCoalesced=%d, want 1/%d",
			st.RingShootdowns, st.RingOpsCoalesced, K)
	}
	assertTraceClean(t, m, ck)
}

// TestRingAbortOnSelfDisarm: a batch that grants away its own ring
// memory aborts at that descriptor — the monitor never writes a
// completion into memory the owner no longer holds — and drops the
// registration.
func TestRingAbortOnSelfDisarm(t *testing.T) {
	m, ck := bootTracedWorld(t, BackendVTX)
	node := dom0MemNode(t, m)
	worker, err := m.CreateDomain(InitialDomain, "worker")
	if err != nil {
		t.Fatal(err)
	}
	const entries = 8
	base := ringAt(t, m, InitialDomain, 8, entries)
	enqueue(t, m, base, entries, CallLog, 1)
	// Grant the ring's own page away: dom0 loses read+write mid-batch.
	enqueue(t, m, base, entries, CallGrant, uint64(node), uint64(worker),
		uint64(base), pg, uint64(cap.MemRW))
	enqueue(t, m, base, entries, CallLog, 2) // never executes

	n, err := m.RingFlush(InitialDomain)
	if !errors.Is(err, ErrDenied) {
		t.Fatalf("self-disarm flush err = %v, want denied", err)
	}
	if n != 2 {
		t.Fatalf("executed %d before abort, want 2", n)
	}
	if d, _ := m.Domain(InitialDomain); len(d.Log()) != 1 {
		t.Fatalf("log = %v: descriptor after the disarm ran", d.Log())
	}
	// Registration dropped: the next flush reports no ring.
	if _, err := m.RingFlush(InitialDomain); !errors.Is(err, ErrDenied) {
		t.Fatalf("post-abort flush err = %v, want denied (no ring)", err)
	}
	assertTraceClean(t, m, ck)
}

// TestRingForceKillScrubsRing: ForceKill on a domain with queued
// descriptors never executes them, unregisters the ring, and scrubs
// the header — dead-domain silence extends to queued work. The trace
// oracle gates the whole sequence.
func TestRingForceKillScrubsRing(t *testing.T) {
	m, ck := bootTracedWorld(t, BackendVTX)
	node := dom0MemNode(t, m)
	worker, err := m.CreateDomain(InitialDomain, "worker")
	if err != nil {
		t.Fatal(err)
	}
	// The worker's ring lives in memory granted exclusively to it.
	if _, err := m.Grant(InitialDomain, node, worker, memRes(300, 2), cap.MemRW, cap.CleanNone); err != nil {
		t.Fatal(err)
	}
	const entries = 8
	base := ringAt(t, m, worker, 300, entries)
	enqueue(t, m, base, entries, CallLog, 0x111)
	enqueue(t, m, base, entries, CallSealSelf)
	if got := m.RingPending(worker); got != 2 {
		t.Fatalf("RingPending = %d, want 2", got)
	}

	opsBefore := m.Stats().RingOps
	if err := m.ForceKill(worker); err != nil {
		t.Fatal(err)
	}
	if got := m.Stats().RingOps - opsBefore; got != 0 {
		t.Fatalf("%d queued descriptors executed across the kill", got)
	}
	if got := m.RingPending(worker); got != 0 {
		t.Fatalf("dead domain still reports %d pending", got)
	}
	// Header scrubbed: capacity and tail words zeroed.
	for _, off := range []uint64{RingOffEntries, RingOffSQTail} {
		if v, _ := m.Machine().Mem.Read64(base + phys.Addr(off)); v != 0 {
			t.Fatalf("header word +%d = %#x after kill, want 0", off, v)
		}
	}
	// A flush for the dead domain is refused, not silently absorbed.
	if _, err := m.RingFlush(worker); !errors.Is(err, ErrDead) {
		t.Fatalf("dead flush err = %v, want ErrDead", err)
	}
	// The worker sealed nothing: its queued seal never ran.
	if d, _ := m.Domain(worker); d.State() != StateDead {
		t.Fatalf("worker state = %v", d.State())
	}
	assertTraceClean(t, m, ck)
}

// TestRingTeardownSkipsScrubAfterGrantAway: a dying domain that granted
// its ring pages away no longer holds them, so the kill-path header
// scrub must not run — it would write into the surviving grantee's
// memory, a cross-domain write the drain path already refuses. The
// teardown revalidates the footprint (before revocation destroys the
// owner's records) and skips the scrub on loss.
func TestRingTeardownSkipsScrubAfterGrantAway(t *testing.T) {
	m, ck := bootTracedWorld(t, BackendVTX)
	node := dom0MemNode(t, m)
	worker, err := m.CreateDomain(InitialDomain, "worker")
	if err != nil {
		t.Fatal(err)
	}
	peer, err := m.CreateDomain(InitialDomain, "peer")
	if err != nil {
		t.Fatal(err)
	}
	wnode, err := m.Grant(InitialDomain, node, worker, memRes(300, 2), cap.MemRW|cap.RightGrant, cap.CleanNone)
	if err != nil {
		t.Fatal(err)
	}
	const entries = 8
	base := ringAt(t, m, worker, 300, entries)
	enqueue(t, m, base, entries, CallLog, 0x222)
	// The worker hands the ring pages to the peer wholesale and loses
	// all access; the stale registration survives until teardown.
	if _, err := m.Grant(worker, wnode, peer, memRes(300, 2), cap.MemRW, cap.CleanNone); err != nil {
		t.Fatal(err)
	}
	if err := m.ForceKill(worker); err != nil {
		t.Fatal(err)
	}
	// The registration is gone but the peer's memory is untouched: the
	// header words the scrub would have zeroed still hold their values.
	if got := m.RingPending(worker); got != 0 {
		t.Fatalf("dead domain still reports %d pending", got)
	}
	if v, _ := m.Machine().Mem.Read64(base + RingOffEntries); v != entries {
		t.Fatalf("header entries = %d after kill, want %d (scrub wrote into the grantee's memory)", v, entries)
	}
	if v, _ := m.Machine().Mem.Read64(base + RingOffSQTail); v != 1 {
		t.Fatalf("header sqTail = %d after kill, want 1 (scrub wrote into the grantee's memory)", v)
	}
	assertTraceClean(t, m, ck)
}

// TestRingBatchOfOneShootdownParity: a single-revocation batch emits a
// shootdown indistinguishable (addr/size payload) from the synchronous
// path — the coalescer must not perturb the degenerate case the cycle
// bit-identity gate cares about.
func TestRingBatchOfOneShootdownParity(t *testing.T) {
	if !trace.Compiled {
		t.Skip("tracing compiled out (notrace)")
	}
	m, ck := bootTracedWorld(t, BackendVTX)
	node := dom0MemNode(t, m)
	worker, err := m.CreateDomain(InitialDomain, "worker")
	if err != nil {
		t.Fatal(err)
	}
	// Sync arm.
	id, err := m.Share(InitialDomain, node, worker, memRes(200, 1), cap.MemRW, cap.CleanFlushTLB)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Revoke(InitialDomain, id); err != nil {
		t.Fatal(err)
	}
	// Batched arm, same region.
	const entries = 4
	base := ringAt(t, m, InitialDomain, 8, entries)
	id2, err := m.Share(InitialDomain, node, worker, memRes(200, 1), cap.MemRW, cap.CleanFlushTLB)
	if err != nil {
		t.Fatal(err)
	}
	enqueue(t, m, base, entries, CallRevoke, uint64(id2))
	if n, err := m.RingFlush(InitialDomain); err != nil || n != 1 {
		t.Fatalf("flush = %d, %v", n, err)
	}

	var sds []trace.Event
	for _, ev := range m.Machine().Tracer().Events() {
		if ev.Kind == trace.KShootdown {
			sds = append(sds, ev)
		}
	}
	if len(sds) != 2 {
		t.Fatalf("%d shootdowns, want 2", len(sds))
	}
	if sds[0].Addr != sds[1].Addr || sds[0].Size != sds[1].Size {
		t.Fatalf("batch-of-1 shootdown payload (%#x,+%d) differs from sync (%#x,+%d)",
			sds[1].Addr, sds[1].Size, sds[0].Addr, sds[0].Size)
	}
	assertTraceClean(t, m, ck)
}
