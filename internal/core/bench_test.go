package core

import (
	"fmt"
	"testing"
)

// Benchmarks for the monitor's read-side telemetry. Stats must stay
// allocation-free: it is sampled from hot monitoring loops (and from
// the bench harness between timed regions), so a per-call allocation
// would perturb exactly the measurements it exists to take.

// BenchmarkStats pins the allocation-free property of the snapshot
// read path: a shared-lock acquisition plus fourteen atomic loads into
// a value struct, no heap traffic.
func BenchmarkStats(b *testing.B) {
	m := bootWorld(b, BackendVTX)
	b.ReportAllocs()
	b.ResetTimer()
	var s Stats
	for i := 0; i < b.N; i++ {
		s = m.Stats()
	}
	b.StopTimer()
	_ = s
	if allocs := testing.AllocsPerRun(100, func() { _ = m.Stats() }); allocs != 0 {
		b.Fatalf("Stats allocates %.1f objects per call, want 0", allocs)
	}
}

// BenchmarkDomains measures enumeration off the atomically-published
// domain-table snapshot: no monitor lock is taken, only the result
// slice allocates.
func BenchmarkDomains(b *testing.B) {
	m := bootWorld(b, BackendVTX)
	for i := 0; i < 6; i++ {
		if _, err := m.CreateDomain(InitialDomain, fmt.Sprintf("bench%d", i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(m.Domains()) != 7 {
			b.Fatal("domain count drifted")
		}
	}
}

// TestStatsAllocationFree keeps the satellite property under plain
// `go test` runs too, where benchmarks do not execute.
func TestStatsAllocationFree(t *testing.T) {
	m := bootWorld(t, BackendVTX)
	if allocs := testing.AllocsPerRun(100, func() { _ = m.Stats() }); allocs != 0 {
		t.Fatalf("Stats allocates %.1f objects per call, want 0", allocs)
	}
}
