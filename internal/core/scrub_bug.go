//go:build !scrubbug

package core

// ScrubBugArmed reports whether this binary carries the seeded
// scrub-skip bug (the scrubbug build tag): destroyDomain plans every
// exclusive region for scrubbing but silently skips the first one's
// zero+shootdown, so a kill completes with reusable secrets still in
// memory. The mutation test proves both the serial and sharded trace
// checkers flag the unscrubbed region (scrub-before-kill property),
// which is what licenses trusting the reclaim path.
const ScrubBugArmed = false

// scrubSkipFirst makes destroyDomain skip the first planned region's
// scrub. Constant-false in normal builds so the branch folds away.
const scrubSkipFirst = false
