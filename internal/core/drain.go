package core

// The parallel reclamation pipeline: concurrent per-ring drains under
// one destructive-family entry, a shared grace period for every
// revocation the round publishes, and (contain.go) sharded forced
// scrub. The journal version of the paper (arXiv 2507.12364) frames
// the monitor as cloud-scale trust infrastructure — reclamation
// throughput must scale with cores rather than serialise behind one.
//
// The round protocol, run entirely inside one denter()/dexit():
//
//	Phase A (parallel): registered rings are partitioned across up to
//	  reclaimWorkers host workers (rings whose footprints overlap are
//	  forced into the same shard so completion writes never race).
//	  Each worker pins the epoch engine and drains its rings exactly
//	  like the serial path — per-ring KBatchBegin/KBatchEnd frames,
//	  pre-validated access, per-descriptor revalidation, abort on
//	  footprint loss — except that a CallRevoke descriptor only runs
//	  its PUBLISH step (authorise + cap.Space.Detach + KRevoke): the
//	  grace period and the irreversible phase-2 effects are deferred
//	  to the round's tail. Non-destructive descriptors (share, grant,
//	  attest, ...) execute in full, concurrently, the same way the
//	  public API runs them under pinned reader entries.
//	Phase B (serial, coordinator): after the workers join (every pin
//	  dropped), ONE shared grace period covers every publish of the
//	  round (epoch.synchronizeShared — the grace combiner), then the
//	  deferred phase-2s run in deterministic (ring, descriptor) order
//	  with the machine's shootdown accumulator armed, so the whole
//	  round retires at most one cross-ring shootdown round
//	  (trace.KDrainBegin/KDrainEnd bracket it; the checker's
//	  property 6 enforces the coalescing).
//
// Why deferring revocation phase-2 is sound: Detach is the publish —
// readers stop seeing the subtree, and the parents' grant suspensions
// persist until Release — so nothing irreversible happens before the
// shared grace, and the grace runs with every worker pin dropped
// (running it earlier would deadlock against our own workers). The
// one visible semantic difference from the serial drain is that a
// parent's access returns only when the round ends, not between two
// descriptors of the same batch — the documented two-phase-revocation
// window, widened from one batch to one round.
//
// With reclaimWorkers ≤ 1 none of this code runs: DrainRings and the
// CallRingFlush doorbell take the exact serial paths, byte- and
// cycle-identical to the pre-pipeline monitor (the C22 bit-identity
// gate).

import (
	"sort"
	"sync"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/trace"
)

// SetReclaimWorkers sets the parallel reclamation fan-out: the number
// of host workers ring drains partition across and forced scrubs shard
// over. n ≤ 1 (the default) keeps both on their serial paths with
// bit-identical cycle histories; n > 1 is an opt-in, like the
// transition cache. Returns the previous setting.
func (m *Monitor) SetReclaimWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(m.reclaimWorkers.Swap(int32(n)))
}

// ReclaimWorkers returns the current parallel-reclamation fan-out.
func (m *Monitor) ReclaimWorkers() int { return int(m.reclaimWorkers.Load()) }

// noteDrainError surfaces a swallowed per-ring drain failure: counted
// in Stats().RingDrainErrors, first occurrence latched for
// FirstDrainError.
func (m *Monitor) noteDrainError(err error) {
	if err == nil {
		return
	}
	m.stats.ringDrainErrors.Add(1)
	m.drainErrMu.Lock()
	if m.firstDrainErr == nil {
		m.firstDrainErr = err
	}
	m.drainErrMu.Unlock()
}

// FirstDrainError returns the first per-ring drain failure a barrier
// drain observed (nil if none). The counterpart counter is
// Stats().RingDrainErrors.
func (m *Monitor) FirstDrainError() error {
	m.drainErrMu.Lock()
	defer m.drainErrMu.Unlock()
	return m.firstDrainErr
}

// pendingRevoke is one CallRevoke descriptor whose publish ran in
// Phase A and whose grace-gated phase-2 awaits the round's tail.
type pendingRevoke struct {
	det   *cap.Detached
	owner cap.OwnerID // revoked node's owner, resynced with the rest
	ring  DomainID    // ordering key: which ring published it
	idx   uint64      // ordering key: descriptor index within the ring
}

// drainCtx is one parallel round's shared state. Workers append their
// pendings under mu; everything else is worker-local or coordinator-
// only.
type drainCtx struct {
	mu       sync.Mutex
	pendings []pendingRevoke
	maxPub   uint64
}

// addPending records a published revoke for the round's shared
// phase-2.
func (dc *drainCtx) addPending(p pendingRevoke, pub uint64) {
	dc.mu.Lock()
	dc.pendings = append(dc.pendings, p)
	if pub > dc.maxPub {
		dc.maxPub = pub
	}
	dc.mu.Unlock()
}

// ringDrainResult is one ring's outcome within a parallel round.
type ringDrainResult struct {
	n   uint64
	err error
}

// drainRingsParallel drains every live registered ring as one
// partitioned round (destructive-family entry held by the caller).
// Returns the total descriptors executed and each ring's own result
// (for the doorbell path, which must report the flushing caller's
// count and error exactly as the serial doorbell would).
func (m *Monitor) drainRingsParallel(workers int) (uint64, map[DomainID]ringDrainResult) {
	m.ringMu.Lock()
	owners := make([]DomainID, 0, len(m.rings))
	for id := range m.rings {
		owners = append(owners, id)
	}
	m.ringMu.Unlock()
	sort.Slice(owners, func(i, j int) bool { return owners[i] < owners[j] })

	// Dead or vanished owners drop out before partitioning, exactly as
	// in the serial walk.
	rings := make([]*domainRing, 0, len(owners))
	for _, id := range owners {
		r, ok := m.ringOf(id)
		if !ok {
			continue
		}
		if d, err := m.domain(id); err != nil || d.State() == StateDead {
			m.ringDrop(id)
			continue
		}
		rings = append(rings, r)
	}
	results := make(map[DomainID]ringDrainResult, len(rings))
	if len(rings) == 0 {
		return 0, results
	}
	if workers > len(rings) {
		workers = len(rings)
	}

	// Partition round-robin in ascending owner order; a ring whose
	// footprint overlaps an already-placed ring's (two tenants sharing
	// the memory under their rings) joins that ring's shard so no two
	// workers ever write overlapping completion queues.
	shards := make([][]*domainRing, workers)
	shardOf := make([]int, 0, len(rings))
	for i, r := range rings {
		si := i % workers
		for j := 0; j < i; j++ {
			if rings[j].region.Overlaps(r.region) {
				si = shardOf[j]
				break
			}
		}
		shards[si] = append(shards[si], r)
		shardOf = append(shardOf, si)
	}

	tok := m.opTok.Add(1)
	m.mach.Trace(trace.GlobalCore, trace.KDrainBegin, 0, uint64(len(rings)), tok, 0, 0)
	m.stats.ringParallelDrains.Add(1)

	// Phase A: concurrent per-ring drains. Workers run strictly inside
	// the coordinator's denter() critical section (spawned after the
	// locks are taken, joined before they drop), touch only leaf locks
	// and the internally-synchronised capability space, and hold their
	// own epoch pins — the same footing as concurrent pinned-reader
	// entries, which PR 7's lock order already admits.
	dc := &drainCtx{}
	var resMu sync.Mutex
	var wg sync.WaitGroup
	for _, shard := range shards {
		if len(shard) == 0 {
			continue
		}
		wg.Add(1)
		go func(shard []*domainRing) {
			defer wg.Done()
			p := m.ep.pin()
			defer m.ep.unpin(p)
			for _, r := range shard {
				n, err := m.drainRingPar(r, trace.GlobalCore, dc)
				m.noteDrainError(err)
				resMu.Lock()
				results[r.owner] = ringDrainResult{n: n, err: err}
				resMu.Unlock()
			}
		}(shard)
	}
	wg.Wait()

	// Phase B: one shared grace period for every publish of the round,
	// then the deferred phase-2s in deterministic (ring, descriptor)
	// order with the shootdown accumulator armed — at most one
	// cross-ring round for the whole drain.
	pend := dc.pendings
	sort.Slice(pend, func(i, j int) bool {
		if pend[i].ring != pend[j].ring {
			return pend[i].ring < pend[j].ring
		}
		return pend[i].idx < pend[j].idx
	})
	var total uint64
	for _, r := range results {
		total += r.n
	}
	if len(pend) > 0 {
		m.ep.synchronizeShared(dc.maxPub, len(pend))
		m.mach.BeginShootdownBatch()
		affected := make(map[cap.OwnerID]bool)
		for i, p := range pend {
			if DrainBugArmed && i == 0 {
				// Seeded mutation (drainbug build tag): the first ring's
				// deferred revocation skips the round's coalescing — its
				// flush cleanups run as immediate, unbatched shootdown
				// rounds inside the drain frame, which the checker's
				// cross-ring coalescing property must flag.
				r0, c0 := m.mach.EndShootdownBatch()
				m.stats.ringShootdowns.Add(uint64(r0))
				m.stats.ringOpsCoalesced.Add(uint64(c0))
				if err := m.bk.ExecuteCleanups(p.det.Actions()); err != nil {
					m.noteDrainError(err)
				}
				m.mach.BeginShootdownBatch()
			} else if err := m.bk.ExecuteCleanups(p.det.Actions()); err != nil {
				m.noteDrainError(err)
			}
			for _, o := range p.det.Owners() {
				affected[o] = true
			}
			for _, o := range p.det.ParentOwners() {
				affected[o] = true
			}
			affected[p.owner] = true
			m.space.Release(p.det)
			det := p.det
			m.ep.deferFree(func() { m.space.Reclaim(det) })
		}
		rounds, coalesced := m.mach.EndShootdownBatch()
		m.stats.ringShootdowns.Add(uint64(rounds))
		m.stats.ringOpsCoalesced.Add(uint64(coalesced))
		resync := make([]cap.OwnerID, 0, len(affected))
		for o := range affected {
			resync = append(resync, o)
		}
		sort.Slice(resync, func(i, j int) bool { return resync[i] < resync[j] })
		if err := m.resyncAfterRevocation(nil, resync...); err != nil {
			m.noteDrainError(err)
		}
	}
	m.mach.Trace(trace.GlobalCore, trace.KDrainEnd, 0, total, tok, 0, 0)
	return total, results
}

// drainRingPar is drainRingLocked's Phase-A form: identical batch
// framing, validation, abort, and counter discipline, but descriptors
// execute through ringExecPar (revokes publish-only, phase-2 deferred
// into dc) and no per-ring shootdown batch is armed — the round's
// coordinator owns the one cross-ring batch. Runs on a worker
// goroutine with its own epoch pin; everything it touches is either
// ring-local (one worker per ring), atomic, or internally
// synchronised.
func (m *Monitor) drainRingPar(r *domainRing, core int32, dc *drainCtx) (uint64, error) {
	mem := m.mach.Mem
	if err := m.ringRevalidate(r); err != nil {
		m.ringDrop(r.owner)
		return 0, err
	}
	tail, err := mem.Read64(r.base + RingOffSQTail)
	if err != nil {
		return 0, err
	}
	pending := tail - r.head
	if pending == 0 {
		return 0, nil
	}
	if pending > r.entries {
		return 0, m.deny("domain %d ring tail %d overruns head %d by more than %d entries",
			r.owner, tail, r.head, r.entries)
	}

	tok := m.opTok.Add(1)
	m.mach.Trace(core, trace.KBatchBegin, uint64(r.owner), pending, tok, 0, 0)

	var executed uint64
	aborted := false
	for i := r.head; i != tail; i++ {
		off := phys.Addr(RingSQOff(r.entries, i))
		var desc [6]uint64
		readErr := error(nil)
		for w := range desc {
			if desc[w], readErr = mem.Read64(r.base + off + phys.Addr(8*w)); readErr != nil {
				break
			}
		}
		if readErr != nil {
			aborted = true
			break
		}
		status, result := m.ringExecPar(r.owner, i, dc, desc[0], desc[1], desc[2], desc[3], desc[4], desc[5])
		executed++
		if err := m.ringRevalidate(r); err != nil {
			aborted = true
			break
		}
		cq := phys.Addr(RingCQOff(r.entries, i))
		if err := mem.Write64(r.base+cq, status); err != nil {
			aborted = true
			break
		}
		if err := mem.Write64(r.base+cq+8, result); err != nil {
			aborted = true
			break
		}
	}
	r.head += executed
	if !aborted {
		if err := mem.Write64(r.base+RingOffSQHead, r.head); err == nil {
			_ = mem.Write64(r.base+RingOffCQTail, r.head)
		}
	}
	m.stats.ringOps.Add(executed)
	m.stats.ringFlushes.Add(1)
	m.mach.Trace(core, trace.KBatchEnd, uint64(r.owner), executed, tok, 0, 0)
	if aborted {
		m.ringDrop(r.owner)
		return executed, m.deny("domain %d lost its ring mid-batch after %d ops", r.owner, executed)
	}
	return executed, nil
}

// ringExecPar executes one descriptor within a parallel round. All
// verbs behave exactly as ringExec's, except CallRevoke, which runs
// only its publish step — the shared grace and the phase-2 effects
// retire with the round.
func (m *Monitor) ringExecPar(owner DomainID, idx uint64, dc *drainCtx, verb, a1, a2, a3, a4, a5 uint64) (status, result uint64) {
	if verb != CallRevoke {
		return m.ringExec(owner, verb, a1, a2, a3, a4, a5)
	}
	if err := m.revokePublish(owner, cap.NodeID(a1), idx, dc); err != nil {
		return StatusDenied, 0
	}
	return StatusOK, 0
}

// revokePublish is the publish half of revoke for parallel drains:
// the same authorisation and detach (concurrent-safe — the capability
// space serialises structural mutation internally), the same trace
// frame and counters, but the completion status is decided here and
// the irreversible tail is deferred into the round context. Sound
// because the publish is the only semantic commit point: grant
// suspensions persist until the round's Release, and no reader can
// see the subtree once Detach returns.
func (m *Monitor) revokePublish(caller DomainID, node cap.NodeID, idx uint64, dc *drainCtx) error {
	tok := m.opTok.Add(1)
	m.emit(trace.KOpBegin, caller, trace.OpRevoke, tok, 0, 0)
	defer m.emit(trace.KOpEnd, caller, trace.OpRevoke, tok, 0, 0)
	if _, err := m.liveDomain(caller); err != nil {
		return err
	}
	info, err := m.space.Node(node)
	if err != nil {
		return err
	}
	authorized := info.Owner == cap.OwnerID(caller)
	if !authorized && info.Parent != 0 {
		if p, err := m.space.Node(info.Parent); err == nil && p.Owner == cap.OwnerID(caller) {
			authorized = true
		}
	}
	if !authorized {
		return m.deny("domain %d may not revoke capability %d", caller, node)
	}
	det, err := m.space.Detach(node)
	if err != nil {
		return err
	}
	m.stats.capOps.Add(1)
	m.stats.revocations.Add(1)
	m.emit(trace.KRevoke, caller, 0, uint64(node), 0, 0)
	dc.addPending(pendingRevoke{det: det, owner: info.Owner, ring: caller, idx: idx}, m.ep.publishTicket())
	return nil
}
