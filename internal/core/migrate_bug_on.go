//go:build migratebug

package core

// Seeded mutation build: migration departure (DepartKill) announces
// its scrub plan but completes the kill without zeroing the regions,
// shooting down TLBs, or dropping the encryption key — the departed
// domain's plaintext stays readable on the source machine. This exists
// to prove the trace checkers' scrub-before-kill property covers the
// migration departure path — see TestMigrateMutationOracle. Never ship
// with this tag.

// MigrateBugArmed reports whether the seeded departure-erase mutation
// is compiled in.
const MigrateBugArmed = true

const departEraseElided = true
