package core

// Asynchronous batched ABI: an io_uring-style submission/completion
// ring per domain. A guest enqueues VMCall descriptors into a ring in
// its own memory with plain stores — no trap per operation — and the
// monitor drains the ring in one batch, either when the guest rings
// the doorbell (CallRingFlush, one trap amortised over the whole
// batch) or at the multi-tenant scheduler's round barriers, where all
// cores are quiescent anyway. The HotOS paper's pitch is that trust
// management must be cheap enough to use everywhere; the journal
// version (arXiv 2507.12364) makes low-cost composable monitor calls
// the foundation, and Sanctorum (arXiv 1812.10605) demands a minimal
// per-call monitor footprint. Batching amortises the footprint that
// cannot be eliminated: one VM exit, one monitor-lock acquisition, and
// — the big win — ONE cross-core TLB shootdown round per batch of
// revocations instead of one per revocation (hw.BeginShootdownBatch).
//
// Ring memory layout (all fields 64-bit little-endian words, base must
// be within memory the ring owner holds read+write):
//
//	+0x00  header (RingHeaderBytes):
//	       [0] entries   — capacity, written by the monitor at setup
//	       [1] sqTail    — free-running submit counter, guest-written
//	       [2] sqHead    — free-running consume counter, monitor-written
//	       [3] cqTail    — free-running completion counter, monitor-written
//	       [4..7]        — reserved
//	+0x40  entries × RingDescBytes submission descriptors:
//	       [0] verb (the ABI call number), [1..5] args r1..r5,
//	       [6..7] reserved
//	+0x40 + entries*0x40  entries × RingCQBytes completion entries:
//	       [0] status (the ABI status codes), [1] result (r1)
//
// Descriptor i's completion is posted at slot i%entries — submission
// and completion indices advance in lockstep, so the guest correlates
// by position. Indices are free-running (never wrap); slot = i % entries.
// The monitor trusts only sqTail from guest memory: the consume index
// is kept monitor-side and mirrored out for the guest's benefit.
//
// Trust and validation. Ring setup capability-checks the whole
// footprint for read+write under the shared lock and records the
// capability-space generation; a drain revalidates only when the
// generation moved — the "pre-validated" discipline the transition
// cache also uses. Because a batch can itself revoke the ring's
// backing memory (or grant it away), the drain rechecks after every
// executed descriptor that bumped the generation, and aborts the batch
// (dropping the registration and the remaining descriptors) the moment
// the owner loses access — the monitor never writes a completion into
// memory the owner no longer holds.
//
// Lock order: drains are destructive-family entries (shared monitor
// lock + revMu, epoch.go). Batches mix delegations with revocations,
// and one revMu section for the whole batch both amortises the
// acquisition and keeps the coalesced shootdown race-free — every
// shootdown call site in the monitor (batch drains, revocation
// cleanups, kill scrubs) runs under revMu, so arming the machine-level
// accumulator there is sound. Pinned readers keep flowing during a
// drain; each revocation the batch executes runs its own grace period
// before scrubbing. ringMu is a leaf below lk guarding only the
// registry map. A drain is also a quiescent point for the epoch
// engine's per-core counters.

import (
	"encoding/binary"
	"sort"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/trace"
)

// Ring layout constants (bytes).
const (
	// RingHeaderBytes is the size of the ring header.
	RingHeaderBytes = 64
	// RingDescBytes is the size of one submission descriptor.
	RingDescBytes = 64
	// RingCQBytes is the size of one completion entry.
	RingCQBytes = 16
	// MaxRingEntries bounds a ring's capacity.
	MaxRingEntries = 4096
)

// Header word offsets (bytes from ring base).
const (
	RingOffEntries = 0
	RingOffSQTail  = 8
	RingOffSQHead  = 16
	RingOffCQTail  = 24
)

// RingBytes returns the total footprint of a ring with the given
// capacity.
func RingBytes(entries uint64) uint64 {
	return RingHeaderBytes + entries*(RingDescBytes+RingCQBytes)
}

// RingSQOff returns the byte offset of submission slot i.
func RingSQOff(entries, i uint64) uint64 {
	return RingHeaderBytes + (i%entries)*RingDescBytes
}

// RingCQOff returns the byte offset of completion slot i.
func RingCQOff(entries, i uint64) uint64 {
	return RingHeaderBytes + entries*RingDescBytes + (i%entries)*RingCQBytes
}

// domainRing is the monitor's record of one domain's ring.
type domainRing struct {
	owner   DomainID
	base    phys.Addr
	entries uint64
	region  phys.Region
	// head is the authoritative consume index (the sqHead word in
	// guest memory is a mirror, never trusted).
	head uint64
	// capGen is the capability-space generation at the last successful
	// access validation of the ring footprint.
	capGen uint64
}

// RingSetup registers (or replaces) the caller's submission/completion
// ring at base with the given capacity. The whole footprint must lie
// in memory the caller holds read+write; the monitor initialises the
// header. Guests reach this via CallRingSetup (r1 = base,
// r2 = entries).
func (m *Monitor) RingSetup(caller DomainID, base phys.Addr, entries uint64) error {
	p := m.renter()
	defer m.rexit(p)
	if entries == 0 || entries > MaxRingEntries {
		return m.deny("ring capacity %d out of range [1,%d]", entries, MaxRingEntries)
	}
	size := RingBytes(entries)
	if err := m.checkRange(caller, base, size, cap.RightRead|cap.RightWrite); err != nil {
		return err
	}
	r := &domainRing{
		owner:   caller,
		base:    base,
		entries: entries,
		region:  phys.MakeRegion(base, size),
		capGen:  m.space.Generation(),
	}
	mem := m.mach.Mem
	if err := mem.Write64(base+RingOffEntries, entries); err != nil {
		return err
	}
	for _, off := range []uint64{RingOffSQTail, RingOffSQHead, RingOffCQTail} {
		if err := mem.Write64(base+phys.Addr(off), 0); err != nil {
			return err
		}
	}
	m.ringMu.Lock()
	if _, had := m.rings[caller]; !had {
		m.ringCount.Add(1)
	}
	m.rings[caller] = r
	m.ringMu.Unlock()
	return nil
}

// ringDrop unregisters a domain's ring (ringMu taken internally; any
// monitor-lock state). Used by drain aborts and domain destruction.
func (m *Monitor) ringDrop(id DomainID) {
	m.ringMu.Lock()
	if _, had := m.rings[id]; had {
		delete(m.rings, id)
		m.ringCount.Add(-1)
	}
	m.ringMu.Unlock()
}

// ringOf looks up a domain's ring.
func (m *Monitor) ringOf(id DomainID) (*domainRing, bool) {
	m.ringMu.Lock()
	r, ok := m.rings[id]
	m.ringMu.Unlock()
	return r, ok
}

// RingFlush drains the caller's ring now (the dedicated-mode doorbell;
// guests reach it via CallRingFlush, which charges the one VM exit the
// whole batch shares). It returns the number of descriptors executed.
func (m *Monitor) RingFlush(caller DomainID) (uint64, error) {
	return m.ringFlush(caller, trace.GlobalCore)
}

func (m *Monitor) ringFlush(caller DomainID, core int32) (uint64, error) {
	m.denter()
	defer m.dexit()
	if _, err := m.liveDomain(caller); err != nil {
		return 0, err
	}
	r, ok := m.ringOf(caller)
	if !ok {
		return 0, m.deny("domain %d has no ring (CallRingSetup first)", caller)
	}
	var n uint64
	var err error
	if w := int(m.reclaimWorkers.Load()); w > 1 && m.ringCount.Load() > 1 {
		// Parallel pipeline (opt-in): the doorbell drains EVERY
		// registered ring as one partitioned round — the flusher's trap
		// amortises over the fleet, and the round's revocations share
		// one grace period and one cross-ring shootdown. The caller
		// still observes exactly its own ring's count and error.
		_, results := m.drainRingsParallel(w)
		res, ok := results[caller]
		if !ok {
			// The caller's ring was dropped (dead owner or lost
			// footprint) before it could drain.
			res = ringDrainResult{err: m.deny("domain %d has no ring (CallRingSetup first)", caller)}
		}
		n, err = res.n, res.err
	} else {
		n, err = m.drainRingLocked(r, core)
	}
	// The doorbell is a quiescent point: the flushing guest is by
	// definition outside any other monitor entry on its core.
	if core >= 0 {
		m.ep.quiesce(phys.CoreID(core))
	}
	// Ring-drain doorbells double as runtime-verification merge points:
	// the drained batch's trace frame is complete here. Other cores may
	// still be emitting — the shard merge's stability gate defers
	// cross-core resolution in that case.
	m.runCheckpoint()
	return n, err
}

// DrainRings drains every registered ring (ascending owner ID, one
// destructive-family section) and returns the total descriptors
// executed. The multi-tenant engine calls it at every round barrier;
// dedicated-mode embedders may call it directly. With no rings
// registered it is one atomic load and returns immediately — unbatched
// runs never take a lock here.
func (m *Monitor) DrainRings() uint64 {
	if m.ringCount.Load() == 0 {
		return 0
	}
	m.ringMu.Lock()
	owners := make([]DomainID, 0, len(m.rings))
	for id := range m.rings {
		owners = append(owners, id)
	}
	m.ringMu.Unlock()
	sort.Slice(owners, func(i, j int) bool { return owners[i] < owners[j] })
	var total uint64
	m.denter()
	defer m.dexit()
	if w := int(m.reclaimWorkers.Load()); w > 1 && len(owners) > 1 {
		total, _ = m.drainRingsParallel(w)
		return total
	}
	for _, id := range owners {
		r, ok := m.ringOf(id)
		if !ok {
			continue
		}
		if d, err := m.domain(id); err != nil || d.State() == StateDead {
			m.ringDrop(id)
			continue
		}
		n, err := m.drainRingLocked(r, trace.GlobalCore)
		// A failed per-ring drain must not poison the other tenants'
		// rings, but it must not vanish either: count it and latch the
		// first occurrence for diagnosis (Stats().RingDrainErrors,
		// FirstDrainError).
		m.noteDrainError(err)
		total += n
	}
	return total
}

// drainRingLocked executes every pending descriptor in r as one batch
// (destructive-family entry held). The batch is bracketed by
// KBatchBegin/KBatchEnd trace events; shootdowns the executed
// operations request are coalesced into at most one cross-core round,
// retired before the batch closes so the checker's ack invariant holds
// unchanged. Returns the number of descriptors executed.
func (m *Monitor) drainRingLocked(r *domainRing, core int32) (uint64, error) {
	mem := m.mach.Mem
	// Revalidate ring access only if the capability space moved since
	// the last check (pre-validated fast path).
	if err := m.ringRevalidate(r); err != nil {
		m.ringDrop(r.owner)
		return 0, err
	}
	tail, err := mem.Read64(r.base + RingOffSQTail)
	if err != nil {
		return 0, err
	}
	pending := tail - r.head
	if pending == 0 {
		return 0, nil
	}
	if pending > r.entries {
		// A malformed tail (guest overran its own ring) denies the whole
		// flush; nothing is consumed, so a fixed-up guest can retry.
		return 0, m.deny("domain %d ring tail %d overruns head %d by more than %d entries",
			r.owner, tail, r.head, r.entries)
	}

	tok := m.opTok.Add(1)
	m.mach.Trace(core, trace.KBatchBegin, uint64(r.owner), pending, tok, 0, 0)
	m.mach.BeginShootdownBatch()

	var executed uint64
	aborted := false
	for i := r.head; i != tail; i++ {
		off := phys.Addr(RingSQOff(r.entries, i))
		var desc [6]uint64
		readErr := error(nil)
		for w := range desc {
			if desc[w], readErr = mem.Read64(r.base + off + phys.Addr(8*w)); readErr != nil {
				break
			}
		}
		if readErr != nil {
			aborted = true
			break
		}
		status, result := m.ringExec(r.owner, desc[0], desc[1], desc[2], desc[3], desc[4], desc[5])
		executed++
		// A batch may revoke (or grant away) its own ring memory;
		// recheck before the monitor writes into it on the owner's
		// behalf. On loss the batch aborts: remaining descriptors are
		// discarded with the registration.
		if err := m.ringRevalidate(r); err != nil {
			aborted = true
			break
		}
		cq := phys.Addr(RingCQOff(r.entries, i))
		if err := mem.Write64(r.base+cq, status); err != nil {
			aborted = true
			break
		}
		if err := mem.Write64(r.base+cq+8, result); err != nil {
			aborted = true
			break
		}
	}
	r.head += executed
	if !aborted {
		// Mirror progress for the guest (monitor-side head stays
		// authoritative).
		if err := mem.Write64(r.base+RingOffSQHead, r.head); err == nil {
			_ = mem.Write64(r.base+RingOffCQTail, r.head)
		}
	}
	rounds, coalesced := m.mach.EndShootdownBatch()
	m.stats.ringOps.Add(executed)
	m.stats.ringFlushes.Add(1)
	m.stats.ringShootdowns.Add(uint64(rounds))
	m.stats.ringOpsCoalesced.Add(uint64(coalesced))
	m.mach.Trace(core, trace.KBatchEnd, uint64(r.owner), executed, tok, 0, 0)
	if aborted {
		m.ringDrop(r.owner)
		return executed, m.deny("domain %d lost its ring mid-batch after %d ops", r.owner, executed)
	}
	return executed, nil
}

// ringRevalidate rechecks the owner's read+write access over the ring
// footprint iff the capability space changed since the last check.
func (m *Monitor) ringRevalidate(r *domainRing) error {
	gen := m.space.Generation()
	if gen == r.capGen {
		return nil
	}
	if err := m.checkRange(r.owner, r.base, r.region.Size(), cap.RightRead|cap.RightWrite); err != nil {
		return err
	}
	r.capGen = gen
	return nil
}

// ringExec executes one descriptor on behalf of owner (destructive-
// family entry held; batch shootdown armed). Only non-transfer verbs
// are ring-eligible: control transfers (call/return/fast-switch/yield)
// change which domain runs on a core and cannot be deferred into a
// drain; ring management itself doesn't nest. An ineligible or unknown
// verb fails its own completion with StatusBadCall without poisoning
// the rest of the batch, exactly as a denied op fails only itself.
func (m *Monitor) ringExec(owner DomainID, verb, a1, a2, a3, a4, a5 uint64) (status, result uint64) {
	switch verb {
	case CallSelfID:
		return StatusOK, uint64(owner)
	case CallLog:
		if d, ok := m.tab.Load().doms[owner]; ok {
			d.mu.Lock()
			d.logbuf = append(d.logbuf, a1)
			d.mu.Unlock()
		}
		return StatusOK, 0
	case CallEnumerateLen:
		return StatusOK, uint64(len(m.enumerate(cap.OwnerID(owner))))
	case CallShare, CallGrant:
		node := cap.NodeID(a1)
		dst := DomainID(a2)
		sub := cap.MemResource(phys.MakeRegion(phys.Addr(a3), a4))
		rights := cap.Rights(a5 & 0xffff)
		cleanup := cap.Cleanup(a5 >> 16)
		id, err := m.delegateLocked(owner, node, dst, sub, rights, cleanup, verb == CallGrant)
		if err != nil {
			return StatusDenied, 0
		}
		return StatusOK, uint64(id)
	case CallRevoke:
		if err := m.revoke(owner, cap.NodeID(a1)); err != nil {
			return StatusDenied, 0
		}
		return StatusOK, 0
	case CallSealSelf:
		if _, err := m.seal(owner, owner); err != nil {
			return StatusDenied, 0
		}
		return StatusOK, 0
	case CallAttest:
		var nonce [8]byte
		binary.LittleEndian.PutUint64(nonce[:], a1)
		rep, err := m.attestLocked(owner, nonce[:])
		if err != nil {
			return StatusDenied, 0
		}
		return StatusOK, binary.LittleEndian.Uint64(rep.Measurement[:8])
	default:
		return StatusBadCall, 0
	}
}

// ringTeardownLocked removes a dying domain's ring (destructive-family
// entry held, called from destroyDomain BEFORE the death publish and
// the detach destroy the domain's capabilities). The pending descriptors are never executed —
// dead-domain silence extends to queued work — and the header is
// scrubbed so a stale ring cannot be mistaken for live state by whoever
// inherits the memory. The scrub only runs if the dying owner still
// holds read+write over the footprint: the owner may have granted or
// shared the ring pages away since the last validation, and writing the
// header then would scribble on a surviving domain's memory — the same
// cross-domain write the drain path's revalidation guards against. On
// loss the registration is simply dropped; exclusively-held pages (the
// usual home of a ring) are zeroed wholesale by the forced-scrub path
// regardless.
func (m *Monitor) ringTeardownLocked(id DomainID) {
	r, ok := m.ringOf(id)
	if !ok {
		return
	}
	m.ringDrop(id)
	if err := m.ringRevalidate(r); err != nil {
		return
	}
	mem := m.mach.Mem
	for _, off := range []uint64{RingOffEntries, RingOffSQTail, RingOffSQHead, RingOffCQTail} {
		_ = mem.Write64(r.base+phys.Addr(off), 0)
	}
}

// RingPending returns how many descriptors are enqueued but not yet
// drained on the domain's ring (0 with no ring) — a test and
// diagnostics hook.
func (m *Monitor) RingPending(id DomainID) uint64 {
	// Look the ring up only after entering as a reader: a concurrent
	// RingSetup replaces the registration, and mixing the new ring's
	// tail with the old ring's head yields a garbage count.
	p := m.renter()
	defer m.rexit(p)
	r, ok := m.ringOf(id)
	if !ok {
		return 0
	}
	tail, err := m.mach.Mem.Read64(r.base + RingOffSQTail)
	if err != nil {
		return 0
	}
	return tail - r.head
}
