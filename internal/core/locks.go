package core

import (
	"sync/atomic"
	"time"
)

// Shared pieces of the build-tag-selected monLock (locks_fine.go /
// locks_biglock.go).

type (
	atomicInt64  = atomic.Int64
	atomicUint64 = atomic.Uint64
)

// account records one acquisition and the wall time spent blocked on
// it. Wall time only: simulated clocks are never touched here.
func (l *monLock) account(start time.Time) {
	if ns := time.Since(start).Nanoseconds(); ns > 0 {
		l.waitNs.Add(ns)
	}
	l.acqs.Add(1)
}

// wait returns the accumulated blocked time and acquisition count.
func (l *monLock) wait() (time.Duration, uint64) {
	return time.Duration(l.waitNs.Load()), l.acqs.Load()
}
