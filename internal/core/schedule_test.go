package core

import (
	"errors"
	"testing"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/sched"
	"github.com/tyche-sim/tyche/internal/tpm"
	"github.com/tyche-sim/tyche/internal/trace/check"
)

// bootCoresWorld is bootWorld with a chosen core count (the scheduler
// suites oversubscribe, so two cores are often not enough), plus a
// tracer and online checker.
func bootCoresWorld(t testing.TB, cores int) (*Monitor, *check.Checker) {
	t.Helper()
	mach, err := hw.NewMachine(hw.Config{
		MemBytes: 8 << 20, NumCores: cores, PMPEntries: 16,
		IOMMUAllowByDefault: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rot, err := tpm.New(nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Boot(BootConfig{Machine: mach, TPM: rot, Backend: BackendVTX})
	if err != nil {
		t.Fatal(err)
	}
	return m, attachChecker(t, m)
}

// loadTenant creates a domain that loops `iters` iterations (yielding
// each one when yield is set) and halts, granted one RWX code page
// and shared core capabilities over every listed core.
func loadTenant(t testing.TB, m *Monitor, name string, page uint64, iters int, yield bool, cores []phys.CoreID) DomainID {
	t.Helper()
	id, err := m.CreateDomain(InitialDomain, name)
	if err != nil {
		t.Fatal(err)
	}
	base := phys.Addr(page * pg)
	a := hw.NewAsm()
	a.Movi(10, uint32(iters))
	a.Movi(12, 1)
	a.Label("loop")
	if yield {
		a.Movi(0, uint32(CallYield))
		a.Vmcall()
	}
	a.Sub(10, 10, 12)
	a.Jnz(10, "loop")
	a.Hlt()
	if err := m.CopyInto(InitialDomain, base, a.MustAssemble(base)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Grant(InitialDomain, dom0MemNode(t, m), id, memRes(page, 1), cap.MemRWX, cap.CleanNone); err != nil {
		t.Fatal(err)
	}
	for _, n := range m.OwnerNodes(InitialDomain) {
		if n.Resource.Kind != cap.ResCore {
			continue
		}
		for _, c := range cores {
			if n.Resource.Core == c {
				if _, err := m.Share(InitialDomain, n.ID, id, cap.CoreResource(c), cap.RightRun, cap.CleanNone); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := m.SetEntry(InitialDomain, id, base); err != nil {
		t.Fatal(err)
	}
	return id
}

// Six tenants over two cores: everyone completes, the preemption
// timer and CallYield both end slices, and the trace oracle stays
// clean over the whole oversubscribed run.
func TestScheduledOversubscription(t *testing.T) {
	m, ck := bootCoresWorld(t, 2)
	cores := []phys.CoreID{0, 1}
	m.SetSchedPolicy(&sched.Policy{Quantum: 32, Steal: true, Seed: 1})
	var tenants []DomainID
	for i := 0; i < 6; i++ {
		id := loadTenant(t, m, "tenant", uint64(64+i), 40, i%2 == 0, cores)
		tenants = append(tenants, id)
		if err := m.Schedule(id); err != nil {
			t.Fatal(err)
		}
	}
	res, err := m.RunCores(100_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("scheduled RunCores covered %d cores, want 2", len(res))
	}
	st := m.Stats()
	if st.SchedCompleted != uint64(len(tenants)) {
		t.Fatalf("SchedCompleted = %d, want %d (stats %+v)", st.SchedCompleted, len(tenants), st)
	}
	if st.SchedDispatches < uint64(len(tenants)) {
		t.Fatalf("SchedDispatches = %d, want >= %d", st.SchedDispatches, len(tenants))
	}
	if st.SchedPreemptions == 0 {
		t.Fatal("no timer preemptions in an oversubscribed run")
	}
	if st.SchedYields == 0 {
		t.Fatal("no yields despite yielding tenants")
	}
	if st.SchedMaxQueue == 0 {
		t.Fatal("queue depth never recorded")
	}
	q := m.Scheduler()
	if q == nil {
		t.Fatal("Scheduler() nil after a scheduled run")
	}
	if got := q.Counters().Dispatches; got != st.SchedDispatches {
		t.Fatalf("scheduler dispatches %d != Stats %d", got, st.SchedDispatches)
	}
	if len(q.Latencies()) == 0 || q.LatencyP99() == 0 {
		t.Fatalf("dispatch latency samples missing: %v", q.Latencies())
	}
	assertTraceClean(t, m, ck)
}

// The schedule must replay bit-identically: same seed, same arrival
// order, same cycle counts → same dispatch records, hash, and final
// simulated clock.
func TestScheduledDeterminism(t *testing.T) {
	run := func() (uint64, uint64, []sched.Record) {
		m, _ := bootCoresWorld(t, 4)
		cores := []phys.CoreID{0, 1, 2, 3}
		m.SetSchedPolicy(&sched.Policy{Quantum: 24, Steal: true, Seed: 42})
		for i := 0; i < 10; i++ {
			id := loadTenant(t, m, "d", uint64(80+i), 30, i%3 == 0, cores)
			if err := m.Schedule(id); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := m.RunCores(100_000); err != nil {
			t.Fatal(err)
		}
		return m.Scheduler().Hash(), m.Machine().Clock.Cycles(), m.Scheduler().Records()
	}
	h1, cy1, r1 := run()
	h2, cy2, r2 := run()
	if h1 != h2 {
		t.Fatalf("schedule hash diverged across identical runs: %#x vs %#x\nrun1: %v\nrun2: %v", h1, h2, r1, r2)
	}
	if cy1 != cy2 {
		t.Fatalf("simulated cycles diverged: %d vs %d", cy1, cy2)
	}
	if len(r1) == 0 {
		t.Fatal("no dispatch records")
	}
}

// A ForceKilled domain's queued vCPUs are purged and never
// re-dispatched; the trace oracle's dead-domain silence cross-checks
// the schedule records.
func TestScheduledKillPurge(t *testing.T) {
	m, ck := bootCoresWorld(t, 2)
	cores := []phys.CoreID{0, 1}
	m.SetSchedPolicy(&sched.Policy{Quantum: 16, Steal: true, Seed: 3})
	// The victim never terminates on its own; two vCPUs keep it queued.
	victim := loadTenant(t, m, "victim", 70, 1<<30, false, cores)
	other := loadTenant(t, m, "other", 71, 2000, false, cores)
	for _, id := range []DomainID{victim, victim, other} {
		if err := m.Schedule(id); err != nil {
			t.Fatal(err)
		}
	}
	// First slice: everyone runs a little, then the budget expires with
	// the victim's vCPUs requeued.
	if _, err := m.RunCores(200); err != nil {
		t.Fatal(err)
	}
	preKill := len(m.Scheduler().Records())
	if preKill == 0 {
		t.Fatal("first slice dispatched nothing")
	}
	if err := m.ForceKill(victim); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.SchedPurged < 2 {
		t.Fatalf("SchedPurged = %d, want >= 2 (both victim vCPUs were queued)", st.SchedPurged)
	}
	// Drain the rest: only the survivor may ever be dispatched again.
	if _, err := m.RunCores(100_000); err != nil {
		t.Fatal(err)
	}
	for _, r := range m.Scheduler().Records()[preKill:] {
		if r.Domain == uint64(victim) {
			t.Fatalf("killed domain %d dispatched after its destruction: %+v", victim, r)
		}
	}
	if st := m.Stats(); st.SchedCompleted != 1 {
		t.Fatalf("SchedCompleted = %d, want 1 (the survivor)", st.SchedCompleted)
	}
	assertTraceClean(t, m, ck)
}

// Schedule validation and the policy lifecycle.
func TestScheduleValidation(t *testing.T) {
	m, _ := bootCoresWorld(t, 2)
	cores := []phys.CoreID{0, 1}
	tenant := loadTenant(t, m, "tenant", 64, 4, false, cores)

	if err := m.Schedule(tenant); err == nil {
		t.Fatal("Schedule without a policy must fail")
	}
	m.SetSchedPolicy(&sched.Policy{Quantum: 8})
	if err := m.Schedule(DomainID(99)); !errors.Is(err, ErrNoSuchDomain) {
		t.Fatalf("scheduling an unknown domain: %v", err)
	}
	noEntry, err := m.CreateDomain(InitialDomain, "blank")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Schedule(noEntry); !errors.Is(err, ErrNoEntry) {
		t.Fatalf("scheduling an entry-less domain: %v", err)
	}
	if err := m.Schedule(tenant); err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunCores(10_000); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.SchedCompleted != 1 {
		t.Fatalf("SchedCompleted = %d, want 1", st.SchedCompleted)
	}
	// Clearing the policy drops the queue and reverts RunCores to
	// dedicated-core mode.
	m.SetSchedPolicy(nil)
	if m.Scheduler() != nil {
		t.Fatal("Scheduler() should be nil after the policy is cleared")
	}
	if err := m.Launch(tenant, 0); err != nil {
		t.Fatal(err)
	}
	res, err := m.RunCores(1_000)
	if err != nil {
		t.Fatal(err)
	}
	if r, ok := res[0]; !ok || r.Trap.Kind != hw.TrapHalt {
		t.Fatalf("dedicated-mode run after policy clear: %+v", res)
	}
}

// A dedicated-mode guest that invokes CallYield hands control back to
// the embedder with Yielded set, and resumes after the call on the
// next RunCore.
func TestDedicatedYieldReturnsToEmbedder(t *testing.T) {
	m, _ := bootCoresWorld(t, 2)
	tenant := loadTenant(t, m, "tenant", 64, 3, true, []phys.CoreID{0})
	if err := m.Launch(tenant, 0); err != nil {
		t.Fatal(err)
	}
	yields := 0
	for i := 0; i < 50; i++ {
		res, err := m.RunCore(0, 1_000)
		if err != nil {
			t.Fatal(err)
		}
		if res.Yielded {
			yields++
			continue
		}
		if res.Trap.Kind == hw.TrapHalt {
			break
		}
		t.Fatalf("unexpected stop: %+v", res)
	}
	if yields != 3 {
		t.Fatalf("observed %d yields, want 3", yields)
	}
}

// Monitor.RunCores(budget) with no explicit cores runs *every* core
// with a domain installed — the variadic default — and skips idle
// cores.
func TestRunCoresDefaultRunsAllCores(t *testing.T) {
	m, _ := bootCoresWorld(t, 3)
	d0 := loadTenant(t, m, "a", 64, 5, false, []phys.CoreID{0})
	d1 := loadTenant(t, m, "b", 65, 5, false, []phys.CoreID{1})
	if err := m.Launch(d0, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Launch(d1, 1); err != nil {
		t.Fatal(err)
	}
	// Core 2 has nothing installed and must not appear in the results.
	res, err := m.RunCores(1_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("RunCores() covered %d cores, want 2 (cores 0 and 1): %+v", len(res), res)
	}
	for _, c := range []phys.CoreID{0, 1} {
		r, ok := res[c]
		if !ok || r.Trap.Kind != hw.TrapHalt {
			t.Fatalf("core %v: %+v (ok=%v)", c, r, ok)
		}
	}
	if _, ok := res[2]; ok {
		t.Fatal("idle core 2 should not be driven by the variadic default")
	}
}
