package core

import (
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/trace"
)

// Cross-domain interrupt routing (§4.1: "we are also exploring how to
// extend capabilities to provide scheduling guarantees, cross-domain
// interrupt routing"). Device interrupts are routed by *capability*:
// the monitor delivers a device's IRQ to the domain holding RightUse on
// it — not to whoever is privileged. A driver compartment therefore
// receives its NIC's interrupts even though the host kernel created it,
// and the host kernel stops seeing them the moment it grants the device
// away.

// IRQHandler is a domain's Go-level interrupt handler (its "interrupt
// descriptor table entry"); it runs with the trapping core visible.
type IRQHandler func(c *hw.Core, irq hw.IRQ) error

// SetIRQHandler installs the domain's interrupt handler. The domain
// itself or its creator may configure it.
func (m *Monitor) SetIRQHandler(caller, id DomainID, h IRQHandler) error {
	p := m.renter()
	defer m.rexit(p)
	d, err := m.liveDomain(id)
	if err != nil {
		return err
	}
	if caller != id && caller != d.creator {
		return m.deny("domain %d may not install IRQ handlers for domain %d", caller, id)
	}
	d.mu.Lock()
	d.irq = h
	d.mu.Unlock()
	return nil
}

// routeIRQs drains the interrupt controller, delivering each interrupt
// to the domain holding the device capability. Interrupts for devices
// whose holder has no handler (or devices nobody holds) are dropped and
// counted — exactly what real hardware does with masked vectors.
//
// The routing decision is a pinned reader entry — the capability
// lookup and the liveness it depends on must not race a revocation's
// reclaim, and the KIRQRoute emit must be sequenced before a
// concurrent kill's KKill — and reads the receiving domain's handler
// under its own mutex. The handler itself is invoked with the entry
// fully exited (unpinned, unlocked), because Go-level handlers are
// domain kernels that re-enter the monitor through its public API.
func (m *Monitor) routeIRQs(c *hw.Core) error {
	for {
		irq, ok := m.mach.TakeIRQ()
		if !ok {
			return nil
		}
		p := m.renter()
		var handler IRQHandler
		tab := m.tab.Load()
		for _, owner := range m.space.DeviceUsers(irq.Device) {
			d, ok := tab.doms[DomainID(owner)]
			if !ok || d.State() == StateDead {
				continue
			}
			d.mu.Lock()
			h := d.irq
			d.mu.Unlock()
			if h == nil {
				continue
			}
			m.stats.irqsRouted.Add(1)
			m.emit(trace.KIRQRoute, DomainID(owner), uint64(irq.Device), uint64(irq.Vector), 0, 0)
			handler = h
			break
		}
		if handler == nil {
			m.stats.irqsDropped.Add(1)
			m.emit(trace.KIRQDrop, 0, uint64(irq.Device), uint64(irq.Vector), 0, 0)
		}
		m.rexit(p)
		if handler == nil {
			continue
		}
		m.mach.Clock.Advance(m.mach.Cost.VMExit)
		err := handler(c, irq)
		m.mach.Clock.Advance(m.mach.Cost.VMEntry)
		if err != nil {
			return err
		}
	}
}
