package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/tyche-sim/tyche/internal/cap"
	"github.com/tyche-sim/tyche/internal/fault"
	"github.com/tyche-sim/tyche/internal/hw"
	"github.com/tyche-sim/tyche/internal/phys"
	"github.com/tyche-sim/tyche/internal/tpm"
)

// TestLockOrderStress is the deadlock oracle for the fine-grained
// monitor: it drives every lock class at once and relies on -race plus
// forward progress (the test completing) plus the trace checker to
// prove the documented lock order holds under fire.
//
// Concurrently it runs:
//   - six Go-level workers, each looping a Grant→sub-Share→Revoke→
//     Revoke chain between randomly paired domains (seeded rand, so a
//     failure replays) — shared monitor lock + per-domain locks +
//     capability shard locks in every pairing order;
//   - guest VMCall share/revoke rings on two cores — the same paths
//     entered from RunCore with no Go-level locks held;
//   - a reader thread hammering the lock-free snapshot paths (Stats,
//     Domains, RefCounts, LineageTree, Attest);
//   - a fault injector that machine-checks the victim's core mid-run,
//     forcing containFault's exclusive-lock kill (scrub, owner-revoke,
//     shootdowns) to cut across all of the above;
//   - a spurious device interrupt exercising IRQ routing's read path.
//
// The trace oracle then checks the merged history: dead-domain
// silence, shootdown-ack completeness per operation frame, scrub
// before kill, and event counts equal to Monitor.Stats().
func TestLockOrderStress(t *testing.T) {
	const (
		cores     = 4
		pool      = 6 // Go-level worker domains, randomly paired
		ringCores = 2 // guest cores running VMCall rings
	)
	iters := 40
	ringIters := 24
	if testing.Short() {
		iters, ringIters = 8, 8
	}

	mach, err := hw.NewMachine(hw.Config{
		MemBytes: 8 << 20, NumCores: cores, PMPEntries: 16,
		IOMMUAllowByDefault: true,
		Devices:             []hw.DeviceConfig{{Name: "gpu0", Class: hw.DevAccelerator}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rot, err := tpm.New(nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Boot(BootConfig{Machine: mach, TPM: rot, Backend: BackendVTX})
	if err != nil {
		t.Fatal(err)
	}
	ck := attachChecker(t, m)
	node := dom0MemNode(t, m)
	coreNodes := map[phys.CoreID]cap.NodeID{}
	for _, n := range m.OwnerNodes(InitialDomain) {
		if n.Resource.Kind == cap.ResCore {
			coreNodes[n.Resource.Core] = n.ID
		}
	}

	// The victim spins on core 1 until the injected machine check; the
	// survivor workload occupies core 0 and must finish correctly.
	victim := buildVictim(t, m)
	launchSurvivor(t, m)
	if err := m.Launch(victim, 1); err != nil {
		t.Fatal(err)
	}

	// Guest rings on cores 2 and 3: each domain loops CallShare of its
	// scratch page to the other, then CallRevoke.
	ringProg := func(base phys.Addr) []byte {
		a := hw.NewAsm()
		a.Movi(12, 1)
		a.Label("loop")
		a.Mov(1, 6)
		a.Mov(2, 7)
		a.Mov(3, 8)
		a.Mov(4, 9)
		a.Mov(5, 11)
		a.Movi(0, uint32(CallShare))
		a.Vmcall()
		a.Jnz(0, "fail")
		a.Movi(0, uint32(CallRevoke))
		a.Vmcall()
		a.Jnz(0, "fail")
		a.Sub(10, 10, 12)
		a.Jnz(10, "loop")
		a.Hlt()
		a.Label("fail")
		a.Movi(15, 0xdead)
		a.Hlt()
		return a.MustAssemble(base)
	}
	type ringDom struct {
		dom     DomainID
		scratch phys.Region
		node    cap.NodeID
	}
	var ring [ringCores]ringDom
	for i := 0; i < ringCores; i++ {
		core := phys.CoreID(2 + i)
		dom, err := m.CreateDomain(InitialDomain, fmt.Sprintf("ring%d", i))
		if err != nil {
			t.Fatal(err)
		}
		codeAt := phys.Addr(uint64(80+4*i) * pg)
		scratch := phys.MakeRegion(codeAt+pg, pg)
		if err := m.CopyInto(InitialDomain, codeAt, ringProg(codeAt)); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Grant(InitialDomain, node, dom, cap.MemResource(phys.MakeRegion(codeAt, pg)), cap.MemRWX, cap.CleanNone); err != nil {
			t.Fatal(err)
		}
		sn, err := m.Grant(InitialDomain, node, dom, cap.MemResource(scratch),
			cap.MemRW|cap.RightShare|cap.RightGrant, cap.CleanNone)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Share(InitialDomain, coreNodes[core], dom, cap.CoreResource(core), cap.RightRun, cap.CleanNone); err != nil {
			t.Fatal(err)
		}
		if err := m.SetEntry(InitialDomain, dom, codeAt); err != nil {
			t.Fatal(err)
		}
		ring[i] = ringDom{dom: dom, scratch: scratch, node: sn}
	}
	for i := 0; i < ringCores; i++ {
		core := phys.CoreID(2 + i)
		if err := m.Launch(ring[i].dom, core); err != nil {
			t.Fatal(err)
		}
		c := mach.Core(core)
		c.Regs[6] = uint64(ring[i].node)
		c.Regs[7] = uint64(ring[(i+1)%ringCores].dom)
		c.Regs[8] = uint64(ring[i].scratch.Start)
		c.Regs[9] = ring[i].scratch.Size()
		c.Regs[10] = uint64(ringIters)
		c.Regs[11] = uint64(cap.MemRW) | uint64(cap.CleanFlushTLB)<<16
	}

	// Pool of randomly-paired worker domains for the Go-level chains.
	var doms [pool]DomainID
	for i := range doms {
		dom, err := m.CreateDomain(InitialDomain, fmt.Sprintf("pair%d", i))
		if err != nil {
			t.Fatal(err)
		}
		doms[i] = dom
	}

	// Machine check on the victim's core, plus a phantom interrupt to
	// drag IRQ routing into the race.
	in := fault.NewInjector(
		fault.Fault{Kind: fault.MachineCheck, Core: 1, After: 200},
		fault.Fault{Kind: fault.SpuriousIRQ, Device: 0, Vector: 7, After: 3},
	)
	in.Arm(mach, nil)

	var wg sync.WaitGroup
	errs := make(chan error, pool)
	for w := 0; w < pool; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(0x10ec + w)))
			region := memRes(uint64(160+w), 1)
			for n := 0; n < iters; n++ {
				a := rng.Intn(pool)
				b := rng.Intn(pool - 1)
				if b >= a {
					b++
				}
				gid, err := m.Grant(InitialDomain, node, doms[a], region,
					cap.MemRW|cap.RightShare, cap.CleanFlushTLB)
				if err != nil {
					errs <- fmt.Errorf("worker %d grant: %w", w, err)
					return
				}
				sid, err := m.Share(doms[a], gid, doms[b], region, cap.MemRW, cap.CleanFlushTLB)
				if err != nil {
					errs <- fmt.Errorf("worker %d share: %w", w, err)
					return
				}
				if err := m.Revoke(doms[a], sid); err != nil {
					errs <- fmt.Errorf("worker %d revoke share: %w", w, err)
					return
				}
				if err := m.Revoke(InitialDomain, gid); err != nil {
					errs <- fmt.Errorf("worker %d revoke grant: %w", w, err)
					return
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	var rwg sync.WaitGroup
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		nonce := []byte("lock-order-stress")
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				m.Stats()
				m.Domains()
				m.RefCounts()
				m.CapGeneration()
				if i%16 == 0 {
					m.LineageTree()
					if _, err := m.Attest(InitialDomain, nonce); err != nil {
						t.Errorf("attest dom0: %v", err)
						return
					}
				}
			}
		}
	}()

	results, err := m.RunCores(400_000)
	wg.Wait()
	close(stop)
	rwg.Wait()
	close(errs)
	if err != nil {
		t.Fatalf("RunCores: %v", err)
	}
	for e := range errs {
		t.Fatal(e)
	}

	// The victim was machine-checked and contained; the survivor and
	// both ring cores finished their programs.
	if results[1].Trap.Kind != hw.TrapMachineCheck {
		t.Fatalf("victim trap = %v, want machine-check", results[1].Trap)
	}
	if !in.Exhausted() {
		t.Fatalf("fault schedule did not fire: %v", in.Fired())
	}
	checkContained(t, m, victim, results)
	for i := 0; i < ringCores; i++ {
		core := phys.CoreID(2 + i)
		c := mach.Core(core)
		if results[core].Trap.Kind != hw.TrapHalt || c.Regs[10] != 0 || c.Regs[15] == 0xdead {
			t.Fatalf("ring core %d: trap=%v r0=%d r10=%d r15=%#x",
				core, results[core].Trap, c.Regs[0], c.Regs[10], c.Regs[15])
		}
	}

	// Every hammered region is exclusive to dom0 again.
	for _, rc := range m.RefCounts() {
		for w := 0; w < pool; w++ {
			r := phys.MakeRegion(phys.Addr(uint64(160+w)*pg), pg)
			if rc.Region.Overlaps(r) && rc.Count != 1 {
				t.Fatalf("worker region %v refcount = %d after stress", rc.Region, rc.Count)
			}
		}
		for i := 0; i < ringCores; i++ {
			if rc.Region.Overlaps(ring[i].scratch) && rc.Count != 1 {
				t.Fatalf("ring scratch %v refcount = %d after stress", rc.Region, rc.Count)
			}
		}
	}
	all := append([]DomainID{InitialDomain, victim}, doms[:]...)
	for i := 0; i < ringCores; i++ {
		all = append(all, ring[i].dom)
	}
	checkIsolationInvariants(t, m, all)
	assertTraceClean(t, m, ck)
}
